// The pruning procedure (paper Algorithm 3, procedure Prune).
//
// Routes a newly generated (or re-considered) plan into the result set,
// the candidate set, or discards it:
//   1. If some result plan within bounds at resolution <= r approximately
//      dominates the plan (c(pA) ⪯ α_r·c(p)), the plan is parked as a
//      candidate for a finer resolution — or discarded when no finer
//      resolution can ever make it relevant.
//   2. Otherwise, if the plan's cost exceeds the bounds, it is parked as a
//      candidate at the current resolution (it may become relevant when
//      the user changes the bounds).
//   3. Otherwise the plan is inserted into the result set at resolution r.
//
// Both deliberate design decisions from §4.2 are embodied here: the
// dominance check only consults Res[0..b, 0..r] (never higher-resolution
// result plans), and result plans are never discarded.
//
// Skip-ahead parking (an implementation refinement over the paper's
// "park at r+1"): the dominating result plan pA yields the exact factor
// α* = max_i c_i(pA)/c_i(p) with which it covers p. While α_r' >= α*, pA
// keeps covering p, so p cannot enter the result set; we therefore park p
// directly at the first resolution whose precision factor drops below α*,
// and discard it immediately when even α_rM >= α* (in particular whenever
// pA dominates p outright, α* <= 1). This is sound for arbitrary later
// bounds: whenever p must be covered under bounds b' (α c(p) ⪯ b'), the
// dominator satisfies c(pA) ⪯ α* c(p) ⪯ α c(p) ⪯ b', i.e. pA is itself
// inside the queried range — the same argument the paper's Theorem 1 proof
// uses. The paper-literal behavior remains available via
// `park_next_level_only` (ablated in bench_prune_design).
#ifndef MOQO_CORE_PRUNING_H_
#define MOQO_CORE_PRUNING_H_

#include "core/counters.h"
#include "core/resolution.h"
#include "cost/cost_vector.h"
#include "index/cell_index.h"

namespace moqo {

// Outcome of one Prune call (mostly for tests and instrumentation).
enum class PruneOutcome {
  kInsertedResult,
  kParkedForHigherResolution,
  kParkedForDifferentBounds,
  kDiscarded,
};

// `compare_resolution` controls which result plans participate in the
// dominance check: the paper's design uses compare_resolution ==
// resolution (only plans indexed at the current resolution or lower); the
// ablation benchmark sets it to the maximum to quantify the cost of the
// alternative design (§4.2 discussion).
// `order` is the plan's interesting-order tag; the dominance check is
// restricted to result plans carrying the same tag (plans producing a
// useful tuple order must not be pruned by cheaper unordered plans,
// paper §4.3), and the plan is indexed under its tag.
PruneOutcome Prune(CellIndex& result_set, CellIndex& candidate_set,
                   const CostVector& bounds, int resolution,
                   int compare_resolution,
                   const ResolutionSchedule& schedule, uint32_t plan_id,
                   const CostVector& cost, int order, uint32_t invocation,
                   bool park_next_level_only, Counters* counters);

}  // namespace moqo

#endif  // MOQO_CORE_PRUNING_H_
