#include "core/iama.h"

#include <algorithm>

namespace moqo {
namespace {

CostVector InitialBounds(const PlanFactory& factory,
                         const IamaOptions& options) {
  const int dims = factory.cost_model().schema().dims();
  if (options.initial_bounds.has_value()) {
    // Checked here, before the optimizer prunes the seed scans against
    // them: a dimension mismatch would otherwise read past the end of
    // the shorter vector inside the dominance checks.
    MOQO_CHECK(options.initial_bounds->dims() == dims);
    return *options.initial_bounds;
  }
  return CostVector::Infinite(dims);
}

}  // namespace

IamaSession::IamaSession(const PlanFactory& factory, IamaOptions options)
    : factory_(factory),
      options_(options),
      bounds_(InitialBounds(factory, options)),
      optimizer_(factory, options.schedule, bounds_, options.optimizer) {}

FrontierSnapshot IamaSession::Step() {
  ++iteration_;
  optimizer_.Optimize(bounds_, resolution_);
  FrontierSnapshot snapshot;
  snapshot.iteration = iteration_;
  snapshot.resolution = resolution_;
  snapshot.alpha = options_.schedule.Alpha(resolution_);
  snapshot.bounds = bounds_;
  snapshot.plans = optimizer_.ResultPlans(bounds_, resolution_);
  return snapshot;
}

bool IamaSession::ApplyAction(const UserAction& action) {
  switch (action.kind) {
    case UserAction::Kind::kSelectPlan:
      return true;
    case UserAction::Kind::kSetBounds:
      // User input: bound vectors must match the metric dimension, or
      // every later range query would compare mismatched vectors.
      MOQO_CHECK(action.new_bounds.dims() == bounds_.dims());
      bounds_ = action.new_bounds;
      resolution_ = 0;  // Quickly show first results for the new bounds.
      return false;
    case UserAction::Kind::kContinue:
      // Clamp at rM: sessions may keep stepping past the finest level
      // (e.g. a service polling for bounds changes), and refinement must
      // not run off the schedule — Alpha(r) aborts for r > rM.
      resolution_ =
          std::min(options_.schedule.MaxResolution(), resolution_ + 1);
      return false;
  }
  return false;
}

bool IamaSession::SetBounds(const CostVector& bounds) {
  if (bounds.dims() != bounds_.dims()) return false;
  ApplyAction(UserAction::SetBounds(bounds));
  return true;
}

SessionResult IamaSession::Run(
    InteractionPolicy* policy, int max_iterations,
    const std::function<void(const FrontierSnapshot&)>& observer) {
  MOQO_CHECK(policy != nullptr);
  SessionResult result;
  for (int i = 0; i < max_iterations; ++i) {
    const FrontierSnapshot snapshot = Step();
    if (observer) observer(snapshot);
    const UserAction action = policy->OnSnapshot(snapshot);
    result.iterations = iteration_;
    if (action.kind == UserAction::Kind::kSelectPlan) {
      result.selected_plan = action.selected;
      return result;
    }
    ApplyAction(action);
  }
  return result;
}

}  // namespace moqo
