// Resolution schedule: resolution levels and their precision factors.
//
// IAMA approximates the Pareto frontier at resolution levels 0..rM. Each
// level r maps to a precision factor α_r > 1 with α_r > α_{r+1} (§4.2).
// Two sequences are provided:
//   * kLinear — the paper's evaluation formula (§6.1):
//       α_r = α_T + α_S · (rM − r) / rM
//   * kGeometric — equal *ratio* steps in (α_r − 1), i.e. log-uniform
//     spacing between α_T + α_S and α_T. The paper remarks (§6.2) that a
//     more optimized sequence of precision factors could further reduce
//     the maximal per-invocation time; geometric spacing equalizes the
//     plan-space volume unlocked per step, avoiding the burst at the
//     finest level that the linear sequence exhibits.
#ifndef MOQO_CORE_RESOLUTION_H_
#define MOQO_CORE_RESOLUTION_H_

#include "util/common.h"

namespace moqo {

class ResolutionSchedule {
 public:
  enum class Kind {
    kLinear,
    kGeometric,
  };

  // `num_levels` = rM + 1 >= 1. `alpha_target` (α_T) is the precision
  // factor at the maximal resolution; `alpha_step` (α_S) the additional
  // slack at resolution 0.
  ResolutionSchedule(int num_levels, double alpha_target, double alpha_step,
                     Kind kind = Kind::kLinear);

  // The paper's Figure 3 configuration: α_T = 1.01, α_S = 0.05.
  static ResolutionSchedule Moderate(int num_levels) {
    return ResolutionSchedule(num_levels, 1.01, 0.05);
  }
  // The paper's Figure 4/5 configuration: α_T = 1.005, α_S = 0.5.
  static ResolutionSchedule Fine(int num_levels) {
    return ResolutionSchedule(num_levels, 1.005, 0.5);
  }
  // Geometric variant of an existing configuration.
  static ResolutionSchedule Geometric(int num_levels, double alpha_target,
                                      double alpha_step) {
    return ResolutionSchedule(num_levels, alpha_target, alpha_step,
                              Kind::kGeometric);
  }

  int MaxResolution() const { return num_levels_ - 1; }  // rM
  int NumLevels() const { return num_levels_; }
  double alpha_target() const { return alpha_target_; }
  double alpha_step() const { return alpha_step_; }
  Kind kind() const { return kind_; }

  // α_r for resolution level r in [0, rM]. Strictly decreasing in r,
  // with α_0 = α_T + α_S and α_rM = α_T.
  double Alpha(int r) const;

 private:
  int num_levels_;
  double alpha_target_;
  double alpha_step_;
  Kind kind_;
};

}  // namespace moqo

#endif  // MOQO_CORE_RESOLUTION_H_
