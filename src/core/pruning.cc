#include "core/pruning.h"

#include <algorithm>

#include "pareto/dominance.h"

namespace moqo {

PruneOutcome Prune(CellIndex& result_set, CellIndex& candidate_set,
                   const CostVector& bounds, int resolution,
                   int compare_resolution,
                   const ResolutionSchedule& schedule, uint32_t plan_id,
                   const CostVector& cost, int order, uint32_t invocation,
                   bool park_next_level_only, Counters* counters) {
  if (counters != nullptr) ++counters->prune_calls;
  const int max_resolution = schedule.MaxResolution();
  const double alpha_r = schedule.Alpha(resolution);

  // ∃ pA ∈ Res[0..b, 0..r] : c(pA) ⪯ α_r · c(p)? Both conditions fold
  // into a single range query with the component-wise minimum of the
  // bounds and the scaled cost.
  const CostVector approx_box = cost.Scaled(alpha_r).Min(bounds);
  uint64_t* checks =
      counters != nullptr ? &counters->dominance_checks : nullptr;
  CellIndex::Entry dominator;
  if (result_set.FindInRange(approx_box, compare_resolution, &dominator,
                             checks, /*required_order=*/order)) {
    // Approximated at the current resolution: keep as candidate for a
    // finer resolution, or discard when no resolution can need it.
    int park_level = -1;
    if (park_next_level_only) {
      // Paper-literal behavior: always park at r+1.
      park_level = resolution < max_resolution ? resolution + 1 : -1;
    } else {
      // Skip-ahead: the plan stays covered while α_r' >= α*, where α* is
      // the exact factor with which the found dominator covers it.
      double alpha_star = 0.0;
      for (int i = 0; i < cost.dims(); ++i) {
        if (cost.at(i) > 0.0) {
          alpha_star =
              std::max(alpha_star, dominator.cost.at(i) / cost.at(i));
        }
        // cost[i] == 0 implies dominator.cost[i] == 0 (it passed the
        // range query against α_r * 0): no constraint from this metric.
      }
      for (int level = resolution + 1; level <= max_resolution; ++level) {
        if (schedule.Alpha(level) < alpha_star) {
          park_level = level;
          break;
        }
      }
    }
    if (park_level < 0) {
      if (counters != nullptr) ++counters->plans_discarded;
      return PruneOutcome::kDiscarded;
    }
    candidate_set.Insert(plan_id, cost, park_level, invocation, order);
    if (counters != nullptr) ++counters->candidate_insertions;
    return PruneOutcome::kParkedForHigherResolution;
  }

  if (!RespectsBounds(cost, bounds)) {
    // Exceeds the bounds: may become relevant when the bounds change;
    // keep as candidate at the current resolution.
    candidate_set.Insert(plan_id, cost, resolution, invocation, order);
    if (counters != nullptr) ++counters->candidate_insertions;
    return PruneOutcome::kParkedForDifferentBounds;
  }

  result_set.Insert(plan_id, cost, resolution, invocation, order);
  if (counters != nullptr) ++counters->result_insertions;
  return PruneOutcome::kInsertedResult;
}

}  // namespace moqo
