#include "core/incremental_optimizer.h"

#include <algorithm>
#include <unordered_map>

#include "core/pruning.h"

namespace moqo {
namespace {

struct BatchEntry {
  uint32_t id = 0;
  CostVector cost;
  double score = 0.0;
  uint8_t order = 0;
};

// Orders a batch of plans so that cheap plans are pruned first. The score
// is a positive-weighted sum of the cost components (normalized by the
// batch mean per metric), which is monotone w.r.t. dominance: if a
// dominates b then score(a) <= score(b), so dominating plans enter the
// result set before the plans they suppress. This keeps the append-only
// result sets close to minimal (see OptimizerOptions::sorted_pruning).
void SortBatch(std::vector<BatchEntry>& batch) {
  if (batch.size() < 2) return;
  const int dims = batch[0].cost.dims();
  CostVector scale(dims, 0.0);
  for (const BatchEntry& e : batch) {
    for (int i = 0; i < dims; ++i) scale[i] += e.cost.at(i);
  }
  for (int i = 0; i < dims; ++i) {
    scale[i] = scale[i] > 0.0 ? batch.size() / scale[i] : 0.0;
  }
  for (BatchEntry& e : batch) {
    double score = 0.0;
    for (int i = 0; i < dims; ++i) score += e.cost.at(i) * scale.at(i);
    e.score = score;
  }
  std::sort(batch.begin(), batch.end(),
            [](const BatchEntry& a, const BatchEntry& b) {
              return a.score < b.score;
            });
}

}  // namespace

IncrementalOptimizer::IncrementalOptimizer(const PlanFactory& factory,
                                           ResolutionSchedule schedule,
                                           const CostVector& initial_bounds,
                                           OptimizerOptions options)
    : factory_(factory),
      schedule_(schedule),
      options_(options),
      res_(factory.NumTables(), factory.cost_model().schema().dims(),
           options.cell_gamma),
      cand_(factory.NumTables(), factory.cost_model().schema().dims(),
            options.cell_gamma) {
  counters_.track_per_plan = options_.track_per_plan_counters;
  // Option validation: a non-positive thread count is a caller bug, and
  // when both an external pool and num_threads > 1 are given the pool
  // wins — many optimizers may share one injected pool (the service
  // layer does exactly that), and spawning a second, owned pool per
  // optimizer behind the caller's back must be impossible.
  MOQO_CHECK(options_.num_threads >= 1);
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else if (options_.num_threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    pool_ = owned_pool_.get();
  }
  // A distributed exchange keeps replicas in lockstep; fragment seeding
  // on one replica (or publishing from one) would silently break it.
  MOQO_CHECK(options_.phase2_exchange == nullptr ||
             (options_.fragment_store == nullptr &&
              !options_.fragment_publish));
  exchange_ = options_.phase2_exchange;

  const int n = factory_.NumTables();
  // Precompute the connected table subsets, grouped by size; the DP in
  // phase 2 only ever touches these.
  connected_by_size_.assign(static_cast<size_t>(n) + 1, {});
  const uint32_t full = TableSet::Full(n).mask();
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const TableSet q(mask);
    if (factory_.graph().IsConnected(q)) {
      connected_by_size_[static_cast<size_t>(q.Count())].push_back(q);
    }
  }

  // Fill in scan plans for single tables (Algorithm 1 lines 7-10). The
  // seeding is part of invocation 1 so that the first Optimize call sees
  // the scan plans as Δ members.
  for (int t = 0; t < n; ++t) {
    const TableSet q = TableSet::Singleton(t);
    std::vector<BatchEntry> batch;
    factory_.ForEachScan(t, [&](const OperatorDesc& op, const OpCost& oc) {
      const PlanId id =
          arena_.AddScan(q, op, oc.cost, oc.output_rows, oc.order);
      ++counters_.plans_generated;
      batch.push_back({id, oc.cost, 0.0, oc.order});
    });
    if (options_.sorted_pruning) SortBatch(batch);
    for (const BatchEntry& e : batch) {
      PrunePlan(q, e.id, e.cost, e.order, initial_bounds, /*resolution=*/0);
    }
  }

  current_bounds_ = initial_bounds;
  if (options_.fragment_publish) {
    publish_log_.resize(size_t{1} << n);
  }
  if (options_.fragment_store != nullptr) SeedFragments(initial_bounds);
}

// Seeds every connected multi-table cell the provider knows: the stored
// plans become opaque arena leaves and are replayed into the cell's
// result index in the donor's chronological insertion order, each keeping
// its original resolution stamp. Replay order matters — the cell index's
// hash-map layout (and hence Collect's iteration order) then matches a
// cold run's bit for bit. Entries are inserted with kNeverVisible so
// their first Collect — which happens at the invocation of their
// resolution stamp, exactly when the cold run would have inserted them —
// classifies them as Δ. The cell itself is sealed: its phase-2
// enumeration (and the generation work it stands for) never runs.
void IncrementalOptimizer::SeedFragments(const CostVector& initial_bounds) {
  (void)initial_bounds;  // The provider keys on the bounds already.
  const int n = factory_.NumTables();
  sealed_.assign(size_t{1} << n, 0);
  const int needed = schedule_.MaxResolution();
  for (size_t k = 2; k <= static_cast<size_t>(n); ++k) {
    for (TableSet q : connected_by_size_[k]) {
      std::optional<FragmentSeed> seed =
          options_.fragment_store->Lookup(q, needed);
      if (!seed.has_value()) continue;
      CellIndex& res = res_.For(q);
      // Plain chronological replay: the first insert per cell creates it,
      // so the cell index's creation order — and hence every downstream
      // iteration order — matches the donor's without any pre-pass. The
      // banks grow geometrically through the arena; the abandoned blocks
      // (a small multiple of the final lane bytes, reclaimed wholesale at
      // the next epoch reset) are far cheaper than per-plan bookkeeping
      // on this hot warm-start path.
      for (const FragmentPlan& p : seed->plans) {
        const PlanId id =
            arena_.AddFragment(q, p.op, p.cost, p.output_rows, p.order);
        res.Insert(id, p.cost, p.resolution, kNeverVisible, p.order);
        ++counters_.fragment_plans_seeded;
      }
      sealed_[q.mask()] = 1;
      ++counters_.fragment_cells_seeded;
    }
  }
  // A cold store seeded nothing: drop the seal table so phase 2 keeps
  // its zero-cost fast path (no per-level filtering) for the whole run.
  if (counters_.fragment_cells_seeded == 0) sealed_.clear();
}

// Second seeding chance for runs admitted while overlapping leaders were
// still in flight: the admission-time probe (constructor) raced their
// publishes, so cells that missed then may hit now. Before the first
// Optimize call every unsealed multi-table cell is still empty — its
// enumeration has not started — so seeding it here replays the donor log
// into a virgin cell exactly like the constructor would have, and the
// bit-identity argument of SeedFragments carries over unchanged.
void IncrementalOptimizer::ReprobeFragments() {
  if (first_optimize_done_ || options_.fragment_store == nullptr) return;
  const int n = factory_.NumTables();
  const bool had_seals = !sealed_.empty();
  if (!had_seals) sealed_.assign(size_t{1} << n, 0);
  const int needed = schedule_.MaxResolution();
  const uint64_t seeded_before = counters_.fragment_cells_seeded;
  for (size_t k = 2; k <= static_cast<size_t>(n); ++k) {
    for (TableSet q : connected_by_size_[k]) {
      if (sealed_[q.mask()] != 0) continue;
      std::optional<FragmentSeed> seed =
          options_.fragment_store->Lookup(q, needed);
      if (!seed.has_value()) continue;
      CellIndex& res = res_.For(q);
      for (const FragmentPlan& p : seed->plans) {
        const PlanId id =
            arena_.AddFragment(q, p.op, p.cost, p.output_rows, p.order);
        res.Insert(id, p.cost, p.resolution, kNeverVisible, p.order);
        ++counters_.fragment_plans_seeded;
      }
      sealed_[q.mask()] = 1;
      ++counters_.fragment_cells_seeded;
    }
  }
  // Keep the no-seals fast path if this probe also came up empty.
  if (!had_seals && counters_.fragment_cells_seeded == seeded_before) {
    sealed_.clear();
  }
}

void IncrementalOptimizer::UnsealForBoundsChange() {
  if (counters_.fragment_cells_seeded == 0 || sealed_.empty()) return;
  sealed_.clear();
  const int n = factory_.NumTables();
  for (size_t k = 1; k <= static_cast<size_t>(n); ++k) {
    for (TableSet q : connected_by_size_[k]) {
      res_.For(q).ResetVisibility();
    }
  }
}

std::vector<IncrementalOptimizer::PublishableFragment>
IncrementalOptimizer::TakePublishableFragments() {
  std::vector<PublishableFragment> out;
  if (!options_.fragment_publish || !publish_valid_ || last_resolution_ < 0) {
    return out;
  }
  const int n = factory_.NumTables();
  for (size_t k = 2; k <= static_cast<size_t>(n); ++k) {
    for (TableSet q : connected_by_size_[k]) {
      if (IsSealed(q)) continue;  // Already in the store; logs are empty.
      std::vector<FragmentPlan>& log = publish_log_[q.mask()];
      if (log.empty()) continue;
      out.push_back({q, last_resolution_, std::move(log)});
      log.clear();
    }
  }
  return out;
}

void IncrementalOptimizer::PrunePlan(TableSet q, uint32_t plan_id,
                                     const CostVector& cost, int order,
                                     const CostVector& bounds,
                                     int resolution) {
  const int compare_resolution = options_.prune_against_all_resolutions
                                     ? schedule_.MaxResolution()
                                     : resolution;
  const PruneOutcome outcome =
      Prune(res_.For(q), cand_.For(q), bounds, resolution, compare_resolution,
            schedule_, plan_id, cost, order, invocation_,
            options_.park_next_level_only, &counters_);
  // Fragment publishing logs every multi-table result insertion in
  // chronological order — replaying the log reproduces the cell's index
  // layout exactly (see SeedFragments). Logging stops once the run
  // diverged from the publishable fixed-bounds sequence.
  if (outcome == PruneOutcome::kInsertedResult && !publish_log_.empty() &&
      publish_valid_ && q.Count() >= 2) {
    const PlanNode& node = arena_.at(plan_id);
    publish_log_[q.mask()].push_back({cost, node.output_cardinality, node.op,
                                      static_cast<uint8_t>(order),
                                      static_cast<uint8_t>(resolution)});
  }
}

void IncrementalOptimizer::Optimize(const CostVector& bounds,
                                    int resolution) {
  MOQO_CHECK(resolution >= 0 && resolution <= schedule_.MaxResolution());
  MOQO_CHECK(bounds.dims() == factory_.cost_model().schema().dims());
  if (first_optimize_done_) {
    ++invocation_;
  } else {
    first_optimize_done_ = true;  // Share invocation 1 with the seeding.
  }

  // Fragment bookkeeping. A bounds change means the run no longer
  // replays a fixed-bounds schedule: publishing stops, and any sealed
  // cells must resume enumeration (their never-tried sub-plan pairings
  // become reachable once the bounds move — see UnsealForBoundsChange).
  if (!bounds.Equals(current_bounds_)) {
    publish_valid_ = false;
    UnsealForBoundsChange();
    current_bounds_ = bounds;
  }
  // Publishable runs step resolutions 0,1,...,R (repeats of the last
  // level allowed — such invocations are no-ops under fixed bounds).
  if (resolution != last_resolution_ && resolution != last_resolution_ + 1) {
    publish_valid_ = false;
  }
  last_resolution_ = resolution;

  const int n = factory_.NumTables();

  // --- Phase 1: re-consider candidate plans (Algorithm 2 lines 6-12). ---
  // Candidates matching the current bounds and resolution are removed and
  // pruned again; Prune may insert them into the result set, re-park them
  // for a finer resolution, or discard them.
  for (size_t k = 1; k <= static_cast<size_t>(n); ++k) {
    for (TableSet q : connected_by_size_[k]) {
      std::vector<CellIndex::Entry> drained =
          cand_.For(q).Drain(bounds, resolution);
      if (drained.empty()) continue;
      std::vector<BatchEntry> batch;
      batch.reserve(drained.size());
      for (const CellIndex::Entry& e : drained) {
        counters_.OnCandidateRetrieved(e.id);
        batch.push_back({e.id, e.cost, 0.0, e.order});
      }
      if (options_.sorted_pruning) SortBatch(batch);
      for (const BatchEntry& e : batch) {
        PrunePlan(q, e.id, e.cost, e.order, bounds, resolution);
      }
    }
  }

  // --- Phase 2: generate fresh plans (Algorithm 2 lines 13-22). ---
  // Bottom-up over connected table sets of increasing cardinality; for
  // each split into two combinable subsets, enumerate only sub-plan pairs
  // with at least one Δ member and an unseen (left, right) combination.
  if (pool_ != nullptr || exchange_ != nullptr) {
    Phase2Partitioned(bounds, resolution);
  } else {
    Phase2Serial(bounds, resolution);
  }
}

void IncrementalOptimizer::Phase2Serial(const CostVector& bounds,
                                        int resolution) {
  const int n = factory_.NumTables();
  std::vector<BatchEntry> batch;
  for (size_t k = 2; k <= static_cast<size_t>(n); ++k) {
    for (TableSet q : connected_by_size_[k]) {
      // A sealed cell already carries its complete frontier (seeded from
      // the fragment store); enumerating it would only regenerate plans
      // the donor run produced. Its sub-cells still get collected by
      // their other (non-sealed) consumers.
      if (IsSealed(q)) continue;
      batch.clear();
      for (SubsetIter split(q); !split.Done(); split.Next()) {
        const TableSet q1 = split.Subset();
        const TableSet q2 = split.Complement();
        if (!factory_.CanCombine(q1, q2)) continue;

        std::vector<CellIndex::Collected> p1 =
            res_.For(q1).Collect(bounds, resolution, invocation_);
        if (p1.empty()) continue;
        std::vector<CellIndex::Collected> p2 =
            res_.For(q2).Collect(bounds, resolution, invocation_);
        if (p2.empty()) continue;

        // Enumerate ΔP1 × P2  ∪  (P1 \ ΔP1) × ΔP2 without touching
        // non-Δ × non-Δ pairs (those were combined in prior invocations).
        auto combine = [&](const CellIndex::Collected& a,
                           const CellIndex::Collected& b) {
          if (!fresh_.Mark(a.id, b.id)) {
            ++counters_.pairs_rejected_stale;
            return;
          }
          ++counters_.pairs_generated;
          // Copy the nodes: the callback below appends to the arena,
          // which may reallocate and invalidate references into it.
          const PlanNode left = arena_.at(a.id);
          const PlanNode right = arena_.at(b.id);
          factory_.ForEachJoin(
              left, right, [&](const OperatorDesc& op, const OpCost& oc) {
                const PlanId id = arena_.AddJoin(
                    q, a.id, b.id, op, oc.cost, oc.output_rows, oc.order);
                ++counters_.plans_generated;
                batch.push_back({id, oc.cost, 0.0, oc.order});
              });
        };

        for (const CellIndex::Collected& a : p1) {
          if (!a.delta) continue;
          for (const CellIndex::Collected& b : p2) combine(a, b);
        }
        for (const CellIndex::Collected& b : p2) {
          if (!b.delta) continue;
          for (const CellIndex::Collected& a : p1) {
            if (a.delta) continue;  // Δ × Δ already handled above.
            combine(a, b);
          }
        }
      }
      // Prune this table set's freshly generated plans, cheapest first,
      // before any superset of q consumes them.
      if (options_.sorted_pruning) SortBatch(batch);
      for (const BatchEntry& e : batch) {
        PrunePlan(q, e.id, e.cost, e.order, bounds, resolution);
      }
    }
  }
}

// Partitioned phase 2 (see OptimizerOptions::num_threads and
// OptimizerOptions::phase2_exchange). Per level k:
//   1. the main thread Collects every connected subset of size k-1 into a
//      cache (sizes < k-1 are already cached: plans inserted at level j go
//      only into size-j sets, so earlier collections stay valid for the
//      rest of the invocation). This performs exactly the visibility
//      stamping the serial path does — the serial split loop collects
//      every connected proper subset of Q each invocation, since any such
//      subset s forms the combinable split (s, {v}) of s ∪ {v} for some
//      neighbor table v;
//   2. the *owned* slice of the level's table sets is enumerated — across
//      the pool when one is bound, serially otherwise. Enumeration probes
//      CanCombine/IsFresh and buffers fresh pairs and their join
//      alternatives into per-set CellDeltas (no shared writes). Without
//      an exchange every cell is owned;
//   3. at the level barrier, an attached exchange swaps deltas so the
//      merged set covers what every participant enumerated. Cells a
//      participant failed to provide (worker death) are re-enumerated
//      locally during the merge — level-k enumeration only reads
//      level-<k state plus fresh-pair entries no other cell can touch
//      (a pair's table sets union to exactly one cell), so a recomputed
//      delta is bit-identical to the one the dead worker would have sent;
//   4. all of the level's cells are merged in canonical set order: pairs
//      are marked in the fresh registry, plans appended to the arena, and
//      each set's batch pruned cheapest-first — the identical sequence of
//      Prune calls the serial path performs, on every replica.
void IncrementalOptimizer::Phase2Partitioned(const CostVector& bounds,
                                             int resolution) {
  const int n = factory_.NumTables();
  if (collected_.empty()) collected_.resize(size_t{1} << n);
  std::vector<std::vector<CellIndex::Collected>>& collected = collected_;
  std::vector<BatchEntry> batch;
  for (size_t k = 2; k <= static_cast<size_t>(n); ++k) {
    for (TableSet s : connected_by_size_[k - 1]) {
      collected[s.mask()] =
          res_.For(s).Collect(bounds, resolution, invocation_);
    }
    // Sealed (fragment-seeded) cells are excluded from the dispatch; the
    // merge below then visits the same cells in the same canonical order
    // as the serial path's seal-aware loop.
    const std::vector<TableSet>* level = &connected_by_size_[k];
    std::vector<TableSet> live;
    if (!sealed_.empty()) {
      live.reserve(level->size());
      for (TableSet q : *level) {
        if (!IsSealed(q)) live.push_back(q);
      }
      level = &live;
    }
    // Empty levels are skipped without an exchange round. Replicas run
    // in lockstep, so every participant skips the same levels and the
    // wire protocol's per-level frame counts stay aligned.
    if (level->empty()) continue;

    // The owned slice: the cells this participant enumerates itself.
    std::vector<TableSet> owned_storage;
    const std::vector<TableSet>* owned = level;
    if (exchange_ != nullptr) {
      owned_storage.reserve(level->size());
      for (TableSet q : *level) {
        if (exchange_->Owns(q)) owned_storage.push_back(q);
      }
      owned = &owned_storage;
    }

    std::vector<CellDelta> deltas(owned->size());
    for (size_t j = 0; j < owned->size(); ++j) deltas[j].cell = (*owned)[j];
    if (pool_ != nullptr && !owned->empty()) {
      pool_->ParallelFor(owned->size(), [&](size_t j) {
        EnumerateFreshPairs((*owned)[j], collected, &deltas[j]);
      });
    } else {
      for (size_t j = 0; j < owned->size(); ++j) {
        EnumerateFreshPairs((*owned)[j], collected, &deltas[j]);
      }
    }

    std::vector<CellDelta> merged;
    if (exchange_ != nullptr) {
      if (!exchange_->ExchangeLevel(invocation_, resolution, k,
                                    std::move(deltas), &merged)) {
        // Released or transport lost mid-invocation: state is now
        // incomplete and the session must be discarded (see
        // exchange_aborted()).
        exchange_aborted_ = true;
        return;
      }
    } else {
      merged = std::move(deltas);
    }

    std::unordered_map<uint32_t, const CellDelta*> by_mask;
    by_mask.reserve(merged.size());
    for (const CellDelta& d : merged) by_mask.emplace(d.cell.mask(), &d);

    CellDelta scratch;
    for (TableSet q : *level) {
      const CellDelta* d;
      const auto it = by_mask.find(q.mask());
      if (it != by_mask.end()) {
        d = it->second;
      } else {
        // Missing from the exchange (dead worker): recompute locally.
        // Same-level merges so far only marked pairs belonging to other
        // cells and appended level-k plans no level-<k Collect sees, so
        // this enumeration matches what the owner would have produced.
        scratch.cell = q;
        scratch.fresh_pairs.clear();
        scratch.joins.clear();
        scratch.stale_pairs = 0;
        EnumerateFreshPairs(q, collected, &scratch);
        d = &scratch;
      }
      counters_.pairs_rejected_stale += d->stale_pairs;
      for (const auto& [left, right] : d->fresh_pairs) {
        // A pair's table sets union to q, so no other cell can have
        // buffered it; marking must succeed.
        const bool was_fresh = fresh_.Mark(left, right);
        MOQO_CHECK(was_fresh);
        ++counters_.pairs_generated;
      }
      batch.clear();
      batch.reserve(d->joins.size());
      for (const CellJoin& pj : d->joins) {
        const PlanId id =
            arena_.AddJoin(q, pj.left, pj.right, pj.op, pj.op_cost.cost,
                           pj.op_cost.output_rows, pj.op_cost.order);
        ++counters_.plans_generated;
        batch.push_back({id, pj.op_cost.cost, 0.0, pj.op_cost.order});
      }
      if (options_.sorted_pruning) SortBatch(batch);
      for (const BatchEntry& e : batch) {
        PrunePlan(q, e.id, e.cost, e.order, bounds, resolution);
      }
    }
  }
}

void IncrementalOptimizer::EnumerateFreshPairs(
    TableSet q,
    const std::vector<std::vector<CellIndex::Collected>>& collected,
    CellDelta* out) const {
  for (SubsetIter split(q); !split.Done(); split.Next()) {
    const TableSet q1 = split.Subset();
    const TableSet q2 = split.Complement();
    if (!factory_.CanCombine(q1, q2)) continue;

    const std::vector<CellIndex::Collected>& p1 = collected[q1.mask()];
    if (p1.empty()) continue;
    const std::vector<CellIndex::Collected>& p2 = collected[q2.mask()];
    if (p2.empty()) continue;

    auto combine = [&](const CellIndex::Collected& a,
                       const CellIndex::Collected& b) {
      if (!fresh_.IsFresh(a.id, b.id)) {
        ++out->stale_pairs;
        return;
      }
      out->fresh_pairs.emplace_back(a.id, b.id);
      // References are stable: the arena is not appended to while the
      // level's workers run.
      const PlanNode& left = arena_.at(a.id);
      const PlanNode& right = arena_.at(b.id);
      factory_.ForEachJoin(
          left, right, [&](const OperatorDesc& op, const OpCost& oc) {
            out->joins.push_back({a.id, b.id, op, oc});
          });
    };

    for (const CellIndex::Collected& a : p1) {
      if (!a.delta) continue;
      for (const CellIndex::Collected& b : p2) combine(a, b);
    }
    for (const CellIndex::Collected& b : p2) {
      if (!b.delta) continue;
      for (const CellIndex::Collected& a : p1) {
        if (a.delta) continue;  // Δ × Δ already handled above.
        combine(a, b);
      }
    }
  }
}

std::vector<CellIndex::Entry> IncrementalOptimizer::ResultPlans(
    const CostVector& bounds, int resolution) const {
  return ResultPlansFor(TableSet::Full(factory_.NumTables()), bounds,
                        resolution);
}

std::vector<CellIndex::Entry> IncrementalOptimizer::ResultPlansFor(
    TableSet q, const CostVector& bounds, int resolution) const {
  std::vector<CellIndex::Entry> out;
  res_.For(q).ForEachInRange(bounds, resolution,
                             [&](const CellIndex::Entry& e) {
                               out.push_back(e);
                             });
  return out;
}

}  // namespace moqo
