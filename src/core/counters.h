// Instrumentation counters for the incremental optimizer.
//
// These make the paper's amortized-complexity lemmas observable: tests
// assert Lemma 5 (each plan generated at most once), Lemma 6 (each
// sub-plan pair generated at most once) and Lemma 7 (each plan retrieved
// at most rM+1 times from the candidate set) directly on these counters.
#ifndef MOQO_CORE_COUNTERS_H_
#define MOQO_CORE_COUNTERS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace moqo {

struct Counters {
  // Plans constructed (scan plans + join plans). Lemma 5 bounds this by
  // the number of distinct possible plans.
  uint64_t plans_generated = 0;
  // Sub-plan pairs passed the IsFresh test (join plans may be several per
  // pair, one per operator). Lemma 6: each pair at most once.
  uint64_t pairs_generated = 0;
  // Pairs rejected by IsFresh (should stay 0 in Δ-exact invocation series).
  uint64_t pairs_rejected_stale = 0;
  // Candidate entries retrieved (drained) for re-consideration.
  uint64_t candidate_retrievals = 0;
  // Prune invocations and their outcomes.
  uint64_t prune_calls = 0;
  uint64_t result_insertions = 0;
  uint64_t candidate_insertions = 0;
  uint64_t plans_discarded = 0;  // Dominated at max resolution.
  // Dominance comparisons performed inside Prune.
  uint64_t dominance_checks = 0;
  // Cross-query fragment sharing (core/fragment.h): cells whose result
  // set was seeded from a FragmentProvider hit (and sealed against
  // phase-2 enumeration), and the plans installed that way. Seeded plans
  // do not count as plans_generated — the generation counters measure
  // the work sharing saves.
  uint64_t fragment_cells_seeded = 0;
  uint64_t fragment_plans_seeded = 0;

  // Per-plan candidate retrieval counts (for Lemma 7 assertions). Only
  // maintained when `track_per_plan` is set.
  bool track_per_plan = false;
  std::unordered_map<uint32_t, uint32_t> retrievals_by_plan;

  void OnCandidateRetrieved(uint32_t plan_id) {
    ++candidate_retrievals;
    if (track_per_plan) ++retrievals_by_plan[plan_id];
  }

  std::string ToString() const;
};

}  // namespace moqo

#endif  // MOQO_CORE_COUNTERS_H_
