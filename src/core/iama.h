// IAMA: the Incremental Anytime Multi-objective query optimization
// Algorithm — main control loop (paper §4.1, Algorithm 1).
//
// An IamaSession drives one interactive optimization of one query. Each
// Step() performs one iteration of the main control loop: it invokes the
// incremental optimizer for the current bounds and resolution, takes a
// frontier snapshot (the "Visualize" call of the paper), and then either
// refines the resolution or — if the interaction policy changed the
// bounds — resets the resolution to 0. The session ends when the policy
// selects a plan (or the caller stops stepping).
//
// The human user of the paper's interactive interface is modelled by the
// InteractionPolicy interface; scripted policies reproduce the paper's
// evaluation scenarios (no interaction; bound tightening/relaxing).
#ifndef MOQO_CORE_IAMA_H_
#define MOQO_CORE_IAMA_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/incremental_optimizer.h"
#include "core/resolution.h"
#include "cost/cost_vector.h"
#include "plan/cost_model.h"

namespace moqo {

// What the "user" sees after each optimizer invocation: the cost vectors
// of the completed result plans respecting the current bounds at the
// current resolution (Res^Q[0..b, 0..r]).
struct FrontierSnapshot {
  int iteration = 0;           // Main-loop iteration number (1-based).
  int resolution = 0;          // Resolution used by this iteration.
  double alpha = 1.0;          // Precision factor of that resolution.
  CostVector bounds;           // Bounds used by this iteration.
  std::vector<CellIndex::Entry> plans;
};

// A user action taken after looking at a frontier snapshot.
struct UserAction {
  enum class Kind {
    kContinue,      // No input; the loop refines the resolution.
    kSetBounds,     // Drag bounds to a new position; resolution resets.
    kSelectPlan,    // Click a cost tradeoff; optimization ends.
  };
  Kind kind = Kind::kContinue;
  CostVector new_bounds;  // For kSetBounds.
  PlanId selected = kInvalidPlan;  // For kSelectPlan.

  static UserAction Continue() { return {}; }
  static UserAction SetBounds(const CostVector& b) {
    UserAction a;
    a.kind = Kind::kSetBounds;
    a.new_bounds = b;
    return a;
  }
  static UserAction SelectPlan(PlanId p) {
    UserAction a;
    a.kind = Kind::kSelectPlan;
    a.selected = p;
    return a;
  }
};

// Models the user in the interactive loop.
class InteractionPolicy {
 public:
  virtual ~InteractionPolicy() = default;
  virtual UserAction OnSnapshot(const FrontierSnapshot& snapshot) = 0;
};

// The paper's evaluation scenario: no user interaction, bounds fixed.
class NoInteractionPolicy : public InteractionPolicy {
 public:
  UserAction OnSnapshot(const FrontierSnapshot&) override {
    return UserAction::Continue();
  }
};

// Replays a scripted sequence of (iteration -> action) events; useful for
// bound-dragging scenarios in tests and benchmarks. If several events
// name the same iteration, the first one in the script wins — one action
// per snapshot, later duplicates are ignored.
class ScriptedPolicy : public InteractionPolicy {
 public:
  struct Event {
    int iteration;      // 1-based main-loop iteration after which to act.
    UserAction action;
  };
  explicit ScriptedPolicy(std::vector<Event> events)
      : events_(std::move(events)) {}

  UserAction OnSnapshot(const FrontierSnapshot& snapshot) override {
    for (const Event& e : events_) {
      if (e.iteration == snapshot.iteration) return e.action;
    }
    return UserAction::Continue();
  }

 private:
  std::vector<Event> events_;
};

struct IamaOptions {
  ResolutionSchedule schedule = ResolutionSchedule::Moderate(5);
  // Default bounds (Algorithm 1 line 5); infinite = unbounded.
  std::optional<CostVector> initial_bounds;
  OptimizerOptions optimizer;
};

// Result of a full Run(): the selected plan (if any) plus statistics.
struct SessionResult {
  PlanId selected_plan = kInvalidPlan;
  int iterations = 0;
};

class IamaSession {
 public:
  IamaSession(const PlanFactory& factory, IamaOptions options);

  // Performs one main-loop iteration (optimize + visualize) and returns
  // the snapshot. Afterwards, apply a user action via ApplyAction (or use
  // Run below). Resolution advancement happens inside ApplyAction.
  FrontierSnapshot Step();

  // Applies a user action to the loop state; returns true if the session
  // ended (plan selected).
  bool ApplyAction(const UserAction& action);

  // Runs the main loop until the policy selects a plan or `max_iterations`
  // snapshots were produced. `observer`, if given, sees every snapshot.
  SessionResult Run(InteractionPolicy* policy, int max_iterations,
                    const std::function<void(const FrontierSnapshot&)>&
                        observer = nullptr);

  const IncrementalOptimizer& optimizer() const { return optimizer_; }
  const CostVector& bounds() const { return bounds_; }
  int resolution() const { return resolution_; }
  int iteration() const { return iteration_; }

 private:
  const PlanFactory& factory_;
  IamaOptions options_;
  CostVector bounds_;
  IncrementalOptimizer optimizer_;
  int resolution_ = 0;
  int iteration_ = 0;
};

}  // namespace moqo

#endif  // MOQO_CORE_IAMA_H_
