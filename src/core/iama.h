/// \file
/// IAMA: the Incremental Anytime Multi-objective query optimization
/// Algorithm — main control loop (paper §4.1, Algorithm 1).
///
/// An IamaSession drives one interactive optimization of one query. Each
/// Step() performs one iteration of the main control loop: it invokes the
/// incremental optimizer for the current bounds and resolution, takes a
/// frontier snapshot (the "Visualize" call of the paper), and then either
/// refines the resolution or — if the interaction policy changed the
/// bounds — resets the resolution to 0. The session ends when the policy
/// selects a plan (or the caller stops stepping).
///
/// The human user of the paper's interactive interface is modelled by the
/// InteractionPolicy interface; scripted policies reproduce the paper's
/// evaluation scenarios (no interaction; bound tightening/relaxing).
#ifndef MOQO_CORE_IAMA_H_
#define MOQO_CORE_IAMA_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/incremental_optimizer.h"
#include "core/resolution.h"
#include "cost/cost_vector.h"
#include "plan/cost_model.h"

namespace moqo {

/// What the "user" sees after each optimizer invocation: the cost vectors
/// of the completed result plans respecting the current bounds at the
/// current resolution (Res^Q[0..b, 0..r]).
struct FrontierSnapshot {
  /// Main-loop iteration number (1-based).
  int iteration = 0;
  /// Resolution used by this iteration.
  int resolution = 0;
  /// Precision factor of that resolution.
  double alpha = 1.0;
  /// Bounds used by this iteration.
  CostVector bounds;
  /// The approximate Pareto frontier: one entry per result plan, carrying
  /// the plan id, cost vector, interesting-order tag, and the resolution
  /// the plan was inserted at.
  std::vector<CellIndex::Entry> plans;
};

/// A user action taken after looking at a frontier snapshot.
struct UserAction {
  /// The kind of interaction (paper Figure 1: wait, drag bounds, click).
  enum class Kind {
    kContinue,    ///< No input; the loop refines the resolution.
    kSetBounds,   ///< Drag bounds to a new position; resolution resets.
    kSelectPlan,  ///< Click a cost tradeoff; optimization ends.
  };
  /// Which action this is; determines which payload field is meaningful.
  Kind kind = Kind::kContinue;
  /// New cost bounds; only meaningful for kSetBounds.
  CostVector new_bounds;
  /// The chosen plan; only meaningful for kSelectPlan.
  PlanId selected = kInvalidPlan;

  /// The no-input action: refine the resolution.
  static UserAction Continue() { return {}; }
  /// A bounds-drag action: restrict (or relax) the cost space to `b`.
  static UserAction SetBounds(const CostVector& b) {
    UserAction a;
    a.kind = Kind::kSetBounds;
    a.new_bounds = b;
    return a;
  }
  /// A plan-click action: end the session with plan `p`.
  static UserAction SelectPlan(PlanId p) {
    UserAction a;
    a.kind = Kind::kSelectPlan;
    a.selected = p;
    return a;
  }
};

/// Models the user in the interactive loop.
class InteractionPolicy {
 public:
  virtual ~InteractionPolicy() = default;  ///< Polymorphic base.
  /// Returns the action the modelled user takes after seeing `snapshot`.
  virtual UserAction OnSnapshot(const FrontierSnapshot& snapshot) = 0;
};

/// The paper's evaluation scenario: no user interaction, bounds fixed.
class NoInteractionPolicy : public InteractionPolicy {
 public:
  /// Always continues (pure resolution refinement).
  UserAction OnSnapshot(const FrontierSnapshot&) override {
    return UserAction::Continue();
  }
};

/// Replays a scripted sequence of (iteration -> action) events; useful for
/// bound-dragging scenarios in tests and benchmarks. If several events
/// name the same iteration, the first one in the script wins — one action
/// per snapshot, later duplicates are ignored.
class ScriptedPolicy : public InteractionPolicy {
 public:
  /// One scripted interaction: act after the named main-loop iteration.
  struct Event {
    /// 1-based main-loop iteration after which to act.
    int iteration;
    /// The action to take at that iteration.
    UserAction action;
  };
  /// Builds a policy replaying `events` (order defines tie-breaking).
  explicit ScriptedPolicy(std::vector<Event> events)
      : events_(std::move(events)) {}

  /// Returns the scripted action for this snapshot's iteration, or
  /// Continue when no event matches.
  UserAction OnSnapshot(const FrontierSnapshot& snapshot) override {
    for (const Event& e : events_) {
      if (e.iteration == snapshot.iteration) return e.action;
    }
    return UserAction::Continue();
  }

 private:
  std::vector<Event> events_;
};

/// Configuration of one IamaSession.
struct IamaOptions {
  /// The resolution (precision) schedule driving anytime refinement.
  ResolutionSchedule schedule = ResolutionSchedule::Moderate(5);
  /// Default bounds (Algorithm 1 line 5); unset = unbounded.
  std::optional<CostVector> initial_bounds;
  /// Per-invocation optimizer knobs (pruning design, threading, pool,
  /// cross-query fragment sharing via OptimizerOptions::fragment_store /
  /// OptimizerOptions::fragment_publish).
  OptimizerOptions optimizer;
};

/// Result of a full Run(): the selected plan (if any) plus statistics.
struct SessionResult {
  /// The plan chosen by the policy; kInvalidPlan if the loop just ended.
  PlanId selected_plan = kInvalidPlan;
  /// Main-loop iterations executed.
  int iterations = 0;
};

/// One interactive anytime optimization of one query (Algorithm 1).
///
/// Drive it either step by step — Step() then ApplyAction() — or with
/// Run(), which loops a policy until it selects a plan. The session is
/// not thread-safe; exactly one thread may drive it at a time (the
/// sharded OptimizerService guarantees this by construction).
class IamaSession {
 public:
  /// Binds the session to a query's plan space. `factory` must outlive
  /// the session.
  IamaSession(const PlanFactory& factory, IamaOptions options);

  /// Performs one main-loop iteration (optimize + visualize) and returns
  /// the snapshot. Afterwards, apply a user action via ApplyAction (or use
  /// Run below). Resolution advancement happens inside ApplyAction.
  FrontierSnapshot Step();

  /// Applies a user action to the loop state; returns true if the session
  /// ended (plan selected).
  bool ApplyAction(const UserAction& action);

  /// Re-bounds the session mid-run — the programmatic form of the user
  /// dragging bounds (UserAction::kSetBounds), exposed for serving layers
  /// (OptimizerService::ApplyBounds). The resolution resets to 0 so the
  /// next Step() shows first results for the new bounds quickly, and all
  /// previously generated plans are reused (the incremental property:
  /// paper §4.2, bounds-change path). Returns false — changing nothing —
  /// if `bounds` does not match the session's metric dimensionality.
  bool SetBounds(const CostVector& bounds);

  /// Rebinds the session's optimizer to `pool` (null = serial phase 2).
  /// The work-stealing hook for serving layers: a scheduler thread that
  /// picks this session up rebinds it to its own pool partition before
  /// stepping, so a pool never sees two concurrent ParallelFor callers.
  /// Only legal between Step() invocations, from the driving thread; see
  /// IncrementalOptimizer::RebindPool for the full contract.
  void RebindPool(ThreadPool* pool) { optimizer_.RebindPool(pool); }

  /// Runs the main loop until the policy selects a plan or
  /// `max_iterations` snapshots were produced. `observer`, if given, sees
  /// every snapshot.
  SessionResult Run(InteractionPolicy* policy, int max_iterations,
                    const std::function<void(const FrontierSnapshot&)>&
                        observer = nullptr);

  /// The underlying incremental optimizer (live counters, plan arena).
  const IncrementalOptimizer& optimizer() const { return optimizer_; }
  /// Mutable access to the optimizer, for serving layers that harvest
  /// cross-query fragment publications after a completed run
  /// (IncrementalOptimizer::TakePublishableFragments). Same threading
  /// contract as Step(): only the thread driving the session, only
  /// between invocations.
  IncrementalOptimizer* mutable_optimizer() { return &optimizer_; }
  /// The bounds the next Step() will optimize under.
  const CostVector& bounds() const { return bounds_; }
  /// The resolution the next Step() will optimize at.
  int resolution() const { return resolution_; }
  /// Main-loop iterations executed so far (= snapshots produced).
  int iteration() const { return iteration_; }

 private:
  const PlanFactory& factory_;
  IamaOptions options_;
  CostVector bounds_;
  IncrementalOptimizer optimizer_;
  int resolution_ = 0;
  int iteration_ = 0;
};

}  // namespace moqo

#endif  // MOQO_CORE_IAMA_H_
