#include "core/counters.h"

#include "util/str.h"

namespace moqo {

std::string Counters::ToString() const {
  return StrFormat(
      "plans=%llu pairs=%llu stale_pairs=%llu cand_retrievals=%llu "
      "prunes=%llu res_ins=%llu cand_ins=%llu discarded=%llu dom_checks=%llu "
      "frag_cells=%llu frag_plans=%llu",
      static_cast<unsigned long long>(plans_generated),
      static_cast<unsigned long long>(pairs_generated),
      static_cast<unsigned long long>(pairs_rejected_stale),
      static_cast<unsigned long long>(candidate_retrievals),
      static_cast<unsigned long long>(prune_calls),
      static_cast<unsigned long long>(result_insertions),
      static_cast<unsigned long long>(candidate_insertions),
      static_cast<unsigned long long>(plans_discarded),
      static_cast<unsigned long long>(dominance_checks),
      static_cast<unsigned long long>(fragment_cells_seeded),
      static_cast<unsigned long long>(fragment_plans_seeded));
}

}  // namespace moqo
