// Fresh sub-plan pair bookkeeping (paper Algorithm 3, function Fresh).
//
// The incremental optimizer must never combine the same pair of sub-plans
// twice across invocations (Lemma 6). Two mechanisms cooperate:
//   * the Δ-sets: only pairs with at least one member whose visibility is
//     new in the current invocation are enumerated (see
//     CellIndex::Collect), which keeps enumeration cost proportional to
//     the change between invocations; and
//   * the IsFresh predicate: a hash set over ordered (left, right) plan-id
//     pairs, which guarantees at-most-once generation even when the Δ-sets
//     degenerate to the full sets (e.g. after the user relaxes bounds).
#ifndef MOQO_CORE_FRESH_H_
#define MOQO_CORE_FRESH_H_

#include <cstdint>
#include <unordered_set>

namespace moqo {

class FreshPairRegistry {
 public:
  // True if the ordered pair (left, right) has not been combined yet.
  bool IsFresh(uint32_t left, uint32_t right) const {
    return seen_.find(PairKey(left, right)) == seen_.end();
  }

  // Records the pair as combined; returns false if it already was.
  bool Mark(uint32_t left, uint32_t right) {
    return seen_.insert(PairKey(left, right)).second;
  }

  size_t size() const { return seen_.size(); }

 private:
  static uint64_t PairKey(uint32_t left, uint32_t right) {
    return (static_cast<uint64_t>(left) << 32) | right;
  }

  std::unordered_set<uint64_t> seen_;
};

}  // namespace moqo

#endif  // MOQO_CORE_FRESH_H_
