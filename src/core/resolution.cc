#include "core/resolution.h"

#include <cmath>

namespace moqo {

ResolutionSchedule::ResolutionSchedule(int num_levels, double alpha_target,
                                       double alpha_step, Kind kind)
    : num_levels_(num_levels),
      alpha_target_(alpha_target),
      alpha_step_(alpha_step),
      kind_(kind) {
  MOQO_CHECK(num_levels >= 1 && num_levels <= 256);
  MOQO_CHECK(alpha_target > 1.0);
  MOQO_CHECK(alpha_step >= 0.0);
}

double ResolutionSchedule::Alpha(int r) const {
  MOQO_CHECK(r >= 0 && r <= MaxResolution());
  const int rm = MaxResolution();
  if (rm == 0 || alpha_step_ == 0.0) return alpha_target_;
  switch (kind_) {
    case Kind::kLinear:
      return alpha_target_ + alpha_step_ * static_cast<double>(rm - r) /
                                 static_cast<double>(rm);
    case Kind::kGeometric: {
      // (α_r - 1) interpolates geometrically from (α_T + α_S - 1) down to
      // (α_T - 1).
      const double hi = alpha_target_ + alpha_step_ - 1.0;
      const double lo = alpha_target_ - 1.0;
      const double t = static_cast<double>(r) / static_cast<double>(rm);
      return 1.0 + hi * std::pow(lo / hi, t);
    }
  }
  return alpha_target_;
}

}  // namespace moqo
