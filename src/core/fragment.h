/// \file
/// Cross-query plan-fragment sharing: core-side types and provider hook.
///
/// The IAMA optimizer builds its Pareto frontiers bottom-up over the
/// connected sub-join-graphs ("cells") of a query. Two queries that share
/// a sub-join-graph derive, cell for cell, bit-identical result plan sets
/// for it — the per-cell evolution depends only on the cell's own
/// sub-DAG, never on the rest of the query (see
/// docs/FRAGMENT_SHARING.md for the full argument). A FragmentProvider
/// exploits this: at construction the optimizer offers every connected
/// cell with at least two tables to the provider; on a hit the cell's
/// result set is *seeded* with the stored frontier and *sealed* — phase-2
/// enumeration never runs for it — and on completion the optimizer's
/// per-cell insertion logs can be published back through the serving
/// layer (`IncrementalOptimizer::TakePublishableFragments`).
///
/// This header is deliberately service-agnostic: the canonical cross-
/// query keying, the concurrent LRU store, and the interesting-order tag
/// translation live in src/service/fragment_store.h. Core code deals
/// only in *this query's* local table sets and order tags.
#ifndef MOQO_CORE_FRAGMENT_H_
#define MOQO_CORE_FRAGMENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cost/cost_vector.h"
#include "plan/operators.h"
#include "util/table_set.h"

namespace moqo {

/// One result plan of a shared fragment frontier: everything a consuming
/// query needs to materialize the plan as an opaque leaf in its own plan
/// arena and to index it exactly where the cold run would have.
struct FragmentPlan {
  /// The plan's multi-objective cost (consumer metric schema).
  CostVector cost;
  /// Estimated output cardinality (joins above the fragment read it).
  double output_rows = 0.0;
  /// The donor plan's root operator (display/debug only; costs are
  /// cached, so operators of sub-plans are never re-evaluated).
  OperatorDesc op;
  /// Interesting-order tag. In a FragmentSeed and in
  /// IncrementalOptimizer::PublishableFragment this is the *local* tag of
  /// the query at hand; the serving layer translates through a canonical
  /// fragment-relative encoding when storing (see FragmentQueryBinding).
  uint8_t order = 0;
  /// Resolution level the donor run inserted the plan at. Seeded entries
  /// keep this stamp, so a consumer's frontier at any resolution r shows
  /// exactly the plans a cold run would have inserted by then.
  uint8_t resolution = 0;
};

/// A fragment-store hit, already translated into the consuming query's
/// local order tags: the full result-set insertion history of one cell.
struct FragmentSeed {
  /// Finest resolution level the donor run completed for this cell; a
  /// provider only returns seeds whose level covers the consumer's
  /// schedule (prefix property: entries stamped <= r are exactly the
  /// cell's state after a cold run through resolution r).
  int resolution_complete = 0;
  /// The cell's result plans in the donor's chronological insertion
  /// order. Replaying them in order reproduces the cold run's cell-index
  /// layout bit for bit (hash-map iteration order included).
  std::vector<FragmentPlan> plans;
};

/// The optimizer-side hook for cross-query fragment sharing. Implemented
/// by the serving layer (FragmentStoreProvider); the optimizer calls it
/// once per connected multi-table cell during construction.
class FragmentProvider {
 public:
  virtual ~FragmentProvider() = default;  ///< Polymorphic base.
  /// Returns the stored frontier for `cell` — with plans carrying this
  /// query's local order tags and a resolution_complete of at least
  /// `needed_resolution` — or std::nullopt on a miss (unknown cell, too
  /// coarse a stored run, ineligible cell, ...).
  virtual std::optional<FragmentSeed> Lookup(TableSet cell,
                                             int needed_resolution) = 0;
};

}  // namespace moqo

#endif  // MOQO_CORE_FRAGMENT_H_
