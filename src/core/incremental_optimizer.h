// The incremental multi-objective optimizer (paper §4.2, Algorithm 2).
//
// One IncrementalOptimizer instance holds all state for one query:
//   * the plan arena (all plans ever generated, never discarded),
//   * the result plan sets Res^q and candidate plan sets Cand^q, indexed
//     by cost vector and resolution level (CellIndex),
//   * the IsFresh pair registry.
//
// Each call to Optimize(bounds, resolution) performs one invocation of
// procedure Optimize: phase 1 re-considers candidate plans that match the
// current bounds/resolution; phase 2 generates fresh join plans bottom-up
// over table subsets, combining only sub-plan pairs that were not combined
// before. After the call, Res^q[0..b, 0..r] is an α_r^|q|-approximate
// b-bounded Pareto plan set for every table subset q (Theorems 1 and 2).
#ifndef MOQO_CORE_INCREMENTAL_OPTIMIZER_H_
#define MOQO_CORE_INCREMENTAL_OPTIMIZER_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/counters.h"
#include "core/fragment.h"
#include "core/fresh.h"
#include "core/resolution.h"
#include "cost/cost_vector.h"
#include "index/cell_index.h"
#include "index/plan_set.h"
#include "plan/arena.h"
#include "plan/cost_model.h"
#include "util/thread_pool.h"

namespace moqo {

// --- Distributed phase-2 partitioning (docs/DISTRIBUTED.md) ---

// One join alternative of a fresh sub-plan pair, produced by phase-2
// enumeration of a cell; turned into an arena plan during the level
// merge. `left`/`right` are arena plan ids — valid on any replica whose
// optimizer state is in lockstep with the producer's (the distributed
// tier's invariant).
struct CellJoin {
  uint32_t left = 0;
  uint32_t right = 0;
  OperatorDesc op;
  OpCost op_cost;
};

// The complete phase-2 enumeration output of one cell at one level: the
// fresh sub-plan pairs tried, every join alternative they produced
// (pre-prune — pruning happens identically on every replica during the
// merge), and the count of stale pairs skipped. This is the unit the
// distributed tier ships between processes; it is also the thread-local
// buffer of the in-process parallel engine.
struct CellDelta {
  TableSet cell;
  std::vector<std::pair<uint32_t, uint32_t>> fresh_pairs;
  std::vector<CellJoin> joins;
  uint64_t stale_pairs = 0;
};

// Partitions phase-2 enumeration across replicated optimizers. Every
// participant holds a full IncrementalOptimizer replica built
// identically; per level each enumerates only the cells it Owns(), then
// ExchangeLevel swaps deltas so that every replica merges the same set
// in the same canonical order — arena ids and all downstream state stay
// in bit-identical lockstep. ExchangeLevel returns the deltas it can
// provide; any live cell missing from `merged` is re-enumerated locally
// by the caller (the universal failure path: a dead worker's cells are
// simply absent, and every replica recomputes them — level-k enumeration
// only reads level-<k state, so recompute order is irrelevant). A false
// return aborts the invocation (see IncrementalOptimizer::
// exchange_aborted()); the optimizer's state is then mid-invocation and
// the session must be discarded.
class Phase2Exchange {
 public:
  virtual ~Phase2Exchange() = default;
  // True when this participant enumerates `cell`. Ownership must
  // partition each level's cells across participants identically on
  // every replica (typically a deterministic hash of the cell mask).
  virtual bool Owns(TableSet cell) = 0;
  // Swaps this participant's `local` level-`level` deltas for the merged
  // delta set of all participants. Returns false to abort the run
  // (coordinator released this worker, or the transport died).
  virtual bool ExchangeLevel(uint32_t invocation, int resolution,
                             size_t level, std::vector<CellDelta> local,
                             std::vector<CellDelta>* merged) = 0;
};

struct OptimizerOptions {
  // Logarithmic cell width of the plan indexes.
  double cell_gamma = 2.0;
  // Track per-plan candidate retrieval counts (Lemma 7 assertions).
  bool track_per_plan_counters = false;
  // Ablation switch (§4.2 design decision): when true, the pruning
  // dominance check consults result plans at ALL resolution levels
  // instead of only levels <= the current one. This trades the
  // per-invocation complexity guarantee for smaller result sets; the
  // bench_prune_design binary quantifies the difference. Note that with
  // this switch the intermediate-resolution guarantee (Theorem 2 for
  // r < rM) no longer holds — only the final resolution's does.
  bool prune_against_all_resolutions = false;
  // Ablation switch: paper-literal candidate parking at resolution r+1
  // instead of skip-ahead parking (see pruning.h). Skip-ahead avoids
  // re-examining strictly dominated plans at every resolution level.
  bool park_next_level_only = false;
  // Prune plans within a batch (per table set and invocation phase) in
  // ascending cost order. Because result plans are never discarded,
  // arrival order determines how many redundant near-duplicates enter the
  // result sets; sorted insertion keeps them close to minimal. The
  // guarantees are order-independent, so this is purely a performance
  // lever (ablated in bench_prune_design).
  bool sorted_pruning = true;
  // Number of threads used by phase 2 (fresh plan generation). Must be
  // >= 1 (CHECKed by the optimizer constructor); 1 (the default) runs
  // the exact legacy single-threaded code path.
  //
  // The parallel engine shards the connected table subsets of each
  // cardinality level k across a fixed pool of workers and joins them at a
  // per-level barrier, preserving the bottom-up dependency on levels < k.
  // Workers are pure readers: the sub-plan sets each level consumes are
  // collected once on the main thread before the level is dispatched, and
  // workers only probe IsFresh and buffer (left, right, operator, cost)
  // tuples thread-locally. After the barrier the buffers are merged on
  // the main thread in the canonical table-set order — appending to the
  // plan arena, marking fresh pairs, and pruning each subset's batch in
  // sorted cost order — so CellIndex, PlanSetTable, PlanArena, and
  // FreshPairRegistry stay single-writer and lock-free, and the result
  // frontiers are bit-identical to the num_threads=1 run (Theorems 1-2
  // are untouched; parallel_optimizer_test asserts the equivalence).
  int num_threads = 1;
  // Optional externally owned pool. When set it is used instead of
  // spawning num_threads workers — callers can share one pool across
  // optimizers (or keep thread spawning out of timed regions). Must
  // outlive the optimizer; only the optimizer's thread may Optimize.
  // If both `pool` and `num_threads > 1` are set, the pool wins: the
  // optimizer never spawns its own workers next to an injected pool
  // (num_threads is ignored; observable via IncrementalOptimizer::pool()
  // / owns_pool(), pinned by edge_cases_test).
  ThreadPool* pool = nullptr;
  // Cross-query plan-fragment sharing (docs/FRAGMENT_SHARING.md). When
  // set, the constructor offers every connected table subset with >= 2
  // tables to the provider; on a hit the subset's result set is seeded
  // with the stored frontier and the cell is *sealed* — phase-2
  // enumeration skips it, which is where the cross-query work saving
  // comes from. Seeding preserves bit-identical frontiers versus a cold
  // run as long as the bounds never change; a bounds change automatically
  // unseals every cell and re-enables full enumeration (results stay
  // correct α-approximations, but are no longer bit-identical to a cold
  // run that diverged at the same point). Must outlive the optimizer.
  FragmentProvider* fragment_store = nullptr;
  // Record each cell's chronological result-set insertions so a completed
  // run can publish them back through the serving layer
  // (TakePublishableFragments). Costs one log append per result
  // insertion plus one FragmentPlan of memory per result plan.
  bool fragment_publish = false;
  // Distributed phase-2 partitioning (docs/DISTRIBUTED.md). When set,
  // phase 2 enumerates only the cells the exchange Owns() and swaps
  // per-cell deltas with the other replicas at each level barrier.
  // Mutually exclusive with fragment_store/fragment_publish (seeding on
  // one replica would break lockstep; the service enforces this). Must
  // outlive the optimizer, or be detached via SetPhase2Exchange(nullptr)
  // between invocations.
  Phase2Exchange* phase2_exchange = nullptr;
};

class IncrementalOptimizer {
 public:
  // Seeds the scan plans for every query table and prunes them at
  // resolution 0 under `initial_bounds` (Algorithm 1 lines 7-10). The
  // factory must outlive the optimizer.
  IncrementalOptimizer(const PlanFactory& factory,
                       ResolutionSchedule schedule,
                       const CostVector& initial_bounds,
                       OptimizerOptions options = {});

  IncrementalOptimizer(const IncrementalOptimizer&) = delete;
  IncrementalOptimizer& operator=(const IncrementalOptimizer&) = delete;

  // One invocation of procedure Optimize. `resolution` must be in
  // [0, schedule.MaxResolution()].
  void Optimize(const CostVector& bounds, int resolution);

  // Res^Q[0..b, 0..r]: the completed result plans visualized after an
  // invocation (Algorithm 1 line 16).
  std::vector<CellIndex::Entry> ResultPlans(const CostVector& bounds,
                                            int resolution) const;

  // Res^q[0..b, 0..r] for an arbitrary table subset (tests, diagnostics).
  std::vector<CellIndex::Entry> ResultPlansFor(TableSet q,
                                               const CostVector& bounds,
                                               int resolution) const;

  const PlanFactory& factory() const { return factory_; }
  // The pool phase 2 runs on: the injected options.pool if given, else
  // the owned pool spawned for num_threads > 1, else null (serial path).
  // Lets callers and tests pin the pool-wins contract.
  const ThreadPool* pool() const { return pool_; }
  bool owns_pool() const { return owned_pool_ != nullptr; }
  // Swaps the injected pool phase 2 runs on; `pool` may be null (serial
  // path). For serving layers whose schedulers step one optimizer from
  // different threads over its lifetime (work stealing): each stepping
  // thread rebinds the optimizer to its own pool partition before
  // Optimize, so no pool ever sees two concurrent ParallelFor callers.
  // Only legal between invocations, from the thread driving the
  // optimizer, and only on optimizers that do not own their pool.
  // Thread counts never affect results, so rebinding never changes
  // frontiers.
  void RebindPool(ThreadPool* pool) {
    MOQO_CHECK(owned_pool_ == nullptr);
    pool_ = pool;
  }
  const PlanArena& arena() const { return arena_; }
  const ResolutionSchedule& schedule() const { return schedule_; }
  const Counters& counters() const { return counters_; }
  Counters& mutable_counters() { return counters_; }
  uint32_t invocations_completed() const { return invocation_ - 1; }

  // Total plans currently indexed (result + candidate), for space studies.
  size_t NumResultEntries() const { return res_.TotalSize(); }
  size_t NumCandidateEntries() const { return cand_.TotalSize(); }

  // --- Cross-query fragment sharing (docs/FRAGMENT_SHARING.md) ---

  // One publishable cell: its chronological result insertions, valid for
  // consumers running the same bounds/schedule through resolutions
  // 0..resolution_complete.
  struct PublishableFragment {
    TableSet cell;
    int resolution_complete = 0;
    std::vector<FragmentPlan> plans;
  };

  // Moves out the per-cell insertion logs recorded under
  // options.fragment_publish. Returns an empty vector unless the run so
  // far was publishable: fixed bounds and resolutions stepped
  // 0,1,2,...,R (trailing repeats of R allowed) — exactly the invocation
  // sequence a no-interaction session produces. Sealed (seeded) cells
  // are never re-published; their content already lives in the store.
  std::vector<PublishableFragment> TakePublishableFragments();

  // True when `cell`'s result set was seeded from the fragment provider
  // and phase-2 enumeration is suppressed for it.
  bool IsSealed(TableSet cell) const {
    return !sealed_.empty() && sealed_[cell.mask()] != 0;
  }

  // Re-probes the fragment provider for cells that missed at
  // construction. Admission-time seeding races concurrent publishes: a
  // leader that publishes after this run was admitted (but before its
  // first step) can still be harvested here. Only meaningful before the
  // first Optimize call — a no-op afterwards (seeding into a cell whose
  // enumeration already started would corrupt the replay argument) and
  // without a provider.
  void ReprobeFragments();

  // Attaches (or, with nullptr, detaches) the distributed phase-2
  // exchange. Only legal between invocations, from the thread driving
  // the optimizer. Detaching mid-run is safe: optimizer state is
  // complete at every invocation boundary, so the run simply continues
  // with local enumeration of all cells.
  void SetPhase2Exchange(Phase2Exchange* exchange) { exchange_ = exchange; }
  // True once an ExchangeLevel call returned false: the last Optimize
  // call aborted mid-invocation and the optimizer's state is
  // inconsistent. The session must be discarded, not stepped further.
  bool exchange_aborted() const { return exchange_aborted_; }

 private:
  // Runs Prune for a plan of table set q.
  void PrunePlan(TableSet q, uint32_t plan_id, const CostVector& cost,
                 int order, const CostVector& bounds, int resolution);

  // Seeds and seals every connected multi-table cell the fragment
  // provider has a frontier for (constructor tail).
  void SeedFragments(const CostVector& initial_bounds);
  // Bounds changed on an optimizer that consumed fragments: unseal every
  // cell and force-Δ all result entries, so the pairings the sealed
  // cells never enumerated are (re)tried. The fresh-pair registry keeps
  // already-combined pairs from generating twice; the re-enumeration is
  // a one-time cost of diverging a seeded run.
  void UnsealForBoundsChange();

  // Phase 2 (Algorithm 2 lines 13-22): single-threaded reference path,
  // and the partitioned enumerate-then-merge path used by both the
  // in-process pool (options_.num_threads/pool) and the distributed
  // exchange (options_.phase2_exchange) — per level, enumerate owned
  // cells into CellDeltas, exchange at the level barrier, then merge all
  // cells in canonical order.
  void Phase2Serial(const CostVector& bounds, int resolution);
  void Phase2Partitioned(const CostVector& bounds, int resolution);

  // Worker body of the partitioned phase 2: enumerates the fresh
  // sub-plan pairs of table set q against the pre-collected sub-plan
  // sets and buffers their join alternatives. Read-only on all shared
  // state (out->cell is left untouched).
  void EnumerateFreshPairs(
      TableSet q,
      const std::vector<std::vector<CellIndex::Collected>>& collected,
      CellDelta* out) const;

  const PlanFactory& factory_;
  ResolutionSchedule schedule_;
  OptimizerOptions options_;
  PlanArena arena_;
  PlanSetTable res_;
  PlanSetTable cand_;
  FreshPairRegistry fresh_;
  Counters counters_;
  // Invocation counter; the constructor's scan seeding belongs to
  // invocation 1, which is also used by the first Optimize call.
  uint32_t invocation_ = 1;
  bool first_optimize_done_ = false;
  // All connected table subsets, grouped by cardinality (precomputed).
  std::vector<std::vector<TableSet>> connected_by_size_;
  // Worker pool for the parallel phase 2: the external options_.pool if
  // given, else owned_pool_; null when running single-threaded.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  // Per-invocation cache of Collect() results by table-set mask, reused
  // across Phase2Partitioned calls to avoid re-allocating 2^n vectors.
  std::vector<std::vector<CellIndex::Collected>> collected_;
  // Distributed exchange (options_.phase2_exchange, re-bindable via
  // SetPhase2Exchange); null = all cells enumerated locally.
  Phase2Exchange* exchange_ = nullptr;
  // Sticky: an ExchangeLevel returned false and the invocation aborted.
  bool exchange_aborted_ = false;

  // --- Fragment sharing state ---
  // By mask: 1 = cell seeded from the provider, phase 2 skips it. Empty
  // when no provider was given or after UnsealForBoundsChange.
  std::vector<uint8_t> sealed_;
  // By mask: chronological result-set insertions (fragment_publish).
  std::vector<std::vector<FragmentPlan>> publish_log_;
  // Bounds of the previous invocation; a mismatch marks the run diverged
  // (publishing stops, sealed cells unseal).
  CostVector current_bounds_;
  // Resolution of the previous invocation (-1 before the first); the
  // publishable sequence is 0,1,2,...,R with trailing repeats of R.
  int last_resolution_ = -1;
  // False once the invocation history stops matching a fixed-bounds
  // no-interaction run; TakePublishableFragments then returns nothing.
  bool publish_valid_ = true;
};

}  // namespace moqo

#endif  // MOQO_CORE_INCREMENTAL_OPTIMIZER_H_
