#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace moqo {
namespace net {

OptimizerClient::~OptimizerClient() { Close(); }

void OptimizerClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status OptimizerClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad server address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status st =
        Status::Internal(std::string("connect: ") + strerror(errno));
    Close();
    return st;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Status st = WriteFrame(fd_, MsgType::kHello, EncodeHello(kWireVersion));
  Frame frame;
  if (st.ok()) st = ReadFrame(fd_, &frame);
  if (st.ok()) {
    if (frame.type == static_cast<uint8_t>(MsgType::kHelloOk)) {
      uint32_t wire_version = 0;
      uint32_t api_version = 0;
      st = DecodeHelloOk(frame, &wire_version, &api_version);
    } else if (frame.type == static_cast<uint8_t>(MsgType::kError)) {
      uint64_t tag = 0;
      Status remote;
      st = DecodeError(frame, &tag, &remote);
      if (st.ok()) st = remote;  // The server's refusal, verbatim.
    } else {
      st = Status::InvalidArgument("unexpected handshake reply");
    }
  }
  if (!st.ok()) Close();
  return st;
}

Status OptimizerClient::PumpOne(uint64_t want_tag, Frame* reply,
                                bool* got_reply) {
  *got_reply = false;
  Frame frame;
  MOQO_RETURN_IF_ERROR(ReadFrame(fd_, &frame));
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kSnapshot: {
      SnapshotMsg msg;
      MOQO_RETURN_IF_ERROR(DecodeSnapshot(frame, &msg));
      const QueryId id = msg.id;
      snapshots_[id].push_back(std::move(msg));
      return Status::OK();
    }
    case MsgType::kResult: {
      QueryResult result;
      MOQO_RETURN_IF_ERROR(DecodeResult(frame, &result));
      results_[result.id] = std::move(result);
      return Status::OK();
    }
    case MsgType::kSubmitOk:
    case MsgType::kError:
    case MsgType::kCancelOk: {
      // Reply frames carry the tag first in every encoding.
      Reader r(frame.payload);
      uint64_t tag = 0;
      MOQO_RETURN_IF_ERROR(r.GetU64(&tag));
      if (tag != want_tag) {
        // Blocking calls run one at a time on this connection, so a
        // mismatched reply tag means the two sides disagree about the
        // conversation — unrecoverable.
        return Status::Internal("reply tag mismatch");
      }
      *reply = std::move(frame);
      *got_reply = true;
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("unexpected frame from server");
  }
}

StatusOr<SubmitResponse> OptimizerClient::Submit(const SubmitRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const uint64_t tag = next_tag_++;
  MOQO_RETURN_IF_ERROR(
      WriteFrame(fd_, MsgType::kSubmit, EncodeSubmit(tag, request)));
  Frame reply;
  bool got_reply = false;
  while (!got_reply) {
    MOQO_RETURN_IF_ERROR(PumpOne(tag, &reply, &got_reply));
  }
  if (reply.type == static_cast<uint8_t>(MsgType::kError)) {
    uint64_t reply_tag = 0;
    Status remote;
    MOQO_RETURN_IF_ERROR(DecodeError(reply, &reply_tag, &remote));
    return remote;  // The admission taxonomy, decoded from the wire.
  }
  if (reply.type != static_cast<uint8_t>(MsgType::kSubmitOk)) {
    return Status::Internal("unexpected submit reply type");
  }
  uint64_t reply_tag = 0;
  SubmitResponse response;
  MOQO_RETURN_IF_ERROR(DecodeSubmitOk(reply, &reply_tag, &response));
  known_[response.id] = true;
  return response;
}

StatusOr<bool> OptimizerClient::Cancel(QueryId id) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (known_.find(id) == known_.end()) {
    return Status::NotFound("id was not submitted on this connection");
  }
  const uint64_t tag = next_tag_++;
  MOQO_RETURN_IF_ERROR(
      WriteFrame(fd_, MsgType::kCancel, EncodeCancel(tag, id)));
  Frame reply;
  bool got_reply = false;
  while (!got_reply) {
    MOQO_RETURN_IF_ERROR(PumpOne(tag, &reply, &got_reply));
  }
  if (reply.type == static_cast<uint8_t>(MsgType::kError)) {
    uint64_t reply_tag = 0;
    Status remote;
    MOQO_RETURN_IF_ERROR(DecodeError(reply, &reply_tag, &remote));
    return remote;
  }
  if (reply.type != static_cast<uint8_t>(MsgType::kCancelOk)) {
    return Status::Internal("unexpected cancel reply type");
  }
  uint64_t reply_tag = 0;
  bool cancelled = false;
  MOQO_RETURN_IF_ERROR(DecodeCancelOk(reply, &reply_tag, &cancelled));
  return cancelled;
}

StatusOr<QueryResult> OptimizerClient::Wait(QueryId id) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (known_.find(id) == known_.end()) {
    return Status::NotFound("id was not submitted on this connection");
  }
  for (;;) {
    auto it = results_.find(id);
    if (it != results_.end()) {
      QueryResult result = std::move(it->second);
      results_.erase(it);
      return result;
    }
    // Results arrive unsolicited; pump with a tag no reply can carry
    // (tags start at 1), so any reply frame here is a protocol error.
    Frame reply;
    bool got_reply = false;
    MOQO_RETURN_IF_ERROR(PumpOne(/*want_tag=*/0, &reply, &got_reply));
    if (got_reply) return Status::Internal("unsolicited reply frame");
  }
}

StatusOr<bool> OptimizerClient::WaitSnapshot(QueryId id) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (known_.find(id) == known_.end()) {
    return Status::NotFound("id was not submitted on this connection");
  }
  for (;;) {
    auto snap = snapshots_.find(id);
    if (snap != snapshots_.end() && !snap->second.empty()) return true;
    if (results_.find(id) != results_.end()) return false;
    Frame reply;
    bool got_reply = false;
    MOQO_RETURN_IF_ERROR(PumpOne(/*want_tag=*/0, &reply, &got_reply));
    if (got_reply) return Status::Internal("unsolicited reply frame");
  }
}

std::vector<SnapshotMsg> OptimizerClient::TakeSnapshots(QueryId id) {
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return {};
  std::vector<SnapshotMsg> out = std::move(it->second);
  snapshots_.erase(it);
  return out;
}

}  // namespace net
}  // namespace moqo
