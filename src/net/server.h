/// \file
/// optimizerd's TCP front end: OptimizerServer serves the wire protocol
/// (net/wire.h) over an OptimizerService.
///
/// **Threading model.** One acceptor thread plus one thread per
/// connection. A connection thread multiplexes three event sources with
/// poll(2): its socket (client requests), a per-connection eventfd that
/// every one of the connection's snapshot subscriptions pokes on Push
/// (SnapshotSubscription::SetWakeupFd), and a server-wide stop pipe
/// (closed on Shutdown). Snapshot delivery is therefore pull-based end
/// to end: scheduler shards push into bounded per-run queues and move
/// on; the connection thread drains those queues and writes frames at
/// whatever pace the client sustains. A client that stops reading
/// eventually blocks only *its own* connection thread — its
/// subscriptions then overflow (drop-oldest with gap markers) and every
/// other connection and every scheduler shard is unaffected.
///
/// **Lifecycle.** Start() binds and begins accepting. BeginDrain()
/// closes admission (new submits get kDraining, new connections are
/// refused) while letting in-flight runs finish and deliver results —
/// the rolling-restart half-step. Shutdown() is the hard stop: closes
/// the stop pipe, shuts down every live socket, joins all threads.
/// The destructor calls Shutdown().
#ifndef MOQO_NET_SERVER_H_
#define MOQO_NET_SERVER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "service/optimizer_service.h"
#include "util/status.h"

namespace moqo {
namespace net {

/// Listener configuration for OptimizerServer.
struct ServerOptions {
  /// Interface to bind; loopback by default.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Connection cap; beyond it new connections are refused with a
  /// kShedding error frame before the handshake. 0 = unlimited.
  size_t max_connections = 0;
  /// Kernel send-buffer size (SO_SNDBUF) per accepted connection, in
  /// bytes; 0 keeps the system default. A small value bounds the kernel
  /// memory a non-reading client can pin and makes the end-to-end
  /// backpressure chain engage sooner: the connection thread blocks on
  /// the full socket, its subscription overflows, and drop-oldest takes
  /// over — the scheduler shards never notice.
  size_t send_buffer_bytes = 0;
};

/// The TCP server. Owns the listener, the acceptor thread, and one
/// thread per live connection; does not own the service.
class OptimizerServer {
 public:
  /// Binds to `service` (which must outlive the server) with the given
  /// listener options. No sockets are opened until Start().
  OptimizerServer(OptimizerService* service, ServerOptions options);
  /// Calls Shutdown().
  ~OptimizerServer();

  OptimizerServer(const OptimizerServer&) = delete;
  OptimizerServer& operator=(const OptimizerServer&) = delete;

  /// Binds, listens, and starts the acceptor thread. Returns
  /// kFailedPrecondition if already started, kInternal (with errno
  /// text) on socket failures.
  Status Start();

  /// The bound TCP port (resolves option `port == 0`); valid after a
  /// successful Start().
  uint16_t port() const;

  /// Stops accepting connections and closes service admission
  /// (OptimizerService::BeginDrain): subsequent submits on live
  /// connections fail with kDraining, in-flight runs finish and deliver
  /// their results. Irreversible; idempotent.
  void BeginDrain();

  /// Hard stop: closes the listener and every live connection, joins
  /// all threads. Idempotent. For a graceful restart call BeginDrain(),
  /// wait for the service to go idle (OptimizerService::WaitIdle), then
  /// Shutdown().
  void Shutdown();

  /// Live connection count (gauge).
  size_t active_connections() const;

 private:
  struct Conn {
    std::thread thread;
    int fd = -1;
    bool done = false;
  };

  void AcceptLoop();
  void ServeConnection(Conn* conn);

  OptimizerService* const service_;
  const ServerOptions options_;

  mutable std::mutex mu_;
  std::list<Conn> conns_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  // Connections poll the read end; Shutdown closes the write end and
  // every poller wakes with POLLHUP.
  int stop_pipe_[2] = {-1, -1};
  std::thread acceptor_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace net
}  // namespace moqo

#endif  // MOQO_NET_SERVER_H_
