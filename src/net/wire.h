/// \file
/// The optimizerd wire protocol: framing and message codecs.
///
/// **Framing.** Every message is one frame: a 4-byte little-endian
/// length, one type byte, then `length - 1` payload bytes (the length
/// covers the type byte). Frames longer than kMaxFrameBytes are a
/// protocol error — the peer is disconnected, never buffered.
///
/// **Encoding.** All integers are little-endian fixed width; strings are
/// a u32 length followed by raw bytes; doubles travel as their IEEE-754
/// bit pattern in a u64 (memcpy, no text round trip), which is what
/// makes remote frontiers *bit-identical* to in-process ones — the
/// tier-1 net test diffs FrontierSignatures across the two paths.
///
/// **Defensiveness.** Every decoder returns util::Status and checks
/// every length against the bytes remaining; malformed network input can
/// reject a frame or drop a connection but can never reach a MOQO_CHECK.
/// The codec decodes SUBMIT payloads directly into moqo::SubmitRequest —
/// the same struct in-process callers pass to OptimizerService::Submit —
/// so the wire protocol and the in-process API cannot drift apart.
///
/// See docs/NETWORK_API.md for the message catalog and flow diagrams.
#ifndef MOQO_NET_WIRE_H_
#define MOQO_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "service/service_api.h"
#include "util/status.h"

namespace moqo {
namespace net {

/// Wire protocol version, negotiated by the HELLO handshake. Distinct
/// from kServiceApiVersion (the in-process surface): the wire encodes a
/// subset of SubmitRequest and can rev independently.
inline constexpr uint32_t kWireVersion = 1;

/// Hard ceiling on one frame's length field. Protects the peer from
/// allocating unbounded buffers on a corrupt or hostile length prefix.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Server-side ceiling on SubmitRequest::subscription_capacity arriving
/// over the wire; larger requests are silently clamped by DecodeSubmit.
/// The capacity is a freshness/completeness knob, not a correctness
/// one (anytime frontiers are cumulative), but each queued event pins a
/// deep FrontierSnapshot copy in server memory — an unclamped u32 from
/// a stalled hostile client would defeat the bounded-queue guarantee.
inline constexpr uint32_t kMaxWireSubscriptionCapacity = 1024;

/// Frame type byte. Client-to-server types are < 16, server-to-client
/// types >= 16. Unknown types are a protocol error.
enum class MsgType : uint8_t {
  // Client -> server:
  kHello = 1,     ///< {u32 wire_version} — must be the first frame.
  kSubmit = 2,    ///< {u64 tag, SubmitRequest} — submit a query.
  kCancel = 3,    ///< {u64 tag, u64 id} — cancel one of this
                  ///< connection's runs.
  // Optimizer worker -> coordinator (the distributed tier speaks the
  // same framing on its coordinator/worker socketpairs; the worker is
  // the "client" side of those connections):
  kAssignOk = 8,   ///< {u64 seq, u8 ok, str message} — assignment verdict.
  kDelta = 9,      ///< {u64 seq, str frontier-delta record} — one owned
                   ///< cell's phase-2 enumeration output.
  kLevelDone = 10,  ///< {u64 seq, u64 invocation, u32 level, u32 cells} —
                    ///< all owned deltas for the level were sent.
  kMergeAck = 11,   ///< {u64 seq, u64 invocation, u32 level} — the merged
                    ///< level was applied; the replica is at the barrier.
  // Server -> client:
  kHelloOk = 16,   ///< {u32 wire_version, u32 service_api_version}.
  kSubmitOk = 17,  ///< {u64 tag, u64 id, u64 catalog_version, u8 flags}.
  kError = 18,     ///< {u64 tag, u8 code, u64 retry_after_ms, str msg}.
  kCancelOk = 19,  ///< {u64 tag, u8 cancelled}.
  kSnapshot = 20,  ///< {u64 id, u64 sequence, u64 dropped, frontier}.
  kResult = 21,    ///< {u64 id, QueryResult} — the run's terminal result.
  // Coordinator -> optimizer worker:
  kAssign = 22,     ///< {u64 seq, str partition-assignment record} — begin
                    ///< a distributed run under sequence `seq`.
  kMergeCell = 23,  ///< {u64 seq, str frontier-delta record} — one cell of
                    ///< the merged level set, broadcast in canonical order.
  kMergeDone = 24,  ///< {u64 seq, u64 invocation, u32 level, u32 cells} —
                    ///< the merged level set is complete; apply and ack.
  kRelease = 25,    ///< {u64 seq} — abandon the run (fallback/cancel);
                    ///< the worker discards its replica and reports idle.
};

/// One decoded frame: the type byte plus its raw payload bytes.
struct Frame {
  /// The frame's type byte (validated against MsgType by the dispatcher,
  /// not by the frame reader).
  uint8_t type = 0;
  /// Raw payload (everything after the type byte).
  std::string payload;
};

/// Append-only payload builder. All Put* helpers append little-endian.
class Writer {
 public:
  /// Appends one byte.
  void PutU8(uint8_t v);
  /// Appends a 32-bit little-endian integer.
  void PutU32(uint32_t v);
  /// Appends a 64-bit little-endian integer.
  void PutU64(uint64_t v);
  /// Appends an LEB128 varint (7 value bits per byte, high bit =
  /// continuation; always the minimal encoding, 1-10 bytes). The compact
  /// integer primitive shared with the fragment persistence codec
  /// (service/fragment_codec.h), where counts and epochs are small and
  /// records are stored by the million.
  void PutVarint(uint64_t v);
  /// Appends a double as its IEEE-754 bit pattern (exact round trip).
  void PutF64(double v);
  /// Appends a u32 length prefix followed by the string's bytes.
  void PutStr(const std::string& s);
  /// The accumulated payload.
  const std::string& bytes() const { return out_; }

 private:
  std::string out_;
};

/// Bounds-checked payload reader over a Frame's payload. Every getter
/// returns kInvalidArgument ("truncated frame") when fewer bytes remain
/// than requested — the decode surface for untrusted network input.
class Reader {
 public:
  /// Wraps (not copies) `payload`; the payload must outlive the reader.
  explicit Reader(const std::string& payload);

  /// Reads one byte.
  Status GetU8(uint8_t* v);
  /// Reads a 32-bit little-endian integer.
  Status GetU32(uint32_t* v);
  /// Reads a 64-bit little-endian integer.
  Status GetU64(uint64_t* v);
  /// Reads an LEB128 varint. Rejects encodings longer than 10 bytes or
  /// overflowing 64 bits, and — so that decode-then-re-encode is
  /// byte-identical, the fragment codec's round-trip invariant —
  /// non-minimal encodings (a trailing 0x80.. continuation that adds no
  /// value bits).
  Status GetVarint(uint64_t* v);
  /// Reads a double from its IEEE-754 bit pattern.
  Status GetF64(double* v);
  /// Reads a u32-length-prefixed string (length checked against the
  /// bytes remaining before any allocation).
  Status GetStr(std::string* s);
  /// True when every payload byte has been consumed — decoders check
  /// this to reject trailing garbage.
  bool AtEnd() const { return pos_ == data_->size(); }

 private:
  const std::string* data_;
  size_t pos_ = 0;
};

// --- Payload codecs (payload only; framing is WriteFrame/ReadFrame). ---

/// Encodes a SUBMIT payload. Wire v1 carries the query, tenant,
/// priority, deadline, max_iterations, and streaming knobs; the
/// request's IamaOptions is *not* transmitted — remote submissions run
/// under the server's default session configuration (which is also what
/// makes the remote/in-process bit-identity check well-defined).
std::string EncodeSubmit(uint64_t tag, const SubmitRequest& request);

/// Decodes a SUBMIT payload into the same SubmitRequest the in-process
/// API consumes; the caller passes it to OptimizerService::Submit
/// unchanged. `request->subscribe` is forced on (the server always
/// tracks its runs through a subscription); `*stream` reports whether
/// the client asked for the snapshots to be forwarded to it.
Status DecodeSubmit(const Frame& frame, uint64_t* tag,
                    SubmitRequest* request, bool* stream);

/// Encodes a SUBMIT_OK payload from the service's SubmitResponse,
/// including the trailing optional tenant_fragment_hits telemetry
/// field (always written by this encoder).
std::string EncodeSubmitOk(uint64_t tag, const SubmitResponse& response);

/// Decodes a SUBMIT_OK payload. The subscription field stays null (it
/// has no wire representation; snapshots arrive as kSnapshot frames).
/// The tenant_fragment_hits trailer is optional on decode: frames from
/// servers predating it yield 0, keeping wire v1 compatibility.
Status DecodeSubmitOk(const Frame& frame, uint64_t* tag,
                      SubmitResponse* response);

/// Encodes an ERROR payload carrying a Status (code, retry hint,
/// message) — the admission taxonomy's wire representation.
std::string EncodeError(uint64_t tag, const Status& status);

/// Decodes an ERROR payload back into the identical Status.
Status DecodeError(const Frame& frame, uint64_t* tag, Status* status);

/// Encodes a CANCEL payload.
std::string EncodeCancel(uint64_t tag, QueryId id);

/// Decodes a CANCEL payload.
Status DecodeCancel(const Frame& frame, uint64_t* tag, QueryId* id);

/// Encodes a CANCEL_OK payload.
std::string EncodeCancelOk(uint64_t tag, bool cancelled);

/// Decodes a CANCEL_OK payload.
Status DecodeCancelOk(const Frame& frame, uint64_t* tag, bool* cancelled);

/// Encodes a SNAPSHOT payload: one SnapshotEvent of run `id`, gap
/// accounting included.
std::string EncodeSnapshot(QueryId id, const SnapshotEvent& event);

/// Decoded form of a SNAPSHOT frame.
struct SnapshotMsg {
  /// The run this snapshot belongs to.
  QueryId id = kInvalidQueryId;
  /// SnapshotEvent::sequence of the delivered event.
  uint64_t sequence = 0;
  /// SnapshotEvent::dropped — events lost to drop-oldest before this one.
  uint64_t dropped = 0;
  /// The frontier, bit-identical to the producer's.
  FrontierSnapshot frontier;
};

/// Decodes a SNAPSHOT payload.
Status DecodeSnapshot(const Frame& frame, SnapshotMsg* msg);

/// Encodes a RESULT payload from a terminal QueryResult.
std::string EncodeResult(const QueryResult& result);

/// Decodes a RESULT payload; the frontier round-trips bit-identically.
Status DecodeResult(const Frame& frame, QueryResult* result);

/// Encodes a HELLO payload.
std::string EncodeHello(uint32_t wire_version);

/// Decodes a HELLO payload.
Status DecodeHello(const Frame& frame, uint32_t* wire_version);

/// Encodes a HELLO_OK payload.
std::string EncodeHelloOk(uint32_t wire_version, uint32_t api_version);

/// Decodes a HELLO_OK payload.
Status DecodeHelloOk(const Frame& frame, uint32_t* wire_version,
                     uint32_t* api_version);

// --- Worker-protocol payload codecs (distributed tier). -----------------
//
// Frames that carry a fragment-codec record (ASSIGN, DELTA, MERGE_CELL)
// share one envelope shape — {u64 seq, str record} — with the record
// bytes opaque to this layer: the wire frames them, fragment_codec
// interprets them, and the two cannot drift because the envelope never
// parses its cargo. `seq` is the run sequence number: a worker processes
// only frames tagged with its current sequence, which makes frames from
// an abandoned run (released mid-level) harmless stragglers instead of
// state corruption.

/// Encodes a {u64 seq, str record} envelope (ASSIGN/DELTA/MERGE_CELL).
std::string EncodeWorkerEnvelope(uint64_t seq, const std::string& record);

/// Decodes a {u64 seq, str record} envelope.
Status DecodeWorkerEnvelope(const Frame& frame, uint64_t* seq,
                            std::string* record);

/// Encodes an ASSIGN_OK payload: the worker's verdict on an assignment
/// (`ok` false when its catalog snapshot or build rejects it; `message`
/// says why, for the coordinator's fallback log line).
std::string EncodeAssignOk(uint64_t seq, bool ok, const std::string& message);

/// Decodes an ASSIGN_OK payload.
Status DecodeAssignOk(const Frame& frame, uint64_t* seq, bool* ok,
                      std::string* message);

/// Encodes a LEVEL_DONE or MERGE_DONE payload — the two level barriers
/// share a shape: {u64 seq, u64 invocation, u32 level, u32 cells}, where
/// `cells` counts the delta frames that preceded this barrier.
std::string EncodeLevelBarrier(uint64_t seq, uint64_t invocation,
                               uint32_t level, uint32_t cells);

/// Decodes a LEVEL_DONE or MERGE_DONE payload.
Status DecodeLevelBarrier(const Frame& frame, uint64_t* seq,
                          uint64_t* invocation, uint32_t* level,
                          uint32_t* cells);

/// Encodes a MERGE_ACK payload.
std::string EncodeMergeAck(uint64_t seq, uint64_t invocation, uint32_t level);

/// Decodes a MERGE_ACK payload.
Status DecodeMergeAck(const Frame& frame, uint64_t* seq, uint64_t* invocation,
                      uint32_t* level);

/// Encodes a RELEASE payload.
std::string EncodeRelease(uint64_t seq);

/// Decodes a RELEASE payload.
Status DecodeRelease(const Frame& frame, uint64_t* seq);

// --- Blocking frame I/O over a connected socket. ---

/// Writes one frame (length prefix, type, payload), retrying on EINTR
/// and short writes. Returns kInternal with errno text on I/O failure.
Status WriteFrame(int fd, MsgType type, const std::string& payload);

/// Reads one frame, retrying on EINTR and short reads. Returns
/// kFailedPrecondition("connection closed") on clean EOF at a frame
/// boundary, kInvalidArgument on an over-limit or zero length, and
/// kInternal with errno text on I/O failure.
Status ReadFrame(int fd, Frame* frame);

}  // namespace net
}  // namespace moqo

#endif  // MOQO_NET_WIRE_H_
