#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>

#include <unordered_map>
#include <utility>
#include <vector>

#include "net/wire.h"

namespace moqo {
namespace net {

namespace {

// One run being served to one connection.
struct ConnRun {
  std::shared_ptr<SnapshotSubscription> subscription;
  bool stream = false;  // Forward snapshot frames to the client.
};

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

}  // namespace

OptimizerServer::OptimizerServer(OptimizerService* service,
                                 ServerOptions options)
    : service_(service), options_(std::move(options)) {}

OptimizerServer::~OptimizerServer() { Shutdown(); }

Status OptimizerServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::FailedPrecondition("server already started");
  if (::pipe(stop_pipe_) != 0) {
    return Status::Internal(std::string("pipe: ") + strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(&listen_fd_);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st =
        Status::Internal(std::string("bind: ") + strerror(errno));
    CloseFd(&listen_fd_);
    return st;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const Status st =
        Status::Internal(std::string("listen: ") + strerror(errno));
    CloseFd(&listen_fd_);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    const Status st =
        Status::Internal(std::string("getsockname: ") + strerror(errno));
    CloseFd(&listen_fd_);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

uint16_t OptimizerServer::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return port_;
}

void OptimizerServer::BeginDrain() {
  service_->BeginDrain();
  // The acceptor keeps running (it owns the thread bookkeeping) but
  // refuses the handshake for every connection arriving from here on.
}

void OptimizerServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    // Wake the acceptor and every connection poller (POLLHUP), and
    // unblock any thread stuck in a socket read/write on a stalled peer.
    CloseFd(&stop_pipe_[1]);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (Conn& c : conns_) {
      if (!c.done && c.fd >= 0) ::shutdown(c.fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  // The acceptor has exited: conns_ is stable now (only connection
  // threads flip their own `done` flag, under mu_).
  for (Conn& c : conns_) {
    if (c.thread.joinable()) c.thread.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  conns_.clear();
  CloseFd(&listen_fd_);
  CloseFd(&stop_pipe_[0]);
}

size_t OptimizerServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Conn& c : conns_) {
    if (!c.done) ++n;
  }
  return n;
}

void OptimizerServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Shutdown.
    if (fds[0].revents == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion is transient (fds free up as connections
        // drain): keep the daemon accepting rather than silently
        // wedging it. Back off on the stop pipe so Shutdown stays
        // prompt even while the retry loop spins.
        std::fprintf(stderr,
                     "OptimizerServer: accept4: %s (transient, retrying)\n",
                     strerror(errno));
        pollfd stop = {stop_pipe_[0], POLLIN, 0};
        if (::poll(&stop, 1, /*timeout_ms=*/100) > 0) return;
        continue;
      }
      {
        // Shutdown tears the listener down under us (shutdown(2) on
        // listen_fd_); that exit is expected and silent.
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_) return;
      }
      std::fprintf(stderr,
                   "OptimizerServer: accept4: %s (fatal, acceptor exiting; "
                   "no further connections will be served)\n",
                   strerror(errno));
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.send_buffer_bytes > 0) {
      const int sndbuf = static_cast<int>(options_.send_buffer_bytes);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      ::close(fd);
      return;
    }
    // Reap finished connections so conns_ stays proportional to the
    // live count, not the total ever accepted.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->done) {
        it->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      // Over the connection cap: one best-effort error frame, then
      // close. The client sees kShedding before its handshake.
      (void)WriteFrame(
          fd, MsgType::kError,
          EncodeError(0, Status::Shedding("too many connections", 0)));
      ::close(fd);
      continue;
    }
    conns_.emplace_back();
    Conn* conn = &conns_.back();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { ServeConnection(conn); });
  }
}

void OptimizerServer::ServeConnection(Conn* conn) {
  const int fd = conn->fd;
  const int stop_fd = stop_pipe_[0];
  std::unordered_map<QueryId, ConnRun> runs;
  int wake_fd = -1;

  // Everything below funnels through these two lambdas so the cleanup
  // path (cancel orphaned runs, close fds, mark the slot reapable) is
  // written once.
  auto cleanup = [&] {
    for (auto& [id, run] : runs) {
      // Detach the wakeup fd before cancelling: cancellation finalizes
      // the run on a later scheduler turn, and that finalization's Push
      // must not poke a descriptor this thread is about to close (the
      // subscription owns a dup, so detaching here closes the last
      // reference it holds).
      run.subscription->SetWakeupFd(-1);
      service_->Cancel(id);
    }
    runs.clear();
    {
      // Mark reapable before closing: once done is set (under mu_),
      // Shutdown skips this connection's fds, so the close below can
      // never race a ::shutdown on a recycled descriptor.
      std::lock_guard<std::mutex> lock(mu_);
      conn->done = true;
    }
    if (wake_fd >= 0) ::close(wake_fd);
    ::close(fd);
  };
  // Drains every run's subscription queue: forwards snapshots (if the
  // client asked), and on a final event sends the terminal RESULT and
  // retires the run. Returns false on a dead client connection.
  auto pump = [&]() -> bool {
    for (auto it = runs.begin(); it != runs.end();) {
      ConnRun& run = it->second;
      bool finished = false;
      while (auto event = run.subscription->Poll()) {
        if (run.stream) {
          if (!WriteFrame(fd, MsgType::kSnapshot,
                          EncodeSnapshot(it->first, *event))
                   .ok()) {
            return false;
          }
        }
        if (event->is_final) {
          // The final event was pushed by finalization, so the result
          // is already recorded: this Wait returns immediately.
          QueryResult result = service_->Wait(it->first);
          if (!WriteFrame(fd, MsgType::kResult, EncodeResult(result)).ok()) {
            return false;
          }
          finished = true;
          break;
        }
      }
      it = finished ? runs.erase(it) : std::next(it);
    }
    return true;
  };

  // Handshake: the first frame must be a version-compatible HELLO.
  {
    Frame frame;
    uint32_t version = 0;
    Status st = ReadFrame(fd, &frame);
    if (st.ok() && frame.type == static_cast<uint8_t>(MsgType::kHello)) {
      st = DecodeHello(frame, &version);
    } else if (st.ok()) {
      st = Status::InvalidArgument("expected HELLO");
    }
    if (st.ok() && version != kWireVersion) {
      st = Status::FailedPrecondition(
          "wire version mismatch: server speaks v" +
          std::to_string(kWireVersion));
    }
    if (st.ok() && service_->draining()) {
      st = Status::Draining("server is draining; connect to another replica");
    }
    if (!st.ok()) {
      (void)WriteFrame(fd, MsgType::kError, EncodeError(0, st));
      cleanup();
      return;
    }
    if (!WriteFrame(fd, MsgType::kHelloOk,
                    EncodeHelloOk(kWireVersion, kServiceApiVersion))
             .ok()) {
      cleanup();
      return;
    }
  }

  wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd < 0) {
    (void)WriteFrame(fd, MsgType::kError,
                     EncodeError(0, Status::Internal("eventfd failed")));
    cleanup();
    return;
  }

  for (;;) {
    pollfd fds[3];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    fds[2] = {stop_fd, POLLIN, 0};
    if (::poll(fds, 3, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[2].revents != 0) break;  // Shutdown.
    if (fds[1].revents != 0) {
      uint64_t drained = 0;
      // Reset the eventfd counter; new pushes re-arm it.
      (void)!::read(wake_fd, &drained, sizeof(drained));
      if (!pump()) break;
    }
    if (fds[0].revents == 0) continue;

    Frame frame;
    if (!ReadFrame(fd, &frame).ok()) break;  // EOF or a broken frame.
    switch (static_cast<MsgType>(frame.type)) {
      case MsgType::kSubmit: {
        uint64_t tag = 0;
        SubmitRequest request;
        bool stream = false;
        Status st = DecodeSubmit(frame, &tag, &request, &stream);
        if (st.ok()) {
          StatusOr<SubmitResponse> response =
              service_->Submit(std::move(request));
          if (!response.ok()) {
            st = response.status();
          } else {
            const SubmitResponse& r = response.value();
            ConnRun run;
            run.subscription = r.subscription;
            run.stream = stream;
            run.subscription->SetWakeupFd(wake_fd);
            runs.emplace(r.id, std::move(run));
            // Events pushed before SetWakeupFd landed (a fast first
            // step, or a cache hit's final event) poked no eventfd:
            // drain once after SUBMIT_OK so nothing waits on a poke
            // that already happened. Both failures mean a dead socket —
            // no error frame, just drop the connection.
            if (!WriteFrame(fd, MsgType::kSubmitOk, EncodeSubmitOk(tag, r))
                     .ok() ||
                !pump()) {
              cleanup();
              return;
            }
          }
        }
        if (!st.ok()) {
          if (!WriteFrame(fd, MsgType::kError, EncodeError(tag, st)).ok()) {
            cleanup();
            return;
          }
        }
        break;
      }
      case MsgType::kCancel: {
        uint64_t tag = 0;
        QueryId id = kInvalidQueryId;
        Status st = DecodeCancel(frame, &tag, &id);
        if (st.ok() && runs.find(id) == runs.end()) {
          // Ids are scoped to the submitting connection: one tenant can
          // never cancel (or probe) another's runs.
          st = Status::NotFound("unknown run id on this connection");
        }
        Status wst;
        if (st.ok()) {
          wst = WriteFrame(fd, MsgType::kCancelOk,
                           EncodeCancelOk(tag, service_->Cancel(id)));
          // Cancellation finalizes the run; its terminal event arrives
          // through the subscription and pump() sends the RESULT.
          if (wst.ok() && !pump()) wst = Status::Internal("pump failed");
        } else {
          wst = WriteFrame(fd, MsgType::kError, EncodeError(tag, st));
        }
        if (!wst.ok()) {
          cleanup();
          return;
        }
        break;
      }
      default: {
        // Unknown or out-of-sequence frame: protocol error, drop the
        // connection (best-effort error frame first).
        (void)WriteFrame(
            fd, MsgType::kError,
            EncodeError(0, Status::InvalidArgument("unexpected frame type")));
        cleanup();
        return;
      }
    }
  }
  cleanup();
}

}  // namespace net
}  // namespace moqo
