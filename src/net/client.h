/// \file
/// Blocking client for the optimizerd wire protocol (net/wire.h).
///
/// The client mirrors the in-process OptimizerService surface — Submit /
/// Cancel / Wait plus snapshot streaming — over one TCP connection.
/// Because the protocol is asynchronous (snapshot and result frames for
/// run A may arrive while the caller is waiting on run B), the client
/// demultiplexes internally: frames read while waiting for one reply are
/// buffered per run and served later from TakeSnapshots()/Wait().
///
/// The class is deliberately *not* thread-safe: one thread drives one
/// connection (the loadgen opens one client per simulated session, which
/// is also the server's unit of isolation). All calls block until their
/// reply arrives.
#ifndef MOQO_NET_CLIENT_H_
#define MOQO_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "net/wire.h"
#include "service/service_api.h"
#include "util/status.h"

namespace moqo {
namespace net {

/// One connection to an optimizerd server.
class OptimizerClient {
 public:
  /// An unconnected client; call Connect().
  OptimizerClient() = default;
  /// Closes the connection if open.
  ~OptimizerClient();

  OptimizerClient(const OptimizerClient&) = delete;
  OptimizerClient& operator=(const OptimizerClient&) = delete;

  /// Connects, performs the HELLO handshake, and verifies the version.
  /// A draining or over-capacity server refuses here with kDraining /
  /// kShedding — the taxonomy arrives before any submission.
  Status Connect(const std::string& host, uint16_t port);

  /// Closes the connection. Safe to call repeatedly.
  void Close();

  /// True between a successful Connect() and Close().
  bool connected() const { return fd_ >= 0; }

  /// Submits `request` and blocks for the server's admission decision.
  /// `request.subscribe` selects snapshot streaming: when set, the
  /// run's snapshot frames are collected and available from
  /// TakeSnapshots(). Admission rejections surface as the same Status
  /// taxonomy the in-process Submit returns (kQuotaExceeded, kShedding
  /// with retry_after_ms(), kDraining, kInvalidArgument), decoded from
  /// the wire. The response's `subscription` field is always null —
  /// remote streams arrive as frames, not queues.
  StatusOr<SubmitResponse> Submit(const SubmitRequest& request);

  /// Requests cancellation of one of this connection's runs. Returns
  /// the same bool as the in-process Cancel (true = the run had not
  /// finished), or kNotFound for ids not submitted on this connection.
  StatusOr<bool> Cancel(QueryId id);

  /// Blocks until run `id`'s terminal RESULT frame arrives and returns
  /// the decoded QueryResult — frontier bit-identical to what an
  /// in-process Wait would have returned. Ids not submitted on this
  /// connection return kNotFound.
  StatusOr<QueryResult> Wait(QueryId id);

  /// Drains the snapshots received so far for run `id` (order
  /// preserved; gap markers intact). Non-blocking: frames are collected
  /// while any blocking call pumps the connection. After Wait(id)
  /// returns, the run's stream is complete.
  std::vector<SnapshotMsg> TakeSnapshots(QueryId id);

  /// Blocks until run `id` has at least one undrained snapshot (returns
  /// true) or its terminal result arrived first (returns false — e.g. a
  /// cache hit whose stream was not requested). The loadgen's
  /// time-to-first-frontier clock stops here.
  StatusOr<bool> WaitSnapshot(QueryId id);

 private:
  // Reads one frame and files it: snapshots and results into per-run
  // buffers; reply frames (matching `want_tag`) into *reply.
  // Returns true via *got_reply when the awaited reply arrived.
  Status PumpOne(uint64_t want_tag, Frame* reply, bool* got_reply);

  int fd_ = -1;
  uint64_t next_tag_ = 1;
  std::unordered_map<QueryId, std::vector<SnapshotMsg>> snapshots_;
  std::unordered_map<QueryId, QueryResult> results_;
  // Every id ever issued to this connection; gates Wait/Cancel.
  std::unordered_map<QueryId, bool> known_;
};

}  // namespace net
}  // namespace moqo

#endif  // MOQO_NET_CLIENT_H_
