#include "net/wire.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "cost/cost_vector.h"

namespace moqo {
namespace net {

namespace {

// Submission payloads bound their element counts explicitly (a frame
// whose length is valid can still claim absurd counts; each element read
// is bounds-checked, but failing early keeps error messages honest).
constexpr uint32_t kMaxWireTables = 4096;
constexpr uint32_t kMaxWireJoins = 1u << 20;

Status Truncated() { return Status::InvalidArgument("truncated frame"); }

Status TrailingGarbage() {
  return Status::InvalidArgument("frame has trailing bytes");
}

void PutCostVector(Writer* w, const CostVector& v) {
  w->PutU8(static_cast<uint8_t>(v.dims()));
  for (int i = 0; i < v.dims(); ++i) w->PutF64(v[i]);
}

Status GetCostVector(Reader* r, CostVector* v) {
  uint8_t dims = 0;
  MOQO_RETURN_IF_ERROR(r->GetU8(&dims));
  if (dims > kMaxMetrics) {
    return Status::InvalidArgument("cost vector dims out of range");
  }
  // Validated above — the CHECK inside the constructor cannot fire on
  // network input.
  CostVector out(static_cast<int>(dims));
  for (int i = 0; i < out.dims(); ++i) {
    MOQO_RETURN_IF_ERROR(r->GetF64(&out[i]));
  }
  *v = out;
  return Status::OK();
}

void PutFrontier(Writer* w, const FrontierSnapshot& f) {
  w->PutU32(static_cast<uint32_t>(f.iteration));
  w->PutU32(static_cast<uint32_t>(f.resolution));
  w->PutF64(f.alpha);
  PutCostVector(w, f.bounds);
  w->PutU32(static_cast<uint32_t>(f.plans.size()));
  for (const CellIndex::Entry& e : f.plans) {
    w->PutU32(e.id);
    w->PutU32(e.last_visible);
    PutCostVector(w, e.cost);
    w->PutU8(e.resolution);
    w->PutU8(e.order);
    w->PutU8(e.delta ? 1 : 0);
  }
}

Status GetFrontier(Reader* r, FrontierSnapshot* f) {
  uint32_t iteration = 0;
  uint32_t resolution = 0;
  MOQO_RETURN_IF_ERROR(r->GetU32(&iteration));
  MOQO_RETURN_IF_ERROR(r->GetU32(&resolution));
  MOQO_RETURN_IF_ERROR(r->GetF64(&f->alpha));
  MOQO_RETURN_IF_ERROR(GetCostVector(r, &f->bounds));
  f->iteration = static_cast<int>(iteration);
  f->resolution = static_cast<int>(resolution);
  uint32_t count = 0;
  MOQO_RETURN_IF_ERROR(r->GetU32(&count));
  f->plans.clear();
  // No reserve from the untrusted count: each element read below is
  // bounds-checked, so a lying count fails on the first missing byte
  // without a huge up-front allocation.
  for (uint32_t i = 0; i < count; ++i) {
    CellIndex::Entry e;
    uint8_t delta = 0;
    MOQO_RETURN_IF_ERROR(r->GetU32(&e.id));
    MOQO_RETURN_IF_ERROR(r->GetU32(&e.last_visible));
    MOQO_RETURN_IF_ERROR(GetCostVector(r, &e.cost));
    MOQO_RETURN_IF_ERROR(r->GetU8(&e.resolution));
    MOQO_RETURN_IF_ERROR(r->GetU8(&e.order));
    MOQO_RETURN_IF_ERROR(r->GetU8(&delta));
    e.delta = delta != 0;
    f->plans.push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace

void Writer::PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_.push_back(static_cast<char>(v));
}

void Writer::PutF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Writer::PutStr(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

Reader::Reader(const std::string& payload) : data_(&payload) {}

Status Reader::GetU8(uint8_t* v) {
  if (data_->size() - pos_ < 1) return Truncated();
  *v = static_cast<uint8_t>((*data_)[pos_++]);
  return Status::OK();
}

Status Reader::GetU32(uint32_t* v) {
  if (data_->size() - pos_ < 4) return Truncated();
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>((*data_)[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status Reader::GetU64(uint64_t* v) {
  if (data_->size() - pos_ < 8) return Truncated();
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>((*data_)[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status Reader::GetVarint(uint64_t* v) {
  uint64_t out = 0;
  for (int i = 0; i < 10; ++i) {
    if (data_->size() - pos_ < 1) return Truncated();
    const uint8_t byte = static_cast<uint8_t>((*data_)[pos_++]);
    // Byte 10 may only contribute the 64th value bit (1 bit left).
    if (i == 9 && byte > 1) {
      return Status::InvalidArgument("varint overflows 64 bits");
    }
    out |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      // Reject non-minimal encodings ("0x80 0x00" for 0): re-encoding a
      // decoded value must reproduce the input bytes exactly.
      if (i > 0 && byte == 0) {
        return Status::InvalidArgument("non-minimal varint");
      }
      *v = out;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("varint longer than 10 bytes");
}

Status Reader::GetF64(double* v) {
  uint64_t bits = 0;
  MOQO_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status Reader::GetStr(std::string* s) {
  uint32_t len = 0;
  MOQO_RETURN_IF_ERROR(GetU32(&len));
  if (data_->size() - pos_ < len) return Truncated();
  s->assign(*data_, pos_, len);
  pos_ += len;
  return Status::OK();
}

std::string EncodeSubmit(uint64_t tag, const SubmitRequest& request) {
  Writer w;
  w.PutU64(tag);
  uint32_t flags = 0;
  if (request.subscribe) flags |= 1;
  w.PutU32(flags);
  w.PutU32(static_cast<uint32_t>(request.priority));
  w.PutF64(request.deadline_ms);
  w.PutU32(static_cast<uint32_t>(request.max_iterations));
  w.PutU32(static_cast<uint32_t>(request.subscription_capacity));
  w.PutStr(request.tenant);
  w.PutStr(request.query.name);
  w.PutU32(static_cast<uint32_t>(request.query.tables.size()));
  for (const TableRef& t : request.query.tables) {
    w.PutU32(static_cast<uint32_t>(t.table));
    w.PutF64(t.predicate_selectivity);
    w.PutStr(t.alias);
  }
  w.PutU32(static_cast<uint32_t>(request.query.joins.size()));
  for (const JoinPredicate& j : request.query.joins) {
    w.PutU32(static_cast<uint32_t>(j.left));
    w.PutU32(static_cast<uint32_t>(j.right));
    w.PutF64(j.selectivity);
  }
  return w.bytes();
}

Status DecodeSubmit(const Frame& frame, uint64_t* tag,
                    SubmitRequest* request, bool* stream) {
  Reader r(frame.payload);
  uint32_t flags = 0;
  uint32_t priority = 0;
  uint32_t max_iterations = 0;
  uint32_t capacity = 0;
  MOQO_RETURN_IF_ERROR(r.GetU64(tag));
  MOQO_RETURN_IF_ERROR(r.GetU32(&flags));
  MOQO_RETURN_IF_ERROR(r.GetU32(&priority));
  MOQO_RETURN_IF_ERROR(r.GetF64(&request->deadline_ms));
  MOQO_RETURN_IF_ERROR(r.GetU32(&max_iterations));
  MOQO_RETURN_IF_ERROR(r.GetU32(&capacity));
  MOQO_RETURN_IF_ERROR(r.GetStr(&request->tenant));
  MOQO_RETURN_IF_ERROR(r.GetStr(&request->query.name));
  // Large unsigned values become negative ints here; Submit's own
  // validation rejects them with the same taxonomy in-process callers
  // get — the decoder only guards memory safety, not semantics.
  request->priority = static_cast<int>(priority);
  request->max_iterations = static_cast<int>(max_iterations);
  // Clamp, don't reject: an oversized capacity only asks for more
  // buffering than the server is willing to pin per subscriber, and
  // drop-oldest + gap markers already define the behavior at any
  // capacity. max_iterations stays unclamped here — its ceiling is an
  // admission policy (ServiceOptions::max_iterations_limit) with its
  // own taxonomy code, not a memory-safety concern of the codec.
  request->subscription_capacity =
      capacity > kMaxWireSubscriptionCapacity ? kMaxWireSubscriptionCapacity
                                              : capacity;
  *stream = (flags & 1) != 0;
  // The server tracks every run through a subscription regardless of
  // whether the client wants the snapshots forwarded.
  request->subscribe = true;
  uint32_t num_tables = 0;
  MOQO_RETURN_IF_ERROR(r.GetU32(&num_tables));
  if (num_tables > kMaxWireTables) {
    return Status::InvalidArgument("table count out of range");
  }
  request->query.tables.clear();
  for (uint32_t i = 0; i < num_tables; ++i) {
    TableRef t;
    uint32_t table = 0;
    MOQO_RETURN_IF_ERROR(r.GetU32(&table));
    MOQO_RETURN_IF_ERROR(r.GetF64(&t.predicate_selectivity));
    MOQO_RETURN_IF_ERROR(r.GetStr(&t.alias));
    t.table = static_cast<TableId>(table);
    request->query.tables.push_back(std::move(t));
  }
  uint32_t num_joins = 0;
  MOQO_RETURN_IF_ERROR(r.GetU32(&num_joins));
  if (num_joins > kMaxWireJoins) {
    return Status::InvalidArgument("join count out of range");
  }
  request->query.joins.clear();
  for (uint32_t i = 0; i < num_joins; ++i) {
    JoinPredicate j;
    uint32_t left = 0;
    uint32_t right = 0;
    MOQO_RETURN_IF_ERROR(r.GetU32(&left));
    MOQO_RETURN_IF_ERROR(r.GetU32(&right));
    MOQO_RETURN_IF_ERROR(r.GetF64(&j.selectivity));
    j.left = static_cast<int>(left);
    j.right = static_cast<int>(right);
    request->query.joins.push_back(j);
  }
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeSubmitOk(uint64_t tag, const SubmitResponse& response) {
  Writer w;
  w.PutU64(tag);
  w.PutU64(response.id);
  w.PutU64(response.catalog_version);
  uint8_t flags = 0;
  if (response.from_cache) flags |= 1;
  if (response.coalesced) flags |= 2;
  w.PutU8(flags);
  // Trailing optional field: the submitting tenant's cumulative
  // fragment warm hits. Decoders treat absence as 0 (frames from
  // servers predating the field still decode), so it must stay last
  // and any future optional field goes after it.
  w.PutU64(response.tenant_fragment_hits);
  return w.bytes();
}

Status DecodeSubmitOk(const Frame& frame, uint64_t* tag,
                      SubmitResponse* response) {
  Reader r(frame.payload);
  uint8_t flags = 0;
  MOQO_RETURN_IF_ERROR(r.GetU64(tag));
  MOQO_RETURN_IF_ERROR(r.GetU64(&response->id));
  MOQO_RETURN_IF_ERROR(r.GetU64(&response->catalog_version));
  MOQO_RETURN_IF_ERROR(r.GetU8(&flags));
  response->from_cache = (flags & 1) != 0;
  response->coalesced = (flags & 2) != 0;
  response->subscription = nullptr;
  // Optional trailer (absent in frames from pre-telemetry servers).
  response->tenant_fragment_hits = 0;
  if (!r.AtEnd()) {
    MOQO_RETURN_IF_ERROR(r.GetU64(&response->tenant_fragment_hits));
  }
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeError(uint64_t tag, const Status& status) {
  Writer w;
  w.PutU64(tag);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutU64(status.retry_after_ms());
  w.PutStr(status.message());
  return w.bytes();
}

Status DecodeError(const Frame& frame, uint64_t* tag, Status* status) {
  Reader r(frame.payload);
  uint8_t code = 0;
  uint64_t retry_after_ms = 0;
  std::string message;
  MOQO_RETURN_IF_ERROR(r.GetU64(tag));
  MOQO_RETURN_IF_ERROR(r.GetU8(&code));
  MOQO_RETURN_IF_ERROR(r.GetU64(&retry_after_ms));
  MOQO_RETURN_IF_ERROR(r.GetStr(&message));
  if (code > static_cast<uint8_t>(StatusCode::kDraining) ||
      code == static_cast<uint8_t>(StatusCode::kOk)) {
    return Status::InvalidArgument("unknown status code on wire");
  }
  if (!r.AtEnd()) return TrailingGarbage();
  *status = Status(static_cast<StatusCode>(code), std::move(message),
                   retry_after_ms);
  return Status::OK();
}

std::string EncodeCancel(uint64_t tag, QueryId id) {
  Writer w;
  w.PutU64(tag);
  w.PutU64(id);
  return w.bytes();
}

Status DecodeCancel(const Frame& frame, uint64_t* tag, QueryId* id) {
  Reader r(frame.payload);
  MOQO_RETURN_IF_ERROR(r.GetU64(tag));
  MOQO_RETURN_IF_ERROR(r.GetU64(id));
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeCancelOk(uint64_t tag, bool cancelled) {
  Writer w;
  w.PutU64(tag);
  w.PutU8(cancelled ? 1 : 0);
  return w.bytes();
}

Status DecodeCancelOk(const Frame& frame, uint64_t* tag, bool* cancelled) {
  Reader r(frame.payload);
  uint8_t c = 0;
  MOQO_RETURN_IF_ERROR(r.GetU64(tag));
  MOQO_RETURN_IF_ERROR(r.GetU8(&c));
  *cancelled = c != 0;
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeSnapshot(QueryId id, const SnapshotEvent& event) {
  Writer w;
  w.PutU64(id);
  w.PutU64(event.sequence);
  w.PutU64(event.dropped);
  PutFrontier(&w, *event.snapshot);
  return w.bytes();
}

Status DecodeSnapshot(const Frame& frame, SnapshotMsg* msg) {
  Reader r(frame.payload);
  MOQO_RETURN_IF_ERROR(r.GetU64(&msg->id));
  MOQO_RETURN_IF_ERROR(r.GetU64(&msg->sequence));
  MOQO_RETURN_IF_ERROR(r.GetU64(&msg->dropped));
  MOQO_RETURN_IF_ERROR(GetFrontier(&r, &msg->frontier));
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeResult(const QueryResult& result) {
  Writer w;
  w.PutU64(result.id);
  w.PutU8(static_cast<uint8_t>(result.state));
  w.PutU32(static_cast<uint32_t>(result.iterations));
  uint8_t flags = 0;
  if (result.from_cache) flags |= 1;
  if (result.coalesced) flags |= 2;
  w.PutU8(flags);
  w.PutU64(result.plans_generated);
  w.PutU64(result.pairs_generated);
  w.PutU64(result.catalog_version);
  PutFrontier(&w, result.frontier);
  return w.bytes();
}

Status DecodeResult(const Frame& frame, QueryResult* result) {
  Reader r(frame.payload);
  uint8_t state = 0;
  uint8_t flags = 0;
  uint32_t iterations = 0;
  MOQO_RETURN_IF_ERROR(r.GetU64(&result->id));
  MOQO_RETURN_IF_ERROR(r.GetU8(&state));
  MOQO_RETURN_IF_ERROR(r.GetU32(&iterations));
  MOQO_RETURN_IF_ERROR(r.GetU8(&flags));
  MOQO_RETURN_IF_ERROR(r.GetU64(&result->plans_generated));
  MOQO_RETURN_IF_ERROR(r.GetU64(&result->pairs_generated));
  MOQO_RETURN_IF_ERROR(r.GetU64(&result->catalog_version));
  MOQO_RETURN_IF_ERROR(GetFrontier(&r, &result->frontier));
  if (state > static_cast<uint8_t>(QueryState::kExpired)) {
    return Status::InvalidArgument("unknown query state on wire");
  }
  result->state = static_cast<QueryState>(state);
  result->iterations = static_cast<int>(iterations);
  result->from_cache = (flags & 1) != 0;
  result->coalesced = (flags & 2) != 0;
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeHello(uint32_t wire_version) {
  Writer w;
  w.PutU32(wire_version);
  return w.bytes();
}

Status DecodeHello(const Frame& frame, uint32_t* wire_version) {
  Reader r(frame.payload);
  MOQO_RETURN_IF_ERROR(r.GetU32(wire_version));
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeHelloOk(uint32_t wire_version, uint32_t api_version) {
  Writer w;
  w.PutU32(wire_version);
  w.PutU32(api_version);
  return w.bytes();
}

Status DecodeHelloOk(const Frame& frame, uint32_t* wire_version,
                     uint32_t* api_version) {
  Reader r(frame.payload);
  MOQO_RETURN_IF_ERROR(r.GetU32(wire_version));
  MOQO_RETURN_IF_ERROR(r.GetU32(api_version));
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeWorkerEnvelope(uint64_t seq, const std::string& record) {
  Writer w;
  w.PutU64(seq);
  w.PutStr(record);
  return w.bytes();
}

Status DecodeWorkerEnvelope(const Frame& frame, uint64_t* seq,
                            std::string* record) {
  Reader r(frame.payload);
  MOQO_RETURN_IF_ERROR(r.GetU64(seq));
  MOQO_RETURN_IF_ERROR(r.GetStr(record));
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeAssignOk(uint64_t seq, bool ok, const std::string& message) {
  Writer w;
  w.PutU64(seq);
  w.PutU8(ok ? 1 : 0);
  w.PutStr(message);
  return w.bytes();
}

Status DecodeAssignOk(const Frame& frame, uint64_t* seq, bool* ok,
                      std::string* message) {
  Reader r(frame.payload);
  MOQO_RETURN_IF_ERROR(r.GetU64(seq));
  uint8_t flag = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&flag));
  if (flag > 1) return Status::InvalidArgument("ASSIGN_OK flag out of range");
  *ok = flag != 0;
  MOQO_RETURN_IF_ERROR(r.GetStr(message));
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeLevelBarrier(uint64_t seq, uint64_t invocation,
                               uint32_t level, uint32_t cells) {
  Writer w;
  w.PutU64(seq);
  w.PutU64(invocation);
  w.PutU32(level);
  w.PutU32(cells);
  return w.bytes();
}

Status DecodeLevelBarrier(const Frame& frame, uint64_t* seq,
                          uint64_t* invocation, uint32_t* level,
                          uint32_t* cells) {
  Reader r(frame.payload);
  MOQO_RETURN_IF_ERROR(r.GetU64(seq));
  MOQO_RETURN_IF_ERROR(r.GetU64(invocation));
  MOQO_RETURN_IF_ERROR(r.GetU32(level));
  MOQO_RETURN_IF_ERROR(r.GetU32(cells));
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeMergeAck(uint64_t seq, uint64_t invocation, uint32_t level) {
  Writer w;
  w.PutU64(seq);
  w.PutU64(invocation);
  w.PutU32(level);
  return w.bytes();
}

Status DecodeMergeAck(const Frame& frame, uint64_t* seq, uint64_t* invocation,
                      uint32_t* level) {
  Reader r(frame.payload);
  MOQO_RETURN_IF_ERROR(r.GetU64(seq));
  MOQO_RETURN_IF_ERROR(r.GetU64(invocation));
  MOQO_RETURN_IF_ERROR(r.GetU32(level));
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

std::string EncodeRelease(uint64_t seq) {
  Writer w;
  w.PutU64(seq);
  return w.bytes();
}

Status DecodeRelease(const Frame& frame, uint64_t* seq) {
  Reader r(frame.payload);
  MOQO_RETURN_IF_ERROR(r.GetU64(seq));
  if (!r.AtEnd()) return TrailingGarbage();
  return Status::OK();
}

namespace {

Status WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that closed mid-stream yields EPIPE here
    // instead of a process-killing SIGPIPE (frames only ever travel
    // over sockets).
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// `eof_ok` distinguishes a clean close at a frame boundary (reported as
// kFailedPrecondition) from a mid-frame truncation (kInternal).
Status ReadAll(int fd, char* data, size_t size, bool eof_ok) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read: ") + strerror(errno));
    }
    if (n == 0) {
      if (eof_ok && done == 0) {
        return Status::FailedPrecondition("connection closed");
      }
      return Status::Internal("connection truncated mid-frame");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, MsgType type, const std::string& payload) {
  MOQO_CHECK(payload.size() + 1 <= kMaxFrameBytes);  // Encoder bug if not.
  Writer w;
  w.PutU32(static_cast<uint32_t>(payload.size() + 1));
  w.PutU8(static_cast<uint8_t>(type));
  std::string head = w.bytes();
  head.append(payload);  // One write: no interleaving risk, fewer syscalls.
  return WriteAll(fd, head.data(), head.size());
}

Status ReadFrame(int fd, Frame* frame) {
  char head[4];
  MOQO_RETURN_IF_ERROR(ReadAll(fd, head, sizeof(head), /*eof_ok=*/true));
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(head[i])) << (8 * i);
  }
  if (length < 1 || length > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length out of range");
  }
  std::string body(length, '\0');
  MOQO_RETURN_IF_ERROR(ReadAll(fd, body.data(), body.size(),
                               /*eof_ok=*/false));
  frame->type = static_cast<uint8_t>(body[0]);
  frame->payload.assign(body, 1, body.size() - 1);
  return Status::OK();
}

}  // namespace net
}  // namespace moqo
