// Dominance relations between cost vectors (paper §3).
#ifndef MOQO_PARETO_DOMINANCE_H_
#define MOQO_PARETO_DOMINANCE_H_

#include "cost/cost_vector.h"

namespace moqo {

// c(a) ⪯ c(b): a is at least as good as b in every metric.
inline bool Dominates(const CostVector& a, const CostVector& b) {
  return a.Dominates(b);
}

// c(a) ≺ c(b): dominates and strictly better in at least one metric.
inline bool StrictlyDominates(const CostVector& a, const CostVector& b) {
  return a.StrictlyDominates(b);
}

// Approximate dominance: a ⪯ alpha * b, i.e. a approximates b with
// precision factor alpha >= 1 (the comparison used by approximate Pareto
// plan sets and by the pruning rule, Algorithm 3 line 7).
bool ApproxDominates(const CostVector& a, const CostVector& b, double alpha);

// Whether `cost` respects the upper bounds `b` (c ⪯ b; paper §3).
// Bounds may contain +infinity components ("no bound on this metric").
bool RespectsBounds(const CostVector& cost, const CostVector& bounds);

// The smallest factor alpha such that a ⪯ alpha * b, i.e. how well `a`
// approximates `b`; +infinity if some b component is 0 while a's is not.
// Used by tests to measure realized approximation quality.
double CoverFactor(const CostVector& a, const CostVector& b);

}  // namespace moqo

#endif  // MOQO_PARETO_DOMINANCE_H_
