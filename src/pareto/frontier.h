// ParetoFrontier: a maintained set of mutually non-dominated cost vectors.
//
// Used by the exhaustive baseline (full Pareto plan sets), by frontier
// snapshots shown to the interaction layer, and by tests. Insertion
// discards the new entry if it is dominated and evicts entries the new one
// strictly dominates.
//
// The entry list stays in insertion (array-of-structs) order for callers,
// but dominance scans run against a struct-of-arrays CostBank mirror kept
// in lockstep (pareto/kernel.h): one batched lane pass instead of one
// virtual-free-but-strided CostVector compare per member. Both layouts
// apply the identical swap-with-back eviction, so entries() ordering is
// unchanged from the scalar implementation bit for bit.
#ifndef MOQO_PARETO_FRONTIER_H_
#define MOQO_PARETO_FRONTIER_H_

#include <cstdint>
#include <vector>

#include "cost/cost_vector.h"
#include "pareto/kernel.h"

namespace moqo {

class ParetoFrontier {
 public:
  struct Entry {
    CostVector cost;
    uint64_t payload = 0;  // Caller-defined (e.g. PlanId).
  };

  // Attempts to insert; returns true if the entry was kept (i.e. it is not
  // strictly dominated by any current member). Members strictly dominated
  // by the new entry are removed. Cost-equal duplicates are kept only once
  // (the first payload wins).
  bool Insert(const CostVector& cost, uint64_t payload);

  // True if `cost` is strictly dominated by some member.
  bool IsStrictlyDominated(const CostVector& cost) const;
  // True if some member dominates `cost` (non-strictly).
  bool IsDominated(const CostVector& cost) const;

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() {
    entries_.clear();
    bank_.Clear();
  }

 private:
  std::vector<Entry> entries_;
  // Cost lanes mirroring entries_ index-for-index; (re)dimensioned on the
  // first insert after empty.
  CostBank bank_;
  // Scratch mask for batched dominance scans.
  mutable std::vector<uint8_t> scratch_;
};

}  // namespace moqo

#endif  // MOQO_PARETO_FRONTIER_H_
