// Coverage checks: do a set of cost vectors form an α-approximate
// (b-bounded) Pareto plan set with respect to a reference plan space?
//
// Directly encodes the definitions of paper §3 and the statements of
// Theorems 1/2; used by correctness tests and by EXPERIMENTS.md metrics.
#ifndef MOQO_PARETO_COVERAGE_H_
#define MOQO_PARETO_COVERAGE_H_

#include <vector>

#include "cost/cost_vector.h"

namespace moqo {

struct CoverageReport {
  // True iff every reference vector within the (scaled) bounds is covered.
  bool covered = true;
  // The worst (largest) factor actually needed to cover any in-bounds
  // reference vector; 1.0 means the result set contains a dominating
  // vector for every reference. Only meaningful if finite.
  double worst_factor = 1.0;
  // Number of reference vectors that had to be covered.
  int required = 0;
  // Number of those that were not covered within `alpha`.
  int violations = 0;
};

// Checks the α-approximate b-bounded Pareto set condition: for each
// reference cost c with alpha * c ⪯ bounds there must be a result cost c*
// with c* ⪯ alpha * c. Pass CostVector::Infinite for unbounded checks.
CoverageReport CheckCoverage(const std::vector<CostVector>& result,
                             const std::vector<CostVector>& reference,
                             double alpha, const CostVector& bounds);

}  // namespace moqo

#endif  // MOQO_PARETO_COVERAGE_H_
