#include "pareto/coverage.h"

#include <algorithm>
#include <limits>

#include "pareto/dominance.h"

namespace moqo {

CoverageReport CheckCoverage(const std::vector<CostVector>& result,
                             const std::vector<CostVector>& reference,
                             double alpha, const CostVector& bounds) {
  CoverageReport report;
  for (const CostVector& ref : reference) {
    if (!RespectsBounds(ref.Scaled(alpha), bounds)) continue;
    ++report.required;
    double best = std::numeric_limits<double>::infinity();
    for (const CostVector& res : result) {
      best = std::min(best, CoverFactor(res, ref));
      if (best <= 1.0) break;
    }
    if (best > alpha) {
      report.covered = false;
      ++report.violations;
    }
    report.worst_factor = std::max(report.worst_factor, best);
  }
  return report;
}

}  // namespace moqo
