#include "pareto/dominance.h"

#include <algorithm>
#include <limits>

#include "util/common.h"

namespace moqo {

bool ApproxDominates(const CostVector& a, const CostVector& b, double alpha) {
  MOQO_DCHECK(a.dims() == b.dims());
  for (int i = 0; i < a.dims(); ++i) {
    if (a.at(i) > alpha * b.at(i)) return false;
  }
  return true;
}

bool RespectsBounds(const CostVector& cost, const CostVector& bounds) {
  MOQO_DCHECK(cost.dims() == bounds.dims());
  for (int i = 0; i < cost.dims(); ++i) {
    if (cost.at(i) > bounds.at(i)) return false;
  }
  return true;
}

double CoverFactor(const CostVector& a, const CostVector& b) {
  MOQO_DCHECK(a.dims() == b.dims());
  double factor = 1.0;
  for (int i = 0; i < a.dims(); ++i) {
    if (a.at(i) <= b.at(i)) continue;
    if (b.at(i) <= 0.0) return std::numeric_limits<double>::infinity();
    factor = std::max(factor, a.at(i) / b.at(i));
  }
  return factor;
}

}  // namespace moqo
