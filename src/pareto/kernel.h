// Data-oriented Pareto kernel: struct-of-arrays cost banks and batched
// dominance primitives.
//
// The enumeration/dominance inner loop is the service's per-step cost
// wall (BENCH_service.json: ttff_p99 degrades ~5x as inflight grows at a
// fixed worker budget). The classic layout — one heap node per indexed
// plan holding a CostVector, compared entry-by-entry through checked
// operator[] — is memory-bound: every dominance check walks 56-byte
// structs to read 2-3 doubles. This kernel stores each cell's costs as
// contiguous per-metric lanes ("cost banks") and compares one candidate
// against a whole cell with flat, vectorizable loops.
//
// Layout. A CostBank holds `dims` lanes of doubles. Lane d occupies
// [d * capacity, d * capacity + size); capacities are padded to
// kLanePad so lane loops can be unrolled/vectorized without scalar
// tails. Entry i's cost vector is (lane_0[i], ..., lane_{dims-1}[i]).
// Banks draw their storage from a BankArena when one is supplied — a
// bump allocator with epoch reclamation (abandoned blocks are reclaimed
// wholesale when the arena resets or dies, never entry-by-entry) — and
// from the heap otherwise.
//
// Contract. All primitives use exact IEEE-754 comparisons — the same
// `<=` / `>=` the scalar CostVector::Dominates path performs, in the
// same per-entry order for order-sensitive operations — so structures
// built through the kernel are bit-identical to scalar-built ones
// (asserted by kernel_test's randomized property suite and the
// bench_dominance_kernel --verify CI smoke). Costs are finite (the
// index checks on insert); query bounds may contain +infinity. NaNs are
// never stored, so every comparison is total.
//
// See docs/KERNEL.md for the full layout and batching contract.
#ifndef MOQO_PARETO_KERNEL_H_
#define MOQO_PARETO_KERNEL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/common.h"

namespace moqo {

// Lane padding (doubles): lane starts are aligned to this many elements
// so a 256-bit SIMD lane never straddles two logical lanes.
inline constexpr size_t kLanePad = 4;

// "Not found" result of the kernel search primitives.
inline constexpr uint32_t kKernelNpos = 0xFFFFFFFFu;

// Bump allocator for cost-bank lane storage, shared by all cells of one
// PlanSetTable. Blocks are handed out and never individually freed —
// when a bank grows it abandons its old block — and the whole arena is
// reclaimed at once when the owning table dies (or Reset() starts a new
// epoch). This replaces per-cell vector reallocation churn with pointer
// bumps, and keeps one table's lanes closely packed in memory.
//
// Single-writer, like the structures it backs: only the optimizer's
// main thread allocates; concurrent const readers only dereference
// previously returned blocks.
class BankArena {
 public:
  BankArena() = default;
  BankArena(const BankArena&) = delete;
  BankArena& operator=(const BankArena&) = delete;

  // Returns an uninitialized block of `n` doubles (n > 0).
  double* Allocate(size_t n) {
    if (MOQO_PREDICT_FALSE(used_ + n > chunk_size_)) NewChunk(n);
    double* out = chunks_.back().get() + used_;
    used_ += n;
    return out;
  }

  // Epoch reset: every block ever handed out becomes invalid, the
  // backing memory is released. Callers must drop their banks first.
  void Reset() {
    chunks_.clear();
    used_ = 0;
    chunk_size_ = 0;
  }

 private:
  void NewChunk(size_t min_doubles);

  std::vector<std::unique_ptr<double[]>> chunks_;
  size_t chunk_size_ = 0;  // Capacity of chunks_.back().
  size_t used_ = 0;        // Doubles consumed in chunks_.back().
};

// Struct-of-arrays cost storage for one cell (or one frontier): `dims`
// contiguous double lanes, one per metric, padded to kLanePad. Movable,
// not copyable (a bank may alias arena storage).
class CostBank {
 public:
  CostBank() = default;
  // `arena` may be null: the bank then owns heap storage. A non-null
  // arena must outlive the bank.
  explicit CostBank(int dims, BankArena* arena = nullptr)
      : dims_(dims), arena_(arena) {
    MOQO_CHECK(dims >= 1);
  }

  CostBank(CostBank&& other) noexcept { *this = std::move(other); }
  CostBank& operator=(CostBank&& other) noexcept {
    lanes_ = other.lanes_;
    heap_ = std::move(other.heap_);
    size_ = other.size_;
    capacity_ = other.capacity_;
    dims_ = other.dims_;
    arena_ = other.arena_;
    other.lanes_ = nullptr;
    other.size_ = other.capacity_ = 0;
    return *this;
  }
  CostBank(const CostBank&) = delete;
  CostBank& operator=(const CostBank&) = delete;

  int dims() const { return dims_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Entries the current lane block can hold. Callers keeping parallel
  // payload arrays reserve to this after a PushBack so all lanes of an
  // entry grow in one step instead of four separate reallocations.
  size_t capacity() const { return capacity_; }

  // Lane d: `size()` live values at 8-byte stride.
  const double* Lane(int d) const {
    MOQO_DCHECK(d >= 0 && d < dims_);
    return lanes_ + static_cast<size_t>(d) * capacity_;
  }
  // Entry i's component d.
  double At(size_t i, int d) const {
    MOQO_DCHECK(i < size_);
    return Lane(d)[i];
  }

  // Appends one cost vector (`dims()` doubles).
  void PushBack(const double* cost) {
    if (MOQO_PREDICT_FALSE(size_ == capacity_)) Grow(size_ + 1);
    for (int d = 0; d < dims_; ++d) {
      lanes_[static_cast<size_t>(d) * capacity_ + size_] = cost[d];
    }
    ++size_;
  }

  // Removes entry i by moving the last entry into its place (the
  // index/frontier eviction order — callers replicate the same move on
  // their payload lanes).
  void SwapRemove(size_t i) {
    MOQO_DCHECK(i < size_);
    const size_t last = size_ - 1;
    for (int d = 0; d < dims_; ++d) {
      double* lane = lanes_ + static_cast<size_t>(d) * capacity_;
      lane[i] = lane[last];
    }
    size_ = last;
  }

  // Drops all entries; keeps the current storage block.
  void Clear() { size_ = 0; }

 private:
  void Grow(size_t min_capacity);

  double* lanes_ = nullptr;  // Lane-major block of dims_ * capacity_.
  std::unique_ptr<double[]> heap_;  // Owns lanes_ when arena_ == null.
  size_t size_ = 0;
  size_t capacity_ = 0;
  int dims_ = 0;
  BankArena* arena_ = nullptr;
};

// --- Batched dominance primitives -----------------------------------------
//
// All masks are byte masks: out[i] is 1/0 for entry i. Callers provide
// scratch of at least bank.size() bytes. The loops are written so the
// compiler vectorizes them (per-lane streaming compares folded with &).

// DominatedMask: compares every entry against candidate `c`
// (`bank.dims()` doubles) in one pass over the lanes.
//   leq[i] = 1 iff entry_i ⪯ c  (the entry dominates the candidate)
//   geq[i] = 1 iff c ⪯ entry_i  (the candidate dominates the entry)
// Either output may be null when only one side is needed. Equality is
// leq & geq; strict dominance is one side minus the intersection.
void DominatedMask(const CostBank& bank, const double* c, uint8_t* leq,
                   uint8_t* geq);

// First entry (in insertion order) whose cost is ⪯ `bounds`, or
// kKernelNpos. Early-exits block-wise; the batched form of "is anything
// in this cell inside the query box" (pruning's dominance probe).
// `scanned`, when non-null, receives the number of entries examined
// (instrumentation for Counters::dominance_checks).
uint32_t FindDominating(const CostBank& bank, const double* bounds,
                        size_t* scanned = nullptr);

// FilterByBounds: mask[i] = 1 iff entry_i ⪯ bounds. Returns the number
// of matching entries. The batched form of boundary-cell filtering in
// range queries (Collect/Drain/ForEachInRange).
size_t FilterByBounds(const CostBank& bank, const double* bounds,
                      uint8_t* mask);

// --- Batched Pareto-frontier insertion -------------------------------------

// A Pareto frontier in bank layout: cost lanes plus one payload lane.
// BatchInsert replicates the scalar ParetoFrontier::Insert semantics
// bit for bit: reject when any member dominates (or equals) the
// candidate, evict members the candidate strictly dominates in
// swap-with-back order, first payload wins among cost-equal duplicates.
struct FrontierBank {
  explicit FrontierBank(int dims) : costs(dims) {}

  CostBank costs;
  std::vector<uint64_t> payloads;

  // Attempts to insert; returns true iff the entry was kept. `cost` is
  // `costs.dims()` doubles.
  bool BatchInsert(const double* cost, uint64_t payload);

  size_t size() const { return costs.size(); }

 private:
  // Scratch masks reused across insertions (leq then geq).
  std::vector<uint8_t> scratch_;
};

}  // namespace moqo

#endif  // MOQO_PARETO_KERNEL_H_
