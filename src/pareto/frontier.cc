#include "pareto/frontier.h"

namespace moqo {

bool ParetoFrontier::Insert(const CostVector& cost, uint64_t payload) {
  for (const Entry& e : entries_) {
    if (e.cost.StrictlyDominates(cost)) return false;
    if (e.cost.Equals(cost)) return false;  // Keep one representative.
  }
  // Evict members the new entry strictly dominates (swap-pop).
  for (size_t i = 0; i < entries_.size();) {
    if (cost.StrictlyDominates(entries_[i].cost)) {
      entries_[i] = entries_.back();
      entries_.pop_back();
    } else {
      ++i;
    }
  }
  entries_.push_back({cost, payload});
  return true;
}

bool ParetoFrontier::IsStrictlyDominated(const CostVector& cost) const {
  for (const Entry& e : entries_) {
    if (e.cost.StrictlyDominates(cost)) return true;
  }
  return false;
}

bool ParetoFrontier::IsDominated(const CostVector& cost) const {
  for (const Entry& e : entries_) {
    if (e.cost.Dominates(cost)) return true;
  }
  return false;
}

}  // namespace moqo
