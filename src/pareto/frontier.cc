#include "pareto/frontier.h"

namespace moqo {

bool ParetoFrontier::Insert(const CostVector& cost, uint64_t payload) {
  const size_t n = entries_.size();
  if (n == 0) {
    if (bank_.dims() != cost.dims()) bank_ = CostBank(cost.dims());
  } else {
    MOQO_DCHECK(cost.dims() == bank_.dims());
    // Reject iff some member m has m ⪯ cost — the scalar loop's strict
    // dominators and cost-equal representatives are exactly that mask.
    if (FindDominating(bank_, cost.data()) != kKernelNpos) return false;
    // Evict members the new entry strictly dominates. Since no member is
    // ⪯ cost here, cost ⪯ m already implies m != cost, so the geq mask
    // alone is the strict mask. Swap-with-back in the scalar order; the
    // mask bit travels with the member moved into the vacated slot.
    scratch_.resize(n);
    DominatedMask(bank_, cost.data(), nullptr, scratch_.data());
    size_t i = 0, end = n;
    while (i < end) {
      if (scratch_[i]) {
        --end;
        scratch_[i] = scratch_[end];
        bank_.SwapRemove(i);
        entries_[i] = entries_[end];
        entries_.pop_back();
      } else {
        ++i;
      }
    }
  }
  bank_.PushBack(cost.data());
  entries_.push_back({cost, payload});
  return true;
}

bool ParetoFrontier::IsStrictlyDominated(const CostVector& cost) const {
  const size_t n = entries_.size();
  if (n == 0) return false;
  scratch_.resize(n);
  DominatedMask(bank_, cost.data(), scratch_.data(), nullptr);
  for (size_t i = 0; i < n; ++i) {
    if (scratch_[i] && !entries_[i].cost.Equals(cost)) return true;
  }
  return false;
}

bool ParetoFrontier::IsDominated(const CostVector& cost) const {
  if (entries_.empty()) return false;
  return FindDominating(bank_, cost.data()) != kKernelNpos;
}

}  // namespace moqo
