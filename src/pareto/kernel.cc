#include "pareto/kernel.h"

#include <algorithm>

// GCC's SSE2 baseline refuses to vectorize double-compare loops that
// store byte masks ("no vectype" for the mixed widths), but the same
// loops vectorize cleanly with AVX2. target_clones gives each mask
// helper an AVX2 body behind a runtime ifunc dispatch while keeping the
// portable scalar fallback; comparisons are exact either way, so the
// masks — and therefore frontier contents — are bit-identical. Disabled
// under the sanitizers: ifunc resolvers run before the TSan/ASan
// runtimes initialize and segfault on startup.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_THREAD__) &&         \
    !defined(__SANITIZE_ADDRESS__)
#define MOQO_KERNEL_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define MOQO_KERNEL_CLONES
#endif

namespace moqo {
namespace {

// Block size (entries) for the early-exit search: big enough that the
// per-block lane passes vectorize and amortize, small enough that a hit
// near the front of a large cell wastes at most 31 lane compares.
constexpr size_t kSearchBlock = 32;

// Rounds a capacity up to the lane padding.
size_t PadCapacity(size_t n) {
  return (n + kLanePad - 1) / kLanePad * kLanePad;
}

// One streaming compare per metric lane: initialize the byte mask from
// the first lane, then fold later lanes in with &. Each helper touches
// two contiguous arrays only — the shape auto-vectorizers handle best.
MOQO_KERNEL_CLONES
void MaskLeqInit(const double* lane, double c, uint8_t* m, size_t n) {
  for (size_t i = 0; i < n; ++i) m[i] = lane[i] <= c;
}

MOQO_KERNEL_CLONES
void MaskLeqFold(const double* lane, double c, uint8_t* m, size_t n) {
  for (size_t i = 0; i < n; ++i) m[i] &= static_cast<uint8_t>(lane[i] <= c);
}

MOQO_KERNEL_CLONES
void MaskGeqInit(const double* lane, double c, uint8_t* m, size_t n) {
  for (size_t i = 0; i < n; ++i) m[i] = lane[i] >= c;
}

MOQO_KERNEL_CLONES
void MaskGeqFold(const double* lane, double c, uint8_t* m, size_t n) {
  for (size_t i = 0; i < n; ++i) m[i] &= static_cast<uint8_t>(lane[i] >= c);
}

MOQO_KERNEL_CLONES
uint8_t MaskAny(const uint8_t* m, size_t n) {
  uint8_t any = 0;
  for (size_t i = 0; i < n; ++i) any |= m[i];
  return any;
}

MOQO_KERNEL_CLONES
size_t MaskCount(const uint8_t* m, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += m[i];
  return count;
}

}  // namespace

void BankArena::NewChunk(size_t min_doubles) {
  // Chunks double up to 64K doubles (512 KiB); a request larger than
  // the growth curve gets a dedicated chunk.
  constexpr size_t kMinChunk = 1024;
  constexpr size_t kMaxChunk = 64 * 1024;
  size_t next = chunk_size_ == 0 ? kMinChunk
                                 : std::min(chunk_size_ * 2, kMaxChunk);
  next = std::max(next, min_doubles);
  chunks_.push_back(std::make_unique<double[]>(next));
  chunk_size_ = next;
  used_ = 0;
}

void CostBank::Grow(size_t min_capacity) {
  MOQO_CHECK(dims_ >= 1);
  size_t next = capacity_ == 0 ? kLanePad : capacity_ * 2;
  next = PadCapacity(std::max(next, min_capacity));
  double* fresh;
  std::unique_ptr<double[]> fresh_owned;
  if (arena_ != nullptr) {
    // The old block is abandoned in place; the arena reclaims it with
    // everything else at epoch reset (no per-block free).
    fresh = arena_->Allocate(static_cast<size_t>(dims_) * next);
  } else {
    fresh_owned =
        std::make_unique<double[]>(static_cast<size_t>(dims_) * next);
    fresh = fresh_owned.get();
  }
  for (int d = 0; d < dims_; ++d) {
    if (size_ > 0) {
      std::memcpy(fresh + static_cast<size_t>(d) * next,
                  lanes_ + static_cast<size_t>(d) * capacity_,
                  size_ * sizeof(double));
    }
  }
  lanes_ = fresh;
  heap_ = std::move(fresh_owned);
  capacity_ = next;
}

// Lane-at-a-time mask passes: one streaming compare loop per metric,
// folded into the byte mask with &.
void DominatedMask(const CostBank& bank, const double* c, uint8_t* leq,
                   uint8_t* geq) {
  const size_t n = bank.size();
  const int dims = bank.dims();
  if (leq != nullptr) {
    MaskLeqInit(bank.Lane(0), c[0], leq, n);
    for (int d = 1; d < dims; ++d) MaskLeqFold(bank.Lane(d), c[d], leq, n);
  }
  if (geq != nullptr) {
    MaskGeqInit(bank.Lane(0), c[0], geq, n);
    for (int d = 1; d < dims; ++d) MaskGeqFold(bank.Lane(d), c[d], geq, n);
  }
}

uint32_t FindDominating(const CostBank& bank, const double* bounds,
                        size_t* scanned) {
  const size_t n = bank.size();
  const int dims = bank.dims();
  uint8_t m[kSearchBlock];
  size_t base = 0;
  // Full blocks, lane at a time with two early-outs: a block whose
  // lane-0 mask is already empty skips the remaining lanes entirely (the
  // common case for the selective α·c(p) pruning probes), and a block
  // that survives all lanes reports its first set bit.
  for (; base + kSearchBlock <= n; base += kSearchBlock) {
    MaskLeqInit(bank.Lane(0) + base, bounds[0], m, kSearchBlock);
    uint8_t any = MaskAny(m, kSearchBlock);
    for (int d = 1; d < dims && any != 0; ++d) {
      MaskLeqFold(bank.Lane(d) + base, bounds[d], m, kSearchBlock);
      any = MaskAny(m, kSearchBlock);
    }
    if (any) {
      for (size_t j = 0; j < kSearchBlock; ++j) {
        if (m[j]) {
          if (scanned != nullptr) *scanned += base + j + 1;
          return static_cast<uint32_t>(base + j);
        }
      }
    }
  }
  // Tail (and banks smaller than one block): per-entry early exit, the
  // scalar cost profile — batching buys nothing below the block size.
  for (size_t i = base; i < n; ++i) {
    bool dom = true;
    for (int d = 0; d < dims; ++d) {
      if (bank.Lane(d)[i] > bounds[d]) {
        dom = false;
        break;
      }
    }
    if (dom) {
      if (scanned != nullptr) *scanned += i + 1;
      return static_cast<uint32_t>(i);
    }
  }
  if (scanned != nullptr) *scanned += n;
  return kKernelNpos;
}

size_t FilterByBounds(const CostBank& bank, const double* bounds,
                      uint8_t* mask) {
  DominatedMask(bank, bounds, mask, nullptr);
  return MaskCount(mask, bank.size());
}

bool FrontierBank::BatchInsert(const double* cost, uint64_t payload) {
  const size_t n = costs.size();
  // Reject iff some member m satisfies m ⪯ cost: strict dominators and
  // exact duplicates both land in that mask (first payload wins).
  if (FindDominating(costs, cost) != kKernelNpos) return false;
  if (n > 0) {
    // Evict members the candidate strictly dominates: cost ⪯ m and
    // m != cost. Since no member has m ⪯ cost here, geq alone is the
    // strict mask (equality would imply m ⪯ cost, already rejected).
    scratch_.resize(n);
    DominatedMask(costs, cost, nullptr, scratch_.data());
    // Swap-with-back compaction, exactly the scalar eviction order: a
    // mask bit travels with its entry when it is moved into a vacated
    // slot, so the final layout matches the scalar path bit for bit.
    size_t i = 0, end = n;
    while (i < end) {
      if (scratch_[i]) {
        --end;
        scratch_[i] = scratch_[end];
        costs.SwapRemove(i);  // lane[i] = lane[end], size becomes end.
        payloads[i] = payloads[end];
        payloads.pop_back();
      } else {
        ++i;
      }
    }
  }
  costs.PushBack(cost);
  payloads.push_back(payload);
  return true;
}

}  // namespace moqo
