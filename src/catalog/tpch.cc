#include "catalog/tpch.h"

#include "util/common.h"

namespace moqo {

Catalog MakeTpchCatalog(double scale_factor) {
  MOQO_CHECK(scale_factor > 0.0);
  const double sf = scale_factor;
  Catalog catalog;
  // Cardinalities per the TPC-H specification. REGION and NATION are
  // fixed-size; the remaining tables scale with the scale factor.
  TableId id;
  id = catalog.AddTable({"region", 5.0, 124.0, true});
  MOQO_CHECK(id == kRegion);
  id = catalog.AddTable({"nation", 25.0, 109.0, true});
  MOQO_CHECK(id == kNation);
  id = catalog.AddTable({"supplier", 10000.0 * sf, 159.0, true});
  MOQO_CHECK(id == kSupplier);
  id = catalog.AddTable({"customer", 150000.0 * sf, 179.0, true});
  MOQO_CHECK(id == kCustomer);
  id = catalog.AddTable({"part", 200000.0 * sf, 155.0, true});
  MOQO_CHECK(id == kPart);
  id = catalog.AddTable({"partsupp", 800000.0 * sf, 144.0, true});
  MOQO_CHECK(id == kPartsupp);
  id = catalog.AddTable({"orders", 1500000.0 * sf, 121.0, true});
  MOQO_CHECK(id == kOrders);
  id = catalog.AddTable({"lineitem", 6001215.0 * sf, 129.0, true});
  MOQO_CHECK(id == kLineitem);
  return catalog;
}

}  // namespace moqo
