#include "catalog/catalog.h"

#include <utility>

#include "util/common.h"

namespace moqo {
namespace {

StatusOr<TableId> FindByNameIn(const std::vector<TableDef>& tables,
                               const std::string& name) {
  if (tables.empty()) {
    return Status::NotFound("catalog is empty; no table named '" + name +
                            "'");
  }
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].name == name) return static_cast<TableId>(i);
  }
  return Status::NotFound("no table named '" + name + "'");
}

}  // namespace

const TableDef& CatalogSnapshot::Get(TableId id) const {
  MOQO_CHECK_MSG(id >= 0 && id < NumTables(),
                 "table id out of range for catalog snapshot");
  return tables_[static_cast<size_t>(id)];
}

StatusOr<TableId> CatalogSnapshot::FindByName(const std::string& name) const {
  return FindByNameIn(tables_, name);
}

Catalog::Catalog(const Catalog& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  tables_ = other.tables_;
  version_ = other.version_;
  cached_ = other.cached_;  // Immutable: sharing the snapshot is safe.
}

Catalog& Catalog::operator=(const Catalog& other) {
  if (this == &other) return *this;
  // Copy under other's lock first so the two locks are never held at
  // once (no ordering between distinct Catalog instances).
  std::vector<TableDef> tables;
  uint64_t version;
  std::shared_ptr<const CatalogSnapshot> cached;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    tables = other.tables_;
    version = other.version_;
    cached = other.cached_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  tables_ = std::move(tables);
  version_ = version;
  cached_ = std::move(cached);
  return *this;
}

Catalog::Catalog(Catalog&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  tables_ = std::move(other.tables_);
  version_ = other.version_;
  cached_ = std::move(other.cached_);
  other.tables_.clear();
  other.version_ = 0;
  other.cached_.reset();
}

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  if (this == &other) return *this;
  std::vector<TableDef> tables;
  uint64_t version;
  std::shared_ptr<const CatalogSnapshot> cached;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    tables = std::move(other.tables_);
    version = other.version_;
    cached = std::move(other.cached_);
    other.tables_.clear();
    other.version_ = 0;
    other.cached_.reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  tables_ = std::move(tables);
  version_ = version;
  cached_ = std::move(cached);
  return *this;
}

TableId Catalog::AddTable(TableDef def) {
  MOQO_CHECK_MSG(def.cardinality >= 1.0, "table cardinality must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  tables_.push_back(std::move(def));
  ++version_;
  cached_.reset();
  return static_cast<TableId>(tables_.size() - 1);
}

Status Catalog::UpdateStats(TableId id, double cardinality,
                            std::optional<double> row_bytes) {
  if (!(cardinality >= 1.0)) {
    return Status::InvalidArgument("table cardinality must be >= 1");
  }
  if (row_bytes.has_value() && !(*row_bytes > 0.0)) {
    return Status::InvalidArgument("row_bytes must be > 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<TableId>(tables_.size())) {
    return Status::NotFound("no table with id " + std::to_string(id));
  }
  TableDef& table = tables_[static_cast<size_t>(id)];
  table.cardinality = cardinality;
  if (row_bytes.has_value()) table.row_bytes = *row_bytes;
  ++version_;
  cached_.reset();
  return Status::OK();
}

Status Catalog::ReplaceTable(TableId id, TableDef def) {
  if (!(def.cardinality >= 1.0)) {
    return Status::InvalidArgument("table cardinality must be >= 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<TableId>(tables_.size())) {
    return Status::NotFound("no table with id " + std::to_string(id));
  }
  tables_[static_cast<size_t>(id)] = std::move(def);
  ++version_;
  cached_.reset();
  return Status::OK();
}

int Catalog::NumTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tables_.size());
}

TableDef Catalog::Get(TableId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  MOQO_CHECK_MSG(id >= 0 && id < static_cast<TableId>(tables_.size()),
                 "table id out of range for catalog");
  return tables_[static_cast<size_t>(id)];
}

StatusOr<TableId> Catalog::FindByName(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindByNameIn(tables_, name);
}

std::shared_ptr<const CatalogSnapshot> Catalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cached_ == nullptr) {
    cached_ = std::shared_ptr<const CatalogSnapshot>(
        new CatalogSnapshot(version_, tables_));
  }
  return cached_;
}

uint64_t Catalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

}  // namespace moqo
