#include "catalog/catalog.h"

#include "util/common.h"

namespace moqo {

TableId Catalog::AddTable(TableDef def) {
  MOQO_CHECK_MSG(def.cardinality >= 1.0, "table cardinality must be >= 1");
  tables_.push_back(std::move(def));
  return static_cast<TableId>(tables_.size() - 1);
}

const TableDef& Catalog::Get(TableId id) const {
  MOQO_CHECK(id >= 0 && id < NumTables());
  return tables_[static_cast<size_t>(id)];
}

StatusOr<TableId> Catalog::FindByName(const std::string& name) const {
  for (int i = 0; i < NumTables(); ++i) {
    if (tables_[static_cast<size_t>(i)].name == name) return i;
  }
  return Status::NotFound("no table named '" + name + "'");
}

}  // namespace moqo
