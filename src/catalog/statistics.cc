#include "catalog/statistics.h"

#include <cmath>

namespace moqo {

std::vector<double> SamplingRates(const TableDef& table,
                                  int max_rates_per_table) {
  std::vector<double> rates;
  if (max_rates_per_table <= 0) return rates;
  // A sample is only useful if it still contains a statistically
  // meaningful number of rows; require >= ~1000 sampled rows. Each rate
  // divides the previous one by 4.
  const double kMinSampleRows = 1000.0;
  double rate = 0.25;
  while (static_cast<int>(rates.size()) < max_rates_per_table &&
         rate * table.cardinality >= kMinSampleRows) {
    rates.push_back(rate);
    rate /= 4.0;
  }
  return rates;
}

std::vector<int> WorkerCounts(int max_workers) {
  // Powers of two plus the intermediate 1.5x grades (3, 6, 12, ...):
  // resource managers typically expose a geometric ladder of parallelism
  // grades, and the denser ladder yields a denser time/cores tradeoff
  // surface.
  std::vector<int> counts;
  for (int w = 1; w <= max_workers; w *= 2) {
    counts.push_back(w);
    const int mid = w + w / 2;
    if (w >= 2 && mid <= max_workers) counts.push_back(mid);
  }
  return counts;
}

}  // namespace moqo
