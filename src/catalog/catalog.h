// Catalog: table definitions and base statistics.
//
// Replaces the Postgres catalog the paper's implementation sat on: the
// optimizer only needs per-table cardinality, width, page count, and index
// availability, plus join selectivities (which live on the query's join
// graph, see src/query/join_graph.h).
#ifndef MOQO_CATALOG_CATALOG_H_
#define MOQO_CATALOG_CATALOG_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace moqo {

using TableId = int;

struct TableDef {
  std::string name;
  // Number of rows in the base table.
  double cardinality = 0.0;
  // Average row width in bytes; determines page count.
  double row_bytes = 100.0;
  // Whether an index is available (enables index scans).
  bool has_index = true;

  // Number of disk pages, assuming 8 KiB pages.
  double Pages() const {
    const double kPageBytes = 8192.0;
    const double pages = cardinality * row_bytes / kPageBytes;
    return pages < 1.0 ? 1.0 : pages;
  }
};

// An append-only collection of table definitions.
class Catalog {
 public:
  // Returns the id of the newly added table.
  TableId AddTable(TableDef def);

  int NumTables() const { return static_cast<int>(tables_.size()); }
  const TableDef& Get(TableId id) const;

  // Looks up a table by name.
  StatusOr<TableId> FindByName(const std::string& name) const;

 private:
  std::vector<TableDef> tables_;
};

}  // namespace moqo

#endif  // MOQO_CATALOG_CATALOG_H_
