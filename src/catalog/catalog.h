/// \file
/// Catalog: table definitions and base statistics, with live refresh.
///
/// Replaces the Postgres catalog the paper's implementation sat on: the
/// optimizer only needs per-table cardinality, width, page count, and
/// index availability, plus join selectivities (which live on the
/// query's join graph, see src/query/join_graph.h).
///
/// **Versioning.** Statistics drift in a long-running service, so the
/// catalog is mutable and *versioned*: every mutation (AddTable,
/// UpdateStats, ReplaceTable) advances a monotonic version, and
/// Snapshot() returns an immutable, refcounted CatalogSnapshot of the
/// current state. Concurrent readers (the optimizer, the serving layer)
/// pin a snapshot and never observe later mutations — the same
/// copy-on-read pattern the fragment store uses for its frontiers.
/// Direct reads (Get, FindByName) are served from the working copy and
/// are only safe while no thread mutates concurrently; anything that
/// outlives a mutation must hold a snapshot instead
/// (docs/CATALOG_REFRESH.md describes the full refresh protocol).
#ifndef MOQO_CATALOG_CATALOG_H_
#define MOQO_CATALOG_CATALOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace moqo {

/// Index of a table in the catalog (and in every CatalogSnapshot taken
/// from it — ids are stable across UpdateStats/ReplaceTable).
using TableId = int;

/// One table's definition and base statistics.
struct TableDef {
  /// Table name, unique within a well-formed catalog (FindByName returns
  /// the first match).
  std::string name;
  /// Number of rows in the base table; must be >= 1.
  double cardinality = 0.0;
  /// Average row width in bytes; determines page count.
  double row_bytes = 100.0;
  /// Whether an index is available (enables index scans).
  bool has_index = true;

  /// Number of disk pages, assuming 8 KiB pages (clamped at one page).
  double Pages() const {
    const double kPageBytes = 8192.0;
    const double pages = cardinality * row_bytes / kPageBytes;
    return pages < 1.0 ? 1.0 : pages;
  }
};

/// An immutable view of the catalog at one version. Snapshots are
/// refcounted and never mutated after creation: a run that pins one at
/// admission sees exactly the statistics it was admitted under, no
/// matter what the live catalog does afterwards. Thread-safe (it is
/// read-only).
class CatalogSnapshot {
 public:
  /// Number of tables in this snapshot.
  int NumTables() const { return static_cast<int>(tables_.size()); }

  /// Returns table `id`'s definition. `id` must be in
  /// [0, NumTables()) — out-of-range ids abort (MOQO_CHECK), they are
  /// a caller logic error, not user input.
  const TableDef& Get(TableId id) const;

  /// Looks up a table by name; NotFound when no table matches (or the
  /// snapshot is empty).
  StatusOr<TableId> FindByName(const std::string& name) const;

  /// The catalog version this snapshot was taken at. Versions are
  /// monotonic per Catalog: a snapshot with a larger version reflects
  /// strictly later mutations.
  uint64_t version() const { return version_; }

 private:
  friend class Catalog;
  CatalogSnapshot(uint64_t version, std::vector<TableDef> tables)
      : version_(version), tables_(std::move(tables)) {}

  uint64_t version_ = 0;
  std::vector<TableDef> tables_;
};

/// The mutable, versioned collection of table definitions. All methods
/// are thread-safe with respect to each other; Get() returns a copy,
/// so even its result is race-free against concurrent mutation.
/// Readers that need a *consistent multi-table* view concurrent with
/// mutations still pin a Snapshot().
class Catalog {
 public:
  /// An empty catalog at version 0.
  Catalog() = default;
  /// Copies `other`'s current state (tables and version).
  Catalog(const Catalog& other);
  /// Replaces this catalog's state with a copy of `other`'s.
  Catalog& operator=(const Catalog& other);
  /// Moves `other`'s state; `other` is left empty at version 0.
  Catalog(Catalog&& other) noexcept;
  /// Move-assigns `other`'s state; `other` is left empty at version 0.
  Catalog& operator=(Catalog&& other) noexcept;

  /// Appends a table and returns its id. `def.cardinality` must be
  /// >= 1 (builder API — violations abort). Advances the version.
  TableId AddTable(TableDef def);

  /// Updates table `id`'s statistics in place: `cardinality` must be
  /// >= 1; `row_bytes`, when given, must be > 0 (the old width is kept
  /// otherwise). Returns NotFound for an out-of-range id and
  /// InvalidArgument for bad values; on success advances the version.
  Status UpdateStats(TableId id, double cardinality,
                     std::optional<double> row_bytes = std::nullopt);

  /// Replaces table `id`'s whole definition (name, statistics, index
  /// availability) while keeping its id. Returns NotFound for an
  /// out-of-range id and InvalidArgument when `def.cardinality` < 1;
  /// on success advances the version.
  Status ReplaceTable(TableId id, TableDef def);

  /// Number of tables currently in the catalog.
  int NumTables() const;

  /// Returns a copy of table `id`'s definition (by value: a reference
  /// into the working vector would race concurrent in-place mutation
  /// the moment the internal lock dropped). `id` must be in
  /// [0, NumTables()) — out-of-range ids abort (MOQO_CHECK). Hot paths
  /// read through a pinned Snapshot() instead, whose Get() returns a
  /// reference into immutable storage.
  TableDef Get(TableId id) const;

  /// Looks up a table by name; NotFound when no table matches (or the
  /// catalog is empty).
  StatusOr<TableId> FindByName(const std::string& name) const;

  /// Returns an immutable snapshot of the current state. Cheap when the
  /// catalog has not mutated since the last call (the snapshot is
  /// cached and shared); a mutation invalidates the cache and the next
  /// call copies the table vector once.
  std::shared_ptr<const CatalogSnapshot> Snapshot() const;

  /// The current version: 0 for an empty catalog, advanced by every
  /// mutation.
  uint64_t version() const;

 private:
  mutable std::mutex mu_;
  std::vector<TableDef> tables_;  // Working copy; mutated in place.
  uint64_t version_ = 0;
  // Cached snapshot of (version_, tables_); reset by every mutation.
  mutable std::shared_ptr<const CatalogSnapshot> cached_;
};

}  // namespace moqo

#endif  // MOQO_CATALOG_CATALOG_H_
