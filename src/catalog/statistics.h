// Derived per-table statistics used by the physical operator library.
#ifndef MOQO_CATALOG_STATISTICS_H_
#define MOQO_CATALOG_STATISTICS_H_

#include <vector>

#include "catalog/catalog.h"

namespace moqo {

// Sampling strategies available for a table. Approximate query processing
// trades result precision for execution time by scanning a sample of the
// table. Larger tables support more (and more aggressive) sampling rates;
// tiny tables support none — this reproduces the paper's footnote 4 (the
// 8-table TPC-H query touches many small tables for which fewer sampling
// strategies are considered).
//
// Returned rates are in (0, 1); the full scan (rate 1.0) is always
// available in addition and not included here.
std::vector<double> SamplingRates(const TableDef& table,
                                  int max_rates_per_table);

// Worker counts available for parallel execution of an operator,
// e.g. {1, 2, 4, ...} up to max_workers.
std::vector<int> WorkerCounts(int max_workers);

}  // namespace moqo

#endif  // MOQO_CATALOG_STATISTICS_H_
