// TPC-H scale-factor-1 catalog.
//
// The paper evaluates on TPC-H queries on top of Postgres; we reproduce the
// schema-level statistics (public SF-1 cardinalities) that drive the
// optimizer's search space.
#ifndef MOQO_CATALOG_TPCH_H_
#define MOQO_CATALOG_TPCH_H_

#include "catalog/catalog.h"

namespace moqo {

// Indices of the TPC-H tables inside the catalog built by MakeTpchCatalog.
enum TpchTable : TableId {
  kRegion = 0,
  kNation = 1,
  kSupplier = 2,
  kCustomer = 3,
  kPart = 4,
  kPartsupp = 5,
  kOrders = 6,
  kLineitem = 7,
};

// Builds the 8-table TPC-H catalog at the given scale factor (default 1).
Catalog MakeTpchCatalog(double scale_factor = 1.0);

}  // namespace moqo

#endif  // MOQO_CATALOG_TPCH_H_
