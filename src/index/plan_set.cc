#include "index/plan_set.h"

namespace moqo {

PlanSetTable::PlanSetTable(int num_tables, int dims, double gamma)
    : num_tables_(num_tables),
      dims_(dims),
      gamma_(gamma),
      empty_(dims, gamma) {
  MOQO_CHECK(num_tables >= 1 && num_tables <= kMaxTables);
  sets_.resize(size_t{1} << num_tables);
}

CellIndex& PlanSetTable::For(TableSet q) {
  MOQO_CHECK(q.mask() < sets_.size());
  std::unique_ptr<CellIndex>& slot = sets_[q.mask()];
  if (slot == nullptr) {
    slot = std::make_unique<CellIndex>(dims_, gamma_, &arena_);
  }
  return *slot;
}

const CellIndex& PlanSetTable::For(TableSet q) const {
  MOQO_CHECK(q.mask() < sets_.size());
  const std::unique_ptr<CellIndex>& slot = sets_[q.mask()];
  return slot == nullptr ? empty_ : *slot;
}

size_t PlanSetTable::TotalSize() const {
  size_t total = 0;
  for (const auto& set : sets_) {
    if (set != nullptr) total += set->size();
  }
  return total;
}

}  // namespace moqo
