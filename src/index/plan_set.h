// PlanSetTable: the per-table-set indexed plan sets Res^q / Cand^q.
//
// The optimizer keeps one indexed plan set per table subset q ⊆ Q, for both
// result plans and candidate plans (paper §4.1). Sets are stored densely by
// bitmask and created lazily on first touch.
#ifndef MOQO_INDEX_PLAN_SET_H_
#define MOQO_INDEX_PLAN_SET_H_

#include <memory>
#include <vector>

#include "index/cell_index.h"
#include "util/table_set.h"

namespace moqo {

class PlanSetTable {
 public:
  // `num_tables` tables in the query, `dims` cost metrics.
  PlanSetTable(int num_tables, int dims, double gamma = 2.0);

  // Lazily creates the set on first touch. Single-writer: only the
  // optimizer's main thread may call the non-const overload.
  CellIndex& For(TableSet q);
  // Const-safe for concurrent readers: never allocates; untouched sets
  // alias a shared empty index (same dims/gamma, zero entries).
  const CellIndex& For(TableSet q) const;

  // Total number of indexed plans across all table sets.
  size_t TotalSize() const;

  int num_tables() const { return num_tables_; }

 private:
  int num_tables_;
  int dims_;
  double gamma_;
  // Shared lane storage for every set's cost banks. Declared before the
  // indexes so it outlives them; bump-allocated blocks are reclaimed
  // wholesale when the table dies instead of per-cell.
  BankArena arena_;
  // Returned by the const accessor for sets that were never touched, so
  // concurrent const reads never mutate the table. Heap-backed (no
  // arena): it never stores entries anyway.
  CellIndex empty_;
  // Index 0 (empty set) is unused but kept for direct mask addressing.
  std::vector<std::unique_ptr<CellIndex>> sets_;
};

}  // namespace moqo

#endif  // MOQO_INDEX_PLAN_SET_H_
