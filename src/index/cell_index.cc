#include "index/cell_index.h"

#include <algorithm>

namespace moqo {
namespace {

// Bias added to bucket values so they pack into unsigned bytes.
constexpr int kBucketBias = 128;
constexpr int kMinBucket = -128;  // Values <= 0 (e.g. zero error).
constexpr int kMaxBucket = 127;   // +infinity bounds.

}  // namespace

CellIndex::CellIndex(int dims, double gamma, BankArena* arena)
    : dims_(dims), arena_(arena) {
  MOQO_CHECK(dims >= 1 && dims <= kMaxMetrics);
  MOQO_CHECK(gamma > 1.0);
  inv_log_gamma_ = 1.0 / std::log(gamma);
}

int CellIndex::Bucket(double value) const {
  if (value <= 0.0) return kMinBucket;
  if (std::isinf(value)) return kMaxBucket;
  const double b = std::floor(std::log(value) * inv_log_gamma_);
  if (b <= kMinBucket + 1) return kMinBucket + 1;
  if (b >= kMaxBucket - 1) return kMaxBucket - 1;
  return static_cast<int>(b);
}

CellIndex::Key CellIndex::MakeKey(const CostVector& cost, int resolution,
                                  int order) const {
  MOQO_CHECK(cost.dims() == dims_);
  MOQO_CHECK(resolution >= 0 && resolution <= 255);
  MOQO_CHECK(order >= 0 && order <= 255);
  Key key = (static_cast<Key>(resolution) << 56) |
            (static_cast<Key>(order) << 48);
  for (int i = 0; i < dims_; ++i) {
    const unsigned byte =
        static_cast<unsigned>(Bucket(cost.at(i)) + kBucketBias);
    key |= static_cast<Key>(byte & 0xFFu) << (8 * i);
  }
  return key;
}

CellIndex::Key CellIndex::BoundKey(const CostVector& bounds,
                                   int max_res) const {
  return MakeKey(bounds, std::min(max_res, 255), /*order=*/0);
}

CellIndex::CellRelation CellIndex::Classify(Key cell, Key bound,
                                            int required_order) const {
  // Resolution byte: inclusive upper bound, no per-entry re-check needed
  // (all entries in a cell share the cell's resolution).
  const unsigned cell_res = static_cast<unsigned>(cell >> 56);
  const unsigned bound_res = static_cast<unsigned>(bound >> 56);
  if (cell_res > bound_res) return CellRelation::kOutside;
  if (required_order != kAnyOrder) {
    const unsigned cell_order = static_cast<unsigned>(cell >> 48) & 0xFFu;
    if (cell_order != static_cast<unsigned>(required_order)) {
      return CellRelation::kOutside;
    }
  }
  bool inside = true;
  for (int i = 0; i < dims_; ++i) {
    const unsigned cb = static_cast<unsigned>(cell >> (8 * i)) & 0xFFu;
    const unsigned bb = static_cast<unsigned>(bound >> (8 * i)) & 0xFFu;
    if (cb > bb) return CellRelation::kOutside;
    if (cb == bb) inside = false;  // Boundary cell: filter per entry.
  }
  return inside ? CellRelation::kInside : CellRelation::kBoundary;
}

// --- KeyMap ----------------------------------------------------------------

size_t CellIndex::KeyMap::Mix(Key key) {
  // splitmix64 finalizer: the packed keys differ in few low bytes, so
  // identity hashing would cluster badly under linear probing.
  uint64_t z = key + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<size_t>(z ^ (z >> 31));
}

uint32_t CellIndex::KeyMap::Find(Key key) const {
  if (count_ == 0) return kKernelNpos;
  size_t i = Mix(key) & mask_;
  while (slots_[i] != kKernelNpos) {
    if (keys_[i] == key) return slots_[i];
    i = (i + 1) & mask_;
  }
  return kKernelNpos;
}

void CellIndex::KeyMap::Insert(Key key, uint32_t slot) {
  // Grow at 7/8 load; the table starts at 16 slots.
  if ((count_ + 1) * 8 > (mask_ + 1) * 7 || slots_.empty()) {
    Rehash(slots_.empty() ? 16 : (mask_ + 1) * 2);
  }
  size_t i = Mix(key) & mask_;
  while (slots_[i] != kKernelNpos) {
    MOQO_DCHECK(keys_[i] != key);
    i = (i + 1) & mask_;
  }
  keys_[i] = key;
  slots_[i] = slot;
  ++count_;
}

void CellIndex::KeyMap::Rehash(size_t capacity) {
  std::vector<Key> old_keys = std::move(keys_);
  std::vector<uint32_t> old_slots = std::move(slots_);
  keys_.assign(capacity, 0);
  slots_.assign(capacity, kKernelNpos);
  mask_ = capacity - 1;
  for (size_t i = 0; i < old_slots.size(); ++i) {
    if (old_slots[i] == kKernelNpos) continue;
    size_t j = Mix(old_keys[i]) & mask_;
    while (slots_[j] != kKernelNpos) j = (j + 1) & mask_;
    keys_[j] = old_keys[i];
    slots_[j] = old_slots[i];
  }
}

void CellIndex::KeyMap::Clear() {
  keys_.clear();
  slots_.clear();
  count_ = 0;
  mask_ = 0;
}

// --- CellIndex -------------------------------------------------------------

CellIndex::Cell& CellIndex::CellFor(const CostVector& cost, int resolution,
                                    int order) {
  const Key key = MakeKey(cost, resolution, order);
  uint32_t slot = map_.Find(key);
  if (slot == kKernelNpos) {
    slot = static_cast<uint32_t>(cells_.size());
    cells_.emplace_back();
    Cell& cell = cells_.back();
    cell.key = key;
    cell.bank = CostBank(dims_, arena_);
    cell.resolution = static_cast<uint8_t>(resolution);
    cell.order = static_cast<uint8_t>(order);
    map_.Insert(key, slot);
  }
  return cells_[slot];
}

const CellIndex::Entry& CellIndex::MaterializeEntry(const Cell& cell,
                                                    size_t i,
                                                    Entry* e) const {
  const Payload& p = cell.entries[i];
  e->id = p.id;
  e->last_visible = p.last_visible;
  e->cost = CostVector(dims_);
  double* c = e->cost.data();
  for (int d = 0; d < dims_; ++d) c[d] = cell.bank.At(i, d);
  e->resolution = cell.resolution;
  e->order = cell.order;
  e->delta = p.delta != 0;
  return *e;
}

void CellIndex::Insert(uint32_t id, const CostVector& cost, int resolution,
                       uint32_t invocation, int order) {
  MOQO_CHECK(cost.IsFinite());
  MOQO_CHECK(cost.IsNonNegative());
  Cell& cell = CellFor(cost, resolution, order);
  cell.bank.PushBack(cost.data());
  if (MOQO_PREDICT_FALSE(cell.entries.capacity() < cell.bank.capacity())) {
    // Keep the payload lane's growth in lockstep with the bank's padded
    // doubling: one reallocation per growth step for both arrays.
    cell.entries.reserve(cell.bank.capacity());
  }
  cell.entries.push_back({id, invocation, 1});
  ++size_;
}

bool CellIndex::AnyInRange(const CostVector& bounds, int max_res,
                           uint64_t* checked, int required_order) const {
  return FindInRange(bounds, max_res, /*out=*/nullptr, checked,
                     required_order);
}

bool CellIndex::FindInRange(const CostVector& bounds, int max_res,
                            Entry* out, uint64_t* checked,
                            int required_order) const {
  const Key bound_key = BoundKey(bounds, max_res);
  for (const Cell& cell : cells_) {
    if (cell.size() == 0) continue;
    const CellRelation rel = Classify(cell.key, bound_key, required_order);
    if (rel == CellRelation::kOutside) continue;
    if (rel == CellRelation::kInside) {
      if (out != nullptr) MaterializeEntry(cell, 0, out);
      return true;
    }
    size_t scanned = 0;
    const uint32_t hit = FindDominating(cell.bank, bounds.data(), &scanned);
    if (checked != nullptr) *checked += scanned;
    if (hit != kKernelNpos) {
      if (out != nullptr) MaterializeEntry(cell, hit, out);
      return true;
    }
  }
  return false;
}

std::vector<CellIndex::Collected> CellIndex::Collect(const CostVector& bounds,
                                                     int max_res,
                                                     uint32_t invocation) {
  std::vector<Collected> out;
  const Key bound_key = BoundKey(bounds, max_res);
  for (Cell& cell : cells_) {
    const size_t n = cell.size();
    if (n == 0) continue;
    const CellRelation rel = Classify(cell.key, bound_key, kAnyOrder);
    if (rel == CellRelation::kOutside) continue;
    const uint8_t* filter = nullptr;
    if (rel == CellRelation::kBoundary) {
      mask_buf_.resize(n);
      FilterByBounds(cell.bank, bounds.data(), mask_buf_.data());
      filter = mask_buf_.data();
    }
    for (size_t i = 0; i < n; ++i) {
      if (filter != nullptr && filter[i] == 0) continue;
      Payload& p = cell.entries[i];
      bool delta;
      if (p.last_visible == invocation) {
        // Already classified earlier in this invocation (the same set can
        // be collected for several splits); keep the classification.
        delta = p.delta != 0;
      } else {
        // Δ iff the entry was not visible in the previous invocation; in
        // that case its pairings may be missing and must be (re)tried.
        delta = p.last_visible + 1 != invocation;
        p.last_visible = invocation;
        p.delta = delta;
      }
      out.push_back({p.id, delta});
    }
  }
  return out;
}

std::vector<CellIndex::Entry> CellIndex::Drain(const CostVector& bounds,
                                               int max_res) {
  std::vector<Entry> removed;
  Entry scratch;
  const Key bound_key = BoundKey(bounds, max_res);
  for (Cell& cell : cells_) {
    size_t n = cell.size();
    if (n == 0) continue;
    const CellRelation rel = Classify(cell.key, bound_key, kAnyOrder);
    if (rel == CellRelation::kOutside) continue;
    if (rel == CellRelation::kInside) {
      for (size_t i = 0; i < n; ++i) {
        removed.push_back(MaterializeEntry(cell, i, &scratch));
      }
      cell.bank.Clear();
      cell.entries.clear();
      size_ -= n;
      continue;
    }
    mask_buf_.resize(n);
    FilterByBounds(cell.bank, bounds.data(), mask_buf_.data());
    // Swap-with-back compaction in the legacy entry order; the mask bit
    // travels with the entry moved into the vacated slot.
    size_t i = 0;
    while (i < n) {
      if (mask_buf_[i]) {
        removed.push_back(MaterializeEntry(cell, i, &scratch));
        --n;
        mask_buf_[i] = mask_buf_[n];
        cell.bank.SwapRemove(i);
        cell.entries[i] = cell.entries[n];
        cell.entries.pop_back();
        --size_;
      } else {
        ++i;
      }
    }
    // A fully drained cell stays as a husk and keeps its map slot; a
    // later insert with the same key reuses it.
  }
  return removed;
}

void CellIndex::ResetVisibility() {
  for (Cell& cell : cells_) {
    for (Payload& p : cell.entries) {
      p.last_visible = kNeverVisible;
      p.delta = 1;
    }
  }
}

size_t CellIndex::NumCells() const {
  size_t n = 0;
  for (const Cell& cell : cells_) n += cell.size() > 0 ? 1 : 0;
  return n;
}

void CellIndex::Clear() {
  cells_.clear();
  map_.Clear();
  size_ = 0;
}

}  // namespace moqo
