#include "index/cell_index.h"

#include <algorithm>

namespace moqo {
namespace {

// Bias added to bucket values so they pack into unsigned bytes.
constexpr int kBucketBias = 128;
constexpr int kMinBucket = -128;  // Values <= 0 (e.g. zero error).
constexpr int kMaxBucket = 127;   // +infinity bounds.

}  // namespace

CellIndex::CellIndex(int dims, double gamma) : dims_(dims) {
  MOQO_CHECK(dims >= 1 && dims <= kMaxMetrics);
  MOQO_CHECK(gamma > 1.0);
  inv_log_gamma_ = 1.0 / std::log(gamma);
}

int CellIndex::Bucket(double value) const {
  if (value <= 0.0) return kMinBucket;
  if (std::isinf(value)) return kMaxBucket;
  const double b = std::floor(std::log(value) * inv_log_gamma_);
  if (b <= kMinBucket + 1) return kMinBucket + 1;
  if (b >= kMaxBucket - 1) return kMaxBucket - 1;
  return static_cast<int>(b);
}

CellIndex::Key CellIndex::MakeKey(const CostVector& cost, int resolution,
                                  int order) const {
  MOQO_CHECK(cost.dims() == dims_);
  MOQO_CHECK(resolution >= 0 && resolution <= 255);
  MOQO_CHECK(order >= 0 && order <= 255);
  Key key = (static_cast<Key>(resolution) << 56) |
            (static_cast<Key>(order) << 48);
  for (int i = 0; i < dims_; ++i) {
    const unsigned byte =
        static_cast<unsigned>(Bucket(cost[i]) + kBucketBias);
    key |= static_cast<Key>(byte & 0xFFu) << (8 * i);
  }
  return key;
}

CellIndex::Key CellIndex::BoundKey(const CostVector& bounds,
                                   int max_res) const {
  return MakeKey(bounds, std::min(max_res, 255), /*order=*/0);
}

CellIndex::CellRelation CellIndex::Classify(Key cell, Key bound,
                                            int required_order) const {
  // Resolution byte: inclusive upper bound, no per-entry re-check needed
  // (all entries in a cell share the cell's resolution).
  const unsigned cell_res = static_cast<unsigned>(cell >> 56);
  const unsigned bound_res = static_cast<unsigned>(bound >> 56);
  if (cell_res > bound_res) return CellRelation::kOutside;
  if (required_order != kAnyOrder) {
    const unsigned cell_order = static_cast<unsigned>(cell >> 48) & 0xFFu;
    if (cell_order != static_cast<unsigned>(required_order)) {
      return CellRelation::kOutside;
    }
  }
  bool inside = true;
  for (int i = 0; i < dims_; ++i) {
    const unsigned cb = static_cast<unsigned>(cell >> (8 * i)) & 0xFFu;
    const unsigned bb = static_cast<unsigned>(bound >> (8 * i)) & 0xFFu;
    if (cb > bb) return CellRelation::kOutside;
    if (cb == bb) inside = false;  // Boundary cell: filter per entry.
  }
  return inside ? CellRelation::kInside : CellRelation::kBoundary;
}

bool CellIndex::InRange(const Entry& e, const CostVector& bounds,
                        int max_res) const {
  if (e.resolution > max_res) return false;
  return e.cost.Dominates(bounds);
}

void CellIndex::Insert(uint32_t id, const CostVector& cost, int resolution,
                       uint32_t invocation, int order) {
  MOQO_CHECK(cost.IsFinite());
  MOQO_CHECK(cost.IsNonNegative());
  Entry e;
  e.id = id;
  e.last_visible = invocation;
  e.cost = cost;
  e.resolution = static_cast<uint8_t>(resolution);
  e.order = static_cast<uint8_t>(order);
  e.delta = true;
  cells_[MakeKey(cost, resolution, order)].push_back(e);
  ++size_;
}

bool CellIndex::AnyInRange(const CostVector& bounds, int max_res,
                           uint64_t* checked, int required_order) const {
  return FindInRange(bounds, max_res, checked, required_order) != nullptr;
}

const CellIndex::Entry* CellIndex::FindInRange(const CostVector& bounds,
                                               int max_res,
                                               uint64_t* checked,
                                               int required_order) const {
  const Key bound_key = BoundKey(bounds, max_res);
  for (const auto& [key, cell] : cells_) {
    const CellRelation rel = Classify(key, bound_key, required_order);
    if (rel == CellRelation::kOutside) continue;
    if (rel == CellRelation::kInside) {
      if (!cell.empty()) return &cell.front();
      continue;
    }
    for (const Entry& e : cell) {
      if (checked != nullptr) ++*checked;
      if (InRange(e, bounds, max_res)) return &e;
    }
  }
  return nullptr;
}

std::vector<CellIndex::Collected> CellIndex::Collect(const CostVector& bounds,
                                                     int max_res,
                                                     uint32_t invocation) {
  std::vector<Collected> out;
  const Key bound_key = BoundKey(bounds, max_res);
  for (auto& [key, cell] : cells_) {
    const CellRelation rel = Classify(key, bound_key, kAnyOrder);
    if (rel == CellRelation::kOutside) continue;
    for (Entry& e : cell) {
      if (rel != CellRelation::kInside && !InRange(e, bounds, max_res)) {
        continue;
      }
      bool delta;
      if (e.last_visible == invocation) {
        // Already classified earlier in this invocation (the same set can
        // be collected for several splits); keep the classification.
        delta = e.delta;
      } else {
        // Δ iff the entry was not visible in the previous invocation; in
        // that case its pairings may be missing and must be (re)tried.
        delta = e.last_visible + 1 != invocation;
        e.last_visible = invocation;
        e.delta = delta;
      }
      out.push_back({e.id, e.cost, delta});
    }
  }
  return out;
}

std::vector<CellIndex::Entry> CellIndex::Drain(const CostVector& bounds,
                                               int max_res) {
  std::vector<Entry> removed;
  const Key bound_key = BoundKey(bounds, max_res);
  for (auto it = cells_.begin(); it != cells_.end();) {
    const CellRelation rel = Classify(it->first, bound_key, kAnyOrder);
    if (rel == CellRelation::kOutside) {
      ++it;
      continue;
    }
    std::vector<Entry>& cell = it->second;
    if (rel == CellRelation::kInside) {
      removed.insert(removed.end(), cell.begin(), cell.end());
      size_ -= cell.size();
      it = cells_.erase(it);
      continue;
    }
    for (size_t i = 0; i < cell.size();) {
      if (InRange(cell[i], bounds, max_res)) {
        removed.push_back(cell[i]);
        cell[i] = cell.back();
        cell.pop_back();
        --size_;
      } else {
        ++i;
      }
    }
    if (cell.empty()) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

void CellIndex::ResetVisibility() {
  for (auto& [key, cell] : cells_) {
    (void)key;
    for (Entry& e : cell) {
      e.last_visible = kNeverVisible;
      e.delta = true;
    }
  }
}

void CellIndex::Clear() {
  cells_.clear();
  size_ = 0;
}

}  // namespace moqo
