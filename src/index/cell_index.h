// CellIndex: multidimensional range-queryable plan index.
//
// The paper indexes result and candidate plans by cost vector and by
// resolution level and retrieves them with range queries of the form
// S[0..b, 0..r] (§4.1). Following the paper's §5.3 and footnote 3, we use a
// cell structure in the spirit of Bentley & Friedman [3] with logarithmic
// partitioning of the cost space: each plan lives in the cell identified by
// (resolution level, ⌊log_γ cost_i⌋ for each metric i). Cells are kept in a
// hash map, so insertion is O(1); a range query walks the occupied cells,
// skips cells entirely outside the query box via integer comparisons on
// the cell key, takes cells strictly inside wholesale, and filters entries
// only in boundary cells.
//
// The index additionally maintains per-entry *visibility stamps* used by
// the optimizer's Δ-set logic (paper §4.2, function Fresh): Collect()
// marks every retrieved entry with the current invocation number and
// reports whether the entry was already visible in the immediately
// preceding invocation. Entries that were not are exactly the Δ-set
// members that still need to be combined with their peers.
#ifndef MOQO_INDEX_CELL_INDEX_H_
#define MOQO_INDEX_CELL_INDEX_H_

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cost/cost_vector.h"
#include "util/common.h"

namespace moqo {

// Wildcard for the `required_order` parameter of range queries: match
// entries with any interesting-order tag.
inline constexpr int kAnyOrder = -1;

// Visibility-stamp sentinel: an entry whose last_visible is kNeverVisible
// classifies as Δ at its first Collect in *any* invocation i >= 1
// (kNeverVisible + 1 wraps to 0, which never equals a live invocation
// number). Used for seeded fragment entries and by ResetVisibility —
// real invocation counters start at 1 and can never reach it.
inline constexpr uint32_t kNeverVisible = 0xFFFFFFFFu;

class CellIndex {
 public:
  struct Entry {
    uint32_t id = 0;             // Caller-defined payload (PlanId).
    uint32_t last_visible = 0;   // Last invocation that collected this entry.
    CostVector cost;
    uint8_t resolution = 0;
    uint8_t order = 0;           // Interesting-order tag (0 = unordered).
    bool delta = true;           // Entry classification in `last_visible`.
  };

  // A retrieved entry together with its Δ classification for the current
  // invocation.
  struct Collected {
    uint32_t id = 0;
    CostVector cost;
    bool delta = true;
  };

  // `dims` is the number of cost metrics; `gamma` the logarithmic cell
  // width (costs c and c' share a dimension bucket iff
  // ⌊log_γ c⌋ = ⌊log_γ c'⌋).
  explicit CellIndex(int dims, double gamma = 2.0);

  // Inserts an entry; `invocation` stamps it as first visible (and Δ) in
  // the given optimizer invocation. `order` tags the plan's interesting
  // tuple order (0 = none); the order participates in the cell key so
  // order-restricted dominance queries skip whole cells.
  void Insert(uint32_t id, const CostVector& cost, int resolution,
              uint32_t invocation, int order = 0);

  // Visits every entry with resolution <= max_res and cost ⪯ bounds.
  // Does not touch visibility stamps.
  template <typename F>
  void ForEachInRange(const CostVector& bounds, int max_res, F&& fn) const {
    const Key bound_key = BoundKey(bounds, max_res);
    for (const auto& [key, cell] : cells_) {
      const CellRelation rel = Classify(key, bound_key, kAnyOrder);
      if (rel == CellRelation::kOutside) continue;
      for (const Entry& e : cell) {
        if (rel == CellRelation::kInside || InRange(e, bounds, max_res)) {
          fn(e);
        }
      }
    }
  }

  // True if some entry with resolution <= max_res and a matching order
  // tag (kAnyOrder = all) has cost ⪯ bounds. If `checked` is non-null,
  // the number of per-entry dominance checks performed is added to it
  // (instrumentation for Prune).
  bool AnyInRange(const CostVector& bounds, int max_res,
                  uint64_t* checked = nullptr,
                  int required_order = kAnyOrder) const;

  // Returns some entry with resolution <= max_res, matching order tag,
  // and cost ⪯ bounds, or nullptr. The pointer is invalidated by the
  // next mutating call.
  const Entry* FindInRange(const CostVector& bounds, int max_res,
                           uint64_t* checked = nullptr,
                           int required_order = kAnyOrder) const;

  // Retrieves all entries in range for optimizer invocation `invocation`,
  // updating visibility stamps: an entry's Δ flag is true iff it was not
  // visible during invocation-1 (or was inserted/classified Δ earlier in
  // the current invocation).
  std::vector<Collected> Collect(const CostVector& bounds, int max_res,
                                 uint32_t invocation);

  // Removes and returns all entries with resolution <= max_res and
  // cost ⪯ bounds. (Used to re-consider candidate plans: Algorithm 2
  // lines 8-9 retrieve and delete candidates before pruning them again.)
  std::vector<Entry> Drain(const CostVector& bounds, int max_res);

  // Marks every entry as never collected (last_visible = kNeverVisible),
  // so the next Collect classifies all of them as Δ regardless of the
  // invocation number. Used when a bounds change hits a fragment-seeded
  // optimizer: sealed cells were never enumerated, so their sub-plan
  // pairings must all be (re)tried — the fresh-pair registry keeps
  // already-combined pairs from generating twice.
  void ResetVisibility();

  size_t size() const { return size_; }
  size_t NumCells() const { return cells_.size(); }
  void Clear();

 private:
  // Packed cell key: byte 7 = resolution, byte 6 = interesting-order tag,
  // bytes 0..5 = biased per-dimension log buckets. Comparisons are
  // per-byte.
  using Key = uint64_t;

  enum class CellRelation { kOutside, kBoundary, kInside };

  int Bucket(double value) const;
  Key MakeKey(const CostVector& cost, int resolution, int order) const;
  Key BoundKey(const CostVector& bounds, int max_res) const;
  // Classifies a cell against the query box described by `bound_key` and
  // the order requirement.
  CellRelation Classify(Key cell, Key bound, int required_order) const;
  bool InRange(const Entry& e, const CostVector& bounds, int max_res) const;

  int dims_;
  double inv_log_gamma_;
  size_t size_ = 0;
  std::unordered_map<Key, std::vector<Entry>> cells_;
};

}  // namespace moqo

#endif  // MOQO_INDEX_CELL_INDEX_H_
