// CellIndex: multidimensional range-queryable plan index.
//
// The paper indexes result and candidate plans by cost vector and by
// resolution level and retrieves them with range queries of the form
// S[0..b, 0..r] (§4.1). Following the paper's §5.3 and footnote 3, we use a
// cell structure in the spirit of Bentley & Friedman [3] with logarithmic
// partitioning of the cost space: each plan lives in the cell identified by
// (resolution level, interesting-order tag, ⌊log_γ cost_i⌋ for each metric
// i). A range query walks the occupied cells, skips cells entirely outside
// the query box via integer comparisons on the packed cell key, takes cells
// strictly inside wholesale, and filters entries only in boundary cells.
//
// Data-oriented layout (docs/KERNEL.md). Cells are stored in a flat
// vector in creation order; a small open-addressing hash maps the packed
// 64-bit cell key to its slot — no per-node allocation, no pointer-chasing
// bucket walks. Each cell keeps its entries in struct-of-arrays form: the
// cost vectors live in a pareto/kernel.h CostBank (per-metric contiguous
// double lanes, arena-bump-allocated when the owning PlanSetTable supplies
// its arena), with the plan id and Δ-visibility state in one parallel
// payload array.
// Boundary-cell filtering and dominance probes run the kernel's batched
// primitives (FilterByBounds / FindDominating) over whole lanes instead of
// per-entry CostVector comparisons. Iteration order — and therefore every
// downstream insertion order — is a deterministic function of the
// insertion history alone, which is what the bit-identity suites (serial
// vs pooled, warm vs cold fragment seeding, remote vs in-process) rely on.
//
// The index additionally maintains per-entry *visibility stamps* used by
// the optimizer's Δ-set logic (paper §4.2, function Fresh): Collect()
// marks every retrieved entry with the current invocation number and
// reports whether the entry was already visible in the immediately
// preceding invocation. Entries that were not are exactly the Δ-set
// members that still need to be combined with their peers.
#ifndef MOQO_INDEX_CELL_INDEX_H_
#define MOQO_INDEX_CELL_INDEX_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "cost/cost_vector.h"
#include "pareto/kernel.h"
#include "util/common.h"

namespace moqo {

// Wildcard for the `required_order` parameter of range queries: match
// entries with any interesting-order tag.
inline constexpr int kAnyOrder = -1;

// Visibility-stamp sentinel: an entry whose last_visible is kNeverVisible
// classifies as Δ at its first Collect in *any* invocation i >= 1
// (kNeverVisible + 1 wraps to 0, which never equals a live invocation
// number). Used for seeded fragment entries and by ResetVisibility —
// real invocation counters start at 1 and can never reach it.
inline constexpr uint32_t kNeverVisible = 0xFFFFFFFFu;

class CellIndex {
 public:
  // A materialized entry view (the storage itself is struct-of-arrays).
  struct Entry {
    uint32_t id = 0;             // Caller-defined payload (PlanId).
    uint32_t last_visible = 0;   // Last invocation that collected this entry.
    CostVector cost;
    uint8_t resolution = 0;
    uint8_t order = 0;           // Interesting-order tag (0 = unordered).
    bool delta = true;           // Entry classification in `last_visible`.
  };

  // A retrieved entry together with its Δ classification for the current
  // invocation. Deliberately slim — phase 2 streams over millions of
  // these per step and only pairs ids; costs stay in the bank lanes.
  struct Collected {
    uint32_t id = 0;
    bool delta = true;
  };

  // `dims` is the number of cost metrics; `gamma` the logarithmic cell
  // width (costs c and c' share a dimension bucket iff
  // ⌊log_γ c⌋ = ⌊log_γ c'⌋). When `arena` is non-null the cells' cost
  // lanes are bump-allocated from it (it must outlive the index);
  // otherwise the index owns heap storage.
  explicit CellIndex(int dims, double gamma = 2.0,
                     BankArena* arena = nullptr);

  // Inserts an entry; `invocation` stamps it as first visible (and Δ) in
  // the given optimizer invocation. `order` tags the plan's interesting
  // tuple order (0 = none); the order participates in the cell key so
  // order-restricted dominance queries skip whole cells.
  void Insert(uint32_t id, const CostVector& cost, int resolution,
              uint32_t invocation, int order = 0);

  // Visits every entry with resolution <= max_res and cost ⪯ bounds.
  // Does not touch visibility stamps.
  template <typename F>
  void ForEachInRange(const CostVector& bounds, int max_res, F&& fn) const {
    const Key bound_key = BoundKey(bounds, max_res);
    std::vector<uint8_t> mask;
    Entry scratch;
    for (const Cell& cell : cells_) {
      if (cell.size() == 0) continue;
      const CellRelation rel = Classify(cell.key, bound_key, kAnyOrder);
      if (rel == CellRelation::kOutside) continue;
      const uint8_t* filter = nullptr;
      if (rel == CellRelation::kBoundary) {
        mask.resize(cell.size());
        FilterByBounds(cell.bank, bounds.data(), mask.data());
        filter = mask.data();
      }
      for (size_t i = 0; i < cell.size(); ++i) {
        if (filter != nullptr && filter[i] == 0) continue;
        fn(MaterializeEntry(cell, i, &scratch));
      }
    }
  }

  // True if some entry with resolution <= max_res and a matching order
  // tag (kAnyOrder = all) has cost ⪯ bounds. If `checked` is non-null,
  // the number of per-entry dominance checks performed is added to it
  // (instrumentation for Prune).
  bool AnyInRange(const CostVector& bounds, int max_res,
                  uint64_t* checked = nullptr,
                  int required_order = kAnyOrder) const;

  // Finds some entry with resolution <= max_res, matching order tag, and
  // cost ⪯ bounds; returns true and materializes it into `*out` (when
  // non-null). The batched replacement of the old pointer-returning
  // lookup: entries live in lanes, so there is no node to point at.
  bool FindInRange(const CostVector& bounds, int max_res, Entry* out,
                   uint64_t* checked = nullptr,
                   int required_order = kAnyOrder) const;

  // Retrieves all entries in range for optimizer invocation `invocation`,
  // updating visibility stamps: an entry's Δ flag is true iff it was not
  // visible during invocation-1 (or was inserted/classified Δ earlier in
  // the current invocation).
  std::vector<Collected> Collect(const CostVector& bounds, int max_res,
                                 uint32_t invocation);

  // Removes and returns all entries with resolution <= max_res and
  // cost ⪯ bounds. (Used to re-consider candidate plans: Algorithm 2
  // lines 8-9 retrieve and delete candidates before pruning them again.)
  std::vector<Entry> Drain(const CostVector& bounds, int max_res);

  // Marks every entry as never collected (last_visible = kNeverVisible),
  // so the next Collect classifies all of them as Δ regardless of the
  // invocation number. Used when a bounds change hits a fragment-seeded
  // optimizer: sealed cells were never enumerated, so their sub-plan
  // pairings must all be (re)tried — the fresh-pair registry keeps
  // already-combined pairs from generating twice.
  void ResetVisibility();

  size_t size() const { return size_; }
  size_t NumCells() const;
  void Clear();

 private:
  // Packed cell key: byte 7 = resolution, byte 6 = interesting-order tag,
  // bytes 0..5 = biased per-dimension log buckets. Comparisons are
  // per-byte.
  using Key = uint64_t;

  enum class CellRelation { kOutside, kBoundary, kInside };

  // Per-entry payload beside the cost lanes: the caller's id plus the
  // Δ-visibility state. One array rather than three parallel ones —
  // Collect, Drain, and the materializing walks always read every field
  // of an entry together, and a single push_back per insert keeps the
  // seeding hot path to one growing array beside the bank.
  struct Payload {
    uint32_t id = 0;
    uint32_t last_visible = 0;
    uint8_t delta = 1;
  };

  // One cost cell in struct-of-arrays layout. All entries of a cell
  // share its resolution and order (both are part of the key), so they
  // are stored once per cell instead of once per entry.
  struct Cell {
    Key key = 0;
    CostBank bank;                 // dims cost lanes.
    std::vector<Payload> entries;  // Payload lane, parallel to the bank.
    uint8_t resolution = 0;
    uint8_t order = 0;
    size_t size() const { return entries.size(); }
  };

  // Open-addressing hash from packed cell key to slot in cells_. Linear
  // probing over a power-of-two table; replaces std::unordered_map's
  // per-node allocations and bucket-list walks on the hot insert path.
  class KeyMap {
   public:
    // Returns the mapped slot or kKernelNpos.
    uint32_t Find(Key key) const;
    // Inserts a key that must not be present.
    void Insert(Key key, uint32_t slot);
    void Clear();

   private:
    void Rehash(size_t capacity);
    static size_t Mix(Key key);

    std::vector<Key> keys_;
    std::vector<uint32_t> slots_;  // kKernelNpos = empty slot.
    size_t count_ = 0;
    size_t mask_ = 0;  // capacity - 1; 0 when empty.
  };

  int Bucket(double value) const;
  Key MakeKey(const CostVector& cost, int resolution, int order) const;
  Key BoundKey(const CostVector& bounds, int max_res) const;
  // Classifies a cell against the query box described by `bound_key` and
  // the order requirement.
  CellRelation Classify(Key cell, Key bound, int required_order) const;
  // Finds or creates the cell for (cost, resolution, order).
  Cell& CellFor(const CostVector& cost, int resolution, int order);
  // Copies entry i of `cell` into *e and returns it.
  const Entry& MaterializeEntry(const Cell& cell, size_t i, Entry* e) const;

  int dims_;
  double inv_log_gamma_;
  size_t size_ = 0;
  BankArena* arena_ = nullptr;
  // Creation-order cell store. A fully drained cell stays as an empty
  // husk (and keeps its KeyMap slot) so a later re-insert reuses it; the
  // husk count is bounded by the number of distinct keys ever touched.
  std::vector<Cell> cells_;
  KeyMap map_;
  // Scratch mask reused by the mutating range walks.
  std::vector<uint8_t> mask_buf_;
};

}  // namespace moqo

#endif  // MOQO_INDEX_CELL_INDEX_H_
