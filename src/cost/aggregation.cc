#include "cost/aggregation.h"

#include <algorithm>

#include "util/common.h"

namespace moqo {

double Aggregate(const AggregationTerm& term, double left, double right) {
  const double l = term.scale_left * left;
  const double r = term.scale_right * right;
  double combined = 0.0;
  switch (term.combine) {
    case CombineKind::kSum:
      combined = l + r;
      break;
    case CombineKind::kMax:
      combined = std::max(l, r);
      break;
    case CombineKind::kMin:
      combined = std::min(l, r);
      break;
  }
  return term.op_cost + combined;
}

bool IsPonoCompliant(const AggregationTerm& term) {
  return term.op_cost >= 0.0 && term.scale_left >= 0.0 &&
         term.scale_right >= 0.0;
}

bool IsMonotone(const AggregationTerm& term, double left, double right) {
  if (term.combine == CombineKind::kMin) {
    // Min-aggregation is monotone only together with a sufficiently large
    // operator term; callers must check the aggregate explicitly.
    const double agg = Aggregate(term, left, right);
    return agg >= left && agg >= right;
  }
  if (term.scale_left < 1.0 || term.scale_right < 1.0) {
    const double agg = Aggregate(term, left, right);
    return agg >= left && agg >= right;
  }
  return true;
}

}  // namespace moqo
