// PONO-compliant cost aggregation building blocks.
//
// The Principle of Near-Optimality (paper §5.1, Definition 1) holds for
// every cost metric whose aggregation function — the recursive function
// computing a plan's cost from its two sub-plans' costs — is built from
// sum, maximum, minimum, and multiplication by constants. An
// AggregationTerm captures exactly this shape:
//
//   agg(l, r) = op_cost + combine(scale_left * l, scale_right * r)
//
// with combine ∈ {sum, max, min}, op_cost >= 0, scales >= 0. The cost model
// in src/plan/cost_model.cc expresses every metric with such terms, and the
// property tests verify both the PONO and monotone aggregation directly
// against this interface.
#ifndef MOQO_COST_AGGREGATION_H_
#define MOQO_COST_AGGREGATION_H_

#include "cost/metric.h"

namespace moqo {

struct AggregationTerm {
  CombineKind combine = CombineKind::kSum;
  double scale_left = 1.0;
  double scale_right = 1.0;
  double op_cost = 0.0;
};

// Applies the term to the two sub-plan cost values.
double Aggregate(const AggregationTerm& term, double left, double right);

// True iff the term parameters satisfy the PONO preconditions
// (non-negative operator cost and scales).
bool IsPonoCompliant(const AggregationTerm& term);

// Checks monotone cost aggregation (paper §5.1): the aggregated value must
// be >= each (unscaled) input when scales are >= 1. Used by tests.
bool IsMonotone(const AggregationTerm& term, double left, double right);

}  // namespace moqo

#endif  // MOQO_COST_AGGREGATION_H_
