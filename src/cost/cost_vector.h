// CostVector: the multi-objective cost of a query plan.
//
// Every plan is associated with one non-negative cost value per metric
// (paper §3). A CostVector is a fixed-capacity, runtime-dimensioned value
// type; the number of metrics l is small (the paper treats it as a
// constant, at most 3 in the evaluation) so all storage is inline.
#ifndef MOQO_COST_COST_VECTOR_H_
#define MOQO_COST_COST_VECTOR_H_

#include <initializer_list>
#include <string>

#include "util/common.h"

namespace moqo {

// Upper bound on the number of simultaneous cost metrics.
inline constexpr int kMaxMetrics = 6;

class CostVector {
 public:
  CostVector() : dims_(0) {
    for (double& v : values_) v = 0.0;
  }
  explicit CostVector(int dims, double fill = 0.0) : dims_(dims) {
    MOQO_CHECK(dims >= 0 && dims <= kMaxMetrics);
    for (int i = 0; i < kMaxMetrics; ++i) values_[i] = fill;
  }
  CostVector(std::initializer_list<double> values)
      : dims_(static_cast<int>(values.size())) {
    MOQO_CHECK(dims_ <= kMaxMetrics);
    int i = 0;
    for (double v : values) values_[i++] = v;
    for (; i < kMaxMetrics; ++i) values_[i] = 0.0;
  }

  // A vector with every component +infinity; used for "no bounds" (b = ∞).
  static CostVector Infinite(int dims);

  int dims() const { return dims_; }
  double operator[](int i) const {
    MOQO_CHECK(i >= 0 && i < dims_);
    return values_[i];
  }
  double& operator[](int i) {
    MOQO_CHECK(i >= 0 && i < dims_);
    return values_[i];
  }

  // Unchecked element access for hot loops (dominance checks, cell-key
  // computation, kernel lane fills). Bounds are MOQO_DCHECKed in debug
  // builds only; release builds compile to a bare load.
  double at(int i) const {
    MOQO_DCHECK(i >= 0 && i < dims_);
    return values_[i];
  }
  // The contiguous component array (dims() live values). Used to hand a
  // vector to the batched kernel primitives without per-element calls;
  // the mutable overload lets lane gathers fill a vector without
  // per-element bounds checks.
  const double* data() const { return values_; }
  double* data() { return values_; }

  // True if every component is finite.
  bool IsFinite() const;
  // True if every component is >= 0 (cost values are never negative).
  bool IsNonNegative() const;

  // Returns this vector scaled by `factor` in every component.
  CostVector Scaled(double factor) const;

  // Component-wise minimum / maximum with `other` (same dims required).
  CostVector Min(const CostVector& other) const;
  CostVector Max(const CostVector& other) const;

  // "c ⪯ other": this vector dominates `other`, i.e. is lower-or-equal in
  // every component (paper §3: plan with cost c is at least as good).
  // Inline and branch-light: this is the scalar reference the batched
  // kernel primitives (pareto/kernel.h) are asserted bit-identical to.
  bool Dominates(const CostVector& other) const {
    MOQO_DCHECK(dims_ == other.dims_);
    for (int i = 0; i < dims_; ++i) {
      if (values_[i] > other.values_[i]) return false;
    }
    return true;
  }
  // "c ≺ other": dominates and strictly lower in at least one component.
  bool StrictlyDominates(const CostVector& other) const {
    MOQO_DCHECK(dims_ == other.dims_);
    bool strict = false;
    for (int i = 0; i < dims_; ++i) {
      if (values_[i] > other.values_[i]) return false;
      if (values_[i] < other.values_[i]) strict = true;
    }
    return strict;
  }

  // Exact component-wise equality.
  bool Equals(const CostVector& other) const {
    if (dims_ != other.dims_) return false;
    for (int i = 0; i < dims_; ++i) {
      if (values_[i] != other.values_[i]) return false;
    }
    return true;
  }

  // "[12.5, 3, 0.01]" rendering for logs and test failures.
  std::string ToString() const;

 private:
  double values_[kMaxMetrics];
  int dims_;
};

}  // namespace moqo

#endif  // MOQO_COST_COST_VECTOR_H_
