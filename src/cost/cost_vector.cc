#include "cost/cost_vector.h"

#include <cmath>
#include <limits>

#include "util/str.h"

namespace moqo {

CostVector CostVector::Infinite(int dims) {
  CostVector v(dims);
  for (int i = 0; i < dims; ++i) {
    v.values_[i] = std::numeric_limits<double>::infinity();
  }
  return v;
}

bool CostVector::IsFinite() const {
  for (int i = 0; i < dims_; ++i) {
    if (!std::isfinite(values_[i])) return false;
  }
  return true;
}

bool CostVector::IsNonNegative() const {
  for (int i = 0; i < dims_; ++i) {
    if (values_[i] < 0.0) return false;
  }
  return true;
}

CostVector CostVector::Scaled(double factor) const {
  CostVector out(dims_);
  for (int i = 0; i < dims_; ++i) out.values_[i] = values_[i] * factor;
  return out;
}

CostVector CostVector::Min(const CostVector& other) const {
  MOQO_CHECK(dims_ == other.dims_);
  CostVector out(dims_);
  for (int i = 0; i < dims_; ++i) {
    out.values_[i] = values_[i] < other.values_[i] ? values_[i]
                                                   : other.values_[i];
  }
  return out;
}

CostVector CostVector::Max(const CostVector& other) const {
  MOQO_CHECK(dims_ == other.dims_);
  CostVector out(dims_);
  for (int i = 0; i < dims_; ++i) {
    out.values_[i] = values_[i] > other.values_[i] ? values_[i]
                                                   : other.values_[i];
  }
  return out;
}

std::string CostVector::ToString() const {
  std::string out = "[";
  for (int i = 0; i < dims_; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.6g", values_[i]);
  }
  out += "]";
  return out;
}

}  // namespace moqo
