// Cost metric descriptors and metric schemas.
//
// A MetricSchema fixes the ordered list of cost metrics a query plan is
// judged by. The paper's evaluation uses three metrics (execution time,
// number of reserved cores, result precision); §3 lists further metrics in
// the supported class (monetary fees, energy, IO bandwidth). All metrics
// are formulated so that lower is better (result precision is expressed as
// "precision error" in [0, 1]).
#ifndef MOQO_COST_METRIC_H_
#define MOQO_COST_METRIC_H_

#include <string>
#include <vector>

#include "cost/cost_vector.h"

namespace moqo {

// The metrics implemented by the cost model in src/plan/cost_model.cc.
enum class MetricId {
  kTime = 0,        // Estimated execution time (ms).
  kCores = 1,       // Peak number of reserved cores.
  kPrecisionError = 2,  // 1 - result precision; 0 = exact answer.
  kFees = 3,        // Monetary execution fees (cents), cloud scenario.
  kEnergy = 4,      // Energy consumption (joules).
  kIo = 5,          // IO volume (pages read).
};

// How a metric combines across the two sub-plans of a join, before the
// join operator's own contribution is added. The PONO (paper §5.1) holds
// for cost metrics whose aggregation function is built from sum, max, min,
// and multiplication by constants; these three cases plus a non-negative
// operator term cover every metric we implement.
enum class CombineKind {
  kSum,  // e.g. time (sequential), fees, energy, IO
  kMax,  // e.g. reserved cores (peak over pipeline), parallel time
  kMin,  // available for metrics like achievable precision
};

struct MetricInfo {
  MetricId id;
  const char* name;
  const char* unit;
  CombineKind combine;
};

// Static descriptor lookup for a metric.
const MetricInfo& GetMetricInfo(MetricId id);

// An ordered list of metrics; positions define CostVector components.
class MetricSchema {
 public:
  MetricSchema() = default;
  explicit MetricSchema(std::vector<MetricId> metrics);

  // The paper's evaluation schema: {time, cores, precision error}.
  static MetricSchema Standard3();
  // Cloud scenario from Example 1: {time, fees}.
  static MetricSchema Cloud2();
  // Approximate-processing scenario from Example 2: {time, precision error}.
  static MetricSchema Approx2();
  // All six implemented metrics.
  static MetricSchema Full6();

  int dims() const { return static_cast<int>(metrics_.size()); }
  MetricId metric(int i) const { return metrics_[static_cast<size_t>(i)]; }
  const std::vector<MetricId>& metrics() const { return metrics_; }

  // Position of `id` in the schema, or -1 if absent.
  int IndexOf(MetricId id) const;
  bool Has(MetricId id) const { return IndexOf(id) >= 0; }

  // "time(ms), cores, precision_error" header rendering.
  std::string ToString() const;

 private:
  std::vector<MetricId> metrics_;
};

}  // namespace moqo

#endif  // MOQO_COST_METRIC_H_
