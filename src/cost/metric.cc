#include "cost/metric.h"

#include "util/common.h"

namespace moqo {
namespace {

constexpr MetricInfo kMetricInfos[] = {
    {MetricId::kTime, "time", "ms", CombineKind::kSum},
    {MetricId::kCores, "cores", "cores", CombineKind::kMax},
    {MetricId::kPrecisionError, "precision_error", "", CombineKind::kMax},
    {MetricId::kFees, "fees", "cents", CombineKind::kSum},
    {MetricId::kEnergy, "energy", "J", CombineKind::kSum},
    {MetricId::kIo, "io", "pages", CombineKind::kSum},
};

}  // namespace

const MetricInfo& GetMetricInfo(MetricId id) {
  const int idx = static_cast<int>(id);
  MOQO_CHECK(idx >= 0 && idx < static_cast<int>(std::size(kMetricInfos)));
  return kMetricInfos[idx];
}

MetricSchema::MetricSchema(std::vector<MetricId> metrics)
    : metrics_(std::move(metrics)) {
  MOQO_CHECK(static_cast<int>(metrics_.size()) <= kMaxMetrics);
}

MetricSchema MetricSchema::Standard3() {
  return MetricSchema(
      {MetricId::kTime, MetricId::kCores, MetricId::kPrecisionError});
}

MetricSchema MetricSchema::Cloud2() {
  return MetricSchema({MetricId::kTime, MetricId::kFees});
}

MetricSchema MetricSchema::Approx2() {
  return MetricSchema({MetricId::kTime, MetricId::kPrecisionError});
}

MetricSchema MetricSchema::Full6() {
  return MetricSchema({MetricId::kTime, MetricId::kCores,
                       MetricId::kPrecisionError, MetricId::kFees,
                       MetricId::kEnergy, MetricId::kIo});
}

int MetricSchema::IndexOf(MetricId id) const {
  for (size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i] == id) return static_cast<int>(i);
  }
  return -1;
}

std::string MetricSchema::ToString() const {
  std::string out;
  for (size_t i = 0; i < metrics_.size(); ++i) {
    if (i > 0) out += ", ";
    const MetricInfo& info = GetMetricInfo(metrics_[i]);
    out += info.name;
    if (info.unit[0] != '\0') {
      out += "(";
      out += info.unit;
      out += ")";
    }
  }
  return out;
}

}  // namespace moqo
