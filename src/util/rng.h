// Deterministic pseudo-random number generator used by tests, the random
// query generator, and synthetic benchmark workloads.
//
// splitmix64-seeded xoshiro256**; fixed seeds make every test and benchmark
// run reproducible.
#ifndef MOQO_UTIL_RNG_H_
#define MOQO_UTIL_RNG_H_

#include <cstdint>

namespace moqo {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 to spread the seed over the full state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      state_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace moqo

#endif  // MOQO_UTIL_RNG_H_
