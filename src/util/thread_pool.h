// Fixed-size worker pool with a blocking parallel-for.
//
// The optimizer's parallel phase 2 processes the connected table subsets
// of one cardinality level concurrently and must not start level k+1
// before every level-k subset is finished (the bottom-up DP dependency).
// ParallelFor provides exactly that: it distributes indices [0, n) over
// the pool plus the calling thread via an atomic work counter and returns
// only when all indices are done — each call is one barrier.
//
// The pool spawns its threads once and keeps them parked on a condition
// variable between calls, so per-level dispatch costs are a wakeup, not a
// thread spawn.
#ifndef MOQO_UTIL_THREAD_POOL_H_
#define MOQO_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace moqo {

// Splits a total worker budget across `parts` independent schedulers,
// returning one pool size per part (sizes in the ThreadPool sense: the
// scheduler thread calling ParallelFor counts as one worker of its own
// partition). Sizes differ by at most one and every part gets at least 1
// — when total_threads < parts the budget is oversubscribed rather than
// leaving a scheduler without a serial fallback, since a size-1 partition
// spawns no threads at all. Used by the sharded OptimizerService: shard i
// owns a private pool of PartitionThreads(total, shards)[i] workers, so
// concurrent shards never contend on one pool's non-reentrant
// ParallelFor.
std::vector<int> PartitionThreads(int total_threads, int parts);

class ThreadPool {
 public:
  // A pool of `threads` total workers: `threads - 1` spawned threads plus
  // the thread calling ParallelFor. `threads` must be >= 1; a pool of 1
  // spawns nothing and ParallelFor degenerates to a serial loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes fn(i) for every i in [0, n), distributing indices dynamically
  // across all workers. Returns when every invocation has completed (the
  // barrier). `fn` must be safe to call concurrently from several threads
  // for distinct indices. Must not be called reentrantly from inside `fn`.
  // `fn` should not throw: a throw on a pool thread terminates the
  // process (std::thread semantics); a throw on the calling thread still
  // waits out the barrier before propagating.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current job; published under mu_ and only dereferenced by workers
  // between the job_id_ bump and their active_ decrement, while the
  // ParallelFor caller keeps the function alive.
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t n_ = 0;
  std::atomic<size_t> next_{0};
  int active_ = 0;       // Spawned workers still draining the current job.
  uint64_t job_id_ = 0;  // Incremented once per ParallelFor call.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace moqo

#endif  // MOQO_UTIL_THREAD_POOL_H_
