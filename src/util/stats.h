// Small measurement helpers shared by benchmarks, examples, and the
// service tooling: wall-clock deltas and latency percentiles.
#ifndef MOQO_UTIL_STATS_H_
#define MOQO_UTIL_STATS_H_

#include <algorithm>
#include <chrono>
#include <vector>

namespace moqo {

// Milliseconds elapsed since `start` on the steady clock.
inline double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The p-quantile (p in [0, 1]) of `values`, taken as the sorted sample's
// element at the rounded zero-based linear index round(p * (n - 1));
// 0 for an empty sample. Takes the sample by value: it sorts a copy.
inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

}  // namespace moqo

#endif  // MOQO_UTIL_STATS_H_
