// Common macros and small helpers shared across the MOQO library.
#ifndef MOQO_UTIL_COMMON_H_
#define MOQO_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace moqo {

// Internal-invariant checks. These abort on violation; they guard logic
// errors inside the library, not user input (user input goes through
// Status-returning entry points).
#define MOQO_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MOQO_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define MOQO_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MOQO_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Debug-only invariant check: full MOQO_CHECK in debug builds, compiled
// out under -DNDEBUG. Used on hot-loop accessors (CostVector::at, bank
// lanes) where a per-element branch is measurable in release builds.
#ifdef NDEBUG
#define MOQO_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define MOQO_DCHECK(cond) MOQO_CHECK(cond)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define MOQO_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define MOQO_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#else
#define MOQO_PREDICT_TRUE(x) (x)
#define MOQO_PREDICT_FALSE(x) (x)
#endif

}  // namespace moqo

#endif  // MOQO_UTIL_COMMON_H_
