// TableSet: a set of query tables represented as a bitmask.
//
// The optimizer's dynamic programming tables are indexed by table subsets.
// Queries have at most kMaxTables tables, so a subset fits in a uint32_t
// and subset enumeration uses standard bit tricks.
#ifndef MOQO_UTIL_TABLE_SET_H_
#define MOQO_UTIL_TABLE_SET_H_

#include <cstdint>

#include "util/common.h"

namespace moqo {

// C++17-compatible popcount / count-trailing-zeros (std::popcount and
// std::countr_zero are C++20).
constexpr int PopCount32(uint32_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcount(x);
#else
  int count = 0;
  while (x != 0) {
    x &= x - 1;
    ++count;
  }
  return count;
#endif
}

constexpr int CountTrailingZeros32(uint32_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return x == 0 ? 32 : __builtin_ctz(x);
#else
  int count = 0;
  while (count < 32 && ((x >> count) & 1u) == 0) ++count;
  return count;
#endif
}

// Maximum number of tables in a single query block. TPC-H query blocks
// join at most 8 tables; 16 leaves headroom for synthetic workloads.
inline constexpr int kMaxTables = 16;

// Immutable value type describing a subset of the query's tables.
class TableSet {
 public:
  constexpr TableSet() : mask_(0) {}
  constexpr explicit TableSet(uint32_t mask) : mask_(mask) {}

  // The singleton set {table}. The index must be a valid table position:
  // a shift by >= 32 is undefined behavior, and table counts are capped
  // at kMaxTables anyway, so out-of-range indices (reachable from the
  // query generator when handed a bad table count) are CHECKed here.
  static constexpr TableSet Singleton(int table) {
    MOQO_CHECK(table >= 0 && table < kMaxTables);
    return TableSet(uint32_t{1} << table);
  }
  // The full set {0, ..., num_tables-1}; `num_tables` must be in
  // [0, kMaxTables] (same UB-shift guard as Singleton).
  static constexpr TableSet Full(int num_tables) {
    MOQO_CHECK(num_tables >= 0 && num_tables <= kMaxTables);
    return TableSet((uint32_t{1} << num_tables) - 1);
  }

  constexpr uint32_t mask() const { return mask_; }
  constexpr bool Empty() const { return mask_ == 0; }
  constexpr int Count() const { return PopCount32(mask_); }
  constexpr bool Contains(int table) const {
    return (mask_ >> table) & 1u;
  }
  constexpr bool ContainsAll(TableSet other) const {
    return (mask_ & other.mask_) == other.mask_;
  }
  constexpr bool Intersects(TableSet other) const {
    return (mask_ & other.mask_) != 0;
  }
  constexpr TableSet Union(TableSet other) const {
    return TableSet(mask_ | other.mask_);
  }
  constexpr TableSet Intersect(TableSet other) const {
    return TableSet(mask_ & other.mask_);
  }
  constexpr TableSet Minus(TableSet other) const {
    return TableSet(mask_ & ~other.mask_);
  }
  // Index of the lowest table in the set; undefined on the empty set.
  int Lowest() const {
    MOQO_CHECK(mask_ != 0);
    return CountTrailingZeros32(mask_);
  }

  friend constexpr bool operator==(TableSet a, TableSet b) {
    return a.mask_ == b.mask_;
  }
  friend constexpr bool operator!=(TableSet a, TableSet b) {
    return a.mask_ != b.mask_;
  }

 private:
  uint32_t mask_;
};

// Iterates the table indices contained in a set:
//   for (TableIter it(set); !it.Done(); it.Next()) use(it.Table());
class TableIter {
 public:
  explicit TableIter(TableSet set) : remaining_(set.mask()) {}
  bool Done() const { return remaining_ == 0; }
  int Table() const { return CountTrailingZeros32(remaining_); }
  void Next() { remaining_ &= remaining_ - 1; }

 private:
  uint32_t remaining_;
};

// Enumerates all proper non-empty subsets of `set` (each ordered split
// (sub, set \ sub) is visited exactly once; the complement split is visited
// as its own iteration). Standard "(sub - 1) & mask" trick.
class SubsetIter {
 public:
  explicit SubsetIter(TableSet set)
      : mask_(set.mask()), sub_(mask_ & (mask_ - 1)) {}
  // Done once the current subset wraps to the full set or empty.
  bool Done() const { return sub_ == 0; }
  TableSet Subset() const { return TableSet(sub_); }
  TableSet Complement() const { return TableSet(mask_ & ~sub_); }
  void Next() { sub_ = (sub_ - 1) & mask_; }

 private:
  uint32_t mask_;
  uint32_t sub_;
};

}  // namespace moqo

#endif  // MOQO_UTIL_TABLE_SET_H_
