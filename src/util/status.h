// Minimal Status / StatusOr error-handling primitives (RocksDB-style).
//
// The MOQO library does not throw exceptions. Fallible public entry points
// return Status (or StatusOr<T>); internal invariants use MOQO_CHECK.
#ifndef MOQO_UTIL_STATUS_H_
#define MOQO_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/common.h"

namespace moqo {

// Error categories. Kept deliberately small; code should branch on ok()
// in almost all cases and use the category only for reporting — with one
// exception: the serving layer's admission taxonomy (kQuotaExceeded,
// kShedding, kDraining) is part of the service API contract. Every
// rejection path returns a distinct code, clients are expected to branch
// on it (retry elsewhere vs. back off vs. give up), and the codes
// round-trip through the network wire protocol byte for byte
// (docs/NETWORK_API.md).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  // Admission-control taxonomy (service API; see OptimizerService):
  kQuotaExceeded = 6,  // The caller's tenant is at its in-flight quota.
  kShedding = 7,       // Service over capacity; retry after retry_after_ms.
  kDraining = 8,       // Service draining for restart; resubmit elsewhere.
};

// Value-type status word. Cheap to copy when OK (no allocation).
//
// Backpressure statuses (kShedding; any code, in principle) may carry a
// retry-after hint: the server's estimate of when capacity frees up.
// 0 means "no hint". The hint survives the wire protocol round trip.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  Status(StatusCode code, std::string message, uint64_t retry_after_ms)
      : code_(code),
        retry_after_ms_(retry_after_ms),
        message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status QuotaExceeded(std::string msg) {
    return Status(StatusCode::kQuotaExceeded, std::move(msg));
  }
  static Status Shedding(std::string msg, uint64_t retry_after_ms) {
    return Status(StatusCode::kShedding, std::move(msg), retry_after_ms);
  }
  static Status Draining(std::string msg) {
    return Status(StatusCode::kDraining, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  // Backoff hint in milliseconds; 0 = none. Meaningful for kShedding.
  uint64_t retry_after_ms() const { return retry_after_ms_; }

  // Human-readable one-line rendering, e.g. "InvalidArgument: bad bounds"
  // or "Shedding (retry after 50 ms): over capacity".
  std::string ToString() const;

 private:
  StatusCode code_;
  uint64_t retry_after_ms_ = 0;
  std::string message_;
};

// A Status or a value of type T. The value may only be accessed when ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MOQO_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MOQO_CHECK_MSG(ok(), "value() on errored StatusOr");
    return value_;
  }
  T& value() & {
    MOQO_CHECK_MSG(ok(), "value() on errored StatusOr");
    return value_;
  }
  T&& value() && {
    MOQO_CHECK_MSG(ok(), "value() on errored StatusOr");
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

#define MOQO_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::moqo::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace moqo

#endif  // MOQO_UTIL_STATUS_H_
