#include "util/status.h"

namespace moqo {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kQuotaExceeded:
      return "QuotaExceeded";
    case StatusCode::kShedding:
      return "Shedding";
    case StatusCode::kDraining:
      return "Draining";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (retry_after_ms_ > 0) {
    out += " (retry after ";
    out += std::to_string(retry_after_ms_);
    out += " ms)";
  }
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace moqo
