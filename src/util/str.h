// Small string formatting helpers (printf-style StrFormat and joining).
#ifndef MOQO_UTIL_STR_H_
#define MOQO_UTIL_STR_H_

#include <string>
#include <vector>

namespace moqo {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

}  // namespace moqo

#endif  // MOQO_UTIL_STR_H_
