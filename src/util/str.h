// Small string formatting helpers (printf-style StrFormat and joining).
#ifndef MOQO_UTIL_STR_H_
#define MOQO_UTIL_STR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace moqo {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

// Appends the exact hexfloat rendering ("%a") of `v` to `out`. Used for
// canonical cache/fragment keys: two doubles get the same rendering iff
// they are bit-identical, so keys distinguish any two selectivities or
// bounds that could produce different cost vectors.
void AppendHexDouble(std::string* out, double v);

// FNV-1a over the bytes of `s`. Stable across platforms and standard-
// library versions, unlike std::hash<std::string> — scheduler-shard
// placement and fragment-store lock-shard placement both key on it, and
// documented placement behavior should not shift between toolchains.
uint64_t Fnv1a64(const std::string& s);

}  // namespace moqo

#endif  // MOQO_UTIL_STR_H_
