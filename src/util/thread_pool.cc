#include "util/thread_pool.h"

#include <algorithm>

#include "util/common.h"

namespace moqo {

std::vector<int> PartitionThreads(int total_threads, int parts) {
  MOQO_CHECK(total_threads >= 1);
  MOQO_CHECK(parts >= 1);
  std::vector<int> sizes(static_cast<size_t>(parts));
  const int base = total_threads / parts;
  const int remainder = total_threads % parts;
  for (int i = 0; i < parts; ++i) {
    sizes[static_cast<size_t>(i)] = std::max(1, base + (i < remainder ? 1 : 0));
  }
  return sizes;
}

ThreadPool::ThreadPool(int threads) {
  MOQO_CHECK(threads >= 1);
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  // n == 1 (common: the full-set level of every invocation) would make a
  // pool wakeup pure overhead — run such jobs on the calling thread.
  if (n <= 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = static_cast<int>(workers_.size());
    ++job_id_;
  }
  work_cv_.notify_all();
  // Honor the barrier even if fn throws on the calling thread: workers
  // may still be inside fn, so unwinding past them would destroy the
  // closure (and whatever it captures) under their feet.
  struct BarrierGuard {
    ThreadPool* pool;
    ~BarrierGuard() {
      std::unique_lock<std::mutex> lock(pool->mu_);
      pool->done_cv_.wait(lock, [p = pool] { return p->active_ == 0; });
      pool->fn_ = nullptr;
    }
  } guard{this};
  // The calling thread is a full participant.
  for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    fn(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* fn;
    size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      fn = fn_;
      n = n_;
    }
    for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      (*fn)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (active_ > 0) continue;
    }
    done_cv_.notify_one();
  }
}

}  // namespace moqo
