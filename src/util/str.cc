#include "util/str.h"

#include <cstdarg>
#include <cstdio>

namespace moqo {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendHexDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  *out += buf;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace moqo
