/// \file
/// The optimizer worker: one replica of the distributed enumeration tier.
///
/// A DistWorker sits on its end of a coordinator socketpair and serves
/// assignments for the life of the connection. Per assignment it builds
/// a full IamaSession replica from the PartitionAssignment record,
/// drives it through the assigned number of Step()/Continue() turns, and
/// lets the session's Phase2Exchange do the actual work: send a
/// frontier-delta frame per owned cell at every level barrier, then
/// block until the coordinator broadcasts the merged level set.
///
/// The worker holds no authoritative state — its replica exists to
/// compute deltas, and the coordinator's session is the one whose
/// frontier the client sees. A RELEASE frame (or any socket error)
/// aborts the replica mid-run with nothing to clean up but memory,
/// which is what makes worker death and run abandonment cheap.
///
/// The same class serves both transports: forked worker processes
/// (optimizerd --workers N) and in-process worker threads (the
/// TSan-friendly transport the bit-identity tests use).
#ifndef MOQO_DIST_WORKER_H_
#define MOQO_DIST_WORKER_H_

#include <cstdint>
#include <memory>

#include "catalog/catalog.h"
#include "cost/metric.h"
#include "plan/cost_model.h"
#include "plan/operators.h"

namespace moqo {
namespace dist {

/// Everything a worker needs besides the per-run assignment. The cost
/// model, operator options, and metric schema are process-global and
/// result-affecting, so they are inherited from the serving process at
/// spawn time (fork or thread) rather than transmitted: coordinator and
/// workers agree on them by construction, and the assignment only
/// carries what varies per run.
struct WorkerConfig {
  /// Catalog snapshot the worker optimizes on. Assignments pinning a
  /// different catalog_version are rejected with ASSIGN_OK(ok=false),
  /// which makes the coordinator fall back to local execution instead
  /// of optimizing on divergent statistics.
  std::shared_ptr<const CatalogSnapshot> catalog;
  /// Metric schema shared with the serving process.
  MetricSchema schema = MetricSchema::Standard3();
  /// Cost model parameters shared with the serving process.
  CostModelParams cost_params;
  /// Operator repertoire shared with the serving process.
  OperatorOptions operator_options;
  /// Test hook: after this many DELTA frames have been sent across the
  /// worker's lifetime, the worker shuts its socket down and aborts —
  /// a deterministic stand-in for SIGKILL mid-level that also works for
  /// the in-process transport under ThreadSanitizer. 0 disables.
  uint32_t crash_after_deltas = 0;
};

/// Runs the worker protocol on `fd` until the coordinator closes it (or
/// the crash hook fires). Blocking; call from a dedicated thread or a
/// forked child's main. Takes ownership of nothing — the caller closes
/// `fd` after Serve returns.
void ServeWorker(int fd, const WorkerConfig& config);

}  // namespace dist
}  // namespace moqo

#endif  // MOQO_DIST_WORKER_H_
