/// \file
/// Shared definitions of the distributed optimization tier's protocol.
///
/// The tier is *replicated-state lockstep*: every participant — the
/// coordinator (the serving process's session) and each of the W
/// enumeration workers — holds a full IncrementalOptimizer replica built
/// from the same PartitionAssignment. Per phase-2 level, each replica
/// enumerates only the cells it owns, the coordinator collects every
/// worker's per-cell deltas and broadcasts the merged set, and every
/// replica applies that set in the same canonical cell order. Because
/// the applied sequence is identical everywhere (costs travel as IEEE-754
/// bit patterns), plan-arena ids and all downstream state stay in
/// bit-identical lockstep — which is what lets any replica locally
/// recompute a cell that is *missing* from the merged set (a dead
/// worker's unsent cells) and still agree with every other replica.
///
/// Cell ownership is a pure function of the cell's table-set mask, fixed
/// for the whole run: hash(mask) % num_workers == worker_index. The
/// coordinator owns no cells. See docs/DISTRIBUTED.md for the message
/// flow and failure semantics.
#ifndef MOQO_DIST_PROTOCOL_H_
#define MOQO_DIST_PROTOCOL_H_

#include <cstdint>
#include <sys/types.h>

#include "util/table_set.h"

namespace moqo {
namespace dist {

/// Mixes a cell mask into a well-distributed 64-bit hash (splitmix64
/// finalizer). Consecutive masks land on unrelated workers, so the
/// partition balances across the table-set classes of every level.
inline uint64_t HashCell(uint32_t mask) {
  uint64_t x = static_cast<uint64_t>(mask) + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// True when `cell` belongs to worker `worker_index` of `num_workers`.
/// Every replica evaluates this identically, which is the whole
/// partition scheme: no range tables, no reassignment messages.
inline bool OwnsCell(TableSet cell, uint32_t worker_index,
                     uint32_t num_workers) {
  return HashCell(cell.mask()) % num_workers == worker_index;
}

/// One coordinator-side connection to a worker. `alive` is flipped off
/// (never back on) by the first failed read or write: a dead worker's
/// cells simply stop appearing in merged level sets, and every replica
/// recomputes them locally — implicit reassignment, no extra frames.
struct WorkerLink {
  /// Coordinator's end of the socketpair.
  int fd = -1;
  /// Child pid for forked transports (0 for in-process threads). The
  /// serving binary exposes these so crash drills can SIGKILL one.
  pid_t pid = 0;
  /// False once any I/O on `fd` fails; the link is never reused.
  bool alive = false;
};

}  // namespace dist
}  // namespace moqo

#endif  // MOQO_DIST_PROTOCOL_H_
