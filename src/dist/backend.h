/// \file
/// DistributedBackend: the serving process's handle on its worker tier.
///
/// The backend spawns the workers once (forked processes for optimizerd
/// --workers N, in-process threads for tests that must run under
/// ThreadSanitizer), then leases the whole tier to one distributed run
/// at a time. A lease (DistRun) packages the coordinator-side exchange
/// the session plugs into OptimizerOptions::phase2_exchange, and its
/// release — explicit Detach() or destruction — broadcasts RELEASE so
/// blocked workers abandon their replicas.
///
/// One run at a time is deliberate: phase-2 enumeration saturates the
/// workers' cores, and a second concurrent distributed run would just
/// interleave two lockstep barriers on the same pipes. Runs that cannot
/// get the lease (busy tier, dead tier, a worker rejected the
/// assignment) simply execute locally — distribution is an accelerator,
/// never a requirement.
#ifndef MOQO_DIST_BACKEND_H_
#define MOQO_DIST_BACKEND_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <sys/types.h>
#include <thread>
#include <vector>

#include "core/iama.h"
#include "dist/coordinator.h"
#include "dist/protocol.h"
#include "dist/worker.h"
#include "query/query.h"

namespace moqo {
namespace dist {

/// How the worker tier is spawned and configured.
struct BackendOptions {
  /// Number of enumeration workers (>= 1).
  uint32_t num_workers = 2;
  /// true: fork one child process per worker (production shape; the
  /// children must be spawned before the serving threads exist, so
  /// construct the backend first). false: one std::thread per worker in
  /// this process — the transport the TSan bit-identity tests drive.
  bool forked = false;
  /// Catalog/schema/cost configuration handed to every worker; must
  /// match the serving process's (bit-identity depends on it).
  WorkerConfig worker;
  /// Spawn index of the worker that receives worker.crash_after_deltas;
  /// every other worker gets the hook disabled. Lets the crash drills
  /// kill exactly one replica mid-level.
  uint32_t crash_worker = 0;
};

class DistributedBackend;

/// One leased distributed run. Move-free, heap-held by the service's
/// RunState; destroying it (or calling Detach) releases the workers and
/// frees the tier for the next run. Must be destroyed by the thread
/// that drives the session (the same single-caller contract as the
/// session itself).
class DistRun {
 public:
  ~DistRun() { Detach(); }
  DistRun(const DistRun&) = delete;
  DistRun& operator=(const DistRun&) = delete;

  /// The exchange to install as OptimizerOptions::phase2_exchange.
  Phase2Exchange* exchange() { return &exchange_; }

  /// Workers still alive under this lease (telemetry; a degraded run
  /// still completes bit-identically).
  size_t live_workers() const { return exchange_.live_workers(); }

  /// Releases the tier early. After Detach the session must stop using
  /// the exchange (IncrementalOptimizer::SetPhase2Exchange(nullptr),
  /// legal between invocations) and continues as a plain local run —
  /// the path ApplyBounds takes, since re-bounding mid-run would desync
  /// the fixed-step worker replicas. Idempotent.
  void Detach();

 private:
  friend class DistributedBackend;
  DistRun(DistributedBackend* backend, uint64_t seq,
          std::vector<WorkerLink>* links)
      : backend_(backend), seq_(seq), exchange_(links, seq) {}

  DistributedBackend* const backend_;
  const uint64_t seq_;
  CoordinatorExchange exchange_;
  bool released_ = false;
};

class DistributedBackend {
 public:
  /// Spawns the worker tier. For forked transports this is the fork
  /// point — call it before creating any threads the children must not
  /// inherit.
  explicit DistributedBackend(const BackendOptions& options);

  /// Closes every link (workers exit on EOF), joins threads, reaps
  /// children. Any outstanding DistRun must be gone first.
  ~DistributedBackend();

  DistributedBackend(const DistributedBackend&) = delete;
  DistributedBackend& operator=(const DistributedBackend&) = delete;

  /// Pids of forked workers, in spawn order (empty for the in-process
  /// transport). optimizerd prints these so crash drills can aim.
  const std::vector<pid_t>& worker_pids() const { return pids_; }

  /// Attempts to lease the tier for one run of `query` doing exactly
  /// `steps` Step()/Continue() turns under `iama`'s schedule, bounds,
  /// and result-affecting optimizer knobs. Returns null — and the
  /// caller runs locally — when the tier is busy, every worker is dead,
  /// or any worker rejects the assignment (e.g. catalog_version skew).
  /// The returned lease is released by Detach()/destruction.
  ///
  /// Thread-safe; but note the *lease* is then single-threaded (see
  /// DistRun).
  std::unique_ptr<DistRun> TryBeginRun(const Query& query,
                                       uint64_t catalog_version,
                                       const IamaOptions& iama,
                                       uint32_t steps);

  /// Distributed runs attempted / leased / rejected counters (telemetry
  /// for the daemon's exit summary). Reads are racy-by-design.
  uint64_t runs_started() const { return runs_started_; }
  uint64_t runs_rejected() const { return runs_rejected_; }

  /// Workers that have not been declared dead by a run's exchange.
  /// Racy-by-design, telemetry only.
  size_t live_workers() const {
    size_t live = 0;
    for (const WorkerLink& link : links_) live += link.alive ? 1 : 0;
    return live;
  }

 private:
  friend class DistRun;
  void EndRun(uint64_t seq);

  BackendOptions options_;
  std::vector<WorkerLink> links_;
  std::vector<std::thread> threads_;  // In-process transport only.
  std::vector<pid_t> pids_;           // Forked transport only.
  std::mutex mu_;
  bool busy_ = false;
  uint64_t next_seq_ = 1;
  uint64_t runs_started_ = 0;
  uint64_t runs_rejected_ = 0;
};

}  // namespace dist
}  // namespace moqo

#endif  // MOQO_DIST_BACKEND_H_
