#include "dist/worker.h"

#include <sys/socket.h>

#include <string>
#include <utility>
#include <vector>

#include "core/iama.h"
#include "core/incremental_optimizer.h"
#include "dist/protocol.h"
#include "net/wire.h"
#include "query/query.h"
#include "service/fragment_codec.h"
#include "util/common.h"

namespace moqo {
namespace dist {
namespace {

// The worker half of the per-level delta exchange. Send every owned
// cell's delta plus the LEVEL_DONE barrier, then block until the
// coordinator broadcasts the merged set (MERGE_CELL* MERGE_DONE) and
// acknowledge it. Any socket error or a RELEASE for this run's sequence
// returns false, which aborts the replica's Optimize() — the worker has
// no state worth saving, so abort is just unwinding.
class WorkerExchange : public Phase2Exchange {
 public:
  WorkerExchange(int fd, uint64_t seq, uint32_t worker_index,
                 uint32_t num_workers, uint32_t crash_after_deltas,
                 uint32_t* deltas_sent)
      : fd_(fd),
        seq_(seq),
        worker_index_(worker_index),
        num_workers_(num_workers),
        crash_after_deltas_(crash_after_deltas),
        deltas_sent_(deltas_sent) {}

  bool Owns(TableSet cell) override {
    return OwnsCell(cell, worker_index_, num_workers_);
  }

  bool ExchangeLevel(uint32_t invocation, int resolution, size_t level,
                     std::vector<CellDelta> local,
                     std::vector<CellDelta>* merged) override {
    FrontierDeltaRecord record;
    record.invocation = invocation;
    record.resolution = resolution;
    record.level = static_cast<uint32_t>(level);
    for (const CellDelta& delta : local) {
      const std::string payload =
          net::EncodeWorkerEnvelope(seq_, EncodeFrontierDelta(record, delta));
      if (!net::WriteFrame(fd_, net::MsgType::kDelta, payload).ok()) {
        return false;
      }
      ++*deltas_sent_;
      if (crash_after_deltas_ != 0 && *deltas_sent_ >= crash_after_deltas_) {
        // Crash drill: die the way SIGKILL looks to the coordinator —
        // the socket goes dead mid-level, after some complete deltas.
        ::shutdown(fd_, SHUT_RDWR);
        return false;
      }
    }
    const std::string done = net::EncodeLevelBarrier(
        seq_, invocation, static_cast<uint32_t>(level),
        static_cast<uint32_t>(local.size()));
    if (!net::WriteFrame(fd_, net::MsgType::kLevelDone, done).ok()) {
      return false;
    }
    merged->clear();
    for (;;) {
      net::Frame frame;
      if (!net::ReadFrame(fd_, &frame).ok()) return false;
      switch (static_cast<net::MsgType>(frame.type)) {
        case net::MsgType::kMergeCell: {
          uint64_t seq = 0;
          std::string bytes;
          if (!net::DecodeWorkerEnvelope(frame, &seq, &bytes).ok()) {
            return false;
          }
          if (seq != seq_) break;  // Straggler from an abandoned run.
          FrontierDeltaRecord merged_record;
          CellDelta delta;
          if (!DecodeFrontierDelta(bytes, &merged_record, &delta).ok()) {
            return false;
          }
          merged->push_back(std::move(delta));
          break;
        }
        case net::MsgType::kMergeDone: {
          uint64_t seq = 0;
          uint64_t done_invocation = 0;
          uint32_t done_level = 0;
          uint32_t cells = 0;
          if (!net::DecodeLevelBarrier(frame, &seq, &done_invocation,
                                       &done_level, &cells)
                   .ok()) {
            return false;
          }
          if (seq != seq_) break;
          const std::string ack = net::EncodeMergeAck(
              seq_, invocation, static_cast<uint32_t>(level));
          return net::WriteFrame(fd_, net::MsgType::kMergeAck, ack).ok();
        }
        case net::MsgType::kRelease: {
          uint64_t seq = 0;
          if (!net::DecodeRelease(frame, &seq).ok()) return false;
          if (seq == seq_) return false;  // This run was abandoned.
          break;  // A release for an older run; ignore.
        }
        default:
          // The coordinator never sends anything else mid-merge; treat
          // a violation as a dead link.
          return false;
      }
    }
  }

 private:
  const int fd_;
  const uint64_t seq_;
  const uint32_t worker_index_;
  const uint32_t num_workers_;
  const uint32_t crash_after_deltas_;
  uint32_t* const deltas_sent_;
};

// Runs one assignment to completion (all steps), abort (release or
// socket death), or rejection. Errors are not reported anywhere beyond
// the ASSIGN_OK verdict — the coordinator observes worker failure as a
// dead socket, never as a message.
void HandleAssign(int fd, const WorkerConfig& config, const net::Frame& frame,
                  uint32_t* deltas_sent) {
  uint64_t seq = 0;
  std::string record_bytes;
  if (!net::DecodeWorkerEnvelope(frame, &seq, &record_bytes).ok()) return;
  PartitionAssignment assignment;
  std::string reject;
  const Status decoded = DecodePartitionAssignment(record_bytes, &assignment);
  if (!decoded.ok()) {
    reject = decoded.message();
  } else if (config.catalog == nullptr) {
    reject = "worker has no catalog snapshot";
  } else if (assignment.catalog_version != config.catalog->version()) {
    reject = "catalog version mismatch (worker has " +
             std::to_string(config.catalog->version()) + ", assignment pins " +
             std::to_string(assignment.catalog_version) + ")";
  } else {
    const Status valid = ValidateQuery(assignment.query, *config.catalog);
    if (!valid.ok()) reject = valid.message();
  }
  const bool ok = reject.empty();
  if (!net::WriteFrame(fd, net::MsgType::kAssignOk,
                       net::EncodeAssignOk(seq, ok, reject))
           .ok()) {
    return;
  }
  if (!ok) return;

  PlanFactory factory(assignment.query, config.catalog, config.schema,
                      config.cost_params, config.operator_options);
  WorkerExchange exchange(fd, seq, assignment.worker_index,
                          assignment.num_workers, config.crash_after_deltas,
                          deltas_sent);
  IamaOptions iama;
  iama.schedule = assignment.schedule;
  iama.initial_bounds = assignment.initial_bounds;
  iama.optimizer.cell_gamma = assignment.cell_gamma;
  iama.optimizer.prune_against_all_resolutions =
      assignment.prune_against_all_resolutions;
  iama.optimizer.park_next_level_only = assignment.park_next_level_only;
  iama.optimizer.sorted_pruning = assignment.sorted_pruning;
  iama.optimizer.phase2_exchange = &exchange;
  IamaSession session(factory, iama);
  // The same autonomous loop the coordinator's scheduler drives; the
  // exchange barriers keep the replica from outrunning it by more than
  // one level's worth of queued delta frames.
  for (uint32_t i = 0; i < assignment.steps; ++i) {
    session.Step();
    if (session.optimizer().exchange_aborted()) return;
    session.ApplyAction(UserAction::Continue());
  }
}

}  // namespace

void ServeWorker(int fd, const WorkerConfig& config) {
  uint32_t deltas_sent = 0;
  for (;;) {
    net::Frame frame;
    if (!net::ReadFrame(fd, &frame).ok()) return;
    switch (static_cast<net::MsgType>(frame.type)) {
      case net::MsgType::kAssign:
        HandleAssign(fd, config, frame, &deltas_sent);
        break;
      case net::MsgType::kRelease:
        // The release of a run that already finished (or was rejected);
        // nothing to abandon.
        break;
      default:
        // Stragglers from an abandoned run; skip.
        break;
    }
  }
}

}  // namespace dist
}  // namespace moqo
