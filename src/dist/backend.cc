#include "dist/backend.h"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <utility>

#include "util/common.h"

namespace moqo {
namespace dist {

DistributedBackend::DistributedBackend(const BackendOptions& options)
    : options_(options) {
  MOQO_CHECK(options_.num_workers >= 1);
  links_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    WorkerConfig config = options_.worker;
    if (i != options_.crash_worker) config.crash_after_deltas = 0;
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      continue;  // This worker just doesn't exist; the tier degrades.
    }
    WorkerLink link;
    link.fd = fds[0];
    link.alive = true;
    if (options_.forked) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        continue;
      }
      if (pid == 0) {
        // Child: drop the coordinator ends — ours and every earlier
        // sibling's. A child that kept a sibling's coordinator fd would
        // hold that socket open past the parent's close and break EOF
        // detection for the whole tier.
        ::close(fds[0]);
        for (const WorkerLink& earlier : links_) ::close(earlier.fd);
        ServeWorker(fds[1], config);
        ::_exit(0);
      }
      ::close(fds[1]);
      link.pid = pid;
      pids_.push_back(pid);
    } else {
      threads_.emplace_back([fd = fds[1], config = std::move(config)] {
        ServeWorker(fd, config);
        ::close(fd);
      });
    }
    links_.push_back(link);
  }
}

DistributedBackend::~DistributedBackend() {
  // Closing the coordinator ends makes every worker's next read fail:
  // threads return from ServeWorker, children _exit(0) and are reaped.
  for (WorkerLink& link : links_) {
    if (link.fd >= 0) ::close(link.fd);
    link.fd = -1;
    link.alive = false;
  }
  for (std::thread& thread : threads_) thread.join();
  for (pid_t pid : pids_) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

std::unique_ptr<DistRun> DistributedBackend::TryBeginRun(
    const Query& query, uint64_t catalog_version, const IamaOptions& iama,
    uint32_t steps) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (busy_ || steps == 0) {
      ++runs_rejected_;
      return nullptr;
    }
    busy_ = true;
  }
  const uint64_t seq = next_seq_++;
  PartitionAssignment assignment;
  assignment.catalog_version = catalog_version;
  assignment.query = query;
  assignment.schedule = iama.schedule;
  assignment.initial_bounds = iama.initial_bounds;
  assignment.cell_gamma = iama.optimizer.cell_gamma;
  assignment.prune_against_all_resolutions =
      iama.optimizer.prune_against_all_resolutions;
  assignment.park_next_level_only = iama.optimizer.park_next_level_only;
  assignment.sorted_pruning = iama.optimizer.sorted_pruning;
  assignment.steps = steps;
  if (AssignRun(&links_, seq, std::move(assignment)) == 0) {
    ReleaseRun(&links_, seq);
    std::lock_guard<std::mutex> lock(mu_);
    busy_ = false;
    ++runs_rejected_;
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++runs_started_;
  }
  return std::unique_ptr<DistRun>(new DistRun(this, seq, &links_));
}

void DistributedBackend::EndRun(uint64_t seq) {
  // RELEASE goes out while the lease is still held (links are owned by
  // the leasing thread until busy_ flips), then the tier frees up.
  ReleaseRun(&links_, seq);
  std::lock_guard<std::mutex> lock(mu_);
  busy_ = false;
}

void DistRun::Detach() {
  if (released_) return;
  released_ = true;
  backend_->EndRun(seq_);
}

}  // namespace dist
}  // namespace moqo
