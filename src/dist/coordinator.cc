#include "dist/coordinator.h"

#include <string>
#include <utility>

#include "net/wire.h"
#include "util/common.h"

namespace moqo {
namespace dist {
namespace {

// Every worker-protocol payload leads with the u64 run sequence, so
// staleness can be decided without knowing the frame type: frames from
// an abandoned run are drained and dropped wherever they surface.
bool PeekSeq(const net::Frame& frame, uint64_t* seq) {
  net::Reader r(frame.payload);
  return r.GetU64(seq).ok();
}

// Reads `link` until its LEVEL_DONE barrier for the current run,
// appending each complete cell delta to `merged`. Any error — I/O,
// decode, or a same-run frame that violates the strict
// deltas-then-barrier alternation — marks the link dead and returns;
// the cells this worker never delivered are recomputed by every
// replica.
void CollectFromLink(WorkerLink* link, uint64_t run_seq, uint32_t invocation,
                     size_t level, std::vector<CellDelta>* merged) {
  for (;;) {
    net::Frame frame;
    if (!net::ReadFrame(link->fd, &frame).ok()) {
      link->alive = false;
      return;
    }
    uint64_t seq = 0;
    if (!PeekSeq(frame, &seq)) {
      link->alive = false;
      return;
    }
    if (seq != run_seq) continue;  // Straggler from an abandoned run.
    switch (static_cast<net::MsgType>(frame.type)) {
      case net::MsgType::kDelta: {
        std::string bytes;
        FrontierDeltaRecord record;
        CellDelta delta;
        if (!net::DecodeWorkerEnvelope(frame, &seq, &bytes).ok() ||
            !DecodeFrontierDelta(bytes, &record, &delta).ok() ||
            record.invocation != invocation ||
            record.level != static_cast<uint32_t>(level)) {
          link->alive = false;
          return;
        }
        merged->push_back(std::move(delta));
        break;
      }
      case net::MsgType::kLevelDone:
        return;  // Barrier reached; this worker's cells are complete.
      default:
        link->alive = false;  // Same-run frame out of protocol order.
        return;
    }
  }
}

// Reads `link` until its MERGE_ACK for the current run.
void AwaitAck(WorkerLink* link, uint64_t run_seq) {
  for (;;) {
    net::Frame frame;
    if (!net::ReadFrame(link->fd, &frame).ok()) {
      link->alive = false;
      return;
    }
    uint64_t seq = 0;
    if (!PeekSeq(frame, &seq)) {
      link->alive = false;
      return;
    }
    if (seq != run_seq) continue;
    if (static_cast<net::MsgType>(frame.type) != net::MsgType::kMergeAck) {
      link->alive = false;
    }
    return;
  }
}

}  // namespace

bool CoordinatorExchange::ExchangeLevel(uint32_t invocation, int resolution,
                                        size_t level,
                                        std::vector<CellDelta> local,
                                        std::vector<CellDelta>* merged) {
  MOQO_CHECK(local.empty());  // Owns() is constant-false.
  merged->clear();
  // Collect. Sequential per link is deadlock-free: the coordinator
  // writes nothing during collection, so a worker blocked on a full
  // send buffer drains the moment its link's turn comes.
  for (WorkerLink& link : *links_) {
    if (!link.alive) continue;
    CollectFromLink(&link, seq_, invocation, level, merged);
  }
  // Broadcast: encode each cell once, fan the bytes out.
  FrontierDeltaRecord record;
  record.invocation = invocation;
  record.resolution = resolution;
  record.level = static_cast<uint32_t>(level);
  std::vector<std::string> payloads;
  payloads.reserve(merged->size());
  for (const CellDelta& delta : *merged) {
    payloads.push_back(
        net::EncodeWorkerEnvelope(seq_, EncodeFrontierDelta(record, delta)));
  }
  const std::string done = net::EncodeLevelBarrier(
      seq_, invocation, static_cast<uint32_t>(level),
      static_cast<uint32_t>(merged->size()));
  for (WorkerLink& link : *links_) {
    if (!link.alive) continue;
    bool ok = true;
    for (const std::string& payload : payloads) {
      if (!net::WriteFrame(link.fd, net::MsgType::kMergeCell, payload).ok()) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ok = net::WriteFrame(link.fd, net::MsgType::kMergeDone, done).ok();
    }
    if (!ok) link.alive = false;
  }
  // Acks: no replica may run more than one level ahead, and a worker
  // that died applying the merge is discovered here, not a level later.
  for (WorkerLink& link : *links_) {
    if (!link.alive) continue;
    AwaitAck(&link, seq_);
  }
  return true;
}

size_t CoordinatorExchange::live_workers() const {
  size_t live = 0;
  for (const WorkerLink& link : *links_) {
    if (link.alive) ++live;
  }
  return live;
}

size_t AssignRun(std::vector<WorkerLink>* links, uint64_t seq,
                 PartitionAssignment base) {
  std::vector<WorkerLink*> live;
  for (WorkerLink& link : *links) {
    if (link.alive) live.push_back(&link);
  }
  if (live.empty()) return 0;
  base.num_workers = static_cast<uint32_t>(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    base.worker_index = static_cast<uint32_t>(i);
    const std::string payload =
        net::EncodeWorkerEnvelope(seq, EncodePartitionAssignment(base));
    if (!net::WriteFrame(live[i]->fd, net::MsgType::kAssign, payload).ok()) {
      live[i]->alive = false;
      return 0;  // The ownership function already counted this worker.
    }
  }
  size_t accepted = 0;
  for (WorkerLink* link : live) {
    bool done = false;
    while (!done) {
      net::Frame frame;
      if (!net::ReadFrame(link->fd, &frame).ok()) {
        link->alive = false;
        break;
      }
      uint64_t frame_seq = 0;
      if (!PeekSeq(frame, &frame_seq)) {
        link->alive = false;
        break;
      }
      if (frame_seq != seq) continue;  // Abandoned-run straggler.
      if (static_cast<net::MsgType>(frame.type) != net::MsgType::kAssignOk) {
        link->alive = false;
        break;
      }
      bool ok = false;
      std::string message;
      if (!net::DecodeAssignOk(frame, &frame_seq, &ok, &message).ok()) {
        link->alive = false;
        break;
      }
      if (ok) ++accepted;
      done = true;
    }
  }
  // All-or-nothing: a partial tier would distribute with an ownership
  // function some replicas never agreed to.
  return accepted == live.size() ? accepted : 0;
}

void ReleaseRun(std::vector<WorkerLink>* links, uint64_t seq) {
  const std::string payload = net::EncodeRelease(seq);
  for (WorkerLink& link : *links) {
    if (!link.alive) continue;
    if (!net::WriteFrame(link.fd, net::MsgType::kRelease, payload).ok()) {
      link.alive = false;
    }
  }
}

}  // namespace dist
}  // namespace moqo
