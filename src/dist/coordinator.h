/// \file
/// Coordinator side of the per-level Pareto-delta exchange.
///
/// The CoordinatorExchange is the Phase2Exchange the *serving* session
/// runs under when a run is distributed: it owns no cells itself, so
/// the session's phase-2 loop enumerates nothing locally and instead
/// per level (1) collects every live worker's frontier-delta frames up
/// to its LEVEL_DONE barrier, (2) broadcasts the merged set back as
/// MERGE_CELL frames capped by MERGE_DONE, and (3) waits for each live
/// worker's MERGE_ACK so no replica runs more than one level ahead.
///
/// **Worker death.** Any failed read or write flips the link dead and
/// the level simply proceeds with the deltas that did arrive — each
/// DELTA frame is one complete cell, so the merged set is always a set
/// of whole cells. The cells a dead worker never sent are *absent* from
/// the merged set, and every replica (this coordinator included, inside
/// IncrementalOptimizer's merge loop) recomputes absent cells locally.
/// That is the failure story in one sentence: reassignment is implicit
/// in recomputation, and the run's output is bit-identical to a
/// single-node run no matter when a worker dies.
#ifndef MOQO_DIST_COORDINATOR_H_
#define MOQO_DIST_COORDINATOR_H_

#include <cstdint>
#include <vector>

#include "core/incremental_optimizer.h"
#include "dist/protocol.h"
#include "service/fragment_codec.h"

namespace moqo {
namespace dist {

/// Per-run exchange driven by the coordinator's own optimizer. Not
/// thread-safe: the backend's lease guarantees one distributed run at a
/// time, and the shard thread stepping that run is the only caller.
class CoordinatorExchange : public Phase2Exchange {
 public:
  /// `links` must outlive the exchange; dead links are skipped and
  /// newly dead ones are recorded in place.
  CoordinatorExchange(std::vector<WorkerLink>* links, uint64_t seq)
      : links_(links), seq_(seq) {}

  /// The coordinator owns no cells — workers enumerate, it merges.
  bool Owns(TableSet cell) override {
    (void)cell;
    return false;
  }

  /// Collect, broadcast, ack. Never aborts (returns true even with every
  /// worker dead — the merged set is then empty and the session
  /// recomputes everything, degrading to local execution in place).
  bool ExchangeLevel(uint32_t invocation, int resolution, size_t level,
                     std::vector<CellDelta> local,
                     std::vector<CellDelta>* merged) override;

  /// Links that are still alive (cheap scan; used for degradation
  /// telemetry and by tests).
  size_t live_workers() const;

 private:
  std::vector<WorkerLink>* const links_;
  const uint64_t seq_;
};

/// Sends ASSIGN (sequence `seq`, one PartitionAssignment per live link,
/// re-indexed 0..live-1) and waits for every live worker's ASSIGN_OK.
/// Returns the number of workers that accepted; any rejection, decode
/// failure, or dead link makes the whole assignment fail (returns 0)
/// and the caller releases — a partial tier would change the ownership
/// function mid-handshake. Stale frames from an abandoned prior run are
/// drained and ignored. `base.worker_index`/`base.num_workers` are
/// overwritten per link.
size_t AssignRun(std::vector<WorkerLink>* links, uint64_t seq,
                 PartitionAssignment base);

/// Sends RELEASE for `seq` to every live link. Idle workers ignore it;
/// workers blocked mid-exchange abort their replica. Failures just mark
/// the link dead.
void ReleaseRun(std::vector<WorkerLink>* links, uint64_t seq);

}  // namespace dist
}  // namespace moqo

#endif  // MOQO_DIST_COORDINATOR_H_
