#include "query/tpch_queries.h"

#include <algorithm>

#include "catalog/tpch.h"
#include "util/common.h"

namespace moqo {
namespace {

// Q2 outer block: part, supplier, partsupp, nation, region (5 tables).
Query MakeQ2Outer(const Catalog& c) {
  QueryBuilder b("q2");
  const int p = b.AddTable(kPart, 0.01, "p");      // p_size = .. and p_type
  const int s = b.AddTable(kSupplier, 1.0, "s");
  const int ps = b.AddTable(kPartsupp, 1.0, "ps");
  const int n = b.AddTable(kNation, 1.0, "n");
  const int r = b.AddTable(kRegion, 0.2, "r");     // r_name = ..
  b.AddFkJoin(c, ps, p);
  b.AddFkJoin(c, ps, s);
  b.AddFkJoin(c, s, n);
  b.AddFkJoin(c, n, r);
  return b.Build();
}

// Q2 correlated sub-query block: partsupp, supplier, nation, region (4).
Query MakeQ2Sub(const Catalog& c) {
  QueryBuilder b("q2sub");
  const int ps = b.AddTable(kPartsupp, 1.0, "ps");
  const int s = b.AddTable(kSupplier, 1.0, "s");
  const int n = b.AddTable(kNation, 1.0, "n");
  const int r = b.AddTable(kRegion, 0.2, "r");
  b.AddFkJoin(c, ps, s);
  b.AddFkJoin(c, s, n);
  b.AddFkJoin(c, n, r);
  return b.Build();
}

// Q3: customer, orders, lineitem (3).
Query MakeQ3(const Catalog& c) {
  QueryBuilder b("q3");
  const int cu = b.AddTable(kCustomer, 0.2, "c");   // c_mktsegment = ..
  const int o = b.AddTable(kOrders, 0.48, "o");     // o_orderdate < ..
  const int l = b.AddTable(kLineitem, 0.54, "l");   // l_shipdate > ..
  b.AddFkJoin(c, o, cu);
  b.AddFkJoin(c, l, o);
  return b.Build();
}

// Q4 (rewritten as join): orders, lineitem (2).
Query MakeQ4(const Catalog& c) {
  QueryBuilder b("q4");
  const int o = b.AddTable(kOrders, 0.038, "o");    // quarter date range
  const int l = b.AddTable(kLineitem, 0.63, "l");   // commitdate < receiptdate
  b.AddFkJoin(c, l, o);
  return b.Build();
}

// Q5: customer, orders, lineitem, supplier, nation, region (6).
Query MakeQ5(const Catalog& c) {
  QueryBuilder b("q5");
  const int cu = b.AddTable(kCustomer, 1.0, "c");
  const int o = b.AddTable(kOrders, 0.15, "o");     // one-year date range
  const int l = b.AddTable(kLineitem, 1.0, "l");
  const int s = b.AddTable(kSupplier, 1.0, "s");
  const int n = b.AddTable(kNation, 1.0, "n");
  const int r = b.AddTable(kRegion, 0.2, "r");
  b.AddFkJoin(c, o, cu);
  b.AddFkJoin(c, l, o);
  b.AddFkJoin(c, l, s);
  b.AddFkJoin(c, s, n);
  b.AddFkJoin(c, n, r);
  // c_nationkey = s_nationkey correlates customer and supplier.
  b.AddJoin(cu, s, 1.0 / 25.0);
  return b.Build();
}

// Q7: supplier, lineitem, orders, customer, nation n1, nation n2 (6).
Query MakeQ7(const Catalog& c) {
  QueryBuilder b("q7");
  const int s = b.AddTable(kSupplier, 1.0, "s");
  const int l = b.AddTable(kLineitem, 0.3, "l");    // two-year shipdate range
  const int o = b.AddTable(kOrders, 1.0, "o");
  const int cu = b.AddTable(kCustomer, 1.0, "c");
  const int n1 = b.AddTable(kNation, 1.0, "n1");
  const int n2 = b.AddTable(kNation, 1.0, "n2");
  b.AddFkJoin(c, l, s);
  b.AddFkJoin(c, l, o);
  b.AddFkJoin(c, o, cu);
  b.AddFkJoin(c, s, n1);
  b.AddFkJoin(c, cu, n2);
  // (n1 = FRANCE and n2 = GERMANY) or (n1 = GERMANY and n2 = FRANCE).
  b.AddJoin(n1, n2, 2.0 / 625.0);
  return b.Build();
}

// Q8: part, supplier, lineitem, orders, customer, n1, region, n2 (8).
Query MakeQ8(const Catalog& c) {
  QueryBuilder b("q8");
  const int p = b.AddTable(kPart, 0.001, "p");      // p_type = '..'
  const int s = b.AddTable(kSupplier, 1.0, "s");
  const int l = b.AddTable(kLineitem, 1.0, "l");
  const int o = b.AddTable(kOrders, 0.3, "o");      // two-year date range
  const int cu = b.AddTable(kCustomer, 1.0, "c");
  const int n1 = b.AddTable(kNation, 1.0, "n1");
  const int r = b.AddTable(kRegion, 0.2, "r");
  const int n2 = b.AddTable(kNation, 1.0, "n2");
  b.AddFkJoin(c, l, p);
  b.AddFkJoin(c, l, s);
  b.AddFkJoin(c, l, o);
  b.AddFkJoin(c, o, cu);
  b.AddFkJoin(c, cu, n1);
  b.AddFkJoin(c, n1, r);
  b.AddFkJoin(c, s, n2);
  return b.Build();
}

// Q9: part, supplier, lineitem, partsupp, orders, nation (6).
Query MakeQ9(const Catalog& c) {
  QueryBuilder b("q9");
  const int p = b.AddTable(kPart, 0.05, "p");       // p_name like '%..%'
  const int s = b.AddTable(kSupplier, 1.0, "s");
  const int l = b.AddTable(kLineitem, 1.0, "l");
  const int ps = b.AddTable(kPartsupp, 1.0, "ps");
  const int o = b.AddTable(kOrders, 1.0, "o");
  const int n = b.AddTable(kNation, 1.0, "n");
  b.AddFkJoin(c, l, p);
  b.AddFkJoin(c, l, s);
  b.AddFkJoin(c, l, o);
  b.AddFkJoin(c, s, n);
  // Composite key join lineitem -> partsupp.
  b.AddFkJoin(c, l, ps);
  b.AddFkJoin(c, ps, p);
  b.AddFkJoin(c, ps, s);
  return b.Build();
}

// Q10: customer, orders, lineitem, nation (4).
Query MakeQ10(const Catalog& c) {
  QueryBuilder b("q10");
  const int cu = b.AddTable(kCustomer, 1.0, "c");
  const int o = b.AddTable(kOrders, 0.038, "o");    // quarter date range
  const int l = b.AddTable(kLineitem, 0.25, "l");   // l_returnflag = 'R'
  const int n = b.AddTable(kNation, 1.0, "n");
  b.AddFkJoin(c, o, cu);
  b.AddFkJoin(c, l, o);
  b.AddFkJoin(c, cu, n);
  return b.Build();
}

// Q11: partsupp, supplier, nation (3). Appears twice in the SQL; one block.
Query MakeQ11(const Catalog& c) {
  QueryBuilder b("q11");
  const int ps = b.AddTable(kPartsupp, 1.0, "ps");
  const int s = b.AddTable(kSupplier, 1.0, "s");
  const int n = b.AddTable(kNation, 0.04, "n");     // n_name = '..'
  b.AddFkJoin(c, ps, s);
  b.AddFkJoin(c, s, n);
  return b.Build();
}

// Q12: orders, lineitem (2).
Query MakeQ12(const Catalog& c) {
  QueryBuilder b("q12");
  const int o = b.AddTable(kOrders, 1.0, "o");
  const int l = b.AddTable(kLineitem, 0.005, "l");  // shipmode + date preds
  b.AddFkJoin(c, l, o);
  return b.Build();
}

// Q13: customer, orders (2; outer join optimized as join block).
Query MakeQ13(const Catalog& c) {
  QueryBuilder b("q13");
  const int cu = b.AddTable(kCustomer, 1.0, "c");
  const int o = b.AddTable(kOrders, 0.98, "o");     // o_comment not like ..
  b.AddFkJoin(c, o, cu);
  return b.Build();
}

// Q14: lineitem, part (2).
Query MakeQ14(const Catalog& c) {
  QueryBuilder b("q14");
  const int l = b.AddTable(kLineitem, 0.013, "l");  // one-month date range
  const int p = b.AddTable(kPart, 1.0, "p");
  b.AddFkJoin(c, l, p);
  return b.Build();
}

// Q16: partsupp, part (2).
Query MakeQ16(const Catalog& c) {
  QueryBuilder b("q16");
  const int ps = b.AddTable(kPartsupp, 1.0, "ps");
  const int p = b.AddTable(kPart, 0.04, "p");       // brand/type/size preds
  b.AddFkJoin(c, ps, p);
  return b.Build();
}

// Q17: lineitem, part (2).
Query MakeQ17(const Catalog& c) {
  QueryBuilder b("q17");
  const int l = b.AddTable(kLineitem, 1.0, "l");
  const int p = b.AddTable(kPart, 0.001, "p");      // brand + container
  b.AddFkJoin(c, l, p);
  return b.Build();
}

// Q18: customer, orders, lineitem (3).
Query MakeQ18(const Catalog& c) {
  QueryBuilder b("q18");
  const int cu = b.AddTable(kCustomer, 1.0, "c");
  const int o = b.AddTable(kOrders, 0.0001, "o");   // orders with huge qty
  const int l = b.AddTable(kLineitem, 1.0, "l");
  b.AddFkJoin(c, o, cu);
  b.AddFkJoin(c, l, o);
  return b.Build();
}

// Q19: lineitem, part (2).
Query MakeQ19(const Catalog& c) {
  QueryBuilder b("q19");
  const int l = b.AddTable(kLineitem, 0.02, "l");   // shipmode/instruct preds
  const int p = b.AddTable(kPart, 0.001, "p");      // brand/container/size
  b.AddFkJoin(c, l, p);
  return b.Build();
}

// Q20 outer block: supplier, nation (2).
Query MakeQ20Outer(const Catalog& c) {
  QueryBuilder b("q20");
  const int s = b.AddTable(kSupplier, 1.0, "s");
  const int n = b.AddTable(kNation, 0.04, "n");
  b.AddFkJoin(c, s, n);
  return b.Build();
}

// Q20 sub-query block: partsupp, part (2).
Query MakeQ20Sub(const Catalog& c) {
  QueryBuilder b("q20sub");
  const int ps = b.AddTable(kPartsupp, 1.0, "ps");
  const int p = b.AddTable(kPart, 0.01, "p");       // p_name like '..%'
  b.AddFkJoin(c, ps, p);
  return b.Build();
}

// Q21: supplier, lineitem, orders, nation (4).
Query MakeQ21(const Catalog& c) {
  QueryBuilder b("q21");
  const int s = b.AddTable(kSupplier, 1.0, "s");
  const int l = b.AddTable(kLineitem, 0.5, "l");    // receipt > commit
  const int o = b.AddTable(kOrders, 0.49, "o");     // o_orderstatus = 'F'
  const int n = b.AddTable(kNation, 0.04, "n");
  b.AddFkJoin(c, l, s);
  b.AddFkJoin(c, l, o);
  b.AddFkJoin(c, s, n);
  return b.Build();
}

// Q22: customer, orders (2; anti-join optimized as join block).
Query MakeQ22(const Catalog& c) {
  QueryBuilder b("q22");
  const int cu = b.AddTable(kCustomer, 0.25, "c");  // phone prefix in (...)
  const int o = b.AddTable(kOrders, 1.0, "o");
  b.AddFkJoin(c, o, cu);
  return b.Build();
}

}  // namespace

std::vector<Query> TpchQueryBlocks(const Catalog& catalog) {
  std::vector<Query> blocks;
  blocks.push_back(MakeQ2Outer(catalog));
  blocks.push_back(MakeQ2Sub(catalog));
  blocks.push_back(MakeQ3(catalog));
  blocks.push_back(MakeQ4(catalog));
  blocks.push_back(MakeQ5(catalog));
  blocks.push_back(MakeQ7(catalog));
  blocks.push_back(MakeQ8(catalog));
  blocks.push_back(MakeQ9(catalog));
  blocks.push_back(MakeQ10(catalog));
  blocks.push_back(MakeQ11(catalog));
  blocks.push_back(MakeQ12(catalog));
  blocks.push_back(MakeQ13(catalog));
  blocks.push_back(MakeQ14(catalog));
  blocks.push_back(MakeQ16(catalog));
  blocks.push_back(MakeQ17(catalog));
  blocks.push_back(MakeQ18(catalog));
  blocks.push_back(MakeQ19(catalog));
  blocks.push_back(MakeQ20Outer(catalog));
  blocks.push_back(MakeQ20Sub(catalog));
  blocks.push_back(MakeQ21(catalog));
  blocks.push_back(MakeQ22(catalog));
  for (const Query& q : blocks) {
    MOQO_CHECK_MSG(ValidateQuery(q, catalog).ok(), q.name.c_str());
  }
  return blocks;
}

std::vector<Query> TpchBlocksWithTables(const Catalog& catalog,
                                        int num_tables) {
  std::vector<Query> out;
  for (Query& q : TpchQueryBlocks(catalog)) {
    if (q.NumTables() == num_tables) out.push_back(std::move(q));
  }
  return out;
}

std::vector<int> TpchBlockTableCounts(const Catalog& catalog) {
  std::vector<int> counts;
  for (const Query& q : TpchQueryBlocks(catalog)) {
    if (std::find(counts.begin(), counts.end(), q.NumTables()) ==
        counts.end()) {
      counts.push_back(q.NumTables());
    }
  }
  std::sort(counts.begin(), counts.end());
  return counts;
}

}  // namespace moqo
