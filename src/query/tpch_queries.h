// The TPC-H join workload used by the paper's evaluation (§6).
//
// The paper optimizes every TPC-H query containing at least one join;
// Postgres decomposes some queries into several select-project-join blocks
// (sub-queries) which are optimized separately. We encode the join graph of
// each such block: table references, local predicate selectivities
// (approximated from the TPC-H specification's predicates), and join
// selectivities (PK-FK estimates from the catalog).
//
// The resulting blocks join 2, 3, 4, 5, 6, or 8 tables — never 7, exactly
// as the paper observes ("no TPC-H sub-query joins seven tables").
#ifndef MOQO_QUERY_TPCH_QUERIES_H_
#define MOQO_QUERY_TPCH_QUERIES_H_

#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"

namespace moqo {

// All TPC-H query blocks with at least one join, against the catalog built
// by MakeTpchCatalog().
std::vector<Query> TpchQueryBlocks(const Catalog& catalog);

// The subset of blocks joining exactly `num_tables` tables.
std::vector<Query> TpchBlocksWithTables(const Catalog& catalog,
                                        int num_tables);

// The distinct table counts appearing in the workload: {2, 3, 4, 5, 6, 8}.
std::vector<int> TpchBlockTableCounts(const Catalog& catalog);

}  // namespace moqo

#endif  // MOQO_QUERY_TPCH_QUERIES_H_
