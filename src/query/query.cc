#include "query/query.h"

#include "util/common.h"
#include "util/str.h"

namespace moqo {

int QueryBuilder::AddTable(TableId table, double predicate_selectivity,
                           std::string alias) {
  TableRef ref;
  ref.table = table;
  ref.predicate_selectivity = predicate_selectivity;
  ref.alias = std::move(alias);
  query_.tables.push_back(std::move(ref));
  return static_cast<int>(query_.tables.size() - 1);
}

QueryBuilder& QueryBuilder::AddJoin(int left, int right, double selectivity) {
  query_.joins.push_back({left, right, selectivity});
  return *this;
}

QueryBuilder& QueryBuilder::AddFkJoin(const Catalog& catalog, int fk_ref,
                                      int pk_ref) {
  const TableId pk_table =
      query_.tables[static_cast<size_t>(pk_ref)].table;
  const double pk_card = catalog.Get(pk_table).cardinality;
  return AddJoin(fk_ref, pk_ref, 1.0 / pk_card);
}

namespace {

// Shared by both ValidateQuery overloads; `num_tables` is the catalog's
// (or snapshot's) table count.
Status ValidateQueryAgainst(const Query& query, int num_tables) {
  const int n = query.NumTables();
  if (n < 1) return Status::InvalidArgument("query has no tables");
  if (n > kMaxTables) {
    return Status::InvalidArgument(
        StrFormat("query has %d tables, max is %d", n, kMaxTables));
  }
  for (const TableRef& ref : query.tables) {
    if (ref.table < 0 || ref.table >= num_tables) {
      return Status::InvalidArgument("table reference out of range");
    }
    if (!(ref.predicate_selectivity > 0.0 &&
          ref.predicate_selectivity <= 1.0)) {
      return Status::InvalidArgument("predicate selectivity not in (0, 1]");
    }
  }
  for (const JoinPredicate& join : query.joins) {
    if (join.left < 0 || join.left >= n || join.right < 0 ||
        join.right >= n || join.left == join.right) {
      return Status::InvalidArgument("join predicate references invalid");
    }
    if (!(join.selectivity > 0.0 && join.selectivity <= 1.0)) {
      return Status::InvalidArgument("join selectivity not in (0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateQuery(const Query& query, const Catalog& catalog) {
  return ValidateQueryAgainst(query, catalog.NumTables());
}

Status ValidateQuery(const Query& query, const CatalogSnapshot& catalog) {
  return ValidateQueryAgainst(query, catalog.NumTables());
}

}  // namespace moqo
