#include "query/generator.h"

#include <cmath>

#include "util/common.h"
#include "util/str.h"

namespace moqo {
namespace {

double LogUniform(Rng& rng, double lo, double hi) {
  MOQO_CHECK(lo > 0.0 && hi >= lo);
  const double u = rng.UniformDouble(std::log(lo), std::log(hi));
  return std::exp(u);
}

}  // namespace

Query RandomQuery(Rng& rng, const GeneratorOptions& options,
                  Catalog* catalog) {
  MOQO_CHECK(catalog != nullptr);
  const int n = options.num_tables;
  MOQO_CHECK(n >= 1 && n <= kMaxTables);

  QueryBuilder builder(StrFormat("rand%d", n));
  std::vector<int> refs;
  std::vector<double> cards;
  for (int i = 0; i < n; ++i) {
    TableDef def;
    def.name = StrFormat("t%d_%u", i, static_cast<unsigned>(rng.Uniform(1u << 30)));
    def.cardinality = std::floor(
        LogUniform(rng, options.min_cardinality, options.max_cardinality));
    def.row_bytes = rng.UniformDouble(50.0, 300.0);
    def.has_index = rng.Bernoulli(0.8);
    const TableId id = catalog->AddTable(def);
    double pred = 1.0;
    if (rng.Bernoulli(options.predicate_probability)) {
      pred = LogUniform(rng, 0.001, 1.0);
    }
    refs.push_back(builder.AddTable(id, pred, StrFormat("t%d", i)));
    cards.push_back(def.cardinality);
  }

  auto add_edge = [&](int a, int b) {
    // PK-FK-style selectivity against the larger-keyed side, with noise.
    const double pk_card = std::max(cards[static_cast<size_t>(a)],
                                    cards[static_cast<size_t>(b)]);
    const double noise = LogUniform(rng, 0.5, 2.0);
    double sel = noise / pk_card;
    if (sel > 1.0) sel = 1.0;
    builder.AddJoin(refs[static_cast<size_t>(a)],
                    refs[static_cast<size_t>(b)], sel);
  };

  switch (options.topology) {
    case Topology::kChain:
      for (int i = 1; i < n; ++i) add_edge(i - 1, i);
      break;
    case Topology::kStar:
      for (int i = 1; i < n; ++i) add_edge(0, i);
      break;
    case Topology::kCycle:
      for (int i = 1; i < n; ++i) add_edge(i - 1, i);
      if (n > 2) add_edge(n - 1, 0);
      break;
    case Topology::kClique:
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) add_edge(i, j);
      }
      break;
    case Topology::kRandomTree: {
      // Attach each table to a uniformly random earlier table, then add a
      // few extra edges to create cycles.
      for (int i = 1; i < n; ++i) {
        add_edge(static_cast<int>(rng.Uniform(static_cast<uint64_t>(i))), i);
      }
      const int extra = n >= 4 ? static_cast<int>(rng.Uniform(2)) : 0;
      for (int e = 0; e < extra; ++e) {
        const int a = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
        const int b = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
        if (a != b) add_edge(std::min(a, b), std::max(a, b));
      }
      break;
    }
  }
  return builder.Build();
}

}  // namespace moqo
