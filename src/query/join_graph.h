// Join graph: connectivity and cardinality estimation over table subsets.
//
// Built once per query; the optimizer uses it to (a) restrict dynamic
// programming to connected sub-queries (avoiding cross products, standard
// practice), and (b) estimate intermediate result cardinalities with the
// classical independence model: |q| = Π base cardinalities × Π internal
// join selectivities.
#ifndef MOQO_QUERY_JOIN_GRAPH_H_
#define MOQO_QUERY_JOIN_GRAPH_H_

#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"
#include "util/table_set.h"

namespace moqo {

class JoinGraph {
 public:
  // Reads the current catalog state once, at construction.
  JoinGraph(const Query& query, const Catalog& catalog);
  // Same, against a pinned immutable snapshot (the serving layer's
  // refresh-safe path; see docs/CATALOG_REFRESH.md).
  JoinGraph(const Query& query, const CatalogSnapshot& catalog);

  int NumTables() const { return num_tables_; }

  // Base cardinality of table reference `t` after local predicates.
  double EffectiveBaseCardinality(int t) const {
    return base_card_[static_cast<size_t>(t)];
  }

  // Tables directly joined with `t`.
  TableSet Neighbors(int t) const {
    return neighbors_[static_cast<size_t>(t)];
  }

  // True if the induced subgraph on `set` is connected (singletons are
  // connected; the empty set is not).
  bool IsConnected(TableSet set) const;

  // True if at least one join predicate crosses between `a` and `b`.
  bool HasEdgeBetween(TableSet a, TableSet b) const;

  // Product of the selectivities of all join predicates with one side in
  // `a` and the other in `b` (1.0 if none: cross product).
  double SelectivityBetween(TableSet a, TableSet b) const;

  // Index of the first join predicate crossing between `a` and `b`, or -1
  // if none. Used to tag the interesting order produced by a sort-merge
  // join of the two sides.
  int FirstPredicateBetween(TableSet a, TableSet b) const;

  // Index of the first join predicate incident to table `t`, or -1. Used
  // to tag the order produced by an index scan of `t`.
  int FirstPredicateIncident(int t) const;

  int NumPredicates() const { return static_cast<int>(joins_.size()); }

  // Estimated result cardinality of joining exactly the tables in `set`
  // (at full sampling rate), clamped below at 1 row.
  double EstimateCardinality(TableSet set) const;

 private:
  int num_tables_;
  std::vector<double> base_card_;
  std::vector<TableSet> neighbors_;
  std::vector<JoinPredicate> joins_;
};

}  // namespace moqo

#endif  // MOQO_QUERY_JOIN_GRAPH_H_
