// Query model (paper §3): a set of tables that need to be joined.
//
// Following the paper's extension section (§4.3), each table reference may
// carry a local predicate selectivity (predicates are applied as early as
// possible, i.e. at the scan), and join predicates connect table pairs with
// a join selectivity. A Query is one select-project-join query block;
// complex SQL statements decompose into such blocks (Selinger).
#ifndef MOQO_QUERY_QUERY_H_
#define MOQO_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "util/table_set.h"

namespace moqo {

// One table reference inside a query block. `table` indexes the catalog;
// the same catalog table may appear several times (self-joins, e.g. the
// two NATION references in TPC-H Q7/Q8).
struct TableRef {
  TableId table = 0;
  // Combined selectivity of all local predicates on this reference.
  double predicate_selectivity = 1.0;
  // Display alias, e.g. "n1".
  std::string alias;
};

// An equi-join predicate between two table references (local indices).
struct JoinPredicate {
  int left = 0;
  int right = 0;
  double selectivity = 1.0;
};

// A select-project-join query block over n <= kMaxTables table references.
struct Query {
  std::string name;
  std::vector<TableRef> tables;
  std::vector<JoinPredicate> joins;

  int NumTables() const { return static_cast<int>(tables.size()); }
  TableSet AllTables() const { return TableSet::Full(NumTables()); }
};

// Convenience builder used by the TPC-H workload and the generator.
class QueryBuilder {
 public:
  explicit QueryBuilder(std::string name) { query_.name = std::move(name); }

  // Adds a reference to catalog table `table`; returns its local index.
  int AddTable(TableId table, double predicate_selectivity = 1.0,
               std::string alias = "");

  // Adds an explicit-selectivity join predicate.
  QueryBuilder& AddJoin(int left, int right, double selectivity);

  // Adds a foreign-key join: `fk_ref` references the primary key of
  // `pk_ref`. Selectivity is 1 / |pk table| (standard PK-FK estimate),
  // looked up in `catalog`.
  QueryBuilder& AddFkJoin(const Catalog& catalog, int fk_ref, int pk_ref);

  Query Build() const { return query_; }

 private:
  Query query_;
};

// Validates a query block: table indices in range, selectivities in (0, 1],
// join graph references valid, table count within kMaxTables.
Status ValidateQuery(const Query& query, const Catalog& catalog);

// Same, against a pinned catalog snapshot (the serving layer validates
// each submission against the snapshot the run will optimize on).
Status ValidateQuery(const Query& query, const CatalogSnapshot& catalog);

}  // namespace moqo

#endif  // MOQO_QUERY_QUERY_H_
