// Random query generator for tests and synthetic benchmarks.
//
// Generates a query block with a chosen join-graph topology over freshly
// generated tables (appended to the supplied catalog). Deterministic given
// the Rng state.
#ifndef MOQO_QUERY_GENERATOR_H_
#define MOQO_QUERY_GENERATOR_H_

#include "catalog/catalog.h"
#include "query/query.h"
#include "util/rng.h"

namespace moqo {

enum class Topology {
  kChain,   // t0 - t1 - ... - t_{n-1}
  kStar,    // t0 joined with every other table
  kCycle,   // chain plus closing edge
  kClique,  // every pair joined
  kRandomTree,  // uniform random spanning tree + a few extra edges
};

struct GeneratorOptions {
  int num_tables = 4;
  Topology topology = Topology::kRandomTree;
  // Base cardinalities drawn log-uniformly from this range.
  double min_cardinality = 100.0;
  double max_cardinality = 1e6;
  // Probability that a table carries a local predicate; the predicate's
  // selectivity is drawn log-uniformly from [0.001, 1].
  double predicate_probability = 0.5;
};

// Appends `options.num_tables` synthetic tables to `catalog` and returns a
// connected query block over them. Join selectivities follow the PK-FK
// pattern (1 / cardinality of one endpoint) with noise.
Query RandomQuery(Rng& rng, const GeneratorOptions& options,
                  Catalog* catalog);

}  // namespace moqo

#endif  // MOQO_QUERY_GENERATOR_H_
