#include "query/join_graph.h"

#include "util/common.h"

namespace moqo {

JoinGraph::JoinGraph(const Query& query, const Catalog& catalog)
    : JoinGraph(query, *catalog.Snapshot()) {}

JoinGraph::JoinGraph(const Query& query, const CatalogSnapshot& catalog)
    : num_tables_(query.NumTables()), joins_(query.joins) {
  base_card_.reserve(static_cast<size_t>(num_tables_));
  neighbors_.assign(static_cast<size_t>(num_tables_), TableSet());
  for (int t = 0; t < num_tables_; ++t) {
    const TableRef& ref = query.tables[static_cast<size_t>(t)];
    const double card =
        catalog.Get(ref.table).cardinality * ref.predicate_selectivity;
    base_card_.push_back(card < 1.0 ? 1.0 : card);
  }
  for (const JoinPredicate& join : joins_) {
    neighbors_[static_cast<size_t>(join.left)] =
        neighbors_[static_cast<size_t>(join.left)].Union(
            TableSet::Singleton(join.right));
    neighbors_[static_cast<size_t>(join.right)] =
        neighbors_[static_cast<size_t>(join.right)].Union(
            TableSet::Singleton(join.left));
  }
}

bool JoinGraph::IsConnected(TableSet set) const {
  if (set.Empty()) return false;
  if (set.Count() == 1) return true;
  // BFS from the lowest table, restricted to `set`.
  TableSet visited = TableSet::Singleton(set.Lowest());
  TableSet frontier = visited;
  while (!frontier.Empty()) {
    TableSet next;
    for (TableIter it(frontier); !it.Done(); it.Next()) {
      next = next.Union(Neighbors(it.Table()).Intersect(set));
    }
    frontier = next.Minus(visited);
    visited = visited.Union(next);
  }
  return visited.ContainsAll(set);
}

bool JoinGraph::HasEdgeBetween(TableSet a, TableSet b) const {
  for (TableIter it(a); !it.Done(); it.Next()) {
    if (Neighbors(it.Table()).Intersects(b)) return true;
  }
  return false;
}

double JoinGraph::SelectivityBetween(TableSet a, TableSet b) const {
  double selectivity = 1.0;
  for (const JoinPredicate& join : joins_) {
    const bool lr = a.Contains(join.left) && b.Contains(join.right);
    const bool rl = a.Contains(join.right) && b.Contains(join.left);
    if (lr || rl) selectivity *= join.selectivity;
  }
  return selectivity;
}

int JoinGraph::FirstPredicateBetween(TableSet a, TableSet b) const {
  for (size_t i = 0; i < joins_.size(); ++i) {
    const JoinPredicate& join = joins_[i];
    const bool lr = a.Contains(join.left) && b.Contains(join.right);
    const bool rl = a.Contains(join.right) && b.Contains(join.left);
    if (lr || rl) return static_cast<int>(i);
  }
  return -1;
}

int JoinGraph::FirstPredicateIncident(int t) const {
  for (size_t i = 0; i < joins_.size(); ++i) {
    if (joins_[i].left == t || joins_[i].right == t) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

double JoinGraph::EstimateCardinality(TableSet set) const {
  double card = 1.0;
  for (TableIter it(set); !it.Done(); it.Next()) {
    card *= EffectiveBaseCardinality(it.Table());
  }
  for (const JoinPredicate& join : joins_) {
    if (set.Contains(join.left) && set.Contains(join.right)) {
      card *= join.selectivity;
    }
  }
  return card < 1.0 ? 1.0 : card;
}

}  // namespace moqo
