#include "service/fragment_codec.h"

#include <array>
#include <cstring>

#include "core/incremental_optimizer.h"
#include "cost/cost_vector.h"
#include "net/wire.h"
#include "service/fragment_store.h"
#include "util/common.h"
#include "util/table_set.h"

namespace moqo {
namespace {

// Decode-side sanity ceilings. The codec must reject hostile input with
// Status before any allocation it implies, so every count is bounded by
// what the remaining bytes could possibly hold (minimum encoded size per
// element) rather than trusted directly.
constexpr size_t kMinPlanEncodedBytes =
    1 /*dims*/ + 8 /*output_rows*/ + 1 /*is_scan*/ + 1 /*alg*/ +
    1 /*workers*/ + 1 /*sampling varint*/ + 1 /*order*/ + 1 /*resolution*/;
// resolution_complete travels as a varint but lands in an int; anything
// beyond this is corrupt, not a real schedule.
constexpr uint64_t kMaxResolutionComplete = 1u << 20;
// Frontier-delta ceilings: a fresh pair is two varints; a cell join is
// two plan-id varints, four operator bytes/varints, the cost vector
// (dims byte + lanes), output_rows, and the order byte.
constexpr size_t kMinFreshPairEncodedBytes = 2;
constexpr size_t kMinCellJoinEncodedBytes =
    1 /*left*/ + 1 /*right*/ + 1 /*is_scan*/ + 1 /*alg*/ + 1 /*workers*/ +
    1 /*sampling varint*/ + 1 /*dims*/ + 8 /*output_rows*/ + 1 /*order*/;
// Partition-assignment ceilings. num_workers is forked-local today; the
// cap only has to reject corrupt counts, not size real clusters.
constexpr uint64_t kMaxAssignmentWorkers = 4096;
constexpr size_t kMinTableRefEncodedBytes =
    1 /*table varint*/ + 8 /*selectivity*/ + 1 /*alias len*/;
constexpr size_t kMinJoinPredEncodedBytes = 1 /*left*/ + 1 /*right*/ + 8;

Status Corrupt(const char* what) { return Status::InvalidArgument(what); }

void EncodePlan(net::Writer* w, const FragmentPlan& plan) {
  const int dims = plan.cost.dims();
  w->PutU8(static_cast<uint8_t>(dims));
  for (int i = 0; i < dims; ++i) w->PutF64(plan.cost.at(i));
  w->PutF64(plan.output_rows);
  w->PutU8(plan.op.is_scan ? 1 : 0);
  w->PutU8(plan.op.alg);
  w->PutU8(plan.op.workers);
  w->PutVarint(plan.op.sampling_permille);
  w->PutU8(plan.order);
  w->PutU8(plan.resolution);
}

Status DecodePlan(net::Reader* r, FragmentPlan* plan) {
  uint8_t dims = 0;
  MOQO_RETURN_IF_ERROR(r->GetU8(&dims));
  if (dims > kMaxMetrics) return Corrupt("fragment plan dims out of range");
  plan->cost = CostVector(static_cast<int>(dims));
  for (int i = 0; i < dims; ++i) {
    MOQO_RETURN_IF_ERROR(r->GetF64(&plan->cost.data()[i]));
  }
  MOQO_RETURN_IF_ERROR(r->GetF64(&plan->output_rows));
  uint8_t is_scan = 0;
  MOQO_RETURN_IF_ERROR(r->GetU8(&is_scan));
  if (is_scan > 1) return Corrupt("fragment plan is_scan flag out of range");
  plan->op.is_scan = is_scan != 0;
  MOQO_RETURN_IF_ERROR(r->GetU8(&plan->op.alg));
  MOQO_RETURN_IF_ERROR(r->GetU8(&plan->op.workers));
  uint64_t sampling = 0;
  MOQO_RETURN_IF_ERROR(r->GetVarint(&sampling));
  if (sampling > 0xFFFF) return Corrupt("fragment plan sampling out of range");
  plan->op.sampling_permille = static_cast<uint16_t>(sampling);
  MOQO_RETURN_IF_ERROR(r->GetU8(&plan->order));
  MOQO_RETURN_IF_ERROR(r->GetU8(&plan->resolution));
  return Status::OK();
}

}  // namespace

std::string EncodeFragmentRecord(const FragmentRecord& record,
                                 const StoredFragment& fragment) {
  MOQO_CHECK(record.resolution_complete >= 0);
  net::Writer w;
  w.PutU8(kFragmentCodecVersion);
  w.PutVarint(record.epoch);
  w.PutVarint(record.catalog_version);
  w.PutVarint(static_cast<uint64_t>(record.resolution_complete));
  w.PutStr(record.key);
  w.PutVarint(fragment.plans.size());
  for (const FragmentPlan& plan : fragment.plans) EncodePlan(&w, plan);
  return w.bytes();
}

Status DecodeFragmentRecord(const std::string& bytes, FragmentRecord* record,
                            StoredFragment* fragment) {
  net::Reader r(bytes);
  uint8_t version = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&version));
  if (version != kFragmentCodecVersion) {
    return Corrupt("unsupported fragment codec version");
  }
  MOQO_RETURN_IF_ERROR(r.GetVarint(&record->epoch));
  MOQO_RETURN_IF_ERROR(r.GetVarint(&record->catalog_version));
  uint64_t resolution_complete = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&resolution_complete));
  if (resolution_complete > kMaxResolutionComplete) {
    return Corrupt("fragment resolution_complete out of range");
  }
  record->resolution_complete = static_cast<int>(resolution_complete);
  MOQO_RETURN_IF_ERROR(r.GetStr(&record->key));
  uint64_t plan_count = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&plan_count));
  if (plan_count > bytes.size() / kMinPlanEncodedBytes) {
    return Corrupt("fragment plan count exceeds payload capacity");
  }
  fragment->resolution_complete = record->resolution_complete;
  fragment->plans.clear();
  fragment->plans.reserve(plan_count);
  for (uint64_t i = 0; i < plan_count; ++i) {
    FragmentPlan plan;
    MOQO_RETURN_IF_ERROR(DecodePlan(&r, &plan));
    fragment->plans.push_back(plan);
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes after fragment record");
  return Status::OK();
}

std::string EncodeEpochRecord(uint64_t epoch) {
  net::Writer w;
  w.PutU8(kFragmentCodecVersion);
  w.PutVarint(epoch);
  return w.bytes();
}

Status DecodeEpochRecord(const std::string& bytes, uint64_t* epoch) {
  net::Reader r(bytes);
  uint8_t version = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&version));
  if (version != kFragmentCodecVersion) {
    return Corrupt("unsupported fragment codec version");
  }
  MOQO_RETURN_IF_ERROR(r.GetVarint(epoch));
  if (!r.AtEnd()) return Corrupt("trailing bytes after epoch record");
  return Status::OK();
}

std::string EncodeFrontierDelta(const FrontierDeltaRecord& record,
                                const CellDelta& delta) {
  MOQO_CHECK(record.resolution >= 0);
  net::Writer w;
  w.PutU8(kFragmentCodecVersion);
  w.PutVarint(record.invocation);
  w.PutVarint(static_cast<uint64_t>(record.resolution));
  w.PutVarint(record.level);
  w.PutU32(delta.cell.mask());
  w.PutVarint(delta.fresh_pairs.size());
  for (const auto& [left, right] : delta.fresh_pairs) {
    w.PutVarint(left);
    w.PutVarint(right);
  }
  w.PutVarint(delta.joins.size());
  for (const CellJoin& join : delta.joins) {
    w.PutVarint(join.left);
    w.PutVarint(join.right);
    w.PutU8(join.op.is_scan ? 1 : 0);
    w.PutU8(join.op.alg);
    w.PutU8(join.op.workers);
    w.PutVarint(join.op.sampling_permille);
    const int dims = join.op_cost.cost.dims();
    w.PutU8(static_cast<uint8_t>(dims));
    for (int i = 0; i < dims; ++i) w.PutF64(join.op_cost.cost.at(i));
    w.PutF64(join.op_cost.output_rows);
    w.PutU8(join.op_cost.order);
  }
  w.PutVarint(delta.stale_pairs);
  return w.bytes();
}

Status DecodeFrontierDelta(const std::string& bytes,
                           FrontierDeltaRecord* record, CellDelta* delta) {
  net::Reader r(bytes);
  uint8_t version = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&version));
  if (version != kFragmentCodecVersion) {
    return Corrupt("unsupported fragment codec version");
  }
  uint64_t invocation = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&invocation));
  if (invocation > 0xFFFFFFFFu) return Corrupt("delta invocation out of range");
  record->invocation = static_cast<uint32_t>(invocation);
  uint64_t resolution = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&resolution));
  if (resolution > kMaxResolutionComplete) {
    return Corrupt("delta resolution out of range");
  }
  record->resolution = static_cast<int>(resolution);
  uint64_t level = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&level));
  if (level > static_cast<uint64_t>(kMaxTables)) {
    return Corrupt("delta level out of range");
  }
  record->level = static_cast<uint32_t>(level);
  uint32_t mask = 0;
  MOQO_RETURN_IF_ERROR(r.GetU32(&mask));
  if (mask >= (1u << kMaxTables)) return Corrupt("delta cell mask out of range");
  delta->cell = TableSet(mask);
  uint64_t pair_count = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&pair_count));
  if (pair_count > bytes.size() / kMinFreshPairEncodedBytes) {
    return Corrupt("delta fresh-pair count exceeds payload capacity");
  }
  delta->fresh_pairs.clear();
  delta->fresh_pairs.reserve(pair_count);
  for (uint64_t i = 0; i < pair_count; ++i) {
    uint64_t left = 0;
    uint64_t right = 0;
    MOQO_RETURN_IF_ERROR(r.GetVarint(&left));
    MOQO_RETURN_IF_ERROR(r.GetVarint(&right));
    if (left > 0xFFFFFFFFu || right > 0xFFFFFFFFu) {
      return Corrupt("delta fresh-pair plan id out of range");
    }
    delta->fresh_pairs.emplace_back(static_cast<uint32_t>(left),
                                    static_cast<uint32_t>(right));
  }
  uint64_t join_count = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&join_count));
  if (join_count > bytes.size() / kMinCellJoinEncodedBytes) {
    return Corrupt("delta join count exceeds payload capacity");
  }
  delta->joins.clear();
  delta->joins.reserve(join_count);
  for (uint64_t i = 0; i < join_count; ++i) {
    CellJoin join;
    uint64_t left = 0;
    uint64_t right = 0;
    MOQO_RETURN_IF_ERROR(r.GetVarint(&left));
    MOQO_RETURN_IF_ERROR(r.GetVarint(&right));
    if (left > 0xFFFFFFFFu || right > 0xFFFFFFFFu) {
      return Corrupt("delta join plan id out of range");
    }
    join.left = static_cast<uint32_t>(left);
    join.right = static_cast<uint32_t>(right);
    uint8_t is_scan = 0;
    MOQO_RETURN_IF_ERROR(r.GetU8(&is_scan));
    if (is_scan > 1) return Corrupt("delta join is_scan flag out of range");
    join.op.is_scan = is_scan != 0;
    MOQO_RETURN_IF_ERROR(r.GetU8(&join.op.alg));
    MOQO_RETURN_IF_ERROR(r.GetU8(&join.op.workers));
    uint64_t sampling = 0;
    MOQO_RETURN_IF_ERROR(r.GetVarint(&sampling));
    if (sampling > 0xFFFF) return Corrupt("delta join sampling out of range");
    join.op.sampling_permille = static_cast<uint16_t>(sampling);
    uint8_t dims = 0;
    MOQO_RETURN_IF_ERROR(r.GetU8(&dims));
    if (dims > kMaxMetrics) return Corrupt("delta join dims out of range");
    join.op_cost.cost = CostVector(static_cast<int>(dims));
    for (int d = 0; d < dims; ++d) {
      MOQO_RETURN_IF_ERROR(r.GetF64(&join.op_cost.cost.data()[d]));
    }
    MOQO_RETURN_IF_ERROR(r.GetF64(&join.op_cost.output_rows));
    MOQO_RETURN_IF_ERROR(r.GetU8(&join.op_cost.order));
    delta->joins.push_back(join);
  }
  MOQO_RETURN_IF_ERROR(r.GetVarint(&delta->stale_pairs));
  if (!r.AtEnd()) return Corrupt("trailing bytes after frontier delta");
  return Status::OK();
}

std::string EncodePartitionAssignment(const PartitionAssignment& assignment) {
  MOQO_CHECK(assignment.num_workers >= 1);
  MOQO_CHECK(assignment.worker_index < assignment.num_workers);
  net::Writer w;
  w.PutU8(kFragmentCodecVersion);
  w.PutVarint(assignment.worker_index);
  w.PutVarint(assignment.num_workers);
  w.PutVarint(assignment.catalog_version);
  w.PutStr(assignment.query.name);
  w.PutVarint(assignment.query.tables.size());
  for (const TableRef& ref : assignment.query.tables) {
    MOQO_CHECK(ref.table >= 0);
    w.PutVarint(static_cast<uint64_t>(ref.table));
    w.PutF64(ref.predicate_selectivity);
    w.PutStr(ref.alias);
  }
  w.PutVarint(assignment.query.joins.size());
  for (const JoinPredicate& join : assignment.query.joins) {
    MOQO_CHECK(join.left >= 0 && join.right >= 0);
    w.PutVarint(static_cast<uint64_t>(join.left));
    w.PutVarint(static_cast<uint64_t>(join.right));
    w.PutF64(join.selectivity);
  }
  w.PutVarint(static_cast<uint64_t>(assignment.schedule.NumLevels()));
  w.PutF64(assignment.schedule.alpha_target());
  w.PutF64(assignment.schedule.alpha_step());
  w.PutU8(static_cast<uint8_t>(assignment.schedule.kind()));
  if (assignment.initial_bounds.has_value()) {
    const int dims = assignment.initial_bounds->dims();
    w.PutU8(1);
    w.PutU8(static_cast<uint8_t>(dims));
    for (int i = 0; i < dims; ++i) w.PutF64(assignment.initial_bounds->at(i));
  } else {
    w.PutU8(0);
  }
  w.PutF64(assignment.cell_gamma);
  const uint8_t flags =
      (assignment.prune_against_all_resolutions ? 1u : 0u) |
      (assignment.park_next_level_only ? 2u : 0u) |
      (assignment.sorted_pruning ? 4u : 0u);
  w.PutU8(flags);
  w.PutVarint(assignment.steps);
  return w.bytes();
}

Status DecodePartitionAssignment(const std::string& bytes,
                                 PartitionAssignment* assignment) {
  net::Reader r(bytes);
  uint8_t version = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&version));
  if (version != kFragmentCodecVersion) {
    return Corrupt("unsupported fragment codec version");
  }
  uint64_t worker_index = 0;
  uint64_t num_workers = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&worker_index));
  MOQO_RETURN_IF_ERROR(r.GetVarint(&num_workers));
  if (num_workers < 1 || num_workers > kMaxAssignmentWorkers) {
    return Corrupt("assignment num_workers out of range");
  }
  if (worker_index >= num_workers) {
    return Corrupt("assignment worker_index out of range");
  }
  assignment->worker_index = static_cast<uint32_t>(worker_index);
  assignment->num_workers = static_cast<uint32_t>(num_workers);
  MOQO_RETURN_IF_ERROR(r.GetVarint(&assignment->catalog_version));
  MOQO_RETURN_IF_ERROR(r.GetStr(&assignment->query.name));
  uint64_t table_count = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&table_count));
  if (table_count > static_cast<uint64_t>(kMaxTables) ||
      table_count > bytes.size() / kMinTableRefEncodedBytes) {
    return Corrupt("assignment table count out of range");
  }
  assignment->query.tables.clear();
  assignment->query.tables.reserve(table_count);
  for (uint64_t i = 0; i < table_count; ++i) {
    TableRef ref;
    uint64_t table = 0;
    MOQO_RETURN_IF_ERROR(r.GetVarint(&table));
    if (table > 0x7FFFFFFFu) return Corrupt("assignment table id out of range");
    ref.table = static_cast<TableId>(table);
    MOQO_RETURN_IF_ERROR(r.GetF64(&ref.predicate_selectivity));
    MOQO_RETURN_IF_ERROR(r.GetStr(&ref.alias));
    assignment->query.tables.push_back(std::move(ref));
  }
  uint64_t join_count = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&join_count));
  if (join_count > bytes.size() / kMinJoinPredEncodedBytes) {
    return Corrupt("assignment join count exceeds payload capacity");
  }
  assignment->query.joins.clear();
  assignment->query.joins.reserve(join_count);
  for (uint64_t i = 0; i < join_count; ++i) {
    JoinPredicate join;
    uint64_t left = 0;
    uint64_t right = 0;
    MOQO_RETURN_IF_ERROR(r.GetVarint(&left));
    MOQO_RETURN_IF_ERROR(r.GetVarint(&right));
    if (left >= table_count || right >= table_count) {
      return Corrupt("assignment join endpoint out of range");
    }
    join.left = static_cast<int>(left);
    join.right = static_cast<int>(right);
    MOQO_RETURN_IF_ERROR(r.GetF64(&join.selectivity));
    assignment->query.joins.push_back(join);
  }
  uint64_t num_levels = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&num_levels));
  double alpha_target = 0.0;
  double alpha_step = 0.0;
  MOQO_RETURN_IF_ERROR(r.GetF64(&alpha_target));
  MOQO_RETURN_IF_ERROR(r.GetF64(&alpha_step));
  uint8_t kind = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&kind));
  // Validate everything the ResolutionSchedule constructor CHECKs; the
  // comparisons are written so NaN fails them.
  if (num_levels < 1 || num_levels > 256) {
    return Corrupt("assignment schedule levels out of range");
  }
  if (!(alpha_target > 1.0) || !(alpha_step >= 0.0)) {
    return Corrupt("assignment schedule alpha out of range");
  }
  if (kind > static_cast<uint8_t>(ResolutionSchedule::Kind::kGeometric)) {
    return Corrupt("assignment schedule kind out of range");
  }
  assignment->schedule =
      ResolutionSchedule(static_cast<int>(num_levels), alpha_target,
                         alpha_step, static_cast<ResolutionSchedule::Kind>(kind));
  uint8_t has_bounds = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&has_bounds));
  if (has_bounds > 1) return Corrupt("assignment bounds flag out of range");
  if (has_bounds != 0) {
    uint8_t dims = 0;
    MOQO_RETURN_IF_ERROR(r.GetU8(&dims));
    if (dims > kMaxMetrics) return Corrupt("assignment bounds dims out of range");
    CostVector bounds(static_cast<int>(dims));
    for (int d = 0; d < dims; ++d) {
      MOQO_RETURN_IF_ERROR(r.GetF64(&bounds.data()[d]));
    }
    assignment->initial_bounds = bounds;
  } else {
    assignment->initial_bounds.reset();
  }
  MOQO_RETURN_IF_ERROR(r.GetF64(&assignment->cell_gamma));
  uint8_t flags = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&flags));
  if (flags > 7) return Corrupt("assignment flags out of range");
  assignment->prune_against_all_resolutions = (flags & 1u) != 0;
  assignment->park_next_level_only = (flags & 2u) != 0;
  assignment->sorted_pruning = (flags & 4u) != 0;
  uint64_t steps = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&steps));
  if (steps > 0xFFFFFFFFu) return Corrupt("assignment steps out of range");
  assignment->steps = static_cast<uint32_t>(steps);
  if (!r.AtEnd()) return Corrupt("trailing bytes after partition assignment");
  return Status::OK();
}

uint32_t Crc32(const void* data, size_t size) {
  // Table-driven reflected CRC-32; the table is built once on first use
  // (thread-safe function-local static initialization).
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendLogRecord(std::string* log, LogRecordType type,
                     const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(1 + payload.size());
  MOQO_CHECK(len <= kMaxFragmentRecordBytes);
  std::string body;
  body.reserve(len);
  body.push_back(static_cast<char>(type));
  body.append(payload);
  const uint32_t crc = Crc32(body.data(), body.size());
  char header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  log->append(header, 8);
  log->append(body);
}

LogParse ParseLogRecord(const char* data, size_t size, uint8_t* type,
                        std::string* payload, size_t* record_bytes) {
  if (size < 8) return LogParse::kTruncated;
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, data, 4);
  std::memcpy(&crc, data + 4, 4);
  if (len == 0 || len > kMaxFragmentRecordBytes) return LogParse::kCorrupt;
  if (size - 8 < len) return LogParse::kTruncated;
  if (Crc32(data + 8, len) != crc) return LogParse::kCorrupt;
  *type = static_cast<uint8_t>(data[8]);
  payload->assign(data + 9, len - 1);
  *record_bytes = 8 + static_cast<size_t>(len);
  return LogParse::kRecord;
}

}  // namespace moqo
