#include "service/fragment_codec.h"

#include <array>
#include <cstring>

#include "cost/cost_vector.h"
#include "net/wire.h"
#include "service/fragment_store.h"
#include "util/common.h"

namespace moqo {
namespace {

// Decode-side sanity ceilings. The codec must reject hostile input with
// Status before any allocation it implies, so every count is bounded by
// what the remaining bytes could possibly hold (minimum encoded size per
// element) rather than trusted directly.
constexpr size_t kMinPlanEncodedBytes =
    1 /*dims*/ + 8 /*output_rows*/ + 1 /*is_scan*/ + 1 /*alg*/ +
    1 /*workers*/ + 1 /*sampling varint*/ + 1 /*order*/ + 1 /*resolution*/;
// resolution_complete travels as a varint but lands in an int; anything
// beyond this is corrupt, not a real schedule.
constexpr uint64_t kMaxResolutionComplete = 1u << 20;

Status Corrupt(const char* what) { return Status::InvalidArgument(what); }

void EncodePlan(net::Writer* w, const FragmentPlan& plan) {
  const int dims = plan.cost.dims();
  w->PutU8(static_cast<uint8_t>(dims));
  for (int i = 0; i < dims; ++i) w->PutF64(plan.cost.at(i));
  w->PutF64(plan.output_rows);
  w->PutU8(plan.op.is_scan ? 1 : 0);
  w->PutU8(plan.op.alg);
  w->PutU8(plan.op.workers);
  w->PutVarint(plan.op.sampling_permille);
  w->PutU8(plan.order);
  w->PutU8(plan.resolution);
}

Status DecodePlan(net::Reader* r, FragmentPlan* plan) {
  uint8_t dims = 0;
  MOQO_RETURN_IF_ERROR(r->GetU8(&dims));
  if (dims > kMaxMetrics) return Corrupt("fragment plan dims out of range");
  plan->cost = CostVector(static_cast<int>(dims));
  for (int i = 0; i < dims; ++i) {
    MOQO_RETURN_IF_ERROR(r->GetF64(&plan->cost.data()[i]));
  }
  MOQO_RETURN_IF_ERROR(r->GetF64(&plan->output_rows));
  uint8_t is_scan = 0;
  MOQO_RETURN_IF_ERROR(r->GetU8(&is_scan));
  if (is_scan > 1) return Corrupt("fragment plan is_scan flag out of range");
  plan->op.is_scan = is_scan != 0;
  MOQO_RETURN_IF_ERROR(r->GetU8(&plan->op.alg));
  MOQO_RETURN_IF_ERROR(r->GetU8(&plan->op.workers));
  uint64_t sampling = 0;
  MOQO_RETURN_IF_ERROR(r->GetVarint(&sampling));
  if (sampling > 0xFFFF) return Corrupt("fragment plan sampling out of range");
  plan->op.sampling_permille = static_cast<uint16_t>(sampling);
  MOQO_RETURN_IF_ERROR(r->GetU8(&plan->order));
  MOQO_RETURN_IF_ERROR(r->GetU8(&plan->resolution));
  return Status::OK();
}

}  // namespace

std::string EncodeFragmentRecord(const FragmentRecord& record,
                                 const StoredFragment& fragment) {
  MOQO_CHECK(record.resolution_complete >= 0);
  net::Writer w;
  w.PutU8(kFragmentCodecVersion);
  w.PutVarint(record.epoch);
  w.PutVarint(record.catalog_version);
  w.PutVarint(static_cast<uint64_t>(record.resolution_complete));
  w.PutStr(record.key);
  w.PutVarint(fragment.plans.size());
  for (const FragmentPlan& plan : fragment.plans) EncodePlan(&w, plan);
  return w.bytes();
}

Status DecodeFragmentRecord(const std::string& bytes, FragmentRecord* record,
                            StoredFragment* fragment) {
  net::Reader r(bytes);
  uint8_t version = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&version));
  if (version != kFragmentCodecVersion) {
    return Corrupt("unsupported fragment codec version");
  }
  MOQO_RETURN_IF_ERROR(r.GetVarint(&record->epoch));
  MOQO_RETURN_IF_ERROR(r.GetVarint(&record->catalog_version));
  uint64_t resolution_complete = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&resolution_complete));
  if (resolution_complete > kMaxResolutionComplete) {
    return Corrupt("fragment resolution_complete out of range");
  }
  record->resolution_complete = static_cast<int>(resolution_complete);
  MOQO_RETURN_IF_ERROR(r.GetStr(&record->key));
  uint64_t plan_count = 0;
  MOQO_RETURN_IF_ERROR(r.GetVarint(&plan_count));
  if (plan_count > bytes.size() / kMinPlanEncodedBytes) {
    return Corrupt("fragment plan count exceeds payload capacity");
  }
  fragment->resolution_complete = record->resolution_complete;
  fragment->plans.clear();
  fragment->plans.reserve(plan_count);
  for (uint64_t i = 0; i < plan_count; ++i) {
    FragmentPlan plan;
    MOQO_RETURN_IF_ERROR(DecodePlan(&r, &plan));
    fragment->plans.push_back(plan);
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes after fragment record");
  return Status::OK();
}

std::string EncodeEpochRecord(uint64_t epoch) {
  net::Writer w;
  w.PutU8(kFragmentCodecVersion);
  w.PutVarint(epoch);
  return w.bytes();
}

Status DecodeEpochRecord(const std::string& bytes, uint64_t* epoch) {
  net::Reader r(bytes);
  uint8_t version = 0;
  MOQO_RETURN_IF_ERROR(r.GetU8(&version));
  if (version != kFragmentCodecVersion) {
    return Corrupt("unsupported fragment codec version");
  }
  MOQO_RETURN_IF_ERROR(r.GetVarint(epoch));
  if (!r.AtEnd()) return Corrupt("trailing bytes after epoch record");
  return Status::OK();
}

uint32_t Crc32(const void* data, size_t size) {
  // Table-driven reflected CRC-32; the table is built once on first use
  // (thread-safe function-local static initialization).
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendLogRecord(std::string* log, LogRecordType type,
                     const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(1 + payload.size());
  MOQO_CHECK(len <= kMaxFragmentRecordBytes);
  std::string body;
  body.reserve(len);
  body.push_back(static_cast<char>(type));
  body.append(payload);
  const uint32_t crc = Crc32(body.data(), body.size());
  char header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  log->append(header, 8);
  log->append(body);
}

LogParse ParseLogRecord(const char* data, size_t size, uint8_t* type,
                        std::string* payload, size_t* record_bytes) {
  if (size < 8) return LogParse::kTruncated;
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, data, 4);
  std::memcpy(&crc, data + 4, 4);
  if (len == 0 || len > kMaxFragmentRecordBytes) return LogParse::kCorrupt;
  if (size - 8 < len) return LogParse::kTruncated;
  if (Crc32(data + 8, len) != crc) return LogParse::kCorrupt;
  *type = static_cast<uint8_t>(data[8]);
  payload->assign(data + 9, len - 1);
  *record_bytes = 8 + static_cast<size_t>(len);
  return LogParse::kRecord;
}

}  // namespace moqo
