#include "service/snapshot_stream.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <utility>

namespace moqo {

SnapshotSubscription::SnapshotSubscription(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

SnapshotSubscription::~SnapshotSubscription() {
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
}

void SnapshotSubscription::Push(
    std::shared_ptr<const FrontierSnapshot> snapshot, bool is_final) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;  // Terminal stream: late pushes are no-ops.
    uint64_t gap_for_new = 0;
    if (queue_.size() >= capacity_) {
      // Drop-oldest: the victim's gap (it may itself carry one) moves
      // onto the next event still queued, so gaps stay ordered relative
      // to the survivors; with nothing left queued it lands on the event
      // being pushed. dropped_total_ counts each dropped event once —
      // the victim's own carried gap was counted when it accrued.
      SnapshotEvent victim = std::move(queue_.front());
      queue_.pop_front();
      const uint64_t gap = 1 + victim.dropped;
      dropped_total_ += 1;
      if (!queue_.empty()) {
        queue_.front().dropped += gap;
      } else {
        gap_for_new = gap;
      }
    }
    SnapshotEvent event;
    event.sequence = next_sequence_++;
    event.dropped = gap_for_new;
    event.is_final = is_final;
    event.snapshot = std::move(snapshot);
    closed_ = is_final;
    queue_.push_back(std::move(event));
    if (wakeup_fd_ >= 0) {
      // Eventfd-style poke; best effort. A full counter (EAGAIN) still
      // leaves the fd readable, which is all the poller needs. Written
      // under mu_ so a concurrent SetWakeupFd(-1) cannot close the
      // descriptor between capture and write — and since wakeup_fd_ is
      // our own dup, the number can never have been recycled by an
      // unrelated open either. The fd is non-blocking by contract, so
      // holding the lock across the write never stalls the producer.
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
    }
  }
  cv_.notify_one();
}

std::optional<SnapshotEvent> SnapshotSubscription::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  SnapshotEvent event = std::move(queue_.front());
  queue_.pop_front();
  if (event.is_final) exhausted_ = true;
  return event;
}

std::optional<SnapshotEvent> SnapshotSubscription::Next(double timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty()) {
    if (exhausted_) return std::nullopt;
    cv_.wait_for(lock,
                 std::chrono::duration<double, std::milli>(timeout_ms),
                 [this] { return !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
  }
  SnapshotEvent event = std::move(queue_.front());
  queue_.pop_front();
  if (event.is_final) exhausted_ = true;
  return event;
}

bool SnapshotSubscription::exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exhausted_;
}

uint64_t SnapshotSubscription::dropped_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

void SnapshotSubscription::SetWakeupFd(int fd) {
  // Own a dup of the caller's descriptor: once attached, the poke in
  // Push targets a descriptor only this subscription can close, so the
  // caller closing (and the kernel recycling) its original can never
  // redirect a poke into an unrelated fd. Dup failure (fd exhaustion)
  // degrades to an unpoked subscription rather than an error.
  int owned = -1;
  if (fd >= 0) owned = ::fcntl(fd, F_DUPFD_CLOEXEC, 0);
  std::lock_guard<std::mutex> lock(mu_);
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  wakeup_fd_ = owned;
}

}  // namespace moqo
