// OptimizerService: concurrent multi-query anytime optimization.
//
// The paper's anytime property makes IAMA a natural fit for a serving
// layer: every Optimize invocation is cheap and interruptible, so many
// queries can share one machine and each still converges to an
// α-approximate Pareto frontier. The service admits queries (Submit),
// runs a fair scheduler that interleaves single IamaSession steps across
// all admitted sessions, and streams every FrontierSnapshot to a
// per-query observer — each query's frontier improves incrementally
// while total worker usage stays bounded.
//
// Concurrency model. One scheduler thread executes all optimizer steps,
// strictly serialized; intra-step parallelism comes from one shared
// ThreadPool injected into every per-query IncrementalOptimizer via
// OptimizerOptions::pool (the pool's ParallelFor is not reentrant, so
// serialized stepping is required, not just convenient). Because each
// session's own sequence of Step() calls is independent of how sessions
// are interleaved, service frontiers are bit-identical to running every
// query alone (service_test asserts this, including under TSan).
//
// Scheduling. Round-robin over admitted sessions; a session's `priority`
// is the number of consecutive steps it gets per turn, and an optional
// per-query deadline (wall clock from admission) expires sessions that
// cannot finish in time — they keep their last (coarser) frontier, which
// is exactly the anytime contract.
//
// Caching. A small LRU cache maps a canonicalized query (join graph +
// metric set + the options that affect the result) to its final
// frontier; repeated submissions skip re-optimization entirely and
// return the cached frontier, which equals the fresh run bit for bit
// because optimization is deterministic. The cache fills when a session
// completes: duplicates submitted while the first copy is still in
// flight are not coalesced — each runs on its own.
#ifndef MOQO_SERVICE_OPTIMIZER_SERVICE_H_
#define MOQO_SERVICE_OPTIMIZER_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "catalog/catalog.h"
#include "core/iama.h"
#include "plan/cost_model.h"
#include "query/query.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace moqo {

// Service-wide ticket for one submitted query. 0 is never issued.
using QueryId = uint64_t;
inline constexpr QueryId kInvalidQueryId = 0;

struct ServiceOptions {
  // Size of the shared worker pool used by every session's phase-2
  // enumeration. Must be >= 1; 1 keeps sessions on the serial path.
  int num_threads = 1;
  // Capacity (entries) of the LRU frontier cache; 0 disables caching.
  size_t frontier_cache_capacity = 64;
  // How many finished QueryResults are retained for Wait(); the oldest
  // are dropped beyond this (a soft cap: results with a Wait() call in
  // progress are never evicted). 0 = unlimited (unbounded memory on a
  // long-running service — only for tests/tools). Wait() on a dropped id
  // reports it as unknown.
  size_t result_retention = 1024;
  // Cost model configuration shared by all queries of this service.
  // (These are service-wide constants, so they do not participate in the
  // per-query cache key.)
  MetricSchema schema = MetricSchema::Standard3();
  CostModelParams cost_params;
  OperatorOptions operator_options;
};

struct SubmitOptions {
  IamaOptions iama;
  // Total session steps to run; 0 means schedule.NumLevels() — one sweep
  // from resolution 0 to rM. Must be >= 0.
  int max_iterations = 0;
  // Steps granted per scheduler turn (weighted round-robin); >= 1.
  int priority = 1;
  // Wall-clock budget in ms, measured from admission; 0 = no deadline.
  // An expired session completes with whatever frontier it last
  // produced — possibly none, if no step ran before the deadline.
  double deadline_ms = 0.0;
};

// Terminal states as reported by Wait(); kQueued is only ever seen as
// the default of a QueryResult for an unknown id — in-flight sessions
// are not observable through results.
enum class QueryState {
  kQueued,     // Not finished (only on unknown-id results).
  kDone,       // Ran all requested iterations (or served from cache).
  kCancelled,  // Cancel() before completion.
  kExpired,    // Deadline elapsed before all iterations ran.
};

struct QueryResult {
  QueryId id = kInvalidQueryId;  // kInvalidQueryId = unknown query id.
  QueryState state = QueryState::kQueued;
  int iterations = 0;     // Session steps actually executed.
  bool from_cache = false;
  // The last snapshot produced (the final frontier for kDone). Plan ids
  // inside refer to the session's (freed) arena — treat them as opaque
  // tags; the cost vectors and order/resolution fields are the payload.
  FrontierSnapshot frontier;
};

struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t cancelled = 0;
  uint64_t expired = 0;
  uint64_t cache_hits = 0;
  uint64_t steps_executed = 0;
};

// Cache key for a submission: canonicalized join graph (aliases and the
// query name dropped, join endpoints orientation-normalized — but join
// *sequence* preserved, since predicate indices feed the interesting-
// order tags and renumbering them could change the frontier), metric
// set, and every submit-level option that affects the result. Thread
// counts are deliberately excluded: the parallel engine is frontier-
// equivalent, so runs at different thread counts share cache lines.
std::string CanonicalQueryKey(const Query& query, const MetricSchema& schema,
                              const SubmitOptions& options);

class OptimizerService {
 public:
  // Observes one query's frontier stream. Invoked with the service mutex
  // released, from the scheduler thread (or from inside Submit for cache
  // hits) — observers may Submit or Cancel, but must not Wait.
  using SnapshotObserver =
      std::function<void(QueryId, const FrontierSnapshot&)>;

  // `catalog` must outlive the service and not be mutated while the
  // service is alive.
  OptimizerService(const Catalog& catalog, ServiceOptions options);
  // Cancels all unfinished sessions, joins the scheduler, and blocks
  // until every Wait() call already in progress has returned. (As with
  // any object, *starting* a new call concurrently with destruction is
  // still a caller error.)
  ~OptimizerService();

  OptimizerService(const OptimizerService&) = delete;
  OptimizerService& operator=(const OptimizerService&) = delete;

  // Admits a query. Validates the query against the catalog and the
  // submit options (user input ⇒ Status, not CHECK). On success the
  // returned id is immediately schedulable; snapshots stream to
  // `observer` as the session is stepped.
  StatusOr<QueryId> Submit(const Query& query, SubmitOptions options = {},
                           SnapshotObserver observer = nullptr);

  // Requests cancellation; returns false if the query is unknown or
  // already finished. After a true return, Wait() observes kCancelled —
  // even if the session's last step completed concurrently (the
  // cancellation flag is re-checked before the result is finalized).
  bool Cancel(QueryId id);

  // Blocks until the query finishes (done, cancelled, or expired) and
  // returns its result; repeat calls return the same result. Unknown ids
  // yield a result with id == kInvalidQueryId.
  QueryResult Wait(QueryId id);

  ServiceStats stats() const;
  int threads() const { return options_.num_threads; }
  // Threads currently blocked inside Wait() (diagnostics; also lets
  // tests establish that a waiter is registered before racing it).
  int active_waiters() const;

 private:
  struct SessionState;

  // Finished results and cache entries share one immutable snapshot, so
  // finalization never deep-copies plan vectors while holding mu_.
  struct CacheEntry {
    std::shared_ptr<const FrontierSnapshot> frontier;
    int iterations = 0;
  };

  struct StoredResult {
    QueryId id = kInvalidQueryId;
    QueryState state = QueryState::kQueued;
    int iterations = 0;
    bool from_cache = false;
    std::shared_ptr<const FrontierSnapshot> frontier;
  };

  void SchedulerLoop();
  // Builds the session's factory + IamaSession (first scheduling turn).
  void BuildSession(SessionState* s);
  // Stores a terminal result, evicting the oldest beyond
  // result_retention, and wakes waiters. Requires mu_ held.
  void RecordResultLocked(StoredResult result);
  // Records the terminal result, frees the session, and fills the cache
  // (kDone only). Requires mu_ held.
  void FinalizeLocked(SessionState* s, QueryState state);

  const Catalog& catalog_;
  const ServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // Shared pool; null if 1 thread.

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // Scheduler sleeps when queue empty.
  std::condition_variable done_cv_;  // Wait() blocks here.
  std::condition_variable waiters_cv_;  // Destructor drains Wait() calls.
  bool stop_ = false;
  int waiters_ = 0;  // Threads currently inside Wait().
  // Per-id Wait() calls in progress; such results are not evicted.
  std::unordered_map<QueryId, int> wait_counts_;
  QueryId next_id_ = 1;
  std::unordered_map<QueryId, std::unique_ptr<SessionState>> sessions_;
  std::deque<QueryId> run_queue_;  // Round-robin order.
  std::unordered_map<QueryId, StoredResult> results_;
  std::deque<QueryId> results_order_;  // Finish order, for retention.
  ServiceStats stats_;

  // LRU frontier cache: list front = most recent; map values point into
  // the list. Guarded by mu_.
  std::list<std::pair<std::string, CacheEntry>> cache_lru_;
  std::unordered_map<std::string, decltype(cache_lru_)::iterator>
      cache_index_;

  std::thread scheduler_;  // Last member: starts after state is ready.
};

}  // namespace moqo

#endif  // MOQO_SERVICE_OPTIMIZER_SERVICE_H_
