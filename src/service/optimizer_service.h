/// \file
/// OptimizerService: sharded concurrent multi-query anytime optimization.
///
/// The paper's anytime property makes IAMA a natural fit for a serving
/// layer: every Optimize invocation is cheap and interruptible, so many
/// queries can share one machine and each still converges to an
/// α-approximate Pareto frontier. The service admits queries (Submit),
/// schedules them across N scheduler shards that interleave single
/// IamaSession steps, and streams every FrontierSnapshot to a per-query
/// observer — each query's frontier improves incrementally while total
/// worker usage stays bounded.
///
/// **Concurrency model.** `ServiceOptions::num_shards` scheduler threads
/// each own a weighted round-robin run queue and a private partition of
/// the worker budget (`ServiceOptions::num_threads`, split via
/// PartitionThreads). A run is placed on a shard by hashing its canonical
/// query key; an idle shard steals queued runs from the busiest other
/// shard and adopts them (a stolen run re-enqueues on its new shard
/// until stolen again), so one shard's long-running sessions cannot
/// head-of-line-block small queries admitted elsewhere. Exactly one shard thread steps a
/// given run at a time (a run is never in two queues, and a stepping
/// shard holds the run outside every queue), and the stepping thread
/// rebinds the session to its own pool partition first
/// (IamaSession::RebindPool) — so each pool's non-reentrant ParallelFor
/// always has exactly one caller. Because each session's sequence of
/// Step() calls is independent of how runs are interleaved, placed, or
/// stolen, and thread counts never affect frontiers, service results are
/// bit-identical to running every query alone for every shard count
/// (service_test asserts this for shards {1, 2, 4}, including under
/// TSan).
///
/// **Scheduling.** Weighted round-robin per shard; a run's `priority`
/// (the maximum across the queries attached to it) is the number of
/// consecutive steps it gets per turn, and an optional per-query
/// deadline (wall clock from
/// admission) expires queries that cannot finish in time — they keep
/// their last (coarser) frontier, which is exactly the anytime contract.
/// Deadlines are checked between every step for a run's leader and at
/// both boundaries of every turn for coalesced followers.
///
/// **Caching and coalescing.** A small LRU cache maps a canonicalized
/// query (join graph + metric set + the options that affect the result)
/// to its final frontier; repeated submissions skip re-optimization
/// entirely and return the cached frontier, which equals the fresh run
/// bit for bit because optimization is deterministic. The cache fills
/// when a run completes. Duplicates submitted while the first copy is
/// still *in flight* coalesce instead: the new submission attaches to
/// the running leader as a follower, shares its snapshots and final
/// frontier, and performs no optimization work of its own. A follower
/// keeps its own deadline/cancel semantics and result entry, and its
/// priority raises the shared run's turn weight (max across riders).
/// If the leader is cancelled or expires with live followers, the oldest
/// follower is promoted to leader and the run continues where it left
/// off (no work is lost or redone). ApplyBounds() re-bounds a running
/// query mid-flight; since the re-bounded result no longer corresponds
/// to the canonical key, such a run is marked diverged — it stops
/// accepting new followers and never fills the cache.
///
/// **Fragment sharing.** Cache and coalescing only help bit-identical
/// queries; ServiceOptions::fragment_cache_bytes additionally enables a
/// cross-query store of *sub-join-graph* Pareto frontiers
/// (FragmentStore, docs/FRAGMENT_SHARING.md): a completed, non-diverged
/// run publishes every connected multi-table cell's frontier under a
/// canonical sub-join-graph key, and a later run whose query overlaps
/// seeds those cells instead of enumerating them. Seeded runs still
/// step normally (the anytime snapshot stream is preserved) but skip
/// the sealed cells' enumeration work — visible in
/// QueryResult::plans_generated / pairs_generated — and their frontiers
/// remain bit-identical to cold sequential runs. Diverged (re-bounded)
/// runs never publish, and a seeded run that diverges automatically
/// falls back to full enumeration (correct, but no longer bit-identical
/// to a cold diverged run).
///
/// **Catalog refresh.** Statistics drift; serving frontiers computed
/// from dead cardinalities is a correctness bug, not a staleness
/// nuisance. Every run pins an immutable CatalogSnapshot at admission
/// and optimizes on it for its whole lifetime; RefreshCatalog()
/// republishes the live catalog's current state: it re-pins the
/// service's admission snapshot, bumps the fragment-store epoch,
/// drops the whole-query cache (whose keys are version-guarded via
/// CanonicalQueryKey anyway), and marks every in-flight run *stale* —
/// stale runs finish normally on their pinned snapshot (their riders
/// get exactly the frontier a cold run on the old catalog would
/// produce) but stop accepting new followers and never publish to the
/// cache or the fragment store, mirroring the diverged-run machinery.
/// Each QueryResult carries the catalog version it was computed under.
/// See docs/CATALOG_REFRESH.md for the full protocol and its
/// guarantees.
///
/// **Admission control and streaming (the service API).** Submissions
/// arrive as one SubmitRequest (service_api.h) — the struct the network
/// wire protocol (src/net/) encodes verbatim, so remote and in-process
/// submissions take the same path. Admission enforces per-tenant
/// in-flight quotas and fair-share weights, a service-wide run bound
/// with load shedding (kShedding + retry-after) instead of unbounded
/// queueing, and a graceful-drain mode (BeginDrain) for rolling
/// restarts; every rejection returns a distinct Status code. Snapshot
/// streaming is pull-based and backpressure-safe: a subscriber owns a
/// bounded drop-oldest queue (SnapshotSubscription) the shard pushes
/// into in O(1), so a stalled consumer can never hold a shard's turn —
/// the legacy synchronous observer remains for in-process tooling that
/// guarantees not to block.
#ifndef MOQO_SERVICE_OPTIMIZER_SERVICE_H_
#define MOQO_SERVICE_OPTIMIZER_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "core/iama.h"
#include "plan/cost_model.h"
#include "query/query.h"
#include "service/fragment_store.h"
#include "service/service_api.h"
#include "service/snapshot_stream.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace moqo {

namespace dist {
class DistributedBackend;  // dist/backend.h
class DistRun;
}  // namespace dist

/// Service-wide configuration, fixed at construction.
struct ServiceOptions {
  /// Total worker budget shared by all sessions' phase-2 enumeration,
  /// split across the scheduler shards via PartitionThreads. Must be
  /// >= 1. A shard whose partition is 1 steps its sessions serially on
  /// the scheduler thread itself.
  int num_threads = 1;
  /// Number of scheduler shards (threads stepping sessions). Must be
  /// >= 1. More shards let more sessions step truly concurrently;
  /// num_shards > num_threads oversubscribes the worker budget (each
  /// shard always keeps at least its own thread).
  int num_shards = 1;
  /// Attach duplicate in-flight submissions to the running leader
  /// instead of optimizing them a second time. Disable to force every
  /// submission onto its own run (e.g. for scheduling benchmarks).
  bool coalesce_in_flight = true;
  /// Capacity (entries) of the LRU frontier cache; 0 disables caching.
  size_t frontier_cache_capacity = 64;
  /// How many finished QueryResults are retained for Wait(); the oldest
  /// are dropped beyond this (a soft cap: results with a Wait() call in
  /// progress are never evicted). 0 = unlimited (unbounded memory on a
  /// long-running service — only for tests/tools). Wait() on a dropped
  /// id reports it as unknown.
  size_t result_retention = 1024;
  /// Byte budget of the cross-query plan-fragment store
  /// (docs/FRAGMENT_SHARING.md): completed runs publish their per-sub-
  /// join-graph Pareto frontiers, and later runs whose queries overlap
  /// seed the shared cells instead of enumerating them. One store is
  /// shared by all scheduler shards. 0 disables fragment sharing.
  size_t fragment_cache_bytes = 0;
  /// Whether completed, non-diverged runs publish their cells back to
  /// the fragment store. Disable to run the store read-only (e.g. a
  /// pre-warmed benchmark). No effect while the store is disabled.
  bool fragment_publish = true;
  /// Smallest sub-join-graph (in tables) stored or seeded; clamped to
  /// >= 2. Larger values trade hit opportunities for fewer, bigger
  /// fragments.
  int fragment_min_tables = 2;
  /// Path of the fragment store's persistent cold tier (an append-only
  /// log of serialized fragments, docs/FRAGMENT_PERSISTENCE.md). Empty
  /// keeps the store DRAM-only. With a path, the service replays the
  /// log at construction — a restarted `optimizerd --store-path` warm-
  /// starts with frontiers bit-identical to the previous process's —
  /// and fragments evicted from the hot byte budget remain servable
  /// from disk. No effect while fragment_cache_bytes is 0. I/O failure
  /// degrades the store to DRAM-only instead of failing construction
  /// (see FragmentStore::cold_status()).
  std::string fragment_store_path;
  /// Cold-tier live-byte budget (FragmentStore::Options::
  /// cold_budget_bytes): oldest-first demotion-to-drop once the
  /// persistent log's live bytes exceed it. 0 = unlimited. No effect
  /// without fragment_store_path.
  size_t fragment_cold_budget_bytes = 0;
  /// Durability policy for the fragment log (optimizerd --fsync=...).
  FragmentFsyncMode fragment_fsync = FragmentFsyncMode::kNone;
  /// Tick period of FragmentFsyncMode::kInterval, in milliseconds.
  int fragment_fsync_interval_ms = 100;
  /// Admission backpressure: the maximum number of physical runs (live
  /// optimizations, queued or stepping) the service holds at once.
  /// A Submit that would create a run beyond this bound is load-shed
  /// with kShedding and a retry-after hint instead of queueing
  /// unboundedly — the overload contract a network front end needs.
  /// Cache hits and coalesced followers are always admitted (they
  /// create no run). 0 = unlimited (in-process/test use).
  size_t max_inflight_runs = 0;
  /// Base of the kShedding retry-after hint: the hint is this value
  /// times the number of runs currently waiting in shard queues (at
  /// least 1) — a crude but monotone estimate of backlog drain time.
  double shed_retry_hint_ms = 25.0;
  /// Ceiling on one submission's total session steps (the resolved
  /// max_iterations — an explicit request or the schedule's level
  /// count); submissions above it are rejected with kInvalidArgument.
  /// Admission backpressure (max_inflight_runs / kShedding) bounds how
  /// many runs exist, but not how long each occupies its slot — without
  /// this ceiling a network client can park a near-infinite run in a
  /// slot and starve admission for everyone. 0 = unlimited (in-process/
  /// test use); optimizerd sets a bound by default.
  int max_iterations_limit = 0;
  /// Admission limits for tenants without an entry in `tenant_quotas`.
  TenantQuota default_quota;
  /// Per-tenant admission limits and fair-share weights, keyed by
  /// SubmitRequest::tenant.
  std::unordered_map<std::string, TenantQuota> tenant_quotas;
  /// Metric schema shared by all queries of this service. (A service-
  /// wide constant, so it does not participate in the per-query cache
  /// key.)
  MetricSchema schema = MetricSchema::Standard3();
  /// Cost model parameters shared by all queries (service-wide).
  CostModelParams cost_params;
  /// Operator library configuration shared by all queries (service-wide).
  OperatorOptions operator_options;
  /// Distributed enumeration tier (docs/DISTRIBUTED.md): non-null routes
  /// eligible queries' phase-2 enumeration through the backend's
  /// coordinator/worker exchange. The backend must outlive the service.
  /// Distribution is frontier-transparent — a distributed run's result
  /// is bit-identical to the local run's — so it participates in no
  /// cache key. Distributed runs never seed from or publish to the
  /// fragment store (replica lockstep excludes pre-seeded cells).
  dist::DistributedBackend* distributed_backend = nullptr;
  /// Smallest query (in tables) routed to the distributed tier; smaller
  /// queries always run locally — per-level exchange round trips dwarf
  /// small enumerations. 0 disables routing even with a backend set.
  int distributed_min_tables = 0;
};

/// Cache/placement key for a submission: canonicalized join graph
/// (aliases and the query name dropped, join endpoints orientation-
/// normalized — but join *sequence* preserved, since predicate indices
/// feed the interesting-order tags and renumbering them could change the
/// frontier), metric set, the catalog version the submission is
/// admitted under, and every submit-level option that affects the
/// result. Folding in `catalog_version` makes the whole-query cache and
/// in-flight coalescing refresh-safe: submissions from different
/// catalog generations can never match, so a frontier computed on dead
/// cardinalities is unreachable after RefreshCatalog(). Thread counts
/// are deliberately excluded: the parallel engine is
/// frontier-equivalent, so runs at different thread counts share
/// cache lines. The same key drives shard placement and in-flight
/// coalescing, so duplicates land on the same shard and attach to the
/// same leader.
std::string CanonicalQueryKey(const Query& query, const MetricSchema& schema,
                              const SubmitRequest& request,
                              uint64_t catalog_version);

/// Legacy-options overload of CanonicalQueryKey.
/// \deprecated Use the SubmitRequest overload.
std::string CanonicalQueryKey(const Query& query, const MetricSchema& schema,
                              const SubmitOptions& options,
                              uint64_t catalog_version);

/// The sharded multi-query serving layer; see the file comment for the
/// full design (shards, stealing, coalescing, caching).
class OptimizerService {
 public:
  /// The legacy synchronous observer type; see moqo::SnapshotObserver
  /// for the contract (kept as a nested alias for source compatibility).
  using SnapshotObserver = moqo::SnapshotObserver;

  /// Starts the shard threads, pinning `catalog`'s current snapshot for
  /// admissions. `catalog` must outlive the service; it may be mutated
  /// while the service runs (Catalog is thread-safe), but mutations
  /// become visible to new submissions only through RefreshCatalog().
  OptimizerService(const Catalog& catalog, ServiceOptions options);
  /// Cancels all unfinished queries, joins the shard threads, and blocks
  /// until every Wait() call already in progress has returned. (As with
  /// any object, *starting* a new call concurrently with destruction is
  /// still a caller error.)
  ~OptimizerService();

  /// Not copyable: the service owns threads, queues, and live runs.
  OptimizerService(const OptimizerService&) = delete;
  /// Not copy-assignable (same ownership reasons).
  OptimizerService& operator=(const OptimizerService&) = delete;

  /// Admits a submission — the single entry point shared by in-process
  /// callers and the network front end (the wire codec encodes exactly
  /// this struct). Validates the query against the catalog and every
  /// option (user input ⇒ Status, not CHECK), applies admission control
  /// (see the error taxonomy in service_api.h: kQuotaExceeded for a
  /// tenant at its in-flight quota, kShedding with a retry-after hint
  /// when max_inflight_runs is reached, kDraining after BeginDrain),
  /// and on success returns the schedulable id plus what admission
  /// decided (cache hit, coalesced, subscription). A submission whose
  /// canonical key matches a completed run returns its cached frontier
  /// without optimizing; one matching a run still in flight attaches to
  /// it as a follower (see the file comment).
  StatusOr<SubmitResponse> Submit(SubmitRequest request);

  /// Legacy positional Submit.
  /// \deprecated Shim over Submit(SubmitRequest); use that directly.
  StatusOr<QueryId> Submit(const Query& query, SubmitOptions options = {},
                           SnapshotObserver observer = nullptr);

  /// Requests cancellation; returns false if the query is unknown or
  /// already finished. After a true return, Wait() observes kCancelled —
  /// even if the run's last step completed concurrently (the
  /// cancellation flag is re-checked before the result is finalized).
  /// Cancelling a follower detaches only that follower; cancelling a
  /// leader with live followers hands leadership to the oldest follower
  /// and the run continues for them.
  bool Cancel(QueryId id);

  /// Re-bounds an in-flight query — the service form of the paper's
  /// interactive bounds drag. The new bounds take effect at the run's
  /// next scheduler-turn boundary (a run mid-turn finishes its up-to-
  /// `priority` steps under the old bounds first): the resolution
  /// resets to 0 and all previously
  /// generated plans are reused (IamaSession::SetBounds). The boundary
  /// is guaranteed to exist — accepted bounds are never dropped: if the
  /// run's final step was already in flight, the run takes one more
  /// turn and steps at least once under the new bounds before
  /// completing (QueryResult::iterations then exceeds max_iterations by
  /// those extra steps). Bounds apply
  /// to the whole run — a coalesced run is one shared interactive
  /// session, so leader and followers all observe the re-bounded
  /// stream — and mark it diverged: it stops accepting new followers
  /// and its final frontier never enters the cache. Returns NotFound
  /// for unknown/finished ids (including cache-hit submissions, which
  /// finish instantly) and InvalidArgument when `bounds` does not match
  /// the service metric schema.
  Status ApplyBounds(QueryId id, const CostVector& bounds);

  /// Blocks until the query finishes (done, cancelled, or expired) and
  /// returns its result; repeat calls return the same result. Unknown
  /// ids yield a result with id == kInvalidQueryId.
  QueryResult Wait(QueryId id);

  /// Publishes the live catalog's current state to the service — the
  /// statistics-refresh protocol (docs/CATALOG_REFRESH.md). Atomically
  /// (under the service mutex): re-pins the admission snapshot, bumps
  /// the fragment-store epoch so stored fragments from the old
  /// generation can never be seeded again, drops the whole-query
  /// frontier cache (its keys are version-guarded regardless — dropping
  /// just frees the dead entries now), and marks every in-flight run
  /// stale. Stale runs finish on the snapshot they pinned at admission
  /// — bit-identical to a cold run on the old catalog — but accept no
  /// new followers and never publish to the cache or fragment store.
  /// Submissions admitted after RefreshCatalog returns optimize on the
  /// new statistics and provably re-optimize (cache and fragment keys
  /// cannot match any pre-refresh entry). A refresh that observes no
  /// version change is a no-op. Returns the catalog version now serving
  /// admissions. Thread-safe; may race Submit/Cancel/Wait freely.
  uint64_t RefreshCatalog();

  /// The catalog version new submissions are currently admitted under
  /// (advances only via RefreshCatalog, not on catalog mutation).
  uint64_t catalog_version() const;

  /// Starts a graceful drain for rolling restarts: every subsequent
  /// Submit is rejected with kDraining, while queries already admitted
  /// run to their normal terminal state and stay Wait()able. Idempotent;
  /// there is no un-drain (restart the process instead — that is the
  /// use case). Cancel/ApplyBounds/Wait/stats keep working throughout.
  void BeginDrain();
  /// True once BeginDrain() was called.
  bool draining() const;
  /// Blocks until no admitted query is unfinished — after BeginDrain()
  /// this is the "safe to stop the process" signal. Without a preceding
  /// BeginDrain it still waits for a momentarily idle service, but new
  /// Submits can race it.
  void WaitIdle();

  /// Snapshot of the monotonic service counters.
  ServiceStats stats() const;
  /// Total worker budget (ServiceOptions::num_threads).
  int threads() const { return options_.num_threads; }
  /// Number of scheduler shards (ServiceOptions::num_shards).
  int shards() const { return options_.num_shards; }
  /// The cross-query fragment store shared by all shards, or nullptr
  /// when disabled (ServiceOptions::fragment_cache_bytes == 0). Thread-
  /// safe; exposed for diagnostics and for epoch bumps on catalog
  /// refresh (FragmentStore::BumpEpoch).
  FragmentStore* fragment_store() const { return fragment_store_.get(); }
  /// Threads currently blocked inside Wait() (diagnostics; also lets
  /// tests establish that a waiter is registered before racing it).
  int active_waiters() const;

 private:
  struct QueryEntry;
  struct RunState;

  // Finished results and cache entries share one immutable snapshot, so
  // finalization never deep-copies plan vectors while holding mu_.
  struct CacheEntry {
    std::shared_ptr<const FrontierSnapshot> frontier;
    int iterations = 0;
    // Version of the caching run's pinned snapshot; the key guards it,
    // this mirror just tags cache-hit results.
    uint64_t catalog_version = 0;
  };

  struct StoredResult {
    QueryId id = kInvalidQueryId;
    QueryState state = QueryState::kQueued;
    int iterations = 0;
    bool from_cache = false;
    bool coalesced = false;
    uint64_t plans_generated = 0;
    uint64_t pairs_generated = 0;
    uint64_t catalog_version = 0;
    std::shared_ptr<const FrontierSnapshot> frontier;
  };

  // A follower observer owed the final frontier at completion.
  struct LateDelivery {
    QueryId id = kInvalidQueryId;
    SnapshotObserver observer;
    std::shared_ptr<const FrontierSnapshot> frontier;
  };

  void SchedulerLoop(size_t shard);
  // True when any shard queue holds a run. Requires mu_ held.
  bool AnyQueuedLocked() const;
  // Pops the next run for `shard`: its own queue's front, else a steal
  // from the back of the largest other queue. Requires mu_ held and
  // AnyQueuedLocked().
  uint64_t PopRunLocked(size_t shard);
  // Builds the run's factory + IamaSession (first stepping turn).
  void BuildRun(RunState* run);
  // Stores a terminal result, evicting the oldest beyond
  // result_retention, and wakes waiters. Requires mu_ held.
  void RecordResultLocked(StoredResult result);
  // Records `entry`'s terminal result (bumping the matching stats
  // counter) and erases the entry. `plans`/`pairs` are the run's work
  // counters as of its latest turn boundary. Requires mu_ held.
  void FinalizeEntryLocked(QueryEntry* entry, QueryState state,
                           std::shared_ptr<const FrontierSnapshot> frontier,
                           int iterations, uint64_t plans, uint64_t pairs);
  // Finalizes every follower whose own deadline has passed. Requires
  // mu_ held.
  void SweepExpiredFollowersLocked(RunState* run,
                                   std::chrono::steady_clock::time_point now);
  // Completes a run in state kDone: finalizes every attached query,
  // fills the cache (unless diverged), collects final-frontier
  // deliveries for observers that saw no snapshot, and destroys the
  // run. Requires mu_ held.
  void CompleteRunLocked(RunState* run,
                         std::vector<LateDelivery>* deliveries);
  // Finalizes the current leader in `state` and promotes the oldest
  // follower to leader; returns false when no follower remains (the
  // run is destroyed). Requires mu_ held.
  bool RetireLeaderLocked(RunState* run, QueryState state);
  // Removes the run from the in-flight index (if it is still the
  // index's entry for its key) and frees it. Requires mu_ held.
  void DestroyRunLocked(RunState* run);

  const Catalog& catalog_;
  const ServiceOptions options_;
  // The snapshot new submissions pin (guarded by mu_); replaced only by
  // RefreshCatalog. Runs keep their own reference, so replacing it
  // never invalidates an in-flight session.
  std::shared_ptr<const CatalogSnapshot> catalog_snapshot_;
  // Per-shard worker pools (null where the partition size is 1). A
  // stepping shard rebinds the run's session to its own pool, so each
  // pool has exactly one ParallelFor caller at any time.
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  // One cross-query fragment store for all shards (internally sharded;
  // thread-safe); null when fragment_cache_bytes == 0.
  std::unique_ptr<FragmentStore> fragment_store_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // Shards sleep when no queue has work.
  std::condition_variable done_cv_;  // Wait() blocks here.
  std::condition_variable waiters_cv_;  // Destructor drains Wait() calls.
  bool stop_ = false;
  bool draining_ = false;  // BeginDrain(): admission closed for good.
  // Unfinished queries per tenant (leaders + followers; cache hits never
  // enter). Entries are erased at zero so the map tracks live tenants,
  // not every tenant name ever seen.
  std::unordered_map<std::string, int> tenant_inflight_;
  // Cumulative fragment-store warm hits per tenant: cells seeded (not
  // enumerated) by runs the tenant founded, credited once per run at
  // its first turn boundary and reported back on every admission
  // (SubmitResponse::tenant_fragment_hits). Unlike tenant_inflight_,
  // entries persist for the service lifetime — the counter is
  // monotonic telemetry, not an admission gauge.
  std::unordered_map<std::string, uint64_t> tenant_fragment_hits_;
  int waiters_ = 0;  // Threads currently inside Wait().
  // Per-id Wait() calls in progress; such results are not evicted.
  std::unordered_map<QueryId, int> wait_counts_;
  QueryId next_id_ = 1;
  uint64_t next_run_id_ = 1;
  std::unordered_map<QueryId, std::unique_ptr<QueryEntry>> entries_;
  std::unordered_map<uint64_t, std::unique_ptr<RunState>> runs_;
  // Canonical key -> run id of the non-diverged in-flight run new
  // duplicates attach to. Maintained only when coalescing is enabled.
  std::unordered_map<std::string, uint64_t> inflight_;
  std::vector<std::deque<uint64_t>> shard_queues_;  // Round-robin per shard.
  std::unordered_map<QueryId, StoredResult> results_;
  std::deque<QueryId> results_order_;  // Finish order, for retention.
  ServiceStats stats_;

  // LRU frontier cache: list front = most recent; map values point into
  // the list. Guarded by mu_.
  std::list<std::pair<std::string, CacheEntry>> cache_lru_;
  std::unordered_map<std::string, decltype(cache_lru_)::iterator>
      cache_index_;

  std::vector<std::thread> schedulers_;  // Last: start after state is ready.
};

}  // namespace moqo

#endif  // MOQO_SERVICE_OPTIMIZER_SERVICE_H_
