#include "service/fragment_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "service/fragment_codec.h"
#include "util/str.h"

namespace moqo {
namespace {

// Canonical interesting-order tag encoding (docs/FRAGMENT_SHARING.md):
//   0        = no order;
//   1 + p    = sorted on the fragment's p-th internal predicate
//              (sequence position among the predicates internal to the
//              cell, in query join order), p <= 126;
//   128 + k  = sorted on an external predicate incident to the cell's
//              k-th table (ascending local index). External predicates
//              touch exactly one fragment table, so k identifies the
//              class; the consumer maps it back to its own first
//              incident predicate.
constexpr int kMaxInternalOrderPos = 126;
constexpr int kExternalOrderBase = 128;

// Per-entry LRU overhead estimate (list/map nodes, shared_ptr control
// block) on top of the key string and the fragment payload.
constexpr size_t kEntryOverheadBytes = 128;

// Log-record framing overhead (u32 length + u32 crc) plus the type byte;
// a cold Entry's payload starts this far into its framed record.
constexpr size_t kLogHeaderBytes = 9;

// Initial/minimum mmap'd capacity of the persistence log. The file is
// grown by doubling (ftruncate + remap) and trimmed back to its used
// length on clean shutdown.
constexpr size_t kMinLogCapacityBytes = 64 * 1024;

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(std::string(op) + " " + path + ": " +
                          std::strerror(errno));
}

// write() the whole buffer, retrying on EINTR and short writes.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// --- FragmentStore ----------------------------------------------------------

struct FragmentStore::Shard {
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const StoredFragment>>>;

  std::mutex mu;
  LruList lru;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index;
  size_t bytes = 0;
};

// The cold tier: an append-only log of framed codec records, mmap'd
// MAP_SHARED so appended bytes survive SIGKILL without an explicit
// flush, plus an in-memory index over the live fragment records. All
// fields are guarded by `mu` after construction (OpenAndReplay runs
// single-threaded in the ctor). The background worker is the only
// appender; Lookup only reads record bytes and drops stale entries.
struct FragmentStore::Cold {
  struct Entry {
    size_t offset = 0;   // Framed record start within the log.
    size_t bytes = 0;    // Framed record size (header included).
    int resolution = 0;  // resolution_complete, for coarse-skip checks.
    uint64_t epoch = 0;  // Publish epoch, for staleness checks.
  };

  mutable std::mutex mu;
  Status status;  // Sticky first I/O error; cold tier is dead when !ok().
  int fd = -1;
  char* map = nullptr;
  size_t map_len = 0;  // mmap'd capacity == file size (until final trim).
  size_t used = 0;     // Append offset; bytes beyond are zeroed capacity.
  std::unordered_map<std::string, Entry> index;
  size_t dead_bytes = 0;  // Superseded/stale/skipped framed bytes.
  size_t last_epoch_record_bytes = 0;  // Latest epoch record (live bytes).
  // Gauged/monotonic cold counters (reported via Stats()).
  uint64_t appends = 0;
  uint64_t compactions = 0;
  uint64_t decode_errors = 0;
  uint64_t stale_dropped = 0;
  uint64_t replayed = 0;
  size_t torn_bytes = 0;
  uint64_t budget_dropped = 0;  // Live entries dropped by the byte budget.
  uint64_t syncs = 0;           // msync calls (fsync policy).
  size_t synced_used = 0;       // Log bytes already pushed to stable storage.
};

FragmentStore::FragmentStore(Options options) : options_(std::move(options)) {
  MOQO_CHECK(options_.num_shards >= 1);
  shard_capacity_ =
      options_.capacity_bytes / static_cast<size_t>(options_.num_shards);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  options_.compact_dead_fraction =
      std::min(1.0, std::max(0.05, options_.compact_dead_fraction));
  options_.fsync_interval_ms = std::max(1, options_.fsync_interval_ms);
  if (!options_.store_path.empty()) {
    cold_ = std::make_unique<Cold>();
    OpenAndReplay();
    if (cold_->status.ok()) {
      cold_active_.store(true, std::memory_order_release);
      worker_ = std::thread([this] { WorkerLoop(); });
    }
  }
}

FragmentStore::~FragmentStore() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    worker_.join();  // The worker drains the queue before exiting.
  }
  if (cold_ != nullptr) {
    std::lock_guard<std::mutex> lock(cold_->mu);
    if (cold_->map != nullptr) ::munmap(cold_->map, cold_->map_len);
    if (cold_->fd >= 0) {
      // Trim growth capacity (and any zeroed torn tail) so a clean
      // shutdown leaves a log that is exactly its records.
      if (::ftruncate(cold_->fd, static_cast<off_t>(cold_->used)) != 0) {
        // Best-effort: an untrimmed tail replays as zero bytes.
      }
      ::close(cold_->fd);
    }
  }
}

FragmentStore::Shard& FragmentStore::ShardFor(const std::string& key) {
  return *shards_[Fnv1a64(key) % shards_.size()];
}

bool FragmentStore::HotInsert(const std::string& key,
                              std::shared_ptr<const StoredFragment> fragment,
                              bool count_publish) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard_capacity_ == 0) {
    if (count_publish) publish_ignored_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const size_t entry_bytes =
      key.size() + fragment->ApproxBytes() + kEntryOverheadBytes;
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace only with a strictly finer run; a coarser or equal
    // publication carries no new information (prefix property).
    if (it->second->second->resolution_complete >=
        fragment->resolution_complete) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (count_publish) {
        publish_ignored_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    // Release the replaced entry's bytes before charging the new ones —
    // replacement must never inflate the gauge past the budget.
    shard.bytes -= key.size() + it->second->second->ApproxBytes() +
                   kEntryOverheadBytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.emplace_front(key, std::move(fragment));
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += entry_bytes;
  if (count_publish) publishes_.fetch_add(1, std::memory_order_relaxed);
  // Enforce the byte budget from the LRU tail. A fragment larger than
  // the whole shard budget evicts everything including itself — the
  // store never over-retains. With a healthy cold tier every eviction is
  // a demotion: publish is write-behind, so the victim is already in the
  // log (or in the queue ahead of any future reader's miss).
  const bool demote = cold_active_.load(std::memory_order_relaxed);
  while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
    const auto& victim = shard.lru.back();
    shard.bytes -= victim.first.size() + victim.second->ApproxBytes() +
                   kEntryOverheadBytes;
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (demote) demotions_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

std::shared_ptr<const StoredFragment> FragmentStore::Lookup(
    const std::string& key, int min_resolution) {
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end() &&
        it->second->second->resolution_complete >= min_resolution) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->second;
    }
  }
  // Hot miss: consult the cold tier. Record bytes are copied out under
  // the cold mutex (compaction may move the log underneath) and decoded
  // outside it.
  const uint64_t current_epoch = epoch_.load(std::memory_order_relaxed);
  std::string payload;
  size_t entry_offset = 0;
  bool have_record = false;
  if (cold_ != nullptr) {
    std::lock_guard<std::mutex> lock(cold_->mu);
    auto it = cold_->index.find(key);
    if (it != cold_->index.end() && cold_->status.ok()) {
      const Cold::Entry& e = it->second;
      if (e.epoch != current_epoch) {
        // Raced past the bump sweep: lazily invalidate now.
        cold_->dead_bytes += e.bytes;
        cold_->stale_dropped += 1;
        cold_->index.erase(it);
      } else if (e.resolution >= min_resolution) {
        payload.assign(cold_->map + e.offset + kLogHeaderBytes,
                       e.bytes - kLogHeaderBytes);
        entry_offset = e.offset;
        have_record = true;
      }
    }
  }
  if (!have_record) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  FragmentRecord record;
  auto fragment = std::make_shared<StoredFragment>();
  const Status decode = DecodeFragmentRecord(payload, &record, fragment.get());
  if (!decode.ok() || record.epoch != current_epoch) {
    std::lock_guard<std::mutex> lock(cold_->mu);
    auto it = cold_->index.find(key);
    // Only drop the entry we actually read (compaction moves offsets).
    if (it != cold_->index.end() && it->second.offset == entry_offset) {
      cold_->dead_bytes += it->second.bytes;
      if (!decode.ok()) {
        cold_->decode_errors += 1;
      } else {
        cold_->stale_dropped += 1;
      }
      cold_->index.erase(it);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  cold_hits_.fetch_add(1, std::memory_order_relaxed);
  if (HotInsert(key, fragment, /*count_publish=*/false)) {
    promotions_.fetch_add(1, std::memory_order_relaxed);
  }
  return fragment;
}

void FragmentStore::Publish(const std::string& key,
                            std::shared_ptr<const StoredFragment> fragment) {
  MOQO_CHECK(fragment != nullptr);
  const bool inserted = HotInsert(key, fragment, /*count_publish=*/true);
  // Write-behind: an accepted publish (or any publish in a cold-only
  // configuration, where the zero hot budget rejects everything) heads
  // to the log. The worker re-checks the cold index, so a fragment the
  // log already holds at equal-or-finer resolution appends nothing.
  if ((inserted || shard_capacity_ == 0) &&
      cold_active_.load(std::memory_order_acquire)) {
    WriteTask task;
    task.epoch = epoch_.load(std::memory_order_relaxed);
    task.key = key;
    task.fragment = std::move(fragment);
    EnqueueTask(std::move(task));
  }
}

void FragmentStore::BumpEpoch() {
  const uint64_t next = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cold_active_.load(std::memory_order_acquire)) {
    WriteTask task;
    task.is_epoch = true;
    task.epoch = next;
    EnqueueTask(std::move(task));
  }
}

void FragmentStore::EnqueueTask(WriteTask task) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) return;
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void FragmentStore::Flush() {
  if (cold_ == nullptr) return;
  std::unique_lock<std::mutex> lock(queue_mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !worker_busy_; });
}

Status FragmentStore::cold_status() const {
  if (cold_ == nullptr) return Status::OK();
  std::lock_guard<std::mutex> lock(cold_->mu);
  return cold_->status;
}

bool FragmentStore::cold_enabled() const {
  return cold_ != nullptr && cold_active_.load(std::memory_order_acquire);
}

void FragmentStore::WorkerLoop() {
  const bool interval_sync =
      options_.fsync_mode == FragmentFsyncMode::kInterval;
  for (;;) {
    WriteTask task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      if (interval_sync) {
        // The sync tick rides the queue wait: wake on work, stop, or the
        // interval elapsing with dirty bytes still unsynced.
        queue_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.fsync_interval_ms),
            [this] { return stop_ || !queue_.empty(); });
      } else {
        queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      }
      if (queue_.empty()) {
        if (stop_) break;  // Fully drained; final sync below.
        // Interval tick with no queued work: sync outside queue_mu_.
        lock.unlock();
        std::lock_guard<std::mutex> cold_lock(cold_->mu);
        if (cold_->status.ok()) SyncColdLocked();
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      worker_busy_ = true;
    }
    if (task.is_epoch) {
      std::lock_guard<std::mutex> lock(cold_->mu);
      if (cold_->status.ok()) AppendEpochLocked(task.epoch);
    } else {
      // Encode outside the cold mutex; readers keep serving meanwhile.
      FragmentRecord record;
      record.key = task.key;
      record.epoch = task.epoch;
      record.catalog_version = catalog_version_.load(std::memory_order_relaxed);
      record.resolution_complete = task.fragment->resolution_complete;
      const std::string payload =
          EncodeFragmentRecord(record, *task.fragment);
      std::lock_guard<std::mutex> lock(cold_->mu);
      if (cold_->status.ok()) AppendFragmentLocked(task, payload);
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      worker_busy_ = false;
      if (queue_.empty()) drain_cv_.notify_all();
    }
  }
  if (interval_sync) {
    // Shutdown: whatever the last tick missed goes out now, so the
    // durability window never outlives the process.
    std::lock_guard<std::mutex> lock(cold_->mu);
    if (cold_->status.ok()) SyncColdLocked();
  }
}

void FragmentStore::AppendFragmentLocked(const WriteTask& task,
                                         const std::string& payload) {
  // A publish that raced an epoch bump is already invisible (its key
  // embeds the old epoch); don't persist it.
  if (task.epoch != epoch_.load(std::memory_order_relaxed)) return;
  auto it = cold_->index.find(task.key);
  if (it != cold_->index.end() && it->second.epoch == task.epoch &&
      it->second.resolution >= task.fragment->resolution_complete) {
    return;  // The log already holds an equal-or-finer record.
  }
  std::string framed;
  AppendLogRecord(&framed, LogRecordType::kFragment, payload);
  if (!EnsureLogCapacityLocked(framed.size())) return;
  Cold::Entry entry;
  entry.offset = cold_->used;
  entry.bytes = framed.size();
  entry.resolution = task.fragment->resolution_complete;
  entry.epoch = task.epoch;
  AppendRawLocked(framed);
  if (it != cold_->index.end()) {
    cold_->dead_bytes += it->second.bytes;
    it->second = entry;
  } else {
    cold_->index.emplace(task.key, entry);
  }
  cold_->appends += 1;
  EnforceColdBudgetLocked();
  MaybeCompactLocked();
  if (options_.fsync_mode == FragmentFsyncMode::kAlways) SyncColdLocked();
}

void FragmentStore::AppendEpochLocked(uint64_t new_epoch) {
  std::string framed;
  AppendLogRecord(&framed, LogRecordType::kEpoch,
                  EncodeEpochRecord(new_epoch));
  if (!EnsureLogCapacityLocked(framed.size())) return;
  // The previous epoch record is now history; the new one is live.
  cold_->dead_bytes += cold_->last_epoch_record_bytes;
  cold_->last_epoch_record_bytes = framed.size();
  AppendRawLocked(framed);
  cold_->appends += 1;
  // Sweep entries invalidated by the bump into dead bytes. A concurrent
  // publish under the new epoch is not yet in the index (this worker
  // appends it later), so the sweep cannot drop live data.
  for (auto it = cold_->index.begin(); it != cold_->index.end();) {
    if (it->second.epoch < new_epoch) {
      cold_->dead_bytes += it->second.bytes;
      cold_->stale_dropped += 1;
      it = cold_->index.erase(it);
    } else {
      ++it;
    }
  }
  MaybeCompactLocked();
  if (options_.fsync_mode == FragmentFsyncMode::kAlways) SyncColdLocked();
}

bool FragmentStore::EnsureLogCapacityLocked(size_t additional) {
  if (cold_->used + additional <= cold_->map_len) return true;
  size_t new_len = std::max(cold_->map_len * 2, kMinLogCapacityBytes);
  while (new_len < cold_->used + additional) new_len *= 2;
  if (::ftruncate(cold_->fd, static_cast<off_t>(new_len)) != 0) {
    cold_->status = ErrnoStatus("ftruncate", options_.store_path);
    cold_active_.store(false, std::memory_order_release);
    return false;
  }
  void* remapped = ::mmap(nullptr, new_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED, cold_->fd, 0);
  if (remapped == MAP_FAILED) {
    cold_->status = ErrnoStatus("mmap", options_.store_path);
    cold_active_.store(false, std::memory_order_release);
    return false;
  }
  if (cold_->map != nullptr) ::munmap(cold_->map, cold_->map_len);
  cold_->map = static_cast<char*>(remapped);
  cold_->map_len = new_len;
  return true;
}

void FragmentStore::AppendRawLocked(const std::string& framed) {
  // MAP_SHARED dirty pages belong to the file, not the process: a
  // SIGKILL after this memcpy loses nothing (the kernel writes the
  // pages back), and a crash *during* it leaves a torn tail that the
  // next boot's CRC scan discards.
  std::memcpy(cold_->map + cold_->used, framed.data(), framed.size());
  cold_->used += framed.size();
}

// The cold live-byte budget: while live bytes (used minus dead) exceed
// it, demote the oldest live fragment — smallest (epoch, offset), the
// least recently (re)published record — to dead bytes. Demotion-to-drop
// rather than demotion-to-somewhere: there is no colder tier, so the
// fragment simply stops being servable and compaction reclaims the
// space. Linear victim scans are fine at this call rate (one append per
// accepted publish, and the loop usually evicts zero or one entry).
void FragmentStore::EnforceColdBudgetLocked() {
  if (options_.cold_budget_bytes == 0) return;
  while (!cold_->index.empty() &&
         cold_->used - cold_->dead_bytes > options_.cold_budget_bytes) {
    auto victim = cold_->index.begin();
    for (auto it = std::next(cold_->index.begin()); it != cold_->index.end();
         ++it) {
      if (it->second.epoch < victim->second.epoch ||
          (it->second.epoch == victim->second.epoch &&
           it->second.offset < victim->second.offset)) {
        victim = it;
      }
    }
    cold_->dead_bytes += victim->second.bytes;
    cold_->budget_dropped += 1;
    cold_->index.erase(victim);
  }
}

// Pushes appended-but-unsynced log bytes to stable storage, page-aligned
// (msync requires it). An msync failure is an I/O failure like any
// other: sticky status, cold tier degrades to DRAM-only.
void FragmentStore::SyncColdLocked() {
  if (cold_->map == nullptr || cold_->used <= cold_->synced_used) return;
  static const size_t kPage = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t start = cold_->synced_used & ~(kPage - 1);
  if (::msync(cold_->map + start, cold_->used - start, MS_SYNC) != 0) {
    cold_->status = ErrnoStatus("msync", options_.store_path);
    cold_active_.store(false, std::memory_order_release);
    return;
  }
  cold_->syncs += 1;
  cold_->synced_used = cold_->used;
}

void FragmentStore::MaybeCompactLocked() {
  if (cold_->used < options_.compact_min_bytes) return;
  if (static_cast<double>(cold_->dead_bytes) <=
      options_.compact_dead_fraction * static_cast<double>(cold_->used)) {
    return;
  }
  // Rewrite the live records (offset order preserves replay chronology)
  // plus one fresh epoch record into a sibling file, then swap it in by
  // rename. A crash anywhere in between leaves either the old or the
  // new log — both complete.
  std::vector<std::pair<const std::string*, Cold::Entry*>> live;
  live.reserve(cold_->index.size());
  for (auto& kv : cold_->index) live.emplace_back(&kv.first, &kv.second);
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) {
              return a.second->offset < b.second->offset;
            });
  std::string out;
  std::string epoch_framed;
  AppendLogRecord(&epoch_framed, LogRecordType::kEpoch,
                  EncodeEpochRecord(epoch_.load(std::memory_order_relaxed)));
  out.append(epoch_framed);
  std::vector<size_t> new_offsets(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    new_offsets[i] = out.size();
    out.append(cold_->map + live[i].second->offset, live[i].second->bytes);
  }
  const std::string tmp_path = options_.store_path + ".compact";
  const int tmp_fd =
      ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    cold_->status = ErrnoStatus("open", tmp_path);
    cold_active_.store(false, std::memory_order_release);
    return;
  }
  size_t new_len = kMinLogCapacityBytes;
  while (new_len < out.size()) new_len *= 2;
  if (!WriteAll(tmp_fd, out.data(), out.size()) ||
      ::ftruncate(tmp_fd, static_cast<off_t>(new_len)) != 0) {
    cold_->status = ErrnoStatus("write", tmp_path);
    cold_active_.store(false, std::memory_order_release);
    ::close(tmp_fd);
    return;
  }
  void* new_map = ::mmap(nullptr, new_len, PROT_READ | PROT_WRITE,
                         MAP_SHARED, tmp_fd, 0);
  if (new_map == MAP_FAILED) {
    cold_->status = ErrnoStatus("mmap", tmp_path);
    cold_active_.store(false, std::memory_order_release);
    ::close(tmp_fd);
    return;
  }
  if (::rename(tmp_path.c_str(), options_.store_path.c_str()) != 0) {
    cold_->status = ErrnoStatus("rename", tmp_path);
    cold_active_.store(false, std::memory_order_release);
    ::munmap(new_map, new_len);
    ::close(tmp_fd);
    return;
  }
  ::munmap(cold_->map, cold_->map_len);
  ::close(cold_->fd);
  cold_->fd = tmp_fd;
  cold_->map = static_cast<char*>(new_map);
  cold_->map_len = new_len;
  cold_->used = out.size();
  cold_->dead_bytes = 0;
  cold_->last_epoch_record_bytes = epoch_framed.size();
  for (size_t i = 0; i < live.size(); ++i) {
    live[i].second->offset = new_offsets[i];
  }
  cold_->compactions += 1;
  // The rewrite went through write(), not the old mapping: nothing of
  // the new file is known-synced yet.
  cold_->synced_used = 0;
}

void FragmentStore::OpenAndReplay() {
  cold_->fd = ::open(options_.store_path.c_str(),
                     O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (cold_->fd < 0) {
    cold_->status = ErrnoStatus("open", options_.store_path);
    return;
  }
  struct stat st;
  if (::fstat(cold_->fd, &st) != 0) {
    cold_->status = ErrnoStatus("fstat", options_.store_path);
    return;
  }
  size_t size = static_cast<size_t>(st.st_size);
  size_t map_len = std::max(size, kMinLogCapacityBytes);
  if (map_len > size &&
      ::ftruncate(cold_->fd, static_cast<off_t>(map_len)) != 0) {
    cold_->status = ErrnoStatus("ftruncate", options_.store_path);
    return;
  }
  void* map = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE, MAP_SHARED,
                     cold_->fd, 0);
  if (map == MAP_FAILED) {
    cold_->status = ErrnoStatus("mmap", options_.store_path);
    return;
  }
  cold_->map = static_cast<char*>(map);
  cold_->map_len = map_len;

  // Scan the log front to back. Every complete, CRC-valid record is
  // applied; the scan stops at the first torn or corrupt one — that is
  // the tail of the append that was in flight when the previous process
  // died. Records that are valid frames but fail payload decode (a
  // future codec version, isolated corruption under a valid CRC) are
  // skipped individually: framing makes them safely skippable.
  uint64_t max_epoch = 0;
  size_t offset = 0;
  while (offset < size) {
    uint8_t type = 0;
    std::string payload;
    size_t record_bytes = 0;
    const LogParse parse = ParseLogRecord(cold_->map + offset, size - offset,
                                          &type, &payload, &record_bytes);
    if (parse != LogParse::kRecord) break;
    if (type == static_cast<uint8_t>(LogRecordType::kFragment)) {
      FragmentRecord record;
      StoredFragment fragment;
      if (!DecodeFragmentRecord(payload, &record, &fragment).ok()) {
        cold_->decode_errors += 1;
        cold_->dead_bytes += record_bytes;
      } else {
        max_epoch = std::max(max_epoch, record.epoch);
        Cold::Entry entry;
        entry.offset = offset;
        entry.bytes = record_bytes;
        entry.resolution = record.resolution_complete;
        entry.epoch = record.epoch;
        auto it = cold_->index.find(record.key);
        if (it == cold_->index.end()) {
          cold_->index.emplace(std::move(record.key), entry);
        } else if (entry.resolution >= it->second.resolution) {
          cold_->dead_bytes += it->second.bytes;
          it->second = entry;
        } else {
          cold_->dead_bytes += record_bytes;
        }
      }
    } else if (type == static_cast<uint8_t>(LogRecordType::kEpoch)) {
      uint64_t epoch = 0;
      if (DecodeEpochRecord(payload, &epoch).ok()) {
        max_epoch = std::max(max_epoch, epoch);
        cold_->dead_bytes += cold_->last_epoch_record_bytes;
        cold_->last_epoch_record_bytes = record_bytes;
      } else {
        cold_->decode_errors += 1;
        cold_->dead_bytes += record_bytes;
      }
    } else {
      // Unknown record type (future format): framing lets us skip it.
      cold_->dead_bytes += record_bytes;
    }
    offset += record_bytes;
  }
  cold_->used = offset;
  // Whatever follows the last valid record is the torn tail — unless it
  // is all zeros (growth capacity that was never written). Either way,
  // zero it so future appends start from a clean slate.
  size_t tail = 0;
  for (size_t i = offset; i < size; ++i) {
    if (cold_->map[i] != 0) tail = size - offset;
  }
  cold_->torn_bytes = tail;
  if (size > offset) std::memset(cold_->map + offset, 0, size - offset);

  // Drop entries superseded by the final epoch; without this, a crash
  // after a bump's sweep but before compaction would resurrect them.
  epoch_.store(max_epoch, std::memory_order_relaxed);
  for (auto it = cold_->index.begin(); it != cold_->index.end();) {
    if (it->second.epoch < max_epoch) {
      cold_->dead_bytes += it->second.bytes;
      cold_->stale_dropped += 1;
      it = cold_->index.erase(it);
    } else {
      ++it;
    }
  }
  cold_->replayed = cold_->index.size();
  // Replayed bytes came off stable storage; only future appends are
  // dirty. A budget tighter than the recovered live set applies
  // immediately — a restart never resurrects more than the budget.
  cold_->synced_used = cold_->used;
  EnforceColdBudgetLocked();
}

FragmentStoreStats FragmentStore::Stats() const {
  FragmentStoreStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.publishes = publishes_.load(std::memory_order_relaxed);
  out.publish_ignored = publish_ignored_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.cold_hits = cold_hits_.load(std::memory_order_relaxed);
  out.promotions = promotions_.load(std::memory_order_relaxed);
  out.demotions = demotions_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.entries += shard->index.size();
    out.bytes += shard->bytes;
  }
  if (cold_ != nullptr) {
    std::lock_guard<std::mutex> lock(cold_->mu);
    out.compactions = cold_->compactions;
    out.cold_appends = cold_->appends;
    out.cold_entries = cold_->index.size();
    out.cold_bytes = cold_->used;
    out.cold_dead_bytes = cold_->dead_bytes;
    out.cold_decode_errors = cold_->decode_errors;
    out.cold_stale_dropped = cold_->stale_dropped;
    out.replayed_fragments = cold_->replayed;
    out.replay_torn_bytes = cold_->torn_bytes;
    out.cold_budget_dropped = cold_->budget_dropped;
    out.cold_syncs = cold_->syncs;
  }
  return out;
}

// --- FragmentQueryBinding ---------------------------------------------------

FragmentQueryBinding::FragmentQueryBinding(const Query& query,
                                           const MetricSchema& schema,
                                           const IamaOptions& iama,
                                           bool orders_enabled,
                                           uint64_t epoch)
    : tables_(query.tables),
      joins_(query.joins),
      orders_enabled_(orders_enabled) {
  // Local order tags are 1 + predicate index; past 255 the factory
  // clamps tags to 0, which would alias "no order" — such queries are
  // excluded from sharing entirely.
  shareable_ = joins_.size() <= 255;

  // The shared key prefix: everything per-service or per-submission that
  // the per-cell frontier depends on beyond the sub-join-graph itself.
  context_ = "f1;e=";
  context_ += std::to_string(epoch);
  context_ += ";m=";
  for (MetricId m : schema.metrics()) {
    context_ += std::to_string(static_cast<int>(m));
    context_ += ',';
  }
  const ResolutionSchedule& sched = iama.schedule;
  context_ += ";s=";
  context_ += std::to_string(sched.NumLevels());
  context_ += ':';
  AppendHexDouble(&context_, sched.alpha_target());
  context_ += ':';
  AppendHexDouble(&context_, sched.alpha_step());
  context_ += ':';
  context_ += std::to_string(static_cast<int>(sched.kind()));
  context_ += ";b=";
  if (iama.initial_bounds.has_value()) {
    const CostVector& b = *iama.initial_bounds;
    for (int i = 0; i < b.dims(); ++i) {
      AppendHexDouble(&context_, b[i]);
      context_ += ',';
    }
  } else {
    context_ += "inf";
  }
  const OptimizerOptions& opt = iama.optimizer;
  context_ += ";o=";
  AppendHexDouble(&context_, opt.cell_gamma);
  context_ += opt.prune_against_all_resolutions ? ":1" : ":0";
  context_ += opt.park_next_level_only ? ":1" : ":0";
  context_ += opt.sorted_pruning ? ":1" : ":0";
  context_ += orders_enabled_ ? ":1" : ":0";
}

const FragmentQueryBinding::CellInfo* FragmentQueryBinding::InfoFor(
    TableSet cell) {
  auto it = cells_.find(cell.mask());
  if (it == cells_.end()) {
    it = cells_.emplace(cell.mask(), CellInfo{}).first;
    BuildCellInfo(cell, &it->second);
  }
  return &it->second;
}

void FragmentQueryBinding::BuildCellInfo(TableSet cell,
                                         CellInfo* info) const {
  if (!shareable_ || cell.Count() < 2) return;  // Stays ineligible.

  // Canonical table numbering: ascending local index. Order-preserving
  // renumberings therefore collide onto the same key, which is exactly
  // the class of relabelings under which the cell's bottom-up evolution
  // (subset iteration order, batch order, hash layout) is isomorphic.
  int canon_pos[kMaxTables];
  std::fill(canon_pos, canon_pos + kMaxTables, -1);
  int num_cell_tables = 0;
  for (TableIter it(cell); !it.Done(); it.Next()) {
    canon_pos[it.Table()] = num_cell_tables++;
  }

  std::string key = context_;
  key += ";n=";
  key += std::to_string(num_cell_tables);
  key += ";t=";
  for (TableIter it(cell); !it.Done(); it.Next()) {
    const TableRef& ref = tables_[static_cast<size_t>(it.Table())];
    key += std::to_string(ref.table);
    key += ':';
    AppendHexDouble(&key, ref.predicate_selectivity);
    key += ',';
  }

  // Internal predicates, in query join order (the sequence feeds the
  // interesting-order tags and the FirstPredicateBetween choices).
  key += ";p=";
  int internal_pos = 0;
  for (size_t j = 0; j < joins_.size(); ++j) {
    const JoinPredicate& pred = joins_[j];
    if (!cell.Contains(pred.left) || !cell.Contains(pred.right)) continue;
    if (orders_enabled_) {
      if (internal_pos > kMaxInternalOrderPos) return;  // Tag overflow.
      info->local_to_canonical[1 + static_cast<int>(j)] = 1 + internal_pos;
      info->canonical_to_local[1 + internal_pos] = 1 + static_cast<int>(j);
    }
    const int cl = canon_pos[pred.left];
    const int cr = canon_pos[pred.right];
    key += std::to_string(std::min(cl, cr));
    key += '+';
    key += std::to_string(std::max(cl, cr));
    key += ':';
    AppendHexDouble(&key, pred.selectivity);
    key += ',';
    ++internal_pos;
  }

  // Per-table scan-order signature: an index scan's tag is the table's
  // globally-first incident predicate, which may lie outside the cell.
  // The signature pins whether that tag coincides with an internal
  // predicate (and which), forms its own class ("x"), or is absent — the
  // three cases behave differently inside the cell's pruning.
  key += ";g=";
  if (orders_enabled_) {
    for (TableIter it(cell); !it.Done(); it.Next()) {
      const int t = it.Table();
      int first_incident = -1;
      for (size_t j = 0; j < joins_.size(); ++j) {
        if (joins_[j].left == t || joins_[j].right == t) {
          first_incident = static_cast<int>(j);
          break;
        }
      }
      if (first_incident < 0) {
        key += "0,";
        continue;
      }
      const JoinPredicate& pred = joins_[static_cast<size_t>(first_incident)];
      if (cell.Contains(pred.left) && cell.Contains(pred.right)) {
        // Internal: already mapped above; record which position.
        key += 'i';
        key += std::to_string(
            info->local_to_canonical.at(1 + first_incident) - 1);
        key += ',';
      } else {
        const int k = canon_pos[t];
        info->local_to_canonical[1 + first_incident] = kExternalOrderBase + k;
        info->canonical_to_local[kExternalOrderBase + k] = 1 + first_incident;
        key += "x,";
      }
    }
  } else {
    key += '-';
  }

  info->eligible = true;
  info->key = std::move(key);
}

const std::string* FragmentQueryBinding::KeyFor(TableSet cell) {
  const CellInfo* info = InfoFor(cell);
  return info->eligible ? &info->key : nullptr;
}

bool FragmentQueryBinding::OrdersToCanonical(TableSet cell,
                                             std::vector<FragmentPlan>* plans) {
  const CellInfo* info = InfoFor(cell);
  if (!info->eligible) return false;
  for (FragmentPlan& p : *plans) {
    if (p.order == 0) continue;
    auto it = info->local_to_canonical.find(p.order);
    if (it == info->local_to_canonical.end()) return false;
    p.order = static_cast<uint8_t>(it->second);
  }
  return true;
}

void FragmentQueryBinding::OrdersToLocal(TableSet cell,
                                         std::vector<FragmentPlan>* plans) {
  const CellInfo* info = InfoFor(cell);
  MOQO_CHECK(info->eligible);
  for (FragmentPlan& p : *plans) {
    if (p.order == 0) continue;
    // Key equality implies an identical canonical tag universe, so every
    // stored tag translates.
    p.order = static_cast<uint8_t>(info->canonical_to_local.at(p.order));
  }
}

// --- FragmentStoreProvider --------------------------------------------------

namespace {

// Null-checks `store` before the member-init list touches it (the
// default-epoch path reads store->epoch() before the ctor body runs).
uint64_t ResolveEpoch(FragmentStore* store,
                      std::optional<uint64_t> pinned_epoch) {
  MOQO_CHECK(store != nullptr);
  return pinned_epoch.has_value() ? *pinned_epoch : store->epoch();
}

}  // namespace

FragmentStoreProvider::FragmentStoreProvider(
    FragmentStore* store, const Query& query, const MetricSchema& schema,
    const IamaOptions& iama, bool orders_enabled, int min_tables,
    std::optional<uint64_t> pinned_epoch)
    : store_(store),
      binding_(query, schema, iama, orders_enabled,
               ResolveEpoch(store, pinned_epoch)),
      min_tables_(std::max(2, min_tables)) {}

std::optional<FragmentSeed> FragmentStoreProvider::Lookup(
    TableSet cell, int needed_resolution) {
  if (cell.Count() < min_tables_) return std::nullopt;
  const std::string* key = binding_.KeyFor(cell);
  if (key == nullptr) return std::nullopt;
  std::shared_ptr<const StoredFragment> stored =
      store_->Lookup(*key, needed_resolution);
  if (stored == nullptr) return std::nullopt;
  FragmentSeed seed;
  seed.resolution_complete = stored->resolution_complete;
  seed.plans = stored->plans;  // Copy; the shared snapshot stays immutable.
  binding_.OrdersToLocal(cell, &seed.plans);
  return seed;
}

void FragmentStoreProvider::PublishAll(
    std::vector<IncrementalOptimizer::PublishableFragment> fragments) {
  for (IncrementalOptimizer::PublishableFragment& frag : fragments) {
    if (frag.cell.Count() < min_tables_) continue;
    const std::string* key = binding_.KeyFor(frag.cell);
    if (key == nullptr) continue;
    if (!binding_.OrdersToCanonical(frag.cell, &frag.plans)) continue;
    auto stored = std::make_shared<StoredFragment>();
    stored->resolution_complete = frag.resolution_complete;
    stored->plans = std::move(frag.plans);
    store_->Publish(*key, std::move(stored));
  }
}

}  // namespace moqo
