#include "service/fragment_store.h"

#include <algorithm>
#include <utility>

#include "util/str.h"

namespace moqo {
namespace {

// Canonical interesting-order tag encoding (docs/FRAGMENT_SHARING.md):
//   0        = no order;
//   1 + p    = sorted on the fragment's p-th internal predicate
//              (sequence position among the predicates internal to the
//              cell, in query join order), p <= 126;
//   128 + k  = sorted on an external predicate incident to the cell's
//              k-th table (ascending local index). External predicates
//              touch exactly one fragment table, so k identifies the
//              class; the consumer maps it back to its own first
//              incident predicate.
constexpr int kMaxInternalOrderPos = 126;
constexpr int kExternalOrderBase = 128;

// Per-entry LRU overhead estimate (list/map nodes, shared_ptr control
// block) on top of the key string and the fragment payload.
constexpr size_t kEntryOverheadBytes = 128;

}  // namespace

// --- FragmentStore ----------------------------------------------------------

struct FragmentStore::Shard {
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const StoredFragment>>>;

  std::mutex mu;
  LruList lru;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index;
  size_t bytes = 0;
  // Monotonic counters, aggregated by Stats().
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t publishes = 0;
  uint64_t publish_ignored = 0;
  uint64_t evictions = 0;
};

FragmentStore::FragmentStore(Options options) : options_(options) {
  MOQO_CHECK(options_.num_shards >= 1);
  shard_capacity_ =
      options_.capacity_bytes / static_cast<size_t>(options_.num_shards);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

FragmentStore::~FragmentStore() = default;

FragmentStore::Shard& FragmentStore::ShardFor(const std::string& key) {
  return *shards_[Fnv1a64(key) % shards_.size()];
}

std::shared_ptr<const StoredFragment> FragmentStore::Lookup(
    const std::string& key, int min_resolution) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end() ||
      it->second->second->resolution_complete < min_resolution) {
    ++shard.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->second;
}

void FragmentStore::Publish(const std::string& key,
                            std::shared_ptr<const StoredFragment> fragment) {
  MOQO_CHECK(fragment != nullptr);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard_capacity_ == 0) {
    ++shard.publish_ignored;
    return;
  }
  const size_t entry_bytes =
      key.size() + fragment->ApproxBytes() + kEntryOverheadBytes;
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace only with a strictly finer run; a coarser or equal
    // publication carries no new information (prefix property).
    if (it->second->second->resolution_complete >=
        fragment->resolution_complete) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.publish_ignored;
      return;
    }
    shard.bytes -= key.size() + it->second->second->ApproxBytes() +
                   kEntryOverheadBytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.emplace_front(key, std::move(fragment));
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += entry_bytes;
  ++shard.publishes;
  // Enforce the byte budget from the LRU tail. A fragment larger than
  // the whole shard budget evicts everything including itself — the
  // store never over-retains.
  while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
    const auto& victim = shard.lru.back();
    shard.bytes -=
        victim.first.size() + victim.second->ApproxBytes() + kEntryOverheadBytes;
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

FragmentStoreStats FragmentStore::Stats() const {
  FragmentStoreStats out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.publishes += shard->publishes;
    out.publish_ignored += shard->publish_ignored;
    out.evictions += shard->evictions;
    out.entries += shard->index.size();
    out.bytes += shard->bytes;
  }
  return out;
}

// --- FragmentQueryBinding ---------------------------------------------------

FragmentQueryBinding::FragmentQueryBinding(const Query& query,
                                           const MetricSchema& schema,
                                           const IamaOptions& iama,
                                           bool orders_enabled,
                                           uint64_t epoch)
    : tables_(query.tables),
      joins_(query.joins),
      orders_enabled_(orders_enabled) {
  // Local order tags are 1 + predicate index; past 255 the factory
  // clamps tags to 0, which would alias "no order" — such queries are
  // excluded from sharing entirely.
  shareable_ = joins_.size() <= 255;

  // The shared key prefix: everything per-service or per-submission that
  // the per-cell frontier depends on beyond the sub-join-graph itself.
  context_ = "f1;e=";
  context_ += std::to_string(epoch);
  context_ += ";m=";
  for (MetricId m : schema.metrics()) {
    context_ += std::to_string(static_cast<int>(m));
    context_ += ',';
  }
  const ResolutionSchedule& sched = iama.schedule;
  context_ += ";s=";
  context_ += std::to_string(sched.NumLevels());
  context_ += ':';
  AppendHexDouble(&context_, sched.alpha_target());
  context_ += ':';
  AppendHexDouble(&context_, sched.alpha_step());
  context_ += ':';
  context_ += std::to_string(static_cast<int>(sched.kind()));
  context_ += ";b=";
  if (iama.initial_bounds.has_value()) {
    const CostVector& b = *iama.initial_bounds;
    for (int i = 0; i < b.dims(); ++i) {
      AppendHexDouble(&context_, b[i]);
      context_ += ',';
    }
  } else {
    context_ += "inf";
  }
  const OptimizerOptions& opt = iama.optimizer;
  context_ += ";o=";
  AppendHexDouble(&context_, opt.cell_gamma);
  context_ += opt.prune_against_all_resolutions ? ":1" : ":0";
  context_ += opt.park_next_level_only ? ":1" : ":0";
  context_ += opt.sorted_pruning ? ":1" : ":0";
  context_ += orders_enabled_ ? ":1" : ":0";
}

const FragmentQueryBinding::CellInfo* FragmentQueryBinding::InfoFor(
    TableSet cell) {
  auto it = cells_.find(cell.mask());
  if (it == cells_.end()) {
    it = cells_.emplace(cell.mask(), CellInfo{}).first;
    BuildCellInfo(cell, &it->second);
  }
  return &it->second;
}

void FragmentQueryBinding::BuildCellInfo(TableSet cell,
                                         CellInfo* info) const {
  if (!shareable_ || cell.Count() < 2) return;  // Stays ineligible.

  // Canonical table numbering: ascending local index. Order-preserving
  // renumberings therefore collide onto the same key, which is exactly
  // the class of relabelings under which the cell's bottom-up evolution
  // (subset iteration order, batch order, hash layout) is isomorphic.
  int canon_pos[kMaxTables];
  std::fill(canon_pos, canon_pos + kMaxTables, -1);
  int num_cell_tables = 0;
  for (TableIter it(cell); !it.Done(); it.Next()) {
    canon_pos[it.Table()] = num_cell_tables++;
  }

  std::string key = context_;
  key += ";n=";
  key += std::to_string(num_cell_tables);
  key += ";t=";
  for (TableIter it(cell); !it.Done(); it.Next()) {
    const TableRef& ref = tables_[static_cast<size_t>(it.Table())];
    key += std::to_string(ref.table);
    key += ':';
    AppendHexDouble(&key, ref.predicate_selectivity);
    key += ',';
  }

  // Internal predicates, in query join order (the sequence feeds the
  // interesting-order tags and the FirstPredicateBetween choices).
  key += ";p=";
  int internal_pos = 0;
  for (size_t j = 0; j < joins_.size(); ++j) {
    const JoinPredicate& pred = joins_[j];
    if (!cell.Contains(pred.left) || !cell.Contains(pred.right)) continue;
    if (orders_enabled_) {
      if (internal_pos > kMaxInternalOrderPos) return;  // Tag overflow.
      info->local_to_canonical[1 + static_cast<int>(j)] = 1 + internal_pos;
      info->canonical_to_local[1 + internal_pos] = 1 + static_cast<int>(j);
    }
    const int cl = canon_pos[pred.left];
    const int cr = canon_pos[pred.right];
    key += std::to_string(std::min(cl, cr));
    key += '+';
    key += std::to_string(std::max(cl, cr));
    key += ':';
    AppendHexDouble(&key, pred.selectivity);
    key += ',';
    ++internal_pos;
  }

  // Per-table scan-order signature: an index scan's tag is the table's
  // globally-first incident predicate, which may lie outside the cell.
  // The signature pins whether that tag coincides with an internal
  // predicate (and which), forms its own class ("x"), or is absent — the
  // three cases behave differently inside the cell's pruning.
  key += ";g=";
  if (orders_enabled_) {
    for (TableIter it(cell); !it.Done(); it.Next()) {
      const int t = it.Table();
      int first_incident = -1;
      for (size_t j = 0; j < joins_.size(); ++j) {
        if (joins_[j].left == t || joins_[j].right == t) {
          first_incident = static_cast<int>(j);
          break;
        }
      }
      if (first_incident < 0) {
        key += "0,";
        continue;
      }
      const JoinPredicate& pred = joins_[static_cast<size_t>(first_incident)];
      if (cell.Contains(pred.left) && cell.Contains(pred.right)) {
        // Internal: already mapped above; record which position.
        key += 'i';
        key += std::to_string(
            info->local_to_canonical.at(1 + first_incident) - 1);
        key += ',';
      } else {
        const int k = canon_pos[t];
        info->local_to_canonical[1 + first_incident] = kExternalOrderBase + k;
        info->canonical_to_local[kExternalOrderBase + k] = 1 + first_incident;
        key += "x,";
      }
    }
  } else {
    key += '-';
  }

  info->eligible = true;
  info->key = std::move(key);
}

const std::string* FragmentQueryBinding::KeyFor(TableSet cell) {
  const CellInfo* info = InfoFor(cell);
  return info->eligible ? &info->key : nullptr;
}

bool FragmentQueryBinding::OrdersToCanonical(TableSet cell,
                                             std::vector<FragmentPlan>* plans) {
  const CellInfo* info = InfoFor(cell);
  if (!info->eligible) return false;
  for (FragmentPlan& p : *plans) {
    if (p.order == 0) continue;
    auto it = info->local_to_canonical.find(p.order);
    if (it == info->local_to_canonical.end()) return false;
    p.order = static_cast<uint8_t>(it->second);
  }
  return true;
}

void FragmentQueryBinding::OrdersToLocal(TableSet cell,
                                         std::vector<FragmentPlan>* plans) {
  const CellInfo* info = InfoFor(cell);
  MOQO_CHECK(info->eligible);
  for (FragmentPlan& p : *plans) {
    if (p.order == 0) continue;
    // Key equality implies an identical canonical tag universe, so every
    // stored tag translates.
    p.order = static_cast<uint8_t>(info->canonical_to_local.at(p.order));
  }
}

// --- FragmentStoreProvider --------------------------------------------------

namespace {

// Null-checks `store` before the member-init list touches it (the
// default-epoch path reads store->epoch() before the ctor body runs).
uint64_t ResolveEpoch(FragmentStore* store,
                      std::optional<uint64_t> pinned_epoch) {
  MOQO_CHECK(store != nullptr);
  return pinned_epoch.has_value() ? *pinned_epoch : store->epoch();
}

}  // namespace

FragmentStoreProvider::FragmentStoreProvider(
    FragmentStore* store, const Query& query, const MetricSchema& schema,
    const IamaOptions& iama, bool orders_enabled, int min_tables,
    std::optional<uint64_t> pinned_epoch)
    : store_(store),
      binding_(query, schema, iama, orders_enabled,
               ResolveEpoch(store, pinned_epoch)),
      min_tables_(std::max(2, min_tables)) {}

std::optional<FragmentSeed> FragmentStoreProvider::Lookup(
    TableSet cell, int needed_resolution) {
  if (cell.Count() < min_tables_) return std::nullopt;
  const std::string* key = binding_.KeyFor(cell);
  if (key == nullptr) return std::nullopt;
  std::shared_ptr<const StoredFragment> stored =
      store_->Lookup(*key, needed_resolution);
  if (stored == nullptr) return std::nullopt;
  FragmentSeed seed;
  seed.resolution_complete = stored->resolution_complete;
  seed.plans = stored->plans;  // Copy; the shared snapshot stays immutable.
  binding_.OrdersToLocal(cell, &seed.plans);
  return seed;
}

void FragmentStoreProvider::PublishAll(
    std::vector<IncrementalOptimizer::PublishableFragment> fragments) {
  for (IncrementalOptimizer::PublishableFragment& frag : fragments) {
    if (frag.cell.Count() < min_tables_) continue;
    const std::string* key = binding_.KeyFor(frag.cell);
    if (key == nullptr) continue;
    if (!binding_.OrdersToCanonical(frag.cell, &frag.plans)) continue;
    auto stored = std::make_shared<StoredFragment>();
    stored->resolution_complete = frag.resolution_complete;
    stored->plans = std::move(frag.plans);
    store_->Publish(*key, std::move(stored));
  }
}

}  // namespace moqo
