/// \file
/// FragmentStore: cross-query Pareto plan-fragment sharing.
///
/// The whole-query LRU cache and in-flight coalescing (PRs 2-3) only
/// reuse work between *bit-identical* queries. The fragment store turns
/// the optimizer's own intermediate structure — the per-sub-join-graph
/// Pareto frontiers IAMA builds bottom-up — into a cross-query cache:
/// a completed run publishes every connected multi-table cell's result
/// frontier under a canonical sub-join-graph key, and later runs whose
/// queries merely *overlap* seed those cells from the store instead of
/// enumerating them (IncrementalOptimizer seals seeded cells). With
/// sharing enabled, final frontiers stay bit-identical to cold
/// sequential runs — seeding replays the donor's chronological insertion
/// log, which reproduces the cold cell state at every resolution (see
/// docs/FRAGMENT_SHARING.md for the full argument and its limits).
///
/// **Canonical keying.** A cell's key captures exactly what its frontier
/// depends on: the fragment's table references (catalog id + local
/// predicate selectivity) in consumer order, its internal join
/// predicates (canonical endpoints + selectivity, sequence preserved —
/// predicate indices feed the interesting-order tags), each table's
/// scan-order signature (whether an index scan's order tag refers to an
/// internal predicate, an external one, or none), the metric set, the
/// catalog epoch, and the result-affecting session options (schedule,
/// bounds, cell gamma, pruning flags). Thread counts are excluded — the
/// parallel engine is frontier-equivalent. Order tags are translated to
/// a fragment-relative canonical encoding on publish and back to the
/// consumer's local tags on lookup, so queries that number their tables
/// or predicates differently still share (order-preserving renumberings
/// collide onto one key; others conservatively miss).
///
/// **Concurrency & memory.** The store is sharded (FNV-1a of the key);
/// each shard holds an LRU list bounded by its slice of the byte budget.
/// Values are immutable, refcounted frontier snapshots
/// (std::shared_ptr<const StoredFragment>): eviction drops the shard's
/// reference while in-flight readers keep theirs, so lookups never block
/// on publishers beyond the shard mutex and no snapshot is ever mutated
/// after insertion.
#ifndef MOQO_SERVICE_FRAGMENT_STORE_H_
#define MOQO_SERVICE_FRAGMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fragment.h"
#include "core/iama.h"
#include "core/incremental_optimizer.h"
#include "cost/metric.h"
#include "query/query.h"

namespace moqo {

/// An immutable published fragment: one cell's complete result-set
/// insertion history, with order tags in canonical (fragment-relative)
/// encoding. Shared by reference between the store and concurrent
/// readers; never mutated after construction.
struct StoredFragment {
  /// Finest resolution level the donor run completed for the cell.
  int resolution_complete = 0;
  /// Chronological result insertions (canonical order tags).
  std::vector<FragmentPlan> plans;

  /// Approximate heap footprint, used for the store's byte accounting.
  size_t ApproxBytes() const {
    return sizeof(StoredFragment) + plans.size() * sizeof(FragmentPlan);
  }
};

/// Monotonic store counters (Stats()); "hits" and "misses" count Lookup
/// outcomes, a too-coarse stored run counts as a miss.
struct FragmentStoreStats {
  uint64_t hits = 0;          ///< Lookups served from the store.
  uint64_t misses = 0;        ///< Lookups not served (absent / too coarse).
  uint64_t publishes = 0;     ///< Fragments inserted or upgraded.
  uint64_t publish_ignored = 0;  ///< Publishes dropped for an existing
                                 ///< finer-or-equal entry.
  uint64_t evictions = 0;     ///< Entries evicted by the byte budget.
  uint64_t entries = 0;       ///< Current resident fragments.
  uint64_t bytes = 0;         ///< Current resident bytes (approximate).
};

/// The concurrent, sharded, LRU-byte-bounded fragment store. One store
/// serves all scheduler shards of an OptimizerService; it can also be
/// used standalone (tests, custom serving layers). Thread-safe.
class FragmentStore {
 public:
  /// Store-wide configuration, fixed at construction.
  struct Options {
    /// Total byte budget across all shards; 0 stores nothing (every
    /// Lookup misses, every Publish is dropped immediately).
    size_t capacity_bytes = 0;
    /// Internal lock shards; >= 1. More shards reduce contention when
    /// many scheduler threads publish and look up concurrently.
    int num_shards = 8;
  };

  /// Creates the store with `options.capacity_bytes` split evenly
  /// across `options.num_shards` LRU shards.
  explicit FragmentStore(Options options);
  /// Releases the shards (out-of-line: Shard is private and incomplete
  /// for users of this header).
  ~FragmentStore();

  /// Not copyable: shards own mutexes and shared entries.
  FragmentStore(const FragmentStore&) = delete;
  /// Not copy-assignable (same ownership reasons).
  FragmentStore& operator=(const FragmentStore&) = delete;

  /// Returns the fragment stored under `key` if its resolution_complete
  /// is at least `min_resolution` (and touches its LRU position), else
  /// nullptr. The returned snapshot stays valid after eviction — readers
  /// hold their own reference.
  std::shared_ptr<const StoredFragment> Lookup(const std::string& key,
                                               int min_resolution);

  /// Inserts `fragment` under `key`. An existing entry is replaced only
  /// by a strictly finer run (larger resolution_complete); otherwise the
  /// publish is dropped and the resident entry's LRU position refreshed.
  /// Inserting may evict least-recently-used entries — including, when a
  /// single fragment exceeds the shard budget, the new entry itself.
  void Publish(const std::string& key,
               std::shared_ptr<const StoredFragment> fragment);

  /// Current epoch, folded into every canonical key built against this
  /// store. Starts at 0.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Invalidates every resident fragment logically by advancing the
  /// epoch: keys built afterwards (FragmentQueryBinding) never match
  /// entries published under the old epoch, which age out via LRU. The
  /// hook for catalog/statistics refresh.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  /// Aggregated counters across all shards.
  FragmentStoreStats Stats() const;

 private:
  struct Shard;

  Shard& ShardFor(const std::string& key);

  Options options_;
  size_t shard_capacity_ = 0;
  std::atomic<uint64_t> epoch_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Canonicalizes one query's sub-join-graphs against a fragment store
/// epoch: builds per-cell keys and translates interesting-order tags
/// between the query's local predicate numbering and the fragment-
/// relative canonical encoding. Built once per run (it copies what it
/// needs from the query); not thread-safe — each run owns its binding.
class FragmentQueryBinding {
 public:
  /// Captures the key ingredients: the query's tables/predicates, the
  /// metric set, the result-affecting options of `iama` (schedule,
  /// bounds, optimizer flags), `orders_enabled` (operator options), and
  /// the store `epoch`.
  FragmentQueryBinding(const Query& query, const MetricSchema& schema,
                       const IamaOptions& iama, bool orders_enabled,
                       uint64_t epoch);

  /// False when the query cannot participate in fragment sharing at all
  /// (interesting-order tag domain exhausted: >= 255 join predicates).
  bool shareable() const { return shareable_; }

  /// The canonical sub-join-graph key for `cell`, or nullptr when the
  /// cell is ineligible (fewer than two tables, or its canonical order
  /// encoding does not fit the tag domain). Cached per cell.
  const std::string* KeyFor(TableSet cell);

  /// Rewrites `plans`' order tags from this query's local encoding to
  /// the canonical fragment-relative one (publish direction). Returns
  /// false — leaving `plans` partially rewritten and unusable — if a tag
  /// cannot be translated; callers must then drop the cell.
  bool OrdersToCanonical(TableSet cell, std::vector<FragmentPlan>* plans);

  /// Rewrites `plans`' order tags from canonical back to this query's
  /// local encoding (lookup direction). Total for any fragment stored
  /// under KeyFor(cell) — key equality implies an identical tag
  /// universe.
  void OrdersToLocal(TableSet cell, std::vector<FragmentPlan>* plans);

 private:
  struct CellInfo {
    bool eligible = false;
    std::string key;
    // Order-tag translation maps; tag 0 is implicit in both directions.
    std::unordered_map<int, int> local_to_canonical;
    std::unordered_map<int, int> canonical_to_local;
  };

  const CellInfo* InfoFor(TableSet cell);
  void BuildCellInfo(TableSet cell, CellInfo* info) const;

  // Copies (not references): publishing outlives the run's Query.
  std::vector<TableRef> tables_;
  std::vector<JoinPredicate> joins_;
  std::string context_;  // Shared key prefix: epoch, metrics, options.
  bool orders_enabled_ = false;
  bool shareable_ = true;
  std::unordered_map<uint32_t, CellInfo> cells_;
};

/// Adapts a FragmentStore to the core FragmentProvider hook for one run:
/// Lookup canonicalizes the cell, consults the store, and localizes the
/// hit's order tags; PublishAll pushes a completed run's exported cells
/// back. Owned by the run; not thread-safe (the stepping shard drives
/// it).
class FragmentStoreProvider : public FragmentProvider {
 public:
  /// Binds `store` (which must outlive the provider) to one run's query
  /// and options. Cells with fewer than `min_tables` tables are ignored
  /// in both directions; `min_tables` is clamped to >= 2.
  /// `pinned_epoch` fixes the store epoch the binding keys under —
  /// serving layers pass the epoch observed at query *admission*, so a
  /// catalog refresh between admission and the run's first step cannot
  /// cross catalog generations (the run neither reads nor writes
  /// post-refresh fragments). Defaults to the store's current epoch.
  FragmentStoreProvider(FragmentStore* store, const Query& query,
                        const MetricSchema& schema, const IamaOptions& iama,
                        bool orders_enabled, int min_tables,
                        std::optional<uint64_t> pinned_epoch = std::nullopt);

  /// FragmentProvider hook: store lookup + order-tag localization.
  std::optional<FragmentSeed> Lookup(TableSet cell,
                                     int needed_resolution) override;

  /// Publishes a completed run's cells
  /// (IncrementalOptimizer::TakePublishableFragments output). Cells that
  /// were seeded, are too small, or fail canonicalization are skipped.
  void PublishAll(std::vector<IncrementalOptimizer::PublishableFragment>
                      fragments);

 private:
  FragmentStore* store_;
  FragmentQueryBinding binding_;
  int min_tables_;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_FRAGMENT_STORE_H_
