/// \file
/// FragmentStore: cross-query Pareto plan-fragment sharing.
///
/// The whole-query LRU cache and in-flight coalescing (PRs 2-3) only
/// reuse work between *bit-identical* queries. The fragment store turns
/// the optimizer's own intermediate structure — the per-sub-join-graph
/// Pareto frontiers IAMA builds bottom-up — into a cross-query cache:
/// a completed run publishes every connected multi-table cell's result
/// frontier under a canonical sub-join-graph key, and later runs whose
/// queries merely *overlap* seed those cells from the store instead of
/// enumerating them (IncrementalOptimizer seals seeded cells). With
/// sharing enabled, final frontiers stay bit-identical to cold
/// sequential runs — seeding replays the donor's chronological insertion
/// log, which reproduces the cold cell state at every resolution (see
/// docs/FRAGMENT_SHARING.md for the full argument and its limits).
///
/// **Canonical keying.** A cell's key captures exactly what its frontier
/// depends on: the fragment's table references (catalog id + local
/// predicate selectivity) in consumer order, its internal join
/// predicates (canonical endpoints + selectivity, sequence preserved —
/// predicate indices feed the interesting-order tags), each table's
/// scan-order signature (whether an index scan's order tag refers to an
/// internal predicate, an external one, or none), the metric set, the
/// catalog epoch, and the result-affecting session options (schedule,
/// bounds, cell gamma, pruning flags). Thread counts are excluded — the
/// parallel engine is frontier-equivalent. Order tags are translated to
/// a fragment-relative canonical encoding on publish and back to the
/// consumer's local tags on lookup, so queries that number their tables
/// or predicates differently still share (order-preserving renumberings
/// collide onto one key; others conservatively miss).
///
/// **Concurrency & memory.** The store is sharded (FNV-1a of the key);
/// each shard holds an LRU list bounded by its slice of the byte budget.
/// Values are immutable, refcounted frontier snapshots
/// (std::shared_ptr<const StoredFragment>): eviction drops the shard's
/// reference while in-flight readers keep theirs, so lookups never block
/// on publishers beyond the shard mutex and no snapshot is ever mutated
/// after insertion.
///
/// **Tiering & persistence.** With Options::store_path set, the byte-
/// bounded LRU above becomes the *hot* tier of a two-tier store. Every
/// publish is additionally appended — write-behind, by one background
/// thread — to an append-only mmap'd log of serialized fragments
/// (service/fragment_codec.h): the *cold* tier. Hot eviction is then a
/// demotion (the entry stays servable from the log), a hot miss falls
/// through to the cold index and a cold hit decodes + promotes the
/// fragment back into the hot tier, and superseded or epoch-stale
/// records accumulate as dead bytes until compaction rewrites the log.
/// On construction the store replays the log — tolerating a torn tail
/// from a crash mid-append — so a restarted service warm-starts with
/// frontiers bit-identical to the previous process's (the codec round
/// trips IEEE-754 doubles exactly and replay preserves chronological
/// insertion order). Epoch bumps are made durable through the same log.
/// I/O failure is never fatal: the cold tier records a sticky Status
/// (cold_status()) and disables itself, leaving the hot tier serving.
/// See docs/FRAGMENT_PERSISTENCE.md.
#ifndef MOQO_SERVICE_FRAGMENT_STORE_H_
#define MOQO_SERVICE_FRAGMENT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/fragment.h"
#include "core/iama.h"
#include "core/incremental_optimizer.h"
#include "cost/metric.h"
#include "query/query.h"
#include "util/status.h"

namespace moqo {

/// An immutable published fragment: one cell's complete result-set
/// insertion history, with order tags in canonical (fragment-relative)
/// encoding. Shared by reference between the store and concurrent
/// readers; never mutated after construction.
struct StoredFragment {
  /// Finest resolution level the donor run completed for the cell.
  int resolution_complete = 0;
  /// Chronological result insertions (canonical order tags).
  std::vector<FragmentPlan> plans;

  /// Approximate heap footprint, used for the store's byte accounting.
  size_t ApproxBytes() const {
    return sizeof(StoredFragment) + plans.size() * sizeof(FragmentPlan);
  }
};

/// Durability policy for the cold tier's append-only log. The log is
/// mmap'd MAP_SHARED, so appended bytes always survive process death
/// (SIGKILL included) — fsync only matters for machine/kernel crashes.
enum class FragmentFsyncMode {
  kNone = 0,      ///< Never msync; the kernel writes pages back lazily.
  kInterval = 1,  ///< The write-behind thread msyncs dirty bytes on a
                  ///< periodic tick (Options::fsync_interval_ms).
  kAlways = 2,    ///< msync after every append, before it is indexed as
                  ///< durable. Strongest, slowest.
};

/// Monotonic store counters (Stats()); "hits" and "misses" count Lookup
/// outcomes, a too-coarse stored run counts as a miss.
struct FragmentStoreStats {
  uint64_t hits = 0;          ///< Lookups served from the store (any tier).
  uint64_t misses = 0;        ///< Lookups not served (absent / too coarse).
  uint64_t publishes = 0;     ///< Fragments inserted or upgraded.
  uint64_t publish_ignored = 0;  ///< Publishes dropped for an existing
                                 ///< finer-or-equal entry.
  uint64_t evictions = 0;     ///< Entries evicted by the hot byte budget.
  uint64_t entries = 0;       ///< Current hot-resident fragments.
  uint64_t bytes = 0;         ///< Current hot-resident bytes (approximate).

  // Cold tier (all zero when Options::store_path is empty).
  uint64_t cold_hits = 0;    ///< Hits served by decoding a cold record.
  uint64_t promotions = 0;   ///< Cold hits installed into the hot tier.
  uint64_t demotions = 0;    ///< Hot evictions that stayed cold-resident
                             ///< (== evictions while the cold tier is
                             ///< healthy: publish is write-behind, so
                             ///< every hot entry is also in the log).
  uint64_t compactions = 0;  ///< Log rewrites that reclaimed dead bytes.
  uint64_t cold_appends = 0;   ///< Records appended to the log.
  uint64_t cold_entries = 0;   ///< Current live cold-index fragments.
  uint64_t cold_bytes = 0;     ///< Current log bytes in use (live + dead).
  uint64_t cold_dead_bytes = 0;  ///< Superseded/stale bytes awaiting
                                 ///< compaction.
  uint64_t cold_decode_errors = 0;  ///< Cold records dropped because they
                                    ///< no longer decode (corruption).
  uint64_t cold_stale_dropped = 0;  ///< Cold entries invalidated by an
                                    ///< epoch bump (sweep or lazily at
                                    ///< decode time).
  uint64_t replayed_fragments = 0;  ///< Live fragments recovered by the
                                    ///< boot replay.
  uint64_t replay_torn_bytes = 0;   ///< Bytes discarded at boot as the
                                    ///< torn tail of a crashed append.
  uint64_t cold_budget_dropped = 0;  ///< Live cold entries dropped (to
                                     ///< dead bytes) by the cold live-
                                     ///< byte budget, oldest first.
  uint64_t cold_syncs = 0;  ///< msync calls issued by the fsync policy.
};

/// The concurrent, sharded, LRU-byte-bounded fragment store. One store
/// serves all scheduler shards of an OptimizerService; it can also be
/// used standalone (tests, custom serving layers). Thread-safe.
class FragmentStore {
 public:
  /// Store-wide configuration, fixed at construction.
  struct Options {
    /// Total hot-tier byte budget across all shards; 0 stores nothing in
    /// the hot tier (with a store_path the store still persists and
    /// serves from the cold tier; without one every Lookup misses and
    /// every Publish is dropped immediately).
    size_t capacity_bytes = 0;
    /// Internal lock shards; >= 1. More shards reduce contention when
    /// many scheduler threads publish and look up concurrently.
    int num_shards = 8;
    /// Path of the cold tier's append-only persistence log. Empty keeps
    /// the store DRAM-only (the pre-tiering behavior). The file is
    /// created if absent and replayed if present.
    std::string store_path;
    /// Compaction trigger: rewrite the log once dead bytes exceed this
    /// fraction of the bytes in use. Clamped to [0.05, 1.0].
    double compact_dead_fraction = 0.5;
    /// Compaction floor: never compact a log smaller than this (the
    /// rewrite would cost more than the bytes it reclaims).
    size_t compact_min_bytes = 256 * 1024;
    /// Cold-tier *live*-byte budget: after every append, while the log's
    /// live bytes (used minus dead) exceed this, the oldest live
    /// fragment — smallest (epoch, offset), i.e. least recently
    /// published — is demoted to dead bytes and dropped from the cold
    /// index (compaction then reclaims the space). Bounds the disk
    /// footprint a long-running service can pin. 0 = unlimited.
    size_t cold_budget_bytes = 0;
    /// When the appended log bytes are pushed to stable storage.
    FragmentFsyncMode fsync_mode = FragmentFsyncMode::kNone;
    /// Tick period of FragmentFsyncMode::kInterval, riding the
    /// write-behind thread's queue wait. Clamped to >= 1.
    int fsync_interval_ms = 100;
  };

  /// Creates the store with `options.capacity_bytes` split evenly across
  /// `options.num_shards` LRU shards. With a store_path, opens (creating
  /// if absent) and replays the persistence log before returning — on
  /// return epoch() and the cold index reflect the recovered state — and
  /// starts the write-behind thread. Replay tolerates a torn tail (a
  /// crash mid-append): scanning stops at the first incomplete or
  /// CRC-invalid record, the tail is discarded, and the bytes show up in
  /// Stats().replay_torn_bytes.
  explicit FragmentStore(Options options);
  /// Drains the write-behind queue, trims the log file to its used
  /// length, and releases the shards (out-of-line: Shard and Cold are
  /// private and incomplete for users of this header). Fragments
  /// published before destruction are durable afterwards.
  ~FragmentStore();

  /// Not copyable: shards own mutexes and shared entries.
  FragmentStore(const FragmentStore&) = delete;
  /// Not copy-assignable (same ownership reasons).
  FragmentStore& operator=(const FragmentStore&) = delete;

  /// Returns the fragment stored under `key` if its resolution_complete
  /// is at least `min_resolution` (and touches its LRU position), else
  /// nullptr. A hot miss falls through to the cold tier: a live cold
  /// record of sufficient resolution is decoded, promoted into the hot
  /// tier, and returned (a cold record that is epoch-stale or no longer
  /// decodes is dropped instead and counts as a miss). The returned
  /// snapshot stays valid after eviction — readers hold their own
  /// reference.
  std::shared_ptr<const StoredFragment> Lookup(const std::string& key,
                                               int min_resolution);

  /// Inserts `fragment` under `key`. An existing entry is replaced only
  /// by a strictly finer run (larger resolution_complete); otherwise the
  /// publish is dropped and the resident entry's LRU position refreshed.
  /// Inserting may evict least-recently-used entries — including, when a
  /// single fragment exceeds the shard budget, the new entry itself.
  /// With the cold tier enabled, an accepted publish is also enqueued
  /// for a write-behind log append (durable after Flush() or
  /// destruction; the appender skips records the log already holds at
  /// equal-or-finer resolution).
  void Publish(const std::string& key,
               std::shared_ptr<const StoredFragment> fragment);

  /// Current epoch, folded into every canonical key built against this
  /// store. Starts at 0, except that a replayed log restores the epoch
  /// it recorded (keys embed the epoch, so recovering it is what makes
  /// warm hits possible — and pre-crash invalidations permanent).
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Invalidates every resident fragment logically by advancing the
  /// epoch: keys built afterwards (FragmentQueryBinding) never match
  /// entries published under the old epoch, which age out via LRU. The
  /// hook for catalog/statistics refresh. With the cold tier enabled the
  /// bump is made durable (an epoch record enters the write-behind
  /// queue) and stale cold entries are swept to dead bytes; any record
  /// racing past the sweep is dropped lazily at decode time.
  void BumpEpoch();

  /// Stamps the catalog version recorded (as provenance) in every
  /// subsequently appended cold record. Purely diagnostic — the epoch is
  /// the invalidation authority.
  void SetCatalogVersion(uint64_t version) {
    catalog_version_.store(version, std::memory_order_relaxed);
  }

  /// Blocks until the write-behind queue is empty and the appender is
  /// idle: every Publish/BumpEpoch that happened-before the call is in
  /// the log (or dropped with cold_status() set). No-op without a cold
  /// tier.
  void Flush();

  /// OK while the cold tier is healthy (or absent). The first I/O
  /// failure — open, mmap, grow, compact — sticks here and permanently
  /// degrades the store to DRAM-only; it never crashes the service.
  Status cold_status() const;

  /// True when Options::store_path was set and the cold tier is still
  /// healthy.
  bool cold_enabled() const;

  /// Aggregated counters across both tiers.
  FragmentStoreStats Stats() const;

 private:
  struct Shard;
  struct Cold;
  // One write-behind work item: either a fragment append or an epoch
  // record (exactly one of the two shapes; FIFO order is what makes a
  // bump durable *after* the publishes it invalidates).
  struct WriteTask {
    bool is_epoch = false;
    uint64_t epoch = 0;  // Fragment: publish epoch. Epoch task: new value.
    std::string key;
    std::shared_ptr<const StoredFragment> fragment;
  };

  Shard& ShardFor(const std::string& key);
  // Hot-tier insert shared by Publish and promotion; returns true when
  // the fragment was installed (or upgraded), false when dropped for an
  // existing finer-or-equal entry or a zero budget. Publish/ignore
  // counters are only touched when `count_publish` is set.
  bool HotInsert(const std::string& key,
                 std::shared_ptr<const StoredFragment> fragment,
                 bool count_publish);
  void EnqueueTask(WriteTask task);
  void WorkerLoop();
  void AppendFragmentLocked(const WriteTask& task, const std::string& payload);
  void AppendEpochLocked(uint64_t new_epoch);
  bool EnsureLogCapacityLocked(size_t additional);
  void AppendRawLocked(const std::string& framed);
  void EnforceColdBudgetLocked();
  void SyncColdLocked();
  void MaybeCompactLocked();
  void OpenAndReplay();

  Options options_;
  size_t shard_capacity_ = 0;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> catalog_version_{0};
  std::vector<std::unique_ptr<Shard>> shards_;

  // Store-level monotonic counters (shards/cold hold only gauges).
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> publishes_{0};
  std::atomic<uint64_t> publish_ignored_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> cold_hits_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> demotions_{0};

  // Cold tier; null when store_path is empty. cold_active_ caches "cold
  // exists and is healthy" for the Publish fast path.
  std::unique_ptr<Cold> cold_;
  std::atomic<bool> cold_active_{false};

  // Write-behind machinery. queue_mu_ is a leaf lock (never held while
  // taking a shard mutex or Cold::mu).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;   // Signals the worker: work/stop.
  std::condition_variable drain_cv_;   // Signals Flush(): queue drained.
  std::deque<WriteTask> queue_;
  bool worker_busy_ = false;
  bool stop_ = false;
  std::thread worker_;
};

/// Canonicalizes one query's sub-join-graphs against a fragment store
/// epoch: builds per-cell keys and translates interesting-order tags
/// between the query's local predicate numbering and the fragment-
/// relative canonical encoding. Built once per run (it copies what it
/// needs from the query); not thread-safe — each run owns its binding.
class FragmentQueryBinding {
 public:
  /// Captures the key ingredients: the query's tables/predicates, the
  /// metric set, the result-affecting options of `iama` (schedule,
  /// bounds, optimizer flags), `orders_enabled` (operator options), and
  /// the store `epoch`.
  FragmentQueryBinding(const Query& query, const MetricSchema& schema,
                       const IamaOptions& iama, bool orders_enabled,
                       uint64_t epoch);

  /// False when the query cannot participate in fragment sharing at all
  /// (interesting-order tag domain exhausted: >= 255 join predicates).
  bool shareable() const { return shareable_; }

  /// The canonical sub-join-graph key for `cell`, or nullptr when the
  /// cell is ineligible (fewer than two tables, or its canonical order
  /// encoding does not fit the tag domain). Cached per cell.
  const std::string* KeyFor(TableSet cell);

  /// Rewrites `plans`' order tags from this query's local encoding to
  /// the canonical fragment-relative one (publish direction). Returns
  /// false — leaving `plans` partially rewritten and unusable — if a tag
  /// cannot be translated; callers must then drop the cell.
  bool OrdersToCanonical(TableSet cell, std::vector<FragmentPlan>* plans);

  /// Rewrites `plans`' order tags from canonical back to this query's
  /// local encoding (lookup direction). Total for any fragment stored
  /// under KeyFor(cell) — key equality implies an identical tag
  /// universe.
  void OrdersToLocal(TableSet cell, std::vector<FragmentPlan>* plans);

 private:
  struct CellInfo {
    bool eligible = false;
    std::string key;
    // Order-tag translation maps; tag 0 is implicit in both directions.
    std::unordered_map<int, int> local_to_canonical;
    std::unordered_map<int, int> canonical_to_local;
  };

  const CellInfo* InfoFor(TableSet cell);
  void BuildCellInfo(TableSet cell, CellInfo* info) const;

  // Copies (not references): publishing outlives the run's Query.
  std::vector<TableRef> tables_;
  std::vector<JoinPredicate> joins_;
  std::string context_;  // Shared key prefix: epoch, metrics, options.
  bool orders_enabled_ = false;
  bool shareable_ = true;
  std::unordered_map<uint32_t, CellInfo> cells_;
};

/// Adapts a FragmentStore to the core FragmentProvider hook for one run:
/// Lookup canonicalizes the cell, consults the store, and localizes the
/// hit's order tags; PublishAll pushes a completed run's exported cells
/// back. Owned by the run; not thread-safe (the stepping shard drives
/// it).
class FragmentStoreProvider : public FragmentProvider {
 public:
  /// Binds `store` (which must outlive the provider) to one run's query
  /// and options. Cells with fewer than `min_tables` tables are ignored
  /// in both directions; `min_tables` is clamped to >= 2.
  /// `pinned_epoch` fixes the store epoch the binding keys under —
  /// serving layers pass the epoch observed at query *admission*, so a
  /// catalog refresh between admission and the run's first step cannot
  /// cross catalog generations (the run neither reads nor writes
  /// post-refresh fragments). Defaults to the store's current epoch.
  FragmentStoreProvider(FragmentStore* store, const Query& query,
                        const MetricSchema& schema, const IamaOptions& iama,
                        bool orders_enabled, int min_tables,
                        std::optional<uint64_t> pinned_epoch = std::nullopt);

  /// FragmentProvider hook: store lookup + order-tag localization.
  std::optional<FragmentSeed> Lookup(TableSet cell,
                                     int needed_resolution) override;

  /// Publishes a completed run's cells
  /// (IncrementalOptimizer::TakePublishableFragments output). Cells that
  /// were seeded, are too small, or fail canonicalization are skipped.
  void PublishAll(std::vector<IncrementalOptimizer::PublishableFragment>
                      fragments);

 private:
  FragmentStore* store_;
  FragmentQueryBinding binding_;
  int min_tables_;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_FRAGMENT_STORE_H_
