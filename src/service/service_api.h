/// \file
/// The versioned request/response surface of OptimizerService — one
/// entry point for in-process callers and the network wire protocol.
///
/// **Why a struct, not parameters.** The Submit surface had begun to
/// accrete positionally (query, then an options bag, then an observer,
/// with tenant/quota and streaming knobs queued up behind them). Each
/// addition would have been another overload; the wire codec would have
/// had to mirror every one. SubmitRequest consolidates the entire
/// submission — query, tenant, scheduling, bounds, streaming — into one
/// struct that the in-process API and the network codec share
/// (src/net/wire.h encodes and decodes exactly this struct), and
/// SubmitResponse carries everything admission decides. The legacy
/// `Submit(query, SubmitOptions, observer)` overload remains as a thin
/// shim and is deprecated.
///
/// **Error taxonomy.** Every admission rejection returns a distinct
/// util::Status code that round-trips through the wire protocol:
///   - kInvalidArgument — malformed query or options (never retry as-is);
///   - kQuotaExceeded   — the tenant is at its in-flight quota (retry
///                        after one of the tenant's queries finishes);
///   - kShedding        — the service as a whole is over capacity; the
///                        status carries Status::retry_after_ms(), the
///                        server's backoff hint;
///   - kDraining        — the service is draining for a rolling restart;
///                        resubmit to another replica;
///   - kNotFound        — Cancel/ApplyBounds on an unknown or finished
///                        run id.
/// Internal invariants stay MOQO_CHECKs; anything reachable from client
/// input — including every byte of the wire protocol — is a Status.
#ifndef MOQO_SERVICE_SERVICE_API_H_
#define MOQO_SERVICE_SERVICE_API_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/iama.h"
#include "query/query.h"
#include "service/snapshot_stream.h"
#include "util/status.h"

namespace moqo {

/// Version of the service API surface (SubmitRequest layout and the
/// admission error taxonomy). Bumped on incompatible change; the wire
/// protocol negotiates it at handshake (docs/NETWORK_API.md).
inline constexpr uint32_t kServiceApiVersion = 1;

/// Service-wide ticket for one submitted query. 0 is never issued.
using QueryId = uint64_t;
/// The never-issued id; marks unknown queries in results.
inline constexpr QueryId kInvalidQueryId = 0;

/// Observes one query's frontier stream — the *legacy, synchronous*
/// streaming path. Invoked with the service mutex released, from the
/// shard thread stepping the query's run (or from inside Submit for
/// cache hits); calls for one query are serialized; observers may
/// Submit, Cancel, or ApplyBounds, but must not Wait and must not
/// block — a blocking observer holds its scheduler shard's turn.
/// In-process tooling that wants every snapshot can keep using it;
/// anything that may stall (network peers, slow sinks) must use the
/// pull-based SnapshotSubscription instead (SubmitRequest::subscribe),
/// whose bounded queue cannot stall a shard.
using SnapshotObserver = std::function<void(QueryId, const FrontierSnapshot&)>;

/// Per-tenant admission limits and fair-share weight
/// (ServiceOptions::tenant_quotas / ServiceOptions::default_quota).
struct TenantQuota {
  /// Queries (leaders and coalesced followers alike) a tenant may have
  /// unfinished at once; further Submits return kQuotaExceeded.
  /// 0 = unlimited.
  int max_inflight = 0;
  /// Fair-share weight: the tenant's queries step at `priority * weight`
  /// steps per scheduler turn, so a weight-2 tenant converges roughly
  /// twice as fast as a weight-1 tenant under contention. Clamped to
  /// >= 1. Scheduling only — frontiers are unaffected (bit-identity
  /// holds for every weight).
  int weight = 1;
};

/// One complete submission — the single Submit entry point shared by
/// the in-process API and the network protocol.
struct SubmitRequest {
  /// The query to optimize.
  Query query;
  /// Admission-control identity; "" is the default tenant. Quotas and
  /// fair-share weights are looked up by this name. Tenancy is an
  /// admission concept only: results are tenant-independent, so
  /// caching and in-flight coalescing deliberately cross tenants.
  std::string tenant;
  /// Steps granted per scheduler turn (weighted round-robin); >= 1.
  /// Multiplied by the tenant's fair-share weight; a coalesced run
  /// steps at the maximum effective priority among its riders.
  int priority = 1;
  /// Wall-clock budget in ms, measured from admission; 0 = no deadline.
  /// An expired query completes with whatever frontier its run last
  /// produced — possibly none, if no step ran before the deadline.
  double deadline_ms = 0.0;
  /// Total session steps to run; 0 means schedule.NumLevels() — one
  /// sweep from resolution 0 to rM. Must be >= 0.
  int max_iterations = 0;
  /// Session configuration: resolution schedule, initial bounds, and
  /// result-affecting optimizer knobs. `iama.optimizer.pool`,
  /// `iama.optimizer.num_threads`, and the fragment-store fields are
  /// owned by the service and must be left at their defaults (Submit
  /// rejects anything else).
  IamaOptions iama;
  /// Request a pull-based snapshot stream: SubmitResponse::subscription
  /// is populated with a bounded drop-oldest queue of this run's
  /// snapshots plus a guaranteed final event. The backpressure-safe
  /// path — a subscriber that never polls costs the service nothing
  /// beyond `subscription_capacity` queued snapshots.
  bool subscribe = false;
  /// Capacity (events) of the subscription's queue; clamped to >= 1.
  /// Ignored unless `subscribe` is set.
  size_t subscription_capacity = 8;
  /// Optional legacy synchronous observer (see SnapshotObserver for the
  /// contract and its sharp edge). May be combined with `subscribe`.
  SnapshotObserver observer;
};

/// What admission decided, returned by Submit on success.
struct SubmitResponse {
  /// The query's ticket for Cancel/ApplyBounds/Wait.
  QueryId id = kInvalidQueryId;
  /// The catalog version the query was admitted under.
  uint64_t catalog_version = 0;
  /// True when the submission was served instantly from the completed-
  /// run frontier cache (the subscription, if any, holds exactly one
  /// final event; Wait returns immediately).
  bool from_cache = false;
  /// True when the submission attached to a bit-identical run already
  /// in flight (it performs no optimization work of its own).
  bool coalesced = false;
  /// The pull-based snapshot stream; non-null iff
  /// SubmitRequest::subscribe was set.
  std::shared_ptr<SnapshotSubscription> subscription;
  /// Cumulative fragment-store warm hits credited to the submitting
  /// tenant: Pareto cells that runs founded by this tenant seeded from
  /// the cross-query fragment store instead of enumerating, as of this
  /// admission. 0 while fragment sharing is disabled. Lets a tenant see
  /// how much enumeration work the shared store is saving it without
  /// polling service-wide stats(). On the wire this rides SUBMIT_OK as
  /// a trailing optional field — wire-v1 peers that do not send or
  /// expect it interoperate unchanged (the decoder defaults it to 0).
  uint64_t tenant_fragment_hits = 0;
};

/// Per-submission options of the legacy Submit overload.
/// \deprecated Use SubmitRequest; this struct only feeds the
/// compatibility shim and will not grow new fields.
struct SubmitOptions {
  /// See SubmitRequest::iama.
  IamaOptions iama;
  /// See SubmitRequest::max_iterations.
  int max_iterations = 0;
  /// See SubmitRequest::priority.
  int priority = 1;
  /// See SubmitRequest::deadline_ms.
  double deadline_ms = 0.0;
};

/// Terminal states as reported by Wait(); kQueued is only ever seen as
/// the default of a QueryResult for an unknown id — in-flight queries
/// are not observable through results.
enum class QueryState {
  kQueued,     ///< Not finished (only on unknown-id results).
  kDone,       ///< Ran all requested iterations (or served from cache).
  kCancelled,  ///< Cancel() before completion.
  kExpired,    ///< Deadline elapsed before all iterations ran.
};

/// Terminal outcome of one submitted query, as returned by Wait().
struct QueryResult {
  /// The query's ticket; kInvalidQueryId = unknown query id.
  QueryId id = kInvalidQueryId;
  /// Terminal state (kQueued only for unknown ids).
  QueryState state = QueryState::kQueued;
  /// Optimizer steps executed by the run that served this query (for a
  /// coalesced follower: the shared run's steps, not zero). May exceed
  /// the requested max_iterations when ApplyBounds landed on the run's
  /// final step: the run takes at least one extra step under the new
  /// bounds rather than dropping them.
  int iterations = 0;
  /// True when the result was served by the completed-run LRU cache.
  bool from_cache = false;
  /// True when this query attached to an in-flight duplicate (it was a
  /// follower, or was promoted to leader after attaching as one) and so
  /// triggered no optimization of its own.
  bool coalesced = false;
  /// The catalog version (Catalog::version) this result's frontier was
  /// computed under — the version of the snapshot the serving run
  /// pinned at admission (for cache hits: the version the caching run
  /// pinned, which its key guarantees equals the submitter's). Runs
  /// admitted before a RefreshCatalog() keep their old version, so
  /// clients can tell pre-refresh results from post-refresh ones.
  uint64_t catalog_version = 0;
  /// Optimizer work performed by the run that served this query, as of
  /// the run's latest turn boundary: join plans constructed
  /// (Counters::plans_generated) and fresh sub-plan pairs combined
  /// (Counters::pairs_generated). 0 for cache hits — no optimization
  /// ran. With fragment sharing enabled these are the counters a warm
  /// store visibly reduces on overlapping queries.
  uint64_t plans_generated = 0;
  /// See plans_generated.
  uint64_t pairs_generated = 0;
  /// The run's last *published* snapshot: the final frontier for kDone;
  /// for queries finalized between a run's turns (cancelled or expired
  /// followers, cancelled leaders of dead runs) the frontier from the
  /// latest turn boundary — which may trail snapshots already streamed
  /// to the observer mid-turn. Plan ids inside refer to the run's
  /// (freed) arena — treat them as opaque tags; the cost vectors and
  /// order/resolution fields are the payload.
  FrontierSnapshot frontier;
};

/// Monotonic service-lifetime counters (returned by stats()).
struct ServiceStats {
  uint64_t submitted = 0;       ///< Admitted queries (valid Submits).
  uint64_t completed = 0;       ///< Queries finished in state kDone.
  uint64_t cancelled = 0;       ///< Queries finished in state kCancelled.
  uint64_t expired = 0;         ///< Queries finished in state kExpired.
  uint64_t cache_hits = 0;      ///< Submits served by the frontier cache.
  uint64_t coalesced = 0;       ///< Submits attached to an in-flight run.
  uint64_t steps_executed = 0;  ///< Optimizer steps across all runs.
  uint64_t work_steals = 0;     ///< Runs a shard stole from another queue.
  /// Effective RefreshCatalog() calls (ones that observed a new catalog
  /// version and invalidated; no-op refreshes are not counted).
  uint64_t catalog_refreshes = 0;
  // Admission-control rejections, one counter per taxonomy code:
  uint64_t quota_rejected = 0;  ///< Submits rejected with kQuotaExceeded.
  uint64_t shed = 0;            ///< Submits load-shed with kShedding.
  uint64_t drain_rejected = 0;  ///< Submits rejected with kDraining.
  /// Snapshot events discarded by subscription drop-oldest overflow
  /// (slow consumers), accumulated when their queries finalize.
  uint64_t snapshot_drops = 0;
  // Cross-query fragment store counters (zero while the store is
  // disabled); mirrored from FragmentStoreStats.
  uint64_t fragment_hits = 0;       ///< Cells seeded from the store.
  uint64_t fragment_misses = 0;     ///< Cell lookups that found nothing.
  uint64_t fragment_publishes = 0;  ///< Cells published by completed runs.
  uint64_t fragment_evictions = 0;  ///< Cells evicted by the hot budget.
  uint64_t fragment_bytes = 0;      ///< Hot-resident fragment bytes (gauge).
  // Fragment-store tiering counters (zero unless
  // ServiceOptions::fragment_store_path enables the persistent cold
  // tier); mirrored from FragmentStoreStats.
  uint64_t fragment_cold_hits = 0;  ///< Cells served by decoding a cold
                                    ///< log record (subset of
                                    ///< fragment_hits).
  uint64_t fragment_promotions = 0;  ///< Cold hits installed back into
                                     ///< the hot tier.
  uint64_t fragment_demotions = 0;  ///< Hot evictions that stayed servable
                                    ///< from the cold tier.
  uint64_t fragment_compactions = 0;  ///< Cold-log rewrites reclaiming
                                      ///< dead bytes.

  /// The counters accumulated since `baseline` (an earlier stats()
  /// snapshot of the same service): every monotonic counter is
  /// subtracted, the fragment_bytes gauge keeps its current value.
  /// Lives next to the field list so adding a counter and keeping
  /// delta-reporting tools (e.g. bench_service_throughput's warm
  /// pre-pass) honest is one edit, not two.
  ServiceStats Since(const ServiceStats& baseline) const {
    ServiceStats d = *this;
    d.submitted -= baseline.submitted;
    d.completed -= baseline.completed;
    d.cancelled -= baseline.cancelled;
    d.expired -= baseline.expired;
    d.cache_hits -= baseline.cache_hits;
    d.coalesced -= baseline.coalesced;
    d.steps_executed -= baseline.steps_executed;
    d.work_steals -= baseline.work_steals;
    d.catalog_refreshes -= baseline.catalog_refreshes;
    d.quota_rejected -= baseline.quota_rejected;
    d.shed -= baseline.shed;
    d.drain_rejected -= baseline.drain_rejected;
    d.snapshot_drops -= baseline.snapshot_drops;
    d.fragment_hits -= baseline.fragment_hits;
    d.fragment_misses -= baseline.fragment_misses;
    d.fragment_publishes -= baseline.fragment_publishes;
    d.fragment_evictions -= baseline.fragment_evictions;
    d.fragment_cold_hits -= baseline.fragment_cold_hits;
    d.fragment_promotions -= baseline.fragment_promotions;
    d.fragment_demotions -= baseline.fragment_demotions;
    d.fragment_compactions -= baseline.fragment_compactions;
    return d;
  }
};

}  // namespace moqo

#endif  // MOQO_SERVICE_SERVICE_API_H_
