/// \file
/// Pull-based bounded snapshot streaming (the backpressure-safe side of
/// the service API redesign).
///
/// The original streaming surface was a synchronous callback invoked by
/// the scheduler shard between optimizer steps — which means a slow
/// observer holds its shard's turn and every other run placed on that
/// shard pays for it. A real network peer (a TCP client that stops
/// reading) hits this immediately. SnapshotSubscription inverts the
/// flow: the shard *pushes* into a small bounded per-subscriber queue
/// (an O(1) operation that never blocks and never runs user code), and
/// the consumer *pulls* at its own pace. When a consumer falls behind,
/// the oldest undelivered snapshots are dropped and the gap is recorded
/// on the next delivered event (SnapshotEvent::dropped), so a consumer
/// always knows exactly how much of the stream it missed — anytime
/// frontiers are cumulative, so the latest snapshot subsumes dropped
/// older ones. The final event (the terminal frontier) is never dropped.
///
/// The scheduler shard is the producer; exactly one consumer at a time
/// may poll. Producer and consumer synchronize only on the
/// subscription's own mutex — never on the service mutex — so a stalled
/// consumer cannot stall a scheduler shard, by construction
/// (snapshot_stream_test pins this under TSan).
#ifndef MOQO_SERVICE_SNAPSHOT_STREAM_H_
#define MOQO_SERVICE_SNAPSHOT_STREAM_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "core/iama.h"

namespace moqo {

/// One delivered element of a query's snapshot stream.
struct SnapshotEvent {
  /// Position of this event in the stream, 1-based and strictly
  /// increasing. Together with `dropped` a consumer can account for
  /// every event ever produced: the previous delivered event's sequence
  /// plus `dropped` plus one equals this event's sequence.
  uint64_t sequence = 0;
  /// Events discarded (drop-oldest overflow) immediately before this
  /// one — the gap marker. 0 when the consumer kept up.
  uint64_t dropped = 0;
  /// True for the stream's last event: the run reached a terminal state
  /// and `snapshot` is its final published frontier. After consuming a
  /// final event the stream is exhausted for good.
  bool is_final = false;
  /// The frontier snapshot; shared with other subscribers of the same
  /// run (and with the run's stored result for final events) — never
  /// null, possibly empty for runs that never stepped.
  std::shared_ptr<const FrontierSnapshot> snapshot;
};

/// A bounded single-producer single-consumer snapshot queue with
/// drop-oldest overflow, created by OptimizerService::Submit when
/// SubmitRequest::subscribe is set.
///
/// Producer side (the service): Push() and Close() never block and never
/// invoke user code. Consumer side: Poll() (non-blocking) or Next()
/// (blocking with timeout); optionally SetWakeupFd() to integrate with a
/// poll()/epoll event loop — the network server wires an eventfd here so
/// one connection thread can sleep on "socket readable or snapshots
/// pending" without polling timers.
class SnapshotSubscription {
 public:
  /// Creates a subscription holding at most `capacity` undelivered
  /// events (clamped to >= 1). Small capacities favor freshness (anytime
  /// frontiers are cumulative); large ones favor completeness.
  explicit SnapshotSubscription(size_t capacity);

  /// Closes the owned wakeup descriptor, if any (see SetWakeupFd).
  ~SnapshotSubscription();

  /// Not copyable: the queue is an identity (producer and consumer
  /// reference the same instance).
  SnapshotSubscription(const SnapshotSubscription&) = delete;
  /// Not copy-assignable (same identity reasons).
  SnapshotSubscription& operator=(const SnapshotSubscription&) = delete;

  /// Producer side. Appends an event; when the queue is full the oldest
  /// undelivered event is discarded and accounted on the new head's
  /// `dropped` field. A final event closes the stream; pushes after a
  /// final event are ignored (the stream is immutable once terminal).
  /// O(1), never blocks on the consumer, never runs user code.
  void Push(std::shared_ptr<const FrontierSnapshot> snapshot, bool is_final);

  /// Consumer side. Removes and returns the oldest undelivered event, or
  /// std::nullopt when none is pending right now.
  std::optional<SnapshotEvent> Poll();

  /// Consumer side. Like Poll(), but blocks up to `timeout_ms` for an
  /// event to arrive. Returns std::nullopt on timeout or when the stream
  /// is exhausted (final event already consumed).
  std::optional<SnapshotEvent> Next(double timeout_ms);

  /// True once the final event has been *consumed*: the stream is
  /// exhausted and no further event will ever arrive.
  bool exhausted() const;

  /// Total events discarded by drop-oldest overflow so far (monotonic;
  /// stable once the final event is pushed). Mirrored into
  /// ServiceStats::snapshot_drops when the query finalizes.
  uint64_t dropped_total() const;

  /// Registers a file descriptor to be poked (a single 8-byte write,
  /// best effort, EAGAIN ignored) on every Push — eventfd semantics.
  /// Pass a *non-blocking* descriptor: the poke happens while the
  /// subscription mutex is held, so it can never race a concurrent
  /// detach or hit a descriptor number the kernel recycled — but a
  /// blocking fd would stall the producer. The subscription dup()s the
  /// descriptor and owns its copy; the caller keeps ownership of the
  /// original and may close it at any time. Pass -1 to detach (closes
  /// the owned copy); the destructor detaches implicitly. If the dup
  /// fails (fd exhaustion) the subscription runs unpoked — consumers
  /// fall back to Poll()/Next() pacing.
  void SetWakeupFd(int fd);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<SnapshotEvent> queue_;
  const size_t capacity_;
  uint64_t next_sequence_ = 1;
  uint64_t dropped_total_ = 0;
  bool closed_ = false;     // Final event pushed.
  bool exhausted_ = false;  // Final event consumed.
  int wakeup_fd_ = -1;      // Owned dup (guarded by mu_); -1 = detached.
};

}  // namespace moqo

#endif  // MOQO_SERVICE_SNAPSHOT_STREAM_H_
