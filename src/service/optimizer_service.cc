#include "service/optimizer_service.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

namespace moqo {
namespace {

using Clock = std::chrono::steady_clock;

// Exact textual rendering (hexfloat) so that cache keys distinguish any
// two selectivities / bounds that could produce different cost vectors.
void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  *out += buf;
}

int ResolvedMaxIterations(const SubmitOptions& options) {
  return options.max_iterations > 0 ? options.max_iterations
                                    : options.iama.schedule.NumLevels();
}

}  // namespace

std::string CanonicalQueryKey(const Query& query, const MetricSchema& schema,
                              const SubmitOptions& options) {
  std::string key = "v1;t=";
  for (const TableRef& t : query.tables) {  // Aliases are display-only.
    key += std::to_string(t.table);
    key += ':';
    AppendDouble(&key, t.predicate_selectivity);
    key += ',';
  }
  key += ";j=";
  for (const JoinPredicate& j : query.joins) {
    // Endpoint orientation is symmetric — normalize it. The predicate
    // *sequence* stays as written: predicate indices feed the
    // interesting-order tags, so reordering could change the frontier.
    key += std::to_string(std::min(j.left, j.right));
    key += '+';
    key += std::to_string(std::max(j.left, j.right));
    key += ':';
    AppendDouble(&key, j.selectivity);
    key += ',';
  }
  key += ";m=";
  for (MetricId m : schema.metrics()) {
    key += std::to_string(static_cast<int>(m));
    key += ',';
  }
  const ResolutionSchedule& sched = options.iama.schedule;
  key += ";s=";
  key += std::to_string(sched.NumLevels());
  key += ':';
  AppendDouble(&key, sched.alpha_target());
  key += ':';
  AppendDouble(&key, sched.alpha_step());
  key += ':';
  key += std::to_string(static_cast<int>(sched.kind()));
  key += ";b=";
  if (options.iama.initial_bounds.has_value()) {
    const CostVector& b = *options.iama.initial_bounds;
    for (int i = 0; i < b.dims(); ++i) {
      AppendDouble(&key, b[i]);
      key += ',';
    }
  } else {
    key += "inf";
  }
  // Result-affecting optimizer knobs. Thread counts and pools are
  // excluded: the parallel engine is frontier-equivalent by contract.
  const OptimizerOptions& opt = options.iama.optimizer;
  key += ";o=";
  AppendDouble(&key, opt.cell_gamma);
  key += opt.prune_against_all_resolutions ? ":1" : ":0";
  key += opt.park_next_level_only ? ":1" : ":0";
  key += opt.sorted_pruning ? ":1" : ":0";
  key += ";i=";
  key += std::to_string(ResolvedMaxIterations(options));
  return key;
}

struct OptimizerService::SessionState {
  QueryId id = kInvalidQueryId;
  Query query;
  SubmitOptions options;
  SnapshotObserver observer;
  std::string cache_key;
  int max_iterations = 0;
  bool has_deadline = false;
  Clock::time_point deadline;
  std::atomic<bool> cancel_requested{false};
  // Scheduler-thread-only state (built lazily on the first turn):
  std::unique_ptr<PlanFactory> factory;
  std::unique_ptr<IamaSession> session;
  int steps_done = 0;
  FrontierSnapshot last_snapshot;
};

OptimizerService::OptimizerService(const Catalog& catalog,
                                   ServiceOptions options)
    : catalog_(catalog), options_(std::move(options)) {
  MOQO_CHECK(options_.num_threads >= 1);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

OptimizerService::~OptimizerService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  scheduler_.join();
  std::unique_lock<std::mutex> lock(mu_);
  run_queue_.clear();
  // Unblock any Wait() on sessions the scheduler never finished.
  while (!sessions_.empty()) {
    FinalizeLocked(sessions_.begin()->second.get(), QueryState::kCancelled);
  }
  // Drain threads already inside Wait(): they still touch mu_, done_cv_,
  // and results_, which must not be destroyed under them.
  waiters_cv_.wait(lock, [this] { return waiters_ == 0; });
}

StatusOr<QueryId> OptimizerService::Submit(const Query& query,
                                           SubmitOptions options,
                                           SnapshotObserver observer) {
  // All user input is validated here (Status, not CHECK).
  MOQO_RETURN_IF_ERROR(ValidateQuery(query, catalog_));
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }
  if (options.priority < 1) {
    return Status::InvalidArgument("priority must be >= 1");
  }
  if (options.deadline_ms < 0.0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  if (options.iama.initial_bounds.has_value() &&
      options.iama.initial_bounds->dims() != options_.schema.dims()) {
    return Status::InvalidArgument(
        "initial_bounds dimension does not match the service metric schema");
  }
  if (options.iama.optimizer.pool != nullptr) {
    return Status::InvalidArgument(
        "optimizer.pool is owned by the service; do not inject one");
  }
  if (options.iama.optimizer.num_threads != 1) {
    return Status::InvalidArgument(
        "optimizer.num_threads is owned by the service (ServiceOptions"
        "::num_threads); leave it at 1");
  }

  // The cache key is only worth computing when a cache exists.
  const std::string key =
      options_.frontier_cache_capacity > 0
          ? CanonicalQueryKey(query, options_.schema, options)
          : std::string();
  const int max_iterations = ResolvedMaxIterations(options);

  QueryId id = kInvalidQueryId;
  // Set on a cache hit; streamed to the observer outside the lock.
  std::shared_ptr<const FrontierSnapshot> cached;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    ++stats_.submitted;
    auto hit = key.empty() ? cache_index_.end() : cache_index_.find(key);
    if (hit != cache_index_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, hit->second);
      const CacheEntry& entry = cache_lru_.front().second;
      StoredResult result;
      result.id = id;
      result.state = QueryState::kDone;
      result.iterations = entry.iterations;
      result.from_cache = true;
      result.frontier = entry.frontier;  // Shared, not copied.
      RecordResultLocked(std::move(result));
      ++stats_.cache_hits;
      ++stats_.completed;
      cached = entry.frontier;
    } else {
      auto state = std::make_unique<SessionState>();
      state->id = id;
      state->query = query;
      state->options = std::move(options);
      state->observer = std::move(observer);
      state->cache_key = key;
      state->max_iterations = max_iterations;
      if (state->options.deadline_ms > 0.0) {
        state->has_deadline = true;
        state->deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   state->options.deadline_ms));
      }
      sessions_.emplace(id, std::move(state));
      run_queue_.push_back(id);
    }
  }
  if (cached != nullptr) {
    // Stream the cached final frontier as the one and only snapshot.
    // (Waiters were already notified inside the lock.)
    if (observer) observer(id, *cached);
  } else {
    work_cv_.notify_one();
  }
  return id;
}

bool OptimizerService::Cancel(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second->cancel_requested.store(true, std::memory_order_relaxed);
  return true;
}

QueryResult OptimizerService::Wait(QueryId id) {
  QueryResult result;
  std::shared_ptr<const FrontierSnapshot> frontier;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Register as a waiter: pins the id's result against retention
    // eviction and holds off service destruction until we are out.
    ++waiters_;
    ++wait_counts_[id];
    done_cv_.wait(lock, [&] {
      return results_.find(id) != results_.end() ||
             sessions_.find(id) == sessions_.end();
    });
    auto it = results_.find(id);
    if (it != results_.end()) {
      const StoredResult& stored = it->second;
      result.id = stored.id;
      result.state = stored.state;
      result.iterations = stored.iterations;
      result.from_cache = stored.from_cache;
      frontier = stored.frontier;  // Shared; deep copy happens unlocked.
    }  // else: unknown id — result stays default-constructed.
    auto wit = wait_counts_.find(id);
    if (--wit->second == 0) wait_counts_.erase(wit);
    if (--waiters_ == 0) waiters_cv_.notify_all();
  }
  if (frontier != nullptr) result.frontier = *frontier;
  return result;
}

ServiceStats OptimizerService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int OptimizerService::active_waiters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_;
}

void OptimizerService::BuildSession(SessionState* s) {
  s->factory = std::make_unique<PlanFactory>(
      s->query, catalog_, options_.schema, options_.cost_params,
      options_.operator_options);
  IamaOptions iama = s->options.iama;
  iama.optimizer.pool = pool_.get();  // Shared pool (may be null).
  iama.optimizer.num_threads = 1;     // The service owns all parallelism.
  s->session = std::make_unique<IamaSession>(*s->factory, iama);
}

void OptimizerService::RecordResultLocked(StoredResult result) {
  const QueryId id = result.id;
  results_.emplace(id, std::move(result));
  results_order_.push_back(id);
  if (options_.result_retention > 0) {
    // Evict the oldest result that no thread is blocked in Wait() on —
    // evicting a waited-on result would silently lose the frontier its
    // waiter is about to read. Pinned results keep their age (the scan
    // preserves finish order); if everything in excess is pinned,
    // retention is temporarily exceeded (soft cap).
    while (results_order_.size() > options_.result_retention) {
      auto victim = results_order_.begin();
      while (victim != results_order_.end() &&
             wait_counts_.find(*victim) != wait_counts_.end()) {
        ++victim;
      }
      if (victim == results_order_.end()) break;  // All pinned.
      results_.erase(*victim);
      results_order_.erase(victim);
    }
  }
  done_cv_.notify_all();
}

void OptimizerService::FinalizeLocked(SessionState* s, QueryState state) {
  StoredResult result;
  result.id = s->id;
  result.state = state;
  result.iterations = s->steps_done;
  result.frontier =
      std::make_shared<const FrontierSnapshot>(std::move(s->last_snapshot));
  switch (state) {
    case QueryState::kDone:
      ++stats_.completed;
      if (options_.frontier_cache_capacity > 0) {
        auto it = cache_index_.find(s->cache_key);
        if (it != cache_index_.end()) {
          cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
          cache_lru_.front().second = {result.frontier, result.iterations};
        } else {
          cache_lru_.emplace_front(
              s->cache_key, CacheEntry{result.frontier, result.iterations});
          cache_index_.emplace(s->cache_key, cache_lru_.begin());
          if (cache_lru_.size() > options_.frontier_cache_capacity) {
            cache_index_.erase(cache_lru_.back().first);
            cache_lru_.pop_back();
          }
        }
      }
      break;
    case QueryState::kCancelled:
      ++stats_.cancelled;
      break;
    case QueryState::kExpired:
      ++stats_.expired;
      break;
    case QueryState::kQueued:
      MOQO_CHECK(false);  // Not a terminal state.
  }
  RecordResultLocked(std::move(result));
  sessions_.erase(s->id);  // Frees the arena and plan indexes.
}

void OptimizerService::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !run_queue_.empty(); });
    if (stop_) return;
    const QueryId id = run_queue_.front();
    run_queue_.pop_front();
    SessionState* s = sessions_.at(id).get();
    if (s->cancel_requested.load(std::memory_order_relaxed)) {
      FinalizeLocked(s, QueryState::kCancelled);
      continue;
    }
    lock.unlock();

    // Stepping happens outside the lock: the scheduler thread owns the
    // session exclusively (it is not in the run queue right now), so
    // Submit/Cancel/Wait stay responsive during long invocations.
    bool finished = false;
    QueryState end_state = QueryState::kDone;
    int steps_this_turn = 0;
    // Deadline gate before the (expensive) factory build: a session that
    // expired while queued must not pay plan-space construction.
    if (s->has_deadline && Clock::now() >= s->deadline) {
      finished = true;
      end_state = QueryState::kExpired;
    } else if (s->session == nullptr) {
      BuildSession(s);
    }
    for (int i = 0; i < s->options.priority && !finished; ++i) {
      if (s->has_deadline && Clock::now() >= s->deadline) {
        finished = true;
        end_state = QueryState::kExpired;
        break;
      }
      s->last_snapshot = s->session->Step();
      ++s->steps_done;
      ++steps_this_turn;
      if (s->observer) s->observer(s->id, s->last_snapshot);
      s->session->ApplyAction(UserAction::Continue());
      if (s->steps_done >= s->max_iterations) {
        finished = true;
        end_state = QueryState::kDone;
      } else if (s->cancel_requested.load(std::memory_order_relaxed)) {
        finished = true;
        end_state = QueryState::kCancelled;
      }
    }

    lock.lock();
    stats_.steps_executed += static_cast<uint64_t>(steps_this_turn);
    // Linearize Cancel against completion: Cancel sets the flag under
    // mu_ while the session is still in sessions_, so re-checking here
    // guarantees that a true-returning Cancel is observed as kCancelled
    // even when the last step finished concurrently.
    if (s->cancel_requested.load(std::memory_order_relaxed)) {
      finished = true;
      end_state = QueryState::kCancelled;
    }
    if (finished) {
      FinalizeLocked(s, end_state);
    } else {
      run_queue_.push_back(id);  // Round-robin: back of the line.
    }
  }
}

}  // namespace moqo
