#include "service/optimizer_service.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

#include "dist/backend.h"
#include "util/str.h"

namespace moqo {
namespace {

using Clock = std::chrono::steady_clock;

// Exact textual rendering (hexfloat) so that cache keys distinguish any
// two selectivities / bounds that could produce different cost vectors.
void AppendDouble(std::string* out, double v) { AppendHexDouble(out, v); }

int ResolvedMaxIterations(const SubmitRequest& request) {
  return request.max_iterations > 0 ? request.max_iterations
                                    : request.iama.schedule.NumLevels();
}

// The catalog-version-independent tail of CanonicalQueryKey. Split out
// so Submit can do the O(query) string construction outside the
// admission lock and only prepend the version prefix under it.
// Tenant, priority, deadline, and streaming knobs are deliberately
// excluded: they never affect the frontier, so submissions differing
// only in them share cache lines and coalesce.
std::string CanonicalQueryKeySuffix(const Query& query,
                                    const MetricSchema& schema,
                                    const SubmitRequest& options) {
  std::string key = "t=";
  for (const TableRef& t : query.tables) {  // Aliases are display-only.
    key += std::to_string(t.table);
    key += ':';
    AppendDouble(&key, t.predicate_selectivity);
    key += ',';
  }
  key += ";j=";
  for (const JoinPredicate& j : query.joins) {
    // Endpoint orientation is symmetric — normalize it. The predicate
    // *sequence* stays as written: predicate indices feed the
    // interesting-order tags, so reordering could change the frontier.
    key += std::to_string(std::min(j.left, j.right));
    key += '+';
    key += std::to_string(std::max(j.left, j.right));
    key += ':';
    AppendDouble(&key, j.selectivity);
    key += ',';
  }
  key += ";m=";
  for (MetricId m : schema.metrics()) {
    key += std::to_string(static_cast<int>(m));
    key += ',';
  }
  const ResolutionSchedule& sched = options.iama.schedule;
  key += ";s=";
  key += std::to_string(sched.NumLevels());
  key += ':';
  AppendDouble(&key, sched.alpha_target());
  key += ':';
  AppendDouble(&key, sched.alpha_step());
  key += ':';
  key += std::to_string(static_cast<int>(sched.kind()));
  key += ";b=";
  if (options.iama.initial_bounds.has_value()) {
    const CostVector& b = *options.iama.initial_bounds;
    for (int i = 0; i < b.dims(); ++i) {
      AppendDouble(&key, b[i]);
      key += ',';
    }
  } else {
    key += "inf";
  }
  // Result-affecting optimizer knobs. Thread counts and pools are
  // excluded: the parallel engine is frontier-equivalent by contract.
  const OptimizerOptions& opt = options.iama.optimizer;
  key += ";o=";
  AppendDouble(&key, opt.cell_gamma);
  key += opt.prune_against_all_resolutions ? ":1" : ":0";
  key += opt.park_next_level_only ? ":1" : ":0";
  key += opt.sorted_pruning ? ":1" : ":0";
  key += ";i=";
  key += std::to_string(ResolvedMaxIterations(options));
  return key;
}

// Joins a version prefix to a precomputed suffix. The catalog version
// leads the key: frontiers depend on the base statistics, so
// submissions from different catalog generations must never share a
// cache line, a shard-placement bucket, or an in-flight leader
// (ROADMAP's missing-epoch gap).
std::string VersionedKey(uint64_t catalog_version,
                         const std::string& suffix) {
  std::string key = "v2;c=";
  key += std::to_string(catalog_version);
  key += ';';
  key += suffix;
  return key;
}

}  // namespace

std::string CanonicalQueryKey(const Query& query, const MetricSchema& schema,
                              const SubmitRequest& request,
                              uint64_t catalog_version) {
  return VersionedKey(catalog_version,
                      CanonicalQueryKeySuffix(query, schema, request));
}

std::string CanonicalQueryKey(const Query& query, const MetricSchema& schema,
                              const SubmitOptions& options,
                              uint64_t catalog_version) {
  SubmitRequest request;
  request.iama = options.iama;
  request.max_iterations = options.max_iterations;
  return CanonicalQueryKey(query, schema, request, catalog_version);
}

// One submitted query: its observer, scheduling parameters, and the run
// it is attached to (its own for a leader; a shared one for a follower).
struct OptimizerService::QueryEntry {
  QueryId id = kInvalidQueryId;
  SnapshotObserver observer;
  // Pull-based stream handed to the submitter (null unless requested).
  // The shard pushes into it per step; finalization pushes the terminal
  // event. Its own mutex is a leaf below mu_.
  std::shared_ptr<SnapshotSubscription> subscription;
  // Admission-control identity; "" = default tenant. Finalization
  // releases the tenant's in-flight slot.
  std::string tenant;
  int priority = 1;
  bool has_deadline = false;
  Clock::time_point deadline;
  // True when this submission attached to an in-flight duplicate (stays
  // true through leadership promotion).
  bool coalesced = false;
  // Snapshots delivered to this entry's observer, credited at turn
  // boundaries under mu_; completion delivers the final frontier to
  // observers still at 0.
  int snapshots_seen = 0;
  std::atomic<bool> cancel_requested{false};
  RunState* run = nullptr;
};

// One physical optimization: the session plus the queries riding on it.
// Queue membership, leadership, followers, pending bounds, and the
// published snapshot are guarded by mu_; factory/session/steps_done/
// last_snapshot belong to the shard thread whose turn it is (a run is
// never in a queue while being stepped, and turn boundaries acquire mu_,
// ordering successive turns even across different shard threads).
struct OptimizerService::RunState {
  uint64_t run_id = 0;
  std::string key;
  Query query;
  IamaOptions iama;  // From the founding submission (key-equal for all).
  int max_iterations = 0;
  size_t home_shard = 0;
  // The catalog snapshot pinned at admission: the run optimizes on it
  // for its whole lifetime, immune to live catalog mutation. Immutable,
  // so reading it needs no lock once set.
  std::shared_ptr<const CatalogSnapshot> catalog;
  uint64_t catalog_version = 0;  // == catalog->version(), for results.
  // Fragment-store epoch observed at admission (in the same mu_
  // critical section that a RefreshCatalog would use to mark this run
  // stale): the run's fragment keys are built against this epoch, so a
  // refresh between admission and the first turn cannot make the run
  // read or write fragments of the new catalog generation.
  uint64_t fragment_epoch = 0;
  QueryId leader = kInvalidQueryId;
  std::vector<QueryId> followers;  // Attach order; promotion order.
  // ApplyBounds happened: the result no longer matches `key`, so no new
  // followers attach and the cache is not filled on completion.
  bool diverged = false;
  // RefreshCatalog happened after this run's admission: the run
  // finishes on its pinned snapshot, but — mirroring `diverged` — it
  // accepts no new followers and never publishes to the whole-query
  // cache or the fragment store (its results describe dead statistics).
  bool stale = false;
  std::optional<CostVector> pending_bounds;
  // Tenant of the founding submission, for fragment warm-hit telemetry
  // attribution: the founder paid for the run's admission slot, so its
  // tenant gets the seeding credit even after leadership promotion.
  std::string tenant;
  // Cells seeded from the fragment store were credited to
  // tenant_fragment_hits_ (done once, at the first turn boundary —
  // seeding happens entirely during session build).
  bool fragment_hits_credited = false;
  // Shard-thread-only state (built lazily on the first turn, or at
  // admission when the fragment store is enabled — see Submit):
  std::unique_ptr<PlanFactory> factory;
  // Lease on the distributed worker tier (null for local runs). Ordered
  // before `session`: the session's optimizer holds a pointer to the
  // lease's exchange, so the session must be destroyed first.
  std::unique_ptr<dist::DistRun> dist;
  std::unique_ptr<IamaSession> session;
  // Per-run adapter between the session's optimizer and the service's
  // fragment store (null when the store is disabled). Shard-thread-only
  // except for the final PublishAll, which runs after the run is
  // destroyed (the provider is moved out first) and outside mu_.
  std::unique_ptr<FragmentStoreProvider> fragment_provider;
  int steps_done = 0;
  FrontierSnapshot last_snapshot;
  // Published under mu_ at turn boundaries, for follower attach/cancel/
  // expiry results between turns.
  std::shared_ptr<const FrontierSnapshot> last_published;
  int steps_published = 0;
  // Optimizer work counters mirrored at turn boundaries (under mu_), so
  // finalization paths never touch the session from other threads.
  uint64_t plans_published = 0;
  uint64_t pairs_published = 0;
};

OptimizerService::OptimizerService(const Catalog& catalog,
                                   ServiceOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      catalog_snapshot_(catalog.Snapshot()) {
  MOQO_CHECK(options_.num_threads >= 1);
  MOQO_CHECK(options_.num_shards >= 1);
  if (options_.fragment_cache_bytes > 0) {
    FragmentStore::Options store_options;
    store_options.capacity_bytes = options_.fragment_cache_bytes;
    store_options.store_path = options_.fragment_store_path;
    store_options.cold_budget_bytes = options_.fragment_cold_budget_bytes;
    store_options.fsync_mode = options_.fragment_fsync;
    store_options.fsync_interval_ms = options_.fragment_fsync_interval_ms;
    // With a store_path this replays the persistence log before any
    // query is admitted: the recovered epoch and cold index are in
    // place when the first lookup happens.
    fragment_store_ = std::make_unique<FragmentStore>(store_options);
    fragment_store_->SetCatalogVersion(catalog_snapshot_->version());
  }
  const std::vector<int> partition =
      PartitionThreads(options_.num_threads, options_.num_shards);
  pools_.resize(partition.size());
  for (size_t i = 0; i < partition.size(); ++i) {
    if (partition[i] > 1) pools_[i] = std::make_unique<ThreadPool>(partition[i]);
  }
  shard_queues_.resize(static_cast<size_t>(options_.num_shards));
  schedulers_.reserve(static_cast<size_t>(options_.num_shards));
  for (size_t i = 0; i < static_cast<size_t>(options_.num_shards); ++i) {
    schedulers_.emplace_back([this, i] { SchedulerLoop(i); });
  }
}

OptimizerService::~OptimizerService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : schedulers_) t.join();
  std::unique_lock<std::mutex> lock(mu_);
  for (std::deque<uint64_t>& q : shard_queues_) q.clear();
  // Unblock any Wait() on queries the shards never finished.
  while (!entries_.empty()) {
    QueryEntry* entry = entries_.begin()->second.get();
    const RunState* run = entry->run;
    FinalizeEntryLocked(entry, QueryState::kCancelled, run->last_published,
                        run->steps_published, run->plans_published,
                        run->pairs_published);
  }
  runs_.clear();
  inflight_.clear();
  // Drain threads already inside Wait(): they still touch mu_, done_cv_,
  // and results_, which must not be destroyed under them.
  waiters_cv_.wait(lock, [this] { return waiters_ == 0; });
}

StatusOr<QueryId> OptimizerService::Submit(const Query& query,
                                           SubmitOptions options,
                                           SnapshotObserver observer) {
  SubmitRequest request;
  request.query = query;
  request.priority = options.priority;
  request.deadline_ms = options.deadline_ms;
  request.max_iterations = options.max_iterations;
  request.iama = std::move(options.iama);
  request.observer = std::move(observer);
  StatusOr<SubmitResponse> response = Submit(std::move(request));
  if (!response.ok()) return response.status();
  return response.value().id;
}

StatusOr<SubmitResponse> OptimizerService::Submit(SubmitRequest request) {
  // All user input is validated here (Status, not CHECK) — this is the
  // entry point remote bytes reach after decoding, so nothing below may
  // abort on a malformed field. The query itself is validated under mu_
  // against the pinned admission snapshot (the statistics the run will
  // actually optimize on), further below.
  if (request.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }
  if (request.priority < 1) {
    return Status::InvalidArgument("priority must be >= 1");
  }
  if (request.deadline_ms < 0.0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  if (request.iama.initial_bounds.has_value() &&
      request.iama.initial_bounds->dims() != options_.schema.dims()) {
    return Status::InvalidArgument(
        "initial_bounds dimension does not match the service metric schema");
  }
  if (request.iama.optimizer.pool != nullptr) {
    return Status::InvalidArgument(
        "optimizer.pool is owned by the service; do not inject one");
  }
  if (request.iama.optimizer.num_threads != 1) {
    return Status::InvalidArgument(
        "optimizer.num_threads is owned by the service (ServiceOptions"
        "::num_threads); leave it at 1");
  }
  if (request.iama.optimizer.fragment_store != nullptr ||
      request.iama.optimizer.fragment_publish) {
    return Status::InvalidArgument(
        "optimizer.fragment_store/fragment_publish are owned by the "
        "service (ServiceOptions::fragment_cache_bytes); leave them at "
        "their defaults");
  }

  const int max_iterations = ResolvedMaxIterations(request);
  if (options_.max_iterations_limit > 0 &&
      max_iterations > options_.max_iterations_limit) {
    // Checked on the resolved value so a schedule-derived step count is
    // bounded too, not just an explicit request.
    return Status::InvalidArgument(
        "max_iterations " + std::to_string(max_iterations) +
        " exceeds the service limit of " +
        std::to_string(options_.max_iterations_limit));
  }
  // Tenant quota and fair-share weight (options_ is immutable after
  // construction, so the lookup needs no lock). The weight scales the
  // round-robin turn length — scheduling only, never the frontier.
  auto quota_it = options_.tenant_quotas.find(request.tenant);
  const TenantQuota& quota = quota_it != options_.tenant_quotas.end()
                                 ? quota_it->second
                                 : options_.default_quota;
  const long long weighted_priority =
      static_cast<long long>(request.priority) *
      static_cast<long long>(std::max(1, quota.weight));
  const int effective_priority = static_cast<int>(
      std::min<long long>(weighted_priority, 1 << 20));

  // Validation and the O(query) canonical-key construction stay outside
  // the admission lock (they are the expensive part of Submit); only
  // the catalog-version prefix depends on state mu_ guards. The
  // canonical key drives shard placement, the completed-run cache, and
  // in-flight coalescing, so it is always computed. It embeds the
  // admission snapshot's version: keys from different catalog
  // generations never collide.
  std::shared_ptr<const CatalogSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = catalog_snapshot_;
  }
  MOQO_RETURN_IF_ERROR(ValidateQuery(request.query, *snapshot));
  const std::string key_suffix =
      CanonicalQueryKeySuffix(request.query, options_.schema, request);

  SubmitResponse response;
  // Set on a cache hit; streamed to the observer outside the lock.
  std::shared_ptr<const FrontierSnapshot> cached;
  bool notify = false;
  // Set when the new run's session must be built before it is enqueued
  // (fragment services build at admission; see below).
  RunState* build_at_admission = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      // Admission is closed for good (rolling restart); even cache hits
      // are rejected so clients fail over to a serving replica at once.
      ++stats_.drain_rejected;
      return Status::Draining(
          "service is draining for restart; resubmit to another replica");
    }
    if (catalog_snapshot_ != snapshot) {
      // A RefreshCatalog landed between the peek and admission:
      // re-validate against the snapshot this submission actually pins
      // (rare — the price of keeping validation off the hot lock).
      // Admission stays atomic with respect to refresh: a submission
      // either fully precedes one (pins the old snapshot, is marked
      // stale with the other live runs) or fully follows it.
      snapshot = catalog_snapshot_;
      MOQO_RETURN_IF_ERROR(ValidateQuery(request.query, *snapshot));
    }
    const std::string key = VersionedKey(snapshot->version(), key_suffix);
    response.catalog_version = snapshot->version();
    auto hit = options_.frontier_cache_capacity > 0 ? cache_index_.find(key)
                                                    : cache_index_.end();
    if (hit != cache_index_.end()) {
      // Cache hits occupy no run and no tenant slot, so they are served
      // even at quota or over capacity — rejecting free work helps
      // nobody.
      const QueryId id = next_id_++;
      ++stats_.submitted;
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, hit->second);
      const CacheEntry& entry = cache_lru_.front().second;
      StoredResult result;
      result.id = id;
      result.state = QueryState::kDone;
      result.iterations = entry.iterations;
      result.from_cache = true;
      result.catalog_version = entry.catalog_version;
      result.frontier = entry.frontier;  // Shared, not copied.
      RecordResultLocked(std::move(result));
      ++stats_.cache_hits;
      ++stats_.completed;
      cached = entry.frontier;
      response.id = id;
      response.from_cache = true;
      response.catalog_version = entry.catalog_version;
      if (request.subscribe) {
        // The stream of a cached result is exactly one final event.
        response.subscription = std::make_shared<SnapshotSubscription>(
            request.subscription_capacity);
        response.subscription->Push(entry.frontier, /*is_final=*/true);
      }
    } else {
      // Per-tenant in-flight quota: leaders and followers both hold a
      // slot (a follower still consumes a result, a Wait, a stream).
      auto tenant_count = tenant_inflight_.find(request.tenant);
      if (quota.max_inflight > 0 &&
          tenant_count != tenant_inflight_.end() &&
          tenant_count->second >= quota.max_inflight) {
        ++stats_.quota_rejected;
        return Status::QuotaExceeded(
            "tenant '" + request.tenant + "' is at its in-flight quota (" +
            std::to_string(quota.max_inflight) + ")");
      }
      auto flight = options_.coalesce_in_flight ? inflight_.find(key)
                                                : inflight_.end();
      const bool coalesces = flight != inflight_.end();
      if (!coalesces && options_.max_inflight_runs > 0 &&
          runs_.size() >= options_.max_inflight_runs) {
        // Load shed: the submission would create a run beyond the
        // bound. The retry-after hint scales with the queued backlog —
        // a crude drain-time estimate, monotone in load.
        ++stats_.shed;
        size_t queued = 0;
        for (const std::deque<uint64_t>& q : shard_queues_) {
          queued += q.size();
        }
        if (queued < 1) queued = 1;
        const uint64_t hint = static_cast<uint64_t>(
            options_.shed_retry_hint_ms * static_cast<double>(queued) + 0.5);
        return Status::Shedding(
            "service over capacity (" + std::to_string(runs_.size()) + "/" +
                std::to_string(options_.max_inflight_runs) +
                " runs in flight)",
            hint);
      }
      const QueryId id = next_id_++;
      ++stats_.submitted;
      response.id = id;
      auto entry = std::make_unique<QueryEntry>();
      entry->id = id;
      entry->observer = std::move(request.observer);
      entry->tenant = request.tenant;
      entry->priority = effective_priority;
      if (request.subscribe) {
        entry->subscription = std::make_shared<SnapshotSubscription>(
            request.subscription_capacity);
        response.subscription = entry->subscription;
      }
      ++tenant_inflight_[request.tenant];
      if (request.deadline_ms > 0.0) {
        entry->has_deadline = true;
        entry->deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   request.deadline_ms));
      }
      if (coalesces) {
        // Coalesce: ride the in-flight leader instead of optimizing the
        // same query a second time.
        RunState* run = runs_.at(flight->second).get();
        entry->run = run;
        entry->coalesced = true;
        run->followers.push_back(id);
        ++stats_.coalesced;
        response.coalesced = true;
      } else {
        auto run = std::make_unique<RunState>();
        run->run_id = next_run_id_++;
        run->key = key;
        run->query = std::move(request.query);
        run->iama = request.iama;
        run->max_iterations = max_iterations;
        // Pin the admission-time catalog generation: the snapshot the
        // session will optimize on and the fragment epoch its keys are
        // built against (see the RunState field comments).
        run->catalog = snapshot;
        run->catalog_version = snapshot->version();
        run->fragment_epoch =
            fragment_store_ != nullptr ? fragment_store_->epoch() : 0;
        run->tenant = request.tenant;
        run->home_shard = static_cast<size_t>(
            Fnv1a64(key) % static_cast<uint64_t>(options_.num_shards));
        run->leader = id;
        entry->run = run.get();
        if (options_.coalesce_in_flight) inflight_[key] = run->run_id;
        if (fragment_store_ != nullptr) {
          // Fragment services build the session (an O(plan-space) seed
          // probe) at admission, outside the lock, and enqueue after:
          // paired with the first-turn re-probe in SchedulerLoop, this
          // brackets the window in which concurrent overlapping runs
          // publish — instead of racing them with a single mid-window
          // lookup. Until the run is enqueued below no shard can pop
          // it, so the build needs no lock.
          build_at_admission = run.get();
        } else {
          shard_queues_[run->home_shard].push_back(run->run_id);
          notify = true;
        }
        runs_.emplace(run->run_id, std::move(run));
      }
      entries_.emplace(id, std::move(entry));
    }
    // Every successful admission (fresh, coalesced, or cache hit)
    // reports the tenant's cumulative fragment warm hits as of now.
    const auto hits_it = tenant_fragment_hits_.find(request.tenant);
    if (hits_it != tenant_fragment_hits_.end()) {
      response.tenant_fragment_hits = hits_it->second;
    }
  }
  if (cached != nullptr) {
    // Stream the cached final frontier as the one and only snapshot.
    // (Waiters were already notified inside the lock.)
    if (request.observer) request.observer(response.id, *cached);
  } else if (notify) {
    work_cv_.notify_one();
  }
  if (build_at_admission != nullptr) {
    BuildRun(build_at_admission);
    {
      std::lock_guard<std::mutex> lock(mu_);
      shard_queues_[build_at_admission->home_shard].push_back(
          build_at_admission->run_id);
    }
    work_cv_.notify_one();
  }
  return response;
}

bool OptimizerService::Cancel(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  QueryEntry* entry = it->second.get();
  entry->cancel_requested.store(true, std::memory_order_relaxed);
  RunState* run = entry->run;
  if (run->leader != id) {
    // A follower detaches immediately: the run (and its other riders)
    // are unaffected, so there is no turn boundary to wait for.
    run->followers.erase(
        std::find(run->followers.begin(), run->followers.end(), id));
    FinalizeEntryLocked(entry, QueryState::kCancelled, run->last_published,
                        run->steps_published, run->plans_published,
                        run->pairs_published);
  }
  // Leaders are finalized by the shard thread at the next step boundary
  // (possibly handing leadership to the oldest follower).
  return true;
}

Status OptimizerService::ApplyBounds(QueryId id, const CostVector& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown or already finished query id");
  }
  if (bounds.dims() != options_.schema.dims()) {
    return Status::InvalidArgument(
        "bounds dimension does not match the service metric schema");
  }
  RunState* run = it->second->run;
  // Applied by the stepping shard at the next turn boundary; several
  // ApplyBounds before that boundary collapse to the latest one.
  run->pending_bounds = bounds;
  if (!run->diverged) {
    // The run's result no longer corresponds to its canonical key:
    // stop new duplicates from attaching and keep it out of the cache.
    run->diverged = true;
    auto flight = inflight_.find(run->key);
    if (flight != inflight_.end() && flight->second == run->run_id) {
      inflight_.erase(flight);
    }
  }
  return Status::OK();
}

uint64_t OptimizerService::RefreshCatalog() {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const CatalogSnapshot> fresh = catalog_.Snapshot();
  if (fresh->version() == catalog_snapshot_->version()) {
    // Nothing changed since the last pin: invalidating would only
    // throw away valid cache entries and fragments.
    return catalog_snapshot_->version();
  }
  catalog_snapshot_ = std::move(fresh);
  // Old-generation fragments become unreachable (fragment keys embed
  // the epoch) and age out of the store via LRU; cold-tier entries are
  // swept (and the bump made durable) by the store's write-behind
  // thread, with decode-time staleness checks covering the race.
  if (fragment_store_ != nullptr) {
    fragment_store_->BumpEpoch();
    fragment_store_->SetCatalogVersion(catalog_snapshot_->version());
  }
  // Whole-query cache: every resident key embeds a dead catalog version
  // and can never be hit again — drop the entries now instead of
  // letting them squat in the LRU until capacity pushes them out.
  cache_lru_.clear();
  cache_index_.clear();
  // In-flight runs finish on their pinned snapshots (the anytime
  // contract for their riders) but are excluded from every sharing
  // surface from here on — exactly the diverged-run machinery, minus
  // the bounds change.
  for (auto& [rid, run] : runs_) {
    if (run->stale) continue;
    run->stale = true;
    auto flight = inflight_.find(run->key);
    if (flight != inflight_.end() && flight->second == rid) {
      inflight_.erase(flight);
    }
  }
  ++stats_.catalog_refreshes;
  return catalog_snapshot_->version();
}

uint64_t OptimizerService::catalog_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_snapshot_->version();
}

QueryResult OptimizerService::Wait(QueryId id) {
  QueryResult result;
  std::shared_ptr<const FrontierSnapshot> frontier;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Register as a waiter: pins the id's result against retention
    // eviction and holds off service destruction until we are out.
    ++waiters_;
    ++wait_counts_[id];
    done_cv_.wait(lock, [&] {
      return results_.find(id) != results_.end() ||
             entries_.find(id) == entries_.end();
    });
    auto it = results_.find(id);
    if (it != results_.end()) {
      const StoredResult& stored = it->second;
      result.id = stored.id;
      result.state = stored.state;
      result.iterations = stored.iterations;
      result.from_cache = stored.from_cache;
      result.coalesced = stored.coalesced;
      result.plans_generated = stored.plans_generated;
      result.pairs_generated = stored.pairs_generated;
      result.catalog_version = stored.catalog_version;
      frontier = stored.frontier;  // Shared; deep copy happens unlocked.
    }  // else: unknown id — result stays default-constructed.
    auto wit = wait_counts_.find(id);
    if (--wit->second == 0) wait_counts_.erase(wit);
    if (--waiters_ == 0) waiters_cv_.notify_all();
  }
  if (frontier != nullptr) result.frontier = *frontier;
  return result;
}

ServiceStats OptimizerService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  if (fragment_store_ != nullptr) {
    // The store keeps its own (internally sharded) counters; merging
    // outside mu_ keeps the lock orders disjoint.
    const FragmentStoreStats fs = fragment_store_->Stats();
    out.fragment_hits = fs.hits;
    out.fragment_misses = fs.misses;
    out.fragment_publishes = fs.publishes;
    out.fragment_evictions = fs.evictions;
    out.fragment_bytes = fs.bytes;
    out.fragment_cold_hits = fs.cold_hits;
    out.fragment_promotions = fs.promotions;
    out.fragment_demotions = fs.demotions;
    out.fragment_compactions = fs.compactions;
  }
  return out;
}

int OptimizerService::active_waiters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_;
}

void OptimizerService::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool OptimizerService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void OptimizerService::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  // Every finalization notifies done_cv_ (via RecordResultLocked), so
  // the predicate is re-checked exactly when an entry retires. With
  // BeginDrain() in effect no new entries can appear, making this a
  // terminating drain barrier; without it, it is simply "idle right
  // now".
  done_cv_.wait(lock, [&] { return entries_.empty(); });
}

bool OptimizerService::AnyQueuedLocked() const {
  for (const std::deque<uint64_t>& q : shard_queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

uint64_t OptimizerService::PopRunLocked(size_t shard) {
  std::deque<uint64_t>& own = shard_queues_[shard];
  if (!own.empty()) {
    const uint64_t id = own.front();
    own.pop_front();
    return id;
  }
  // Steal from the back of the largest other queue: the back is the run
  // farthest from its home shard's attention, so stealing it interferes
  // least with the victim's round-robin order.
  size_t victim = shard;
  size_t victim_size = 0;
  for (size_t j = 0; j < shard_queues_.size(); ++j) {
    if (j != shard && shard_queues_[j].size() > victim_size) {
      victim = j;
      victim_size = shard_queues_[j].size();
    }
  }
  MOQO_CHECK(victim != shard);  // Caller guarantees AnyQueuedLocked().
  const uint64_t id = shard_queues_[victim].back();
  shard_queues_[victim].pop_back();
  ++stats_.work_steals;
  return id;
}

void OptimizerService::BuildRun(RunState* run) {
  // The factory pins the run's admission snapshot — not the live
  // catalog — so a RefreshCatalog between admission and this first turn
  // (or mid-run) never changes what the session optimizes on.
  run->factory = std::make_unique<PlanFactory>(
      run->query, run->catalog, options_.schema, options_.cost_params,
      options_.operator_options);
  IamaOptions iama = run->iama;
  iama.optimizer.pool = nullptr;   // Rebound to the stepping shard's pool
  iama.optimizer.num_threads = 1;  // each turn; the service owns all
                                   // parallelism.
  // Large queries try to lease the distributed worker tier. A null
  // lease (tier busy, dead, or a worker rejected the assignment — e.g.
  // the run pins a catalog version the workers don't have) just means
  // this run executes locally; distribution is never a requirement.
  if (options_.distributed_backend != nullptr &&
      options_.distributed_min_tables > 0 &&
      run->query.NumTables() >= options_.distributed_min_tables &&
      run->max_iterations > 0) {
    run->dist = options_.distributed_backend->TryBeginRun(
        run->query, run->catalog_version, iama,
        static_cast<uint32_t>(run->max_iterations));
  }
  if (run->dist != nullptr) {
    // Distributed runs exchange per-cell deltas instead of sharing
    // fragments: a cell seeded on one replica but not another would
    // break lockstep, so the optimizer CHECKs the two are exclusive
    // (any request-supplied fragment options are cleared here).
    iama.optimizer.phase2_exchange = run->dist->exchange();
    iama.optimizer.fragment_store = nullptr;
    iama.optimizer.fragment_publish = false;
  } else if (fragment_store_ != nullptr) {
    run->fragment_provider = std::make_unique<FragmentStoreProvider>(
        fragment_store_.get(), run->query, options_.schema, run->iama,
        options_.operator_options.enable_interesting_orders,
        options_.fragment_min_tables, run->fragment_epoch);
    iama.optimizer.fragment_store = run->fragment_provider.get();
    iama.optimizer.fragment_publish = options_.fragment_publish;
  }
  run->session = std::make_unique<IamaSession>(*run->factory, iama);
}

void OptimizerService::RecordResultLocked(StoredResult result) {
  const QueryId id = result.id;
  results_.emplace(id, std::move(result));
  results_order_.push_back(id);
  if (options_.result_retention > 0) {
    // Evict the oldest result that no thread is blocked in Wait() on —
    // evicting a waited-on result would silently lose the frontier its
    // waiter is about to read. Pinned results keep their age (the scan
    // preserves finish order); if everything in excess is pinned,
    // retention is temporarily exceeded (soft cap).
    while (results_order_.size() > options_.result_retention) {
      auto victim = results_order_.begin();
      while (victim != results_order_.end() &&
             wait_counts_.find(*victim) != wait_counts_.end()) {
        ++victim;
      }
      if (victim == results_order_.end()) break;  // All pinned.
      results_.erase(*victim);
      results_order_.erase(victim);
    }
  }
  done_cv_.notify_all();
}

void OptimizerService::FinalizeEntryLocked(
    QueryEntry* entry, QueryState state,
    std::shared_ptr<const FrontierSnapshot> frontier, int iterations,
    uint64_t plans, uint64_t pairs) {
  StoredResult result;
  result.id = entry->id;
  result.state = state;
  result.iterations = iterations;
  result.coalesced = entry->coalesced;
  result.plans_generated = plans;
  result.pairs_generated = pairs;
  result.catalog_version = entry->run->catalog_version;
  result.frontier = frontier != nullptr
                        ? std::move(frontier)
                        : std::make_shared<const FrontierSnapshot>();
  switch (state) {
    case QueryState::kDone:
      ++stats_.completed;
      break;
    case QueryState::kCancelled:
      ++stats_.cancelled;
      break;
    case QueryState::kExpired:
      ++stats_.expired;
      break;
    case QueryState::kQueued:
      MOQO_CHECK(false);  // Not a terminal state.
  }
  if (entry->subscription != nullptr) {
    // The terminal frontier is never dropped: Push closes the stream, so
    // this event survives any backlog (drop-oldest evicts older ones to
    // make room) and late pushes from a turn already in flight are
    // ignored. Drops are folded into service stats here — the
    // subscription outlives the entry, but its count is stable once
    // closed.
    entry->subscription->Push(result.frontier, /*is_final=*/true);
    stats_.snapshot_drops += entry->subscription->dropped_total();
  }
  // Release the tenant's in-flight slot (every non-cache admission took
  // one, the anonymous tenant "" included).
  auto tenant_it = tenant_inflight_.find(entry->tenant);
  if (tenant_it != tenant_inflight_.end() && --tenant_it->second <= 0) {
    tenant_inflight_.erase(tenant_it);
  }
  RecordResultLocked(std::move(result));
  entries_.erase(entry->id);
}

void OptimizerService::SweepExpiredFollowersLocked(RunState* run,
                                                   Clock::time_point now) {
  for (size_t i = 0; i < run->followers.size();) {
    QueryEntry* f = entries_.at(run->followers[i]).get();
    if (f->has_deadline && now >= f->deadline) {
      FinalizeEntryLocked(f, QueryState::kExpired, run->last_published,
                          run->steps_published, run->plans_published,
                          run->pairs_published);
      run->followers.erase(run->followers.begin() +
                           static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void OptimizerService::CompleteRunLocked(RunState* run,
                                         std::vector<LateDelivery>* deliveries) {
  // Turn boundaries publish before completing, so the published
  // snapshot is the final frontier (the fallback covers zero-step runs).
  std::shared_ptr<const FrontierSnapshot> frontier =
      run->last_published != nullptr
          ? run->last_published
          : std::make_shared<const FrontierSnapshot>();
  // Diverged runs no longer match their key; stale runs describe a dead
  // catalog generation. Neither may fill the cache.
  if (!run->diverged && !run->stale && options_.frontier_cache_capacity > 0) {
    auto it = cache_index_.find(run->key);
    if (it != cache_index_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      cache_lru_.front().second = {frontier, run->steps_done,
                                   run->catalog_version};
    } else {
      cache_lru_.emplace_front(
          run->key,
          CacheEntry{frontier, run->steps_done, run->catalog_version});
      cache_index_.emplace(run->key, cache_lru_.begin());
      if (cache_lru_.size() > options_.frontier_cache_capacity) {
        cache_index_.erase(cache_lru_.back().first);
        cache_lru_.pop_back();
      }
    }
  }
  // The final frontier is owed to every observer that never saw a step
  // snapshot (followers that attached during or after the last turn, or
  // a leader promoted after the final step); delivery happens outside
  // the lock, after all results below are visible to waiters.
  QueryEntry* leader = entries_.at(run->leader).get();
  if (leader->observer && leader->snapshots_seen == 0) {
    deliveries->push_back({run->leader, leader->observer, frontier});
  }
  FinalizeEntryLocked(leader, QueryState::kDone, frontier, run->steps_done,
                      run->plans_published, run->pairs_published);
  for (QueryId fid : run->followers) {
    QueryEntry* f = entries_.at(fid).get();
    if (f->observer && f->snapshots_seen == 0) {
      deliveries->push_back({fid, f->observer, frontier});
    }
    FinalizeEntryLocked(f, QueryState::kDone, frontier, run->steps_done,
                        run->plans_published, run->pairs_published);
  }
  run->followers.clear();
  DestroyRunLocked(run);
}

bool OptimizerService::RetireLeaderLocked(RunState* run, QueryState state) {
  QueryEntry* leader = entries_.at(run->leader).get();
  FinalizeEntryLocked(leader, state, run->last_published,
                      run->steps_published, run->plans_published,
                      run->pairs_published);
  if (run->followers.empty()) {
    DestroyRunLocked(run);
    return false;
  }
  run->leader = run->followers.front();
  run->followers.erase(run->followers.begin());
  return true;
}

void OptimizerService::DestroyRunLocked(RunState* run) {
  auto flight = inflight_.find(run->key);
  if (flight != inflight_.end() && flight->second == run->run_id) {
    inflight_.erase(flight);
  }
  runs_.erase(run->run_id);  // Frees the arena and plan indexes.
}

void OptimizerService::SchedulerLoop(size_t shard) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || AnyQueuedLocked(); });
    if (stop_) return;
    const uint64_t rid = PopRunLocked(shard);
    RunState* run = runs_.at(rid).get();
    // Adopt the run: it re-enqueues on this shard from now on, so a
    // steal moves a run once instead of being re-counted (and re-paid)
    // at every subsequent turn while the victim's queue sits empty.
    run->home_shard = shard;
    const Clock::time_point now = Clock::now();
    SweepExpiredFollowersLocked(run, now);
    // Pre-step gate: a cancelled or expired leader is finalized before
    // the (expensive) factory build; leadership hands off to the oldest
    // follower, and the run dies only when no rider remains. Queued runs
    // always have steps left (completion happens at turn end), so a
    // promoted leader continues the run rather than re-enqueueing it
    // from scratch.
    bool run_destroyed = false;
    for (;;) {
      QueryEntry* gate_leader = entries_.at(run->leader).get();
      QueryState gate = QueryState::kQueued;  // Sentinel: no event.
      if (gate_leader->cancel_requested.load(std::memory_order_relaxed)) {
        gate = QueryState::kCancelled;
      } else if (gate_leader->has_deadline && now >= gate_leader->deadline) {
        gate = QueryState::kExpired;
      }
      if (gate == QueryState::kQueued) break;
      if (!RetireLeaderLocked(run, gate)) {
        run_destroyed = true;
        break;
      }
    }
    if (run_destroyed) continue;

    // Copy the turn's inputs while mu_ is held: the leader entry cannot
    // be erased during the turn (only the stepping shard finalizes
    // leaders), so its deadline copy and atomic cancel flag are safe to
    // read unlocked; follower observers are copied by value because a
    // follower may Cancel (and its entry be freed) mid-turn.
    QueryEntry* leader = entries_.at(run->leader).get();
    const bool has_deadline = leader->has_deadline;
    const Clock::time_point deadline = leader->deadline;
    // The run steps at the highest priority among its riders: a
    // high-priority duplicate accelerates the shared run for everyone.
    int priority = leader->priority;
    std::vector<std::pair<QueryId, SnapshotObserver>> observers;
    // Subscriptions are shared_ptr copies: a rider may Cancel (and its
    // entry be finalized) mid-turn, after which pushes land on a closed
    // stream and are ignored — no dangling, no lost final event.
    std::vector<std::shared_ptr<SnapshotSubscription>> subs;
    if (leader->observer) observers.emplace_back(run->leader, leader->observer);
    if (leader->subscription != nullptr) subs.push_back(leader->subscription);
    for (QueryId fid : run->followers) {
      const QueryEntry* f = entries_.at(fid).get();
      priority = std::max(priority, f->priority);
      if (f->observer) observers.emplace_back(fid, f->observer);
      if (f->subscription != nullptr) subs.push_back(f->subscription);
    }
    std::optional<CostVector> pending = std::move(run->pending_bounds);
    run->pending_bounds.reset();
    lock.unlock();

    // Stepping happens outside the lock: this shard owns the run
    // exclusively (it is in no queue right now), so Submit/Cancel/Wait/
    // ApplyBounds stay responsive during long invocations.
    if (run->session == nullptr) {
      BuildRun(run);
    } else if (run->steps_done == 0 && run->fragment_provider != nullptr) {
      // Fragment services build the session at admission (see Submit),
      // so frontiers published by concurrent overlapping runs between
      // admission and this first turn were invisible to the build-time
      // probe. Re-probe now — lookups no longer race publishes, and a
      // late-admitted duplicate still seeds from the leader's cells.
      run->session->mutable_optimizer()->ReprobeFragments();
    }
    // Work stealing may move a run between shards across turns; the
    // stepping shard's own pool partition keeps every pool single-caller.
    run->session->RebindPool(pools_[shard].get());
    if (pending.has_value()) {
      if (run->dist != nullptr) {
        // Re-bounding resets the resolution schedule, which the fixed-
        // step worker replicas cannot follow. Release the tier and let
        // the run finish locally: session state is complete at
        // invocation boundaries, so nothing is lost but the workers.
        run->session->mutable_optimizer()->SetPhase2Exchange(nullptr);
        run->dist.reset();
      }
      // Dimensions were validated by ApplyBounds against the service
      // schema, which every session shares.
      MOQO_CHECK(run->session->SetBounds(*pending));
    }
    bool finished = false;
    QueryState end_state = QueryState::kDone;
    int steps_this_turn = 0;
    for (int i = 0; i < priority && !finished; ++i) {
      if (has_deadline && Clock::now() >= deadline) {
        finished = true;
        end_state = QueryState::kExpired;
        break;
      }
      run->last_snapshot = run->session->Step();
      ++run->steps_done;
      ++steps_this_turn;
      for (const auto& [qid, observer] : observers) {
        observer(qid, run->last_snapshot);
      }
      if (!subs.empty()) {
        // One publication copy per step, shared by every subscriber; each
        // Push is an O(1) bounded enqueue — a stalled subscriber costs
        // this shard nothing beyond it (the backpressure guarantee).
        auto shared =
            std::make_shared<const FrontierSnapshot>(run->last_snapshot);
        for (const auto& sub : subs) sub->Push(shared, /*is_final=*/false);
      }
      run->session->ApplyAction(UserAction::Continue());
      if (run->steps_done >= run->max_iterations) {
        finished = true;
      } else if (leader->cancel_requested.load(std::memory_order_relaxed)) {
        finished = true;
        end_state = QueryState::kCancelled;
      }
    }

    // A finishing run releases its worker-tier lease before taking the
    // lock: RELEASE frames are syscalls, and the tier frees up for the
    // next distributed run as early as possible.
    if (finished && run->dist != nullptr) {
      run->session->mutable_optimizer()->SetPhase2Exchange(nullptr);
      run->dist.reset();
    }

    // The publication copy (an O(|plans|) deep copy) happens while this
    // shard still owns last_snapshot exclusively — never under mu_.
    std::shared_ptr<const FrontierSnapshot> published;
    if (steps_this_turn > 0) {
      published = std::make_shared<const FrontierSnapshot>(run->last_snapshot);
    }
    std::vector<LateDelivery> deliveries;
    lock.lock();
    stats_.steps_executed += static_cast<uint64_t>(steps_this_turn);
    if (steps_this_turn > 0) {
      for (const auto& [qid, observer] : observers) {
        auto it = entries_.find(qid);
        if (it != entries_.end()) {
          it->second->snapshots_seen += steps_this_turn;
        }
      }
      // Publish before any turn-end finalization so expired followers,
      // retired leaders, and completion all see this turn's frontier.
      run->steps_published = run->steps_done;
      run->last_published = std::move(published);
      // Mirror the optimizer's work counters for QueryResult: this
      // shard owns the session, and the mirror is read only under mu_.
      const Counters& counters = run->session->optimizer().counters();
      run->plans_published = counters.plans_generated;
      run->pairs_published = counters.pairs_generated;
      // Credit the run's fragment warm hits to its founding tenant,
      // once: seeding happens entirely while the session is built, so
      // the counter is final by the first turn boundary.
      if (!run->fragment_hits_credited) {
        run->fragment_hits_credited = true;
        if (counters.fragment_cells_seeded > 0) {
          tenant_fragment_hits_[run->tenant] +=
              counters.fragment_cells_seeded;
        }
      }
    } else if (pending.has_value() && !run->pending_bounds.has_value()) {
      // A zero-step turn (deadline hit before the first step) must not
      // swallow applied-but-unstepped bounds: restore them so the
      // completion guards below keep granting turns until a step runs
      // under them. (Re-applying SetBounds next turn is idempotent — no
      // step advanced the session since. A newer ApplyBounds that
      // arrived mid-turn supersedes them instead.)
      run->pending_bounds = std::move(pending);
    }
    // Followers are deadline-checked at both boundaries of every turn
    // (leaders between every step): a follower whose deadline passed
    // mid-turn must expire here, not ride a completing run to kDone.
    SweepExpiredFollowersLocked(run, Clock::now());
    // Linearize Cancel against completion: Cancel sets the flag under
    // mu_ while the entry is still live, so re-checking here guarantees
    // that a true-returning Cancel is observed as kCancelled even when
    // the last step finished concurrently. (Leadership cannot have
    // changed mid-turn: only the stepping shard reassigns it.)
    if (leader->cancel_requested.load(std::memory_order_relaxed)) {
      finished = true;
      end_state = QueryState::kCancelled;
    }
    // A bounds change accepted during (or right after) the final step
    // must not be silently dropped: instead of completing, the run gets
    // another turn, which applies the bounds and steps at least once
    // under them — ApplyBounds' "takes effect at the next turn
    // boundary" promise holds even against completion.
    if (finished && end_state == QueryState::kDone &&
        run->pending_bounds.has_value()) {
      finished = false;
    }
    if (!finished) {
      shard_queues_[run->home_shard].push_back(rid);  // Back of the line.
      // Wake a stealer only when there is work beyond this run: with a
      // lone run, this shard re-pops it itself before releasing mu_,
      // so a notified idle shard would always find the queues empty.
      if (shard_queues_[run->home_shard].size() > 1) work_cv_.notify_one();
      continue;
    }
    // Predict whether this turn completes the run in state kDone: either
    // the leader finished it, or a retiring leader leaves followers on a
    // run that already ran all its steps (the inner CompleteRunLocked
    // branch below). Exactly then the run's per-cell frontier logs are
    // exported for the cross-query fragment store — now, while the
    // stepping shard still owns the session (CompleteRunLocked destroys
    // the run). The provider is moved out with the logs; the actual
    // store insertion (key building, order canonicalization) happens
    // outside mu_ below. Diverged runs never publish.
    const bool will_complete_done =
        end_state == QueryState::kDone ||
        (!run->followers.empty() &&
         run->steps_done >= run->max_iterations &&
         !run->pending_bounds.has_value());
    std::unique_ptr<FragmentStoreProvider> publish_provider;
    std::vector<IncrementalOptimizer::PublishableFragment> publish_cells;
    if (will_complete_done && !run->diverged && !run->stale &&
        run->fragment_provider != nullptr && run->session != nullptr) {
      publish_cells =
          run->session->mutable_optimizer()->TakePublishableFragments();
      if (!publish_cells.empty()) {
        publish_provider = std::move(run->fragment_provider);
      }
    }
    if (end_state == QueryState::kDone) {
      CompleteRunLocked(run, &deliveries);
    } else if (RetireLeaderLocked(run, end_state)) {
      // Leader-only event and followers remain: the run survives under
      // the promoted leader.
      if (run->steps_done >= run->max_iterations &&
          !run->pending_bounds.has_value()) {
        // The retired leader raced completion: the remaining riders
        // still get the finished frontier (unless a bounds change is
        // pending, which earns the run one more turn — see above).
        CompleteRunLocked(run, &deliveries);
      } else {
        shard_queues_[run->home_shard].push_back(rid);
        if (shard_queues_[run->home_shard].size() > 1) work_cv_.notify_one();
      }
    }
    if (!deliveries.empty() || publish_provider != nullptr) {
      lock.unlock();
      for (const LateDelivery& d : deliveries) d.observer(d.id, *d.frontier);
      if (publish_provider != nullptr) {
        publish_provider->PublishAll(std::move(publish_cells));
      }
      lock.lock();
    }
  }
}

}  // namespace moqo
