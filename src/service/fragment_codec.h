/// \file
/// Versioned binary serialization of fragment-store snapshots.
///
/// The codec turns one published fragment — canonical sub-join-graph key,
/// store epoch, catalog version, and the cell's chronological plan
/// insertion log — into a self-contained byte string, and frames such
/// payloads into the FragmentStore's append-only persistence log. It is
/// the byte layer under two ROADMAP items at once: the cold tier of the
/// tiered fragment store (fragments the DRAM budget cannot hold live on
/// as compact serialized records, decoded back on demand) and the future
/// distributed exchange of per-cell Pareto deltas between shared-nothing
/// optimizer processes (the same record travels as a message).
///
/// **Bit identity.** Doubles are serialized as their IEEE-754 bit
/// pattern via the net::Writer/net::Reader primitives (the same helpers
/// the wire protocol uses), so a decoded fragment seeds a consuming run
/// with cost vectors *bit-identical* to the donor's — the property the
/// warm-start tests assert end to end. Encoding is canonical: varints
/// are minimal, field order is fixed, and there is no padding, so
/// decode-then-re-encode reproduces the input byte for byte (the
/// round-trip invariant fragment_codec_test hammers with randomized
/// fragments, ±∞ costs included).
///
/// **Defensiveness.** The log is written by the process but read back
/// after crashes, partial writes, and file corruption, so every decoder
/// returns util::Status and bounds-checks every length against the bytes
/// remaining — hostile or torn input can reject a record but can never
/// crash, over-read, or reach a MOQO_CHECK (mirroring the wire codec's
/// contract for network input).
///
/// See docs/FRAGMENT_PERSISTENCE.md for the log format and recovery
/// rules.
#ifndef MOQO_SERVICE_FRAGMENT_CODEC_H_
#define MOQO_SERVICE_FRAGMENT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/resolution.h"
#include "cost/cost_vector.h"
#include "query/query.h"
#include "util/status.h"

namespace moqo {

struct StoredFragment;  // service/fragment_store.h (cyclic include guard).
struct CellDelta;       // core/incremental_optimizer.h (heavy header).

/// Fragment payload format version. Decoders reject any other value with
/// Status (never a crash): a record written by a future format rev is
/// skipped at replay, not misparsed.
inline constexpr uint8_t kFragmentCodecVersion = 1;

/// Hard ceiling on one framed record's length field. Protects replay
/// from allocating unbounded buffers on a corrupt or hostile length
/// prefix — the persistence analogue of net::kMaxFrameBytes.
inline constexpr uint32_t kMaxFragmentRecordBytes = 64u << 20;

/// One fragment as it travels through the persistence log (and, later,
/// the distributed exchange): the canonical key plus everything Lookup
/// needs to serve it without consulting the donor process again.
struct FragmentRecord {
  /// Canonical sub-join-graph key (FragmentQueryBinding encoding). The
  /// key embeds the store epoch textually; the binary `epoch` field
  /// below is what the store's lazy invalidation checks at decode time.
  std::string key;
  /// Store epoch the fragment was published under.
  uint64_t epoch = 0;
  /// Catalog version of the publishing run (diagnostics; the epoch is
  /// the invalidation authority).
  uint64_t catalog_version = 0;
  /// Finest resolution level the donor run completed for the cell.
  int resolution_complete = 0;
};

/// Encodes `record` + `fragment` (the plan log lives in the fragment)
/// into the canonical payload bytes. Total and deterministic: any
/// fragment the store can hold encodes, and equal inputs yield equal
/// bytes.
std::string EncodeFragmentRecord(const FragmentRecord& record,
                                 const StoredFragment& fragment);

/// Decodes payload bytes produced by EncodeFragmentRecord (or arriving
/// from disk after a crash). Returns InvalidArgument on a version
/// mismatch, truncation at any boundary, out-of-range field (cost dims,
/// sampling rate, resolution), or trailing garbage — never crashes or
/// reads past `bytes`. On success the re-encode of the outputs is
/// byte-identical to `bytes`.
Status DecodeFragmentRecord(const std::string& bytes, FragmentRecord* record,
                            StoredFragment* fragment);

/// Record type tag inside the persistence log. The same tag space doubles
/// as the payload discriminator for codec records travelling over the
/// distributed worker protocol (net/wire frames carry them verbatim).
enum class LogRecordType : uint8_t {
  kFragment = 1,             ///< EncodeFragmentRecord payload.
  kEpoch = 2,                ///< EncodeEpochRecord payload (store epoch bump).
  kFrontierDelta = 3,        ///< EncodeFrontierDelta payload (phase-2 cell delta).
  kPartitionAssignment = 4,  ///< EncodePartitionAssignment payload.
};

/// Context of one per-cell phase-2 delta: which invocation, resolution
/// level, and enumeration level (join cardinality k) produced it. The
/// cell itself and its enumeration output travel in the CellDelta the
/// record is encoded with.
struct FrontierDeltaRecord {
  /// Optimize() invocation counter of the producing replica.
  uint32_t invocation = 0;
  /// Resolution level the invocation ran at (0..rM).
  int resolution = 0;
  /// Phase-2 enumeration level k (cell cardinality, 2..n).
  uint32_t level = 0;
};

/// Encodes `record` + `delta` (one cell's complete phase-2 enumeration
/// output: fresh pairs tried, join alternatives with bit-exact costs,
/// stale-pair count) into canonical payload bytes. Deterministic, so
/// replicated merges of equal deltas stay bit-identical.
std::string EncodeFrontierDelta(const FrontierDeltaRecord& record,
                                const CellDelta& delta);

/// Decodes payload bytes produced by EncodeFrontierDelta. Returns
/// InvalidArgument on version mismatch, truncation, out-of-range fields,
/// or trailing garbage — never crashes: deltas arrive over sockets from
/// peer processes that may be arbitrarily wedged.
Status DecodeFrontierDelta(const std::string& bytes,
                           FrontierDeltaRecord* record, CellDelta* delta);

/// Everything a worker process needs to build an IncrementalOptimizer
/// replica in lockstep with the coordinator: the query block, the
/// resolution schedule, the result-affecting optimizer knobs, and this
/// worker's slot in the cell partition. Fields that do not affect
/// enumeration output (thread counts, fragment caching) are deliberately
/// absent — replicas must agree only on what determines the frontier.
struct PartitionAssignment {
  /// This worker's slot in [0, num_workers); cell ownership is
  /// hash(cell mask) % num_workers == worker_index.
  uint32_t worker_index = 0;
  /// Total enumerating workers (the coordinator owns no cells).
  uint32_t num_workers = 1;
  /// Catalog version the replica must be pinned to; a worker whose
  /// snapshot differs rejects the assignment and the run falls back to
  /// local execution.
  uint64_t catalog_version = 0;
  /// The query block to replicate (validated against the catalog by the
  /// worker before optimizer construction).
  Query query;
  /// Resolution schedule of the anytime session.
  ResolutionSchedule schedule = ResolutionSchedule::Moderate(5);
  /// Initial cost bounds, or unset for unbounded.
  std::optional<CostVector> initial_bounds;
  /// Result-affecting optimizer knobs (must match the coordinator's).
  double cell_gamma = 2.0;
  bool prune_against_all_resolutions = false;
  bool park_next_level_only = false;
  bool sorted_pruning = true;
  /// Number of autonomous Step()/Continue() turns the worker executes in
  /// lockstep with the coordinator's session.
  uint32_t steps = 0;
};

/// Encodes a partition assignment into canonical payload bytes.
std::string EncodePartitionAssignment(const PartitionAssignment& assignment);

/// Decodes payload bytes produced by EncodePartitionAssignment. Bounds
/// every count and validates every field the ResolutionSchedule and
/// TableSet constructors would CHECK (num_levels in [1, 256],
/// alpha_target > 1, table count <= kMaxTables, join endpoints in
/// range), so hostile bytes are rejected with Status, never a crash.
Status DecodePartitionAssignment(const std::string& bytes,
                                 PartitionAssignment* assignment);

/// Encodes an epoch-bump payload (version byte + varint epoch). Epoch
/// records make BumpEpoch durable: replay recovers the exact epoch, so
/// fragments invalidated before a crash stay invalidated after it.
std::string EncodeEpochRecord(uint64_t epoch);

/// Decodes an epoch-bump payload.
Status DecodeEpochRecord(const std::string& bytes, uint64_t* epoch);

/// Frames `payload` as one log record — little-endian u32 length
/// (covering the type byte and payload), u32 CRC-32 over the same
/// region, the type byte, then the payload — and appends it to `log`.
void AppendLogRecord(std::string* log, LogRecordType type,
                     const std::string& payload);

/// Outcome of parsing one framed record from a log position.
enum class LogParse {
  kRecord,     ///< A complete, CRC-valid record was parsed.
  kTruncated,  ///< Fewer bytes remain than the record claims (torn tail).
  kCorrupt,    ///< Length out of range or CRC mismatch (torn or damaged).
};

/// Parses the record starting at `data` (with `size` bytes remaining).
/// On kRecord, sets `*type`, copies the payload into `*payload`, and
/// sets `*record_bytes` to the record's total framed size (header
/// included) so the caller can advance. On kTruncated/kCorrupt nothing
/// is written; replay treats either as the torn tail and stops. Never
/// reads beyond `data + size`.
LogParse ParseLogRecord(const char* data, size_t size, uint8_t* type,
                        std::string* payload, size_t* record_bytes);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size`
/// bytes. Exposed for tests that forge corrupt records.
uint32_t Crc32(const void* data, size_t size);

}  // namespace moqo

#endif  // MOQO_SERVICE_FRAGMENT_CODEC_H_
