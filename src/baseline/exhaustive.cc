#include "baseline/exhaustive.h"

#include "pareto/dominance.h"

namespace moqo {

ExactParetoResult RunExactPareto(const PlanFactory& factory,
                                 const CostVector& bounds) {
  // The exact DP keeps one frontier per table set keyed by cost alone;
  // with interesting orders enabled a cost-dominated-but-sorted plan can
  // still be globally useful, so this baseline requires orders disabled.
  MOQO_CHECK_MSG(!factory.orders_enabled(),
                 "RunExactPareto requires interesting orders disabled");
  const int n = factory.NumTables();
  const JoinGraph& graph = factory.graph();

  ExactParetoResult result;
  result.frontier_by_mask.resize(size_t{1} << n);

  for (int t = 0; t < n; ++t) {
    const TableSet q = TableSet::Singleton(t);
    ParetoFrontier& frontier = result.frontier_by_mask[q.mask()];
    factory.ForEachScan(t, [&](const OperatorDesc& op, const OpCost& oc) {
      ++result.plans_generated;
      if (!RespectsBounds(oc.cost, bounds)) return;
      if (frontier.IsStrictlyDominated(oc.cost)) return;
      const PlanId id = result.arena.AddScan(q, op, oc.cost, oc.output_rows);
      frontier.Insert(oc.cost, id);
    });
  }

  const uint32_t full = TableSet::Full(n).mask();
  for (int k = 2; k <= n; ++k) {
    for (uint32_t mask = 1; mask <= full; ++mask) {
      const TableSet q(mask);
      if (q.Count() != k || !graph.IsConnected(q)) continue;
      ParetoFrontier& frontier = result.frontier_by_mask[mask];
      for (SubsetIter split(q); !split.Done(); split.Next()) {
        const TableSet q1 = split.Subset();
        const TableSet q2 = split.Complement();
        if (!factory.CanCombine(q1, q2)) continue;
        // Iterate over copies of the sub-frontiers' entries: the arena may
        // reallocate during insertion.
        const std::vector<ParetoFrontier::Entry> p1 =
            result.frontier_by_mask[q1.mask()].entries();
        const std::vector<ParetoFrontier::Entry> p2 =
            result.frontier_by_mask[q2.mask()].entries();
        for (const ParetoFrontier::Entry& a : p1) {
          for (const ParetoFrontier::Entry& b : p2) {
            const PlanNode left = result.arena.at(static_cast<PlanId>(a.payload));
            const PlanNode right = result.arena.at(static_cast<PlanId>(b.payload));
            factory.ForEachJoin(
                left, right,
                [&](const OperatorDesc& op, const OpCost& oc) {
                  ++result.plans_generated;
                  if (!RespectsBounds(oc.cost, bounds)) return;
                  if (frontier.IsStrictlyDominated(oc.cost)) return;
                  const PlanId id = result.arena.AddJoin(
                      q, static_cast<PlanId>(a.payload),
                      static_cast<PlanId>(b.payload), op, oc.cost,
                      oc.output_rows);
                  frontier.Insert(oc.cost, id);
                });
          }
        }
      }
    }
  }
  return result;
}

namespace {

// Recursively enumerates all plan nodes for `q`, memoized per mask.
// Returns materialized PlanNode values (costs + cardinalities) — ids are
// not needed for coverage checks.
const std::vector<PlanNode>& AllPlans(
    const PlanFactory& factory, TableSet q,
    std::vector<std::vector<PlanNode>>& memo,
    std::vector<bool>& computed) {
  std::vector<PlanNode>& out = memo[q.mask()];
  if (computed[q.mask()]) return out;
  computed[q.mask()] = true;

  if (q.Count() == 1) {
    const int t = q.Lowest();
    factory.ForEachScan(t, [&](const OperatorDesc& op, const OpCost& oc) {
      PlanNode node;
      node.tables = q;
      node.op = op;
      node.cost = oc.cost;
      node.output_cardinality = oc.output_rows;
      node.order = oc.order;
      out.push_back(node);
    });
    return out;
  }

  for (SubsetIter split(q); !split.Done(); split.Next()) {
    const TableSet q1 = split.Subset();
    const TableSet q2 = split.Complement();
    if (!factory.CanCombine(q1, q2)) continue;
    const std::vector<PlanNode>& p1 = AllPlans(factory, q1, memo, computed);
    const std::vector<PlanNode>& p2 = AllPlans(factory, q2, memo, computed);
    for (const PlanNode& left : p1) {
      for (const PlanNode& right : p2) {
        factory.ForEachJoin(left, right,
                            [&](const OperatorDesc& op, const OpCost& oc) {
                              PlanNode node;
                              node.tables = q;
                              node.left = 0;  // Structure not tracked here.
                              node.right = 0;
                              node.op = op;
                              node.cost = oc.cost;
                              node.output_cardinality = oc.output_rows;
                              node.order = oc.order;
                              out.push_back(node);
                            });
      }
    }
  }
  return out;
}

}  // namespace

std::vector<CostVector> EnumerateAllPlanCosts(const PlanFactory& factory,
                                              TableSet q) {
  std::vector<std::vector<PlanNode>> memo(
      size_t{1} << factory.NumTables());
  std::vector<bool> computed(size_t{1} << factory.NumTables(), false);
  const std::vector<PlanNode>& plans = AllPlans(factory, q, memo, computed);
  std::vector<CostVector> costs;
  costs.reserve(plans.size());
  for (const PlanNode& p : plans) costs.push_back(p.cost);
  return costs;
}

}  // namespace moqo
