// Memoryless anytime MOQO baseline (paper §6.1).
//
// Produces exactly the same sequence of result plan sets as IAMA — one per
// resolution level, with precision factor α_r — but is non-incremental:
// every invocation re-runs the full one-shot DP from scratch. The paper
// uses it to isolate the benefit of incrementality from the benefit of the
// anytime refinement policy.
#ifndef MOQO_BASELINE_MEMORYLESS_H_
#define MOQO_BASELINE_MEMORYLESS_H_

#include <memory>

#include "baseline/one_shot.h"
#include "core/resolution.h"

namespace moqo {

class MemorylessDriver {
 public:
  // `pool`, when non-null, parallelizes each invocation's enumeration
  // (see RunOneShot); it must outlive the driver.
  MemorylessDriver(const PlanFactory& factory, ResolutionSchedule schedule,
                   ThreadPool* pool = nullptr)
      : factory_(factory), schedule_(schedule), pool_(pool) {}

  // Runs one invocation for resolution level r (from scratch) and returns
  // its full result. Bounds semantics match IAMA's optimizer invocation.
  OneShotResult RunInvocation(int r, const CostVector& bounds) const {
    return RunOneShot(factory_, schedule_.Alpha(r), bounds, pool_);
  }

  const ResolutionSchedule& schedule() const { return schedule_; }

 private:
  const PlanFactory& factory_;
  ResolutionSchedule schedule_;
  ThreadPool* pool_;
};

}  // namespace moqo

#endif  // MOQO_BASELINE_MEMORYLESS_H_
