#include "baseline/single_objective.h"

#include <limits>

#include "util/common.h"

namespace moqo {
namespace {

double Scalarize(const CostVector& cost, const std::vector<double>& weights) {
  double value = 0.0;
  for (int i = 0; i < cost.dims(); ++i) {
    value += weights[static_cast<size_t>(i)] * cost[i];
  }
  return value;
}

}  // namespace

SingleObjectiveResult RunSingleObjective(
    const PlanFactory& factory, const std::vector<double>& weights) {
  // The DP keeps one best plan per table set; with interesting orders a
  // worse-but-sorted sub-plan may win globally, so orders must be off.
  MOQO_CHECK_MSG(!factory.orders_enabled(),
                 "RunSingleObjective requires interesting orders disabled");
  const int n = factory.NumTables();
  MOQO_CHECK(static_cast<int>(weights.size()) ==
             factory.cost_model().schema().dims());
  const JoinGraph& graph = factory.graph();

  SingleObjectiveResult result;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Best plan and value per table-set mask.
  std::vector<PlanId> best(size_t{1} << n, kInvalidPlan);
  std::vector<double> value(size_t{1} << n, kInf);

  for (int t = 0; t < n; ++t) {
    const TableSet q = TableSet::Singleton(t);
    factory.ForEachScan(t, [&](const OperatorDesc& op, const OpCost& oc) {
      ++result.plans_generated;
      const double v = Scalarize(oc.cost, weights);
      if (v < value[q.mask()]) {
        best[q.mask()] =
            result.arena.AddScan(q, op, oc.cost, oc.output_rows);
        value[q.mask()] = v;
      }
    });
  }

  const uint32_t full = TableSet::Full(n).mask();
  for (int k = 2; k <= n; ++k) {
    for (uint32_t mask = 1; mask <= full; ++mask) {
      const TableSet q(mask);
      if (q.Count() != k || !graph.IsConnected(q)) continue;
      for (SubsetIter split(q); !split.Done(); split.Next()) {
        const TableSet q1 = split.Subset();
        const TableSet q2 = split.Complement();
        if (!factory.CanCombine(q1, q2)) continue;
        if (best[q1.mask()] == kInvalidPlan ||
            best[q2.mask()] == kInvalidPlan) {
          continue;
        }
        const PlanNode left = result.arena.at(best[q1.mask()]);
        const PlanNode right = result.arena.at(best[q2.mask()]);
        const PlanId left_id = best[q1.mask()];
        const PlanId right_id = best[q2.mask()];
        factory.ForEachJoin(left, right,
                            [&](const OperatorDesc& op, const OpCost& oc) {
                              ++result.plans_generated;
                              const double v = Scalarize(oc.cost, weights);
                              if (v < value[mask]) {
                                best[mask] = result.arena.AddJoin(
                                    q, left_id, right_id, op, oc.cost,
                                    oc.output_rows);
                                value[mask] = v;
                              }
                            });
      }
    }
  }

  result.best_plan = best[full];
  result.best_value = value[full];
  if (result.best_plan != kInvalidPlan) {
    result.best_cost = result.arena.at(result.best_plan).cost;
  }
  return result;
}

SingleObjectiveResult MinimizeMetric(const PlanFactory& factory,
                                     int metric_index) {
  std::vector<double> weights(
      static_cast<size_t>(factory.cost_model().schema().dims()), 0.0);
  MOQO_CHECK(metric_index >= 0 &&
             metric_index < factory.cost_model().schema().dims());
  weights[static_cast<size_t>(metric_index)] = 1.0;
  return RunSingleObjective(factory, weights);
}

}  // namespace moqo
