// One-shot MOQO approximation scheme (baseline, paper §6.1).
//
// Re-implements the non-iterative approximation scheme of Trummer & Koch,
// SIGMOD 2014, which the paper uses as the "one-shot" baseline: a single
// dynamic-programming pass over table subsets that prunes with a fixed
// precision factor α and produces the result plan set at the highest
// resolution directly. It is neither anytime (one result at the very end)
// nor incremental (every invocation starts from scratch).
//
// Unlike IAMA's Prune, this baseline keeps result sets as small as
// possible: plans whose cost exceeds the bounds are discarded outright
// (monotone cost aggregation makes that safe within one invocation), and
// newly inserted plans evict result plans they dominate.
#ifndef MOQO_BASELINE_ONE_SHOT_H_
#define MOQO_BASELINE_ONE_SHOT_H_

#include <vector>

#include "cost/cost_vector.h"
#include "plan/arena.h"
#include "plan/cost_model.h"
#include "util/table_set.h"
#include "util/thread_pool.h"

namespace moqo {

struct OneShotResult {
  // All generated plans (owned here; ids index into this arena).
  PlanArena arena;
  // Result plan ids per table-set mask (index = mask).
  std::vector<std::vector<PlanId>> plans_by_mask;
  // Number of plans generated in total (work measure).
  uint64_t plans_generated = 0;

  // Result plans for the full query.
  const std::vector<PlanId>& FinalPlans(int num_tables) const {
    return plans_by_mask[TableSet::Full(num_tables).mask()];
  }
};

// Runs the one-shot DP with precision factor `alpha` (>= 1; 1 = exact
// dominance pruning) and cost bounds `bounds`. When `pool` is non-null,
// each cardinality level's table sets are enumerated in parallel on it
// (same shard / barrier / ordered-merge scheme as the incremental
// optimizer's phase 2, and the same results as the serial run).
OneShotResult RunOneShot(const PlanFactory& factory, double alpha,
                         const CostVector& bounds,
                         ThreadPool* pool = nullptr);

}  // namespace moqo

#endif  // MOQO_BASELINE_ONE_SHOT_H_
