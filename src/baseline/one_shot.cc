#include "baseline/one_shot.h"

#include "pareto/dominance.h"

namespace moqo {
namespace {

// Inserts `id` into the per-set result list unless an existing plan with
// the same interesting-order tag α-dominates it; evicts same-order plans
// it (exactly) dominates.
void InsertPruned(const PlanArena& arena, std::vector<PlanId>& set,
                  PlanId id, const CostVector& cost, uint8_t order,
                  double alpha) {
  const CostVector scaled = cost.Scaled(alpha);
  for (PlanId other : set) {
    const PlanNode& node = arena.at(other);
    if (node.order == order && node.cost.Dominates(scaled)) return;
  }
  for (size_t i = 0; i < set.size();) {
    const PlanNode& node = arena.at(set[i]);
    if (node.order == order && cost.Dominates(node.cost)) {
      set[i] = set.back();
      set.pop_back();
    } else {
      ++i;
    }
  }
  set.push_back(id);
}

// One bounds-respecting join alternative buffered by a parallel worker;
// appended to the arena and pruned during the ordered post-barrier merge.
struct PendingJoin {
  PlanId left = 0;
  PlanId right = 0;
  OperatorDesc op;
  OpCost op_cost;
};

struct LevelBuffer {
  std::vector<PendingJoin> joins;
  uint64_t plans_generated = 0;
};

}  // namespace

OneShotResult RunOneShot(const PlanFactory& factory, double alpha,
                         const CostVector& bounds, ThreadPool* pool) {
  MOQO_CHECK(alpha >= 1.0);
  const int n = factory.NumTables();
  const JoinGraph& graph = factory.graph();

  OneShotResult result;
  result.plans_by_mask.assign(size_t{1} << n, {});

  // Scan plans.
  for (int t = 0; t < n; ++t) {
    const TableSet q = TableSet::Singleton(t);
    std::vector<PlanId>& set = result.plans_by_mask[q.mask()];
    factory.ForEachScan(t, [&](const OperatorDesc& op, const OpCost& oc) {
      ++result.plans_generated;
      if (!RespectsBounds(oc.cost, bounds)) return;
      const PlanId id =
          result.arena.AddScan(q, op, oc.cost, oc.output_rows, oc.order);
      InsertPruned(result.arena, set, id, oc.cost, oc.order, alpha);
    });
  }

  // Joins, bottom-up over connected subsets, grouped by cardinality. The
  // per-level sharding mirrors the incremental optimizer's parallel
  // phase 2: workers enumerate and buffer, the main thread merges in
  // canonical mask order, so results match the serial run exactly.
  std::vector<std::vector<TableSet>> by_size(static_cast<size_t>(n) + 1);
  const uint32_t full = TableSet::Full(n).mask();
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const TableSet q(mask);
    if (q.Count() >= 2 && graph.IsConnected(q)) {
      by_size[static_cast<size_t>(q.Count())].push_back(q);
    }
  }

  for (int k = 2; k <= n; ++k) {
    const std::vector<TableSet>& level = by_size[static_cast<size_t>(k)];
    if (level.empty()) continue;

    // Enumerates table set q's join alternatives against the lower
    // levels' result lists (read-only during the level).
    const auto enumerate = [&](TableSet q, LevelBuffer* out) {
      for (SubsetIter split(q); !split.Done(); split.Next()) {
        const TableSet q1 = split.Subset();
        const TableSet q2 = split.Complement();
        if (!factory.CanCombine(q1, q2)) continue;
        const std::vector<PlanId>& p1 = result.plans_by_mask[q1.mask()];
        const std::vector<PlanId>& p2 = result.plans_by_mask[q2.mask()];
        for (PlanId a : p1) {
          for (PlanId b : p2) {
            // References are stable: the arena only grows at the merge,
            // after the level's enumeration finished.
            const PlanNode& left = result.arena.at(a);
            const PlanNode& right = result.arena.at(b);
            factory.ForEachJoin(
                left, right,
                [&](const OperatorDesc& op, const OpCost& oc) {
                  ++out->plans_generated;
                  if (!RespectsBounds(oc.cost, bounds)) return;
                  out->joins.push_back({a, b, op, oc});
                });
          }
        }
      }
    };

    std::vector<LevelBuffer> buffers(level.size());
    if (pool != nullptr) {
      pool->ParallelFor(level.size(), [&](size_t j) {
        enumerate(level[j], &buffers[j]);
      });
    } else {
      for (size_t j = 0; j < level.size(); ++j) {
        enumerate(level[j], &buffers[j]);
      }
    }

    for (size_t j = 0; j < level.size(); ++j) {
      const TableSet q = level[j];
      LevelBuffer& buf = buffers[j];
      result.plans_generated += buf.plans_generated;
      std::vector<PlanId>& set = result.plans_by_mask[q.mask()];
      for (const PendingJoin& pj : buf.joins) {
        const PlanId id = result.arena.AddJoin(
            q, pj.left, pj.right, pj.op, pj.op_cost.cost,
            pj.op_cost.output_rows, pj.op_cost.order);
        InsertPruned(result.arena, set, id, pj.op_cost.cost,
                     pj.op_cost.order, alpha);
      }
    }
  }
  return result;
}

}  // namespace moqo
