#include "baseline/one_shot.h"

#include "pareto/dominance.h"

namespace moqo {
namespace {

// Inserts `id` into the per-set result list unless an existing plan with
// the same interesting-order tag α-dominates it; evicts same-order plans
// it (exactly) dominates.
void InsertPruned(const PlanArena& arena, std::vector<PlanId>& set,
                  PlanId id, const CostVector& cost, uint8_t order,
                  double alpha) {
  const CostVector scaled = cost.Scaled(alpha);
  for (PlanId other : set) {
    const PlanNode& node = arena.at(other);
    if (node.order == order && node.cost.Dominates(scaled)) return;
  }
  for (size_t i = 0; i < set.size();) {
    const PlanNode& node = arena.at(set[i]);
    if (node.order == order && cost.Dominates(node.cost)) {
      set[i] = set.back();
      set.pop_back();
    } else {
      ++i;
    }
  }
  set.push_back(id);
}

}  // namespace

OneShotResult RunOneShot(const PlanFactory& factory, double alpha,
                         const CostVector& bounds) {
  MOQO_CHECK(alpha >= 1.0);
  const int n = factory.NumTables();
  const JoinGraph& graph = factory.graph();

  OneShotResult result;
  result.plans_by_mask.assign(size_t{1} << n, {});

  // Scan plans.
  for (int t = 0; t < n; ++t) {
    const TableSet q = TableSet::Singleton(t);
    std::vector<PlanId>& set = result.plans_by_mask[q.mask()];
    factory.ForEachScan(t, [&](const OperatorDesc& op, const OpCost& oc) {
      ++result.plans_generated;
      if (!RespectsBounds(oc.cost, bounds)) return;
      const PlanId id =
          result.arena.AddScan(q, op, oc.cost, oc.output_rows, oc.order);
      InsertPruned(result.arena, set, id, oc.cost, oc.order, alpha);
    });
  }

  // Joins, bottom-up over connected subsets.
  const uint32_t full = TableSet::Full(n).mask();
  for (int k = 2; k <= n; ++k) {
    for (uint32_t mask = 1; mask <= full; ++mask) {
      const TableSet q(mask);
      if (q.Count() != k || !graph.IsConnected(q)) continue;
      std::vector<PlanId>& set = result.plans_by_mask[mask];
      for (SubsetIter split(q); !split.Done(); split.Next()) {
        const TableSet q1 = split.Subset();
        const TableSet q2 = split.Complement();
        if (!factory.CanCombine(q1, q2)) continue;
        const std::vector<PlanId>& p1 = result.plans_by_mask[q1.mask()];
        const std::vector<PlanId>& p2 = result.plans_by_mask[q2.mask()];
        for (PlanId a : p1) {
          for (PlanId b : p2) {
            // Copy the nodes: AddJoin below may reallocate the arena.
            const PlanNode left = result.arena.at(a);
            const PlanNode right = result.arena.at(b);
            factory.ForEachJoin(
                left, right,
                [&](const OperatorDesc& op, const OpCost& oc) {
                  ++result.plans_generated;
                  if (!RespectsBounds(oc.cost, bounds)) return;
                  const PlanId id = result.arena.AddJoin(
                      q, a, b, op, oc.cost, oc.output_rows, oc.order);
                  InsertPruned(result.arena, set, id, oc.cost, oc.order,
                               alpha);
                });
          }
        }
      }
    }
  }
  return result;
}

}  // namespace moqo
