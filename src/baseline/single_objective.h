// Classical single-objective dynamic programming (Selinger-style, bushy).
//
// Reference baseline: minimizes one metric (or a weighted combination of
// metrics). Theorem 5 states that IAMA's amortized per-invocation cost
// approaches the cost of single-objective DP with bushy plans; tests also
// use this optimizer to verify that IAMA's result sets contain plans that
// are near-optimal for each individual metric.
#ifndef MOQO_BASELINE_SINGLE_OBJECTIVE_H_
#define MOQO_BASELINE_SINGLE_OBJECTIVE_H_

#include <vector>

#include "cost/cost_vector.h"
#include "plan/arena.h"
#include "plan/cost_model.h"

namespace moqo {

struct SingleObjectiveResult {
  PlanArena arena;
  PlanId best_plan = kInvalidPlan;
  // The scalarized objective value of the best plan.
  double best_value = 0.0;
  // The best plan's full cost vector.
  CostVector best_cost;
  uint64_t plans_generated = 0;
};

// Minimizes sum_i weights[i] * cost[i]; `weights` must have one
// non-negative entry per schema metric, not all zero.
SingleObjectiveResult RunSingleObjective(const PlanFactory& factory,
                                         const std::vector<double>& weights);

// Convenience: minimize exactly one metric (by schema position).
SingleObjectiveResult MinimizeMetric(const PlanFactory& factory,
                                     int metric_index);

}  // namespace moqo

#endif  // MOQO_BASELINE_SINGLE_OBJECTIVE_H_
