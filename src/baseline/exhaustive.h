// Exhaustive baselines used for correctness testing and as the exact
// reference for approximation-quality measurements.
//
//  * RunExactPareto: Ganguly-style dynamic programming that keeps the full
//    Pareto-optimal plan set per table subset (α = 1). Feasible for small
//    queries only; the paper notes its execution time is excessive in
//    practice, which is exactly why the approximate schemes exist.
//  * EnumerateAllPlanCosts: enumerates the cost vectors of *every*
//    possible plan (all bushy join trees × all operator choices) — the
//    plan space P of paper §3 — for verifying the α^n coverage guarantee
//    of Theorem 2 literally on tiny queries.
#ifndef MOQO_BASELINE_EXHAUSTIVE_H_
#define MOQO_BASELINE_EXHAUSTIVE_H_

#include <vector>

#include "cost/cost_vector.h"
#include "pareto/frontier.h"
#include "plan/arena.h"
#include "plan/cost_model.h"
#include "util/table_set.h"

namespace moqo {

struct ExactParetoResult {
  PlanArena arena;
  // Pareto frontier (cost vectors + plan ids) per table-set mask.
  std::vector<ParetoFrontier> frontier_by_mask;
  uint64_t plans_generated = 0;

  const ParetoFrontier& FinalFrontier(int num_tables) const {
    return frontier_by_mask[TableSet::Full(num_tables).mask()];
  }
};

// Full Pareto DP. Optionally restricted by bounds (pass
// CostVector::Infinite for the unbounded frontier).
ExactParetoResult RunExactPareto(const PlanFactory& factory,
                                 const CostVector& bounds);

// Cost vectors of every possible plan joining exactly `q`. Exponential;
// intended for queries with <= 4 tables and reduced operator options.
std::vector<CostVector> EnumerateAllPlanCosts(const PlanFactory& factory,
                                              TableSet q);

}  // namespace moqo

#endif  // MOQO_BASELINE_EXHAUSTIVE_H_
