#include "viz/frontier_view.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pareto/dominance.h"
#include "util/str.h"

namespace moqo {
namespace {

double Project(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log10(v > 1e-12 ? v : 1e-12);
}

}  // namespace

std::string RenderScatter(const std::vector<CellIndex::Entry>& plans,
                          const MetricSchema& schema,
                          const CostVector& bounds,
                          const ScatterOptions& options) {
  const int xm = options.x_metric;
  const int ym = options.y_metric;
  MOQO_CHECK(xm >= 0 && xm < schema.dims());
  MOQO_CHECK(ym >= 0 && ym < schema.dims());

  std::vector<const CellIndex::Entry*> visible;
  for (const auto& e : plans) {
    if (RespectsBounds(e.cost, bounds)) visible.push_back(&e);
  }
  if (visible.empty()) return "  (no plans within bounds)\n";

  double min_x = std::numeric_limits<double>::infinity(), max_x = -min_x;
  double min_y = min_x, max_y = -min_x;
  double raw_min_x = min_x, raw_max_x = -min_x;
  double raw_min_y = min_x, raw_max_y = -min_x;
  for (const auto* e : visible) {
    const double x = Project(e->cost[xm], options.log_x);
    const double y = Project(e->cost[ym], options.log_y);
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
    raw_min_x = std::min(raw_min_x, e->cost[xm]);
    raw_max_x = std::max(raw_max_x, e->cost[xm]);
    raw_min_y = std::min(raw_min_y, e->cost[ym]);
    raw_max_y = std::max(raw_max_y, e->cost[ym]);
  }
  const double eps_x = (max_x - min_x) * 1e-9 + 1e-12;
  const double eps_y = (max_y - min_y) * 1e-9 + 1e-12;
  max_x += eps_x;
  max_y += eps_y;

  const int w = options.width, h = options.height;
  std::vector<std::string> grid(static_cast<size_t>(h),
                                std::string(static_cast<size_t>(w), ' '));
  for (const auto* e : visible) {
    const double x = Project(e->cost[xm], options.log_x);
    const double y = Project(e->cost[ym], options.log_y);
    const int cx = static_cast<int>((x - min_x) / (max_x - min_x) * (w - 1));
    const int cy = static_cast<int>((y - min_y) / (max_y - min_y) * (h - 1));
    grid[static_cast<size_t>(h - 1 - cy)][static_cast<size_t>(cx)] = '*';
  }

  const MetricInfo& xi = GetMetricInfo(schema.metric(xm));
  const MetricInfo& yi = GetMetricInfo(schema.metric(ym));
  std::string out = StrFormat(
      "  y=%s [%.4g..%.4g]  x=%s [%.4g..%.4g]  (%zu plans)\n", yi.name,
      raw_min_y, raw_max_y, xi.name, raw_min_x, raw_max_x, visible.size());
  for (const std::string& row : grid) {
    out += "  |";
    out += row;
    out += "\n";
  }
  out += "  +";
  out.append(static_cast<size_t>(w), '-');
  out += "\n";
  return out;
}

std::string RenderTable(const std::vector<CellIndex::Entry>& plans,
                        const MetricSchema& schema, size_t max_rows) {
  std::vector<const CellIndex::Entry*> sorted;
  for (const auto& e : plans) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const CellIndex::Entry* a, const CellIndex::Entry* b) {
              return a->cost[0] < b->cost[0];
            });
  std::string out = StrFormat("  %-4s", "#");
  for (int i = 0; i < schema.dims(); ++i) {
    const MetricInfo& info = GetMetricInfo(schema.metric(i));
    out += StrFormat(" %16s", info.name);
  }
  out += "\n";
  size_t row = 0;
  for (const auto* e : sorted) {
    if (row >= max_rows) {
      out += StrFormat("  ... %zu more\n", sorted.size() - row);
      break;
    }
    out += StrFormat("  %-4zu", row);
    for (int i = 0; i < schema.dims(); ++i) {
      out += StrFormat(" %16.5g", e->cost[i]);
    }
    out += "\n";
    ++row;
  }
  return out;
}

}  // namespace moqo
