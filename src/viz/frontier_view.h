// Text rendering of Pareto frontiers for terminals.
//
// The paper's interface visualizes the approximate Pareto-optimal cost
// tradeoffs as a continuously refined plot (Figure 1). This module renders
// frontier snapshots as ASCII scatter plots (two chosen metrics) and as
// sorted tradeoff tables; it backs the examples and the interactive CLI.
#ifndef MOQO_VIZ_FRONTIER_VIEW_H_
#define MOQO_VIZ_FRONTIER_VIEW_H_

#include <string>
#include <vector>

#include "cost/metric.h"
#include "index/cell_index.h"

namespace moqo {

struct ScatterOptions {
  int width = 56;
  int height = 14;
  int x_metric = 0;  // Schema position on the x axis.
  int y_metric = 1;  // Schema position on the y axis.
  bool log_x = false;
  bool log_y = false;
};

// Renders the cost vectors of `plans` as an ASCII scatter plot. Plans
// outside finite `bounds` are skipped; bounds rows/cols are annotated.
std::string RenderScatter(const std::vector<CellIndex::Entry>& plans,
                          const MetricSchema& schema,
                          const CostVector& bounds,
                          const ScatterOptions& options = {});

// Renders the frontier as a table sorted by the first metric:
//   #  time(ms)   cores   precision_error
std::string RenderTable(const std::vector<CellIndex::Entry>& plans,
                        const MetricSchema& schema, size_t max_rows = 50);

}  // namespace moqo

#endif  // MOQO_VIZ_FRONTIER_VIEW_H_
