#include "plan/plan_printer.h"

#include "util/str.h"

namespace moqo {
namespace {

std::string RefName(const Query& query, TableSet tables) {
  const int t = tables.Lowest();
  const TableRef& ref = query.tables[static_cast<size_t>(t)];
  return ref.alias.empty() ? StrFormat("t%d", t) : ref.alias;
}

// "Fragment{t0,t2,t3}": an opaque leaf imported from the cross-query
// fragment store — the sub-tree's structure lives in the donor's arena.
std::string FragmentName(const Query& query, TableSet tables) {
  std::string out = "Fragment{";
  bool first = true;
  for (TableIter it(tables); !it.Done(); it.Next()) {
    if (!first) out += ",";
    first = false;
    out += RefName(query, TableSet::Singleton(it.Table()));
  }
  out += "}";
  return out;
}

void AppendPlan(const PlanArena& arena, PlanId id, const Query& query,
                std::string* out) {
  const PlanNode& node = arena.at(id);
  if (node.is_fragment) {
    *out += FragmentName(query, node.tables);
    return;
  }
  if (node.IsScan()) {
    *out += node.op.ToString();
    *out += "(";
    *out += RefName(query, node.tables);
    *out += ")";
    return;
  }
  *out += node.op.ToString();
  *out += "(";
  AppendPlan(arena, node.left, query, out);
  *out += ", ";
  AppendPlan(arena, node.right, query, out);
  *out += ")";
}

void AppendTree(const PlanArena& arena, PlanId id, const Query& query,
                int depth, std::string* out) {
  const PlanNode& node = arena.at(id);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (node.is_fragment) {
    *out += FragmentName(query, node.tables);
  } else {
    *out += node.op.ToString();
    if (node.IsScan()) {
      *out += "(";
      *out += RefName(query, node.tables);
      *out += ")";
    }
  }
  *out += StrFormat("  rows=%.3g cost=", node.output_cardinality);
  *out += node.cost.ToString();
  *out += "\n";
  if (!node.IsScan()) {
    AppendTree(arena, node.left, query, depth + 1, out);
    AppendTree(arena, node.right, query, depth + 1, out);
  }
}

}  // namespace

std::string PlanToString(const PlanArena& arena, PlanId id,
                         const Query& query) {
  std::string out;
  AppendPlan(arena, id, query, &out);
  return out;
}

std::string PlanToTreeString(const PlanArena& arena, PlanId id,
                             const Query& query) {
  std::string out;
  AppendTree(arena, id, query, 0, &out);
  return out;
}

}  // namespace moqo
