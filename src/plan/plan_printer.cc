#include "plan/plan_printer.h"

#include "util/str.h"

namespace moqo {
namespace {

std::string RefName(const Query& query, TableSet tables) {
  const int t = tables.Lowest();
  const TableRef& ref = query.tables[static_cast<size_t>(t)];
  return ref.alias.empty() ? StrFormat("t%d", t) : ref.alias;
}

void AppendPlan(const PlanArena& arena, PlanId id, const Query& query,
                std::string* out) {
  const PlanNode& node = arena.at(id);
  if (node.IsScan()) {
    *out += node.op.ToString();
    *out += "(";
    *out += RefName(query, node.tables);
    *out += ")";
    return;
  }
  *out += node.op.ToString();
  *out += "(";
  AppendPlan(arena, node.left, query, out);
  *out += ", ";
  AppendPlan(arena, node.right, query, out);
  *out += ")";
}

void AppendTree(const PlanArena& arena, PlanId id, const Query& query,
                int depth, std::string* out) {
  const PlanNode& node = arena.at(id);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.op.ToString();
  if (node.IsScan()) {
    *out += "(";
    *out += RefName(query, node.tables);
    *out += ")";
  }
  *out += StrFormat("  rows=%.3g cost=", node.output_cardinality);
  *out += node.cost.ToString();
  *out += "\n";
  if (!node.IsScan()) {
    AppendTree(arena, node.left, query, depth + 1, out);
    AppendTree(arena, node.right, query, depth + 1, out);
  }
}

}  // namespace

std::string PlanToString(const PlanArena& arena, PlanId id,
                         const Query& query) {
  std::string out;
  AppendPlan(arena, id, query, &out);
  return out;
}

std::string PlanToTreeString(const PlanArena& arena, PlanId id,
                             const Query& query) {
  std::string out;
  AppendTree(arena, id, query, 0, &out);
  return out;
}

}  // namespace moqo
