// Query plan representation.
//
// A plan either scans a single table or joins the results of two sub-plans
// (paper §3). Plans are immutable records identified by PlanId and owned by
// a PlanArena; a join plan stores only the ids of its sub-plans plus its
// operator, so each plan takes O(1) space (paper §5.2). The cost vector and
// the effective output cardinality are cached at construction.
#ifndef MOQO_PLAN_PLAN_H_
#define MOQO_PLAN_PLAN_H_

#include <cstdint>

#include "cost/cost_vector.h"
#include "plan/operators.h"
#include "util/table_set.h"

namespace moqo {

using PlanId = uint32_t;
inline constexpr PlanId kInvalidPlan = static_cast<PlanId>(-1);

struct PlanNode {
  // Tables joined by this (partial) plan.
  TableSet tables;
  // Sub-plans; kInvalidPlan for scan plans.
  PlanId left = kInvalidPlan;
  PlanId right = kInvalidPlan;
  // Physical operator: scan variant for leaves, join variant otherwise.
  OperatorDesc op;
  // Cached multi-objective cost (dimensions follow the session's schema).
  CostVector cost;
  // Estimated output cardinality, after predicates and sampling.
  double output_cardinality = 0.0;
  // Interesting tuple order produced by this plan (paper §4.3): 0 = no
  // particular order; k > 0 = sorted on the key of join predicate k-1.
  uint8_t order = 0;
  // True for opaque leaves materialized from a shared cross-query plan
  // fragment (core/fragment.h): the node stands for a whole sub-join
  // tree whose structure lives in the donor query's (freed) arena; only
  // the cached cost, cardinality, and order are meaningful.
  bool is_fragment = false;

  bool IsScan() const { return left == kInvalidPlan; }
};

}  // namespace moqo

#endif  // MOQO_PLAN_PLAN_H_
