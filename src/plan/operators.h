// Physical operator library.
//
// The paper's §4.3 extension list requires alternative join operators and
// scan variants; the evaluation's precision metric requires sampling scans,
// and the cores metric requires parallel operators. An OperatorDesc is a
// compact value describing one physical alternative.
#ifndef MOQO_PLAN_OPERATORS_H_
#define MOQO_PLAN_OPERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace moqo {

enum class ScanAlg : uint8_t {
  kSeqScan = 0,
  kIndexScan = 1,
};

enum class JoinAlg : uint8_t {
  kHashJoin = 0,
  kSortMergeJoin = 1,
  kBlockNestedLoop = 2,
};

// One physical operator alternative. For scans, `sampling_permille` encodes
// the sampling rate (1000 = full scan); joins always use 1000.
struct OperatorDesc {
  bool is_scan = true;
  uint8_t alg = 0;            // ScanAlg or JoinAlg value.
  uint8_t workers = 1;        // Degree of parallelism.
  uint16_t sampling_permille = 1000;

  double SamplingRate() const { return sampling_permille / 1000.0; }
  ScanAlg scan_alg() const { return static_cast<ScanAlg>(alg); }
  JoinAlg join_alg() const { return static_cast<JoinAlg>(alg); }

  static OperatorDesc Scan(ScanAlg a, int workers, double sampling_rate) {
    OperatorDesc d;
    d.is_scan = true;
    d.alg = static_cast<uint8_t>(a);
    d.workers = static_cast<uint8_t>(workers);
    d.sampling_permille = static_cast<uint16_t>(sampling_rate * 1000.0 + 0.5);
    return d;
  }
  static OperatorDesc Join(JoinAlg a, int workers) {
    OperatorDesc d;
    d.is_scan = false;
    d.alg = static_cast<uint8_t>(a);
    d.workers = static_cast<uint8_t>(workers);
    return d;
  }

  std::string ToString() const;
};

// Knobs controlling how many physical alternatives are enumerated. The
// defaults give a search space comparable to the paper's extended Postgres
// (several scan strategies incl. sampling, several join operators,
// parallel variants).
struct OperatorOptions {
  int max_workers = 8;
  int max_sampling_rates_per_table = 3;
  bool enable_index_scans = true;
  bool enable_sort_merge = true;
  bool enable_nested_loop = true;
  // Interesting tuple orders (paper §4.3): index scans and sort-merge
  // joins produce sorted output; a sort-merge join whose input is already
  // sorted on the merge key skips that input's sort. Pruning is then
  // partitioned by produced order (plans are only pruned by plans with
  // the same order tag).
  bool enable_interesting_orders = false;
  // Block-nested-loop is only generated when one input is estimated below
  // this row count (it is never competitive otherwise and would only
  // inflate the plan space).
  double nested_loop_max_inner_rows = 10000.0;
};

// All scan alternatives for a table (algorithm x parallelism x sampling).
std::vector<OperatorDesc> ScanAlternatives(const TableDef& table,
                                           const OperatorOptions& options);

// All join alternatives for inputs of the given estimated cardinalities.
std::vector<OperatorDesc> JoinAlternatives(double left_rows,
                                           double right_rows,
                                           const OperatorOptions& options);

}  // namespace moqo

#endif  // MOQO_PLAN_OPERATORS_H_
