// Human-readable rendering of query plans.
#ifndef MOQO_PLAN_PLAN_PRINTER_H_
#define MOQO_PLAN_PLAN_PRINTER_H_

#include <string>

#include "plan/arena.h"
#include "query/query.h"

namespace moqo {

// One-line rendering, e.g.
//   "HashJoin[w=4](SeqScan(orders), IndexScan(customer))".
std::string PlanToString(const PlanArena& arena, PlanId id,
                         const Query& query);

// Indented multi-line rendering with per-node cost vectors.
std::string PlanToTreeString(const PlanArena& arena, PlanId id,
                             const Query& query);

}  // namespace moqo

#endif  // MOQO_PLAN_PLAN_PRINTER_H_
