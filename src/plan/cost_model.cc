#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace moqo {
namespace {

// Null-checks the pinned snapshot before the member-init list
// dereferences it (JoinGraph is constructed before the factory body).
const CatalogSnapshot& DerefCatalog(
    const std::shared_ptr<const CatalogSnapshot>& catalog) {
  MOQO_CHECK_MSG(catalog != nullptr, "PlanFactory needs a catalog snapshot");
  return *catalog;
}

}  // namespace

CostModel::CostModel(MetricSchema schema, CostModelParams params)
    : schema_(std::move(schema)), params_(params) {}

CostVector CostModel::Assemble(double time, double cores, double error,
                               double fees, double energy, double io) const {
  CostVector out(schema_.dims());
  for (int i = 0; i < schema_.dims(); ++i) {
    switch (schema_.metric(i)) {
      case MetricId::kTime:
        out[i] = time;
        break;
      case MetricId::kCores:
        out[i] = cores;
        break;
      case MetricId::kPrecisionError:
        out[i] = error;
        break;
      case MetricId::kFees:
        out[i] = fees;
        break;
      case MetricId::kEnergy:
        out[i] = energy;
        break;
      case MetricId::kIo:
        out[i] = io;
        break;
    }
  }
  return out;
}

OpCost CostModel::ScanCost(const TableDef& table,
                           double predicate_selectivity,
                           const OperatorDesc& op, int index_order) const {
  MOQO_CHECK(op.is_scan);
  const CostModelParams& p = params_;
  const double rate = op.SamplingRate();
  const double w = op.workers;
  const double out_rows =
      std::max(1.0, table.cardinality * predicate_selectivity * rate);

  double work_ms = 0.0;  // Single-core effort.
  double io_pages = 0.0;
  if (op.scan_alg() == ScanAlg::kSeqScan) {
    // A sampled sequential scan reads the sampled fraction of pages and
    // evaluates predicates on every sampled tuple.
    io_pages = table.Pages() * rate;
    work_ms = io_pages * p.seq_page_ms +
              table.cardinality * rate * p.tuple_cpu_ms;
  } else {
    // Index scan: fetch only matching tuples via random page reads.
    const double matched = table.cardinality * predicate_selectivity * rate;
    io_pages = std::min(table.Pages(), matched);
    work_ms = io_pages * p.random_page_ms + matched * p.index_tuple_ms;
  }

  const double time = work_ms / w + (w - 1.0) * p.parallel_startup_ms;
  const double cores = w;
  double error = 0.0;
  if (rate < 1.0) {
    const double sample_rows =
        std::max(1.0, table.cardinality * predicate_selectivity * rate);
    error = std::min(1.0, p.sampling_error_scale / std::sqrt(sample_rows));
  }
  const double fees =
      work_ms * p.fee_per_core_ms * (1.0 + p.fee_parallel_premium * (w - 1.0));
  const double energy = work_ms * p.energy_per_ms *
                        (1.0 + p.energy_parallel_overhead * (w - 1.0));

  OpCost result;
  result.cost = Assemble(time, cores, error, fees, energy, io_pages);
  result.output_rows = out_rows;
  // Index scans return tuples in key order.
  if (op.scan_alg() == ScanAlg::kIndexScan && index_order > 0) {
    result.order = static_cast<uint8_t>(index_order);
  }
  return result;
}

OpCost CostModel::JoinCost(const PlanNode& left, const PlanNode& right,
                           double join_selectivity, const OperatorDesc& op,
                           int merge_order) const {
  MOQO_CHECK(!op.is_scan);
  const CostModelParams& p = params_;
  const double lrows = left.output_cardinality;
  const double rrows = right.output_cardinality;
  const double out_rows = std::max(1.0, lrows * rrows * join_selectivity);
  const double w = op.workers;

  uint8_t produced_order = 0;
  double work_ms = out_rows * p.output_tuple_ms;
  switch (op.join_alg()) {
    case JoinAlg::kHashJoin:
      work_ms += lrows * p.hash_build_ms + rrows * p.hash_probe_ms;
      break;
    case JoinAlg::kSortMergeJoin: {
      // An input already sorted on the merge key skips its sort phase;
      // the output inherits the merge key's order (paper §4.3).
      const bool left_sorted = merge_order > 0 && left.order == merge_order;
      const bool right_sorted =
          merge_order > 0 && right.order == merge_order;
      if (!left_sorted) {
        work_ms += lrows * std::log2(lrows + 2.0) * p.sort_ms;
      }
      if (!right_sorted) {
        work_ms += rrows * std::log2(rrows + 2.0) * p.sort_ms;
      }
      work_ms += (lrows + rrows) * p.merge_ms;
      if (merge_order > 0) {
        produced_order = static_cast<uint8_t>(merge_order);
      }
      break;
    }
    case JoinAlg::kBlockNestedLoop:
      work_ms += lrows * rrows * p.nested_loop_pair_ms;
      break;
  }

  const MetricSchema& schema = schema_;
  const int dims = schema.dims();
  CostVector cost(dims);
  for (int i = 0; i < dims; ++i) {
    const double lc = left.cost[i];
    const double rc = right.cost[i];
    switch (schema.metric(i)) {
      case MetricId::kTime:
        // Sequential execution: sum of sub-plan times plus own time.
        cost[i] = lc + rc + work_ms / w + (w - 1.0) * p.parallel_startup_ms;
        break;
      case MetricId::kCores:
        cost[i] = std::max({lc, rc, w});
        break;
      case MetricId::kPrecisionError:
        cost[i] =
            std::min(1.0, p.join_error_inflation * std::max(lc, rc));
        break;
      case MetricId::kFees:
        cost[i] = lc + rc +
                  work_ms * p.fee_per_core_ms *
                      (1.0 + p.fee_parallel_premium * (w - 1.0));
        break;
      case MetricId::kEnergy:
        cost[i] = lc + rc +
                  work_ms * p.energy_per_ms *
                      (1.0 + p.energy_parallel_overhead * (w - 1.0));
        break;
      case MetricId::kIo:
        // Joins run in memory in this model; IO comes from the scans.
        cost[i] = lc + rc;
        break;
    }
  }

  OpCost result;
  result.cost = cost;
  result.output_rows = out_rows;
  result.order = produced_order;
  return result;
}

PlanFactory::PlanFactory(const Query& query, const Catalog& catalog,
                         MetricSchema schema, CostModelParams cost_params,
                         OperatorOptions op_options)
    : PlanFactory(query, catalog.Snapshot(), std::move(schema), cost_params,
                  op_options) {}

PlanFactory::PlanFactory(const Query& query,
                         std::shared_ptr<const CatalogSnapshot> catalog,
                         MetricSchema schema, CostModelParams cost_params,
                         OperatorOptions op_options)
    : query_(query),
      catalog_(std::move(catalog)),
      graph_(query, DerefCatalog(catalog_)),
      cost_model_(std::move(schema), cost_params),
      op_options_(op_options) {
  scan_alternatives_.reserve(query_.tables.size());
  scan_order_.reserve(query_.tables.size());
  for (int t = 0; t < query_.NumTables(); ++t) {
    const TableRef& ref = query_.tables[static_cast<size_t>(t)];
    scan_alternatives_.push_back(
        ScanAlternatives(catalog_->Get(ref.table), op_options_));
    int order = 0;
    if (op_options_.enable_interesting_orders) {
      order = 1 + graph_.FirstPredicateIncident(t);
      if (order > 255) order = 0;  // Tag domain exhausted.
    }
    scan_order_.push_back(order);
  }
}

bool PlanFactory::CanCombine(TableSet a, TableSet b) const {
  if (a.Intersects(b)) return false;
  if (!graph_.HasEdgeBetween(a, b)) return false;
  return graph_.IsConnected(a) && graph_.IsConnected(b);
}

}  // namespace moqo
