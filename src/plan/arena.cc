#include "plan/arena.h"

namespace moqo {

PlanId PlanArena::AddScan(TableSet tables, OperatorDesc op,
                          const CostVector& cost,
                          double output_cardinality, uint8_t order) {
  MOQO_CHECK(op.is_scan);
  PlanNode node;
  node.tables = tables;
  node.op = op;
  node.cost = cost;
  node.output_cardinality = output_cardinality;
  node.order = order;
  nodes_.push_back(node);
  return static_cast<PlanId>(nodes_.size() - 1);
}

PlanId PlanArena::AddJoin(TableSet tables, PlanId left, PlanId right,
                          OperatorDesc op, const CostVector& cost,
                          double output_cardinality, uint8_t order) {
  MOQO_CHECK(!op.is_scan);
  MOQO_CHECK(left < nodes_.size() && right < nodes_.size());
  PlanNode node;
  node.tables = tables;
  node.left = left;
  node.right = right;
  node.op = op;
  node.cost = cost;
  node.output_cardinality = output_cardinality;
  node.order = order;
  nodes_.push_back(node);
  return static_cast<PlanId>(nodes_.size() - 1);
}

PlanId PlanArena::AddFragment(TableSet tables, OperatorDesc op,
                              const CostVector& cost,
                              double output_cardinality, uint8_t order) {
  PlanNode node;
  node.tables = tables;
  node.op = op;
  node.cost = cost;
  node.output_cardinality = output_cardinality;
  node.order = order;
  node.is_fragment = true;
  nodes_.push_back(node);
  return static_cast<PlanId>(nodes_.size() - 1);
}

}  // namespace moqo
