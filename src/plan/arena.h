// PlanArena: append-only owner of all plans generated for one query.
//
// Plans are never destroyed individually (the paper deliberately never
// discards result plans, §4.2); the arena grows monotonically across
// optimizer invocations and is released wholesale when the session ends.
#ifndef MOQO_PLAN_ARENA_H_
#define MOQO_PLAN_ARENA_H_

#include <vector>

#include "plan/plan.h"
#include "util/common.h"

namespace moqo {

class PlanArena {
 public:
  PlanArena() = default;
  PlanArena(const PlanArena&) = delete;
  PlanArena& operator=(const PlanArena&) = delete;
  PlanArena(PlanArena&&) = default;
  PlanArena& operator=(PlanArena&&) = default;

  PlanId AddScan(TableSet tables, OperatorDesc op, const CostVector& cost,
                 double output_cardinality, uint8_t order = 0);
  PlanId AddJoin(TableSet tables, PlanId left, PlanId right, OperatorDesc op,
                 const CostVector& cost, double output_cardinality,
                 uint8_t order = 0);
  // An opaque leaf standing for a complete sub-join tree imported from a
  // shared cross-query plan fragment (core/fragment.h). `tables` is the
  // fragment's whole table set; `op` is the donor root's operator
  // (display only). The node has no children — joins above it only read
  // the cached cost, cardinality, and order, exactly like any sub-plan.
  PlanId AddFragment(TableSet tables, OperatorDesc op, const CostVector& cost,
                     double output_cardinality, uint8_t order = 0);

  const PlanNode& at(PlanId id) const {
    MOQO_CHECK(id < nodes_.size());
    return nodes_[id];
  }
  size_t size() const { return nodes_.size(); }

 private:
  std::vector<PlanNode> nodes_;
};

}  // namespace moqo

#endif  // MOQO_PLAN_ARENA_H_
