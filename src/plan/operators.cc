#include "plan/operators.h"

#include "catalog/statistics.h"
#include "util/str.h"

namespace moqo {

std::string OperatorDesc::ToString() const {
  if (is_scan) {
    const char* name =
        scan_alg() == ScanAlg::kSeqScan ? "SeqScan" : "IndexScan";
    std::string out = name;
    if (sampling_permille != 1000) {
      out += StrFormat("(sample=%.1f%%)",
                       static_cast<double>(sampling_permille) / 10.0);
    }
    if (workers > 1) out += StrFormat("[w=%d]", workers);
    return out;
  }
  const char* name = "?";
  switch (join_alg()) {
    case JoinAlg::kHashJoin:
      name = "HashJoin";
      break;
    case JoinAlg::kSortMergeJoin:
      name = "SortMergeJoin";
      break;
    case JoinAlg::kBlockNestedLoop:
      name = "BlockNestedLoop";
      break;
  }
  std::string out = name;
  if (workers > 1) out += StrFormat("[w=%d]", workers);
  return out;
}

std::vector<OperatorDesc> ScanAlternatives(const TableDef& table,
                                           const OperatorOptions& options) {
  std::vector<OperatorDesc> out;
  std::vector<double> rates = {1.0};
  for (double r : SamplingRates(table, options.max_sampling_rates_per_table)) {
    rates.push_back(r);
  }
  const std::vector<int> workers = WorkerCounts(options.max_workers);
  for (double rate : rates) {
    for (int w : workers) {
      out.push_back(OperatorDesc::Scan(ScanAlg::kSeqScan, w, rate));
      if (options.enable_index_scans && table.has_index && w == 1) {
        // Index scans are inherently single-threaded in this model.
        out.push_back(OperatorDesc::Scan(ScanAlg::kIndexScan, 1, rate));
      }
    }
  }
  return out;
}

std::vector<OperatorDesc> JoinAlternatives(double left_rows,
                                           double right_rows,
                                           const OperatorOptions& options) {
  std::vector<OperatorDesc> out;
  for (int w : WorkerCounts(options.max_workers)) {
    out.push_back(OperatorDesc::Join(JoinAlg::kHashJoin, w));
    if (options.enable_sort_merge) {
      out.push_back(OperatorDesc::Join(JoinAlg::kSortMergeJoin, w));
    }
  }
  if (options.enable_nested_loop &&
      (left_rows <= options.nested_loop_max_inner_rows ||
       right_rows <= options.nested_loop_max_inner_rows)) {
    out.push_back(OperatorDesc::Join(JoinAlg::kBlockNestedLoop, 1));
  }
  return out;
}

}  // namespace moqo
