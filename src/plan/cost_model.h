// Multi-objective cost model and plan factory.
//
// Replaces the extended-Postgres cost model the paper builds on (§6.1):
// the same three evaluation metrics (execution time, reserved cores,
// result precision) plus monetary fees, energy, and IO. Every metric's
// aggregation function is built from sum / max / min / multiplication by
// constants with non-negative operator terms, so the Principle of
// Near-Optimality (paper §5.1) and monotone cost aggregation hold — the
// property tests verify both directly.
//
// Metric formulas (w = workers, all "work" in ms of single-core effort):
//   time   = child times (sum) + op work / w + (w-1) * startup
//   cores  = max(child cores, w)
//   error  = min(1, inflation * max(child errors))   [scans: sampling error]
//   fees   = child fees (sum) + op work * rate * (1 + premium*(w-1))
//   energy = child energy (sum) + op work * rate_e * (1 + overhead*(w-1))
//   io     = child io (sum) + pages read by this operator
#ifndef MOQO_PLAN_COST_MODEL_H_
#define MOQO_PLAN_COST_MODEL_H_

#include <vector>

#include "catalog/catalog.h"
#include "cost/cost_vector.h"
#include "cost/metric.h"
#include "plan/arena.h"
#include "plan/operators.h"
#include "plan/plan.h"
#include "query/join_graph.h"
#include "query/query.h"

namespace moqo {

// Tunable constants of the analytic cost model. Defaults are calibrated so
// that TPC-H SF-1 plan times land in a realistic seconds range.
struct CostModelParams {
  double seq_page_ms = 0.01;        // Sequential page read.
  double random_page_ms = 0.04;     // Random page read (index scans).
  double tuple_cpu_ms = 0.0002;     // Per-tuple CPU (scans).
  double index_tuple_ms = 0.0005;   // Per-tuple CPU via index lookup.
  double hash_build_ms = 0.0006;    // Per build-side tuple.
  double hash_probe_ms = 0.0003;    // Per probe-side tuple.
  double sort_ms = 0.0001;          // Per tuple * log2(tuples).
  double merge_ms = 0.0002;         // Per tuple during merge.
  double nested_loop_pair_ms = 1e-5;  // Per tuple pair.
  double output_tuple_ms = 0.0001;  // Per output tuple (all joins).
  double parallel_startup_ms = 0.5; // Per extra worker.
  double sampling_error_scale = 10.0;  // error = scale / sqrt(sample rows).
  double join_error_inflation = 1.1;
  double fee_per_core_ms = 0.001;   // Cents per core-ms of work.
  double fee_parallel_premium = 0.10;  // Extra fee fraction per extra worker.
  double energy_per_ms = 0.05;      // Joules per ms of work.
  double energy_parallel_overhead = 0.05;
};

// Cost, output cardinality, and produced order of one operator applied to
// given inputs.
struct OpCost {
  CostVector cost;
  double output_rows = 0.0;
  uint8_t order = 0;  // Interesting order produced (0 = none).
};

// Computes per-operator cost vectors for a fixed metric schema.
class CostModel {
 public:
  CostModel(MetricSchema schema, CostModelParams params);

  const MetricSchema& schema() const { return schema_; }
  const CostModelParams& params() const { return params_; }

  // Cost of scanning `table` (with local predicate selectivity folded in)
  // using the given scan operator. `index_order` is the interesting-order
  // tag an index scan of this table produces (0 = orders disabled or no
  // incident predicate).
  OpCost ScanCost(const TableDef& table, double predicate_selectivity,
                  const OperatorDesc& op, int index_order = 0) const;

  // Cost of joining two sub-plans with the given join operator and
  // effective join selectivity. `merge_order` is the interesting-order
  // tag of the join key a sort-merge join would merge on (0 = orders
  // disabled / no equi-key): a sort-merge join produces that order and
  // skips the sort of any input that already carries it.
  OpCost JoinCost(const PlanNode& left, const PlanNode& right,
                  double join_selectivity, const OperatorDesc& op,
                  int merge_order = 0) const;

 private:
  // Assembles a cost vector from per-metric ingredients.
  CostVector Assemble(double time, double cores, double error, double fees,
                      double energy, double io) const;

  MetricSchema schema_;
  CostModelParams params_;
};

// PlanFactory defines the physical plan search space of one query:
// which scan / join alternatives exist and what they cost. All optimizers
// (IAMA and the baselines) enumerate through this single class, so they
// search exactly the same space.
//
// The factory pins an immutable CatalogSnapshot at construction: later
// catalog mutations (statistics refresh) never change the costs this
// factory produces, so a session keeps optimizing against one
// consistent set of statistics for its whole lifetime
// (docs/CATALOG_REFRESH.md).
class PlanFactory {
 public:
  // Pins catalog.Snapshot() — the state at construction time.
  PlanFactory(const Query& query, const Catalog& catalog,
              MetricSchema schema, CostModelParams cost_params = {},
              OperatorOptions op_options = {});
  // Pins an explicit snapshot (the serving layer passes the one pinned
  // at query admission). `catalog` must be non-null.
  PlanFactory(const Query& query,
              std::shared_ptr<const CatalogSnapshot> catalog,
              MetricSchema schema, CostModelParams cost_params = {},
              OperatorOptions op_options = {});

  const Query& query() const { return query_; }
  const JoinGraph& graph() const { return graph_; }
  const CostModel& cost_model() const { return cost_model_; }
  int NumTables() const { return query_.NumTables(); }

  // True if joining `a` and `b` is considered by the DP enumeration:
  // disjoint, each connected, and at least one join predicate across.
  bool CanCombine(TableSet a, TableSet b) const;

  const OperatorOptions& operator_options() const { return op_options_; }

  // Whether interesting tuple orders are part of the search space.
  bool orders_enabled() const {
    return op_options_.enable_interesting_orders;
  }

  // The catalog snapshot this factory costs plans against.
  const CatalogSnapshot& catalog() const { return *catalog_; }

  // Invokes fn(op, op_cost) for every scan alternative of table ref `t`.
  template <typename F>
  void ForEachScan(int t, F&& fn) const {
    const TableRef& ref = query_.tables[static_cast<size_t>(t)];
    const TableDef& table = catalog_->Get(ref.table);
    const int index_order = scan_order_[static_cast<size_t>(t)];
    for (const OperatorDesc& op : scan_alternatives_[static_cast<size_t>(t)]) {
      fn(op, cost_model_.ScanCost(table, ref.predicate_selectivity, op,
                                  index_order));
    }
  }

  // Invokes fn(op, op_cost) for every join alternative combining the two
  // sub-plans (which must satisfy CanCombine on their table sets).
  template <typename F>
  void ForEachJoin(const PlanNode& left, const PlanNode& right,
                   F&& fn) const {
    const double selectivity =
        graph_.SelectivityBetween(left.tables, right.tables);
    int merge_order = 0;
    if (orders_enabled()) {
      merge_order =
          1 + graph_.FirstPredicateBetween(left.tables, right.tables);
      if (merge_order > 255) merge_order = 0;  // Tag domain exhausted.
    }
    for (const OperatorDesc& op :
         JoinAlternatives(left.output_cardinality, right.output_cardinality,
                          op_options_)) {
      fn(op, cost_model_.JoinCost(left, right, selectivity, op,
                                  merge_order));
    }
  }

 private:
  Query query_;
  // Pinned at construction; immutable and refcounted, so the factory
  // (and every session built on it) is immune to live catalog mutation.
  std::shared_ptr<const CatalogSnapshot> catalog_;
  JoinGraph graph_;
  CostModel cost_model_;
  OperatorOptions op_options_;
  std::vector<std::vector<OperatorDesc>> scan_alternatives_;
  // Interesting-order tag produced by an index scan of each table ref
  // (0 when orders are disabled or no predicate touches the table).
  std::vector<int> scan_order_;
};

}  // namespace moqo

#endif  // MOQO_PLAN_COST_MODEL_H_
