#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "index/cell_index.h"
#include "index/plan_set.h"
#include "util/rng.h"

namespace moqo {
namespace {

std::vector<uint32_t> SortedIds(const std::vector<CellIndex::Entry>& v) {
  std::vector<uint32_t> ids;
  for (const auto& e : v) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(CellIndexTest, InsertAndRangeQuery) {
  CellIndex index(2);
  index.Insert(1, CostVector{1.0, 1.0}, 0, 1);
  index.Insert(2, CostVector{10.0, 10.0}, 0, 1);
  index.Insert(3, CostVector{1.0, 1.0}, 2, 1);  // Higher resolution.
  EXPECT_EQ(index.size(), 3u);

  std::vector<uint32_t> ids;
  index.ForEachInRange(CostVector{5.0, 5.0}, 0,
                       [&](const CellIndex::Entry& e) {
                         ids.push_back(e.id);
                       });
  EXPECT_EQ(ids, (std::vector<uint32_t>{1}));

  ids.clear();
  index.ForEachInRange(CostVector{5.0, 5.0}, 2,
                       [&](const CellIndex::Entry& e) {
                         ids.push_back(e.id);
                       });
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint32_t>{1, 3}));
}

TEST(CellIndexTest, InfiniteBoundsMatchEverything) {
  CellIndex index(3);
  for (uint32_t i = 0; i < 50; ++i) {
    index.Insert(i, CostVector{static_cast<double>(i), 1e9, 0.0}, i % 4, 1);
  }
  int count = 0;
  index.ForEachInRange(CostVector::Infinite(3), 3,
                       [&](const CellIndex::Entry&) { ++count; });
  EXPECT_EQ(count, 50);
}

TEST(CellIndexTest, ZeroCostComponentsHandled) {
  CellIndex index(2);
  index.Insert(1, CostVector{0.0, 0.0}, 0, 1);
  index.Insert(2, CostVector{0.0, 5.0}, 0, 1);
  EXPECT_TRUE(index.AnyInRange(CostVector{0.0, 0.0}, 0));
  EXPECT_TRUE(index.AnyInRange(CostVector{0.0, 4.9}, 0));
  std::vector<uint32_t> ids;
  index.ForEachInRange(CostVector{0.0, 4.9}, 0,
                       [&](const CellIndex::Entry& e) {
                         ids.push_back(e.id);
                       });
  EXPECT_EQ(ids, (std::vector<uint32_t>{1}));
}

TEST(CellIndexTest, AnyInRangeCountsChecks) {
  CellIndex index(2);
  index.Insert(1, CostVector{3.0, 3.0}, 0, 1);
  uint64_t checks = 0;
  EXPECT_TRUE(index.AnyInRange(CostVector{3.5, 3.5}, 0, &checks));
  EXPECT_GE(checks, 0u);  // Boundary cells require per-entry checks.
  EXPECT_FALSE(index.AnyInRange(CostVector{2.9, 3.5}, 0, &checks));
}

TEST(CellIndexTest, DrainRemovesMatchingEntriesOnly) {
  CellIndex index(2);
  index.Insert(1, CostVector{1.0, 1.0}, 0, 1);
  index.Insert(2, CostVector{100.0, 1.0}, 0, 1);
  index.Insert(3, CostVector{1.0, 1.0}, 3, 1);  // resolution 3
  const auto drained = index.Drain(CostVector{50.0, 50.0}, 1);
  EXPECT_EQ(SortedIds(drained), (std::vector<uint32_t>{1}));
  EXPECT_EQ(index.size(), 2u);
  // Draining again finds nothing new.
  EXPECT_TRUE(index.Drain(CostVector{50.0, 50.0}, 1).empty());
  // The other entries are still retrievable.
  EXPECT_TRUE(index.AnyInRange(CostVector::Infinite(2), 3));
}

TEST(CellIndexTest, CollectMarksDeltaSemantics) {
  CellIndex index(2);
  index.Insert(1, CostVector{1.0, 1.0}, 0, /*invocation=*/1);
  const CostVector inf = CostVector::Infinite(2);

  // Invocation 1: freshly inserted entries are Δ.
  auto c1 = index.Collect(inf, 0, 1);
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_TRUE(c1[0].delta);
  // Re-collection within the same invocation keeps the classification.
  c1 = index.Collect(inf, 0, 1);
  EXPECT_TRUE(c1[0].delta);

  // Invocation 2: visible in invocation 1, hence not Δ anymore.
  auto c2 = index.Collect(inf, 0, 2);
  ASSERT_EQ(c2.size(), 1u);
  EXPECT_FALSE(c2[0].delta);

  // Invocation 4 (skipping 3): the entry was not visible in invocation 3,
  // so it is Δ again (its pairings may be incomplete).
  auto c4 = index.Collect(inf, 0, 4);
  ASSERT_EQ(c4.size(), 1u);
  EXPECT_TRUE(c4[0].delta);
}

TEST(CellIndexTest, CollectRespectsRange) {
  CellIndex index(2);
  index.Insert(1, CostVector{1.0, 1.0}, 0, 1);
  index.Insert(2, CostVector{9.0, 9.0}, 0, 1);
  auto collected = index.Collect(CostVector{5.0, 5.0}, 0, 2);
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].id, 1u);
  // Entry 2 was out of range, so its visibility stamp did not move: when
  // it becomes visible in invocation 3 it must be Δ.
  auto all = index.Collect(CostVector::Infinite(2), 0, 3);
  for (const auto& c : all) {
    if (c.id == 2) {
      EXPECT_TRUE(c.delta);
    }
    if (c.id == 1) {
      EXPECT_FALSE(c.delta);  // Visible in invocation 2.
    }
  }
}

TEST(CellIndexTest, ClearEmptiesIndex) {
  CellIndex index(2);
  index.Insert(1, CostVector{1.0, 1.0}, 0, 1);
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.AnyInRange(CostVector::Infinite(2), 255));
}

// --- Property test: range queries agree with a linear scan. ---

struct BruteEntry {
  uint32_t id;
  CostVector cost;
  int res;
};

class CellIndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(CellIndexProperty, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int dims = 1 + GetParam() % 4;
  CellIndex index(dims, 2.0);
  std::vector<BruteEntry> brute;
  for (uint32_t i = 0; i < 400; ++i) {
    CostVector v(dims);
    for (int d = 0; d < dims; ++d) {
      // Mix widely varying magnitudes incl. zeros.
      const double magnitude = std::pow(10.0, rng.UniformDouble(-4.0, 7.0));
      v[d] = rng.Bernoulli(0.05) ? 0.0 : magnitude;
    }
    const int res = static_cast<int>(rng.Uniform(6));
    index.Insert(i, v, res, 1);
    brute.push_back({i, v, res});
  }
  for (int trial = 0; trial < 50; ++trial) {
    CostVector bounds(dims);
    for (int d = 0; d < dims; ++d) {
      bounds[d] = rng.Bernoulli(0.1)
                      ? std::numeric_limits<double>::infinity()
                      : std::pow(10.0, rng.UniformDouble(-4.0, 7.0));
    }
    const int max_res = static_cast<int>(rng.Uniform(7));
    std::set<uint32_t> expected;
    for (const BruteEntry& e : brute) {
      if (e.res <= max_res && e.cost.Dominates(bounds)) expected.insert(e.id);
    }
    std::set<uint32_t> got;
    index.ForEachInRange(bounds, max_res, [&](const CellIndex::Entry& e) {
      EXPECT_TRUE(got.insert(e.id).second) << "duplicate id";
    });
    EXPECT_EQ(got, expected) << "trial " << trial;
    EXPECT_EQ(index.AnyInRange(bounds, max_res), !expected.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellIndexProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CellIndexProperty2, DrainMatchesBruteForce) {
  Rng rng(999);
  const int dims = 3;
  CellIndex index(dims);
  std::vector<BruteEntry> brute;
  for (uint32_t i = 0; i < 300; ++i) {
    CostVector v(dims);
    for (int d = 0; d < dims; ++d) {
      v[d] = std::pow(10.0, rng.UniformDouble(-2.0, 5.0));
    }
    const int res = static_cast<int>(rng.Uniform(4));
    index.Insert(i, v, res, 1);
    brute.push_back({i, v, res});
  }
  // Drain in several rounds with shrinking boxes.
  std::set<uint32_t> drained_total;
  for (double scale : {1e4, 1e2, 1e0}) {
    CostVector bounds(dims, scale);
    const auto drained = index.Drain(bounds, 3);
    for (const auto& e : drained) {
      EXPECT_TRUE(drained_total.insert(e.id).second)
          << "entry drained twice";
    }
  }
  std::set<uint32_t> expected;
  for (const BruteEntry& e : brute) {
    if (e.cost.Dominates(CostVector(dims, 1e4))) expected.insert(e.id);
  }
  EXPECT_EQ(drained_total, expected);
}

TEST(PlanSetTableTest, LazyCreationAndTotalSize) {
  PlanSetTable table(4, 2);
  EXPECT_EQ(table.TotalSize(), 0u);
  table.For(TableSet(0b0011)).Insert(1, CostVector{1.0, 1.0}, 0, 1);
  table.For(TableSet(0b1100)).Insert(2, CostVector{2.0, 2.0}, 0, 1);
  table.For(TableSet(0b0011)).Insert(3, CostVector{3.0, 3.0}, 1, 1);
  EXPECT_EQ(table.TotalSize(), 3u);
  EXPECT_EQ(table.For(TableSet(0b0011)).size(), 2u);
  EXPECT_EQ(table.For(TableSet(0b1111)).size(), 0u);
}

}  // namespace
}  // namespace moqo
