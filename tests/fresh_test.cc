#include <gtest/gtest.h>

#include "core/fresh.h"

namespace moqo {
namespace {

TEST(FreshPairRegistryTest, MarksPairsOnce) {
  FreshPairRegistry reg;
  EXPECT_TRUE(reg.IsFresh(1, 2));
  EXPECT_TRUE(reg.Mark(1, 2));
  EXPECT_FALSE(reg.IsFresh(1, 2));
  EXPECT_FALSE(reg.Mark(1, 2));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(FreshPairRegistryTest, OrderedPairsAreDistinct) {
  // (a, b) and (b, a) are different combinations: join operators are
  // asymmetric (build vs probe side, outer vs inner).
  FreshPairRegistry reg;
  EXPECT_TRUE(reg.Mark(1, 2));
  EXPECT_TRUE(reg.IsFresh(2, 1));
  EXPECT_TRUE(reg.Mark(2, 1));
  EXPECT_EQ(reg.size(), 2u);
}

TEST(FreshPairRegistryTest, LargeIdsDoNotCollide) {
  FreshPairRegistry reg;
  EXPECT_TRUE(reg.Mark(0xFFFFFFFFu, 0));
  EXPECT_TRUE(reg.IsFresh(0, 0xFFFFFFFFu));
  EXPECT_TRUE(reg.Mark(0xFFFFFFFEu, 1));
  EXPECT_FALSE(reg.IsFresh(0xFFFFFFFFu, 0));
  EXPECT_EQ(reg.size(), 2u);
}

}  // namespace
}  // namespace moqo
