#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "pareto/coverage.h"
#include "pareto/dominance.h"
#include "pareto/frontier.h"
#include "util/rng.h"

namespace moqo {
namespace {

TEST(DominanceTest, ApproxDominates) {
  CostVector a{10.0, 10.0};
  CostVector b{9.0, 9.0};
  EXPECT_FALSE(Dominates(a, b));
  EXPECT_TRUE(ApproxDominates(a, b, 1.2));   // 10 <= 1.2 * 9.
  EXPECT_FALSE(ApproxDominates(a, b, 1.05));
  EXPECT_TRUE(ApproxDominates(b, a, 1.0));
}

TEST(DominanceTest, RespectsBounds) {
  CostVector c{5.0, 3.0};
  EXPECT_TRUE(RespectsBounds(c, CostVector{5.0, 3.0}));
  EXPECT_TRUE(RespectsBounds(c, CostVector::Infinite(2)));
  EXPECT_FALSE(RespectsBounds(c, CostVector{4.9, 10.0}));
}

TEST(DominanceTest, CoverFactor) {
  CostVector a{10.0, 2.0};
  CostVector b{5.0, 4.0};
  // a covers b with factor max(10/5, 1) = 2.
  EXPECT_DOUBLE_EQ(CoverFactor(a, b), 2.0);
  EXPECT_DOUBLE_EQ(CoverFactor(b, a), 2.0);
  EXPECT_DOUBLE_EQ(CoverFactor(b, b), 1.0);
  // A zero reference component that is exceeded cannot be covered.
  EXPECT_TRUE(std::isinf(CoverFactor(CostVector{1.0, 1.0},
                                     CostVector{0.0, 1.0})));
  // ... but a zero component that is matched is fine.
  EXPECT_DOUBLE_EQ(CoverFactor(CostVector{0.0, 2.0}, CostVector{0.0, 1.0}),
                   2.0);
}

TEST(FrontierTest, InsertKeepsNonDominated) {
  ParetoFrontier f;
  EXPECT_TRUE(f.Insert(CostVector{5.0, 5.0}, 1));
  EXPECT_TRUE(f.Insert(CostVector{3.0, 7.0}, 2));
  EXPECT_TRUE(f.Insert(CostVector{7.0, 3.0}, 3));
  EXPECT_EQ(f.size(), 3u);
  // Dominated by (5,5): rejected.
  EXPECT_FALSE(f.Insert(CostVector{6.0, 6.0}, 4));
  EXPECT_EQ(f.size(), 3u);
  // Dominates (5,5): evicts it.
  EXPECT_TRUE(f.Insert(CostVector{4.0, 4.0}, 5));
  EXPECT_EQ(f.size(), 3u);
  EXPECT_TRUE(f.IsStrictlyDominated(CostVector{5.0, 5.0}));
}

TEST(FrontierTest, EqualCostKeptOnce) {
  ParetoFrontier f;
  EXPECT_TRUE(f.Insert(CostVector{1.0, 2.0}, 1));
  EXPECT_FALSE(f.Insert(CostVector{1.0, 2.0}, 2));
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.entries()[0].payload, 1u);
}

TEST(FrontierTest, DominationQueries) {
  ParetoFrontier f;
  f.Insert(CostVector{2.0, 2.0}, 1);
  EXPECT_TRUE(f.IsDominated(CostVector{2.0, 2.0}));
  EXPECT_FALSE(f.IsStrictlyDominated(CostVector{2.0, 2.0}));
  EXPECT_TRUE(f.IsStrictlyDominated(CostVector{2.0, 3.0}));
  EXPECT_FALSE(f.IsDominated(CostVector{1.9, 3.0}));
}

TEST(FrontierTest, PropertyMembersAreMutuallyNonDominated) {
  Rng rng(11);
  for (int dims : {2, 3, 4}) {
    ParetoFrontier f;
    for (int i = 0; i < 500; ++i) {
      CostVector v(dims);
      for (int d = 0; d < dims; ++d) v[d] = rng.UniformDouble(0.0, 10.0);
      f.Insert(v, static_cast<uint64_t>(i));
    }
    for (const auto& a : f.entries()) {
      for (const auto& b : f.entries()) {
        if (&a == &b) continue;
        EXPECT_FALSE(a.cost.StrictlyDominates(b.cost));
      }
    }
  }
}

TEST(FrontierTest, MatchesBruteForceParetoSet) {
  Rng rng(22);
  const int dims = 3;
  std::vector<CostVector> points;
  ParetoFrontier f;
  for (int i = 0; i < 300; ++i) {
    CostVector v(dims);
    for (int d = 0; d < dims; ++d) v[d] = rng.UniformDouble(0.0, 5.0);
    points.push_back(v);
    f.Insert(v, static_cast<uint64_t>(i));
  }
  // Brute force: a point is Pareto-optimal iff nothing strictly
  // dominates it.
  size_t optimal = 0;
  for (const CostVector& p : points) {
    bool dominated = false;
    for (const CostVector& q : points) {
      if (q.StrictlyDominates(p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) ++optimal;
  }
  // The frontier may hold fewer entries than `optimal` counts when
  // duplicate cost vectors exist; with continuous random values they are
  // almost surely distinct.
  EXPECT_EQ(f.size(), optimal);
}

TEST(CoverageTest, ExactSetCoversItself) {
  std::vector<CostVector> set = {{1.0, 5.0}, {3.0, 3.0}, {5.0, 1.0}};
  const auto report =
      CheckCoverage(set, set, 1.0, CostVector::Infinite(2));
  EXPECT_TRUE(report.covered);
  EXPECT_EQ(report.required, 3);
  EXPECT_EQ(report.violations, 0);
  EXPECT_DOUBLE_EQ(report.worst_factor, 1.0);
}

TEST(CoverageTest, DetectsViolations) {
  std::vector<CostVector> result = {{2.0, 2.0}};
  std::vector<CostVector> reference = {{1.0, 1.0}};
  auto report =
      CheckCoverage(result, reference, 1.5, CostVector::Infinite(2));
  EXPECT_FALSE(report.covered);
  EXPECT_EQ(report.violations, 1);
  EXPECT_DOUBLE_EQ(report.worst_factor, 2.0);
  report = CheckCoverage(result, reference, 2.0, CostVector::Infinite(2));
  EXPECT_TRUE(report.covered);
}

TEST(CoverageTest, BoundsExcludeReferencesOutsideScaledBox) {
  // A reference plan only has to be covered if alpha * cost respects the
  // bounds (definition of the α-approximate b-bounded Pareto set).
  std::vector<CostVector> result;  // Empty result set.
  std::vector<CostVector> reference = {{10.0, 10.0}};
  const CostVector bounds{11.0, 11.0};
  // alpha * ref = (15, 15) exceeds bounds: no coverage required.
  auto report = CheckCoverage(result, reference, 1.5, bounds);
  EXPECT_TRUE(report.covered);
  EXPECT_EQ(report.required, 0);
  // alpha * ref = (10.5, 10.5) within bounds: coverage required and fails.
  report = CheckCoverage(result, reference, 1.05, bounds);
  EXPECT_FALSE(report.covered);
  EXPECT_EQ(report.required, 1);
}

}  // namespace
}  // namespace moqo
