#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baseline/exhaustive.h"
#include "baseline/one_shot.h"
#include "baseline/single_objective.h"
#include "core/incremental_optimizer.h"
#include "pareto/coverage.h"
#include "pareto/dominance.h"
#include "test_helpers.h"

namespace moqo {
namespace {

// ---------------------------------------------------------------------
// Theorem 2: after invoking Optimize with bounds b and resolution r,
// Res^q[0..b, 0..r] is an α_r^k-approximate b-bounded Pareto plan set for
// every table subset q with |q| = k. Verified literally against full plan
// enumeration. Sampling is disabled so that every plan for a table set has
// identical output cardinality, making the PONO exact (see DESIGN.md).
// ---------------------------------------------------------------------

class TheoremTwo : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TheoremTwo, CoverageAfterEachResolutionStep) {
  const int n = 3;
  RandomWorld world = MakeRandomWorld(GetParam(), n, /*sampling=*/false);
  const ResolutionSchedule schedule(4, 1.02, 0.3);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);

  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    opt.Optimize(inf, r);
    const double alpha = schedule.Alpha(r);
    // Check every connected subset, not just the full query.
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      const TableSet q(mask);
      if (!world.factory->graph().IsConnected(q)) continue;
      const auto result = CostsOf(opt.ResultPlansFor(q, inf, r));
      const auto reference = EnumerateAllPlanCosts(*world.factory, q);
      const double factor = std::pow(alpha, q.Count());
      const auto report = CheckCoverage(result, reference, factor, inf);
      EXPECT_TRUE(report.covered)
          << "seed=" << GetParam() << " r=" << r << " mask=" << mask
          << " worst=" << report.worst_factor << " factor=" << factor;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremTwo,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

class TheoremTwoBounded : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TheoremTwoBounded, CoverageUnderRandomBounds) {
  // As above but with finite bounds: the b-bounded guarantee.
  const int n = 3;
  RandomWorld world = MakeRandomWorld(GetParam(), n, /*sampling=*/false);
  const ResolutionSchedule schedule(3, 1.05, 0.4);
  const TableSet full = TableSet::Full(n);
  const auto reference = EnumerateAllPlanCosts(*world.factory, full);

  // Derive non-trivial bounds from the reference costs (so some but not
  // all plans respect them).
  Rng rng(GetParam() * 7 + 1);
  CostVector bounds(3);
  CostVector lo = reference[0], hi = reference[0];
  for (const CostVector& c : reference) {
    lo = lo.Min(c);
    hi = hi.Max(c);
  }
  for (int i = 0; i < 3; ++i) {
    bounds[i] = lo[i] + (hi[i] - lo[i]) * rng.UniformDouble(0.3, 1.0);
  }

  IncrementalOptimizer opt(*world.factory, schedule, bounds);
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    opt.Optimize(bounds, r);
    const double factor = std::pow(schedule.Alpha(r), n);
    const auto result = CostsOf(opt.ResultPlans(bounds, r));
    const auto report = CheckCoverage(result, reference, factor, bounds);
    EXPECT_TRUE(report.covered)
        << "seed=" << GetParam() << " r=" << r
        << " worst=" << report.worst_factor;
    // Every reported plan respects the bounds.
    for (const CostVector& c : result) {
      EXPECT_TRUE(RespectsBounds(c, bounds));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremTwoBounded,
                         ::testing::Values(201, 202, 203, 204, 205));

// With sampling enabled, a plan's output cardinality is extra state not
// visible in its cost vector, so the textbook PONO only holds up to the
// coupling between time and sampled rows; the realized guarantee is
// bounded by ~α^(2k) (see DESIGN.md §6). This test measures it.
class TheoremTwoSampled : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TheoremTwoSampled, MeasuredCoverageWithinRelaxedFactor) {
  const int n = 3;
  RandomWorld world = MakeRandomWorld(GetParam(), n, /*sampling=*/true);
  const ResolutionSchedule schedule(3, 1.05, 0.4);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  const auto reference =
      EnumerateAllPlanCosts(*world.factory, TableSet::Full(n));
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    opt.Optimize(inf, r);
    const auto result = CostsOf(opt.ResultPlans(inf, r));
    const double relaxed = std::pow(schedule.Alpha(r), 2 * n);
    const auto report = CheckCoverage(result, reference, relaxed, inf);
    EXPECT_TRUE(report.covered)
        << "seed=" << GetParam() << " r=" << r
        << " worst=" << report.worst_factor << " relaxed=" << relaxed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremTwoSampled,
                         ::testing::Values(301, 302, 303, 304));

// ---------------------------------------------------------------------
// Incremental behavior: Lemmas 5-7 and invocation idempotence.
// ---------------------------------------------------------------------

TEST(IncrementalTest, RepeatInvocationDoesNoWork) {
  RandomWorld world = MakeRandomWorld(42, 4, /*sampling=*/true);
  const ResolutionSchedule schedule(5, 1.01, 0.2);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  opt.Optimize(inf, 0);
  opt.Optimize(inf, 1);
  const uint64_t plans_before = opt.counters().plans_generated;
  const uint64_t pairs_before = opt.counters().pairs_generated;
  // Same parameters again: nothing new may be generated.
  opt.Optimize(inf, 1);
  EXPECT_EQ(opt.counters().plans_generated, plans_before);
  EXPECT_EQ(opt.counters().pairs_generated, pairs_before);
  // Lower resolution than already computed: also nothing new.
  opt.Optimize(inf, 0);
  EXPECT_EQ(opt.counters().plans_generated, plans_before);
}

TEST(IncrementalTest, ArenaSizeEqualsPlansGenerated) {
  // Lemma 5: each plan is generated at most once — every generation
  // allocates a fresh arena slot and no plan is ever regenerated, so the
  // arena size equals the generation counter even across many
  // invocations with changing bounds.
  RandomWorld world = MakeRandomWorld(43, 4, /*sampling=*/true);
  const ResolutionSchedule schedule(4, 1.01, 0.3);
  CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  opt.Optimize(inf, 0);
  opt.Optimize(inf, 1);
  // Tighten: time bound at the median of current results.
  const auto snapshot = opt.ResultPlans(inf, 1);
  ASSERT_FALSE(snapshot.empty());
  CostVector bounds = CostVector::Infinite(3);
  bounds[0] = snapshot[snapshot.size() / 2].cost[0];
  opt.Optimize(bounds, 0);
  opt.Optimize(bounds, 1);
  opt.Optimize(bounds, 2);
  // Relax again.
  opt.Optimize(inf, 2);
  opt.Optimize(inf, 3);
  EXPECT_EQ(opt.arena().size(), opt.counters().plans_generated);
}

TEST(IncrementalTest, NoStalePairsInMonotoneSeries) {
  // In a pure resolution-refinement series the Δ-sets are exact: the
  // IsFresh predicate never has to reject a pair.
  RandomWorld world = MakeRandomWorld(44, 4, /*sampling=*/true);
  const ResolutionSchedule schedule(6, 1.01, 0.2);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    opt.Optimize(inf, r);
  }
  EXPECT_EQ(opt.counters().pairs_rejected_stale, 0u);
}

TEST(IncrementalTest, LemmaSevenCandidateRetrievalBound) {
  // Lemma 7: each generated plan is retrieved at most rM+1 times from the
  // candidate set.
  RandomWorld world = MakeRandomWorld(45, 4, /*sampling=*/true);
  const ResolutionSchedule schedule(5, 1.01, 0.2);
  const CostVector inf = CostVector::Infinite(3);
  OptimizerOptions options;
  options.track_per_plan_counters = true;
  IncrementalOptimizer opt(*world.factory, schedule, inf, options);
  // A long, adversarial invocation sequence incl. bound changes.
  opt.Optimize(inf, 0);
  opt.Optimize(inf, 1);
  const auto snap = opt.ResultPlans(inf, 1);
  ASSERT_FALSE(snap.empty());
  CostVector bounds = CostVector::Infinite(3);
  bounds[0] = snap[0].cost[0] * 2.0;
  opt.Optimize(bounds, 0);
  opt.Optimize(bounds, 1);
  opt.Optimize(bounds, 2);
  opt.Optimize(inf, 2);
  opt.Optimize(inf, 3);
  opt.Optimize(inf, 4);
  opt.Optimize(inf, 4);
  for (const auto& [plan, retrievals] :
       opt.counters().retrievals_by_plan) {
    EXPECT_LE(retrievals,
              static_cast<uint32_t>(schedule.MaxResolution() + 1))
        << "plan " << plan;
  }
}

TEST(IncrementalTest, TighteningBoundsIsFree) {
  // Tightening the bounds (with resolution reset, as the main loop does)
  // requires no new plan generation: everything relevant is already in
  // the result sets. This is the core of the incrementality argument.
  RandomWorld world = MakeRandomWorld(46, 4, /*sampling=*/true);
  const ResolutionSchedule schedule(4, 1.01, 0.3);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  for (int r = 0; r <= 2; ++r) opt.Optimize(inf, r);
  const auto snap = opt.ResultPlans(inf, 2);
  ASSERT_GE(snap.size(), 1u);
  CostVector bounds = CostVector::Infinite(3);
  bounds[0] = snap[snap.size() / 2].cost[0];

  const uint64_t plans_before = opt.counters().plans_generated;
  opt.Optimize(bounds, 0);
  opt.Optimize(bounds, 1);
  opt.Optimize(bounds, 2);
  EXPECT_EQ(opt.counters().plans_generated, plans_before);
}

TEST(IncrementalTest, RelaxingBoundsReusesParkedCandidates) {
  RandomWorld world = MakeRandomWorld(47, 3, /*sampling=*/true);
  const ResolutionSchedule schedule(3, 1.02, 0.3);
  // Start with tight bounds on time.
  const CostVector inf = CostVector::Infinite(3);
  const ExactParetoResult exact = RunExactPareto(*world.factory, inf);
  double min_time = std::numeric_limits<double>::infinity();
  for (const auto& e : exact.FinalFrontier(3).entries()) {
    min_time = std::min(min_time, e.cost[0]);
  }
  CostVector tight = CostVector::Infinite(3);
  tight[0] = min_time * 1.5;

  IncrementalOptimizer opt(*world.factory, schedule, tight);
  for (int r = 0; r <= 2; ++r) opt.Optimize(tight, r);
  const size_t results_tight = opt.ResultPlans(tight, 2).size();

  // Relax to infinity: parked candidates become relevant and coverage of
  // the full space must be restored.
  for (int r = 0; r <= 2; ++r) opt.Optimize(inf, r);
  const auto result = CostsOf(opt.ResultPlans(inf, 2));
  EXPECT_GE(result.size(), results_tight);
  const auto reference =
      EnumerateAllPlanCosts(*world.factory, TableSet::Full(3));
  const double factor = std::pow(schedule.Alpha(2), 2 * 3);  // Sampled.
  const auto report = CheckCoverage(result, reference, factor, inf);
  EXPECT_TRUE(report.covered) << "worst=" << report.worst_factor;
}

TEST(IncrementalTest, ResultSetsGrowMonotonically) {
  // Result plans are never discarded (§4.2), so the visualized frontier
  // for fixed bounds only gains plans as the resolution refines.
  RandomWorld world = MakeRandomWorld(48, 4, /*sampling=*/true);
  const ResolutionSchedule schedule(6, 1.01, 0.2);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  size_t prev = 0;
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    opt.Optimize(inf, r);
    const size_t now = opt.ResultPlans(inf, r).size();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(IncrementalTest, MatchesMemorylessResultQuality) {
  // IAMA and the memoryless baseline produce result sets with the same
  // guarantee; verify both cover the exhaustive space at each resolution.
  RandomWorld world = MakeRandomWorld(49, 3, /*sampling=*/false);
  const ResolutionSchedule schedule(4, 1.02, 0.4);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  const auto reference =
      EnumerateAllPlanCosts(*world.factory, TableSet::Full(3));
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    opt.Optimize(inf, r);
    const double factor = std::pow(schedule.Alpha(r), 3);
    const auto iama = CostsOf(opt.ResultPlans(inf, r));
    const OneShotResult memoryless =
        RunOneShot(*world.factory, schedule.Alpha(r), inf);
    std::vector<CostVector> ml_costs;
    for (PlanId id : memoryless.FinalPlans(3)) {
      ml_costs.push_back(memoryless.arena.at(id).cost);
    }
    EXPECT_TRUE(CheckCoverage(iama, reference, factor, inf).covered);
    EXPECT_TRUE(CheckCoverage(ml_costs, reference, factor, inf).covered);
  }
}

TEST(IncrementalTest, FinalResultNearOptimalPerMetric) {
  // The finest result set must contain, for each individual metric, a
  // plan within α^n of the single-objective optimum for that metric.
  RandomWorld world = MakeRandomWorld(50, 4, /*sampling=*/false);
  const ResolutionSchedule schedule(3, 1.02, 0.3);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  for (int r = 0; r <= schedule.MaxResolution(); ++r) opt.Optimize(inf, r);
  const auto result = opt.ResultPlans(inf, schedule.MaxResolution());
  ASSERT_FALSE(result.empty());
  const double factor = std::pow(schedule.alpha_target(), 4);
  // Time is additively aggregated, so single-objective DP is exact.
  const SingleObjectiveResult best_time = MinimizeMetric(*world.factory, 0);
  double iama_min = std::numeric_limits<double>::infinity();
  for (const auto& e : result) iama_min = std::min(iama_min, e.cost[0]);
  EXPECT_LE(iama_min, best_time.best_cost[0] * factor + 1e-9);
}

TEST(IncrementalTest, ScanSeedingRespectsInitialBounds) {
  RandomWorld world = MakeRandomWorld(51, 2, /*sampling=*/true);
  const ResolutionSchedule schedule(2, 1.05, 0.3);
  // Impossible bounds: nothing can be a result plan.
  const CostVector zero(3, 0.0);
  IncrementalOptimizer opt(*world.factory, schedule, zero);
  opt.Optimize(zero, 0);
  EXPECT_TRUE(opt.ResultPlans(zero, 1).empty());
  // All scan plans must be parked as candidates, not lost: relaxing the
  // bounds recovers them.
  const CostVector inf = CostVector::Infinite(3);
  opt.Optimize(inf, 0);
  EXPECT_FALSE(opt.ResultPlans(inf, 0).empty());
}

}  // namespace
}  // namespace moqo
