#!/bin/sh
# Smoke test for the serving stack: boots optimizerd on an ephemeral
# port, drives it with loadgen over real TCP, then checks graceful
# drain — SIGTERM must finish in-flight work and exit 0.
#
# Second leg: crash-recovery of the persistent fragment store. A server
# booted with --store-path serves a cold pass (per-query frontier
# digests recorded), is SIGKILLed mid-load — i.e. with write-behind
# appends plausibly in flight — and restarted on the same path. The
# restart must report zero decode errors in its replay line (a torn
# final record is fine; anything the CRC rejects beyond that is not)
# and the warm pass must reproduce the cold pass's frontier digests
# bit for bit.
#
# Third leg: the distributed worker tier. A single-process server's
# frontier digests are the reference; a --workers 2 server must
# reproduce them bit for bit, both before and after one worker process
# is SIGKILLed mid-load (the survivors recompute the dead worker's
# cells, so results never change — docs/DISTRIBUTED.md).
#
# Usage: optimizerd_smoke.sh <build-dir> [store-dir]
# store-dir defaults to a fresh mktemp -d; CI's Release leg passes a
# tmpfs path (/dev/shm) to keep the crash leg off spinning disks.
# Registered by CMake as the ctest case `optimizerd_smoke` (only when
# MOQO_BUILD_EXAMPLES is ON, since it runs the example binaries).
set -eu

BUILD_DIR="${1:?usage: optimizerd_smoke.sh <build-dir> [store-dir]}"
STORE_DIR="${2:-}"
if [ -z "$STORE_DIR" ]; then
  STORE_DIR="$(mktemp -d)"
  CLEAN_STORE_DIR=1
else
  mkdir -p "$STORE_DIR"
  CLEAN_STORE_DIR=0
fi
LOG="$(mktemp)"
LOG2="$(mktemp)"
LOG3="$(mktemp)"
COLD_DIGESTS="$(mktemp)"
WARM_DIGESTS="$(mktemp)"
REF_DIGESTS="$(mktemp)"
REF2_DIGESTS="$(mktemp)"
DIST_DIGESTS="$(mktemp)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG" "$LOG2" "$LOG3" "$COLD_DIGESTS" "$WARM_DIGESTS"
  rm -f "$REF_DIGESTS" "$REF2_DIGESTS" "$DIST_DIGESTS" "$DIST_DIGESTS.raw"
  rm -f "$STORE_DIR/fragments.log" "$STORE_DIR/fragments.log.compact"
  [ "$CLEAN_STORE_DIR" -eq 1 ] && rmdir "$STORE_DIR" 2>/dev/null || true
}
trap cleanup EXIT

# Polls $1 for the listening line; the server pid is in $SERVER_PID.
wait_for_port() {
  _log="$1"
  PORT=""
  i=0
  while [ $i -lt 100 ]; do
    PORT="$(sed -n 's/^optimizerd: listening on .*:\([0-9][0-9]*\)$/\1/p' "$_log")"
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$_log"; echo "FAIL: optimizerd died on startup"; exit 1; }
    sleep 0.1
    i=$((i + 1))
  done
  [ -n "$PORT" ] || { cat "$_log"; echo "FAIL: no listening line"; exit 1; }
}

# --- Leg 1: quotas + graceful drain (no store) ------------------------------

"$BUILD_DIR/optimizerd" --port 0 --threads 2 --shards 2 \
  --max-inflight 16 --quota smoke=8:2 > "$LOG" &
SERVER_PID=$!
wait_for_port "$LOG"

"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 2 \
  --tenants 2 --max-iterations 8 --json || {
  echo "FAIL: loadgen reported transport errors"; exit 1;
}

# Graceful drain: SIGTERM, then the process must exit 0 by itself and
# report the drain summary.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || { cat "$LOG"; echo "FAIL: exit status $STATUS"; exit 1; }
grep -q "optimizerd: drained\." "$LOG" || { cat "$LOG"; echo "FAIL: no drain summary"; exit 1; }
echo "PASS: optimizerd smoke (drain leg)"

# --- Leg 2: fragment-store crash recovery -----------------------------------

STORE_PATH="$STORE_DIR/fragments.log"
rm -f "$STORE_PATH"

: > "$LOG"
"$BUILD_DIR/optimizerd" --port 0 --threads 2 --shards 2 \
  --max-inflight 16 --store-path "$STORE_PATH" > "$LOG" &
SERVER_PID=$!
wait_for_port "$LOG"
grep -q "optimizerd: fragment store" "$LOG" || { cat "$LOG"; echo "FAIL: no replay report"; exit 1; }

# Cold pass: record every finished query's frontier digest.
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --digest | \
  sed -n 's/^loadgen-digest: //p' | sort > "$COLD_DIGESTS" || {
  echo "FAIL: cold loadgen pass"; exit 1;
}
[ -s "$COLD_DIGESTS" ] || { echo "FAIL: cold pass produced no digests"; exit 1; }

# Crash mid-publish: start another load so runs are completing (and the
# write-behind appender is busy), then SIGKILL — no drain, no flush.
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --seed 7 > /dev/null 2>&1 &
LOADGEN_PID=$!
sleep 0.3
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
wait "$LOADGEN_PID" 2>/dev/null || true  # Transport errors expected.

# Restart on the same log. The replay line must show zero decode
# errors: a SIGKILL may tear the final in-flight append (torn bytes are
# fine), but every record before it must replay CRC-clean.
"$BUILD_DIR/optimizerd" --port 0 --threads 2 --shards 2 \
  --max-inflight 16 --store-path "$STORE_PATH" > "$LOG2" &
SERVER_PID=$!
wait_for_port "$LOG2"
REPLAY_LINE="$(grep "optimizerd: fragment store" "$LOG2" || true)"
[ -n "$REPLAY_LINE" ] || { cat "$LOG2"; echo "FAIL: no replay report after crash"; exit 1; }
echo "$REPLAY_LINE"
echo "$REPLAY_LINE" | grep -q "decode errors 0" || {
  cat "$LOG2"; echo "FAIL: replay reported decode errors"; exit 1;
}
echo "$REPLAY_LINE" | grep -q "DEGRADED" && {
  cat "$LOG2"; echo "FAIL: cold tier degraded after crash"; exit 1;
}

# Warm pass: the same workload as the cold pass must produce the same
# frontier digests bit for bit, seeded from the replayed log.
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --digest | \
  sed -n 's/^loadgen-digest: //p' | sort > "$WARM_DIGESTS" || {
  echo "FAIL: warm loadgen pass"; exit 1;
}
diff "$COLD_DIGESTS" "$WARM_DIGESTS" || {
  echo "FAIL: warm frontier digests differ from cold run"; exit 1;
}

# Clean shutdown of the recovered server: drain must still work and the
# store summary line must appear.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || { cat "$LOG2"; echo "FAIL: exit status $STATUS after recovery"; exit 1; }
grep -q "optimizerd: store publishes" "$LOG2" || { cat "$LOG2"; echo "FAIL: no store summary"; exit 1; }
echo "PASS: optimizerd smoke (crash-recovery leg)"

# --- Leg 3: distributed worker tier, bit-identity under worker death --------

# Reference digests from a plain single-process server.
: > "$LOG"
"$BUILD_DIR/optimizerd" --port 0 --threads 2 --shards 2 \
  --max-inflight 16 > "$LOG" &
SERVER_PID=$!
wait_for_port "$LOG"
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --seed 11 --digest | \
  sed -n 's/^loadgen-digest: //p' | sort > "$REF_DIGESTS" || {
  echo "FAIL: reference loadgen pass"; exit 1;
}
[ -s "$REF_DIGESTS" ] || { echo "FAIL: reference pass produced no digests"; exit 1; }
# Second reference workload (fresh seed) for the worker-kill pass: a
# repeated seed would be served from the frontier cache and never
# exercise the worker tier at all.
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --seed 13 --digest | \
  sed -n 's/^loadgen-digest: //p' | sort > "$REF2_DIGESTS" || {
  echo "FAIL: second reference loadgen pass"; exit 1;
}
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { cat "$LOG"; echo "FAIL: reference server drain"; exit 1; }
SERVER_PID=""

# Same workload against the worker tier: digests must match bit for bit.
"$BUILD_DIR/optimizerd" --port 0 --threads 2 --shards 2 \
  --max-inflight 16 --workers 2 --dist-min-tables 3 > "$LOG3" &
SERVER_PID=$!
wait_for_port "$LOG3"
WORKER_PIDS="$(sed -n 's/^optimizerd: workers //p' "$LOG3")"
[ -n "$WORKER_PIDS" ] || { cat "$LOG3"; echo "FAIL: no worker-pids line"; exit 1; }
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --seed 11 --digest | \
  sed -n 's/^loadgen-digest: //p' | sort > "$DIST_DIGESTS" || {
  echo "FAIL: distributed loadgen pass"; exit 1;
}
diff "$REF_DIGESTS" "$DIST_DIGESTS" || {
  echo "FAIL: distributed frontier digests differ from single-process run"; exit 1;
}

# SIGKILL one worker while a fresh (uncached) load is in flight; the
# run it interrupts and every run after it must still match the
# single-process digests.
VICTIM="$(echo "$WORKER_PIDS" | awk '{print $2}')"
[ -n "$VICTIM" ] || { cat "$LOG3"; echo "FAIL: could not pick a victim worker"; exit 1; }
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --seed 13 --digest > "$DIST_DIGESTS.raw" &
LOADGEN_PID=$!
sleep 0.2
kill -9 "$VICTIM" 2>/dev/null || true
wait "$LOADGEN_PID" || { echo "FAIL: loadgen pass during worker kill"; exit 1; }
sed -n 's/^loadgen-digest: //p' "$DIST_DIGESTS.raw" | sort > "$DIST_DIGESTS"
rm -f "$DIST_DIGESTS.raw"
diff "$REF2_DIGESTS" "$DIST_DIGESTS" || {
  echo "FAIL: digests diverged after a worker was SIGKILLed mid-load"; exit 1;
}

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || { cat "$LOG3"; echo "FAIL: exit status $STATUS with workers"; exit 1; }
DIST_LINE="$(grep "optimizerd: dist runs" "$LOG3" || true)"
[ -n "$DIST_LINE" ] || { cat "$LOG3"; echo "FAIL: no dist summary line"; exit 1; }
echo "$DIST_LINE"
echo "$DIST_LINE" | grep -q "dist runs 0," && {
  cat "$LOG3"; echo "FAIL: no queries were routed to the worker tier"; exit 1;
}
echo "PASS: optimizerd smoke (distributed leg)"
echo "PASS: optimizerd smoke"
