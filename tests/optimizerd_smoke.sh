#!/bin/sh
# Smoke test for the serving stack: boots optimizerd on an ephemeral
# port, drives it with loadgen over real TCP, then checks graceful
# drain — SIGTERM must finish in-flight work and exit 0.
#
# Second leg: crash-recovery of the persistent fragment store. A server
# booted with --store-path serves a cold pass (per-query frontier
# digests recorded), is SIGKILLed mid-load — i.e. with write-behind
# appends plausibly in flight — and restarted on the same path. The
# restart must report zero decode errors in its replay line (a torn
# final record is fine; anything the CRC rejects beyond that is not)
# and the warm pass must reproduce the cold pass's frontier digests
# bit for bit.
#
# Usage: optimizerd_smoke.sh <build-dir> [store-dir]
# store-dir defaults to a fresh mktemp -d; CI's Release leg passes a
# tmpfs path (/dev/shm) to keep the crash leg off spinning disks.
# Registered by CMake as the ctest case `optimizerd_smoke` (only when
# MOQO_BUILD_EXAMPLES is ON, since it runs the example binaries).
set -eu

BUILD_DIR="${1:?usage: optimizerd_smoke.sh <build-dir> [store-dir]}"
STORE_DIR="${2:-}"
if [ -z "$STORE_DIR" ]; then
  STORE_DIR="$(mktemp -d)"
  CLEAN_STORE_DIR=1
else
  mkdir -p "$STORE_DIR"
  CLEAN_STORE_DIR=0
fi
LOG="$(mktemp)"
LOG2="$(mktemp)"
COLD_DIGESTS="$(mktemp)"
WARM_DIGESTS="$(mktemp)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG" "$LOG2" "$COLD_DIGESTS" "$WARM_DIGESTS"
  rm -f "$STORE_DIR/fragments.log" "$STORE_DIR/fragments.log.compact"
  [ "$CLEAN_STORE_DIR" -eq 1 ] && rmdir "$STORE_DIR" 2>/dev/null || true
}
trap cleanup EXIT

# Polls $1 for the listening line; the server pid is in $SERVER_PID.
wait_for_port() {
  _log="$1"
  PORT=""
  i=0
  while [ $i -lt 100 ]; do
    PORT="$(sed -n 's/^optimizerd: listening on .*:\([0-9][0-9]*\)$/\1/p' "$_log")"
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$_log"; echo "FAIL: optimizerd died on startup"; exit 1; }
    sleep 0.1
    i=$((i + 1))
  done
  [ -n "$PORT" ] || { cat "$_log"; echo "FAIL: no listening line"; exit 1; }
}

# --- Leg 1: quotas + graceful drain (no store) ------------------------------

"$BUILD_DIR/optimizerd" --port 0 --threads 2 --shards 2 \
  --max-inflight 16 --quota smoke=8:2 > "$LOG" &
SERVER_PID=$!
wait_for_port "$LOG"

"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 2 \
  --tenants 2 --max-iterations 8 --json || {
  echo "FAIL: loadgen reported transport errors"; exit 1;
}

# Graceful drain: SIGTERM, then the process must exit 0 by itself and
# report the drain summary.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || { cat "$LOG"; echo "FAIL: exit status $STATUS"; exit 1; }
grep -q "optimizerd: drained\." "$LOG" || { cat "$LOG"; echo "FAIL: no drain summary"; exit 1; }
echo "PASS: optimizerd smoke (drain leg)"

# --- Leg 2: fragment-store crash recovery -----------------------------------

STORE_PATH="$STORE_DIR/fragments.log"
rm -f "$STORE_PATH"

: > "$LOG"
"$BUILD_DIR/optimizerd" --port 0 --threads 2 --shards 2 \
  --max-inflight 16 --store-path "$STORE_PATH" > "$LOG" &
SERVER_PID=$!
wait_for_port "$LOG"
grep -q "optimizerd: fragment store" "$LOG" || { cat "$LOG"; echo "FAIL: no replay report"; exit 1; }

# Cold pass: record every finished query's frontier digest.
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --digest | \
  sed -n 's/^loadgen-digest: //p' | sort > "$COLD_DIGESTS" || {
  echo "FAIL: cold loadgen pass"; exit 1;
}
[ -s "$COLD_DIGESTS" ] || { echo "FAIL: cold pass produced no digests"; exit 1; }

# Crash mid-publish: start another load so runs are completing (and the
# write-behind appender is busy), then SIGKILL — no drain, no flush.
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --seed 7 > /dev/null 2>&1 &
LOADGEN_PID=$!
sleep 0.3
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
wait "$LOADGEN_PID" 2>/dev/null || true  # Transport errors expected.

# Restart on the same log. The replay line must show zero decode
# errors: a SIGKILL may tear the final in-flight append (torn bytes are
# fine), but every record before it must replay CRC-clean.
"$BUILD_DIR/optimizerd" --port 0 --threads 2 --shards 2 \
  --max-inflight 16 --store-path "$STORE_PATH" > "$LOG2" &
SERVER_PID=$!
wait_for_port "$LOG2"
REPLAY_LINE="$(grep "optimizerd: fragment store" "$LOG2" || true)"
[ -n "$REPLAY_LINE" ] || { cat "$LOG2"; echo "FAIL: no replay report after crash"; exit 1; }
echo "$REPLAY_LINE"
echo "$REPLAY_LINE" | grep -q "decode errors 0" || {
  cat "$LOG2"; echo "FAIL: replay reported decode errors"; exit 1;
}
echo "$REPLAY_LINE" | grep -q "DEGRADED" && {
  cat "$LOG2"; echo "FAIL: cold tier degraded after crash"; exit 1;
}

# Warm pass: the same workload as the cold pass must produce the same
# frontier digests bit for bit, seeded from the replayed log.
"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 3 \
  --tenants 2 --max-iterations 8 --digest | \
  sed -n 's/^loadgen-digest: //p' | sort > "$WARM_DIGESTS" || {
  echo "FAIL: warm loadgen pass"; exit 1;
}
diff "$COLD_DIGESTS" "$WARM_DIGESTS" || {
  echo "FAIL: warm frontier digests differ from cold run"; exit 1;
}

# Clean shutdown of the recovered server: drain must still work and the
# store summary line must appear.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || { cat "$LOG2"; echo "FAIL: exit status $STATUS after recovery"; exit 1; }
grep -q "optimizerd: store publishes" "$LOG2" || { cat "$LOG2"; echo "FAIL: no store summary"; exit 1; }
echo "PASS: optimizerd smoke (crash-recovery leg)"
echo "PASS: optimizerd smoke"
