#!/bin/sh
# Smoke test for the serving stack: boots optimizerd on an ephemeral
# port, drives it with loadgen over real TCP, then checks graceful
# drain — SIGTERM must finish in-flight work and exit 0.
#
# Usage: optimizerd_smoke.sh <build-dir>
# Registered by CMake as the ctest case `optimizerd_smoke` (only when
# MOQO_BUILD_EXAMPLES is ON, since it runs the example binaries).
set -eu

BUILD_DIR="${1:?usage: optimizerd_smoke.sh <build-dir>}"
LOG="$(mktemp)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

"$BUILD_DIR/optimizerd" --port 0 --threads 2 --shards 2 \
  --max-inflight 16 --quota smoke=8:2 > "$LOG" &
SERVER_PID=$!

# The single startup line carries the ephemeral port.
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT="$(sed -n 's/^optimizerd: listening on .*:\([0-9][0-9]*\)$/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG"; echo "FAIL: optimizerd died on startup"; exit 1; }
  sleep 0.1
  i=$((i + 1))
done
[ -n "$PORT" ] || { cat "$LOG"; echo "FAIL: no listening line"; exit 1; }

"$BUILD_DIR/loadgen" --port "$PORT" --sessions 4 --queries 2 \
  --tenants 2 --max-iterations 8 --json || {
  echo "FAIL: loadgen reported transport errors"; exit 1;
}

# Graceful drain: SIGTERM, then the process must exit 0 by itself and
# report the drain summary.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || { cat "$LOG"; echo "FAIL: exit status $STATUS"; exit 1; }
grep -q "optimizerd: drained\." "$LOG" || { cat "$LOG"; echo "FAIL: no drain summary"; exit 1; }
echo "PASS: optimizerd smoke"
