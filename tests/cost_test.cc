#include <cmath>

#include <gtest/gtest.h>

#include "cost/aggregation.h"
#include "cost/cost_vector.h"
#include "cost/metric.h"
#include "util/rng.h"

namespace moqo {
namespace {

CostVector RandomVector(Rng& rng, int dims, double lo = 0.0,
                        double hi = 100.0) {
  CostVector v(dims);
  for (int i = 0; i < dims; ++i) v[i] = rng.UniformDouble(lo, hi);
  return v;
}

TEST(CostVectorTest, ConstructionAndAccess) {
  CostVector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.dims(), 3);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  v[1] = 5.0;
  EXPECT_DOUBLE_EQ(v[1], 5.0);
}

TEST(CostVectorTest, FillConstructor) {
  CostVector v(4, 2.5);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(v[i], 2.5);
}

TEST(CostVectorTest, InfiniteVector) {
  CostVector inf = CostVector::Infinite(3);
  EXPECT_FALSE(inf.IsFinite());
  EXPECT_TRUE(inf.IsNonNegative());
  CostVector v{1.0, 2.0, 3.0};
  EXPECT_TRUE(v.Dominates(inf));
  EXPECT_FALSE(inf.Dominates(v));
}

TEST(CostVectorTest, DominanceBasic) {
  CostVector a{1.0, 2.0};
  CostVector b{1.0, 3.0};
  CostVector c{2.0, 1.0};
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_TRUE(a.StrictlyDominates(b));
  EXPECT_FALSE(b.Dominates(a));
  EXPECT_FALSE(a.Dominates(c));
  EXPECT_FALSE(c.Dominates(a));
  EXPECT_TRUE(a.Dominates(a));
  EXPECT_FALSE(a.StrictlyDominates(a));
}

TEST(CostVectorTest, ScaledMultipliesEveryComponent) {
  CostVector v{1.0, 0.0, 4.0};
  CostVector s = v.Scaled(2.5);
  EXPECT_DOUBLE_EQ(s[0], 2.5);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
  EXPECT_DOUBLE_EQ(s[2], 10.0);
}

TEST(CostVectorTest, MinMax) {
  CostVector a{1.0, 5.0};
  CostVector b{3.0, 2.0};
  CostVector mn = a.Min(b);
  CostVector mx = a.Max(b);
  EXPECT_DOUBLE_EQ(mn[0], 1.0);
  EXPECT_DOUBLE_EQ(mn[1], 2.0);
  EXPECT_DOUBLE_EQ(mx[0], 3.0);
  EXPECT_DOUBLE_EQ(mx[1], 5.0);
}

TEST(CostVectorTest, ToStringRendersComponents) {
  CostVector v{1.5, 2.0};
  EXPECT_EQ(v.ToString(), "[1.5, 2]");
}

// --- Property tests: dominance is a partial order. ---

class DominanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(DominanceProperty, PartialOrderLaws) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int dims = 1 + GetParam() % kMaxMetrics;
  for (int trial = 0; trial < 200; ++trial) {
    CostVector a = RandomVector(rng, dims);
    CostVector b = RandomVector(rng, dims);
    CostVector c = RandomVector(rng, dims);
    // Reflexivity.
    EXPECT_TRUE(a.Dominates(a));
    // Antisymmetry.
    if (a.Dominates(b) && b.Dominates(a)) EXPECT_TRUE(a.Equals(b));
    // Transitivity.
    if (a.Dominates(b) && b.Dominates(c)) EXPECT_TRUE(a.Dominates(c));
    // Strict dominance implies dominance, never reflexive.
    if (a.StrictlyDominates(b)) {
      EXPECT_TRUE(a.Dominates(b));
      EXPECT_FALSE(b.Dominates(a));
    }
    // Scaling by >= 1 weakens a vector.
    const double alpha = 1.0 + rng.NextDouble();
    EXPECT_TRUE(a.Dominates(a.Scaled(alpha)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- Metric schemas. ---

TEST(MetricSchemaTest, Standard3MatchesPaperEvaluation) {
  MetricSchema s = MetricSchema::Standard3();
  EXPECT_EQ(s.dims(), 3);
  EXPECT_EQ(s.metric(0), MetricId::kTime);
  EXPECT_EQ(s.metric(1), MetricId::kCores);
  EXPECT_EQ(s.metric(2), MetricId::kPrecisionError);
}

TEST(MetricSchemaTest, IndexOf) {
  MetricSchema s = MetricSchema::Cloud2();
  EXPECT_EQ(s.IndexOf(MetricId::kTime), 0);
  EXPECT_EQ(s.IndexOf(MetricId::kFees), 1);
  EXPECT_EQ(s.IndexOf(MetricId::kEnergy), -1);
  EXPECT_TRUE(s.Has(MetricId::kFees));
  EXPECT_FALSE(s.Has(MetricId::kCores));
}

TEST(MetricSchemaTest, Full6CoversAllMetrics) {
  MetricSchema s = MetricSchema::Full6();
  EXPECT_EQ(s.dims(), 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(s.Has(static_cast<MetricId>(i)));
  }
}

TEST(MetricInfoTest, CombineKinds) {
  EXPECT_EQ(GetMetricInfo(MetricId::kTime).combine, CombineKind::kSum);
  EXPECT_EQ(GetMetricInfo(MetricId::kCores).combine, CombineKind::kMax);
  EXPECT_EQ(GetMetricInfo(MetricId::kFees).combine, CombineKind::kSum);
}

// --- Aggregation terms: the PONO (paper Definition 1). ---

class PonoProperty : public ::testing::TestWithParam<CombineKind> {};

TEST_P(PonoProperty, NearOptimalInputsYieldNearOptimalOutput) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    AggregationTerm term;
    term.combine = GetParam();
    term.scale_left = rng.UniformDouble(0.0, 3.0);
    term.scale_right = rng.UniformDouble(0.0, 3.0);
    term.op_cost = rng.UniformDouble(0.0, 10.0);
    ASSERT_TRUE(IsPonoCompliant(term));

    const double l = rng.UniformDouble(0.0, 100.0);
    const double r = rng.UniformDouble(0.0, 100.0);
    const double alpha = 1.0 + rng.NextDouble() * 2.0;
    // Near-optimal replacements: l* <= alpha * l, r* <= alpha * r.
    const double ls = l * rng.UniformDouble(0.0, alpha);
    const double rs = r * rng.UniformDouble(0.0, alpha);
    const double base = Aggregate(term, l, r);
    const double repl = Aggregate(term, ls, rs);
    EXPECT_LE(repl, alpha * base + 1e-9)
        << "combine=" << static_cast<int>(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombineKinds, PonoProperty,
                         ::testing::Values(CombineKind::kSum,
                                           CombineKind::kMax,
                                           CombineKind::kMin));

TEST(AggregationTest, SumMaxMinValues) {
  AggregationTerm t;
  t.op_cost = 1.0;
  t.combine = CombineKind::kSum;
  EXPECT_DOUBLE_EQ(Aggregate(t, 2.0, 3.0), 6.0);
  t.combine = CombineKind::kMax;
  EXPECT_DOUBLE_EQ(Aggregate(t, 2.0, 3.0), 4.0);
  t.combine = CombineKind::kMin;
  EXPECT_DOUBLE_EQ(Aggregate(t, 2.0, 3.0), 3.0);
}

TEST(AggregationTest, NegativeParametersAreNotPonoCompliant) {
  AggregationTerm t;
  t.op_cost = -1.0;
  EXPECT_FALSE(IsPonoCompliant(t));
  t.op_cost = 0.0;
  t.scale_left = -0.5;
  EXPECT_FALSE(IsPonoCompliant(t));
}

}  // namespace
}  // namespace moqo
