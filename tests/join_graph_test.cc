#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "query/generator.h"
#include "query/join_graph.h"
#include "query/tpch_queries.h"
#include "util/rng.h"

namespace moqo {
namespace {

// Chain query a - b - c over a fresh catalog.
struct ChainFixture {
  Catalog catalog;
  Query query;
  ChainFixture() {
    const TableId a = catalog.AddTable({"a", 100.0, 100.0, true});
    const TableId b = catalog.AddTable({"b", 1000.0, 100.0, true});
    const TableId c = catalog.AddTable({"c", 10000.0, 100.0, true});
    QueryBuilder builder("chain");
    const int ra = builder.AddTable(a);
    const int rb = builder.AddTable(b, 0.1);
    const int rc = builder.AddTable(c);
    builder.AddJoin(ra, rb, 0.01);
    builder.AddJoin(rb, rc, 0.001);
    query = builder.Build();
  }
};

TEST(JoinGraphTest, EffectiveBaseCardinalityAppliesPredicates) {
  ChainFixture f;
  const JoinGraph g(f.query, f.catalog);
  EXPECT_DOUBLE_EQ(g.EffectiveBaseCardinality(0), 100.0);
  EXPECT_DOUBLE_EQ(g.EffectiveBaseCardinality(1), 100.0);  // 1000 * 0.1
  EXPECT_DOUBLE_EQ(g.EffectiveBaseCardinality(2), 10000.0);
}

TEST(JoinGraphTest, NeighborsFollowEdges) {
  ChainFixture f;
  const JoinGraph g(f.query, f.catalog);
  EXPECT_EQ(g.Neighbors(0), TableSet::Singleton(1));
  EXPECT_EQ(g.Neighbors(1),
            TableSet::Singleton(0).Union(TableSet::Singleton(2)));
  EXPECT_EQ(g.Neighbors(2), TableSet::Singleton(1));
}

TEST(JoinGraphTest, ConnectivityOnChain) {
  ChainFixture f;
  const JoinGraph g(f.query, f.catalog);
  EXPECT_TRUE(g.IsConnected(TableSet(0b111)));
  EXPECT_TRUE(g.IsConnected(TableSet(0b011)));
  EXPECT_TRUE(g.IsConnected(TableSet(0b110)));
  // {a, c} has no direct edge.
  EXPECT_FALSE(g.IsConnected(TableSet(0b101)));
  EXPECT_TRUE(g.IsConnected(TableSet::Singleton(0)));
  EXPECT_FALSE(g.IsConnected(TableSet()));
}

TEST(JoinGraphTest, HasEdgeBetween) {
  ChainFixture f;
  const JoinGraph g(f.query, f.catalog);
  EXPECT_TRUE(g.HasEdgeBetween(TableSet(0b001), TableSet(0b010)));
  EXPECT_FALSE(g.HasEdgeBetween(TableSet(0b001), TableSet(0b100)));
  EXPECT_TRUE(g.HasEdgeBetween(TableSet(0b011), TableSet(0b100)));
}

TEST(JoinGraphTest, SelectivityBetweenMultipliesCrossingEdges) {
  ChainFixture f;
  const JoinGraph g(f.query, f.catalog);
  EXPECT_DOUBLE_EQ(g.SelectivityBetween(TableSet(0b001), TableSet(0b010)),
                   0.01);
  EXPECT_DOUBLE_EQ(g.SelectivityBetween(TableSet(0b001), TableSet(0b100)),
                   1.0);  // No crossing edge: cross product.
  // Splitting {a,c} vs {b} crosses both edges.
  EXPECT_DOUBLE_EQ(g.SelectivityBetween(TableSet(0b101), TableSet(0b010)),
                   0.01 * 0.001);
}

TEST(JoinGraphTest, CardinalityEstimates) {
  ChainFixture f;
  const JoinGraph g(f.query, f.catalog);
  // |a ⋈ b| = 100 * 100 * 0.01 = 100.
  EXPECT_DOUBLE_EQ(g.EstimateCardinality(TableSet(0b011)), 100.0);
  // |a ⋈ b ⋈ c| = 100 * 100 * 10000 * 0.01 * 0.001.
  EXPECT_DOUBLE_EQ(g.EstimateCardinality(TableSet(0b111)), 1000.0);
  // Clamped below at one row.
  EXPECT_GE(g.EstimateCardinality(TableSet(0b001)), 1.0);
}

TEST(JoinGraphTest, CardinalityConsistentAcrossSplits) {
  // |q| estimated directly equals |q1| * |q2| * sel(q1, q2): the DP's
  // incremental cardinality computation is order-independent.
  const Catalog catalog = MakeTpchCatalog();
  for (const Query& q : TpchQueryBlocks(catalog)) {
    const JoinGraph g(q, catalog);
    const TableSet all = q.AllTables();
    for (SubsetIter split(all); !split.Done(); split.Next()) {
      const TableSet q1 = split.Subset();
      const TableSet q2 = split.Complement();
      if (!g.IsConnected(q1) || !g.IsConnected(q2)) continue;
      const double direct = g.EstimateCardinality(all);
      const double composed = g.EstimateCardinality(q1) *
                              g.EstimateCardinality(q2) *
                              g.SelectivityBetween(q1, q2);
      // Clamping at 1 row can make the composed value differ; allow it.
      if (g.EstimateCardinality(q1) > 1.0 &&
          g.EstimateCardinality(q2) > 1.0 && direct > 1.0) {
        EXPECT_NEAR(composed / direct, 1.0, 1e-9) << q.name;
      }
    }
  }
}

TEST(JoinGraphTest, RandomQueriesConnectivityMatchesUnionFind) {
  // Property: IsConnected agrees with a brute-force union-find over the
  // induced subgraph, for random graphs and random subsets.
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    Catalog catalog;
    GeneratorOptions options;
    options.num_tables = 2 + static_cast<int>(rng.Uniform(6));
    options.topology = Topology::kRandomTree;
    const Query q = RandomQuery(rng, options, &catalog);
    const JoinGraph g(q, catalog);
    const int n = q.NumTables();
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      const TableSet set(mask);
      // Union-find.
      std::vector<int> parent(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
      std::function<int(int)> find = [&](int x) {
        while (parent[static_cast<size_t>(x)] != x) {
          x = parent[static_cast<size_t>(x)];
        }
        return x;
      };
      for (const JoinPredicate& j : q.joins) {
        if (set.Contains(j.left) && set.Contains(j.right)) {
          parent[static_cast<size_t>(find(j.left))] = find(j.right);
        }
      }
      int roots = 0;
      for (TableIter it(set); !it.Done(); it.Next()) {
        if (find(it.Table()) == it.Table()) ++roots;
      }
      EXPECT_EQ(g.IsConnected(set), roots == 1) << "mask=" << mask;
    }
  }
}

}  // namespace
}  // namespace moqo
