// Tests for the plan arena, plan printing, and instrumentation counters.
#include <gtest/gtest.h>

#include "core/counters.h"
#include "plan/arena.h"
#include "plan/plan_printer.h"
#include "query/query.h"
#include "viz/frontier_view.h"

namespace moqo {
namespace {

TEST(PlanArenaTest, AddScanAndJoin) {
  PlanArena arena;
  const PlanId a = arena.AddScan(
      TableSet::Singleton(0), OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0),
      CostVector{1.0, 1.0}, 100.0);
  const PlanId b = arena.AddScan(
      TableSet::Singleton(1),
      OperatorDesc::Scan(ScanAlg::kIndexScan, 1, 1.0), CostVector{2.0, 1.0},
      50.0, /*order=*/3);
  const PlanId j = arena.AddJoin(
      TableSet(0b11), a, b, OperatorDesc::Join(JoinAlg::kHashJoin, 2),
      CostVector{5.0, 2.0}, 10.0);
  EXPECT_EQ(arena.size(), 3u);
  EXPECT_TRUE(arena.at(a).IsScan());
  EXPECT_FALSE(arena.at(j).IsScan());
  EXPECT_EQ(arena.at(j).left, a);
  EXPECT_EQ(arena.at(j).right, b);
  EXPECT_EQ(arena.at(b).order, 3);
  EXPECT_EQ(arena.at(j).order, 0);
  EXPECT_DOUBLE_EQ(arena.at(j).output_cardinality, 10.0);
}

TEST(PlanArenaTest, MoveTransfersOwnership) {
  PlanArena arena;
  arena.AddScan(TableSet::Singleton(0),
                OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0),
                CostVector{1.0}, 10.0);
  PlanArena moved = std::move(arena);
  EXPECT_EQ(moved.size(), 1u);
}

struct PrinterFixture {
  Catalog catalog;
  Query query;
  PlanArena arena;
  PlanId join;

  PrinterFixture() {
    const TableId a = catalog.AddTable({"alpha", 100.0, 100.0, true});
    const TableId b = catalog.AddTable({"beta", 100.0, 100.0, true});
    QueryBuilder builder("q");
    builder.AddTable(a, 1.0, "A");
    builder.AddTable(b);  // No alias: printed as t1.
    builder.AddJoin(0, 1, 0.01);
    query = builder.Build();
    const PlanId s0 = arena.AddScan(
        TableSet::Singleton(0),
        OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0), CostVector{1.0},
        100.0);
    const PlanId s1 = arena.AddScan(
        TableSet::Singleton(1),
        OperatorDesc::Scan(ScanAlg::kIndexScan, 1, 0.25), CostVector{0.5},
        25.0);
    join = arena.AddJoin(TableSet(0b11), s0, s1,
                         OperatorDesc::Join(JoinAlg::kSortMergeJoin, 4),
                         CostVector{3.0}, 10.0);
  }
};

TEST(PlanPrinterTest, OneLineRendering) {
  PrinterFixture f;
  EXPECT_EQ(PlanToString(f.arena, f.join, f.query),
            "SortMergeJoin[w=4](SeqScan(A), IndexScan(sample=25.0%)(t1))");
}

TEST(PlanPrinterTest, TreeRenderingContainsCostsAndRows) {
  PrinterFixture f;
  const std::string tree = PlanToTreeString(f.arena, f.join, f.query);
  EXPECT_NE(tree.find("SortMergeJoin[w=4]  rows=10"), std::string::npos);
  EXPECT_NE(tree.find("  SeqScan(A)"), std::string::npos);
  EXPECT_NE(tree.find("cost=[3]"), std::string::npos);
  // Children indented deeper than the root.
  EXPECT_LT(tree.find("SortMergeJoin"), tree.find("SeqScan"));
}

TEST(CountersTest, ToStringContainsAllFields) {
  Counters c;
  c.plans_generated = 7;
  c.pairs_generated = 3;
  c.candidate_retrievals = 11;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("plans=7"), std::string::npos);
  EXPECT_NE(s.find("pairs=3"), std::string::npos);
  EXPECT_NE(s.find("cand_retrievals=11"), std::string::npos);
}

TEST(CountersTest, PerPlanTrackingIsOptIn) {
  Counters c;
  c.OnCandidateRetrieved(5);
  EXPECT_TRUE(c.retrievals_by_plan.empty());
  c.track_per_plan = true;
  c.OnCandidateRetrieved(5);
  c.OnCandidateRetrieved(5);
  EXPECT_EQ(c.retrievals_by_plan[5], 2u);
  EXPECT_EQ(c.candidate_retrievals, 3u);
}

std::vector<CellIndex::Entry> MakeEntries(
    std::initializer_list<CostVector> costs) {
  std::vector<CellIndex::Entry> out;
  uint32_t id = 0;
  for (const CostVector& c : costs) {
    CellIndex::Entry e;
    e.id = id++;
    e.cost = c;
    out.push_back(e);
  }
  return out;
}

TEST(FrontierViewTest, ScatterRendersPoints) {
  const auto entries = MakeEntries(
      {CostVector{1.0, 10.0, 0.0}, CostVector{10.0, 1.0, 0.0}});
  const std::string plot = RenderScatter(
      entries, MetricSchema::Standard3(), CostVector::Infinite(3));
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("x=time"), std::string::npos);
  EXPECT_NE(plot.find("y=cores"), std::string::npos);
  EXPECT_NE(plot.find("(2 plans)"), std::string::npos);
}

TEST(FrontierViewTest, ScatterRespectsBounds) {
  const auto entries = MakeEntries(
      {CostVector{1.0, 1.0, 0.0}, CostVector{100.0, 1.0, 0.0}});
  CostVector bounds = CostVector::Infinite(3);
  bounds[0] = 10.0;
  const std::string plot =
      RenderScatter(entries, MetricSchema::Standard3(), bounds);
  EXPECT_NE(plot.find("(1 plans)"), std::string::npos);
}

TEST(FrontierViewTest, EmptyFrontierRendersPlaceholder) {
  const std::string plot = RenderScatter({}, MetricSchema::Standard3(),
                                         CostVector::Infinite(3));
  EXPECT_NE(plot.find("no plans"), std::string::npos);
}

TEST(FrontierViewTest, TableSortedByFirstMetric) {
  const auto entries = MakeEntries(
      {CostVector{5.0, 1.0, 0.0}, CostVector{1.0, 2.0, 0.5}});
  const std::string table =
      RenderTable(entries, MetricSchema::Standard3());
  // Row 0 is the cheaper-time plan.
  const size_t row0 = table.find("\n  0   ");
  const size_t row1 = table.find("\n  1   ");
  ASSERT_NE(row0, std::string::npos);
  ASSERT_NE(row1, std::string::npos);
  EXPECT_LT(table.find("precision_error"), row0);
  EXPECT_LT(row0, row1);
}

TEST(FrontierViewTest, TableTruncatesAtMaxRows) {
  std::vector<CellIndex::Entry> entries;
  for (int i = 0; i < 10; ++i) {
    CellIndex::Entry e;
    e.id = static_cast<uint32_t>(i);
    e.cost = CostVector{static_cast<double>(i), 0.0, 0.0};
    entries.push_back(e);
  }
  const std::string table =
      RenderTable(entries, MetricSchema::Standard3(), 3);
  EXPECT_NE(table.find("... 7 more"), std::string::npos);
}

}  // namespace
}  // namespace moqo
