// Wire protocol and optimizerd server tests: codec round trips and
// malformed-input rejection (every decoder is Status-returning — network
// bytes must never reach a MOQO_CHECK), remote-vs-in-process frontier
// bit-identity, the admission taxonomy over the wire (quota / shed /
// drain / not-found), connection-scoped ids, and the stalled-client
// isolation guarantee. TSan CI runs this binary: server, client, and
// scheduler threads all interleave here.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tpch.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "query/tpch_queries.h"
#include "service/optimizer_service.h"
#include "test_helpers.h"

namespace moqo {
namespace {

using net::Frame;
using net::MsgType;
using net::OptimizerClient;
using net::OptimizerServer;
using net::ServerOptions;
using net::SnapshotMsg;

Query SmallQuery(const Catalog& catalog) {
  return TpchQueryBlocks(catalog).front();
}

// --- Codec round trips. ---

TEST(WireCodecTest, SubmitRoundTripsExactly) {
  SubmitRequest in;
  QueryBuilder b("roundtrip");
  b.AddTable(3, 0.25, "o");
  b.AddTable(7, 1.0, "l");
  b.AddTable(3, 0.1);  // Self-join reference.
  b.AddJoin(0, 1, 1e-6);
  b.AddJoin(1, 2, 0.015625);
  in.query = b.Build();
  in.tenant = "gold";
  in.priority = 7;
  in.deadline_ms = 1234.5;
  in.max_iterations = 42;
  in.subscribe = true;
  in.subscription_capacity = 3;

  Frame frame;
  frame.type = static_cast<uint8_t>(MsgType::kSubmit);
  frame.payload = net::EncodeSubmit(0xDEADBEEFCAFEBABEull, in);
  uint64_t tag = 0;
  SubmitRequest out;
  bool stream = false;
  ASSERT_TRUE(net::DecodeSubmit(frame, &tag, &out, &stream).ok());
  EXPECT_EQ(tag, 0xDEADBEEFCAFEBABEull);
  EXPECT_TRUE(stream);
  EXPECT_EQ(out.tenant, "gold");
  EXPECT_EQ(out.priority, 7);
  EXPECT_EQ(out.deadline_ms, 1234.5);
  EXPECT_EQ(out.max_iterations, 42);
  EXPECT_EQ(out.subscription_capacity, 3u);
  EXPECT_TRUE(out.subscribe);  // Forced: the server always subscribes.
  ASSERT_EQ(out.query.tables.size(), in.query.tables.size());
  for (size_t i = 0; i < in.query.tables.size(); ++i) {
    EXPECT_EQ(out.query.tables[i].table, in.query.tables[i].table);
    // Bit-exact double round trip, not approximate.
    EXPECT_EQ(out.query.tables[i].predicate_selectivity,
              in.query.tables[i].predicate_selectivity);
    EXPECT_EQ(out.query.tables[i].alias, in.query.tables[i].alias);
  }
  ASSERT_EQ(out.query.joins.size(), in.query.joins.size());
  for (size_t i = 0; i < in.query.joins.size(); ++i) {
    EXPECT_EQ(out.query.joins[i].left, in.query.joins[i].left);
    EXPECT_EQ(out.query.joins[i].right, in.query.joins[i].right);
    EXPECT_EQ(out.query.joins[i].selectivity, in.query.joins[i].selectivity);
  }
}

TEST(WireCodecTest, DecodeSubmitClampsHostileSubscriptionCapacity) {
  // A stalled client requesting a u32-max capacity would pin one deep
  // FrontierSnapshot per step in server memory; the decoder clamps the
  // knob to the server-side ceiling instead of trusting the wire.
  SubmitRequest in;
  QueryBuilder b("hostile");
  b.AddTable(0, 1.0);
  in.query = b.Build();
  in.subscribe = true;
  in.subscription_capacity = 0xFFFFFFFFu;

  Frame frame;
  frame.type = static_cast<uint8_t>(MsgType::kSubmit);
  frame.payload = net::EncodeSubmit(1, in);
  uint64_t tag = 0;
  SubmitRequest out;
  bool stream = false;
  ASSERT_TRUE(net::DecodeSubmit(frame, &tag, &out, &stream).ok());
  EXPECT_EQ(out.subscription_capacity, net::kMaxWireSubscriptionCapacity);

  // In-range capacities pass through untouched (the round-trip test
  // pins small values; this pins the boundary).
  in.subscription_capacity = net::kMaxWireSubscriptionCapacity;
  frame.payload = net::EncodeSubmit(2, in);
  ASSERT_TRUE(net::DecodeSubmit(frame, &tag, &out, &stream).ok());
  EXPECT_EQ(out.subscription_capacity, net::kMaxWireSubscriptionCapacity);
}

TEST(WireCodecTest, ResultRoundTripsBitExactly) {
  QueryResult in;
  in.id = 99;
  in.state = QueryState::kExpired;
  in.iterations = 17;
  in.from_cache = true;
  in.coalesced = true;
  in.plans_generated = 123456789012345ull;
  in.pairs_generated = 42;
  in.catalog_version = 7;
  in.frontier.iteration = 17;
  in.frontier.resolution = 3;
  in.frontier.alpha = 1.0594630943592953;  // An irrational-ish double.
  in.frontier.bounds = CostVector{1e300, 0.1, 3.0000000000000004};
  for (uint32_t i = 0; i < 5; ++i) {
    CellIndex::Entry e;
    e.id = i;
    e.last_visible = i * 7;
    e.cost = CostVector{0.1 * static_cast<double>(i) + 1e-30, 5e-324};
    e.resolution = static_cast<uint8_t>(i);
    e.order = static_cast<uint8_t>(i % 3);
    e.delta = (i % 2) == 0;
    in.frontier.plans.push_back(e);
  }

  Frame frame;
  frame.type = static_cast<uint8_t>(MsgType::kResult);
  frame.payload = net::EncodeResult(in);
  QueryResult out;
  ASSERT_TRUE(net::DecodeResult(frame, &out).ok());
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.state, in.state);
  EXPECT_EQ(out.iterations, in.iterations);
  EXPECT_EQ(out.from_cache, in.from_cache);
  EXPECT_EQ(out.coalesced, in.coalesced);
  EXPECT_EQ(out.plans_generated, in.plans_generated);
  EXPECT_EQ(out.pairs_generated, in.pairs_generated);
  EXPECT_EQ(out.catalog_version, in.catalog_version);
  EXPECT_EQ(out.frontier.iteration, in.frontier.iteration);
  EXPECT_EQ(out.frontier.alpha, in.frontier.alpha);  // Bit-exact.
  ASSERT_EQ(out.frontier.plans.size(), in.frontier.plans.size());
  EXPECT_EQ(FrontierSignature(out.frontier.plans),
            FrontierSignature(in.frontier.plans));
  for (size_t i = 0; i < in.frontier.plans.size(); ++i) {
    EXPECT_EQ(out.frontier.plans[i].cost[0], in.frontier.plans[i].cost[0]);
    EXPECT_EQ(out.frontier.plans[i].cost[1], in.frontier.plans[i].cost[1]);
    EXPECT_EQ(out.frontier.plans[i].last_visible,
              in.frontier.plans[i].last_visible);
    EXPECT_EQ(out.frontier.plans[i].delta, in.frontier.plans[i].delta);
  }
}

TEST(WireCodecTest, ErrorRoundTripsTheTaxonomy) {
  const Status in = Status::Shedding("over capacity", 75);
  Frame frame;
  frame.type = static_cast<uint8_t>(MsgType::kError);
  frame.payload = net::EncodeError(5, in);
  uint64_t tag = 0;
  Status out;
  ASSERT_TRUE(net::DecodeError(frame, &tag, &out).ok());
  EXPECT_EQ(tag, 5u);
  EXPECT_EQ(out.code(), StatusCode::kShedding);
  EXPECT_EQ(out.retry_after_ms(), 75u);
  EXPECT_EQ(out.message(), "over capacity");
}

TEST(WireCodecTest, SubmitOkRoundTripsFragmentHits) {
  SubmitResponse in;
  in.id = 42;
  in.catalog_version = 7;
  in.from_cache = true;
  in.tenant_fragment_hits = 0x1122334455667788ull;
  Frame frame;
  frame.type = static_cast<uint8_t>(MsgType::kSubmitOk);
  frame.payload = net::EncodeSubmitOk(9, in);
  uint64_t tag = 0;
  SubmitResponse out;
  ASSERT_TRUE(net::DecodeSubmitOk(frame, &tag, &out).ok());
  EXPECT_EQ(tag, 9u);
  EXPECT_EQ(out.id, 42u);
  EXPECT_EQ(out.catalog_version, 7u);
  EXPECT_TRUE(out.from_cache);
  EXPECT_FALSE(out.coalesced);
  EXPECT_EQ(out.tenant_fragment_hits, 0x1122334455667788ull);
}

// The tenant_fragment_hits trailer is optional: a SUBMIT_OK frame from
// a server predating the field (payload ends after the flags byte)
// still decodes, with the counter defaulting to 0 — and a frame with a
// partial trailer is a decode error, not a silent truncation.
TEST(WireCodecTest, SubmitOkWithoutFragmentHitsTrailerDecodes) {
  SubmitResponse in;
  in.id = 3;
  in.catalog_version = 1;
  in.tenant_fragment_hits = 55;
  const std::string full = net::EncodeSubmitOk(4, in);
  constexpr size_t kTrailerBytes = 8;
  ASSERT_GT(full.size(), kTrailerBytes);

  Frame frame;
  frame.type = static_cast<uint8_t>(MsgType::kSubmitOk);
  frame.payload = full.substr(0, full.size() - kTrailerBytes);
  uint64_t tag = 0;
  SubmitResponse out;
  out.tenant_fragment_hits = 99;  // Must be reset by the decoder.
  ASSERT_TRUE(net::DecodeSubmitOk(frame, &tag, &out).ok());
  EXPECT_EQ(tag, 4u);
  EXPECT_EQ(out.id, 3u);
  EXPECT_EQ(out.tenant_fragment_hits, 0u);

  for (size_t cut = 1; cut < kTrailerBytes; ++cut) {
    frame.payload = full.substr(0, full.size() - kTrailerBytes + cut);
    EXPECT_FALSE(net::DecodeSubmitOk(frame, &tag, &out).ok())
        << "partial " << cut << "-byte trailer decoded successfully";
  }
}

// Every truncation of a valid payload must decode to an error — never
// crash, never read out of bounds (ASan/TSan CI would flag it).
TEST(WireCodecTest, TruncationsAreErrorsNotCrashes) {
  SubmitRequest request;
  QueryBuilder b("trunc");
  b.AddTable(1, 0.5, "x");
  b.AddTable(2, 0.5, "y");
  b.AddJoin(0, 1, 0.01);
  request.query = b.Build();
  request.tenant = "t";
  const std::string full = net::EncodeSubmit(1, request);
  for (size_t len = 0; len < full.size(); ++len) {
    Frame frame;
    frame.type = static_cast<uint8_t>(MsgType::kSubmit);
    frame.payload = full.substr(0, len);
    uint64_t tag = 0;
    SubmitRequest out;
    bool stream = false;
    EXPECT_FALSE(net::DecodeSubmit(frame, &tag, &out, &stream).ok())
        << "prefix of length " << len << " decoded successfully";
  }

  QueryResult result;
  result.frontier.bounds = CostVector{1.0, 2.0};
  CellIndex::Entry e;
  e.cost = CostVector{3.0, 4.0};
  result.frontier.plans.push_back(e);
  const std::string full_result = net::EncodeResult(result);
  for (size_t len = 0; len < full_result.size(); ++len) {
    Frame frame;
    frame.type = static_cast<uint8_t>(MsgType::kResult);
    frame.payload = full_result.substr(0, len);
    QueryResult out;
    EXPECT_FALSE(net::DecodeResult(frame, &out).ok());
  }
}

TEST(WireCodecTest, TrailingGarbageRejected) {
  Frame frame;
  frame.type = static_cast<uint8_t>(MsgType::kCancel);
  frame.payload = net::EncodeCancel(1, 2) + "x";
  uint64_t tag = 0;
  QueryId id = 0;
  EXPECT_FALSE(net::DecodeCancel(frame, &tag, &id).ok());
}

TEST(WireCodecTest, HostileFieldValuesRejected) {
  {
    // Cost vector claiming more dims than kMaxMetrics.
    net::Writer w;
    w.PutU64(1);  // id
    w.PutU8(1);   // state
    w.PutU32(1);  // iterations
    w.PutU8(0);   // flags
    w.PutU64(0);  // plans
    w.PutU64(0);  // pairs
    w.PutU64(0);  // catalog_version
    w.PutU32(1);  // frontier.iteration
    w.PutU32(0);  // frontier.resolution
    w.PutF64(1.0);
    w.PutU8(200);  // bounds dims: hostile.
    Frame frame;
    frame.type = static_cast<uint8_t>(MsgType::kResult);
    frame.payload = w.bytes();
    QueryResult out;
    EXPECT_FALSE(net::DecodeResult(frame, &out).ok());
  }
  {
    // A string length far beyond the actual payload.
    net::Writer w;
    w.PutU64(1);            // tag
    w.PutU8(7);             // code
    w.PutU64(0);            // retry_after_ms
    w.PutU32(0xFFFFFFFFu);  // message length: hostile.
    Frame frame;
    frame.type = static_cast<uint8_t>(MsgType::kError);
    frame.payload = w.bytes();
    uint64_t tag = 0;
    Status status;
    EXPECT_FALSE(net::DecodeError(frame, &tag, &status).ok());
  }
  {
    // Unknown QueryState on a RESULT frame.
    QueryResult in;
    std::string payload = net::EncodeResult(in);
    payload[8] = 9;  // state byte (after the u64 id).
    Frame frame;
    frame.type = static_cast<uint8_t>(MsgType::kResult);
    frame.payload = payload;
    QueryResult out;
    EXPECT_FALSE(net::DecodeResult(frame, &out).ok());
  }
}

// --- Server integration. ---

struct TestServer {
  explicit TestServer(ServiceOptions service_options = {},
                      ServerOptions server_options = {}) {
    catalog = MakeTpchCatalog();
    if (service_options.num_threads == 1 && service_options.num_shards == 1) {
      service_options.num_threads = 2;
      service_options.num_shards = 2;
    }
    service =
        std::make_unique<OptimizerService>(catalog, service_options);
    server = std::make_unique<OptimizerServer>(service.get(),
                                               std::move(server_options));
    const Status st = server->Start();
    MOQO_CHECK_MSG(st.ok(), "test server failed to start");
  }
  Catalog catalog;
  std::unique_ptr<OptimizerService> service;
  std::unique_ptr<OptimizerServer> server;
};

TEST(NetServerTest, RemoteResultsBitIdenticalToInProcess) {
  TestServer remote;
  // An identical but independent service: same catalog, same options,
  // no shared state — the in-process reference.
  Catalog catalog = MakeTpchCatalog();
  ServiceOptions local_options;
  local_options.num_threads = 2;
  local_options.num_shards = 2;
  OptimizerService local(catalog, local_options);

  OptimizerClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", remote.server->port()).ok());
  for (const Query& query : TpchQueryBlocks(remote.catalog)) {
    SubmitRequest request;
    request.query = query;
    request.max_iterations = 5;
    request.subscribe = true;
    StatusOr<SubmitResponse> submitted = client.Submit(request);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    StatusOr<QueryResult> remote_result = client.Wait(submitted.value().id);
    ASSERT_TRUE(remote_result.ok());
    EXPECT_EQ(remote_result.value().state, QueryState::kDone);

    StatusOr<QueryId> local_id = local.Submit(query, [] {
      SubmitOptions options;
      options.max_iterations = 5;
      return options;
    }());
    ASSERT_TRUE(local_id.ok());
    const QueryResult local_result = local.Wait(local_id.value());
    EXPECT_EQ(remote_result.value().iterations, local_result.iterations);
    EXPECT_EQ(FrontierSignature(remote_result.value().frontier.plans),
              FrontierSignature(local_result.frontier.plans))
        << "remote and in-process frontiers diverged for " << query.name;

    // The streamed snapshots arrive gap-marked and in order.
    uint64_t last_seq = 0;
    for (const SnapshotMsg& msg : client.TakeSnapshots(submitted.value().id)) {
      EXPECT_EQ(last_seq + msg.dropped + 1, msg.sequence);
      last_seq = msg.sequence;
    }
    EXPECT_GT(last_seq, 0u);
  }
}

// SUBMIT_OK carries the submitting tenant's cumulative fragment warm
// hits: a cold tenant reads 0, and once one of its runs has re-derived
// cells from the fragment store, later admissions report the credit.
TEST(NetServerTest, FragmentWarmHitsReportedOverWire) {
  ServiceOptions service_options;
  // Isolate the fragment path: no whole-query cache, no coalescing, so
  // every repeat submission actually runs (and seeds).
  service_options.frontier_cache_capacity = 0;
  service_options.coalesce_in_flight = false;
  service_options.fragment_cache_bytes = 16 << 20;
  TestServer remote(service_options);
  OptimizerClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", remote.server->port()).ok());

  SubmitRequest request;
  request.query = TpchQueryBlocks(remote.catalog).front();
  request.tenant = "acme";

  // Cold run: publishes fragments, seeds nothing, reports 0 hits.
  StatusOr<SubmitResponse> first = client.Submit(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().tenant_fragment_hits, 0u);
  ASSERT_TRUE(client.Wait(first.value().id).ok());
  // Publishing happens on the shard thread after the result is
  // recorded, so Wait() returning does not mean the store is warm yet —
  // wait for the publish to land before submitting the warm run.
  for (int spin = 0;
       remote.service->stats().fragment_publishes == 0 && spin < 500;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(remote.service->stats().fragment_publishes, 0u);

  // Warm run: seeds the published cells (credited at its first turn).
  StatusOr<SubmitResponse> second = client.Submit(request);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(client.Wait(second.value().id).ok());
  ASSERT_GT(remote.service->stats().fragment_hits, 0u);

  // The credit is visible by the next admission of the same tenant —
  // and only for that tenant.
  StatusOr<SubmitResponse> third = client.Submit(request);
  ASSERT_TRUE(third.ok());
  EXPECT_GT(third.value().tenant_fragment_hits, 0u);
  ASSERT_TRUE(client.Wait(third.value().id).ok());

  SubmitRequest other = request;
  other.tenant = "globex";
  StatusOr<SubmitResponse> cold_tenant = client.Submit(other);
  ASSERT_TRUE(cold_tenant.ok());
  EXPECT_EQ(cold_tenant.value().tenant_fragment_hits, 0u);
  ASSERT_TRUE(client.Wait(cold_tenant.value().id).ok());
}

// The loadgen-shaped integration test: N concurrent TCP sessions, all
// results bit-identical to an in-process run of the same queries.
TEST(NetServerTest, ConcurrentSessionsMatchInProcess) {
  TestServer remote;
  const std::vector<Query> queries = TpchQueryBlocks(remote.catalog);
  constexpr int kSessions = 8;
  std::vector<std::vector<std::vector<std::vector<double>>>> remote_sigs(
      kSessions);
  std::atomic<int> failures{0};
  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      OptimizerClient client;
      if (!client.Connect("127.0.0.1", remote.server->port()).ok()) {
        ++failures;
        return;
      }
      for (const Query& query : queries) {
        SubmitRequest request;
        request.query = query;
        request.max_iterations = 4;
        StatusOr<SubmitResponse> submitted = client.Submit(request);
        if (!submitted.ok()) {
          ++failures;
          return;
        }
        StatusOr<QueryResult> result = client.Wait(submitted.value().id);
        if (!result.ok() || result.value().state != QueryState::kDone) {
          ++failures;
          return;
        }
        remote_sigs[static_cast<size_t>(s)].push_back(
            FrontierSignature(result.value().frontier.plans));
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  ASSERT_EQ(failures.load(), 0);

  Catalog catalog = MakeTpchCatalog();
  ServiceOptions local_options;
  local_options.num_threads = 2;
  local_options.num_shards = 2;
  OptimizerService local(catalog, local_options);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SubmitOptions options;
    options.max_iterations = 4;
    StatusOr<QueryId> id = local.Submit(queries[qi], options);
    ASSERT_TRUE(id.ok());
    const auto expected = FrontierSignature(local.Wait(id.value()).frontier.plans);
    for (int s = 0; s < kSessions; ++s) {
      EXPECT_EQ(remote_sigs[static_cast<size_t>(s)][qi], expected)
          << "session " << s << " query " << queries[qi].name;
    }
  }
}

TEST(NetServerTest, QuotaExceededOverTheWire) {
  ServiceOptions service_options;
  service_options.num_threads = 2;
  service_options.num_shards = 2;
  TenantQuota quota;
  quota.max_inflight = 1;
  service_options.tenant_quotas["limited"] = quota;
  TestServer remote(service_options);

  OptimizerClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", remote.server->port()).ok());
  SubmitRequest request;
  request.query = SmallQuery(remote.catalog);
  request.tenant = "limited";
  request.max_iterations = 1000000000;  // Runs until cancelled.
  StatusOr<SubmitResponse> first = client.Submit(request);
  ASSERT_TRUE(first.ok());

  SubmitRequest second;
  // A distinct query (different selectivity) so it cannot coalesce.
  QueryBuilder b("q2");
  b.AddTable(kOrders, 0.5);
  b.AddTable(kLineitem, 0.5);
  b.AddJoin(0, 1, 0.001);
  second.query = b.Build();
  second.tenant = "limited";
  StatusOr<SubmitResponse> rejected = client.Submit(second);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kQuotaExceeded);

  // Another tenant is not affected by "limited"'s quota.
  second.tenant = "other";
  second.max_iterations = 2;
  StatusOr<SubmitResponse> allowed = client.Submit(second);
  ASSERT_TRUE(allowed.ok()) << allowed.status().ToString();
  ASSERT_TRUE(client.Wait(allowed.value().id).ok());

  StatusOr<bool> cancelled = client.Cancel(first.value().id);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_TRUE(cancelled.value());
  StatusOr<QueryResult> result = client.Wait(first.value().id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().state, QueryState::kCancelled);
  EXPECT_EQ(remote.service->stats().quota_rejected, 1u);
}

TEST(NetServerTest, SheddingCarriesRetryAfterHint) {
  ServiceOptions service_options;
  service_options.num_threads = 2;
  service_options.num_shards = 2;
  service_options.max_inflight_runs = 1;
  service_options.shed_retry_hint_ms = 40.0;
  TestServer remote(service_options);

  OptimizerClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", remote.server->port()).ok());
  SubmitRequest request;
  request.query = SmallQuery(remote.catalog);
  request.max_iterations = 1000000000;
  StatusOr<SubmitResponse> first = client.Submit(request);
  ASSERT_TRUE(first.ok());

  SubmitRequest second;
  QueryBuilder b("shed2");
  b.AddTable(kCustomer, 0.25);
  b.AddTable(kOrders, 0.5);
  b.AddJoin(0, 1, 0.0001);
  second.query = b.Build();
  StatusOr<SubmitResponse> rejected = client.Submit(second);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kShedding);
  EXPECT_GE(rejected.status().retry_after_ms(), 40u);

  // A duplicate of the running query coalesces instead of shedding —
  // riding an existing run creates no new capacity demand.
  StatusOr<SubmitResponse> duplicate = client.Submit(request);
  ASSERT_TRUE(duplicate.ok()) << duplicate.status().ToString();
  EXPECT_TRUE(duplicate.value().coalesced);

  // Cancelling the leader hands the run to the coalesced follower (the
  // run outlives its original submitter), so both ids must be cancelled
  // to actually stop it.
  ASSERT_TRUE(client.Cancel(first.value().id).ok());
  ASSERT_TRUE(client.Cancel(duplicate.value().id).ok());
  ASSERT_TRUE(client.Wait(first.value().id).ok());
  ASSERT_TRUE(client.Wait(duplicate.value().id).ok());
  EXPECT_EQ(remote.service->stats().shed, 1u);
}

TEST(NetServerTest, IterationLimitRejectsOverTheWire) {
  // Shedding bounds how many runs exist; max_iterations_limit bounds
  // how long each occupies its slot. Without it a hostile client could
  // park a near-infinite run in an in-flight slot and starve admission.
  ServiceOptions service_options;
  service_options.max_iterations_limit = 50;
  TestServer remote(service_options);
  OptimizerClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", remote.server->port()).ok());

  SubmitRequest request;
  request.query = SmallQuery(remote.catalog);
  request.max_iterations = 1000000000;
  StatusOr<SubmitResponse> rejected = client.Submit(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  request.max_iterations = 4;
  StatusOr<SubmitResponse> admitted = client.Submit(request);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  StatusOr<QueryResult> result = client.Wait(admitted.value().id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().state, QueryState::kDone);
}

TEST(NetServerTest, DrainRejectsNewWorkFinishesOldWork) {
  TestServer remote;
  OptimizerClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", remote.server->port()).ok());
  SubmitRequest request;
  request.query = SmallQuery(remote.catalog);
  request.max_iterations = 1000000000;
  StatusOr<SubmitResponse> inflight = client.Submit(request);
  ASSERT_TRUE(inflight.ok());

  remote.server->BeginDrain();

  // New submissions on the existing connection: kDraining.
  SubmitRequest late;
  QueryBuilder b("late");
  b.AddTable(kPart, 0.5);
  b.AddTable(kPartsupp, 0.5);
  b.AddJoin(0, 1, 0.001);
  late.query = b.Build();
  StatusOr<SubmitResponse> rejected = client.Submit(late);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDraining);

  // New connections: refused at the handshake with the same code.
  OptimizerClient refused;
  const Status handshake =
      refused.Connect("127.0.0.1", remote.server->port());
  ASSERT_FALSE(handshake.ok());
  EXPECT_EQ(handshake.code(), StatusCode::kDraining);

  // The in-flight run still finishes and delivers over the connection.
  ASSERT_TRUE(client.Cancel(inflight.value().id).ok());
  StatusOr<QueryResult> result = client.Wait(inflight.value().id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().state, QueryState::kCancelled);
  EXPECT_GE(remote.service->stats().drain_rejected, 1u);
}

TEST(NetServerTest, RunIdsAreConnectionScoped) {
  TestServer remote;
  OptimizerClient owner;
  ASSERT_TRUE(owner.Connect("127.0.0.1", remote.server->port()).ok());
  SubmitRequest request;
  request.query = SmallQuery(remote.catalog);
  request.max_iterations = 1000000000;
  StatusOr<SubmitResponse> run = owner.Submit(request);
  ASSERT_TRUE(run.ok());

  // A second connection cannot cancel (or even probe) the first's run:
  // its client refuses locally, and the server's per-connection scope
  // rejects a forged CANCEL frame with kNotFound.
  OptimizerClient intruder;
  ASSERT_TRUE(intruder.Connect("127.0.0.1", remote.server->port()).ok());
  StatusOr<bool> local_refusal = intruder.Cancel(run.value().id);
  ASSERT_FALSE(local_refusal.ok());
  EXPECT_EQ(local_refusal.status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(owner.Cancel(run.value().id).ok());
  ASSERT_TRUE(owner.Wait(run.value().id).ok());
}

// A client that submits a streamed query and then never reads must not
// degrade other sessions: its subscription overflows (drop-oldest), its
// connection thread alone may block, and every other connection keeps
// completing. This is the end-to-end form of the backpressure guarantee.
TEST(NetServerTest, StalledClientDoesNotStarveOthers) {
  ServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.num_shards = 1;  // One shard: any stall would show.
  ServerOptions server_options;
  // Tiny socket buffers so the stalled connection's thread blocks on the
  // full socket quickly, pushing the backpressure into the subscription.
  server_options.send_buffer_bytes = 4096;
  TestServer remote(service_options, server_options);

  // The stalled session, over a raw socket so nothing ever reads replies.
  int stalled_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled_fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(stalled_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(remote.server->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(stalled_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  ASSERT_TRUE(net::WriteFrame(stalled_fd, MsgType::kHello,
                              net::EncodeHello(net::kWireVersion))
                  .ok());
  Frame hello_ok;
  ASSERT_TRUE(net::ReadFrame(stalled_fd, &hello_ok).ok());
  SubmitRequest stalled_request;
  stalled_request.query = SmallQuery(remote.catalog);
  stalled_request.max_iterations = 2000;
  stalled_request.subscribe = true;
  stalled_request.subscription_capacity = 1;
  ASSERT_TRUE(net::WriteFrame(stalled_fd, MsgType::kSubmit,
                              net::EncodeSubmit(1, stalled_request))
                  .ok());
  // From here on the stalled client reads nothing.

  // Healthy sessions proceed at full function while the stalled run
  // floods its unread stream.
  OptimizerClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", remote.server->port()).ok());
  for (int i = 0; i < 3; ++i) {
    QueryBuilder b("healthy" + std::to_string(i));
    b.AddTable(kSupplier, 0.5);
    b.AddTable(kNation, 0.9);
    b.AddTable(kRegion, 0.8);
    b.AddJoin(0, 1, 0.04);
    b.AddJoin(1, 2, 0.2);
    SubmitRequest request;
    request.query = b.Build();
    request.max_iterations = 4;
    request.subscribe = true;
    StatusOr<SubmitResponse> submitted = healthy.Submit(request);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    StatusOr<QueryResult> result = healthy.Wait(submitted.value().id);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().state, QueryState::kDone);
  }

  // The stalled run also completes (the service never waits for a
  // subscriber), with drops accounted once it finalizes.
  for (int spin = 0; spin < 2000; ++spin) {
    if (remote.service->stats().completed >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const ServiceStats stats = remote.service->stats();
  EXPECT_GE(stats.completed, 4u);
  EXPECT_GT(stats.snapshot_drops, 0u);
  ::close(stalled_fd);
}

TEST(NetServerTest, MalformedFramesDropOnlyTheirConnection) {
  TestServer remote;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(remote.server->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // An over-limit length prefix: the server must refuse to buffer it.
  const unsigned char hostile[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::send(fd, hostile, sizeof(hostile), MSG_NOSIGNAL), 4);
  ::close(fd);

  // A well-behaved client is unaffected before and after.
  OptimizerClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", remote.server->port()).ok());
  SubmitRequest request;
  request.query = SmallQuery(remote.catalog);
  request.max_iterations = 2;
  StatusOr<SubmitResponse> submitted = client.Submit(request);
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(client.Wait(submitted.value().id).ok());

  // Garbage *after* a valid handshake likewise kills only that session.
  int fd2 = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::connect(fd2, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_TRUE(net::WriteFrame(fd2, MsgType::kHello,
                              net::EncodeHello(net::kWireVersion))
                  .ok());
  Frame hello_ok;
  ASSERT_TRUE(net::ReadFrame(fd2, &hello_ok).ok());
  ASSERT_TRUE(
      net::WriteFrame(fd2, static_cast<MsgType>(0x77), "garbage").ok());
  Frame error_frame;
  // The server answers with an error frame and closes.
  if (net::ReadFrame(fd2, &error_frame).ok()) {
    EXPECT_EQ(error_frame.type, static_cast<uint8_t>(MsgType::kError));
  }
  ::close(fd2);

  StatusOr<SubmitResponse> again = client.Submit(request);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(client.Wait(again.value().id).ok());
}

TEST(NetServerTest, ClientDisconnectCancelsItsRuns) {
  TestServer remote;
  {
    OptimizerClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", remote.server->port()).ok());
    SubmitRequest request;
    request.query = SmallQuery(remote.catalog);
    request.max_iterations = 1000000000;
    ASSERT_TRUE(client.Submit(request).ok());
  }  // Disconnects with the run still live.
  // The server reaps the orphaned run instead of leaking it forever.
  for (int spin = 0; spin < 2000; ++spin) {
    if (remote.service->stats().cancelled >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(remote.service->stats().cancelled, 1u);
}

}  // namespace
}  // namespace moqo
