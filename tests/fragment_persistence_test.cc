// Tiered fragment-store persistence tests: the cold tier must make
// restarts invisible to results. A store reopened on the same log serves
// the fragments the previous process published — bit-identical, epoch
// included — through the whole service stack; a log torn mid-append
// loses at most the final partial record; a record that no longer
// decodes is skipped, not fatal; compaction reclaims superseded bytes
// without changing what replays; epoch bumps outlive the process that
// issued them; and the hot tier's byte accounting never drifts past its
// budget under same-key republish (the regression the tiering rewrite
// guards with an explicit release-before-charge).
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "core/iama.h"
#include "query/query.h"
#include "service/fragment_codec.h"
#include "service/fragment_store.h"
#include "service/optimizer_service.h"
#include "test_helpers.h"

namespace moqo {
namespace {

// Per-test scratch directory under TMPDIR; removed on destruction.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") +
            "/moqo_persist_XXXXXX";
    char* got = mkdtemp(&path_[0]);
    EXPECT_NE(got, nullptr);
  }
  ~TempDir() {
    // Best-effort cleanup: the store log plus any compaction sibling.
    std::remove((path_ + "/store.log").c_str());
    std::remove((path_ + "/store.log.compact").c_str());
    rmdir(path_.c_str());
  }
  std::string LogPath() const { return path_ + "/store.log"; }

 private:
  std::string path_;
};

std::shared_ptr<StoredFragment> MakeFragment(int resolution_complete,
                                             size_t plans,
                                             double salt = 0.0) {
  auto frag = std::make_shared<StoredFragment>();
  frag->resolution_complete = resolution_complete;
  frag->plans.resize(plans);
  for (size_t i = 0; i < plans; ++i) {
    frag->plans[i].cost =
        CostVector{1.0 + static_cast<double>(i) + salt, 2.0, 0.1};
    frag->plans[i].output_rows = 10.0 + salt;
    frag->plans[i].order = static_cast<uint8_t>(i % 3);
    frag->plans[i].resolution = static_cast<uint8_t>(resolution_complete);
  }
  return frag;
}

FragmentStore::Options TieredOptions(const std::string& path,
                                     size_t capacity = 1 << 20) {
  FragmentStore::Options opts;
  opts.capacity_bytes = capacity;
  opts.num_shards = 2;
  opts.store_path = path;
  return opts;
}

size_t FileSize(const std::string& path) {
  struct stat st;
  EXPECT_EQ(stat(path.c_str(), &st), 0) << path;
  return static_cast<size_t>(st.st_size);
}

// --- Store-level restart tests ---------------------------------------------

TEST(FragmentPersistenceTest, RestartServesPublishedFragmentsBitIdentical) {
  TempDir dir;
  {
    FragmentStore store(TieredOptions(dir.LogPath()));
    ASSERT_TRUE(store.cold_status().ok());
    for (int i = 0; i < 8; ++i) {
      store.Publish("key" + std::to_string(i),
                    MakeFragment(/*resolution_complete=*/3, 4 + i, 0.25 * i));
    }
    store.Flush();
    EXPECT_EQ(store.Stats().cold_appends, 8u);
  }
  FragmentStore store(TieredOptions(dir.LogPath()));
  ASSERT_TRUE(store.cold_status().ok());
  const FragmentStoreStats boot = store.Stats();
  EXPECT_EQ(boot.replayed_fragments, 8u);
  EXPECT_EQ(boot.replay_torn_bytes, 0u);
  EXPECT_EQ(boot.cold_decode_errors, 0u);
  EXPECT_EQ(boot.entries, 0u);  // Replay fills only the cold index.
  for (int i = 0; i < 8; ++i) {
    const auto got = store.Lookup("key" + std::to_string(i), 3);
    ASSERT_NE(got, nullptr) << i;
    const auto want = MakeFragment(3, 4 + i, 0.25 * i);
    ASSERT_EQ(got->plans.size(), want->plans.size());
    EXPECT_EQ(got->resolution_complete, 3);
    for (size_t p = 0; p < want->plans.size(); ++p) {
      for (int d = 0; d < want->plans[p].cost.dims(); ++d) {
        EXPECT_EQ(got->plans[p].cost.at(d), want->plans[p].cost.at(d));
      }
      EXPECT_EQ(got->plans[p].order, want->plans[p].order);
    }
  }
  const FragmentStoreStats after = store.Stats();
  EXPECT_EQ(after.cold_hits, 8u);
  EXPECT_EQ(after.promotions, 8u);
  // Promoted entries now serve from the hot tier.
  ASSERT_NE(store.Lookup("key0", 3), nullptr);
  EXPECT_EQ(store.Stats().cold_hits, 8u);
}

TEST(FragmentPersistenceTest, ColdResolutionFilterStillApplies) {
  TempDir dir;
  {
    FragmentStore store(TieredOptions(dir.LogPath()));
    store.Publish("k", MakeFragment(2, 3));
    store.Flush();
  }
  FragmentStore store(TieredOptions(dir.LogPath()));
  EXPECT_EQ(store.Lookup("k", 3), nullptr);  // Too coarse even from cold.
  EXPECT_NE(store.Lookup("k", 2), nullptr);
}

TEST(FragmentPersistenceTest, HotEvictionIsDemotionAndColdStillServes) {
  TempDir dir;
  // A hot budget of ~one entry: publishing more demotes, but every
  // fragment stays servable from the log.
  FragmentStore::Options opts = TieredOptions(dir.LogPath(), 2048);
  opts.num_shards = 1;
  FragmentStore store(opts);
  for (int i = 0; i < 8; ++i) {
    store.Publish("k" + std::to_string(i), MakeFragment(2, 8));
  }
  store.Flush();
  FragmentStoreStats stats = store.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.demotions, stats.evictions);
  EXPECT_LE(stats.bytes, 2048u);
  // The evicted early keys come back via cold hit + promotion.
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(store.Lookup("k" + std::to_string(i), 2), nullptr) << i;
  }
  stats = store.Stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_GT(stats.cold_hits, 0u);
  EXPECT_LE(stats.bytes, 2048u);
}

TEST(FragmentPersistenceTest, TornTailLosesOnlyFinalRecord) {
  TempDir dir;
  size_t two_records = 0;
  {
    FragmentStore store(TieredOptions(dir.LogPath()));
    store.Publish("a", MakeFragment(2, 4));
    store.Publish("b", MakeFragment(2, 5));
    store.Flush();
  }
  two_records = FileSize(dir.LogPath());
  {
    FragmentStore store(TieredOptions(dir.LogPath()));
    store.Publish("c", MakeFragment(2, 6));
    store.Flush();
  }
  const size_t three_records = FileSize(dir.LogPath());
  ASSERT_GT(three_records, two_records);
  // Tear the third append mid-record, as a crash between the page cache
  // flushing the head and the tail would.
  ASSERT_EQ(truncate(dir.LogPath().c_str(), three_records - 3), 0);

  FragmentStore store(TieredOptions(dir.LogPath()));
  ASSERT_TRUE(store.cold_status().ok());
  const FragmentStoreStats stats = store.Stats();
  EXPECT_EQ(stats.replayed_fragments, 2u);
  EXPECT_GT(stats.replay_torn_bytes, 0u);
  EXPECT_EQ(stats.cold_decode_errors, 0u);
  EXPECT_NE(store.Lookup("a", 2), nullptr);
  EXPECT_NE(store.Lookup("b", 2), nullptr);
  EXPECT_EQ(store.Lookup("c", 2), nullptr);  // Only the torn tail is lost.

  // The store writes on: a new publish lands after the discarded tail
  // and survives the next restart.
  store.Publish("d", MakeFragment(2, 3));
  store.Flush();
  FragmentStore reopened(TieredOptions(dir.LogPath()));
  EXPECT_EQ(reopened.Stats().replayed_fragments, 3u);
  EXPECT_NE(reopened.Lookup("d", 2), nullptr);
}

TEST(FragmentPersistenceTest, UndecodableRecordSkippedNotFatal) {
  TempDir dir;
  // Forge a log by hand: valid record, framed-but-garbage payload, valid
  // record. Replay must keep both good fragments and count one decode
  // error (the garbage frame passes CRC, so this exercises the payload
  // decoder's rejection path, not the framing CRC).
  std::string log;
  FragmentRecord rec;
  rec.key = "good1";
  rec.epoch = 0;
  rec.resolution_complete = 2;
  AppendLogRecord(&log, LogRecordType::kFragment,
                  EncodeFragmentRecord(rec, *MakeFragment(2, 3)));
  AppendLogRecord(&log, LogRecordType::kFragment, "not a fragment payload");
  rec.key = "good2";
  AppendLogRecord(&log, LogRecordType::kFragment,
                  EncodeFragmentRecord(rec, *MakeFragment(2, 4)));
  {
    std::FILE* f = std::fopen(dir.LogPath().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(log.data(), 1, log.size(), f), log.size());
    std::fclose(f);
  }
  FragmentStore store(TieredOptions(dir.LogPath()));
  ASSERT_TRUE(store.cold_status().ok());
  const FragmentStoreStats stats = store.Stats();
  EXPECT_EQ(stats.replayed_fragments, 2u);
  EXPECT_EQ(stats.cold_decode_errors, 1u);
  EXPECT_NE(store.Lookup("good1", 2), nullptr);
  EXPECT_NE(store.Lookup("good2", 2), nullptr);
}

TEST(FragmentPersistenceTest, EpochBumpSurvivesRestart) {
  TempDir dir;
  {
    FragmentStore store(TieredOptions(dir.LogPath()));
    store.Publish("old", MakeFragment(2, 3));
    store.BumpEpoch();
    store.Publish("new", MakeFragment(2, 3));
    store.Flush();
    EXPECT_EQ(store.epoch(), 1u);
  }
  FragmentStore store(TieredOptions(dir.LogPath()));
  EXPECT_EQ(store.epoch(), 1u);  // The bump is durable.
  const FragmentStoreStats stats = store.Stats();
  // Only the post-bump fragment replays live; the pre-bump one stays
  // invalidated across the restart.
  EXPECT_EQ(stats.replayed_fragments, 1u);
  EXPECT_EQ(store.Lookup("old", 0), nullptr);
  EXPECT_NE(store.Lookup("new", 0), nullptr);
}

TEST(FragmentPersistenceTest, CompactionReclaimsSupersededBytes) {
  TempDir dir;
  FragmentStore::Options opts = TieredOptions(dir.LogPath());
  opts.compact_min_bytes = 1024;     // Compact early: this is a unit test.
  opts.compact_dead_fraction = 0.3;
  {
    FragmentStore store(opts);
    // Ever-finer republishes of the same keys: each supersedes its
    // predecessor in the log, piling up dead bytes until compaction.
    for (int round = 1; round <= 40; ++round) {
      for (int k = 0; k < 4; ++k) {
        store.Publish("k" + std::to_string(k), MakeFragment(round, 16));
      }
    }
    store.Flush();
    const FragmentStoreStats stats = store.Stats();
    EXPECT_GT(stats.compactions, 0u);
    EXPECT_EQ(stats.cold_entries, 4u);
    // Dead bytes were reclaimed: the log holds little beyond the live
    // records (compaction resets dead to zero; a few post-compaction
    // supersedes may have accrued since).
    EXPECT_LT(stats.cold_dead_bytes, stats.cold_bytes);
  }
  // What replays after compaction is exactly the finest state.
  FragmentStore store(opts);
  EXPECT_EQ(store.Stats().replayed_fragments, 4u);
  for (int k = 0; k < 4; ++k) {
    const auto got = store.Lookup("k" + std::to_string(k), 40);
    ASSERT_NE(got, nullptr) << k;
    EXPECT_EQ(got->resolution_complete, 40);
  }
}

TEST(FragmentPersistenceTest, IoFailureDegradesToDramOnly) {
  FragmentStore store(
      TieredOptions("/nonexistent-dir-for-moqo-test/store.log"));
  EXPECT_FALSE(store.cold_status().ok());
  EXPECT_FALSE(store.cold_enabled());
  // The hot tier still works.
  store.Publish("a", MakeFragment(2, 3));
  EXPECT_NE(store.Lookup("a", 2), nullptr);
  store.Flush();  // No-op, must not hang.
  EXPECT_EQ(store.Stats().cold_appends, 0u);
}

// --- Hot-tier byte accounting under same-key republish (regression) --------

TEST(FragmentPersistenceTest, SameKeyRepublishNeverExceedsByteBudget) {
  // Same-key replacement must release the old entry's bytes before
  // charging the new one's; drift here compounds on every republish
  // until the shard either thrashes or overshoots its budget. Hammer one
  // key with ever-finer, varying-size fragments and check the gauge
  // after every publish.
  const size_t kBudget = 4096;
  FragmentStore::Options opts;
  opts.capacity_bytes = kBudget;
  opts.num_shards = 1;
  FragmentStore store(opts);
  for (int i = 1; i <= 300; ++i) {
    store.Publish("hot-key", MakeFragment(i, 1 + (i * 7) % 20));
    const FragmentStoreStats stats = store.Stats();
    ASSERT_LE(stats.bytes, kBudget) << "republish " << i;
    ASSERT_LE(stats.entries, 1u) << "republish " << i;
  }
  // After the storm, exactly the finest survives.
  ASSERT_NE(store.Lookup("hot-key", 300), nullptr);
  // Drift check: republishing same-size fragments must leave the gauge
  // exactly where one publish put it — any leak compounds per publish
  // and shows up here as a strictly growing gauge.
  store.Publish("hot-key", MakeFragment(301, 5));
  const uint64_t steady = store.Stats().bytes;
  for (int i = 302; i <= 400; ++i) {
    store.Publish("hot-key", MakeFragment(i, 5));
    ASSERT_EQ(store.Stats().bytes, steady) << "republish " << i;
  }
}

// --- Cold live-byte budget --------------------------------------------------

TEST(FragmentPersistenceTest, ColdBudgetDropsOldestFirst) {
  TempDir dir;
  // Hot capacity 0: every lookup goes through the cold index, so what
  // survives the budget is directly observable.
  FragmentStore::Options opts = TieredOptions(dir.LogPath(), /*capacity=*/0);
  // Roomy enough for a handful of fragments, far too small for 40.
  opts.cold_budget_bytes = 4096;
  opts.compact_min_bytes = 1 << 30;  // Keep compaction out of the picture.
  FragmentStore store(opts);
  for (int i = 0; i < 40; ++i) {
    store.Publish("k" + std::to_string(i), MakeFragment(2, 16, 0.5 * i));
  }
  store.Flush();
  const FragmentStoreStats stats = store.Stats();
  EXPECT_GT(stats.cold_budget_dropped, 0u);
  ASSERT_LE(stats.cold_bytes - stats.cold_dead_bytes, opts.cold_budget_bytes);
  // Oldest-first: the survivors are exactly a suffix of publish order.
  bool in_suffix = false;
  for (int i = 0; i < 40; ++i) {
    const bool live = store.Lookup("k" + std::to_string(i), 2) != nullptr;
    if (live) in_suffix = true;
    if (in_suffix) {
      EXPECT_TRUE(live) << "hole at k" << i << " breaks oldest-first order";
    }
  }
  EXPECT_TRUE(in_suffix);
  EXPECT_EQ(store.Lookup("k0", 2), nullptr);
  EXPECT_NE(store.Lookup("k39", 2), nullptr);
}

TEST(FragmentPersistenceTest, ColdBudgetAppliesAtReplay) {
  TempDir dir;
  {
    FragmentStore store(TieredOptions(dir.LogPath()));  // Unlimited.
    for (int i = 0; i < 40; ++i) {
      store.Publish("k" + std::to_string(i), MakeFragment(2, 16, 0.5 * i));
    }
  }
  // Reopen with a tight budget: the recovered live set is trimmed,
  // oldest first, before the store starts serving.
  FragmentStore::Options opts = TieredOptions(dir.LogPath());
  opts.cold_budget_bytes = 4096;
  FragmentStore store(opts);
  const FragmentStoreStats stats = store.Stats();
  EXPECT_GT(stats.cold_budget_dropped, 0u);
  ASSERT_LE(stats.cold_bytes - stats.cold_dead_bytes, opts.cold_budget_bytes);
  EXPECT_LT(stats.cold_entries, 40u);
  // The newest publish survived; the oldest went first.
  EXPECT_NE(store.Lookup("k39", 2), nullptr);
  EXPECT_EQ(store.Lookup("k0", 2), nullptr);
}

// --- Fsync policy -----------------------------------------------------------

TEST(FragmentPersistenceTest, FsyncAlwaysSyncsEveryAppend) {
  TempDir dir;
  FragmentStore::Options opts = TieredOptions(dir.LogPath());
  opts.fsync_mode = FragmentFsyncMode::kAlways;
  FragmentStore store(opts);
  for (int i = 0; i < 8; ++i) {
    store.Publish("k" + std::to_string(i), MakeFragment(2, 4));
  }
  store.Flush();  // Before the bump: a bump makes queued publishes stale.
  store.BumpEpoch();
  store.Flush();
  const FragmentStoreStats stats = store.Stats();
  EXPECT_TRUE(store.cold_status().ok());
  EXPECT_EQ(stats.cold_syncs, stats.cold_appends);
  EXPECT_GE(stats.cold_syncs, 9u);  // 8 fragments + 1 epoch record.
}

TEST(FragmentPersistenceTest, FsyncIntervalSyncsOnTheTick) {
  TempDir dir;
  FragmentStore::Options opts = TieredOptions(dir.LogPath());
  opts.fsync_mode = FragmentFsyncMode::kInterval;
  opts.fsync_interval_ms = 5;
  FragmentStore store(opts);
  for (int i = 0; i < 8; ++i) {
    store.Publish("k" + std::to_string(i), MakeFragment(2, 4));
  }
  store.Flush();
  // The appends are queued-then-logged; the tick catches up with them
  // within a few intervals.
  FragmentStoreStats stats = store.Stats();
  for (int tries = 0; tries < 200 && stats.cold_syncs == 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stats = store.Stats();
  }
  EXPECT_TRUE(store.cold_status().ok());
  EXPECT_GE(stats.cold_syncs, 1u);
  // Far fewer syncs than appends is the whole point of the mode.
  EXPECT_LE(stats.cold_syncs, stats.cold_appends);
}

TEST(FragmentPersistenceTest, FsyncIntervalFinalSyncOnShutdown) {
  TempDir dir;
  FragmentStore::Options opts = TieredOptions(dir.LogPath());
  opts.fsync_mode = FragmentFsyncMode::kInterval;
  opts.fsync_interval_ms = 60'000;  // Tick will not fire during the test.
  uint64_t syncs = 0;
  {
    FragmentStore store(opts);
    store.Publish("k", MakeFragment(2, 4));
    store.Flush();
    syncs = store.Stats().cold_syncs;
  }
  // Destruction drains and issues the shutdown sync; reopening proves
  // the record is in the log regardless.
  FragmentStore reopened(TieredOptions(dir.LogPath()));
  EXPECT_EQ(reopened.Stats().replayed_fragments, 1u);
  EXPECT_NE(reopened.Lookup("k", 2), nullptr);
  (void)syncs;
}

// --- Service-level warm restart: the end-to-end bit-identity bar -----------

// Mirrors fragment_store_test's shared workload (kept local: this suite
// must stay runnable when that file changes shape).
void AddChain(QueryBuilder* b, int* refs) {
  refs[0] = b->AddTable(TpchTable::kCustomer, 0.5);
  refs[1] = b->AddTable(TpchTable::kOrders, 1.0);
  refs[2] = b->AddTable(TpchTable::kLineitem, 0.25);
  refs[3] = b->AddTable(TpchTable::kSupplier, 1.0);
  b->AddJoin(refs[0], refs[1], 1e-5);
  b->AddJoin(refs[1], refs[2], 2e-6);
  b->AddJoin(refs[2], refs[3], 1e-4);
}

Query ChainQuery() {
  QueryBuilder b("chain");
  int refs[4];
  AddChain(&b, refs);
  return b.Build();
}

Query OverlapQuery(int variant) {
  QueryBuilder b("overlap" + std::to_string(variant));
  int refs[4];
  AddChain(&b, refs);
  const int extra = b.AddTable(TpchTable::kPart, 0.1 + 0.2 * variant);
  b.AddJoin(refs[variant % 4], extra, 1e-3);
  return b.Build();
}

ServiceOptions PersistentServiceOptions(const std::string& store_path) {
  ServiceOptions options;
  options.num_threads = 2;
  options.num_shards = 2;
  // Isolate the fragment path: no whole-query cache, no coalescing.
  options.frontier_cache_capacity = 0;
  options.coalesce_in_flight = false;
  options.fragment_cache_bytes = 16u << 20;
  options.fragment_store_path = store_path;
  return options;
}

TEST(FragmentPersistenceServiceTest, WarmRestartBitIdenticalToColdRun) {
  const Catalog catalog = MakeTpchCatalog();
  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule(4, 1.02, 0.3);
  const std::vector<Query> workload = {ChainQuery(), OverlapQuery(0),
                                       OverlapQuery(1)};
  TempDir dir;

  // Cold pass: a fresh service with an empty log. Record the final
  // frontier signature of every query — the reference a warm restart
  // must reproduce bit for bit.
  std::vector<std::vector<std::vector<double>>> cold_signatures;
  {
    OptimizerService service(catalog,
                             PersistentServiceOptions(dir.LogPath()));
    ASSERT_NE(service.fragment_store(), nullptr);
    ASSERT_TRUE(service.fragment_store()->cold_status().ok());
    for (const Query& query : workload) {
      const QueryResult result =
          service.Wait(service.Submit(query, submit).value());
      ASSERT_EQ(result.state, QueryState::kDone) << query.name;
      cold_signatures.push_back(FrontierSignature(result.frontier.plans));
    }
    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.fragment_publishes, 0u);
    // Service destruction drains the write-behind queue to the log.
  }

  // Warm pass: a new service process (as far as the store can tell) on
  // the same log. Results must be bit-identical, and the chain repeat
  // must be fully seeded from disk — zero enumeration work.
  OptimizerService service(catalog, PersistentServiceOptions(dir.LogPath()));
  ASSERT_NE(service.fragment_store(), nullptr);
  ASSERT_TRUE(service.fragment_store()->cold_status().ok());
  EXPECT_GT(service.fragment_store()->Stats().replayed_fragments, 0u);
  for (size_t q = 0; q < workload.size(); ++q) {
    const QueryResult result =
        service.Wait(service.Submit(workload[q], submit).value());
    ASSERT_EQ(result.state, QueryState::kDone) << workload[q].name;
    EXPECT_EQ(FrontierSignature(result.frontier.plans), cold_signatures[q])
        << workload[q].name;
    if (q == 0) {
      // The 4-table chain was published whole: every cell seeds from
      // the replayed log, so the warm run enumerates nothing.
      EXPECT_EQ(result.pairs_generated, 0u) << workload[q].name;
    }
  }
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.fragment_cold_hits, 0u);
  EXPECT_GT(stats.fragment_promotions, 0u);
}

TEST(FragmentPersistenceServiceTest, RefreshCatalogInvalidationIsDurable) {
  Catalog catalog = MakeTpchCatalog();
  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule(4, 1.02, 0.3);
  TempDir dir;
  {
    OptimizerService service(catalog,
                             PersistentServiceOptions(dir.LogPath()));
    const QueryResult result =
        service.Wait(service.Submit(ChainQuery(), submit).value());
    ASSERT_EQ(result.state, QueryState::kDone);
    // Publishing happens on the shard thread after the result is
    // waitable; destruction is the only barrier that covers *all* of a
    // run's publishes (waiting on the publish counter only proves the
    // first one happened — a later publish racing the bump below would
    // persist under the new epoch and make this test flake).
  }
  {
    // Statistics drift, then refresh: the epoch bump that invalidates
    // every published fragment must be durable across the restart.
    OptimizerService service(catalog,
                             PersistentServiceOptions(dir.LogPath()));
    ASSERT_NE(service.fragment_store(), nullptr);
    ASSERT_GT(service.fragment_store()->Stats().replayed_fragments, 0u);
    ASSERT_TRUE(
        catalog
            .UpdateStats(TpchTable::kOrders,
                         catalog.Get(TpchTable::kOrders).cardinality * 16.0)
            .ok());
    service.RefreshCatalog();
  }
  OptimizerService service(catalog, PersistentServiceOptions(dir.LogPath()));
  ASSERT_NE(service.fragment_store(), nullptr);
  EXPECT_GE(service.fragment_store()->epoch(), 1u);
  // Pre-bump fragments stay invalidated: the replay keeps none of them.
  EXPECT_EQ(service.fragment_store()->Stats().replayed_fragments, 0u);
  // And a fresh run is still correct (publishes under the new epoch).
  const QueryResult result =
      service.Wait(service.Submit(ChainQuery(), submit).value());
  EXPECT_EQ(result.state, QueryState::kDone);
  EXPECT_EQ(service.stats().fragment_cold_hits, 0u);
}

}  // namespace
}  // namespace moqo
