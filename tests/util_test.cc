#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/status.h"
#include "util/str.h"
#include "util/table_set.h"
#include "util/thread_pool.h"

namespace moqo {
namespace {

TEST(TableSetTest, EmptyAndSingleton) {
  TableSet empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.Count(), 0);

  TableSet s = TableSet::Singleton(3);
  EXPECT_FALSE(s.Empty());
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_EQ(s.Lowest(), 3);
}

TEST(TableSetTest, FullSet) {
  TableSet full = TableSet::Full(5);
  EXPECT_EQ(full.Count(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(full.Contains(i));
  EXPECT_FALSE(full.Contains(5));
}

TEST(TableSetTest, SetAlgebra) {
  TableSet a(0b1010);
  TableSet b(0b0110);
  EXPECT_EQ(a.Union(b).mask(), 0b1110u);
  EXPECT_EQ(a.Intersect(b).mask(), 0b0010u);
  EXPECT_EQ(a.Minus(b).mask(), 0b1000u);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(TableSet(0b0100)));
  EXPECT_TRUE(a.ContainsAll(TableSet(0b1000)));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(TableSetTest, IterationVisitsAllMembers) {
  TableSet s(0b101101);
  std::vector<int> tables;
  for (TableIter it(s); !it.Done(); it.Next()) tables.push_back(it.Table());
  EXPECT_EQ(tables, (std::vector<int>{0, 2, 3, 5}));
}

TEST(TableSetTest, SubsetIterEnumeratesProperNonEmptySubsets) {
  TableSet s(0b1011);
  std::set<uint32_t> seen;
  for (SubsetIter it(s); !it.Done(); it.Next()) {
    const TableSet sub = it.Subset();
    EXPECT_TRUE(s.ContainsAll(sub));
    EXPECT_FALSE(sub.Empty());
    EXPECT_NE(sub, s);
    EXPECT_EQ(sub.Union(it.Complement()), s);
    EXPECT_FALSE(sub.Intersects(it.Complement()));
    seen.insert(sub.mask());
  }
  // 2^3 - 2 = 6 proper non-empty subsets.
  EXPECT_EQ(seen.size(), 6u);
}

TEST(TableSetTest, SubsetIterOnSingleton) {
  int count = 0;
  for (SubsetIter it(TableSet::Singleton(2)); !it.Done(); it.Next()) ++count;
  EXPECT_EQ(count, 0);
}

TEST(TableSetTest, SubsetIterOnEmptySet) {
  int count = 0;
  for (SubsetIter it{TableSet()}; !it.Done(); it.Next()) ++count;
  EXPECT_EQ(count, 0);
}

TEST(TableSetTest, SubsetIterOnFullSixteenTableSet) {
  // The largest supported query block: 2^16 - 2 proper non-empty subsets,
  // each split exact and disjoint.
  const TableSet full = TableSet::Full(kMaxTables);
  EXPECT_EQ(full.mask(), 0xFFFFu);
  EXPECT_EQ(full.Count(), kMaxTables);
  size_t count = 0;
  for (SubsetIter it(full); !it.Done(); it.Next()) {
    ++count;
    EXPECT_EQ(it.Subset().Union(it.Complement()), full);
    EXPECT_FALSE(it.Subset().Intersects(it.Complement()));
  }
  EXPECT_EQ(count, (size_t{1} << kMaxTables) - 2);
}

TEST(TableSetTest, TableIterOnEmptySingletonAndFullSets) {
  EXPECT_TRUE(TableIter(TableSet()).Done());

  TableIter single(TableSet::Singleton(kMaxTables - 1));
  EXPECT_EQ(single.Table(), kMaxTables - 1);
  single.Next();
  EXPECT_TRUE(single.Done());

  std::vector<int> tables;
  for (TableIter it(TableSet::Full(kMaxTables)); !it.Done(); it.Next()) {
    tables.push_back(it.Table());
  }
  ASSERT_EQ(tables.size(), static_cast<size_t>(kMaxTables));
  for (int i = 0; i < kMaxTables; ++i) EXPECT_EQ(tables[i], i);
}

TEST(TableSetTest, ConstructorGuardsRejectOutOfRangeIndices) {
  // Shifts by out-of-range amounts are UB; the guards must fire before.
  EXPECT_DEATH(TableSet::Singleton(-1), "table");
  EXPECT_DEATH(TableSet::Singleton(kMaxTables), "table");
  EXPECT_DEATH(TableSet::Full(-1), "num_tables");
  EXPECT_DEATH(TableSet::Full(kMaxTables + 1), "num_tables");
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformRanges) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(StatusTest, OkStatus) {
  Status s = Status::OK();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorStatusCarriesMessage) {
  Status s = Status::InvalidArgument("bad bounds");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad bounds");
}

TEST(StatusTest, StatusOrValue) {
  StatusOr<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  StatusOr<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StrTest, Format) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(PartitionThreadsTest, SplitsBudgetEvenlyWithFloorOfOne) {
  // Even split.
  EXPECT_EQ(PartitionThreads(8, 4), (std::vector<int>{2, 2, 2, 2}));
  // Remainder goes to the first parts; sizes differ by at most one.
  EXPECT_EQ(PartitionThreads(8, 3), (std::vector<int>{3, 3, 2}));
  EXPECT_EQ(PartitionThreads(7, 4), (std::vector<int>{2, 2, 2, 1}));
  // One part takes the whole budget; one thread serves one part.
  EXPECT_EQ(PartitionThreads(5, 1), (std::vector<int>{5}));
  EXPECT_EQ(PartitionThreads(1, 1), (std::vector<int>{1}));
  // Oversubscription: fewer threads than parts still gives every part a
  // serial scheduler (size 1 spawns nothing).
  EXPECT_EQ(PartitionThreads(2, 4), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(PartitionThreads(3, 2), (std::vector<int>{2, 1}));
}

}  // namespace
}  // namespace moqo
