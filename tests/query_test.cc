#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "query/generator.h"
#include "query/join_graph.h"
#include "query/query.h"
#include "query/tpch_queries.h"

namespace moqo {
namespace {

TEST(QueryBuilderTest, BuildsTablesAndJoins) {
  Catalog catalog;
  const TableId a = catalog.AddTable({"a", 100.0, 100.0, true});
  const TableId b = catalog.AddTable({"b", 1000.0, 100.0, true});
  QueryBuilder builder("q");
  const int ra = builder.AddTable(a, 0.5, "a");
  const int rb = builder.AddTable(b);
  builder.AddJoin(ra, rb, 0.01);
  const Query q = builder.Build();
  EXPECT_EQ(q.name, "q");
  EXPECT_EQ(q.NumTables(), 2);
  EXPECT_DOUBLE_EQ(q.tables[0].predicate_selectivity, 0.5);
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_DOUBLE_EQ(q.joins[0].selectivity, 0.01);
  EXPECT_TRUE(ValidateQuery(q, catalog).ok());
}

TEST(QueryBuilderTest, FkJoinSelectivityIsInversePkCardinality) {
  Catalog catalog;
  const TableId fk = catalog.AddTable({"fact", 10000.0, 100.0, true});
  const TableId pk = catalog.AddTable({"dim", 200.0, 100.0, true});
  QueryBuilder builder("q");
  const int rf = builder.AddTable(fk);
  const int rp = builder.AddTable(pk);
  builder.AddFkJoin(catalog, rf, rp);
  const Query q = builder.Build();
  EXPECT_DOUBLE_EQ(q.joins[0].selectivity, 1.0 / 200.0);
}

TEST(ValidateQueryTest, RejectsBadInput) {
  Catalog catalog;
  catalog.AddTable({"a", 100.0, 100.0, true});

  Query empty;
  EXPECT_FALSE(ValidateQuery(empty, catalog).ok());

  QueryBuilder b1("bad_table");
  b1.AddTable(5);  // Out of range.
  EXPECT_FALSE(ValidateQuery(b1.Build(), catalog).ok());

  QueryBuilder b2("bad_selectivity");
  b2.AddTable(0, 0.0);  // Selectivity must be > 0.
  EXPECT_FALSE(ValidateQuery(b2.Build(), catalog).ok());

  QueryBuilder b3("self_join_predicate");
  const int r = b3.AddTable(0);
  b3.AddJoin(r, r, 0.5);
  EXPECT_FALSE(ValidateQuery(b3.Build(), catalog).ok());
}

TEST(TpchQueriesTest, AllBlocksValidate) {
  const Catalog catalog = MakeTpchCatalog();
  for (const Query& q : TpchQueryBlocks(catalog)) {
    EXPECT_TRUE(ValidateQuery(q, catalog).ok()) << q.name;
    EXPECT_GE(q.joins.size(), 1u) << q.name;  // At least one join.
  }
}

TEST(TpchQueriesTest, TableCountsMatchPaper) {
  // The paper evaluates on sub-queries joining 2..6 and 8 tables; no
  // TPC-H sub-query joins seven tables (paper §6.2).
  const Catalog catalog = MakeTpchCatalog();
  EXPECT_EQ(TpchBlockTableCounts(catalog),
            (std::vector<int>{2, 3, 4, 5, 6, 8}));
  EXPECT_TRUE(TpchBlocksWithTables(catalog, 7).empty());
  EXPECT_EQ(TpchBlocksWithTables(catalog, 8).size(), 1u);  // Q8.
}

TEST(TpchQueriesTest, AllBlocksAreConnected) {
  const Catalog catalog = MakeTpchCatalog();
  for (const Query& q : TpchQueryBlocks(catalog)) {
    const JoinGraph graph(q, catalog);
    EXPECT_TRUE(graph.IsConnected(q.AllTables())) << q.name;
  }
}

TEST(TpchQueriesTest, Q8JoinsEightTablesWithSmallTables) {
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 8);
  ASSERT_EQ(blocks.size(), 1u);
  const Query& q8 = blocks[0];
  // Q8 references nation twice and region once: small tables that limit
  // the number of applicable sampling strategies (paper footnote 4).
  int small_tables = 0;
  for (const TableRef& ref : q8.tables) {
    if (catalog.Get(ref.table).cardinality <= 25.0) ++small_tables;
  }
  EXPECT_EQ(small_tables, 3);
}

class GeneratorTopologyTest : public ::testing::TestWithParam<Topology> {};

TEST_P(GeneratorTopologyTest, GeneratesValidConnectedQueries) {
  for (int n : {1, 2, 3, 5, 8}) {
    Rng rng(static_cast<uint64_t>(n) * 17 + 1);
    Catalog catalog;
    GeneratorOptions options;
    options.num_tables = n;
    options.topology = GetParam();
    const Query q = RandomQuery(rng, options, &catalog);
    EXPECT_EQ(q.NumTables(), n);
    EXPECT_TRUE(ValidateQuery(q, catalog).ok());
    const JoinGraph graph(q, catalog);
    EXPECT_TRUE(graph.IsConnected(q.AllTables()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, GeneratorTopologyTest,
                         ::testing::Values(Topology::kChain, Topology::kStar,
                                           Topology::kCycle,
                                           Topology::kClique,
                                           Topology::kRandomTree));

TEST(GeneratorTest, DeterministicGivenSameRngState) {
  GeneratorOptions options;
  options.num_tables = 4;
  Catalog c1, c2;
  Rng r1(5), r2(5);
  const Query q1 = RandomQuery(r1, options, &c1);
  const Query q2 = RandomQuery(r2, options, &c2);
  ASSERT_EQ(q1.NumTables(), q2.NumTables());
  for (int i = 0; i < q1.NumTables(); ++i) {
    EXPECT_DOUBLE_EQ(c1.Get(q1.tables[i].table).cardinality,
                     c2.Get(q2.tables[i].table).cardinality);
  }
  ASSERT_EQ(q1.joins.size(), q2.joins.size());
  for (size_t i = 0; i < q1.joins.size(); ++i) {
    EXPECT_DOUBLE_EQ(q1.joins[i].selectivity, q2.joins[i].selectivity);
  }
}

TEST(GeneratorTest, CardinalitiesWithinConfiguredRange) {
  GeneratorOptions options;
  options.num_tables = 6;
  options.min_cardinality = 500.0;
  options.max_cardinality = 2000.0;
  Rng rng(9);
  Catalog catalog;
  const Query q = RandomQuery(rng, options, &catalog);
  for (const TableRef& ref : q.tables) {
    EXPECT_GE(catalog.Get(ref.table).cardinality, 499.0);
    EXPECT_LE(catalog.Get(ref.table).cardinality, 2000.0);
  }
}

}  // namespace
}  // namespace moqo
