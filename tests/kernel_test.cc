// Randomized property suite for the data-oriented Pareto kernel
// (pareto/kernel.h): the batched primitives must be *bit-identical* to
// the scalar reference paths they replaced. The reference frontier below
// is a frozen copy of the pre-kernel scalar ParetoFrontier::Insert; the
// rewritten ParetoFrontier and the kernel's FrontierBank are both checked
// against it, decision by decision and byte by byte.
//
// Cost values are drawn from a small discrete grid so exact duplicates,
// component ties, and mutual non-dominance all occur constantly — the
// cases where "first payload wins" and eviction order are observable.

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "cost/cost_vector.h"
#include "index/cell_index.h"
#include "pareto/frontier.h"
#include "pareto/kernel.h"
#include "util/rng.h"

namespace moqo {
namespace {

// Frozen scalar reference: the exact pre-kernel ParetoFrontier::Insert.
struct ScalarFrontier {
  struct Entry {
    CostVector cost;
    uint64_t payload = 0;
  };
  std::vector<Entry> entries;

  bool Insert(const CostVector& cost, uint64_t payload) {
    for (const Entry& e : entries) {
      if (e.cost.StrictlyDominates(cost)) return false;
      if (e.cost.Equals(cost)) return false;  // Keep one representative.
    }
    for (size_t i = 0; i < entries.size();) {
      if (cost.StrictlyDominates(entries[i].cost)) {
        entries[i] = entries.back();
        entries.pop_back();
      } else {
        ++i;
      }
    }
    entries.push_back({cost, payload});
    return true;
  }
};

// Exact byte comparison — 2.0 vs 2.0000000001 must differ, -0.0 vs 0.0
// must differ, matching the IEEE comparisons the structures perform.
bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

CostVector RandomCost(Rng& rng, int dims, double scale = 1.0) {
  // Grid values: multiples of 0.25 in [0, 4) (scaled), with occasional
  // exact zeros. Small support => frequent collisions and ties.
  CostVector c(dims);
  for (int d = 0; d < dims; ++d) {
    c[d] = rng.Bernoulli(0.1) ? 0.0
                              : scale * 0.25 * rng.UniformInt(0, 15);
  }
  return c;
}

void ExpectSameFrontier(const ScalarFrontier& ref, const ParetoFrontier& pf,
                        const FrontierBank& fb, int dims) {
  ASSERT_EQ(ref.entries.size(), pf.size());
  ASSERT_EQ(ref.entries.size(), fb.size());
  for (size_t i = 0; i < ref.entries.size(); ++i) {
    EXPECT_EQ(ref.entries[i].payload, pf.entries()[i].payload)
        << "payload order diverged at entry " << i;
    EXPECT_EQ(ref.entries[i].payload, fb.payloads[i])
        << "bank payload order diverged at entry " << i;
    for (int d = 0; d < dims; ++d) {
      EXPECT_TRUE(SameBits(ref.entries[i].cost.at(d),
                           pf.entries()[i].cost.at(d)))
          << "frontier cost bits diverged at entry " << i << " dim " << d;
      EXPECT_TRUE(SameBits(ref.entries[i].cost.at(d), fb.costs.At(i, d)))
          << "bank cost bits diverged at entry " << i << " dim " << d;
    }
  }
}

// ~12k insertions across 1200 random sequences: every accept/reject
// decision and the full entry ordering must match the scalar reference.
TEST(KernelPropertyTest, BatchInsertBitIdenticalToScalarFrontier) {
  size_t trials = 0;
  for (uint64_t seed = 0; seed < 1200; ++seed) {
    Rng rng(seed * 7919 + 1);
    const int dims = 2 + static_cast<int>(seed % 3);
    ScalarFrontier ref;
    ParetoFrontier pf;
    FrontierBank fb(dims);
    const int inserts = 4 + static_cast<int>(rng.Uniform(12));
    for (int i = 0; i < inserts; ++i) {
      const CostVector c = RandomCost(rng, dims);
      const uint64_t payload = 1000 * seed + static_cast<uint64_t>(i);
      const bool r0 = ref.Insert(c, payload);
      const bool r1 = pf.Insert(c, payload);
      const bool r2 = fb.BatchInsert(c.data(), payload);
      ASSERT_EQ(r0, r1) << "ParetoFrontier decision diverged, seed " << seed
                        << " insert " << i;
      ASSERT_EQ(r0, r2) << "FrontierBank decision diverged, seed " << seed
                        << " insert " << i;
      ++trials;
    }
    ExpectSameFrontier(ref, pf, fb, dims);
  }
  EXPECT_GE(trials, 10000u);
}

// DominatedMask against per-entry scalar Dominates, 10k+ random
// (bank, candidate) pairs including infinities in the candidate.
TEST(KernelPropertyTest, DominatedMaskMatchesScalarDominates) {
  size_t trials = 0;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(seed * 104729 + 3);
    const int dims = 2 + static_cast<int>(seed % 3);
    CostBank bank(dims);
    std::vector<CostVector> mirror;
    const int n = 1 + static_cast<int>(rng.Uniform(60));
    for (int i = 0; i < n; ++i) {
      const CostVector c = RandomCost(rng, dims);
      bank.PushBack(c.data());
      mirror.push_back(c);
    }
    for (int probe = 0; probe < 30; ++probe) {
      CostVector c = RandomCost(rng, dims);
      if (rng.Bernoulli(0.2)) {
        c[static_cast<int>(rng.Uniform(dims))] =
            std::numeric_limits<double>::infinity();
      }
      std::vector<uint8_t> leq(bank.size()), geq(bank.size());
      DominatedMask(bank, c.data(), leq.data(), geq.data());
      for (size_t i = 0; i < bank.size(); ++i) {
        ASSERT_EQ(leq[i] != 0, mirror[i].Dominates(c))
            << "leq mask wrong at " << i;
        ASSERT_EQ(geq[i] != 0, c.Dominates(mirror[i]))
            << "geq mask wrong at " << i;
        ++trials;
      }
    }
  }
  EXPECT_GE(trials, 10000u);
}

// FindDominating = index of the first entry ⪯ bounds in insertion order,
// and the `scanned` instrumentation counts entries up to and including
// the hit (all of them on a miss) — the scalar early-exit loop's count.
TEST(KernelPropertyTest, FindDominatingMatchesLinearScan) {
  Rng rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    const int dims = 2 + trial % 3;
    CostBank bank(dims);
    std::vector<CostVector> mirror;
    // Cross the block size sometimes (kSearchBlock = 256 internally).
    const int n = static_cast<int>(rng.Uniform(trial % 7 == 0 ? 600 : 40));
    for (int i = 0; i < n; ++i) {
      const CostVector c = RandomCost(rng, dims);
      bank.PushBack(c.data());
      mirror.push_back(c);
    }
    CostVector bounds = RandomCost(rng, dims);
    if (rng.Bernoulli(0.25)) bounds = CostVector::Infinite(dims);
    uint32_t expect = kKernelNpos;
    size_t expect_scanned = mirror.size();
    for (size_t i = 0; i < mirror.size(); ++i) {
      if (mirror[i].Dominates(bounds)) {
        expect = static_cast<uint32_t>(i);
        expect_scanned = i + 1;
        break;
      }
    }
    size_t scanned = 0;
    EXPECT_EQ(FindDominating(bank, bounds.data(), &scanned), expect);
    EXPECT_EQ(scanned, expect_scanned);
  }
}

TEST(KernelPropertyTest, FilterByBoundsMatchesLinearScan) {
  Rng rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    const int dims = 2 + trial % 3;
    CostBank bank(dims);
    std::vector<CostVector> mirror;
    const int n = static_cast<int>(rng.Uniform(80));
    for (int i = 0; i < n; ++i) {
      const CostVector c = RandomCost(rng, dims);
      bank.PushBack(c.data());
      mirror.push_back(c);
    }
    const CostVector bounds = rng.Bernoulli(0.2)
                                  ? CostVector::Infinite(dims)
                                  : RandomCost(rng, dims);
    std::vector<uint8_t> mask(bank.size());
    const size_t count = FilterByBounds(bank, bounds.data(), mask.data());
    size_t expect_count = 0;
    for (size_t i = 0; i < mirror.size(); ++i) {
      const bool in = mirror[i].Dominates(bounds);
      EXPECT_EQ(mask[i] != 0, in) << "mask wrong at " << i;
      expect_count += in;
    }
    EXPECT_EQ(count, expect_count);
  }
}

// First payload wins among exact duplicates; a later duplicate must not
// replace it in either implementation.
TEST(KernelPropertyTest, DuplicateCostTieBreakKeepsFirstPayload) {
  const int dims = 3;
  ScalarFrontier ref;
  ParetoFrontier pf;
  FrontierBank fb(dims);
  const CostVector c{1.0, 2.0, 3.0};
  EXPECT_TRUE(ref.Insert(c, 11));
  EXPECT_TRUE(pf.Insert(c, 11));
  EXPECT_TRUE(fb.BatchInsert(c.data(), 11));
  EXPECT_FALSE(ref.Insert(c, 22));
  EXPECT_FALSE(pf.Insert(c, 22));
  EXPECT_FALSE(fb.BatchInsert(c.data(), 22));
  // A non-comparable entry, then the duplicate again.
  const CostVector other{3.0, 2.0, 1.0};
  EXPECT_TRUE(ref.Insert(other, 33));
  EXPECT_TRUE(pf.Insert(other, 33));
  EXPECT_TRUE(fb.BatchInsert(other.data(), 33));
  EXPECT_FALSE(fb.BatchInsert(c.data(), 44));
  ExpectSameFrontier(ref, pf, fb, dims);
  EXPECT_EQ(fb.payloads[0], 11u);
}

// Arena-backed banks behave exactly like heap-backed ones across growth.
TEST(KernelPropertyTest, ArenaAndHeapBanksAgree) {
  BankArena arena;
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int dims = 2 + trial % 3;
    CostBank heap(dims);
    CostBank banked(dims, &arena);
    const int n = 1 + static_cast<int>(rng.Uniform(300));
    std::vector<CostVector> mirror;
    for (int i = 0; i < n; ++i) {
      const CostVector c = RandomCost(rng, dims);
      heap.PushBack(c.data());
      banked.PushBack(c.data());
      mirror.push_back(c);
    }
    // Some interleaved removals, mirrored on both.
    for (int r = 0; r < 10 && heap.size() > 1; ++r) {
      const size_t i = rng.Uniform(heap.size());
      heap.SwapRemove(i);
      banked.SwapRemove(i);
      mirror[i] = mirror.back();
      mirror.pop_back();
    }
    ASSERT_EQ(heap.size(), banked.size());
    for (size_t i = 0; i < heap.size(); ++i) {
      for (int d = 0; d < dims; ++d) {
        ASSERT_TRUE(SameBits(heap.At(i, d), banked.At(i, d)));
        ASSERT_TRUE(SameBits(heap.At(i, d), mirror[i].at(d)));
      }
    }
  }
}

// CellIndex order-tag filtering: AnyInRange/FindInRange with a required
// order must agree with a brute-force scan over everything inserted.
TEST(KernelPropertyTest, CellIndexOrderTagFiltering) {
  struct Brute {
    uint32_t id;
    CostVector cost;
    int res;
    int order;
  };
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const int dims = 2 + trial % 2;
    CellIndex index(dims);
    std::vector<Brute> brute;
    const int n = static_cast<int>(rng.Uniform(60));
    for (int i = 0; i < n; ++i) {
      const CostVector c = RandomCost(rng, dims, 10.0);
      const int res = static_cast<int>(rng.Uniform(4));
      const int order = static_cast<int>(rng.Uniform(3));
      index.Insert(static_cast<uint32_t>(i), c, res, 1, order);
      brute.push_back({static_cast<uint32_t>(i), c, res, order});
    }
    for (int probe = 0; probe < 20; ++probe) {
      const CostVector bounds = rng.Bernoulli(0.2)
                                    ? CostVector::Infinite(dims)
                                    : RandomCost(rng, dims, 10.0);
      const int max_res = static_cast<int>(rng.Uniform(4));
      const int order = rng.Bernoulli(0.3)
                            ? kAnyOrder
                            : static_cast<int>(rng.Uniform(3));
      bool expect = false;
      for (const Brute& b : brute) {
        if (b.res > max_res) continue;
        if (order != kAnyOrder && b.order != order) continue;
        if (b.cost.Dominates(bounds)) {
          expect = true;
          break;
        }
      }
      EXPECT_EQ(index.AnyInRange(bounds, max_res, nullptr, order), expect);
      CellIndex::Entry found;
      const bool got =
          index.FindInRange(bounds, max_res, &found, nullptr, order);
      ASSERT_EQ(got, expect);
      if (got) {
        // The found entry must itself satisfy the query.
        EXPECT_LE(found.resolution, max_res);
        if (order != kAnyOrder) EXPECT_EQ(found.order, order);
        EXPECT_TRUE(found.cost.Dominates(bounds));
      }
    }
  }
}

}  // namespace
}  // namespace moqo
