#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/statistics.h"
#include "catalog/tpch.h"

namespace moqo {
namespace {

TEST(CatalogTest, AddAndGet) {
  Catalog catalog;
  const TableId id = catalog.AddTable({"t", 1000.0, 100.0, true});
  EXPECT_EQ(catalog.NumTables(), 1);
  EXPECT_EQ(catalog.Get(id).name, "t");
  EXPECT_DOUBLE_EQ(catalog.Get(id).cardinality, 1000.0);
}

TEST(CatalogTest, FindByName) {
  Catalog catalog;
  catalog.AddTable({"alpha", 10.0, 100.0, true});
  catalog.AddTable({"beta", 20.0, 100.0, true});
  auto found = catalog.FindByName("beta");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 1);
  EXPECT_FALSE(catalog.FindByName("gamma").ok());
}

TEST(CatalogTest, PagesComputedFromWidthAndCardinality) {
  TableDef def{"t", 8192.0, 100.0, true};
  // 8192 rows * 100 B / 8192 B per page = 100 pages.
  EXPECT_DOUBLE_EQ(def.Pages(), 100.0);
  TableDef tiny{"u", 1.0, 10.0, true};
  EXPECT_DOUBLE_EQ(tiny.Pages(), 1.0);  // Clamped at one page.
}

TEST(TpchCatalogTest, Sf1Cardinalities) {
  Catalog c = MakeTpchCatalog(1.0);
  EXPECT_EQ(c.NumTables(), 8);
  EXPECT_DOUBLE_EQ(c.Get(kRegion).cardinality, 5.0);
  EXPECT_DOUBLE_EQ(c.Get(kNation).cardinality, 25.0);
  EXPECT_DOUBLE_EQ(c.Get(kSupplier).cardinality, 10000.0);
  EXPECT_DOUBLE_EQ(c.Get(kCustomer).cardinality, 150000.0);
  EXPECT_DOUBLE_EQ(c.Get(kPart).cardinality, 200000.0);
  EXPECT_DOUBLE_EQ(c.Get(kPartsupp).cardinality, 800000.0);
  EXPECT_DOUBLE_EQ(c.Get(kOrders).cardinality, 1500000.0);
  EXPECT_DOUBLE_EQ(c.Get(kLineitem).cardinality, 6001215.0);
}

TEST(TpchCatalogTest, ScaleFactorScalesVariableTablesOnly) {
  Catalog c = MakeTpchCatalog(10.0);
  EXPECT_DOUBLE_EQ(c.Get(kRegion).cardinality, 5.0);     // Fixed.
  EXPECT_DOUBLE_EQ(c.Get(kNation).cardinality, 25.0);    // Fixed.
  EXPECT_DOUBLE_EQ(c.Get(kOrders).cardinality, 15000000.0);
}

TEST(StatisticsTest, LargeTablesGetMoreSamplingRates) {
  TableDef lineitem{"lineitem", 6001215.0, 129.0, true};
  TableDef nation{"nation", 25.0, 109.0, true};
  const auto big = SamplingRates(lineitem, 3);
  const auto small = SamplingRates(nation, 3);
  EXPECT_EQ(big.size(), 3u);
  // Tiny tables support no useful sampling (paper footnote 4: fewer
  // sampling strategies for small tables).
  EXPECT_TRUE(small.empty());
}

TEST(StatisticsTest, SamplingRatesDecreaseGeometrically) {
  TableDef t{"t", 1e7, 100.0, true};
  const auto rates = SamplingRates(t, 4);
  ASSERT_GE(rates.size(), 2u);
  for (size_t i = 1; i < rates.size(); ++i) {
    EXPECT_DOUBLE_EQ(rates[i], rates[i - 1] / 4.0);
    EXPECT_GT(rates[i], 0.0);
    EXPECT_LT(rates[i], 1.0);
  }
  // Every rate keeps at least ~1000 sampled rows.
  for (double r : rates) EXPECT_GE(r * t.cardinality, 1000.0);
}

TEST(StatisticsTest, SamplingRatesRespectCap) {
  TableDef t{"t", 1e9, 100.0, true};
  EXPECT_EQ(SamplingRates(t, 2).size(), 2u);
  EXPECT_TRUE(SamplingRates(t, 0).empty());
}

TEST(StatisticsTest, WorkerCountsFormGeometricLadder) {
  EXPECT_EQ(WorkerCounts(8), (std::vector<int>{1, 2, 3, 4, 6, 8}));
  EXPECT_EQ(WorkerCounts(1), (std::vector<int>{1}));
  EXPECT_EQ(WorkerCounts(2), (std::vector<int>{1, 2}));
  EXPECT_EQ(WorkerCounts(6), (std::vector<int>{1, 2, 3, 4, 6}));
  EXPECT_EQ(WorkerCounts(16),
            (std::vector<int>{1, 2, 3, 4, 6, 8, 12, 16}));
}

}  // namespace
}  // namespace moqo
