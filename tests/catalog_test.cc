#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/statistics.h"
#include "catalog/tpch.h"

namespace moqo {
namespace {

TEST(CatalogTest, AddAndGet) {
  Catalog catalog;
  const TableId id = catalog.AddTable({"t", 1000.0, 100.0, true});
  EXPECT_EQ(catalog.NumTables(), 1);
  EXPECT_EQ(catalog.Get(id).name, "t");
  EXPECT_DOUBLE_EQ(catalog.Get(id).cardinality, 1000.0);
}

TEST(CatalogTest, FindByName) {
  Catalog catalog;
  catalog.AddTable({"alpha", 10.0, 100.0, true});
  catalog.AddTable({"beta", 20.0, 100.0, true});
  auto found = catalog.FindByName("beta");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 1);
  EXPECT_FALSE(catalog.FindByName("gamma").ok());
}

TEST(CatalogTest, FindByNameEdgeCases) {
  Catalog empty;
  const auto missing = empty.FindByName("anything");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  Catalog catalog;
  catalog.AddTable({"alpha", 10.0, 100.0, true});
  // The empty string is a well-formed (if odd) name: a proper NotFound,
  // never a crash or a bogus hit.
  const auto unnamed = catalog.FindByName("");
  EXPECT_FALSE(unnamed.ok());
  EXPECT_EQ(unnamed.status().code(), StatusCode::kNotFound);
  // Snapshots answer the same queries the same way.
  EXPECT_EQ(catalog.Snapshot()->FindByName("alpha").value(), 0);
  EXPECT_FALSE(catalog.Snapshot()->FindByName("").ok());
}

TEST(CatalogTest, GetOutOfRangeAborts) {
  Catalog catalog;
  catalog.AddTable({"t", 10.0, 100.0, true});
  EXPECT_DEATH_IF_SUPPORTED(catalog.Get(1), "out of range");
  EXPECT_DEATH_IF_SUPPORTED(catalog.Get(-1), "out of range");
  const auto snapshot = catalog.Snapshot();
  EXPECT_DEATH_IF_SUPPORTED(snapshot->Get(1), "out of range");
}

TEST(CatalogTest, VersionAdvancesWithEveryMutation) {
  Catalog catalog;
  EXPECT_EQ(catalog.version(), 0u);
  const TableId id = catalog.AddTable({"t", 1000.0, 100.0, true});
  const uint64_t after_add = catalog.version();
  EXPECT_GT(after_add, 0u);
  ASSERT_TRUE(catalog.UpdateStats(id, 2000.0).ok());
  EXPECT_GT(catalog.version(), after_add);
  const uint64_t after_update = catalog.version();
  ASSERT_TRUE(catalog.ReplaceTable(id, {"t2", 10.0, 50.0, false}).ok());
  EXPECT_GT(catalog.version(), after_update);
}

TEST(CatalogTest, UpdateStatsMutatesInPlace) {
  Catalog catalog;
  const TableId id = catalog.AddTable({"t", 1000.0, 100.0, true});
  ASSERT_TRUE(catalog.UpdateStats(id, 5000.0).ok());
  EXPECT_DOUBLE_EQ(catalog.Get(id).cardinality, 5000.0);
  EXPECT_DOUBLE_EQ(catalog.Get(id).row_bytes, 100.0);  // Kept.
  ASSERT_TRUE(catalog.UpdateStats(id, 6000.0, 200.0).ok());
  EXPECT_DOUBLE_EQ(catalog.Get(id).row_bytes, 200.0);
  EXPECT_EQ(catalog.Get(id).name, "t");  // UpdateStats never renames.

  // User-input errors come back as Status, not aborts.
  EXPECT_EQ(catalog.UpdateStats(7, 1000.0).code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.UpdateStats(-1, 1000.0).code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.UpdateStats(id, 0.5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.UpdateStats(id, 1000.0, -3.0).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, ReplaceTableKeepsTheId) {
  Catalog catalog;
  catalog.AddTable({"a", 10.0, 100.0, true});
  const TableId id = catalog.AddTable({"b", 20.0, 100.0, true});
  ASSERT_TRUE(catalog.ReplaceTable(id, {"b2", 30.0, 80.0, false}).ok());
  EXPECT_EQ(catalog.NumTables(), 2);
  EXPECT_EQ(catalog.Get(id).name, "b2");
  EXPECT_FALSE(catalog.Get(id).has_index);
  EXPECT_FALSE(catalog.FindByName("b").ok());
  EXPECT_EQ(catalog.FindByName("b2").value(), id);
  EXPECT_EQ(catalog.ReplaceTable(9, {"x", 10.0, 1.0, true}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.ReplaceTable(id, {"x", 0.0, 1.0, true}).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogSnapshotTest, SnapshotsAreImmutableAndShared) {
  Catalog catalog;
  const TableId id = catalog.AddTable({"t", 1000.0, 100.0, true});
  const auto s1 = catalog.Snapshot();
  // No mutation in between: the cached snapshot is shared, not rebuilt.
  EXPECT_EQ(catalog.Snapshot().get(), s1.get());
  EXPECT_EQ(s1->version(), catalog.version());

  ASSERT_TRUE(catalog.UpdateStats(id, 9999.0).ok());
  // The old snapshot still shows the statistics it pinned...
  EXPECT_DOUBLE_EQ(s1->Get(id).cardinality, 1000.0);
  // ...while a fresh one shows the new state under a newer version.
  const auto s2 = catalog.Snapshot();
  EXPECT_NE(s2.get(), s1.get());
  EXPECT_DOUBLE_EQ(s2->Get(id).cardinality, 9999.0);
  EXPECT_GT(s2->version(), s1->version());
  EXPECT_EQ(s2->NumTables(), 1);
}

TEST(CatalogSnapshotTest, CopiedCatalogsEvolveIndependently) {
  Catalog original;
  const TableId id = original.AddTable({"t", 1000.0, 100.0, true});
  const Catalog copy = original;
  ASSERT_TRUE(original.UpdateStats(id, 5.0e6).ok());
  EXPECT_DOUBLE_EQ(copy.Get(id).cardinality, 1000.0);
  EXPECT_DOUBLE_EQ(original.Get(id).cardinality, 5.0e6);
  EXPECT_LT(copy.version(), original.version());
}

TEST(CatalogTest, PagesComputedFromWidthAndCardinality) {
  TableDef def{"t", 8192.0, 100.0, true};
  // 8192 rows * 100 B / 8192 B per page = 100 pages.
  EXPECT_DOUBLE_EQ(def.Pages(), 100.0);
  TableDef tiny{"u", 1.0, 10.0, true};
  EXPECT_DOUBLE_EQ(tiny.Pages(), 1.0);  // Clamped at one page.
}

TEST(TpchCatalogTest, Sf1Cardinalities) {
  Catalog c = MakeTpchCatalog(1.0);
  EXPECT_EQ(c.NumTables(), 8);
  EXPECT_DOUBLE_EQ(c.Get(kRegion).cardinality, 5.0);
  EXPECT_DOUBLE_EQ(c.Get(kNation).cardinality, 25.0);
  EXPECT_DOUBLE_EQ(c.Get(kSupplier).cardinality, 10000.0);
  EXPECT_DOUBLE_EQ(c.Get(kCustomer).cardinality, 150000.0);
  EXPECT_DOUBLE_EQ(c.Get(kPart).cardinality, 200000.0);
  EXPECT_DOUBLE_EQ(c.Get(kPartsupp).cardinality, 800000.0);
  EXPECT_DOUBLE_EQ(c.Get(kOrders).cardinality, 1500000.0);
  EXPECT_DOUBLE_EQ(c.Get(kLineitem).cardinality, 6001215.0);
}

TEST(TpchCatalogTest, ScaleFactorScalesVariableTablesOnly) {
  Catalog c = MakeTpchCatalog(10.0);
  EXPECT_DOUBLE_EQ(c.Get(kRegion).cardinality, 5.0);     // Fixed.
  EXPECT_DOUBLE_EQ(c.Get(kNation).cardinality, 25.0);    // Fixed.
  EXPECT_DOUBLE_EQ(c.Get(kOrders).cardinality, 15000000.0);
}

TEST(StatisticsTest, LargeTablesGetMoreSamplingRates) {
  TableDef lineitem{"lineitem", 6001215.0, 129.0, true};
  TableDef nation{"nation", 25.0, 109.0, true};
  const auto big = SamplingRates(lineitem, 3);
  const auto small = SamplingRates(nation, 3);
  EXPECT_EQ(big.size(), 3u);
  // Tiny tables support no useful sampling (paper footnote 4: fewer
  // sampling strategies for small tables).
  EXPECT_TRUE(small.empty());
}

TEST(StatisticsTest, SamplingRatesDecreaseGeometrically) {
  TableDef t{"t", 1e7, 100.0, true};
  const auto rates = SamplingRates(t, 4);
  ASSERT_GE(rates.size(), 2u);
  for (size_t i = 1; i < rates.size(); ++i) {
    EXPECT_DOUBLE_EQ(rates[i], rates[i - 1] / 4.0);
    EXPECT_GT(rates[i], 0.0);
    EXPECT_LT(rates[i], 1.0);
  }
  // Every rate keeps at least ~1000 sampled rows.
  for (double r : rates) EXPECT_GE(r * t.cardinality, 1000.0);
}

TEST(StatisticsTest, SamplingRatesRespectCap) {
  TableDef t{"t", 1e9, 100.0, true};
  EXPECT_EQ(SamplingRates(t, 2).size(), 2u);
  EXPECT_TRUE(SamplingRates(t, 0).empty());
}

TEST(StatisticsTest, WorkerCountsFormGeometricLadder) {
  EXPECT_EQ(WorkerCounts(8), (std::vector<int>{1, 2, 3, 4, 6, 8}));
  EXPECT_EQ(WorkerCounts(1), (std::vector<int>{1}));
  EXPECT_EQ(WorkerCounts(2), (std::vector<int>{1, 2}));
  EXPECT_EQ(WorkerCounts(6), (std::vector<int>{1, 2, 3, 4, 6}));
  EXPECT_EQ(WorkerCounts(16),
            (std::vector<int>{1, 2, 3, 4, 6, 8, 12, 16}));
}

}  // namespace
}  // namespace moqo
