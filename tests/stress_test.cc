// Randomized stress tests: many random queries, topologies, schemas, and
// interaction scripts, cross-validating IAMA against the one-shot
// baseline and checking the space-accounting invariants (paper §5.2).
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baseline/one_shot.h"
#include "core/iama.h"
#include "pareto/coverage.h"
#include "pareto/dominance.h"
#include "test_helpers.h"

namespace moqo {
namespace {

struct StressCase {
  uint64_t seed;
  int tables;
  Topology topology;
};

class RandomQueryStress
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(RandomQueryStress, IamaAndOneShotMutuallyCover) {
  const uint64_t seed = std::get<0>(GetParam());
  const int tables = std::get<1>(GetParam());
  Rng rng(seed);
  Catalog catalog;
  GeneratorOptions gen;
  gen.num_tables = tables;
  gen.topology = static_cast<Topology>(rng.Uniform(5));
  const Query query = RandomQuery(rng, gen, &catalog);
  const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                            CostModelParams{},
                            TinyOperatorOptions(/*sampling=*/true));

  const ResolutionSchedule schedule(4, 1.02, 0.3);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(factory, schedule, inf);
  for (int r = 0; r <= schedule.MaxResolution(); ++r) opt.Optimize(inf, r);

  const auto iama = CostsOf(opt.ResultPlans(inf, schedule.MaxResolution()));
  ASSERT_FALSE(iama.empty());
  const OneShotResult os = RunOneShot(factory, schedule.alpha_target(), inf);
  std::vector<CostVector> os_costs;
  for (PlanId id : os.FinalPlans(tables)) {
    os_costs.push_back(os.arena.at(id).cost);
  }
  ASSERT_FALSE(os_costs.empty());

  const double factor = std::pow(schedule.alpha_target(), 2 * tables);
  const auto a = CheckCoverage(iama, os_costs, factor, inf);
  EXPECT_TRUE(a.covered) << "seed=" << seed << " worst=" << a.worst_factor;
  const auto b = CheckCoverage(os_costs, iama, factor, inf);
  EXPECT_TRUE(b.covered) << "seed=" << seed << " worst=" << b.worst_factor;

  // Space accounting (Theorem 3 flavor): every generated plan is either
  // indexed (result/candidate) or was discarded; nothing leaks.
  const Counters& c = opt.counters();
  EXPECT_EQ(c.plans_generated, opt.arena().size());
  EXPECT_LE(opt.NumResultEntries() + opt.NumCandidateEntries(),
            opt.arena().size());
  EXPECT_EQ(c.result_insertions, opt.NumResultEntries());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomQueryStress,
    ::testing::Combine(::testing::Values(901, 902, 903, 904, 905),
                       ::testing::Values(2, 3, 4, 5)));

class InteractionScriptStress : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(InteractionScriptStress, RandomBoundWalksStayConsistent) {
  // Random walk over bounds (tighten / relax / pan on random metrics)
  // with resolution resets; after every step the frontier must respect
  // the bounds, and the at-most-once generation invariant must hold.
  const uint64_t seed = GetParam();
  Rng rng(seed);
  RandomWorld world =
      MakeRandomWorld(seed * 31 + 7, 4, /*sampling=*/true);
  IamaOptions options;
  options.schedule = ResolutionSchedule(5, 1.02, 0.3);
  IamaSession session(*world.factory, options);

  // Establish a scale for bound positions from a first step.
  FrontierSnapshot snap = session.Step();
  CostVector hi(3, 0.0);
  for (const auto& e : snap.plans) hi = hi.Max(e.cost);
  session.ApplyAction(UserAction::Continue());

  CostVector bounds = CostVector::Infinite(3);
  for (int step = 0; step < 12; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.4) {
      session.ApplyAction(UserAction::Continue());
    } else {
      const int metric = static_cast<int>(rng.Uniform(3));
      if (roll < 0.7) {
        bounds[metric] = hi[metric] * rng.UniformDouble(0.3, 1.5);
      } else {
        bounds[metric] = std::numeric_limits<double>::infinity();
      }
      session.ApplyAction(UserAction::SetBounds(bounds));
      EXPECT_EQ(session.resolution(), 0);  // Reset on bounds change.
    }
    snap = session.Step();
    for (const auto& e : snap.plans) {
      EXPECT_TRUE(RespectsBounds(e.cost, snap.bounds));
    }
  }
  EXPECT_EQ(session.optimizer().arena().size(),
            session.optimizer().counters().plans_generated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InteractionScriptStress,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(StressTest, RepeatedSessionsAreDeterministic) {
  // Two sessions over the same inputs produce identical frontiers (no
  // hidden randomness or iteration-order dependence in results).
  for (int run = 0; run < 2; ++run) {
    RandomWorld w1 = MakeRandomWorld(777, 4, true);
    RandomWorld w2 = MakeRandomWorld(777, 4, true);
    const ResolutionSchedule schedule(4, 1.02, 0.3);
    const CostVector inf = CostVector::Infinite(3);
    IncrementalOptimizer a(*w1.factory, schedule, inf);
    IncrementalOptimizer b(*w2.factory, schedule, inf);
    for (int r = 0; r <= 3; ++r) {
      a.Optimize(inf, r);
      b.Optimize(inf, r);
    }
    const auto fa = CostsOf(a.ResultPlans(inf, 3));
    const auto fb = CostsOf(b.ResultPlans(inf, 3));
    ASSERT_EQ(fa.size(), fb.size());
    // Same multiset of cost vectors (each must cover the other exactly).
    EXPECT_TRUE(CheckCoverage(fa, fb, 1.0, inf).covered);
    EXPECT_TRUE(CheckCoverage(fb, fa, 1.0, inf).covered);
  }
}

}  // namespace
}  // namespace moqo
