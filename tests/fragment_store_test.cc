// Cross-query fragment sharing tests: canonical sub-join-graph keys must
// collide exactly for order-preserving renumberings of the same fragment
// (and miss otherwise, epoch included); seeding from a warm store must
// leave every frontier bit-identical to a cold sequential run — at every
// iteration, for serial and pooled phase 2, and through the sharded
// service for shard counts {1, 2, 4} — while measurably cutting the
// optimizer's generation work (pair/plan counters, asserted like the
// coalescing step counts); diverged (re-bounded) seeded runs must stay
// correct α-approximations and never publish; and the store itself must
// evict under a byte budget without ever invalidating a snapshot a
// reader holds (hammered under TSan in CI).
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "core/iama.h"
#include "pareto/coverage.h"
#include "query/query.h"
#include "service/fragment_store.h"
#include "service/optimizer_service.h"
#include "test_helpers.h"

namespace moqo {
namespace {

// --- Shared workload: queries overlapping on a fixed 4-table chain ---------

// The shared core: customer - orders - lineitem - supplier with fixed
// local and join selectivities. Every query below embeds this chain with
// the same table order and the same internal predicate sequence, so its
// sub-join-graphs canonicalize onto the same fragment keys.
void AddCoreChain(QueryBuilder* b, int* refs) {
  refs[0] = b->AddTable(TpchTable::kCustomer, 0.5);
  refs[1] = b->AddTable(TpchTable::kOrders, 1.0);
  refs[2] = b->AddTable(TpchTable::kLineitem, 0.25);
  refs[3] = b->AddTable(TpchTable::kSupplier, 1.0);
}

void AddCoreJoins(QueryBuilder* b, const int* refs) {
  b->AddJoin(refs[0], refs[1], 1e-5);
  b->AddJoin(refs[1], refs[2], 2e-6);
  b->AddJoin(refs[2], refs[3], 1e-4);
}

// The plain core query (the donor in most tests).
Query CoreQuery() {
  QueryBuilder b("core");
  int refs[4];
  AddCoreChain(&b, refs);
  AddCoreJoins(&b, refs);
  return b.Build();
}

// Core + one variant-specific table joined to a variant-specific root:
// overlapping-but-distinct queries sharing the core's sub-join-graphs.
Query VariantQuery(int variant) {
  QueryBuilder b("variant" + std::to_string(variant));
  int refs[4];
  AddCoreChain(&b, refs);
  const int extra =
      b.AddTable(TpchTable::kPart, 0.1 + 0.2 * (variant % 4));
  AddCoreJoins(&b, refs);
  // Attach the extra table at a per-variant root, with the predicate
  // appended after the core sequence (keeps the core's internal
  // predicate order — and hence its canonical keys — intact).
  b.AddJoin(refs[variant % 4], extra, 1e-3);
  return b.Build();
}

// The core embedded at shifted local indices: one leading extra table,
// core at positions 1..4. Order-preserving renumberings like this must
// collide onto the same canonical fragment keys.
Query RenumberedQuery() {
  QueryBuilder b("renumbered");
  const int lead = b.AddTable(TpchTable::kNation, 0.9);
  int refs[4];
  AddCoreChain(&b, refs);
  AddCoreJoins(&b, refs);
  b.AddJoin(lead, refs[0], 1e-2);
  return b.Build();
}

IamaOptions SmallIama(int levels = 4) {
  IamaOptions iama;
  iama.schedule = ResolutionSchedule(levels, 1.02, 0.3);
  return iama;
}

// Runs one query alone: a plain single-threaded IamaSession stepped
// `iterations` times, returning the final snapshot (the cold sequential
// reference every fragment-seeded run must match bit for bit).
FrontierSnapshot SequentialFinalSnapshot(const Query& query,
                                         const Catalog& catalog,
                                         const ServiceOptions& service_opts,
                                         const IamaOptions& iama,
                                         int iterations) {
  const PlanFactory factory(query, catalog, service_opts.schema,
                            service_opts.cost_params,
                            service_opts.operator_options);
  IamaSession session(factory, iama);
  FrontierSnapshot snap;
  for (int i = 0; i < iterations; ++i) {
    snap = session.Step();
    session.ApplyAction(UserAction::Continue());
  }
  return snap;
}

// Steps a session to completion (`levels` iterations) recording the
// frontier signature after every step.
std::vector<std::vector<std::vector<double>>> RunTrajectory(
    IamaSession* session, int iterations) {
  std::vector<std::vector<std::vector<double>>> out;
  for (int i = 0; i < iterations; ++i) {
    out.push_back(FrontierSignature(session->Step().plans));
    session->ApplyAction(UserAction::Continue());
  }
  return out;
}

// Runs `query` cold with fragment publishing on and pushes every cell
// into `store`; returns the donor's trajectory for reference.
std::vector<std::vector<std::vector<double>>> WarmStore(
    FragmentStore* store, const Query& query, const Catalog& catalog,
    const OperatorOptions& op_options, const IamaOptions& iama) {
  const MetricSchema schema = MetricSchema::Standard3();
  PlanFactory factory(query, catalog, schema, CostModelParams{}, op_options);
  IamaOptions donor_iama = iama;
  donor_iama.optimizer.fragment_publish = true;
  IamaSession session(factory, donor_iama);
  auto trajectory = RunTrajectory(&session, iama.schedule.NumLevels());
  FragmentStoreProvider provider(store, query, schema, iama,
                                 op_options.enable_interesting_orders,
                                 /*min_tables=*/2);
  provider.PublishAll(
      session.mutable_optimizer()->TakePublishableFragments());
  return trajectory;
}

// --- FragmentStore unit tests ----------------------------------------------

std::shared_ptr<StoredFragment> MakeFragment(int resolution_complete,
                                             size_t plans) {
  auto frag = std::make_shared<StoredFragment>();
  frag->resolution_complete = resolution_complete;
  frag->plans.resize(plans);
  for (size_t i = 0; i < plans; ++i) {
    frag->plans[i].cost = CostVector{1.0 + static_cast<double>(i), 2.0, 0.1};
    frag->plans[i].output_rows = 10.0;
  }
  return frag;
}

TEST(FragmentStoreTest, LookupHonorsResolutionAndLru) {
  FragmentStore store({/*capacity_bytes=*/1 << 20, /*num_shards=*/4});
  store.Publish("a", MakeFragment(/*resolution_complete=*/2, 3));
  EXPECT_EQ(store.Lookup("a", 3), nullptr);  // Too coarse: a miss.
  ASSERT_NE(store.Lookup("a", 2), nullptr);
  ASSERT_NE(store.Lookup("a", 0), nullptr);
  EXPECT_EQ(store.Lookup("b", 0), nullptr);
  const FragmentStoreStats stats = store.Stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // A finer run replaces the entry; a coarser one is dropped.
  store.Publish("a", MakeFragment(3, 3));
  EXPECT_NE(store.Lookup("a", 3), nullptr);
  store.Publish("a", MakeFragment(1, 3));
  EXPECT_NE(store.Lookup("a", 3), nullptr);
  EXPECT_EQ(store.Stats().publish_ignored, 1u);
}

TEST(FragmentStoreTest, EvictsUnderByteBudgetAndKeepsReaderSnapshots) {
  // A budget fitting roughly one entry per shard: publishing more evicts,
  // but snapshots already handed out stay valid (refcounted).
  FragmentStore store({/*capacity_bytes=*/2048, /*num_shards=*/1});
  store.Publish("k0", MakeFragment(2, 8));
  std::shared_ptr<const StoredFragment> held = store.Lookup("k0", 0);
  ASSERT_NE(held, nullptr);
  for (int i = 1; i <= 8; ++i) {
    store.Publish("k" + std::to_string(i), MakeFragment(2, 8));
  }
  const FragmentStoreStats stats = store.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 2048u);
  // The held snapshot is intact even though "k0" was evicted.
  EXPECT_EQ(store.Lookup("k0", 0), nullptr);
  EXPECT_EQ(held->plans.size(), 8u);
  EXPECT_EQ(held->plans[7].output_rows, 10.0);
}

TEST(FragmentStoreTest, ZeroBudgetStoresNothing) {
  FragmentStore store({/*capacity_bytes=*/0});
  store.Publish("a", MakeFragment(2, 3));
  EXPECT_EQ(store.Lookup("a", 0), nullptr);
  EXPECT_EQ(store.Stats().entries, 0u);
}

// Refcount/eviction hammering: concurrent publishers and readers on a
// tiny budget; readers dereference their snapshots after eviction. Run
// under TSan in CI.
TEST(FragmentStoreTest, ConcurrentPublishLookupEvictionRace) {
  FragmentStore store({/*capacity_bytes=*/4096, /*num_shards=*/2});
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 13);
        if (i % 2 == 0) {
          store.Publish(key, MakeFragment(2, 4 + i % 5));
        } else if (auto snap = store.Lookup(key, 0)) {
          // Touch the payload: must stay valid across evictions.
          volatile double sink = snap->plans.front().output_rows;
          (void)sink;
        }
      }
      stop.store(true);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(stop.load());
  EXPECT_LE(store.Stats().bytes, 4096u);
}

// --- Canonical key tests ----------------------------------------------------

TEST(FragmentKeyTest, OrderPreservingRenumberingsCollide) {
  const Query core = CoreQuery();
  const Query shifted = RenumberedQuery();
  const MetricSchema schema = MetricSchema::Standard3();
  const IamaOptions iama = SmallIama();
  FragmentQueryBinding core_binding(core, schema, iama,
                                    /*orders_enabled=*/false, /*epoch=*/0);
  FragmentQueryBinding shifted_binding(shifted, schema, iama, false, 0);

  // The core chain occupies locals {0..3} in `core` and {1..4} in
  // `shifted`; every connected sub-chain must produce the same key.
  const uint32_t sub_chains[] = {0b0011, 0b0110, 0b1100, 0b0111, 0b1110,
                                 0b1111};
  for (const uint32_t mask : sub_chains) {
    const std::string* a = core_binding.KeyFor(TableSet(mask));
    const std::string* b = shifted_binding.KeyFor(TableSet(mask << 1));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(*a, *b) << "mask " << mask;
  }
  // A cell touching the shifted query's extra table must not collide.
  const std::string* lead =
      shifted_binding.KeyFor(TableSet(0b00011));  // {nation, customer}
  ASSERT_NE(lead, nullptr);
  EXPECT_NE(*lead, *core_binding.KeyFor(TableSet(0b0011)));
}

TEST(FragmentKeyTest, SelectivityEpochAndOptionsChangeTheKey) {
  const Query core = CoreQuery();
  Query tweaked = CoreQuery();
  tweaked.tables[1].predicate_selectivity = 0.75;
  const MetricSchema schema = MetricSchema::Standard3();
  const IamaOptions iama = SmallIama();

  FragmentQueryBinding base(core, schema, iama, false, /*epoch=*/0);
  FragmentQueryBinding sel(tweaked, schema, iama, false, 0);
  FragmentQueryBinding epoch(core, schema, iama, false, /*epoch=*/1);
  IamaOptions other_schedule = SmallIama(/*levels=*/5);
  FragmentQueryBinding sched(core, schema, other_schedule, false, 0);
  FragmentQueryBinding orders(core, schema, iama, /*orders_enabled=*/true, 0);

  const TableSet cell(0b1111);
  const std::string key = *base.KeyFor(cell);
  EXPECT_NE(key, *sel.KeyFor(cell));
  EXPECT_NE(key, *epoch.KeyFor(cell));
  EXPECT_NE(key, *sched.KeyFor(cell));
  EXPECT_NE(key, *orders.KeyFor(cell));
  // Singletons never participate.
  EXPECT_EQ(base.KeyFor(TableSet(0b0001)), nullptr);
}

// --- Core-level seeding: bit-identity and work savings ----------------------

// A fully warmed store must let an identical query re-derive its entire
// trajectory with zero pair enumeration, bit-identically — for serial
// and pooled phase 2 alike.
TEST(FragmentSeedingTest, FullyWarmRunIsBitIdenticalWithZeroPairs) {
  const Catalog catalog = MakeTpchCatalog();
  const OperatorOptions op_options = TinyOperatorOptions(/*sampling=*/true);
  const IamaOptions iama = SmallIama();
  const Query query = CoreQuery();
  FragmentStore store({/*capacity_bytes=*/4 << 20});
  const auto reference =
      WarmStore(&store, query, catalog, op_options, iama);
  ASSERT_GT(store.Stats().publishes, 0u);

  const MetricSchema schema = MetricSchema::Standard3();
  PlanFactory factory(query, catalog, schema, CostModelParams{}, op_options);
  for (const int threads : {1, 3}) {
    FragmentStoreProvider provider(&store, query, schema, iama,
                                   op_options.enable_interesting_orders, 2);
    IamaOptions seeded_iama = iama;
    seeded_iama.optimizer.fragment_store = &provider;
    seeded_iama.optimizer.num_threads = threads;
    IamaSession session(factory, seeded_iama);
    const auto warm = RunTrajectory(&session, iama.schedule.NumLevels());
    ASSERT_EQ(warm, reference) << "threads " << threads;
    const Counters& counters = session.optimizer().counters();
    EXPECT_EQ(counters.pairs_generated, 0u);
    EXPECT_GT(counters.fragment_cells_seeded, 0u);
    EXPECT_GT(counters.fragment_plans_seeded, 0u);
  }
}

// Overlapping-but-distinct queries: each variant must match its own cold
// trajectory exactly while doing strictly less enumeration work, with
// the store warmed only by the plain core query and earlier variants.
TEST(FragmentSeedingTest, OverlappingQueriesStayBitIdenticalAndSaveWork) {
  const Catalog catalog = MakeTpchCatalog();
  const OperatorOptions op_options = TinyOperatorOptions(/*sampling=*/true);
  const IamaOptions iama = SmallIama();
  const MetricSchema schema = MetricSchema::Standard3();
  FragmentStore store({/*capacity_bytes=*/8 << 20});
  WarmStore(&store, CoreQuery(), catalog, op_options, iama);

  for (int variant = 0; variant < 3; ++variant) {
    const Query query = VariantQuery(variant);
    PlanFactory factory(query, catalog, schema, CostModelParams{},
                        op_options);
    // Cold reference trajectory and work counters.
    IamaSession cold(factory, iama);
    const auto cold_trajectory =
        RunTrajectory(&cold, iama.schedule.NumLevels());
    const uint64_t cold_pairs = cold.optimizer().counters().pairs_generated;

    FragmentStoreProvider provider(&store, query, schema, iama,
                                   op_options.enable_interesting_orders, 2);
    IamaOptions seeded_iama = iama;
    seeded_iama.optimizer.fragment_store = &provider;
    seeded_iama.optimizer.fragment_publish = true;
    IamaSession warm(factory, seeded_iama);
    const auto warm_trajectory =
        RunTrajectory(&warm, iama.schedule.NumLevels());

    ASSERT_EQ(warm_trajectory, cold_trajectory) << query.name;
    const Counters& counters = warm.optimizer().counters();
    EXPECT_GT(counters.fragment_cells_seeded, 0u) << query.name;
    EXPECT_LT(counters.pairs_generated, cold_pairs) << query.name;
    // Later variants may reuse this one's non-shared cells too.
    provider.PublishAll(
        warm.mutable_optimizer()->TakePublishableFragments());
  }
}

// Interesting orders on: the canonical order-tag translation (internal,
// external, and none classes) must survive a round trip through the
// store. The donor and consumer list their external predicates first and
// in different numbers, so local tags differ and the remap is
// non-trivial; bit-identity then proves it exact.
TEST(FragmentSeedingTest, OrderTagsSurviveCanonicalRoundTrip) {
  const Catalog catalog = MakeTpchCatalog();
  OperatorOptions op_options = TinyOperatorOptions(/*sampling=*/false);
  op_options.enable_interesting_orders = true;
  const IamaOptions iama = SmallIama();
  const MetricSchema schema = MetricSchema::Standard3();

  // Donor: extra table joined to the core head, predicate listed FIRST —
  // the head's first incident predicate is external to the core cells.
  Query donor;
  {
    QueryBuilder b("donor");
    int refs[4];
    AddCoreChain(&b, refs);
    const int extra = b.AddTable(TpchTable::kPart, 0.3);
    b.AddJoin(refs[0], extra, 1e-3);  // External predicate, index 0.
    AddCoreJoins(&b, refs);           // Core predicates at indices 1..3.
    donor = b.Build();
  }
  // Consumer: TWO leading external predicates (to a different table with
  // different selectivities), shifting the core predicate indices — and
  // with them every internal order tag — relative to the donor.
  Query consumer;
  {
    QueryBuilder b("consumer");
    int refs[4];
    AddCoreChain(&b, refs);
    const int e1 = b.AddTable(TpchTable::kNation, 0.8);
    const int e2 = b.AddTable(TpchTable::kRegion, 0.7);
    b.AddJoin(refs[0], e1, 5e-3);  // External, index 0.
    b.AddJoin(e1, e2, 2e-2);       // Outside the core, index 1.
    AddCoreJoins(&b, refs);        // Core predicates at indices 2..4.
    consumer = b.Build();
  }

  FragmentStore store({/*capacity_bytes=*/8 << 20});
  WarmStore(&store, donor, catalog, op_options, iama);

  PlanFactory factory(consumer, catalog, schema, CostModelParams{},
                      op_options);
  IamaSession cold(factory, iama);
  const auto cold_trajectory =
      RunTrajectory(&cold, iama.schedule.NumLevels());

  FragmentStoreProvider provider(&store, consumer, schema, iama,
                                 /*orders_enabled=*/true, 2);
  IamaOptions seeded_iama = iama;
  seeded_iama.optimizer.fragment_store = &provider;
  IamaSession warm(factory, seeded_iama);
  const auto warm_trajectory =
      RunTrajectory(&warm, iama.schedule.NumLevels());

  ASSERT_EQ(warm_trajectory, cold_trajectory);
  EXPECT_GT(warm.optimizer().counters().fragment_cells_seeded, 0u);
  EXPECT_LT(warm.optimizer().counters().pairs_generated,
            cold.optimizer().counters().pairs_generated);
}

// Re-bounding a seeded session unseals its cells: the frontier under the
// new bounds must still be a correct α-approximation (checked against a
// from-scratch run at those bounds), and the diverged run must not
// export anything for publication.
TEST(FragmentSeedingTest, DivergedSeededRunStaysCorrectAndNeverPublishes) {
  const Catalog catalog = MakeTpchCatalog();
  const OperatorOptions op_options = TinyOperatorOptions(/*sampling=*/true);
  const IamaOptions iama = SmallIama();
  const MetricSchema schema = MetricSchema::Standard3();
  const Query query = CoreQuery();
  FragmentStore store({/*capacity_bytes=*/4 << 20});
  WarmStore(&store, query, catalog, op_options, iama);

  PlanFactory factory(query, catalog, schema, CostModelParams{}, op_options);
  // Pick non-trivial new bounds from a probe run's final frontier.
  IamaSession probe(factory, iama);
  FrontierSnapshot probe_final;
  for (int i = 0; i < iama.schedule.NumLevels(); ++i) {
    probe_final = probe.Step();
    probe.ApplyAction(UserAction::Continue());
  }
  ASSERT_FALSE(probe_final.plans.empty());
  CostVector new_bounds(schema.dims());
  for (const CellIndex::Entry& e : probe_final.plans) {
    new_bounds = new_bounds.Max(e.cost);
  }
  new_bounds = new_bounds.Scaled(0.75);  // Tighter than the full frontier.

  FragmentStoreProvider provider(&store, query, schema, iama,
                                 op_options.enable_interesting_orders, 2);
  IamaOptions seeded_iama = iama;
  seeded_iama.optimizer.fragment_store = &provider;
  seeded_iama.optimizer.fragment_publish = true;
  IamaSession session(factory, seeded_iama);
  session.Step();
  session.ApplyAction(UserAction::Continue());
  session.Step();
  ASSERT_TRUE(session.SetBounds(new_bounds));
  FrontierSnapshot diverged;
  for (int i = 0; i < iama.schedule.NumLevels(); ++i) {
    diverged = session.Step();
    session.ApplyAction(UserAction::Continue());
  }
  ASSERT_EQ(diverged.resolution, iama.schedule.MaxResolution());

  // Reference: a cold run bounded at new_bounds from the start.
  IamaOptions ref_iama = iama;
  ref_iama.initial_bounds = new_bounds;
  IamaSession reference(factory, ref_iama);
  FrontierSnapshot ref_final;
  for (int i = 0; i < iama.schedule.NumLevels(); ++i) {
    ref_final = reference.Step();
    reference.ApplyAction(UserAction::Continue());
  }
  const CoverageReport coverage = CheckCoverage(
      CostsOf(diverged.plans), CostsOf(ref_final.plans),
      iama.schedule.Alpha(iama.schedule.MaxResolution()), new_bounds);
  EXPECT_TRUE(coverage.covered)
      << coverage.violations << " of " << coverage.required
      << " uncovered, worst factor " << coverage.worst_factor;

  // Diverged runs export nothing.
  EXPECT_TRUE(
      session.mutable_optimizer()->TakePublishableFragments().empty());
}

// --- Service-level tests -----------------------------------------------------

ServiceOptions FragmentServiceOptions(int shards, size_t fragment_bytes) {
  ServiceOptions options;
  options.num_threads = 2;
  options.num_shards = shards;
  options.operator_options = TinyOperatorOptions(/*sampling=*/true);
  // Isolate the fragment path: no whole-query cache, no coalescing.
  options.frontier_cache_capacity = 0;
  options.coalesce_in_flight = false;
  options.fragment_cache_bytes = fragment_bytes;
  return options;
}

SubmitOptions FragmentSubmitOptions() {
  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule(4, 1.02, 0.3);
  return submit;
}

// The acceptance bar: with fragment sharing on, every frontier equals
// the cold sequential run bit for bit — for shard counts {1, 2, 4},
// replaying an overlapping workload twice so the second pass is fully
// warm (also exercised under TSan in CI).
TEST(OptimizerServiceFragmentTest, WarmFrontiersBitIdenticalAcrossShards) {
  const Catalog catalog = MakeTpchCatalog();
  std::vector<Query> workload = {CoreQuery(), VariantQuery(0),
                                 VariantQuery(1), VariantQuery(2),
                                 RenumberedQuery()};
  const SubmitOptions submit = FragmentSubmitOptions();
  const int iterations = submit.iama.schedule.NumLevels();

  for (const int shards : {1, 2, 4}) {
    ServiceOptions service_opts =
        FragmentServiceOptions(shards, /*fragment_bytes=*/16 << 20);
    OptimizerService service(catalog, service_opts);
    for (int pass = 0; pass < 2; ++pass) {
      for (const Query& query : workload) {
        const QueryId id = service.Submit(query, submit).value();
        const QueryResult result = service.Wait(id);
        ASSERT_EQ(result.state, QueryState::kDone) << query.name;
        EXPECT_EQ(result.iterations, iterations);
        const FrontierSnapshot reference = SequentialFinalSnapshot(
            query, catalog, service_opts, submit.iama, iterations);
        ASSERT_EQ(FrontierSignature(result.frontier.plans),
                  FrontierSignature(reference.plans))
            << query.name << " shards " << shards << " pass " << pass;
      }
    }
    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.fragment_publishes, 0u);
    EXPECT_GT(stats.fragment_hits, 0u);
  }
}

// The coalescing-style work assertion: a warm store must cut the
// enumeration counters. A repeat of the core query re-derives its
// frontier without generating a single sub-plan pair; an overlapping
// variant does strictly less work than on a fragment-less service.
TEST(OptimizerServiceFragmentTest, WarmStoreCutsOptimizerWork) {
  const Catalog catalog = MakeTpchCatalog();
  const SubmitOptions submit = FragmentSubmitOptions();

  // Cold counters from a service without a fragment store.
  ServiceOptions cold_opts = FragmentServiceOptions(1, /*fragment_bytes=*/0);
  OptimizerService cold_service(catalog, cold_opts);
  const QueryResult cold_variant = cold_service.Wait(
      cold_service.Submit(VariantQuery(0), submit).value());
  ASSERT_EQ(cold_variant.state, QueryState::kDone);
  ASSERT_GT(cold_variant.pairs_generated, 0u);

  ServiceOptions warm_opts =
      FragmentServiceOptions(1, /*fragment_bytes=*/16 << 20);
  OptimizerService service(catalog, warm_opts);
  const QueryResult first =
      service.Wait(service.Submit(CoreQuery(), submit).value());
  ASSERT_EQ(first.state, QueryState::kDone);
  EXPECT_GT(first.pairs_generated, 0u);

  // Identical query again (whole-query cache is off): fully seeded.
  const QueryResult repeat =
      service.Wait(service.Submit(CoreQuery(), submit).value());
  ASSERT_EQ(repeat.state, QueryState::kDone);
  EXPECT_EQ(repeat.pairs_generated, 0u);
  EXPECT_FALSE(repeat.from_cache);
  EXPECT_EQ(repeat.iterations, cold_variant.iterations);

  // Overlapping variant: strictly less work than without the store.
  const QueryResult warm_variant =
      service.Wait(service.Submit(VariantQuery(0), submit).value());
  ASSERT_EQ(warm_variant.state, QueryState::kDone);
  EXPECT_LT(warm_variant.pairs_generated, cold_variant.pairs_generated);
  EXPECT_GT(warm_variant.pairs_generated, 0u);

  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.fragment_hits, 0u);
  EXPECT_GT(stats.fragment_publishes, 0u);
}

// Eviction under a tiny byte budget must never affect results — only the
// hit rate.
TEST(OptimizerServiceFragmentTest, TinyBudgetEvictsButStaysCorrect) {
  const Catalog catalog = MakeTpchCatalog();
  const SubmitOptions submit = FragmentSubmitOptions();
  const int iterations = submit.iama.schedule.NumLevels();
  ServiceOptions service_opts =
      FragmentServiceOptions(2, /*fragment_bytes=*/4096);
  OptimizerService service(catalog, service_opts);
  std::vector<Query> workload = {CoreQuery(), VariantQuery(0),
                                 VariantQuery(1), CoreQuery()};
  for (const Query& query : workload) {
    const QueryResult result =
        service.Wait(service.Submit(query, submit).value());
    ASSERT_EQ(result.state, QueryState::kDone);
    const FrontierSnapshot reference = SequentialFinalSnapshot(
        query, catalog, service_opts, submit.iama, iterations);
    ASSERT_EQ(FrontierSignature(result.frontier.plans),
              FrontierSignature(reference.plans))
        << query.name;
  }
  EXPECT_GT(service.stats().fragment_evictions, 0u);
}

// Bumping the store epoch invalidates every resident fragment: the next
// identical submission pays full price again.
TEST(OptimizerServiceFragmentTest, EpochBumpInvalidatesStore) {
  const Catalog catalog = MakeTpchCatalog();
  const SubmitOptions submit = FragmentSubmitOptions();
  ServiceOptions service_opts =
      FragmentServiceOptions(1, /*fragment_bytes=*/16 << 20);
  OptimizerService service(catalog, service_opts);
  const QueryResult first =
      service.Wait(service.Submit(CoreQuery(), submit).value());
  ASSERT_EQ(first.state, QueryState::kDone);
  ASSERT_NE(service.fragment_store(), nullptr);
  service.fragment_store()->BumpEpoch();
  const QueryResult second =
      service.Wait(service.Submit(CoreQuery(), submit).value());
  ASSERT_EQ(second.state, QueryState::kDone);
  EXPECT_EQ(second.pairs_generated, first.pairs_generated);
  EXPECT_GT(second.pairs_generated, 0u);
}

// The service-level refresh protocol, fragment side, for shard counts
// {1, 2, 4}: after RefreshCatalog, a resubmitted identical query must
// miss every pre-refresh fragment (epoch in the key) and pay the full
// enumeration price on the NEW statistics — matching a cold run on the
// new catalog bit for bit — and then re-warm the store under the new
// epoch. Runs admitted before the refresh publish nothing.
TEST(OptimizerServiceFragmentTest, RefreshCatalogInvalidatesFragments) {
  const SubmitOptions submit = FragmentSubmitOptions();
  const int iterations = submit.iama.schedule.NumLevels();
  for (const int shards : {1, 2, 4}) {
    Catalog catalog = MakeTpchCatalog();
    ServiceOptions service_opts =
        FragmentServiceOptions(shards, /*fragment_bytes=*/16 << 20);
    OptimizerService service(catalog, service_opts);

    const QueryResult cold =
        service.Wait(service.Submit(CoreQuery(), submit).value());
    ASSERT_EQ(cold.state, QueryState::kDone);
    ASSERT_GT(cold.pairs_generated, 0u);
    // Publishing happens on the shard thread after the result is
    // already waitable; with idle shards around, an immediate
    // resubmission could be stolen and step before the store is warm.
    // The zero-pairs assertion needs the publish to have landed.
    while (service.stats().fragment_publishes == 0) {
      std::this_thread::yield();
    }
    // Store warm: an identical resubmission is fully seeded.
    const QueryResult warm =
        service.Wait(service.Submit(CoreQuery(), submit).value());
    ASSERT_EQ(warm.state, QueryState::kDone);
    ASSERT_EQ(warm.pairs_generated, 0u);

    // Statistics drift on a core-chain table, then refresh.
    ASSERT_TRUE(
        catalog
            .UpdateStats(TpchTable::kOrders,
                         catalog.Get(TpchTable::kOrders).cardinality * 16.0)
            .ok());
    const uint64_t v1 = service.RefreshCatalog();
    EXPECT_EQ(service.catalog_version(), v1);

    // Full price again: every pre-refresh fragment is epoch-unreachable.
    const uint64_t publishes_before_recold =
        service.stats().fragment_publishes;
    const QueryResult recold =
        service.Wait(service.Submit(CoreQuery(), submit).value());
    ASSERT_EQ(recold.state, QueryState::kDone);
    EXPECT_EQ(recold.catalog_version, v1);
    EXPECT_GT(recold.pairs_generated, 0u) << "shards " << shards;
    const FrontierSnapshot new_reference = SequentialFinalSnapshot(
        CoreQuery(), catalog, service_opts, submit.iama, iterations);
    ASSERT_EQ(FrontierSignature(recold.frontier.plans),
              FrontierSignature(new_reference.plans))
        << "shards " << shards;
    // Same publish barrier before asserting the re-warmed zero-pairs.
    while (service.stats().fragment_publishes == publishes_before_recold) {
      std::this_thread::yield();
    }

    // The store re-warms under the new epoch.
    const QueryResult rewarm =
        service.Wait(service.Submit(CoreQuery(), submit).value());
    ASSERT_EQ(rewarm.state, QueryState::kDone);
    EXPECT_EQ(rewarm.pairs_generated, 0u) << "shards " << shards;
    ASSERT_EQ(FrontierSignature(rewarm.frontier.plans),
              FrontierSignature(new_reference.plans));
  }
}

// A run admitted before the refresh must not publish its (dead-
// statistics) fragments — even though it completes in state kDone after
// the refresh. The single-shard service is parked on a blocker so the
// donor is provably in flight when RefreshCatalog lands.
TEST(OptimizerServiceFragmentTest, StaleRunsDoNotPublishFragments) {
  Catalog catalog = MakeTpchCatalog();
  ServiceOptions service_opts =
      FragmentServiceOptions(1, /*fragment_bytes=*/16 << 20);
  OptimizerService service(catalog, service_opts);
  SubmitOptions submit = FragmentSubmitOptions();

  // Blocker: parks the shard inside its first observer call.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false, released = false, blocked_once = false;
  SubmitOptions blocker_submit = FragmentSubmitOptions();
  blocker_submit.max_iterations = 1000000;
  const QueryId blocker =
      service
          .Submit(VariantQuery(3), blocker_submit,
                  [&](QueryId, const FrontierSnapshot&) {
                    std::unique_lock<std::mutex> lock(mu);
                    if (blocked_once) return;
                    blocked_once = entered = true;
                    cv.notify_all();
                    cv.wait(lock, [&] { return released; });
                  })
          .value();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  // Admitted pre-refresh; completes post-refresh as a stale run.
  const QueryId stale = service.Submit(CoreQuery(), submit).value();
  ASSERT_TRUE(
      catalog
          .UpdateStats(TpchTable::kOrders,
                       catalog.Get(TpchTable::kOrders).cardinality * 16.0)
          .ok());
  service.RefreshCatalog();
  {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
  ASSERT_TRUE(service.Cancel(blocker));
  service.Wait(blocker);
  const QueryResult rs = service.Wait(stale);
  ASSERT_EQ(rs.state, QueryState::kDone);
  EXPECT_EQ(service.stats().fragment_publishes, 0u);
}

// Submit owns no fragment knobs: injecting a provider or enabling
// publishing per-query must be rejected like pool/thread injection.
TEST(OptimizerServiceFragmentTest, SubmitRejectsFragmentKnobs) {
  const Catalog catalog = MakeTpchCatalog();
  ServiceOptions service_opts = FragmentServiceOptions(1, 1 << 20);
  OptimizerService service(catalog, service_opts);
  FragmentStore store({1 << 20});
  FragmentStoreProvider provider(&store, CoreQuery(),
                                 MetricSchema::Standard3(), SmallIama(),
                                 false, 2);
  SubmitOptions bad = FragmentSubmitOptions();
  bad.iama.optimizer.fragment_store = &provider;
  EXPECT_EQ(service.Submit(CoreQuery(), bad).status().code(),
            StatusCode::kInvalidArgument);
  SubmitOptions bad2 = FragmentSubmitOptions();
  bad2.iama.optimizer.fragment_publish = true;
  EXPECT_EQ(service.Submit(CoreQuery(), bad2).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace moqo
