// OptimizerService tests: concurrent sessions on one shared pool must
// produce frontiers bit-identical to per-query sequential runs; the LRU
// frontier cache must serve repeated queries without re-optimization;
// cancellation, deadlines, admission validation, and teardown must all
// behave under concurrent submitters (this test also runs under TSan).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "query/generator.h"
#include "query/tpch_queries.h"
#include "service/optimizer_service.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace moqo {
namespace {

// Runs one query alone: a plain single-threaded IamaSession stepped
// `iterations` times, returning the final snapshot.
FrontierSnapshot SequentialFinalSnapshot(const Query& query,
                                         const Catalog& catalog,
                                         const ServiceOptions& service_opts,
                                         const IamaOptions& iama,
                                         int iterations) {
  const PlanFactory factory(query, catalog, service_opts.schema,
                            service_opts.cost_params,
                            service_opts.operator_options);
  IamaSession session(factory, iama);
  FrontierSnapshot snap;
  for (int i = 0; i < iterations; ++i) {
    snap = session.Step();
    session.ApplyAction(UserAction::Continue());
  }
  return snap;
}

ServiceOptions SmallServiceOptions(int threads) {
  ServiceOptions options;
  options.num_threads = threads;
  options.operator_options = TinyOperatorOptions(/*sampling=*/true);
  return options;
}

SubmitOptions SmallSubmitOptions(int levels = 4) {
  SubmitOptions options;
  options.iama.schedule = ResolutionSchedule(levels, 1.02, 0.3);
  return options;
}

// A mixed workload: every small TPC-H block plus random topologies. The
// catalog is fully built before any service reads it.
struct Workload {
  Catalog catalog;
  std::vector<Query> queries;
};

Workload MakeWorkload(int num_random, int random_tables = 4) {
  Workload w;
  w.catalog = MakeTpchCatalog();
  for (const Query& q : TpchQueryBlocks(w.catalog)) {
    if (q.NumTables() <= 4) w.queries.push_back(q);
  }
  Rng rng(99);
  for (int i = 0; i < num_random; ++i) {
    GeneratorOptions gen;
    gen.num_tables = random_tables;
    gen.topology = i % 2 == 0 ? Topology::kChain : Topology::kStar;
    Query q = RandomQuery(rng, gen, &w.catalog);
    q.name = "rand" + std::to_string(i);
    w.queries.push_back(std::move(q));
  }
  return w;
}

TEST(OptimizerServiceTest, ConcurrentSessionsMatchSequentialRuns) {
  const Workload w = MakeWorkload(/*num_random=*/4);
  const ServiceOptions service_opts = SmallServiceOptions(/*threads=*/4);
  const SubmitOptions submit = SmallSubmitOptions();
  const int iterations = submit.iama.schedule.NumLevels();

  OptimizerService service(w.catalog, service_opts);
  // Admit everything from several client threads at once; every session's
  // steps interleave on the shared pool.
  std::vector<QueryId> ids(w.queries.size(), kInvalidQueryId);
  std::vector<std::unique_ptr<std::atomic<int>>> snapshot_counts;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    snapshot_counts.push_back(std::make_unique<std::atomic<int>>(0));
  }
  const int kSubmitters = 4;
  std::vector<std::thread> submitters;
  for (int thread = 0; thread < kSubmitters; ++thread) {
    submitters.emplace_back([&, thread] {
      for (size_t i = static_cast<size_t>(thread); i < w.queries.size();
           i += kSubmitters) {
        std::atomic<int>* count = snapshot_counts[i].get();
        StatusOr<QueryId> id = service.Submit(
            w.queries[i], submit,
            [count](QueryId, const FrontierSnapshot&) { ++*count; });
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ids[i] = id.value();
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  for (size_t i = 0; i < w.queries.size(); ++i) {
    const QueryResult result = service.Wait(ids[i]);
    EXPECT_EQ(result.state, QueryState::kDone) << w.queries[i].name;
    EXPECT_EQ(result.iterations, iterations);
    EXPECT_FALSE(result.from_cache);
    // Snapshot streaming: one observer call per step.
    EXPECT_EQ(snapshot_counts[i]->load(), iterations);
    // Bit-identical to running the query alone, single-threaded.
    const FrontierSnapshot reference = SequentialFinalSnapshot(
        w.queries[i], w.catalog, service_opts, submit.iama, iterations);
    ASSERT_EQ(FrontierSignature(result.frontier.plans),
              FrontierSignature(reference.plans))
        << w.queries[i].name;
    EXPECT_EQ(result.frontier.resolution, reference.resolution);
    EXPECT_EQ(result.frontier.alpha, reference.alpha);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, w.queries.size());
  EXPECT_EQ(stats.completed, w.queries.size());
  EXPECT_EQ(stats.steps_executed,
            w.queries.size() * static_cast<uint64_t>(iterations));
}

TEST(OptimizerServiceTest, CacheServesRepeatedQueryBitIdentically) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(2));
  const SubmitOptions submit = SmallSubmitOptions();
  const Query& query = w.queries.front();

  StatusOr<QueryId> first = service.Submit(query, submit);
  ASSERT_TRUE(first.ok());
  const QueryResult r1 = service.Wait(first.value());
  ASSERT_EQ(r1.state, QueryState::kDone);
  EXPECT_FALSE(r1.from_cache);
  const uint64_t steps_after_first = service.stats().steps_executed;

  // Same canonical query (different alias/name spelling) hits the cache:
  // observer sees exactly one snapshot — the final frontier.
  Query respelled = query;
  respelled.name = "respelled";
  for (TableRef& t : respelled.tables) t.alias = "x" + t.alias;
  std::atomic<int> snapshots{0};
  StatusOr<QueryId> second = service.Submit(
      respelled, submit,
      [&snapshots](QueryId, const FrontierSnapshot&) { ++snapshots; });
  ASSERT_TRUE(second.ok());
  const QueryResult r2 = service.Wait(second.value());
  EXPECT_EQ(r2.state, QueryState::kDone);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(snapshots.load(), 1);
  ASSERT_EQ(FrontierSignature(r2.frontier.plans),
            FrontierSignature(r1.frontier.plans));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  // No re-optimization happened.
  EXPECT_EQ(stats.steps_executed, steps_after_first);
}

TEST(OptimizerServiceTest, CacheEvictsLeastRecentlyUsed) {
  const Workload w = MakeWorkload(/*num_random=*/2);
  ServiceOptions options = SmallServiceOptions(1);
  options.frontier_cache_capacity = 1;
  OptimizerService service(w.catalog, options);
  const SubmitOptions submit = SmallSubmitOptions();
  const Query& a = w.queries[w.queries.size() - 2];
  const Query& b = w.queries[w.queries.size() - 1];

  service.Wait(service.Submit(a, submit).value());
  service.Wait(service.Submit(b, submit).value());  // Evicts a.
  const QueryResult again = service.Wait(service.Submit(a, submit).value());
  EXPECT_FALSE(again.from_cache);
  const QueryResult b_hit = service.Wait(service.Submit(b, submit).value());
  EXPECT_FALSE(b_hit.from_cache);  // b was evicted by re-running a.
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(OptimizerServiceTest, ResultRetentionDropsOldestResults) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  ASSERT_GE(w.queries.size(), 3u);
  ServiceOptions options = SmallServiceOptions(1);
  options.result_retention = 2;
  OptimizerService service(w.catalog, options);
  const SubmitOptions submit = SmallSubmitOptions();

  const QueryId first = service.Submit(w.queries[0], submit).value();
  EXPECT_EQ(service.Wait(first).id, first);  // Still retained.
  const QueryId a = service.Submit(w.queries[1], submit).value();
  const QueryId b = service.Submit(w.queries[2], submit).value();
  service.Wait(a);
  service.Wait(b);
  // Two newer results pushed `first` out of the retention window.
  EXPECT_EQ(service.Wait(first).id, kInvalidQueryId);
  EXPECT_EQ(service.Wait(b).id, b);
}

TEST(OptimizerServiceTest, CancelStopsASession) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/5);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  SubmitOptions submit = SmallSubmitOptions();
  submit.max_iterations = 1000000;  // Unreachable: steps clamp at rM.

  StatusOr<QueryId> id = service.Submit(w.queries.back(), submit);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service.Cancel(id.value()));
  const QueryResult result = service.Wait(id.value());
  EXPECT_EQ(result.state, QueryState::kCancelled);
  EXPECT_LT(result.iterations, submit.max_iterations);
  EXPECT_EQ(service.stats().cancelled, 1u);
  // Cancelling a finished (or unknown) query reports false.
  EXPECT_FALSE(service.Cancel(id.value()));
  EXPECT_FALSE(service.Cancel(12345));
}

TEST(OptimizerServiceTest, DeadlineExpiresSlowQuery) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/5);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  SubmitOptions submit = SmallSubmitOptions();
  submit.deadline_ms = 1e-6;  // Expires before the first step.

  const QueryResult result =
      service.Wait(service.Submit(w.queries.back(), submit).value());
  EXPECT_EQ(result.state, QueryState::kExpired);
  EXPECT_EQ(service.stats().expired, 1u);
}

TEST(OptimizerServiceTest, RejectsInvalidSubmissions) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  const Query& good = w.queries.front();

  Query bad_table = good;
  bad_table.tables[0].table = 100000;
  EXPECT_FALSE(service.Submit(bad_table).ok());

  SubmitOptions bad_priority = SmallSubmitOptions();
  bad_priority.priority = 0;
  EXPECT_FALSE(service.Submit(good, bad_priority).ok());

  SubmitOptions bad_deadline = SmallSubmitOptions();
  bad_deadline.deadline_ms = -1.0;
  EXPECT_FALSE(service.Submit(good, bad_deadline).ok());

  SubmitOptions bad_bounds = SmallSubmitOptions();
  bad_bounds.iama.initial_bounds = CostVector::Infinite(2);  // Schema is 3.
  EXPECT_FALSE(service.Submit(good, bad_bounds).ok());

  ThreadPool pool(1);
  SubmitOptions injected_pool = SmallSubmitOptions();
  injected_pool.iama.optimizer.pool = &pool;
  EXPECT_FALSE(service.Submit(good, injected_pool).ok());

  SubmitOptions own_threads = SmallSubmitOptions();
  own_threads.iama.optimizer.num_threads = 4;
  EXPECT_FALSE(service.Submit(good, own_threads).ok());

  EXPECT_EQ(service.stats().submitted, 0u);
}

TEST(OptimizerServiceTest, WaitOnUnknownIdReturnsInvalidResult) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  const QueryResult result = service.Wait(424242);
  EXPECT_EQ(result.id, kInvalidQueryId);
}

TEST(OptimizerServiceTest, PriorityAndBoundsOptionsComplete) {
  const Workload w = MakeWorkload(/*num_random=*/2);
  OptimizerService service(w.catalog, SmallServiceOptions(2));
  SubmitOptions high = SmallSubmitOptions();
  high.priority = 3;
  CostVector bounds = CostVector::Infinite(3);
  bounds[1] = 4.0;
  high.iama.initial_bounds = bounds;

  std::vector<QueryId> ids;
  for (const Query& q : w.queries) {
    StatusOr<QueryId> id = service.Submit(q, high);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    const QueryResult result = service.Wait(ids[i]);
    EXPECT_EQ(result.state, QueryState::kDone);
    for (const auto& e : result.frontier.plans) {
      EXPECT_LE(e.cost[1], 4.0) << w.queries[i].name;
    }
  }
}

TEST(OptimizerServiceTest, DestructionCancelsPendingSessions) {
  const Workload w = MakeWorkload(/*num_random=*/2, /*random_tables=*/5);
  SubmitOptions submit = SmallSubmitOptions();
  submit.max_iterations = 1000000;
  // Destroying a service with queued work must neither hang nor crash.
  OptimizerService service(w.catalog, SmallServiceOptions(2));
  for (const Query& q : w.queries) {
    ASSERT_TRUE(service.Submit(q, submit).ok());
  }
}

TEST(OptimizerServiceTest, DestructionUnblocksInFlightWaiters) {
  // A thread blocked in Wait() while the service is destroyed must be
  // drained (observing kCancelled), not left touching freed members.
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/5);
  SubmitOptions submit = SmallSubmitOptions();
  submit.max_iterations = 1000000;
  QueryResult observed;
  std::thread waiter;
  {
    OptimizerService service(w.catalog, SmallServiceOptions(1));
    const QueryId id = service.Submit(w.queries.back(), submit).value();
    waiter = std::thread([&] { observed = service.Wait(id); });
    // Race-free: the waiter registers under the service mutex before
    // blocking, so once observed it is pinned through destruction.
    while (service.active_waiters() == 0) std::this_thread::yield();
    // Service destroyed here, with the waiter blocked inside Wait().
  }
  waiter.join();
  EXPECT_EQ(observed.state, QueryState::kCancelled);
}

TEST(OptimizerServiceTest, StressManyConcurrentClients) {
  // TSan target: several client threads submitting duplicate queries
  // (cache hits race with fresh runs) while the scheduler steps.
  const Workload w = MakeWorkload(/*num_random=*/2);
  OptimizerService service(w.catalog, SmallServiceOptions(4));
  const SubmitOptions submit = SmallSubmitOptions(3);
  std::atomic<int> done{0};
  const int kClients = 4;
  const int kPerClient = 6;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        // i >= 3 resubmits a query this client already completed, so at
        // least kPerClient - 3 submissions per client must hit the cache.
        const Query& q = w.queries[i % 3];
        StatusOr<QueryId> id =
            service.Submit(q, submit, [](QueryId, const FrontierSnapshot&) {});
        ASSERT_TRUE(id.ok());
        const QueryResult r = service.Wait(id.value());
        EXPECT_EQ(r.state, QueryState::kDone);
        EXPECT_FALSE(r.frontier.plans.empty());
        ++done;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(done.load(), kClients * kPerClient);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_GE(stats.cache_hits,
            static_cast<uint64_t>(kClients * (kPerClient - 3)));
}

TEST(CanonicalQueryKeyTest, IgnoresNamesAliasesAndJoinOrientation) {
  const Catalog catalog = MakeTpchCatalog();
  const Query q = TpchQueryBlocks(catalog).front();
  const SubmitOptions submit = SmallSubmitOptions();
  const MetricSchema schema = MetricSchema::Standard3();
  const std::string base = CanonicalQueryKey(q, schema, submit);

  Query renamed = q;
  renamed.name = "other";
  for (TableRef& t : renamed.tables) t.alias += "_z";
  EXPECT_EQ(CanonicalQueryKey(renamed, schema, submit), base);

  Query flipped = q;
  std::swap(flipped.joins[0].left, flipped.joins[0].right);
  EXPECT_EQ(CanonicalQueryKey(flipped, schema, submit), base);
}

TEST(CanonicalQueryKeyTest, DistinguishesResultAffectingChanges) {
  const Catalog catalog = MakeTpchCatalog();
  const std::vector<Query> blocks = TpchQueryBlocks(catalog);
  const Query q = blocks.front();
  const SubmitOptions submit = SmallSubmitOptions();
  const MetricSchema schema = MetricSchema::Standard3();
  const std::string base = CanonicalQueryKey(q, schema, submit);

  Query different_sel = q;
  different_sel.tables[0].predicate_selectivity *= 0.5;
  EXPECT_NE(CanonicalQueryKey(different_sel, schema, submit), base);

  SubmitOptions finer = submit;
  finer.iama.schedule = ResolutionSchedule(7, 1.02, 0.3);
  EXPECT_NE(CanonicalQueryKey(q, schema, finer), base);

  SubmitOptions bounded = submit;
  bounded.iama.initial_bounds = CostVector::Infinite(3);
  EXPECT_NE(CanonicalQueryKey(q, schema, bounded), base);

  SubmitOptions more_iters = submit;
  more_iters.max_iterations = 11;
  EXPECT_NE(CanonicalQueryKey(q, schema, more_iters), base);

  // Join *sequence* is result-affecting (interesting-order tags), so two
  // predicates in swapped positions must not share a cache line.
  if (q.joins.size() >= 2 &&
      !(q.joins[0].left == q.joins[1].left &&
        q.joins[0].right == q.joins[1].right)) {
    Query reordered = q;
    std::swap(reordered.joins[0], reordered.joins[1]);
    EXPECT_NE(CanonicalQueryKey(reordered, schema, submit), base);
  }
}

}  // namespace
}  // namespace moqo
