// OptimizerService tests: concurrent sessions across scheduler shards
// must produce frontiers bit-identical to per-query sequential runs for
// every shard count; the LRU frontier cache must serve repeated queries
// without re-optimization; duplicate in-flight submissions must coalesce
// onto the running leader (no second optimization — asserted on step
// counters) with correct follower cancel/expiry/handoff semantics;
// ApplyBounds must re-bound live runs and keep diverged results out of
// the cache; RefreshCatalog must make resubmitted queries re-optimize
// on the new statistics (cache miss by key version) while runs admitted
// earlier finish bit-identical to a cold run on their pinned snapshot;
// cancellation, deadlines, admission validation, and teardown
// must all behave under concurrent submitters (this test also runs under
// TSan).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "query/generator.h"
#include "query/tpch_queries.h"
#include "service/optimizer_service.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace moqo {
namespace {

// Runs one query alone: a plain single-threaded IamaSession stepped
// `iterations` times, returning the final snapshot.
FrontierSnapshot SequentialFinalSnapshot(const Query& query,
                                         const Catalog& catalog,
                                         const ServiceOptions& service_opts,
                                         const IamaOptions& iama,
                                         int iterations) {
  const PlanFactory factory(query, catalog, service_opts.schema,
                            service_opts.cost_params,
                            service_opts.operator_options);
  IamaSession session(factory, iama);
  FrontierSnapshot snap;
  for (int i = 0; i < iterations; ++i) {
    snap = session.Step();
    session.ApplyAction(UserAction::Continue());
  }
  return snap;
}

ServiceOptions SmallServiceOptions(int threads) {
  ServiceOptions options;
  options.num_threads = threads;
  options.operator_options = TinyOperatorOptions(/*sampling=*/true);
  return options;
}

SubmitOptions SmallSubmitOptions(int levels = 4) {
  SubmitOptions options;
  options.iama.schedule = ResolutionSchedule(levels, 1.02, 0.3);
  return options;
}

// A mixed workload: every small TPC-H block plus random topologies. The
// catalog is fully built before any service reads it.
struct Workload {
  Catalog catalog;
  std::vector<Query> queries;
};

Workload MakeWorkload(int num_random, int random_tables = 4) {
  Workload w;
  w.catalog = MakeTpchCatalog();
  for (const Query& q : TpchQueryBlocks(w.catalog)) {
    if (q.NumTables() <= 4) w.queries.push_back(q);
  }
  Rng rng(99);
  for (int i = 0; i < num_random; ++i) {
    GeneratorOptions gen;
    gen.num_tables = random_tables;
    gen.topology = i % 2 == 0 ? Topology::kChain : Topology::kStar;
    Query q = RandomQuery(rng, gen, &w.catalog);
    q.name = "rand" + std::to_string(i);
    w.queries.push_back(std::move(q));
  }
  return w;
}

// Admits a mixed workload from several client threads at once onto a
// service with `shards` scheduler threads and asserts every frontier is
// bit-identical to running the query alone, single-threaded — the
// acceptance bar for the sharded scheduler (placement, stealing, and
// pool partitioning must not affect any session's step sequence).
void ExpectShardedServiceMatchesSequential(int shards) {
  const Workload w = MakeWorkload(/*num_random=*/4);
  ServiceOptions service_opts = SmallServiceOptions(/*threads=*/4);
  service_opts.num_shards = shards;
  const SubmitOptions submit = SmallSubmitOptions();
  const int iterations = submit.iama.schedule.NumLevels();

  OptimizerService service(w.catalog, service_opts);
  ASSERT_EQ(service.shards(), shards);
  // Admit everything from several client threads at once; every session's
  // steps interleave on the shared pool.
  std::vector<QueryId> ids(w.queries.size(), kInvalidQueryId);
  std::vector<std::unique_ptr<std::atomic<int>>> snapshot_counts;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    snapshot_counts.push_back(std::make_unique<std::atomic<int>>(0));
  }
  const int kSubmitters = 4;
  std::vector<std::thread> submitters;
  for (int thread = 0; thread < kSubmitters; ++thread) {
    submitters.emplace_back([&, thread] {
      for (size_t i = static_cast<size_t>(thread); i < w.queries.size();
           i += kSubmitters) {
        std::atomic<int>* count = snapshot_counts[i].get();
        StatusOr<QueryId> id = service.Submit(
            w.queries[i], submit,
            [count](QueryId, const FrontierSnapshot&) { ++*count; });
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ids[i] = id.value();
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  for (size_t i = 0; i < w.queries.size(); ++i) {
    const QueryResult result = service.Wait(ids[i]);
    EXPECT_EQ(result.state, QueryState::kDone) << w.queries[i].name;
    EXPECT_EQ(result.iterations, iterations);
    EXPECT_FALSE(result.from_cache);
    // Snapshot streaming: one observer call per step.
    EXPECT_EQ(snapshot_counts[i]->load(), iterations);
    // Bit-identical to running the query alone, single-threaded.
    const FrontierSnapshot reference = SequentialFinalSnapshot(
        w.queries[i], w.catalog, service_opts, submit.iama, iterations);
    ASSERT_EQ(FrontierSignature(result.frontier.plans),
              FrontierSignature(reference.plans))
        << w.queries[i].name;
    EXPECT_EQ(result.frontier.resolution, reference.resolution);
    EXPECT_EQ(result.frontier.alpha, reference.alpha);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, w.queries.size());
  EXPECT_EQ(stats.completed, w.queries.size());
  EXPECT_EQ(stats.steps_executed,
            w.queries.size() * static_cast<uint64_t>(iterations));
}

TEST(OptimizerServiceTest, ConcurrentSessionsMatchSequentialOneShard) {
  ExpectShardedServiceMatchesSequential(1);
}

TEST(OptimizerServiceTest, ConcurrentSessionsMatchSequentialTwoShards) {
  ExpectShardedServiceMatchesSequential(2);
}

TEST(OptimizerServiceTest, ConcurrentSessionsMatchSequentialFourShards) {
  ExpectShardedServiceMatchesSequential(4);
}

TEST(OptimizerServiceTest, CacheServesRepeatedQueryBitIdentically) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(2));
  const SubmitOptions submit = SmallSubmitOptions();
  const Query& query = w.queries.front();

  StatusOr<QueryId> first = service.Submit(query, submit);
  ASSERT_TRUE(first.ok());
  const QueryResult r1 = service.Wait(first.value());
  ASSERT_EQ(r1.state, QueryState::kDone);
  EXPECT_FALSE(r1.from_cache);
  const uint64_t steps_after_first = service.stats().steps_executed;

  // Same canonical query (different alias/name spelling) hits the cache:
  // observer sees exactly one snapshot — the final frontier.
  Query respelled = query;
  respelled.name = "respelled";
  for (TableRef& t : respelled.tables) t.alias = "x" + t.alias;
  std::atomic<int> snapshots{0};
  StatusOr<QueryId> second = service.Submit(
      respelled, submit,
      [&snapshots](QueryId, const FrontierSnapshot&) { ++snapshots; });
  ASSERT_TRUE(second.ok());
  const QueryResult r2 = service.Wait(second.value());
  EXPECT_EQ(r2.state, QueryState::kDone);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(snapshots.load(), 1);
  ASSERT_EQ(FrontierSignature(r2.frontier.plans),
            FrontierSignature(r1.frontier.plans));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  // No re-optimization happened.
  EXPECT_EQ(stats.steps_executed, steps_after_first);
}

TEST(OptimizerServiceTest, CacheEvictsLeastRecentlyUsed) {
  const Workload w = MakeWorkload(/*num_random=*/2);
  ServiceOptions options = SmallServiceOptions(1);
  options.frontier_cache_capacity = 1;
  OptimizerService service(w.catalog, options);
  const SubmitOptions submit = SmallSubmitOptions();
  const Query& a = w.queries[w.queries.size() - 2];
  const Query& b = w.queries[w.queries.size() - 1];

  service.Wait(service.Submit(a, submit).value());
  service.Wait(service.Submit(b, submit).value());  // Evicts a.
  const QueryResult again = service.Wait(service.Submit(a, submit).value());
  EXPECT_FALSE(again.from_cache);
  const QueryResult b_hit = service.Wait(service.Submit(b, submit).value());
  EXPECT_FALSE(b_hit.from_cache);  // b was evicted by re-running a.
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(OptimizerServiceTest, ResultRetentionDropsOldestResults) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  ASSERT_GE(w.queries.size(), 3u);
  ServiceOptions options = SmallServiceOptions(1);
  options.result_retention = 2;
  OptimizerService service(w.catalog, options);
  const SubmitOptions submit = SmallSubmitOptions();

  const QueryId first = service.Submit(w.queries[0], submit).value();
  EXPECT_EQ(service.Wait(first).id, first);  // Still retained.
  const QueryId a = service.Submit(w.queries[1], submit).value();
  const QueryId b = service.Submit(w.queries[2], submit).value();
  service.Wait(a);
  service.Wait(b);
  // Two newer results pushed `first` out of the retention window.
  EXPECT_EQ(service.Wait(first).id, kInvalidQueryId);
  EXPECT_EQ(service.Wait(b).id, b);
}

TEST(OptimizerServiceTest, CancelStopsASession) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/5);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  SubmitOptions submit = SmallSubmitOptions();
  submit.max_iterations = 1000000;  // Unreachable: steps clamp at rM.

  StatusOr<QueryId> id = service.Submit(w.queries.back(), submit);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service.Cancel(id.value()));
  const QueryResult result = service.Wait(id.value());
  EXPECT_EQ(result.state, QueryState::kCancelled);
  EXPECT_LT(result.iterations, submit.max_iterations);
  EXPECT_EQ(service.stats().cancelled, 1u);
  // Cancelling a finished (or unknown) query reports false.
  EXPECT_FALSE(service.Cancel(id.value()));
  EXPECT_FALSE(service.Cancel(12345));
}

TEST(OptimizerServiceTest, DeadlineExpiresSlowQuery) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/5);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  SubmitOptions submit = SmallSubmitOptions();
  submit.deadline_ms = 1e-6;  // Expires before the first step.

  const QueryResult result =
      service.Wait(service.Submit(w.queries.back(), submit).value());
  EXPECT_EQ(result.state, QueryState::kExpired);
  EXPECT_EQ(service.stats().expired, 1u);
}

TEST(OptimizerServiceTest, RejectsInvalidSubmissions) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  const Query& good = w.queries.front();

  Query bad_table = good;
  bad_table.tables[0].table = 100000;
  EXPECT_FALSE(service.Submit(bad_table).ok());

  SubmitOptions bad_priority = SmallSubmitOptions();
  bad_priority.priority = 0;
  EXPECT_FALSE(service.Submit(good, bad_priority).ok());

  SubmitOptions bad_deadline = SmallSubmitOptions();
  bad_deadline.deadline_ms = -1.0;
  EXPECT_FALSE(service.Submit(good, bad_deadline).ok());

  SubmitOptions bad_bounds = SmallSubmitOptions();
  bad_bounds.iama.initial_bounds = CostVector::Infinite(2);  // Schema is 3.
  EXPECT_FALSE(service.Submit(good, bad_bounds).ok());

  ThreadPool pool(1);
  SubmitOptions injected_pool = SmallSubmitOptions();
  injected_pool.iama.optimizer.pool = &pool;
  EXPECT_FALSE(service.Submit(good, injected_pool).ok());

  SubmitOptions own_threads = SmallSubmitOptions();
  own_threads.iama.optimizer.num_threads = 4;
  EXPECT_FALSE(service.Submit(good, own_threads).ok());

  EXPECT_EQ(service.stats().submitted, 0u);
}

TEST(OptimizerServiceTest, MaxIterationsLimitBoundsRunLength) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  ServiceOptions options = SmallServiceOptions(1);
  options.max_iterations_limit = 8;
  OptimizerService service(w.catalog, options);

  // Above the ceiling: rejected at admission with the taxonomy's
  // kInvalidArgument, before any run slot is consumed.
  SubmitRequest over;
  over.query = w.queries.front();
  over.max_iterations = 9;
  StatusOr<SubmitResponse> rejected = service.Submit(std::move(over));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.stats().submitted, 0u);

  // At the ceiling: admitted and runs to completion as usual.
  SubmitRequest at_limit;
  at_limit.query = w.queries.front();
  at_limit.max_iterations = 8;
  StatusOr<SubmitResponse> admitted = service.Submit(std::move(at_limit));
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(service.Wait(admitted.value().id).state, QueryState::kDone);
}

TEST(OptimizerServiceTest, WaitOnUnknownIdReturnsInvalidResult) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  const QueryResult result = service.Wait(424242);
  EXPECT_EQ(result.id, kInvalidQueryId);
}

TEST(OptimizerServiceTest, PriorityAndBoundsOptionsComplete) {
  const Workload w = MakeWorkload(/*num_random=*/2);
  OptimizerService service(w.catalog, SmallServiceOptions(2));
  SubmitOptions high = SmallSubmitOptions();
  high.priority = 3;
  CostVector bounds = CostVector::Infinite(3);
  bounds[1] = 4.0;
  high.iama.initial_bounds = bounds;

  std::vector<QueryId> ids;
  for (const Query& q : w.queries) {
    StatusOr<QueryId> id = service.Submit(q, high);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    const QueryResult result = service.Wait(ids[i]);
    EXPECT_EQ(result.state, QueryState::kDone);
    for (const auto& e : result.frontier.plans) {
      EXPECT_LE(e.cost[1], 4.0) << w.queries[i].name;
    }
  }
}

TEST(OptimizerServiceTest, DestructionCancelsPendingSessions) {
  const Workload w = MakeWorkload(/*num_random=*/2, /*random_tables=*/5);
  SubmitOptions submit = SmallSubmitOptions();
  submit.max_iterations = 1000000;
  // Destroying a service with queued work must neither hang nor crash.
  OptimizerService service(w.catalog, SmallServiceOptions(2));
  for (const Query& q : w.queries) {
    ASSERT_TRUE(service.Submit(q, submit).ok());
  }
}

TEST(OptimizerServiceTest, DestructionUnblocksInFlightWaiters) {
  // A thread blocked in Wait() while the service is destroyed must be
  // drained (observing kCancelled), not left touching freed members.
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/5);
  SubmitOptions submit = SmallSubmitOptions();
  submit.max_iterations = 1000000;
  QueryResult observed;
  std::thread waiter;
  {
    OptimizerService service(w.catalog, SmallServiceOptions(1));
    const QueryId id = service.Submit(w.queries.back(), submit).value();
    waiter = std::thread([&] { observed = service.Wait(id); });
    // Race-free: the waiter registers under the service mutex before
    // blocking, so once observed it is pinned through destruction.
    while (service.active_waiters() == 0) std::this_thread::yield();
    // Service destroyed here, with the waiter blocked inside Wait().
  }
  waiter.join();
  EXPECT_EQ(observed.state, QueryState::kCancelled);
}

TEST(OptimizerServiceTest, StressManyConcurrentClients) {
  // TSan target: several client threads submitting duplicate queries
  // (cache hits race with fresh runs) while the scheduler steps.
  const Workload w = MakeWorkload(/*num_random=*/2);
  OptimizerService service(w.catalog, SmallServiceOptions(4));
  const SubmitOptions submit = SmallSubmitOptions(3);
  std::atomic<int> done{0};
  const int kClients = 4;
  const int kPerClient = 6;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        // i >= 3 resubmits a query this client already completed, so at
        // least kPerClient - 3 submissions per client must hit the cache.
        const Query& q = w.queries[i % 3];
        StatusOr<QueryId> id =
            service.Submit(q, submit, [](QueryId, const FrontierSnapshot&) {});
        ASSERT_TRUE(id.ok());
        const QueryResult r = service.Wait(id.value());
        EXPECT_EQ(r.state, QueryState::kDone);
        EXPECT_FALSE(r.frontier.plans.empty());
        ++done;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(done.load(), kClients * kPerClient);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_GE(stats.cache_hits,
            static_cast<uint64_t>(kClients * (kPerClient - 3)));
}

// Parks the (single) shard thread inside a blocker query's observer so a
// test can deterministically submit, cancel, or re-bound queries while
// they are guaranteed to be in flight: the blocker's first snapshot
// blocks until Release(), during which every later submission sits
// queued behind it. Only the first snapshot blocks — after Release() the
// blocker steps normally (tests cancel it to finish).
class SchedulerGate {
 public:
  OptimizerService::SnapshotObserver Observer() {
    return [this](QueryId, const FrontierSnapshot&) {
      std::unique_lock<std::mutex> lock(mu_);
      if (blocked_once_) return;
      blocked_once_ = true;
      entered_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    };
  }
  // Blocks until the shard thread is parked inside the observer.
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_once_ = false;
  bool entered_ = false;
  bool released_ = false;
};

// Holds a gated service with one shard plus the ids/options shared by the
// coalescing tests: a parked blocker, a leader, and (on demand) coalesced
// duplicates of the leader's query.
struct CoalescingRig {
  explicit CoalescingRig(const Workload& w)
      : submit(SmallSubmitOptions()),
        iterations(submit.iama.schedule.NumLevels()),
        service(w.catalog, SmallServiceOptions(/*threads=*/1)) {
    SubmitOptions blocker_submit = SmallSubmitOptions();
    blocker_submit.max_iterations = 1000000;  // Runs until cancelled.
    blocker = service.Submit(w.queries.back(), blocker_submit,
                             gate.Observer())
                  .value();
    gate.AwaitEntered();
  }

  // Finishes the blocker and returns its executed step count, for exact
  // service-wide step accounting.
  int ReleaseAndFinishBlocker() {
    EXPECT_TRUE(service.Cancel(blocker));
    gate.Release();
    return service.Wait(blocker).iterations;
  }

  SchedulerGate gate;
  const SubmitOptions submit;
  const int iterations;
  OptimizerService service;
  QueryId blocker = kInvalidQueryId;
};

TEST(OptimizerServiceCoalescingTest, DuplicateInFlightSubmitCoalesces) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/4);
  ASSERT_GE(w.queries.size(), 2u);
  CoalescingRig rig(w);
  const Query& q = w.queries.front();

  std::atomic<int> leader_snaps{0};
  std::atomic<int> dup_snaps{0};
  const QueryId leader =
      rig.service
          .Submit(q, rig.submit,
                  [&](QueryId, const FrontierSnapshot&) { ++leader_snaps; })
          .value();
  const QueryId dup =
      rig.service
          .Submit(q, rig.submit,
                  [&](QueryId, const FrontierSnapshot&) { ++dup_snaps; })
          .value();
  // The duplicate attached to the in-flight leader instead of queueing a
  // second run.
  EXPECT_EQ(rig.service.stats().coalesced, 1u);

  const int blocker_steps = rig.ReleaseAndFinishBlocker();
  const QueryResult rl = rig.service.Wait(leader);
  const QueryResult rd = rig.service.Wait(dup);

  EXPECT_EQ(rl.state, QueryState::kDone);
  EXPECT_FALSE(rl.coalesced);
  EXPECT_EQ(rl.iterations, rig.iterations);
  EXPECT_EQ(rd.state, QueryState::kDone);
  EXPECT_TRUE(rd.coalesced);
  EXPECT_FALSE(rd.from_cache);
  EXPECT_EQ(rd.iterations, rig.iterations);
  // The shared result is the real (sequential-identical) frontier.
  const ServiceOptions ref_opts = SmallServiceOptions(1);
  const FrontierSnapshot reference = SequentialFinalSnapshot(
      q, w.catalog, ref_opts, rig.submit.iama, rig.iterations);
  ASSERT_EQ(FrontierSignature(rd.frontier.plans),
            FrontierSignature(reference.plans));
  ASSERT_EQ(FrontierSignature(rl.frontier.plans),
            FrontierSignature(reference.plans));
  // Step-count instrumented: the duplicate performed no optimization —
  // total service steps are exactly blocker + one leader run.
  EXPECT_EQ(rig.service.stats().steps_executed,
            static_cast<uint64_t>(blocker_steps + rig.iterations));
  // The leader streamed every snapshot; the follower is guaranteed at
  // least the final frontier.
  EXPECT_EQ(leader_snaps.load(), rig.iterations);
  EXPECT_GE(dup_snaps.load(), 1);
}

TEST(OptimizerServiceCoalescingTest, FollowerCancelLeavesLeaderUnaffected) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/4);
  CoalescingRig rig(w);
  const Query& q = w.queries.front();

  const QueryId leader = rig.service.Submit(q, rig.submit).value();
  const QueryId dup = rig.service.Submit(q, rig.submit).value();
  EXPECT_EQ(rig.service.stats().coalesced, 1u);
  // Cancelling the follower detaches it immediately — no turn needed.
  EXPECT_TRUE(rig.service.Cancel(dup));
  const QueryResult rd = rig.service.Wait(dup);
  EXPECT_EQ(rd.state, QueryState::kCancelled);
  EXPECT_TRUE(rd.coalesced);

  const int blocker_steps = rig.ReleaseAndFinishBlocker();
  const QueryResult rl = rig.service.Wait(leader);
  EXPECT_EQ(rl.state, QueryState::kDone);
  EXPECT_EQ(rl.iterations, rig.iterations);
  const FrontierSnapshot reference =
      SequentialFinalSnapshot(q, w.catalog, SmallServiceOptions(1),
                              rig.submit.iama, rig.iterations);
  ASSERT_EQ(FrontierSignature(rl.frontier.plans),
            FrontierSignature(reference.plans));
  EXPECT_EQ(rig.service.stats().steps_executed,
            static_cast<uint64_t>(blocker_steps + rig.iterations));
  EXPECT_EQ(rig.service.stats().cancelled, 2u);  // Follower + blocker.
}

TEST(OptimizerServiceCoalescingTest, LeaderCancelHandsOffToFollower) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/4);
  CoalescingRig rig(w);
  const Query& q = w.queries.front();

  const QueryId leader = rig.service.Submit(q, rig.submit).value();
  const QueryId dup = rig.service.Submit(q, rig.submit).value();
  EXPECT_EQ(rig.service.stats().coalesced, 1u);
  // Cancelling the leader while a follower rides along hands leadership
  // off instead of killing the run.
  EXPECT_TRUE(rig.service.Cancel(leader));

  const int blocker_steps = rig.ReleaseAndFinishBlocker();
  const QueryResult rl = rig.service.Wait(leader);
  EXPECT_EQ(rl.state, QueryState::kCancelled);
  EXPECT_FALSE(rl.coalesced);

  const QueryResult rd = rig.service.Wait(dup);
  EXPECT_EQ(rd.state, QueryState::kDone);
  EXPECT_TRUE(rd.coalesced);
  EXPECT_EQ(rd.iterations, rig.iterations);
  const FrontierSnapshot reference =
      SequentialFinalSnapshot(q, w.catalog, SmallServiceOptions(1),
                              rig.submit.iama, rig.iterations);
  ASSERT_EQ(FrontierSignature(rd.frontier.plans),
            FrontierSignature(reference.plans));
  // The run continued where it left off: one optimization total, no
  // re-enqueue from scratch.
  EXPECT_EQ(rig.service.stats().steps_executed,
            static_cast<uint64_t>(blocker_steps + rig.iterations));
}

TEST(OptimizerServiceCoalescingTest, DuplicateSubmitsRacingCompletion) {
  // Hammer one canonical query from several client threads: every
  // submission must resolve to exactly one of {fresh run, coalesced
  // follower, cache hit}, and total optimizer work must equal fresh
  // runs × iterations — whatever the interleaving (also a TSan target).
  const Workload w = MakeWorkload(/*num_random=*/0);
  ServiceOptions opts = SmallServiceOptions(/*threads=*/2);
  opts.num_shards = 2;
  OptimizerService service(w.catalog, opts);
  const SubmitOptions submit = SmallSubmitOptions(3);
  const int iterations = submit.iama.schedule.NumLevels();
  const Query& q = w.queries.front();

  const int kClients = 4;
  const int kPerClient = 8;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        StatusOr<QueryId> id = service.Submit(q, submit);
        ASSERT_TRUE(id.ok());
        const QueryResult r = service.Wait(id.value());
        EXPECT_EQ(r.state, QueryState::kDone);
        EXPECT_EQ(r.iterations, iterations);
        EXPECT_FALSE(r.frontier.plans.empty());
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const ServiceStats stats = service.stats();
  const uint64_t total = static_cast<uint64_t>(kClients * kPerClient);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.completed, total);
  ASSERT_GE(total, stats.cache_hits + stats.coalesced);
  const uint64_t fresh = total - stats.cache_hits - stats.coalesced;
  EXPECT_GE(fresh, 1u);
  EXPECT_EQ(stats.steps_executed, fresh * static_cast<uint64_t>(iterations));
}

TEST(OptimizerServiceCoalescingTest, ExpiredFollowerKeepsRunAlive) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/4);
  CoalescingRig rig(w);
  const Query& q = w.queries.front();

  const QueryId leader = rig.service.Submit(q, rig.submit).value();
  SubmitOptions hurried = rig.submit;
  hurried.deadline_ms = 1e-6;  // Expires before the run's first turn.
  const QueryId dup = rig.service.Submit(q, hurried).value();
  EXPECT_EQ(rig.service.stats().coalesced, 1u);

  const int blocker_steps = rig.ReleaseAndFinishBlocker();
  const QueryResult rd = rig.service.Wait(dup);
  EXPECT_EQ(rd.state, QueryState::kExpired);
  EXPECT_TRUE(rd.coalesced);
  const QueryResult rl = rig.service.Wait(leader);
  EXPECT_EQ(rl.state, QueryState::kDone);
  EXPECT_EQ(rl.iterations, rig.iterations);
  EXPECT_EQ(rig.service.stats().steps_executed,
            static_cast<uint64_t>(blocker_steps + rig.iterations));
  EXPECT_EQ(rig.service.stats().expired, 1u);
}

TEST(OptimizerServiceCoalescingTest, MidTurnExpiredFollowerDoesNotRideToDone) {
  // A follower that attaches mid-turn with an already-hopeless deadline
  // must expire at the turn boundary — even when that same turn
  // completes the run — not be finalized kDone alongside the leader.
  const Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  SubmitOptions submit = SmallSubmitOptions();
  const int iterations = submit.iama.schedule.NumLevels();
  submit.priority = iterations;  // The whole run is one scheduler turn.
  const Query& q = w.queries.front();

  SubmitOptions hurried = SmallSubmitOptions();
  hurried.deadline_ms = 1e-6;  // Expired by the first boundary.
  std::atomic<QueryId> follower{kInvalidQueryId};
  StatusOr<QueryId> leader = service.Submit(
      q, submit, [&](QueryId, const FrontierSnapshot& s) {
        if (s.iteration == 1) {  // Mid-turn: the run is being stepped.
          StatusOr<QueryId> dup = service.Submit(q, hurried);
          ASSERT_TRUE(dup.ok());
          follower.store(dup.value());
        }
      });
  ASSERT_TRUE(leader.ok());

  const QueryResult rl = service.Wait(leader.value());
  EXPECT_EQ(rl.state, QueryState::kDone);
  EXPECT_EQ(rl.iterations, iterations);
  ASSERT_NE(follower.load(), kInvalidQueryId);
  const QueryResult rd = service.Wait(follower.load());
  EXPECT_EQ(rd.state, QueryState::kExpired);
  EXPECT_TRUE(rd.coalesced);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.steps_executed, static_cast<uint64_t>(iterations));
}

TEST(OptimizerServiceApplyBoundsTest, RejectsUnknownIdsAndBadDimensions) {
  const Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  // Unknown id.
  EXPECT_EQ(service.ApplyBounds(424242, CostVector::Infinite(3)).code(),
            StatusCode::kNotFound);
  // Finished id (cache hits finish inside Submit).
  const QueryId done =
      service.Submit(w.queries.front(), SmallSubmitOptions()).value();
  service.Wait(done);
  EXPECT_EQ(service.ApplyBounds(done, CostVector::Infinite(3)).code(),
            StatusCode::kNotFound);
}

TEST(OptimizerServiceApplyBoundsTest, TightensInFlightRunAndSkipsCache) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/4);
  CoalescingRig rig(w);
  const Query& q = w.queries.front();

  const QueryId id = rig.service.Submit(q, rig.submit).value();
  // Dimension mismatch is rejected while the query is live.
  EXPECT_EQ(rig.service.ApplyBounds(id, CostVector::Infinite(2)).code(),
            StatusCode::kInvalidArgument);
  CostVector bounds = CostVector::Infinite(3);
  bounds[1] = 4.0;
  ASSERT_TRUE(rig.service.ApplyBounds(id, bounds).ok());

  rig.ReleaseAndFinishBlocker();
  const QueryResult r = rig.service.Wait(id);
  EXPECT_EQ(r.state, QueryState::kDone);
  for (const auto& e : r.frontier.plans) EXPECT_LE(e.cost[1], 4.0);

  // The re-bounded (diverged) run must not have filled the cache: an
  // identical submission re-optimizes and gets the canonical, unbounded
  // frontier.
  const QueryResult again =
      rig.service.Wait(rig.service.Submit(q, rig.submit).value());
  EXPECT_FALSE(again.from_cache);
  EXPECT_FALSE(again.coalesced);
  const FrontierSnapshot reference =
      SequentialFinalSnapshot(q, w.catalog, SmallServiceOptions(1),
                              rig.submit.iama, rig.iterations);
  ASSERT_EQ(FrontierSignature(again.frontier.plans),
            FrontierSignature(reference.plans));
}

TEST(OptimizerServiceApplyBoundsTest, BoundsOnFinalStepAreNotDropped) {
  // ApplyBounds racing completion: issued from the observer of the
  // run's final step (the entry is still live, so it returns OK), the
  // bounds must not be silently dropped — the run earns one more turn
  // and steps at least once under them before finishing.
  const Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  const SubmitOptions submit = SmallSubmitOptions();
  const int iterations = submit.iama.schedule.NumLevels();
  const Query& q = w.queries.front();

  CostVector bounds = CostVector::Infinite(3);
  bounds[1] = 4.0;
  std::atomic<int> snaps{0};
  std::atomic<bool> fired{false};
  Status applied = Status::OK();  // Ordered by Wait()'s mutex round trip.
  StatusOr<QueryId> id = service.Submit(
      q, submit, [&](QueryId qid, const FrontierSnapshot& s) {
        ++snaps;
        if (s.iteration == iterations && !fired.exchange(true)) {
          applied = service.ApplyBounds(qid, bounds);
        }
      });
  ASSERT_TRUE(id.ok());
  const QueryResult r = service.Wait(id.value());
  ASSERT_TRUE(fired.load());
  EXPECT_TRUE(applied.ok()) << applied.ToString();
  EXPECT_EQ(r.state, QueryState::kDone);
  // Extra step(s) under the new bounds, streamed to the observer.
  EXPECT_GT(r.iterations, iterations);
  EXPECT_GE(snaps.load(), iterations + 1);
  for (const auto& e : r.frontier.plans) EXPECT_LE(e.cost[1], 4.0);
}

TEST(OptimizerServiceApplyBoundsTest, FollowerBoundsApplyToSharedRun) {
  const Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/4);
  CoalescingRig rig(w);
  const Query& q = w.queries.front();

  const QueryId leader = rig.service.Submit(q, rig.submit).value();
  const QueryId dup = rig.service.Submit(q, rig.submit).value();
  EXPECT_EQ(rig.service.stats().coalesced, 1u);
  // A coalesced run is one shared interactive session: a follower's
  // bounds drag re-bounds it for every rider and diverges it.
  CostVector bounds = CostVector::Infinite(3);
  bounds[1] = 4.0;
  ASSERT_TRUE(rig.service.ApplyBounds(dup, bounds).ok());
  // The diverged run stops accepting new followers: a third duplicate
  // starts a fresh run of its own.
  const QueryId fresh = rig.service.Submit(q, rig.submit).value();
  EXPECT_EQ(rig.service.stats().coalesced, 1u);

  rig.ReleaseAndFinishBlocker();
  const QueryResult rl = rig.service.Wait(leader);
  const QueryResult rd = rig.service.Wait(dup);
  const QueryResult rf = rig.service.Wait(fresh);

  EXPECT_EQ(rl.state, QueryState::kDone);
  EXPECT_EQ(rd.state, QueryState::kDone);
  EXPECT_TRUE(rd.coalesced);
  // Leader and follower share the re-bounded frontier.
  ASSERT_EQ(FrontierSignature(rl.frontier.plans),
            FrontierSignature(rd.frontier.plans));
  for (const auto& e : rl.frontier.plans) EXPECT_LE(e.cost[1], 4.0);
  // The fresh run was unaffected by the divergence and produced the
  // canonical frontier.
  EXPECT_EQ(rf.state, QueryState::kDone);
  EXPECT_FALSE(rf.coalesced);
  const FrontierSnapshot reference =
      SequentialFinalSnapshot(q, w.catalog, SmallServiceOptions(1),
                              rig.submit.iama, rig.iterations);
  ASSERT_EQ(FrontierSignature(rf.frontier.plans),
            FrontierSignature(reference.plans));
}

TEST(OptimizerServiceShardingTest, IdleShardsStealQueuedRuns) {
  // With coalescing disabled, duplicates of one canonical key all hash
  // to the same home shard; the other three shards can only make
  // progress by stealing — and every stolen run must still produce the
  // canonical frontier (the stealing shard rebinds the session to its
  // own pool partition).
  const Workload w = MakeWorkload(/*num_random=*/0);
  ServiceOptions opts = SmallServiceOptions(/*threads=*/4);
  opts.num_shards = 4;
  opts.coalesce_in_flight = false;
  opts.frontier_cache_capacity = 0;  // Every submission optimizes.
  OptimizerService service(w.catalog, opts);
  const SubmitOptions submit = SmallSubmitOptions();
  const int iterations = submit.iama.schedule.NumLevels();
  const Query& q = w.queries.front();

  const int kRuns = 16;
  std::vector<QueryId> ids;
  for (int i = 0; i < kRuns; ++i) {
    ids.push_back(service.Submit(q, submit).value());
  }
  const FrontierSnapshot reference = SequentialFinalSnapshot(
      q, w.catalog, SmallServiceOptions(1), submit.iama, iterations);
  for (QueryId id : ids) {
    const QueryResult r = service.Wait(id);
    EXPECT_EQ(r.state, QueryState::kDone);
    EXPECT_FALSE(r.coalesced);
    ASSERT_EQ(FrontierSignature(r.frontier.plans),
              FrontierSignature(reference.plans));
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.steps_executed,
            static_cast<uint64_t>(kRuns) * static_cast<uint64_t>(iterations));
  EXPECT_GE(stats.work_steals, 1u);
}

// --- Catalog refresh ---------------------------------------------------------

// The refresh acceptance bar, per shard count: a query optimized and
// cached before RefreshCatalog() must, when resubmitted afterwards,
// provably re-optimize (cache miss) and produce the frontier of a cold
// run on the NEW catalog — while the pre-refresh results equal a cold
// run on the OLD catalog, and post-refresh repeats are cache-served
// again under the new version.
void ExpectRefreshReoptimizesOnNewCatalog(int shards) {
  Workload w = MakeWorkload(/*num_random=*/0);
  ServiceOptions service_opts = SmallServiceOptions(/*threads=*/2);
  service_opts.num_shards = shards;
  const SubmitOptions submit = SmallSubmitOptions();
  const int iterations = submit.iama.schedule.NumLevels();
  const Query& q = w.queries.front();
  const Catalog old_catalog = w.catalog;  // Pre-drift statistics.

  OptimizerService service(w.catalog, service_opts);
  const uint64_t v0 = service.catalog_version();
  EXPECT_EQ(v0, old_catalog.version());

  const QueryResult r1 = service.Wait(service.Submit(q, submit).value());
  ASSERT_EQ(r1.state, QueryState::kDone);
  EXPECT_EQ(r1.catalog_version, v0);
  const QueryResult r2 = service.Wait(service.Submit(q, submit).value());
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r2.catalog_version, v0);

  // Statistics drift: the query's first table grows 64x, then the
  // service is told. The refresh is what publishes the mutation —
  // before it, submissions still optimize (and cache-hit) on v0.
  const TableId drifted = q.tables.front().table;
  ASSERT_TRUE(w.catalog
                  .UpdateStats(drifted,
                               w.catalog.Get(drifted).cardinality * 64.0)
                  .ok());
  const QueryResult still_old =
      service.Wait(service.Submit(q, submit).value());
  EXPECT_TRUE(still_old.from_cache);
  EXPECT_EQ(still_old.catalog_version, v0);

  const uint64_t v1 = service.RefreshCatalog();
  EXPECT_GT(v1, v0);
  EXPECT_EQ(v1, service.catalog_version());
  EXPECT_EQ(service.stats().catalog_refreshes, 1u);

  // Resubmission re-optimizes on the new statistics.
  const uint64_t steps_before = service.stats().steps_executed;
  const QueryResult r3 = service.Wait(service.Submit(q, submit).value());
  ASSERT_EQ(r3.state, QueryState::kDone);
  EXPECT_FALSE(r3.from_cache);
  EXPECT_FALSE(r3.coalesced);
  EXPECT_EQ(r3.catalog_version, v1);
  EXPECT_EQ(service.stats().steps_executed - steps_before,
            static_cast<uint64_t>(iterations));

  const FrontierSnapshot old_reference = SequentialFinalSnapshot(
      q, old_catalog, service_opts, submit.iama, iterations);
  const FrontierSnapshot new_reference = SequentialFinalSnapshot(
      q, w.catalog, service_opts, submit.iama, iterations);
  // The drift is result-affecting (otherwise this test is vacuous).
  ASSERT_NE(FrontierSignature(new_reference.plans),
            FrontierSignature(old_reference.plans));
  ASSERT_EQ(FrontierSignature(r1.frontier.plans),
            FrontierSignature(old_reference.plans));
  ASSERT_EQ(FrontierSignature(r3.frontier.plans),
            FrontierSignature(new_reference.plans));

  // The new-generation frontier is cacheable as usual.
  const QueryResult r4 = service.Wait(service.Submit(q, submit).value());
  EXPECT_TRUE(r4.from_cache);
  EXPECT_EQ(r4.catalog_version, v1);
  ASSERT_EQ(FrontierSignature(r4.frontier.plans),
            FrontierSignature(new_reference.plans));
}

TEST(OptimizerServiceRefreshTest, ReoptimizesOnNewCatalogOneShard) {
  ExpectRefreshReoptimizesOnNewCatalog(1);
}

TEST(OptimizerServiceRefreshTest, ReoptimizesOnNewCatalogTwoShards) {
  ExpectRefreshReoptimizesOnNewCatalog(2);
}

TEST(OptimizerServiceRefreshTest, ReoptimizesOnNewCatalogFourShards) {
  ExpectRefreshReoptimizesOnNewCatalog(4);
}

TEST(OptimizerServiceRefreshTest, LiveRunFinishesOnPinnedSnapshot) {
  // A run admitted before the refresh must complete bit-identical to a
  // cold run on the OLD catalog (it pinned that snapshot at admission),
  // must not fill the cache, and must not accept post-refresh
  // followers; a post-refresh duplicate re-optimizes on the new one.
  Workload w = MakeWorkload(/*num_random=*/1, /*random_tables=*/4);
  CoalescingRig rig(w);  // One shard, parked on the blocker.
  const Query& q = w.queries.front();
  const Catalog old_catalog = w.catalog;
  const uint64_t v0 = rig.service.catalog_version();

  // Admitted (and pinned) pre-refresh; queued behind the blocker.
  const QueryId pinned = rig.service.Submit(q, rig.submit).value();

  const TableId drifted = q.tables.front().table;
  ASSERT_TRUE(w.catalog
                  .UpdateStats(drifted,
                               w.catalog.Get(drifted).cardinality * 64.0)
                  .ok());
  const uint64_t v1 = rig.service.RefreshCatalog();
  ASSERT_GT(v1, v0);

  // A post-refresh duplicate must NOT coalesce onto the stale run: it
  // would get old-catalog results under a new-catalog admission.
  const QueryId fresh = rig.service.Submit(q, rig.submit).value();
  EXPECT_EQ(rig.service.stats().coalesced, 0u);

  rig.ReleaseAndFinishBlocker();
  const QueryResult rp = rig.service.Wait(pinned);
  const QueryResult rf = rig.service.Wait(fresh);

  const FrontierSnapshot old_reference =
      SequentialFinalSnapshot(q, old_catalog, SmallServiceOptions(1),
                              rig.submit.iama, rig.iterations);
  const FrontierSnapshot new_reference =
      SequentialFinalSnapshot(q, w.catalog, SmallServiceOptions(1),
                              rig.submit.iama, rig.iterations);
  ASSERT_NE(FrontierSignature(new_reference.plans),
            FrontierSignature(old_reference.plans));

  ASSERT_EQ(rp.state, QueryState::kDone);
  EXPECT_EQ(rp.catalog_version, v0);
  EXPECT_FALSE(rp.from_cache);
  ASSERT_EQ(FrontierSignature(rp.frontier.plans),
            FrontierSignature(old_reference.plans));

  ASSERT_EQ(rf.state, QueryState::kDone);
  EXPECT_EQ(rf.catalog_version, v1);
  EXPECT_FALSE(rf.from_cache);
  EXPECT_FALSE(rf.coalesced);
  ASSERT_EQ(FrontierSignature(rf.frontier.plans),
            FrontierSignature(new_reference.plans));

  // The stale run never filled the cache: only the fresh run's entry is
  // servable, and it carries the new version.
  const QueryResult again =
      rig.service.Wait(rig.service.Submit(q, rig.submit).value());
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(again.catalog_version, v1);
  ASSERT_EQ(FrontierSignature(again.frontier.plans),
            FrontierSignature(new_reference.plans));
}

TEST(OptimizerServiceRefreshTest, RefreshWithoutMutationIsANoOp) {
  Workload w = MakeWorkload(/*num_random=*/0);
  OptimizerService service(w.catalog, SmallServiceOptions(1));
  const SubmitOptions submit = SmallSubmitOptions();
  const Query& q = w.queries.front();
  const uint64_t v0 = service.catalog_version();
  const QueryResult r1 = service.Wait(service.Submit(q, submit).value());
  ASSERT_EQ(r1.state, QueryState::kDone);
  // No catalog mutation happened: the refresh keeps version, cache, and
  // counters untouched.
  EXPECT_EQ(service.RefreshCatalog(), v0);
  EXPECT_EQ(service.stats().catalog_refreshes, 0u);
  const QueryResult r2 = service.Wait(service.Submit(q, submit).value());
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r2.catalog_version, v0);
}

TEST(CanonicalQueryKeyTest, IgnoresNamesAliasesAndJoinOrientation) {
  const Catalog catalog = MakeTpchCatalog();
  const Query q = TpchQueryBlocks(catalog).front();
  const SubmitOptions submit = SmallSubmitOptions();
  const MetricSchema schema = MetricSchema::Standard3();
  const uint64_t version = catalog.version();
  const std::string base = CanonicalQueryKey(q, schema, submit, version);

  Query renamed = q;
  renamed.name = "other";
  for (TableRef& t : renamed.tables) t.alias += "_z";
  EXPECT_EQ(CanonicalQueryKey(renamed, schema, submit, version), base);

  Query flipped = q;
  std::swap(flipped.joins[0].left, flipped.joins[0].right);
  EXPECT_EQ(CanonicalQueryKey(flipped, schema, submit, version), base);
}

TEST(CanonicalQueryKeyTest, DistinguishesResultAffectingChanges) {
  const Catalog catalog = MakeTpchCatalog();
  const std::vector<Query> blocks = TpchQueryBlocks(catalog);
  const Query q = blocks.front();
  const SubmitOptions submit = SmallSubmitOptions();
  const MetricSchema schema = MetricSchema::Standard3();
  const uint64_t version = catalog.version();
  const std::string base = CanonicalQueryKey(q, schema, submit, version);

  Query different_sel = q;
  different_sel.tables[0].predicate_selectivity *= 0.5;
  EXPECT_NE(CanonicalQueryKey(different_sel, schema, submit, version), base);

  SubmitOptions finer = submit;
  finer.iama.schedule = ResolutionSchedule(7, 1.02, 0.3);
  EXPECT_NE(CanonicalQueryKey(q, schema, finer, version), base);

  SubmitOptions bounded = submit;
  bounded.iama.initial_bounds = CostVector::Infinite(3);
  EXPECT_NE(CanonicalQueryKey(q, schema, bounded, version), base);

  SubmitOptions more_iters = submit;
  more_iters.max_iterations = 11;
  EXPECT_NE(CanonicalQueryKey(q, schema, more_iters, version), base);

  // The catalog version (statistics generation) is result-affecting:
  // the ROADMAP gap this closes — a refresh must make every pre-refresh
  // cache line and in-flight leader unmatchable.
  EXPECT_NE(CanonicalQueryKey(q, schema, submit, version + 1), base);

  // Join *sequence* is result-affecting (interesting-order tags), so two
  // predicates in swapped positions must not share a cache line.
  if (q.joins.size() >= 2 &&
      !(q.joins[0].left == q.joins[1].left &&
        q.joins[0].right == q.joins[1].right)) {
    Query reordered = q;
    std::swap(reordered.joins[0], reordered.joins[1]);
    EXPECT_NE(CanonicalQueryKey(reordered, schema, submit, version), base);
  }
}

}  // namespace
}  // namespace moqo
