#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baseline/exhaustive.h"
#include "baseline/memoryless.h"
#include "baseline/one_shot.h"
#include "baseline/single_objective.h"
#include "pareto/coverage.h"
#include "test_helpers.h"

namespace moqo {
namespace {

TEST(ExhaustiveTest, EnumerationCountsForTwoTableQuery) {
  RandomWorld world = MakeRandomWorld(3, 2, /*sampling=*/false);
  const auto all =
      EnumerateAllPlanCosts(*world.factory, TableSet::Full(2));
  // Every plan = (scan A variant) x (scan B variant) x join op, both join
  // orders.
  size_t scans_a = 0, scans_b = 0;
  world.factory->ForEachScan(0, [&](const OperatorDesc&, const OpCost&) {
    ++scans_a;
  });
  world.factory->ForEachScan(1, [&](const OperatorDesc&, const OpCost&) {
    ++scans_b;
  });
  EXPECT_GT(all.size(), 0u);
  EXPECT_EQ(all.size() % (scans_a * scans_b), 0u);
}

TEST(ExhaustiveTest, ExactParetoMatchesBruteForceFrontier) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    RandomWorld world = MakeRandomWorld(seed, 3, /*sampling=*/false);
    const CostVector inf = CostVector::Infinite(3);
    const ExactParetoResult exact = RunExactPareto(*world.factory, inf);
    const auto all =
        EnumerateAllPlanCosts(*world.factory, TableSet::Full(3));
    // Brute-force frontier over the full enumeration.
    ParetoFrontier brute;
    for (const CostVector& c : all) brute.Insert(c, 0);
    const ParetoFrontier& dp = exact.FinalFrontier(3);
    ASSERT_EQ(dp.size(), brute.size()) << "seed " << seed;
    for (const auto& e : brute.entries()) {
      EXPECT_TRUE(dp.IsDominated(e.cost));
    }
    for (const auto& e : dp.entries()) {
      EXPECT_TRUE(brute.IsDominated(e.cost));
    }
  }
}

TEST(OneShotTest, AlphaOneKeepsFullParetoSet) {
  RandomWorld world = MakeRandomWorld(5, 3, /*sampling=*/false);
  const CostVector inf = CostVector::Infinite(3);
  const OneShotResult result = RunOneShot(*world.factory, 1.0, inf);
  const ExactParetoResult exact = RunExactPareto(*world.factory, inf);
  // Every exact-Pareto cost must be covered exactly by the one-shot set.
  std::vector<CostVector> result_costs;
  for (PlanId id : result.FinalPlans(3)) {
    result_costs.push_back(result.arena.at(id).cost);
  }
  std::vector<CostVector> reference;
  for (const auto& e : exact.FinalFrontier(3).entries()) {
    reference.push_back(e.cost);
  }
  const auto report = CheckCoverage(result_costs, reference, 1.0, inf);
  EXPECT_TRUE(report.covered);
  EXPECT_EQ(report.violations, 0);
}

class OneShotGuarantee : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OneShotGuarantee, AlphaPowNCoverageVsExhaustive) {
  // The one-shot scheme guarantees an α^n-approximate Pareto plan set
  // (Trummer & Koch 2014). Verified against full plan enumeration, with
  // sampling disabled so the PONO is exact.
  const int n = 3;
  RandomWorld world = MakeRandomWorld(GetParam(), n, /*sampling=*/false);
  const CostVector inf = CostVector::Infinite(3);
  for (double alpha : {1.05, 1.25, 2.0}) {
    const OneShotResult result = RunOneShot(*world.factory, alpha, inf);
    std::vector<CostVector> result_costs;
    for (PlanId id : result.FinalPlans(n)) {
      result_costs.push_back(result.arena.at(id).cost);
    }
    const auto all =
        EnumerateAllPlanCosts(*world.factory, TableSet::Full(n));
    const auto report = CheckCoverage(result_costs, all,
                                      std::pow(alpha, n), inf);
    EXPECT_TRUE(report.covered)
        << "alpha=" << alpha << " violations=" << report.violations
        << " worst=" << report.worst_factor;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneShotGuarantee,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(OneShotTest, LargerAlphaYieldsSmallerResultSets) {
  RandomWorld world = MakeRandomWorld(6, 4, /*sampling=*/true);
  const CostVector inf = CostVector::Infinite(3);
  const size_t fine = RunOneShot(*world.factory, 1.01, inf).FinalPlans(4).size();
  const size_t coarse =
      RunOneShot(*world.factory, 1.5, inf).FinalPlans(4).size();
  EXPECT_GE(fine, coarse);
  EXPECT_GE(coarse, 1u);
}

TEST(OneShotTest, BoundsRestrictResults) {
  RandomWorld world = MakeRandomWorld(7, 3, /*sampling=*/true);
  const CostVector inf = CostVector::Infinite(3);
  const OneShotResult unbounded = RunOneShot(*world.factory, 1.05, inf);
  ASSERT_FALSE(unbounded.FinalPlans(3).empty());
  // Bound time to the minimum achievable: only plans at that time survive.
  double min_time = std::numeric_limits<double>::infinity();
  for (PlanId id : unbounded.FinalPlans(3)) {
    min_time = std::min(min_time, unbounded.arena.at(id).cost[0]);
  }
  CostVector bounds = CostVector::Infinite(3);
  bounds[0] = min_time * 1.01;
  const OneShotResult bounded = RunOneShot(*world.factory, 1.05, bounds);
  EXPECT_LE(bounded.FinalPlans(3).size(), unbounded.FinalPlans(3).size());
  for (PlanId id : bounded.FinalPlans(3)) {
    EXPECT_LE(bounded.arena.at(id).cost[0], bounds[0]);
  }
}

TEST(MemorylessTest, ProducesOneShotSequence) {
  RandomWorld world = MakeRandomWorld(8, 3, /*sampling=*/true);
  const ResolutionSchedule schedule(5, 1.01, 0.1);
  const MemorylessDriver driver(*world.factory, schedule);
  const CostVector inf = CostVector::Infinite(3);
  size_t prev_size = 0;
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    const OneShotResult step = driver.RunInvocation(r, inf);
    const OneShotResult direct =
        RunOneShot(*world.factory, schedule.Alpha(r), inf);
    EXPECT_EQ(step.FinalPlans(3).size(), direct.FinalPlans(3).size());
    // Result sets grow (weakly) as the precision refines.
    EXPECT_GE(step.FinalPlans(3).size(), prev_size == 0 ? 0 : prev_size / 2);
    prev_size = step.FinalPlans(3).size();
  }
}

TEST(SingleObjectiveTest, MatchesBruteForceMinimumTime) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    RandomWorld world = MakeRandomWorld(seed, 3, /*sampling=*/false);
    const SingleObjectiveResult best = MinimizeMetric(*world.factory, 0);
    ASSERT_NE(best.best_plan, kInvalidPlan);
    const auto all =
        EnumerateAllPlanCosts(*world.factory, TableSet::Full(3));
    double brute = std::numeric_limits<double>::infinity();
    for (const CostVector& c : all) brute = std::min(brute, c[0]);
    // Time aggregates additively, so DP over subsets is exactly optimal.
    EXPECT_NEAR(best.best_cost[0], brute, 1e-9 * brute) << "seed " << seed;
  }
}

TEST(SingleObjectiveTest, WeightedObjectiveReturnsPlan) {
  RandomWorld world = MakeRandomWorld(30, 4, /*sampling=*/true);
  const SingleObjectiveResult r =
      RunSingleObjective(*world.factory, {1.0, 10.0, 100.0});
  EXPECT_NE(r.best_plan, kInvalidPlan);
  EXPECT_GT(r.best_value, 0.0);
  EXPECT_GT(r.plans_generated, 0u);
}

}  // namespace
}  // namespace moqo
