#include <gtest/gtest.h>

#include "core/resolution.h"

namespace moqo {
namespace {

TEST(ResolutionScheduleTest, PaperFormula) {
  // α_r = α_T + α_S (rM − r)/rM with α_T = 1.01, α_S = 0.05, rM = 4.
  ResolutionSchedule s(5, 1.01, 0.05);
  EXPECT_EQ(s.MaxResolution(), 4);
  EXPECT_DOUBLE_EQ(s.Alpha(0), 1.06);
  EXPECT_DOUBLE_EQ(s.Alpha(4), 1.01);
  EXPECT_DOUBLE_EQ(s.Alpha(2), 1.01 + 0.05 * 0.5);
}

TEST(ResolutionScheduleTest, AlphasStrictlyDecreaseWithResolution) {
  for (int levels : {2, 5, 20}) {
    ResolutionSchedule s(levels, 1.005, 0.5);
    for (int r = 1; r <= s.MaxResolution(); ++r) {
      EXPECT_LT(s.Alpha(r), s.Alpha(r - 1));
      EXPECT_GT(s.Alpha(r), 1.0);
    }
  }
}

TEST(ResolutionScheduleTest, SingleLevelUsesTargetPrecision) {
  ResolutionSchedule s(1, 1.01, 0.05);
  EXPECT_EQ(s.MaxResolution(), 0);
  EXPECT_DOUBLE_EQ(s.Alpha(0), 1.01);
}

TEST(ResolutionScheduleTest, GeometricEndpointsMatchLinear) {
  const ResolutionSchedule lin(20, 1.005, 0.5);
  const ResolutionSchedule geo =
      ResolutionSchedule::Geometric(20, 1.005, 0.5);
  EXPECT_NEAR(geo.Alpha(0), lin.Alpha(0), 1e-12);
  EXPECT_NEAR(geo.Alpha(19), lin.Alpha(19), 1e-12);
  // Strictly decreasing, and coarser than linear in the middle (the
  // geometric sequence spends more levels near the fine end).
  for (int r = 1; r <= 19; ++r) {
    EXPECT_LT(geo.Alpha(r), geo.Alpha(r - 1));
  }
  EXPECT_LT(geo.Alpha(10), lin.Alpha(10));
}

TEST(ResolutionScheduleTest, GeometricConstantRatioSteps) {
  const ResolutionSchedule geo =
      ResolutionSchedule::Geometric(10, 1.01, 0.4);
  const double ratio0 = (geo.Alpha(1) - 1.0) / (geo.Alpha(0) - 1.0);
  for (int r = 2; r <= 9; ++r) {
    const double ratio = (geo.Alpha(r) - 1.0) / (geo.Alpha(r - 1) - 1.0);
    EXPECT_NEAR(ratio, ratio0, 1e-9);
  }
}

TEST(ResolutionScheduleTest, NamedConfigurationsMatchPaper) {
  const ResolutionSchedule moderate = ResolutionSchedule::Moderate(20);
  EXPECT_DOUBLE_EQ(moderate.alpha_target(), 1.01);
  EXPECT_DOUBLE_EQ(moderate.alpha_step(), 0.05);
  const ResolutionSchedule fine = ResolutionSchedule::Fine(20);
  EXPECT_DOUBLE_EQ(fine.alpha_target(), 1.005);
  EXPECT_DOUBLE_EQ(fine.alpha_step(), 0.5);
}

}  // namespace
}  // namespace moqo
