// End-to-end tests on the TPC-H workload: every query block is optimized
// by IAMA through a full resolution schedule and cross-checked against the
// one-shot baseline.
#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baseline/one_shot.h"
#include "baseline/single_objective.h"
#include "catalog/tpch.h"
#include "core/iama.h"
#include "pareto/coverage.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"
#include "test_helpers.h"

namespace moqo {
namespace {

OperatorOptions IntegrationOperatorOptions() {
  OperatorOptions options;
  options.max_workers = 4;
  options.max_sampling_rates_per_table = 2;
  return options;
}

class TpchBlockTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchBlockTest, FullSessionOnEveryBlockOfSize) {
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, GetParam());
  ASSERT_FALSE(blocks.empty());
  for (const Query& query : blocks) {
    const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                              CostModelParams{},
                              IntegrationOperatorOptions());
    IamaOptions options;
    options.schedule = ResolutionSchedule(5, 1.05, 0.2);
    IamaSession session(factory, options);
    NoInteractionPolicy policy;
    FrontierSnapshot last;
    session.Run(&policy, options.schedule.NumLevels(),
                [&](const FrontierSnapshot& s) { last = s; });

    // The final frontier is non-empty and mutually non-redundant costs.
    EXPECT_FALSE(last.plans.empty()) << query.name;
    // Every result plan joins all tables and has sane cost.
    for (const auto& e : last.plans) {
      const PlanNode& node = session.optimizer().arena().at(e.id);
      EXPECT_EQ(node.tables, query.AllTables()) << query.name;
      EXPECT_TRUE(e.cost.IsFinite());
      EXPECT_TRUE(e.cost.IsNonNegative());
    }
    // Lemma 5 bookkeeping holds.
    EXPECT_EQ(session.optimizer().arena().size(),
              session.optimizer().counters().plans_generated)
        << query.name;

    // Cross-check against the one-shot baseline at target precision:
    // IAMA's final result must cover every one-shot result plan within
    // the sampled-model guarantee factor and vice versa.
    const double alpha = options.schedule.alpha_target();
    const double factor = std::pow(alpha, 2 * query.NumTables());
    const CostVector inf = CostVector::Infinite(3);
    const OneShotResult one_shot = RunOneShot(factory, alpha, inf);
    std::vector<CostVector> os_costs;
    for (PlanId id : one_shot.FinalPlans(query.NumTables())) {
      os_costs.push_back(one_shot.arena.at(id).cost);
    }
    const auto iama_costs = CostsOf(last.plans);
    EXPECT_TRUE(CheckCoverage(iama_costs, os_costs, factor, inf).covered)
        << query.name << ": IAMA does not cover one-shot";
    EXPECT_TRUE(CheckCoverage(os_costs, iama_costs, factor, inf).covered)
        << query.name << ": one-shot does not cover IAMA";
  }
}

INSTANTIATE_TEST_SUITE_P(TableCounts, TpchBlockTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(TpchIntegrationTest, Q3FrontierShowsRealTradeoffs) {
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 3);
  const Query* q3 = nullptr;
  for (const Query& q : blocks) {
    if (q.name == "q3") q3 = &q;
  }
  ASSERT_NE(q3, nullptr);
  const PlanFactory factory(*q3, catalog, MetricSchema::Standard3(),
                            CostModelParams{}, IntegrationOperatorOptions());
  IamaOptions options;
  options.schedule = ResolutionSchedule(8, 1.01, 0.3);
  IamaSession session(factory, options);
  NoInteractionPolicy policy;
  FrontierSnapshot last;
  session.Run(&policy, 8, [&](const FrontierSnapshot& s) { last = s; });

  // The frontier must expose a real time/cores tradeoff and a real
  // time/precision tradeoff.
  double min_time = std::numeric_limits<double>::infinity();
  double max_time = 0.0;
  bool has_exact = false, has_sampled = false;
  bool has_serial = false, has_parallel = false;
  for (const auto& e : last.plans) {
    min_time = std::min(min_time, e.cost[0]);
    max_time = std::max(max_time, e.cost[0]);
    if (e.cost[2] == 0.0) has_exact = true;
    if (e.cost[2] > 0.0) has_sampled = true;
    if (e.cost[1] <= 1.0) has_serial = true;
    if (e.cost[1] > 1.0) has_parallel = true;
  }
  EXPECT_LT(min_time, max_time);
  EXPECT_TRUE(has_exact);
  EXPECT_TRUE(has_sampled);
  EXPECT_TRUE(has_serial);
  EXPECT_TRUE(has_parallel);
}

TEST(TpchIntegrationTest, PlanPrinterRendersFrontierPlans) {
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 3);
  ASSERT_FALSE(blocks.empty());
  const Query& query = blocks[0];
  const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                            CostModelParams{}, IntegrationOperatorOptions());
  IamaOptions options;
  options.schedule = ResolutionSchedule(2, 1.05, 0.2);
  IamaSession session(factory, options);
  const FrontierSnapshot snap = session.Step();
  ASSERT_FALSE(snap.plans.empty());
  const std::string rendered = PlanToString(
      session.optimizer().arena(), snap.plans[0].id, query);
  EXPECT_NE(rendered.find("("), std::string::npos);
  const std::string tree = PlanToTreeString(
      session.optimizer().arena(), snap.plans[0].id, query);
  EXPECT_NE(tree.find("rows="), std::string::npos);
}

TEST(TpchIntegrationTest, InteractiveScenarioOnQ5) {
  // A realistic interactive session on a 6-table query: coarse pass,
  // tighten cores, refine, relax, refine to the end. Exercises candidate
  // parking/revival at TPC-H scale.
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 6);
  const Query* q5 = nullptr;
  for (const Query& q : blocks) {
    if (q.name == "q5") q5 = &q;
  }
  ASSERT_NE(q5, nullptr);
  const PlanFactory factory(*q5, catalog, MetricSchema::Standard3(),
                            CostModelParams{}, IntegrationOperatorOptions());
  IamaOptions options;
  options.schedule = ResolutionSchedule(4, 1.05, 0.2);
  IamaSession session(factory, options);

  CostVector serial_only = CostVector::Infinite(3);
  serial_only[1] = 1.0;
  const CostVector inf = CostVector::Infinite(3);
  ScriptedPolicy policy({{2, UserAction::SetBounds(serial_only)},
                         {4, UserAction::SetBounds(inf)}});
  std::vector<FrontierSnapshot> snaps;
  session.Run(&policy, 8, [&](const FrontierSnapshot& s) {
    snaps.push_back(s);
  });
  ASSERT_EQ(snaps.size(), 8u);
  // While bounded, only single-core plans appear.
  for (const auto& e : snaps[2].plans) EXPECT_LE(e.cost[1], 1.0);
  // After relaxing, parallel plans reappear.
  bool parallel_after_relax = false;
  for (const auto& e : snaps.back().plans) {
    if (e.cost[1] > 1.0) parallel_after_relax = true;
  }
  EXPECT_TRUE(parallel_after_relax);
  EXPECT_EQ(session.optimizer().arena().size(),
            session.optimizer().counters().plans_generated);
}

TEST(TpchIntegrationTest, MinTimePlanCompetitiveWithSingleObjectiveDp) {
  const Catalog catalog = MakeTpchCatalog();
  for (const Query& query : TpchBlocksWithTables(catalog, 4)) {
    const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                              CostModelParams{},
                              IntegrationOperatorOptions());
    IamaOptions options;
    options.schedule = ResolutionSchedule(5, 1.01, 0.2);
    IamaSession session(factory, options);
    NoInteractionPolicy policy;
    FrontierSnapshot last;
    session.Run(&policy, 5, [&](const FrontierSnapshot& s) { last = s; });
    const SingleObjectiveResult best = MinimizeMetric(factory, 0);
    double iama_min = std::numeric_limits<double>::infinity();
    for (const auto& e : last.plans) iama_min = std::min(iama_min, e.cost[0]);
    // Sampled model: allow the relaxed guarantee factor.
    const double factor =
        std::pow(options.schedule.alpha_target(), 2 * query.NumTables());
    EXPECT_LE(iama_min, best.best_cost[0] * factor * (1.0 + 1e-9))
        << query.name;
  }
}

}  // namespace
}  // namespace moqo
