#include <cmath>

#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "plan/cost_model.h"
#include "query/generator.h"
#include "query/tpch_queries.h"
#include "util/rng.h"

namespace moqo {
namespace {

TableDef BigTable() { return {"big", 1000000.0, 100.0, true}; }

CostModel MakeModel(MetricSchema schema = MetricSchema::Standard3()) {
  return CostModel(std::move(schema), CostModelParams{});
}

TEST(ScanCostTest, FullSeqScanHasZeroError) {
  const CostModel model = MakeModel();
  const OpCost oc = model.ScanCost(
      BigTable(), 1.0, OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0));
  const int err = model.schema().IndexOf(MetricId::kPrecisionError);
  EXPECT_DOUBLE_EQ(oc.cost[err], 0.0);
  EXPECT_DOUBLE_EQ(oc.output_rows, 1000000.0);
  EXPECT_GT(oc.cost[model.schema().IndexOf(MetricId::kTime)], 0.0);
}

TEST(ScanCostTest, SamplingTradesTimeForError) {
  const CostModel model = MakeModel();
  const TableDef t = BigTable();
  const OpCost full =
      model.ScanCost(t, 1.0, OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0));
  const OpCost sampled = model.ScanCost(
      t, 1.0, OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 0.0625));
  const int time = model.schema().IndexOf(MetricId::kTime);
  const int err = model.schema().IndexOf(MetricId::kPrecisionError);
  EXPECT_LT(sampled.cost[time], full.cost[time]);
  EXPECT_GT(sampled.cost[err], full.cost[err]);
  EXPECT_LT(sampled.output_rows, full.output_rows);
  EXPECT_LE(sampled.cost[err], 1.0);
}

TEST(ScanCostTest, CoarserSamplesHaveLargerError) {
  const CostModel model = MakeModel();
  const TableDef t = BigTable();
  const int err = model.schema().IndexOf(MetricId::kPrecisionError);
  double prev = 0.0;
  for (double rate : {0.25, 0.0625, 0.015625}) {
    const OpCost oc = model.ScanCost(
        t, 1.0, OperatorDesc::Scan(ScanAlg::kSeqScan, 1, rate));
    EXPECT_GT(oc.cost[err], prev);
    prev = oc.cost[err];
  }
}

TEST(ScanCostTest, ParallelismTradesTimeForCores) {
  const CostModel model = MakeModel();
  const TableDef t = BigTable();
  const int time = model.schema().IndexOf(MetricId::kTime);
  const int cores = model.schema().IndexOf(MetricId::kCores);
  const OpCost w1 =
      model.ScanCost(t, 1.0, OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0));
  const OpCost w8 =
      model.ScanCost(t, 1.0, OperatorDesc::Scan(ScanAlg::kSeqScan, 8, 1.0));
  EXPECT_LT(w8.cost[time], w1.cost[time]);
  EXPECT_DOUBLE_EQ(w1.cost[cores], 1.0);
  EXPECT_DOUBLE_EQ(w8.cost[cores], 8.0);
}

TEST(ScanCostTest, ParallelismIncreasesFees) {
  const CostModel model = MakeModel(MetricSchema::Cloud2());
  const TableDef t = BigTable();
  const int fees = model.schema().IndexOf(MetricId::kFees);
  const OpCost w1 =
      model.ScanCost(t, 1.0, OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0));
  const OpCost w8 =
      model.ScanCost(t, 1.0, OperatorDesc::Scan(ScanAlg::kSeqScan, 8, 1.0));
  EXPECT_GT(w8.cost[fees], w1.cost[fees]);
}

TEST(ScanCostTest, IndexScanWinsForSelectivePredicates) {
  const CostModel model = MakeModel();
  const TableDef t = BigTable();
  const int time = model.schema().IndexOf(MetricId::kTime);
  const auto seq = OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0);
  const auto idx = OperatorDesc::Scan(ScanAlg::kIndexScan, 1, 1.0);
  // Selective predicate: index wins.
  EXPECT_LT(model.ScanCost(t, 0.0001, idx).cost[time],
            model.ScanCost(t, 0.0001, seq).cost[time]);
  // Non-selective predicate: sequential wins.
  EXPECT_GT(model.ScanCost(t, 1.0, idx).cost[time],
            model.ScanCost(t, 1.0, seq).cost[time]);
}

// Builds a two-level plan by hand to exercise JoinCost.
struct JoinFixture {
  CostModel model = MakeModel();
  PlanNode left;
  PlanNode right;
  JoinFixture() {
    const OpCost l = model.ScanCost(
        BigTable(), 0.01, OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0));
    const OpCost r = model.ScanCost(
        {"dim", 1000.0, 100.0, true}, 1.0,
        OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0));
    left.tables = TableSet::Singleton(0);
    left.op = OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0);
    left.cost = l.cost;
    left.output_cardinality = l.output_rows;
    right.tables = TableSet::Singleton(1);
    right.op = OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0);
    right.cost = r.cost;
    right.output_cardinality = r.output_rows;
  }
};

TEST(JoinCostTest, MonotoneAggregation) {
  // Paper §5.1 requires the cost of a plan to be >= the cost of each
  // sub-plan in every metric.
  JoinFixture f;
  for (JoinAlg alg : {JoinAlg::kHashJoin, JoinAlg::kSortMergeJoin,
                      JoinAlg::kBlockNestedLoop}) {
    for (int w : {1, 4}) {
      const OpCost oc =
          f.model.JoinCost(f.left, f.right, 0.001, OperatorDesc::Join(alg, w));
      for (int i = 0; i < f.model.schema().dims(); ++i) {
        EXPECT_GE(oc.cost[i], f.left.cost[i]) << "metric " << i;
        EXPECT_GE(oc.cost[i], f.right.cost[i]) << "metric " << i;
      }
    }
  }
}

TEST(JoinCostTest, OutputCardinalityUsesSelectivity) {
  JoinFixture f;
  const OpCost oc = f.model.JoinCost(f.left, f.right, 0.001,
                                     OperatorDesc::Join(JoinAlg::kHashJoin, 1));
  EXPECT_DOUBLE_EQ(oc.output_rows,
                   f.left.output_cardinality * f.right.output_cardinality *
                       0.001);
}

TEST(JoinCostTest, CoresAreMaxOfChildrenAndOwnWorkers) {
  JoinFixture f;
  const int cores = f.model.schema().IndexOf(MetricId::kCores);
  f.left.cost[cores] = 4.0;
  f.right.cost[cores] = 2.0;
  const OpCost w1 = f.model.JoinCost(f.left, f.right, 0.001,
                                     OperatorDesc::Join(JoinAlg::kHashJoin, 1));
  EXPECT_DOUBLE_EQ(w1.cost[cores], 4.0);
  const OpCost w8 = f.model.JoinCost(f.left, f.right, 0.001,
                                     OperatorDesc::Join(JoinAlg::kHashJoin, 8));
  EXPECT_DOUBLE_EQ(w8.cost[cores], 8.0);
}

TEST(JoinCostTest, ErrorPropagatesWithInflation) {
  JoinFixture f;
  const int err = f.model.schema().IndexOf(MetricId::kPrecisionError);
  f.left.cost[err] = 0.1;
  f.right.cost[err] = 0.05;
  const OpCost oc = f.model.JoinCost(f.left, f.right, 0.001,
                                     OperatorDesc::Join(JoinAlg::kHashJoin, 1));
  EXPECT_DOUBLE_EQ(oc.cost[err],
                   0.1 * f.model.params().join_error_inflation);
  // Error is capped at 1.
  f.left.cost[err] = 0.99;
  const OpCost capped = f.model.JoinCost(
      f.left, f.right, 0.001, OperatorDesc::Join(JoinAlg::kHashJoin, 1));
  EXPECT_DOUBLE_EQ(capped.cost[err], 1.0);
}

// --- The PONO property on the full cost model. ---
//
// With sampling disabled, every plan for a table set has the same output
// cardinality, so plan cost is a pure function of the sub-plan cost
// vectors and the PONO of paper Definition 1 holds exactly. The property
// test substitutes randomly weakened sub-plan costs and verifies the
// aggregated cost is weakened by at most the same factor.
TEST(PonoModelTest, ExactForAllJoinOperatorsWithoutSampling) {
  Rng rng(77);
  const CostModel model = MakeModel();
  JoinFixture f;
  for (int trial = 0; trial < 500; ++trial) {
    const double alpha = 1.0 + rng.NextDouble();
    PlanNode weak_left = f.left;
    PlanNode weak_right = f.right;
    for (int i = 0; i < model.schema().dims(); ++i) {
      weak_left.cost[i] *= rng.UniformDouble(1.0, alpha);
      weak_right.cost[i] *= rng.UniformDouble(1.0, alpha);
    }
    const JoinAlg alg = static_cast<JoinAlg>(rng.Uniform(3));
    const int w = 1 << rng.Uniform(4);
    const OperatorDesc op = OperatorDesc::Join(alg, w);
    const OpCost base = model.JoinCost(f.left, f.right, 0.001, op);
    const OpCost weak = model.JoinCost(weak_left, weak_right, 0.001, op);
    for (int i = 0; i < model.schema().dims(); ++i) {
      EXPECT_LE(weak.cost[i], alpha * base.cost[i] + 1e-9)
          << "metric " << i << " alg " << static_cast<int>(alg);
    }
  }
}

TEST(OperatorsTest, ScanAlternativesCoverAlgorithmsAndRates) {
  OperatorOptions options;
  options.max_workers = 4;
  options.max_sampling_rates_per_table = 2;
  const auto alts = ScanAlternatives(BigTable(), options);
  int seq = 0, idx = 0, sampled = 0;
  for (const OperatorDesc& op : alts) {
    EXPECT_TRUE(op.is_scan);
    if (op.scan_alg() == ScanAlg::kSeqScan) ++seq;
    if (op.scan_alg() == ScanAlg::kIndexScan) {
      ++idx;
      EXPECT_EQ(op.workers, 1);  // Index scans are single-threaded.
    }
    if (op.sampling_permille != 1000) ++sampled;
  }
  EXPECT_GT(seq, 0);
  EXPECT_GT(idx, 0);
  EXPECT_GT(sampled, 0);
}

TEST(OperatorsTest, NoIndexScanWithoutIndex) {
  OperatorOptions options;
  TableDef t = BigTable();
  t.has_index = false;
  for (const OperatorDesc& op : ScanAlternatives(t, options)) {
    EXPECT_NE(op.scan_alg(), ScanAlg::kIndexScan);
  }
}

TEST(OperatorsTest, NestedLoopOnlyForSmallInputs) {
  OperatorOptions options;
  bool has_nl_small = false;
  for (const OperatorDesc& op : JoinAlternatives(100.0, 1e8, options)) {
    if (op.join_alg() == JoinAlg::kBlockNestedLoop) has_nl_small = true;
  }
  EXPECT_TRUE(has_nl_small);
  for (const OperatorDesc& op : JoinAlternatives(1e8, 1e8, options)) {
    EXPECT_NE(op.join_alg(), JoinAlg::kBlockNestedLoop);
  }
}

TEST(OperatorsTest, ToStringRendersVariants) {
  EXPECT_EQ(OperatorDesc::Scan(ScanAlg::kSeqScan, 1, 1.0).ToString(),
            "SeqScan");
  EXPECT_EQ(OperatorDesc::Scan(ScanAlg::kSeqScan, 4, 0.25).ToString(),
            "SeqScan(sample=25.0%)[w=4]");
  EXPECT_EQ(OperatorDesc::Join(JoinAlg::kHashJoin, 8).ToString(),
            "HashJoin[w=8]");
}

TEST(PlanFactoryTest, CanCombineRequiresEdgeAndConnectivity) {
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 3);
  ASSERT_FALSE(blocks.empty());
  const PlanFactory factory(blocks[0], catalog, MetricSchema::Standard3());
  // q3: c - o - l chain (c=0, o=1, l=2).
  EXPECT_TRUE(factory.CanCombine(TableSet(0b001), TableSet(0b010)));
  EXPECT_FALSE(factory.CanCombine(TableSet(0b001), TableSet(0b100)));
  EXPECT_FALSE(factory.CanCombine(TableSet(0b011), TableSet(0b010)));
  EXPECT_TRUE(factory.CanCombine(TableSet(0b011), TableSet(0b100)));
}

TEST(PlanFactoryTest, ForEachScanYieldsAllAlternatives) {
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 2);
  ASSERT_FALSE(blocks.empty());
  OperatorOptions op_options;
  const PlanFactory factory(blocks[0], catalog, MetricSchema::Standard3(),
                            CostModelParams{}, op_options);
  int count = 0;
  factory.ForEachScan(0, [&](const OperatorDesc& op, const OpCost& oc) {
    EXPECT_TRUE(op.is_scan);
    EXPECT_TRUE(oc.cost.IsFinite());
    EXPECT_TRUE(oc.cost.IsNonNegative());
    EXPECT_GE(oc.output_rows, 1.0);
    ++count;
  });
  const TableDef& table =
      catalog.Get(blocks[0].tables[0].table);
  EXPECT_EQ(static_cast<size_t>(count),
            ScanAlternatives(table, op_options).size());
}

}  // namespace
}  // namespace moqo
