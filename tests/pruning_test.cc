#include <gtest/gtest.h>

#include "core/pruning.h"

namespace moqo {
namespace {

// Schedule with rM = 3 and precision factors α = {2.1, 1.8, 1.5, 1.2}.
ResolutionSchedule TestSchedule() {
  return ResolutionSchedule(4, 1.2, 0.9);
}

struct PruneFixture {
  CellIndex res{2};
  CellIndex cand{2};
  Counters counters;
  CostVector inf = CostVector::Infinite(2);
  ResolutionSchedule schedule = TestSchedule();

  PruneOutcome Call(const CostVector& bounds, int r, uint32_t id,
                    const CostVector& cost,
                    bool park_next_level_only = false, int order = 0) {
    return Prune(res, cand, bounds, r, /*compare_resolution=*/r, schedule,
                 id, cost, order, /*invocation=*/1, park_next_level_only,
                 &counters);
  }
};

TEST(PruneTest, ScheduleFactorsAreAsExpected) {
  const ResolutionSchedule s = TestSchedule();
  EXPECT_DOUBLE_EQ(s.Alpha(0), 2.1);
  EXPECT_DOUBLE_EQ(s.Alpha(1), 1.8);
  EXPECT_DOUBLE_EQ(s.Alpha(2), 1.5);
  EXPECT_DOUBLE_EQ(s.Alpha(3), 1.2);
}

TEST(PruneTest, FirstPlanIsInserted) {
  PruneFixture f;
  EXPECT_EQ(f.Call(f.inf, 0, 1, CostVector{10.0, 10.0}),
            PruneOutcome::kInsertedResult);
  EXPECT_EQ(f.res.size(), 1u);
  EXPECT_EQ(f.cand.size(), 0u);
  EXPECT_EQ(f.counters.result_insertions, 1u);
}

TEST(PruneTest, StrictlyDominatedPlanDiscardedImmediately) {
  // Skip-ahead parking: a plan dominated outright (α* <= 1) can never
  // enter any result set, so it is discarded instead of being re-examined
  // at every finer resolution.
  PruneFixture f;
  f.Call(f.inf, 0, 1, CostVector{10.0, 10.0});
  EXPECT_EQ(f.Call(f.inf, 0, 2, CostVector{12.0, 12.0}),
            PruneOutcome::kDiscarded);
  EXPECT_EQ(f.cand.size(), 0u);
  EXPECT_EQ(f.counters.plans_discarded, 1u);
}

TEST(PruneTest, ApproximatedPlanParkedAtFirstRelevantResolution) {
  PruneFixture f;
  f.Call(f.inf, 0, 1, CostVector{10.0, 10.0});
  // (7, 10): covered by (10, 10) with exact factor α* = 10/7 ≈ 1.43.
  // α_0 = 2.1 dominates it now; the first level with α < 1.43 is level 3
  // (α_3 = 1.2), so the plan parks directly at resolution 3, skipping
  // levels 1 and 2.
  EXPECT_EQ(f.Call(f.inf, 0, 2, CostVector{7.0, 10.0}),
            PruneOutcome::kParkedForHigherResolution);
  EXPECT_EQ(f.cand.size(), 1u);
  EXPECT_FALSE(f.cand.AnyInRange(f.inf, 2));
  EXPECT_TRUE(f.cand.AnyInRange(f.inf, 3));
}

TEST(PruneTest, PaperLiteralParkingUsesNextLevel) {
  PruneFixture f;
  f.Call(f.inf, 0, 1, CostVector{10.0, 10.0});
  EXPECT_EQ(f.Call(f.inf, 0, 2, CostVector{7.0, 10.0},
                   /*park_next_level_only=*/true),
            PruneOutcome::kParkedForHigherResolution);
  // Parked at r+1 = 1 under the paper-literal policy.
  EXPECT_TRUE(f.cand.AnyInRange(f.inf, 1));
}

TEST(PruneTest, PaperLiteralParkingDiscardsAtMaxResolution) {
  PruneFixture f;
  f.Call(f.inf, 3, 1, CostVector{10.0, 10.0});
  EXPECT_EQ(f.Call(f.inf, 3, 2, CostVector{9.5, 10.0},
                   /*park_next_level_only=*/true),
            PruneOutcome::kDiscarded);
  EXPECT_EQ(f.cand.size(), 0u);
}

TEST(PruneTest, NotCoveredAtFinalResolutionInserted) {
  PruneFixture f;
  f.Call(f.inf, 3, 1, CostVector{10.0, 10.0});
  // α_3 = 1.2; (8, 10) is not covered (10 > 1.2 * 8): inserted.
  EXPECT_EQ(f.Call(f.inf, 3, 2, CostVector{8.0, 10.0}),
            PruneOutcome::kInsertedResult);
  EXPECT_EQ(f.res.size(), 2u);
}

TEST(PruneTest, BoundsExceederParkedAtCurrentResolution) {
  PruneFixture f;
  const CostVector bounds{5.0, 5.0};
  EXPECT_EQ(f.Call(bounds, 2, 1, CostVector{10.0, 3.0}),
            PruneOutcome::kParkedForDifferentBounds);
  EXPECT_EQ(f.res.size(), 0u);
  // Parked at the *current* resolution (2), so a future invocation with
  // relaxed bounds and r = 2 reconsiders it.
  EXPECT_FALSE(f.cand.AnyInRange(f.inf, 1));
  EXPECT_TRUE(f.cand.AnyInRange(f.inf, 2));
}

TEST(PruneTest, DistinctTradeoffsBothInserted) {
  PruneFixture f;
  EXPECT_EQ(f.Call(f.inf, 3, 1, CostVector{10.0, 1.0}),
            PruneOutcome::kInsertedResult);
  EXPECT_EQ(f.Call(f.inf, 3, 2, CostVector{1.0, 10.0}),
            PruneOutcome::kInsertedResult);
  EXPECT_EQ(f.res.size(), 2u);
}

TEST(PruneTest, CoarserResolutionPrunesMoreAggressively) {
  // (8, 14) vs (10, 10): covered at α_0 = 2.1 (10 <= 16.8 and 10 <= 29.4)
  // but not at α_3 = 1.2 (10 > 9.6).
  PruneFixture coarse;
  coarse.Call(coarse.inf, 0, 1, CostVector{10.0, 10.0});
  EXPECT_EQ(coarse.Call(coarse.inf, 0, 2, CostVector{8.0, 14.0}),
            PruneOutcome::kParkedForHigherResolution);

  PruneFixture fine;
  fine.Call(fine.inf, 3, 1, CostVector{10.0, 10.0});
  EXPECT_EQ(fine.Call(fine.inf, 3, 2, CostVector{8.0, 14.0}),
            PruneOutcome::kInsertedResult);
}

TEST(PruneTest, DominatedResultPlansAreNotDiscarded) {
  // §4.2 design decision: inserting a better plan never removes existing
  // result plans (they may be sub-plans of other plans).
  PruneFixture f;
  f.Call(f.inf, 0, 1, CostVector{100.0, 100.0});
  EXPECT_EQ(f.Call(f.inf, 0, 2, CostVector{1.0, 1.0}),
            PruneOutcome::kInsertedResult);
  EXPECT_EQ(f.res.size(), 2u);
}

TEST(PruneTest, ComparesOnlyAgainstLowerOrEqualResolution) {
  // §4.2 design decision: a plan pruned at resolution r is only compared
  // with result plans inserted at resolution <= r.
  PruneFixture f;
  // Insert a strong plan at resolution 2.
  f.Call(f.inf, 2, 1, CostVector{1.0, 1.0});
  // At resolution 0, that plan is invisible: the weak plan is inserted
  // even though a dominating plan exists at higher resolution.
  EXPECT_EQ(f.Call(f.inf, 0, 2, CostVector{50.0, 50.0}),
            PruneOutcome::kInsertedResult);
  // At resolution 2 the strong plan is visible: a weak plan is discarded
  // (it is strictly dominated).
  EXPECT_EQ(f.Call(f.inf, 2, 3, CostVector{60.0, 60.0}),
            PruneOutcome::kDiscarded);
}

TEST(PruneTest, UnrestrictedComparisonAblationSeesAllResolutions) {
  PruneFixture f;
  f.Call(f.inf, 2, 1, CostVector{1.0, 1.0});
  // With compare_resolution = rM the resolution-2 plan is visible even
  // when pruning at resolution 0.
  EXPECT_EQ(Prune(f.res, f.cand, f.inf, /*resolution=*/0,
                  /*compare_resolution=*/3, f.schedule, 2,
                  CostVector{50.0, 50.0}, /*order=*/0, 1, false,
                  &f.counters),
            PruneOutcome::kDiscarded);
}

TEST(PruneTest, ResultPlansOutsideBoundsDoNotApproximate) {
  // The dominance check is restricted to result plans respecting the
  // current bounds (Res[0..b, 0..r]).
  PruneFixture f;
  f.Call(f.inf, 0, 1, CostVector{10.0, 10.0});  // Inserted, in Res.
  const CostVector bounds{5.0, 20.0};
  // (4, 12) is within bounds; (10, 10) is outside [0..b] (10 > 5), so it
  // cannot approximate the new plan.
  EXPECT_EQ(f.Call(bounds, 0, 2, CostVector{4.0, 12.0}),
            PruneOutcome::kInsertedResult);
}

TEST(PruneTest, ZeroCostComponentsHandledInSkipAhead) {
  PruneFixture f;
  // Dominator with zero second component.
  f.Call(f.inf, 0, 1, CostVector{10.0, 0.0});
  // (6, 0) is covered with exact factor α* = 10/6 ≈ 1.67; the first level
  // with α < 1.67 is level 2 (α_2 = 1.5): parked at resolution 2.
  EXPECT_EQ(f.Call(f.inf, 0, 2, CostVector{6.0, 0.0}),
            PruneOutcome::kParkedForHigherResolution);
  EXPECT_FALSE(f.cand.AnyInRange(f.inf, 1));
  EXPECT_TRUE(f.cand.AnyInRange(f.inf, 2));
  // (9.5, 0) is covered with α* ≈ 1.05 < α_3 = 1.2: no resolution can
  // ever need it — discarded.
  PruneFixture g;
  g.Call(g.inf, 0, 1, CostVector{10.0, 0.0});
  EXPECT_EQ(g.Call(g.inf, 0, 2, CostVector{9.5, 0.0}),
            PruneOutcome::kDiscarded);
}

TEST(PruneTest, OrderPartitionsTheDominanceCheck) {
  // A cheap unordered plan must not prune a more expensive plan that
  // produces an interesting order (paper §4.3): the ordered plan may
  // enable cheaper sort-merge joins upstream.
  PruneFixture f;
  f.Call(f.inf, 3, 1, CostVector{10.0, 10.0});  // Unordered.
  EXPECT_EQ(f.Call(f.inf, 3, 2, CostVector{11.0, 11.0},
                   /*park_next_level_only=*/false, /*order=*/1),
            PruneOutcome::kInsertedResult);
  // A same-order dominator does prune.
  EXPECT_EQ(f.Call(f.inf, 3, 3, CostVector{12.0, 12.0},
                   /*park_next_level_only=*/false, /*order=*/1),
            PruneOutcome::kDiscarded);
  // And a differently-ordered plan is again untouched.
  EXPECT_EQ(f.Call(f.inf, 3, 4, CostVector{12.0, 12.0},
                   /*park_next_level_only=*/false, /*order=*/2),
            PruneOutcome::kInsertedResult);
}

TEST(PruneTest, CountersTrackOutcomes) {
  PruneFixture f;
  f.Call(f.inf, 0, 1, CostVector{10.0, 10.0});
  f.Call(f.inf, 0, 2, CostVector{7.0, 10.0});  // Parked (α* ≈ 1.43).
  f.Call(CostVector{5.0, 5.0}, 0, 3, CostVector{2000.0, 2000.0});
  EXPECT_EQ(f.counters.prune_calls, 3u);
  EXPECT_EQ(f.counters.result_insertions, 1u);
  EXPECT_EQ(f.counters.candidate_insertions, 2u);
}

}  // namespace
}  // namespace moqo
