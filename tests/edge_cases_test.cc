// Edge cases and API-misuse behavior: single-table queries, degenerate
// schedules, alternative metric schemas, scale-factor effects, and
// CHECK-enforced preconditions (death tests).
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baseline/exhaustive.h"
#include "baseline/one_shot.h"
#include "catalog/tpch.h"
#include "core/iama.h"
#include "pareto/coverage.h"
#include "query/tpch_queries.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace moqo {
namespace {

TEST(EdgeCaseTest, SingleTableQuery) {
  // A query with one table has no joins: the frontier is the set of
  // non-dominated scan variants.
  Catalog catalog;
  const TableId t = catalog.AddTable({"solo", 1e6, 100.0, true});
  QueryBuilder builder("solo");
  builder.AddTable(t, 0.5);
  const Query query = builder.Build();
  const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                            CostModelParams{},
                            TinyOperatorOptions(/*sampling=*/true));
  IamaOptions options;
  options.schedule = ResolutionSchedule(3, 1.01, 0.2);
  IamaSession session(factory, options);
  NoInteractionPolicy policy;
  FrontierSnapshot last;
  session.Run(&policy, 3, [&](const FrontierSnapshot& s) { last = s; });
  ASSERT_FALSE(last.plans.empty());
  for (const auto& e : last.plans) {
    EXPECT_TRUE(session.optimizer().arena().at(e.id).IsScan());
  }
  // Coverage against every possible scan plan.
  const auto reference =
      EnumerateAllPlanCosts(factory, TableSet::Singleton(0));
  const auto report =
      CheckCoverage(CostsOf(last.plans), reference, 1.01,
                    CostVector::Infinite(3));
  EXPECT_TRUE(report.covered);
}

TEST(EdgeCaseTest, SingleResolutionLevelSession) {
  RandomWorld world = MakeRandomWorld(80, 3, /*sampling=*/true);
  IamaOptions options;
  options.schedule = ResolutionSchedule(1, 1.05, 0.0);
  IamaSession session(*world.factory, options);
  NoInteractionPolicy policy;
  std::vector<int> resolutions;
  session.Run(&policy, 3, [&](const FrontierSnapshot& s) {
    resolutions.push_back(s.resolution);
  });
  // Resolution stays pinned at 0; repeat invocations are no-ops.
  EXPECT_EQ(resolutions, (std::vector<int>{0, 0, 0}));
}

TEST(EdgeCaseTest, TwoMetricCloudSchema) {
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 3);
  const PlanFactory factory(blocks.at(0), catalog, MetricSchema::Cloud2());
  IamaOptions options;
  options.schedule = ResolutionSchedule(4, 1.01, 0.2);
  options.initial_bounds = CostVector::Infinite(2);
  IamaSession session(factory, options);
  const FrontierSnapshot snap = session.Step();
  ASSERT_FALSE(snap.plans.empty());
  for (const auto& e : snap.plans) {
    EXPECT_EQ(e.cost.dims(), 2);
  }
}

TEST(EdgeCaseTest, SixMetricSchemaSession) {
  RandomWorld world =
      MakeRandomWorld(81, 3, /*sampling=*/true, MetricSchema::Full6());
  IamaOptions options;
  options.schedule = ResolutionSchedule(3, 1.02, 0.2);
  IamaSession session(*world.factory, options);
  NoInteractionPolicy policy;
  FrontierSnapshot last;
  session.Run(&policy, 3, [&](const FrontierSnapshot& s) { last = s; });
  ASSERT_FALSE(last.plans.empty());
  for (const auto& e : last.plans) {
    EXPECT_EQ(e.cost.dims(), 6);
    EXPECT_TRUE(e.cost.IsNonNegative());
  }
}

TEST(EdgeCaseTest, SingleMetricDegeneratesToNearOptimalSearch) {
  // With l = 1 (time only), the frontier collapses to a handful of
  // near-optimal plans and must contain one within α^n of the DP optimum.
  RandomWorld world = MakeRandomWorld(
      82, 3, /*sampling=*/false,
      MetricSchema(std::vector<MetricId>{MetricId::kTime}));
  const ResolutionSchedule schedule(3, 1.01, 0.2);
  const CostVector inf = CostVector::Infinite(1);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  for (int r = 0; r <= 2; ++r) opt.Optimize(inf, r);
  const auto plans = opt.ResultPlans(inf, 2);
  ASSERT_FALSE(plans.empty());
  const auto reference =
      EnumerateAllPlanCosts(*world.factory, TableSet::Full(3));
  double brute = std::numeric_limits<double>::infinity();
  for (const CostVector& c : reference) brute = std::min(brute, c[0]);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : plans) best = std::min(best, e.cost[0]);
  EXPECT_LE(best, brute * std::pow(1.01, 3) + 1e-9);
}

TEST(EdgeCaseTest, TinyScaleFactorDisablesSampling) {
  // At SF 0.001 even lineitem is small; no sampling strategies exist and
  // all plans are exact (precision error identically zero).
  const Catalog catalog = MakeTpchCatalog(0.0001);
  const auto blocks = TpchBlocksWithTables(catalog, 2);
  const PlanFactory factory(blocks.at(0), catalog,
                            MetricSchema::Standard3());
  IamaOptions options;
  options.schedule = ResolutionSchedule(2, 1.01, 0.2);
  IamaSession session(factory, options);
  const FrontierSnapshot snap = session.Step();
  ASSERT_FALSE(snap.plans.empty());
  const int err = 2;
  for (const auto& e : snap.plans) {
    EXPECT_DOUBLE_EQ(e.cost[err], 0.0);
  }
}

TEST(EdgeCaseTest, UnsatisfiableBoundsYieldEmptyFrontierNotCrash) {
  RandomWorld world = MakeRandomWorld(83, 3, /*sampling=*/true);
  IamaOptions options;
  options.schedule = ResolutionSchedule(3, 1.02, 0.2);
  options.initial_bounds = CostVector(3, 0.0);
  IamaSession session(*world.factory, options);
  NoInteractionPolicy policy;
  FrontierSnapshot last;
  session.Run(&policy, 3, [&](const FrontierSnapshot& s) { last = s; });
  EXPECT_TRUE(last.plans.empty());
}

TEST(EdgeCaseTest, DisconnectedQueryProducesNoFullPlans) {
  // A query whose join graph is disconnected cannot be answered without
  // cross products, which the DP (by design) does not enumerate; the
  // full-query frontier stays empty instead of crashing.
  Catalog catalog;
  const TableId a = catalog.AddTable({"a", 100.0, 100.0, true});
  const TableId b = catalog.AddTable({"b", 100.0, 100.0, true});
  QueryBuilder builder("disconnected");
  builder.AddTable(a);
  builder.AddTable(b);
  const Query query = builder.Build();  // No join predicate.
  const PlanFactory factory(query, catalog, MetricSchema::Standard3());
  IamaOptions options;
  options.schedule = ResolutionSchedule(2, 1.05, 0.2);
  IamaSession session(factory, options);
  const FrontierSnapshot snap = session.Step();
  EXPECT_TRUE(snap.plans.empty());
}

TEST(EdgeCaseDeathTest, OptimizeRejectsOutOfRangeResolution) {
  RandomWorld world = MakeRandomWorld(84, 2, /*sampling=*/false);
  const ResolutionSchedule schedule(2, 1.05, 0.2);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(*world.factory, schedule, inf);
  EXPECT_DEATH(opt.Optimize(inf, 5), "resolution");
}

TEST(EdgeCaseDeathTest, OptimizeRejectsWrongBoundsDimension) {
  RandomWorld world = MakeRandomWorld(85, 2, /*sampling=*/false);
  const ResolutionSchedule schedule(2, 1.05, 0.2);
  IncrementalOptimizer opt(*world.factory, schedule,
                           CostVector::Infinite(3));
  EXPECT_DEATH(opt.Optimize(CostVector::Infinite(2), 0), "dims");
}

TEST(EdgeCaseDeathTest, OptimizerRejectsNonPositiveThreadCount) {
  RandomWorld world = MakeRandomWorld(87, 2, /*sampling=*/false);
  const ResolutionSchedule schedule(2, 1.05, 0.2);
  const CostVector inf = CostVector::Infinite(3);
  OptimizerOptions options;
  options.num_threads = 0;
  EXPECT_DEATH(
      IncrementalOptimizer(*world.factory, schedule, inf, options),
      "num_threads");
}

TEST(EdgeCaseTest, InjectedPoolWinsOverThreadCount) {
  // With both a pool and num_threads set, the pool is used and no second
  // pool is spawned; the frontier is the usual one.
  RandomWorld world = MakeRandomWorld(88, 3, /*sampling=*/false);
  const ResolutionSchedule schedule(2, 1.05, 0.2);
  const CostVector inf = CostVector::Infinite(3);
  ThreadPool pool(2);
  OptimizerOptions both;
  both.pool = &pool;
  both.num_threads = 8;  // Ignored: the injected pool wins.
  IncrementalOptimizer with_pool(*world.factory, schedule, inf, both);
  IncrementalOptimizer reference(*world.factory, schedule, inf);
  // The contract is observable: the injected pool is used as-is and no
  // second, owned pool is spawned next to it.
  EXPECT_EQ(with_pool.pool(), &pool);
  EXPECT_FALSE(with_pool.owns_pool());
  EXPECT_EQ(reference.pool(), nullptr);
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    with_pool.Optimize(inf, r);
    reference.Optimize(inf, r);
  }
  EXPECT_EQ(
      FrontierSignature(with_pool.ResultPlans(inf, schedule.MaxResolution())),
      FrontierSignature(reference.ResultPlans(inf, schedule.MaxResolution())));
}

TEST(EdgeCaseDeathTest, ScheduleRejectsInvalidParameters) {
  EXPECT_DEATH(ResolutionSchedule(0, 1.01, 0.1), "num_levels");
  EXPECT_DEATH(ResolutionSchedule(5, 1.0, 0.1), "alpha_target");
  EXPECT_DEATH(ResolutionSchedule(5, 1.01, -0.5), "alpha_step");
}

TEST(EdgeCaseDeathTest, ExactParetoRefusesInterestingOrders) {
  RandomWorld world = MakeRandomWorld(86, 2, /*sampling=*/false);
  OperatorOptions options = TinyOperatorOptions(false);
  options.enable_interesting_orders = true;
  PlanFactory factory(world.query, *world.catalog,
                      MetricSchema::Standard3(), CostModelParams{},
                      options);
  EXPECT_DEATH(RunExactPareto(factory, CostVector::Infinite(3)), "orders");
}

}  // namespace
}  // namespace moqo
