// Equivalence tests for the parallel phase-2 enumeration engine: for any
// thread count, the incremental optimizer must produce exactly the same
// result frontiers (same cost vectors per table set and resolution) as
// the single-threaded reference — across resolution refinement, bounds
// tightening and relaxing, and on both random topologies and TPC-H query
// blocks. The one-shot baseline's parallel path is held to the same
// standard.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/one_shot.h"
#include "catalog/tpch.h"
#include "core/incremental_optimizer.h"
#include "query/tpch_queries.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace moqo {
namespace {

// Asserts that two optimizers hold identical result frontiers for every
// connected table subset at the given bounds/resolution.
void ExpectIdenticalFrontiers(const PlanFactory& factory,
                              const IncrementalOptimizer& reference,
                              const IncrementalOptimizer& parallel,
                              const CostVector& bounds, int resolution,
                              const std::string& context) {
  const int n = factory.NumTables();
  for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
    const TableSet q(mask);
    if (!factory.graph().IsConnected(q)) continue;
    const auto ref = FrontierSignature(
        reference.ResultPlansFor(q, bounds, resolution));
    const auto par = FrontierSignature(
        parallel.ResultPlansFor(q, bounds, resolution));
    ASSERT_EQ(ref, par) << context << " mask=" << mask
                        << " resolution=" << resolution;
  }
}

void ExpectIdenticalCounters(const IncrementalOptimizer& reference,
                             const IncrementalOptimizer& parallel,
                             const std::string& context) {
  const Counters& a = reference.counters();
  const Counters& b = parallel.counters();
  EXPECT_EQ(a.plans_generated, b.plans_generated) << context;
  EXPECT_EQ(a.pairs_generated, b.pairs_generated) << context;
  EXPECT_EQ(a.pairs_rejected_stale, b.pairs_rejected_stale) << context;
  EXPECT_EQ(a.result_insertions, b.result_insertions) << context;
  EXPECT_EQ(a.candidate_insertions, b.candidate_insertions) << context;
  EXPECT_EQ(a.plans_discarded, b.plans_discarded) << context;
}

class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

// Monotone refinement series at fixed (infinite) bounds: after every
// invocation, all frontiers and all work counters match the reference.
TEST_P(ParallelEquivalence, RefinementSeriesMatchesSerial) {
  const auto [seed, threads] = GetParam();
  RandomWorld world = MakeRandomWorld(seed, 5, /*sampling=*/true);
  const ResolutionSchedule schedule(5, 1.02, 0.3);
  const CostVector inf = CostVector::Infinite(3);

  OptimizerOptions parallel_options;
  parallel_options.num_threads = threads;
  IncrementalOptimizer reference(*world.factory, schedule, inf);
  IncrementalOptimizer parallel(*world.factory, schedule, inf,
                                parallel_options);

  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    reference.Optimize(inf, r);
    parallel.Optimize(inf, r);
    ExpectIdenticalFrontiers(*world.factory, reference, parallel, inf, r,
                             "refinement r=" + std::to_string(r));
    ExpectIdenticalCounters(reference, parallel,
                            "refinement r=" + std::to_string(r));
  }
}

// Bounds interaction: tighten mid-series (resolution resets, parked
// candidates), then relax beyond the original bounds (Δ-degenerate
// re-enumeration guarded by the fresh-pair registry). Frontier equality
// must hold at every step and every queried resolution.
TEST_P(ParallelEquivalence, BoundsChangesMatchSerial) {
  const auto [seed, threads] = GetParam();
  RandomWorld world = MakeRandomWorld(seed, 5, /*sampling=*/false);
  const ResolutionSchedule schedule(4, 1.05, 0.4);
  const CostVector inf = CostVector::Infinite(3);

  OptimizerOptions parallel_options;
  parallel_options.num_threads = threads;
  IncrementalOptimizer reference(*world.factory, schedule, inf);
  IncrementalOptimizer parallel(*world.factory, schedule, inf,
                                parallel_options);

  // Derive a meaningful finite bound from the seeded frontier.
  reference.Optimize(inf, 0);
  parallel.Optimize(inf, 0);
  const auto initial = reference.ResultPlans(inf, 0);
  ASSERT_FALSE(initial.empty());
  CostVector tight = initial.front().cost;
  for (const auto& e : initial) {
    for (int i = 0; i < tight.dims(); ++i) {
      tight[i] = std::max(tight[i], e.cost[i]);
    }
  }
  tight = tight.Scaled(0.5);
  CostVector relaxed = tight.Scaled(10.0);

  const struct {
    const CostVector* bounds;
    const char* name;
  } steps[] = {{&tight, "tight"}, {&relaxed, "relaxed"}, {&inf, "inf"}};
  for (const auto& step : steps) {
    for (int r = 0; r <= schedule.MaxResolution(); ++r) {
      reference.Optimize(*step.bounds, r);
      parallel.Optimize(*step.bounds, r);
      for (int query_r = 0; query_r <= schedule.MaxResolution();
           ++query_r) {
        ExpectIdenticalFrontiers(
            *world.factory, reference, parallel, *step.bounds, query_r,
            std::string("bounds=") + step.name +
                " r=" + std::to_string(r));
      }
      ExpectIdenticalCounters(reference, parallel,
                              std::string("bounds=") + step.name);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, ParallelEquivalence,
    ::testing::Combine(::testing::Values(uint64_t{7}, uint64_t{19},
                                         uint64_t{42}),
                       ::testing::Values(2, 4, 8)));

// TPC-H query blocks, full refinement series, 4 threads: the workload the
// figure benchmarks run.
TEST(ParallelTpch, AllBlocksMatchSerial) {
  const Catalog catalog = MakeTpchCatalog();
  const ResolutionSchedule schedule(4, 1.05, 0.3);
  OperatorOptions op_options;
  op_options.max_workers = 4;
  op_options.max_sampling_rates_per_table = 2;

  for (const Query& query : TpchQueryBlocks(catalog)) {
    const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                              CostModelParams{}, op_options);
    const CostVector inf = CostVector::Infinite(3);
    OptimizerOptions parallel_options;
    parallel_options.num_threads = 4;
    IncrementalOptimizer reference(factory, schedule, inf);
    IncrementalOptimizer parallel(factory, schedule, inf,
                                  parallel_options);
    for (int r = 0; r <= schedule.MaxResolution(); ++r) {
      reference.Optimize(inf, r);
      parallel.Optimize(inf, r);
      ExpectIdenticalFrontiers(factory, reference, parallel, inf, r,
                               "tpch " + query.name);
      ExpectIdenticalCounters(reference, parallel, "tpch " + query.name);
    }
  }
}

// The one-shot baseline's parallel path must reproduce the serial plan
// lists exactly (same arena ids, same per-set result lists).
TEST(ParallelOneShot, MatchesSerial) {
  for (const uint64_t seed : {3u, 11u}) {
    RandomWorld world = MakeRandomWorld(seed, 6, /*sampling=*/true);
    const CostVector inf = CostVector::Infinite(3);
    const OneShotResult serial = RunOneShot(*world.factory, 1.05, inf);
    ThreadPool pool(4);
    const OneShotResult parallel =
        RunOneShot(*world.factory, 1.05, inf, &pool);

    EXPECT_EQ(serial.plans_generated, parallel.plans_generated);
    ASSERT_EQ(serial.plans_by_mask.size(), parallel.plans_by_mask.size());
    for (size_t mask = 0; mask < serial.plans_by_mask.size(); ++mask) {
      ASSERT_EQ(serial.plans_by_mask[mask], parallel.plans_by_mask[mask])
          << "mask=" << mask;
    }
    ASSERT_EQ(serial.arena.size(), parallel.arena.size());
    for (size_t id = 0; id < serial.arena.size(); ++id) {
      const PlanNode& a = serial.arena.at(static_cast<PlanId>(id));
      const PlanNode& b = parallel.arena.at(static_cast<PlanId>(id));
      EXPECT_EQ(a.tables, b.tables);
      EXPECT_EQ(a.left, b.left);
      EXPECT_EQ(a.right, b.right);
      EXPECT_EQ(a.cost.ToString(), b.cost.ToString());
    }
  }
}

// ThreadPool unit coverage: every index visited exactly once, barriers
// between consecutive ParallelFor calls, and a pool of one thread works.
TEST(ThreadPoolTest, VisitsEveryIndexOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> visits(n);
      for (auto& v : visits) v.store(0);
      pool.ParallelFor(n, [&](size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(visits[i].load(), 1) << "threads=" << threads
                                       << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForIsABarrier) {
  ThreadPool pool(4);
  std::vector<int> data(256, 0);
  for (int round = 1; round <= 5; ++round) {
    // Each round reads the previous round's writes; any straggler from
    // the prior call would be caught by the value check (and by TSan).
    pool.ParallelFor(data.size(), [&](size_t i) {
      EXPECT_EQ(data[i], round - 1);
      data[i] = round;
    });
  }
  for (int v : data) EXPECT_EQ(v, 5);
}

}  // namespace
}  // namespace moqo
