#include <vector>

#include <gtest/gtest.h>

#include "core/iama.h"
#include "pareto/dominance.h"
#include "test_helpers.h"

namespace moqo {
namespace {

IamaOptions SmallOptions(int levels = 4) {
  IamaOptions options;
  options.schedule = ResolutionSchedule(levels, 1.02, 0.3);
  return options;
}

TEST(IamaSessionTest, StepProducesSnapshots) {
  RandomWorld world = MakeRandomWorld(60, 3, /*sampling=*/true);
  IamaSession session(*world.factory, SmallOptions());
  const FrontierSnapshot snap = session.Step();
  EXPECT_EQ(snap.iteration, 1);
  EXPECT_EQ(snap.resolution, 0);
  EXPECT_DOUBLE_EQ(snap.alpha, 1.32);  // 1.02 + 0.3 * 3/3.
  EXPECT_FALSE(snap.plans.empty());
}

TEST(IamaSessionTest, ResolutionClimbsAndSaturates) {
  RandomWorld world = MakeRandomWorld(61, 3, /*sampling=*/true);
  IamaSession session(*world.factory, SmallOptions(3));
  NoInteractionPolicy policy;
  std::vector<int> resolutions;
  session.Run(&policy, 6, [&](const FrontierSnapshot& s) {
    resolutions.push_back(s.resolution);
  });
  // Resolution increases by one per iteration and saturates at rM = 2.
  EXPECT_EQ(resolutions, (std::vector<int>{0, 1, 2, 2, 2, 2}));
}

TEST(IamaSessionTest, BoundsChangeResetsResolution) {
  RandomWorld world = MakeRandomWorld(62, 3, /*sampling=*/true);
  IamaSession session(*world.factory, SmallOptions(4));

  // After two iterations, tighten bounds; resolution must reset to 0.
  CostVector bounds = CostVector::Infinite(3);
  bounds[1] = 2.0;  // At most two cores.
  ScriptedPolicy policy({{2, UserAction::SetBounds(bounds)}});
  std::vector<FrontierSnapshot> snaps;
  session.Run(&policy, 5, [&](const FrontierSnapshot& s) {
    snaps.push_back(s);
  });
  ASSERT_EQ(snaps.size(), 5u);
  EXPECT_EQ(snaps[0].resolution, 0);
  EXPECT_EQ(snaps[1].resolution, 1);
  EXPECT_EQ(snaps[2].resolution, 0);  // Reset after bounds change.
  EXPECT_EQ(snaps[3].resolution, 1);
  // Snapshots after the change honour the new bounds.
  for (size_t i = 2; i < snaps.size(); ++i) {
    for (const auto& e : snaps[i].plans) {
      EXPECT_TRUE(RespectsBounds(e.cost, bounds));
      EXPECT_LE(e.cost[1], 2.0);
    }
  }
}

TEST(IamaSessionTest, SelectPlanEndsSession) {
  RandomWorld world = MakeRandomWorld(63, 2, /*sampling=*/true);
  IamaSession session(*world.factory, SmallOptions());

  class SelectSecondSnapshot : public InteractionPolicy {
   public:
    UserAction OnSnapshot(const FrontierSnapshot& s) override {
      if (s.iteration >= 2 && !s.plans.empty()) {
        return UserAction::SelectPlan(s.plans[0].id);
      }
      return UserAction::Continue();
    }
  };
  SelectSecondSnapshot policy;
  const SessionResult result = session.Run(&policy, 10);
  EXPECT_EQ(result.iterations, 2);
  EXPECT_NE(result.selected_plan, kInvalidPlan);
  // The selected plan joins all query tables.
  const PlanNode& plan = session.optimizer().arena().at(result.selected_plan);
  EXPECT_EQ(plan.tables, world.query.AllTables());
}

TEST(IamaSessionTest, SnapshotsRefineWithoutInteraction) {
  // Anytime property: without user input, later snapshots are supersets
  // (result plans are never discarded) and the approximation factor
  // decreases.
  RandomWorld world = MakeRandomWorld(64, 4, /*sampling=*/true);
  IamaSession session(*world.factory, SmallOptions(5));
  NoInteractionPolicy policy;
  std::vector<size_t> sizes;
  std::vector<double> alphas;
  session.Run(&policy, 5, [&](const FrontierSnapshot& s) {
    sizes.push_back(s.plans.size());
    alphas.push_back(s.alpha);
  });
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GE(sizes[i], sizes[i - 1]);
    EXPECT_LT(alphas[i], alphas[i - 1]);
  }
}

TEST(IamaSessionTest, InitialBoundsOptionRestrictsFirstSnapshot) {
  RandomWorld world = MakeRandomWorld(65, 3, /*sampling=*/true);
  IamaOptions options = SmallOptions();
  CostVector bounds = CostVector::Infinite(3);
  bounds[1] = 1.0;  // Single-core plans only.
  options.initial_bounds = bounds;
  IamaSession session(*world.factory, options);
  const FrontierSnapshot snap = session.Step();
  for (const auto& e : snap.plans) {
    EXPECT_LE(e.cost[1], 1.0);
  }
}

TEST(IamaSessionTest, SteppingFarPastMaxResolutionStaysClamped) {
  // A session driven well beyond the schedule (e.g. a service polling for
  // bounds changes) must keep the resolution pinned at rM and never index
  // Alpha(r > rM) — which would abort.
  RandomWorld world = MakeRandomWorld(67, 3, /*sampling=*/true);
  const int levels = 3;
  IamaSession session(*world.factory, SmallOptions(levels));
  const int rm = levels - 1;
  FrontierSnapshot snap;
  for (int i = 0; i < 3 * levels; ++i) {
    snap = session.Step();
    EXPECT_LE(session.resolution(), rm);
    session.ApplyAction(UserAction::Continue());
    EXPECT_LE(session.resolution(), rm);
  }
  EXPECT_EQ(snap.resolution, rm);
  EXPECT_DOUBLE_EQ(snap.alpha, 1.02);  // α_T: the finest level's factor.
}

TEST(IamaSessionTest, ScriptedPolicyFirstDuplicateEventWins) {
  RandomWorld world = MakeRandomWorld(68, 3, /*sampling=*/true);
  IamaSession session(*world.factory, SmallOptions(4));
  CostVector first = CostVector::Infinite(3);
  first[1] = 2.0;
  CostVector second = CostVector::Infinite(3);
  second[1] = 1.0;
  // Two events scripted for the same iteration: only the first applies.
  ScriptedPolicy policy({{2, UserAction::SetBounds(first)},
                         {2, UserAction::SetBounds(second)}});
  session.Run(&policy, 3);
  EXPECT_EQ(session.bounds()[1], 2.0);
}

TEST(IamaSessionDeathTest, SetBoundsDimensionMismatchAborts) {
  RandomWorld world = MakeRandomWorld(69, 3, /*sampling=*/true);
  IamaSession session(*world.factory, SmallOptions());
  session.Step();
  EXPECT_DEATH(
      session.ApplyAction(UserAction::SetBounds(CostVector::Infinite(2))),
      "dims");
}

TEST(IamaSessionDeathTest, InitialBoundsDimensionMismatchAborts) {
  RandomWorld world = MakeRandomWorld(70, 3, /*sampling=*/true);
  IamaOptions options = SmallOptions();
  options.initial_bounds = CostVector::Infinite(2);  // Schema has 3 dims.
  EXPECT_DEATH(IamaSession(*world.factory, options), "dims");
}

TEST(IamaSessionTest, RelaxAndTightenScenario) {
  // Figure 1 style interaction: tighten, observe, relax; the session must
  // keep producing valid snapshots and never lose coverage.
  RandomWorld world = MakeRandomWorld(66, 3, /*sampling=*/true);
  IamaSession session(*world.factory, SmallOptions(3));
  CostVector tight = CostVector::Infinite(3);
  tight[0] = 1.0;  // Very tight time bound: possibly empty frontier.
  const CostVector inf = CostVector::Infinite(3);
  ScriptedPolicy policy({{1, UserAction::SetBounds(tight)},
                         {3, UserAction::SetBounds(inf)}});
  std::vector<FrontierSnapshot> snaps;
  session.Run(&policy, 6, [&](const FrontierSnapshot& s) {
    snaps.push_back(s);
  });
  // Final snapshot (unbounded again) must show plans.
  EXPECT_FALSE(snaps.back().plans.empty());
  // All intermediate snapshots respect their own bounds.
  for (const auto& s : snaps) {
    for (const auto& e : s.plans) {
      EXPECT_TRUE(RespectsBounds(e.cost, s.bounds));
    }
  }
}

}  // namespace
}  // namespace moqo
