// SnapshotSubscription unit tests plus the slow-subscriber regression:
// a subscriber that never polls must not stall its scheduler shard (the
// bug the pull-based stream replaced the synchronous observer for).
// The service-level tests run real shard threads — TSan CI runs this
// binary to pin the producer/consumer synchronization.
#include "service/snapshot_stream.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <memory>
#include <vector>

#include "catalog/tpch.h"
#include "gtest/gtest.h"
#include "query/tpch_queries.h"
#include "service/optimizer_service.h"
#include "test_helpers.h"

namespace moqo {
namespace {

std::shared_ptr<const FrontierSnapshot> Snap(int iteration) {
  auto s = std::make_shared<FrontierSnapshot>();
  s->iteration = iteration;
  return s;
}

TEST(SnapshotStreamTest, DeliversInOrderWithSequences) {
  SnapshotSubscription sub(8);
  sub.Push(Snap(1), false);
  sub.Push(Snap(2), false);
  sub.Push(Snap(3), true);
  for (int i = 1; i <= 3; ++i) {
    auto event = sub.Poll();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->sequence, static_cast<uint64_t>(i));
    EXPECT_EQ(event->dropped, 0u);
    EXPECT_EQ(event->is_final, i == 3);
    EXPECT_EQ(event->snapshot->iteration, i);
  }
  EXPECT_FALSE(sub.Poll().has_value());
  EXPECT_TRUE(sub.exhausted());
  EXPECT_EQ(sub.dropped_total(), 0u);
}

TEST(SnapshotStreamTest, DropOldestRecordsGapOnSurvivor) {
  SnapshotSubscription sub(2);
  sub.Push(Snap(1), false);
  sub.Push(Snap(2), false);
  sub.Push(Snap(3), false);  // Drops 1; gap lands on 2.
  sub.Push(Snap(4), false);  // Drops 2 (carrying 1's gap); lands on 3.
  auto event = sub.Poll();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->sequence, 3u);
  EXPECT_EQ(event->dropped, 2u);  // Events 1 and 2 both vanished.
  event = sub.Poll();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->sequence, 4u);
  EXPECT_EQ(event->dropped, 0u);
  EXPECT_EQ(sub.dropped_total(), 2u);
}

// The sequence/dropped identity lets a consumer account for every event
// produced: previous sequence + dropped + 1 == this sequence.
TEST(SnapshotStreamTest, GapAccountingIdentityHolds) {
  SnapshotSubscription sub(3);
  uint64_t last_seq = 0;
  uint64_t delivered = 0;
  uint64_t gaps = 0;
  auto consume = [&](const SnapshotEvent& event) {
    // previous sequence + gap + 1 == this sequence, always.
    EXPECT_EQ(last_seq + event.dropped + 1, event.sequence);
    gaps += event.dropped;
    last_seq = event.sequence;
    ++delivered;
  };
  for (int i = 1; i <= 20; ++i) {
    sub.Push(Snap(i), false);
    if (i % 4 == 0) {  // A consumer 4x slower than the producer.
      if (auto event = sub.Poll()) consume(*event);
    }
  }
  sub.Push(Snap(21), true);
  while (auto event = sub.Poll()) consume(*event);
  EXPECT_EQ(last_seq, 21u);                 // The final event arrived...
  EXPECT_EQ(delivered + gaps, 21u);         // ...and the ledger balances.
  EXPECT_TRUE(sub.exhausted());
  EXPECT_GT(sub.dropped_total(), 0u);
  EXPECT_EQ(sub.dropped_total(), gaps);
}

TEST(SnapshotStreamTest, FinalEventSurvivesOverflow) {
  SnapshotSubscription sub(1);
  sub.Push(Snap(1), false);
  sub.Push(Snap(2), true);  // Evicts 1 but is itself never dropped.
  auto event = sub.Poll();
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->is_final);
  EXPECT_EQ(event->sequence, 2u);
  EXPECT_EQ(event->dropped, 1u);
  EXPECT_TRUE(sub.exhausted());
}

TEST(SnapshotStreamTest, PushAfterFinalIsIgnored) {
  SnapshotSubscription sub(4);
  sub.Push(Snap(1), true);
  sub.Push(Snap(2), false);  // A turn already in flight; must be a no-op.
  sub.Push(Snap(3), true);
  auto event = sub.Poll();
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->is_final);
  EXPECT_EQ(event->snapshot->iteration, 1);
  EXPECT_FALSE(sub.Poll().has_value());
}

TEST(SnapshotStreamTest, NextBlocksAndTimesOut) {
  SnapshotSubscription sub(4);
  EXPECT_FALSE(sub.Next(/*timeout_ms=*/10).has_value());
  sub.Push(Snap(1), true);
  auto event = sub.Next(/*timeout_ms=*/1000);
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->is_final);
  // Exhausted stream: Next returns immediately instead of sleeping.
  EXPECT_FALSE(sub.Next(/*timeout_ms=*/60000).has_value());
}

TEST(SnapshotStreamTest, CapacityClampedToOne) {
  SnapshotSubscription sub(0);
  sub.Push(Snap(1), false);
  sub.Push(Snap(2), true);
  auto event = sub.Poll();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->sequence, 2u);
  EXPECT_EQ(event->dropped, 1u);
}

TEST(SnapshotStreamTest, WakeupFdPokedOnPush) {
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  ASSERT_GE(efd, 0);
  SnapshotSubscription sub(4);
  sub.SetWakeupFd(efd);
  sub.Push(Snap(1), false);
  sub.Push(Snap(2), true);
  uint64_t count = 0;
  ASSERT_EQ(::read(efd, &count, sizeof(count)),
            static_cast<ssize_t>(sizeof(count)));
  EXPECT_EQ(count, 2u);  // One poke per push.
  ::close(efd);
}

TEST(SnapshotStreamTest, DetachStopsPokes) {
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  ASSERT_GE(efd, 0);
  SnapshotSubscription sub(4);
  sub.SetWakeupFd(efd);
  sub.SetWakeupFd(-1);  // Detach closes the subscription's owned dup.
  sub.Push(Snap(1), false);
  uint64_t count = 0;
  EXPECT_EQ(::read(efd, &count, sizeof(count)), -1);
  EXPECT_EQ(errno, EAGAIN);  // No poke landed after the detach.
  ::close(efd);
}

TEST(SnapshotStreamTest, PokeNeverHitsARecycledDescriptor) {
  // The network-server hazard: the caller closes its wakeup fd and the
  // kernel recycles the number into an unrelated file before a deferred
  // finalization pushes. The subscription pokes its own dup, so the
  // recycled descriptor must stay untouched.
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  ASSERT_GE(efd, 0);
  SnapshotSubscription sub(4);
  sub.SetWakeupFd(efd);
  ::close(efd);  // Caller drops its descriptor; the dup keeps the object.
  int pipe_fds[2];
  ASSERT_EQ(::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC), 0);
  // POSIX hands out the lowest free descriptor, so one pipe end
  // recycles efd's number — the stand-in for a newly accepted socket.
  ASSERT_TRUE(pipe_fds[0] == efd || pipe_fds[1] == efd);
  sub.Push(Snap(1), false);
  char buf[8];
  EXPECT_EQ(::read(pipe_fds[0], buf, sizeof(buf)), -1);
  EXPECT_EQ(errno, EAGAIN);  // The pipe saw no stray 8-byte write.
  ASSERT_TRUE(sub.Poll().has_value());  // The push itself still landed.
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

// --- Service integration: the subscription path end to end. ---

ServiceOptions TwoShardOptions() {
  ServiceOptions options;
  options.num_threads = 2;
  options.num_shards = 2;
  return options;
}

TEST(SnapshotStreamServiceTest, SubscriptionStreamsEveryStepWhenRoomy) {
  Catalog catalog = MakeTpchCatalog();
  OptimizerService service(catalog, TwoShardOptions());
  SubmitRequest request;
  request.query = TpchQueryBlocks(catalog).front();
  request.max_iterations = 5;
  request.subscribe = true;
  request.subscription_capacity = 64;  // Roomy: nothing drops.
  StatusOr<SubmitResponse> response = service.Submit(std::move(request));
  ASSERT_TRUE(response.ok());
  ASSERT_NE(response.value().subscription, nullptr);
  const QueryResult result = service.Wait(response.value().id);
  EXPECT_EQ(result.state, QueryState::kDone);
  auto sub = response.value().subscription;
  int events = 0;
  uint64_t last_seq = 0;
  bool saw_final = false;
  while (auto event = sub->Poll()) {
    EXPECT_EQ(event->dropped, 0u);
    EXPECT_EQ(event->sequence, last_seq + 1);
    last_seq = event->sequence;
    saw_final = event->is_final;
    ++events;
  }
  // 5 step snapshots plus the terminal event.
  EXPECT_EQ(events, 6);
  EXPECT_TRUE(saw_final);
  EXPECT_EQ(sub->dropped_total(), 0u);
  EXPECT_EQ(service.stats().snapshot_drops, 0u);
}

// The regression test for the backpressure bug: a subscriber that never
// polls while its run is live must neither stall its own run nor any
// other run on the service. With the old synchronous observer path a
// blocking consumer held its scheduler shard's turn forever; here both
// runs complete while the subscriber sleeps, and the stalled stream
// ends with a gap-marked final event.
TEST(SnapshotStreamServiceTest, SlowSubscriberStallsNothing) {
  Catalog catalog = MakeTpchCatalog();
  ServiceOptions options;
  options.num_threads = 1;
  options.num_shards = 1;  // One shard: a stall would block *everything*.
  OptimizerService service(catalog, options);
  std::vector<Query> queries = TpchQueryBlocks(catalog);
  ASSERT_GE(queries.size(), 2u);

  SubmitRequest stalled;
  stalled.query = queries[0];
  stalled.max_iterations = 12;
  stalled.subscribe = true;
  stalled.subscription_capacity = 1;  // Overflows from the second step on.
  StatusOr<SubmitResponse> a = service.Submit(std::move(stalled));
  ASSERT_TRUE(a.ok());

  SubmitRequest healthy;
  healthy.query = queries[1];
  healthy.max_iterations = 4;
  StatusOr<SubmitResponse> b = service.Submit(std::move(healthy));
  ASSERT_TRUE(b.ok());

  // Neither Wait would ever return if the unpolled subscription stalled
  // the single shard.
  EXPECT_EQ(service.Wait(b.value().id).state, QueryState::kDone);
  EXPECT_EQ(service.Wait(a.value().id).state, QueryState::kDone);

  // Only now does the consumer drain: the stream must end with a final
  // event whose gap accounting covers everything the overflow dropped.
  auto sub = a.value().subscription;
  uint64_t gaps = 0;
  uint64_t last_seq = 0;
  bool saw_final = false;
  while (auto event = sub->Poll()) {
    gaps += event->dropped;
    last_seq = event->sequence;
    saw_final = event->is_final;
  }
  EXPECT_TRUE(saw_final);
  EXPECT_EQ(last_seq, 13u);           // 12 steps + 1 final were produced.
  EXPECT_GT(gaps, 0u);                // The overflow really happened...
  EXPECT_EQ(gaps, sub->dropped_total());  // ...and is fully accounted.
  EXPECT_EQ(service.stats().snapshot_drops, sub->dropped_total());
}

TEST(SnapshotStreamServiceTest, CacheHitStreamIsOneFinalEvent) {
  Catalog catalog = MakeTpchCatalog();
  OptimizerService service(catalog, TwoShardOptions());
  Query query = TpchQueryBlocks(catalog).front();

  SubmitRequest first;
  first.query = query;
  first.max_iterations = 3;
  StatusOr<SubmitResponse> warm = service.Submit(std::move(first));
  ASSERT_TRUE(warm.ok());
  const QueryResult warm_result = service.Wait(warm.value().id);

  SubmitRequest second;
  second.query = query;
  second.max_iterations = 3;
  second.subscribe = true;
  StatusOr<SubmitResponse> hit = service.Submit(std::move(second));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().from_cache);
  auto sub = hit.value().subscription;
  ASSERT_NE(sub, nullptr);
  auto event = sub->Poll();
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->is_final);
  EXPECT_EQ(event->dropped, 0u);
  EXPECT_EQ(FrontierSignature(event->snapshot->plans),
            FrontierSignature(warm_result.frontier.plans));
  EXPECT_FALSE(sub->Poll().has_value());
}

// Coalesced riders each get their own stream of the shared run.
TEST(SnapshotStreamServiceTest, FollowersGetTheirOwnStreams) {
  Catalog catalog = MakeTpchCatalog();
  ServiceOptions options = TwoShardOptions();
  options.frontier_cache_capacity = 0;  // Force coalescing, not caching.
  OptimizerService service(catalog, options);
  Query query = TpchQueryBlocks(catalog).front();

  SubmitRequest leader;
  leader.query = query;
  leader.max_iterations = 8;
  leader.subscribe = true;
  leader.subscription_capacity = 64;
  StatusOr<SubmitResponse> a = service.Submit(std::move(leader));
  ASSERT_TRUE(a.ok());
  SubmitRequest follower;
  follower.query = query;
  follower.max_iterations = 8;
  follower.subscribe = true;
  follower.subscription_capacity = 64;
  StatusOr<SubmitResponse> b = service.Submit(std::move(follower));
  ASSERT_TRUE(b.ok());

  const QueryResult ra = service.Wait(a.value().id);
  const QueryResult rb = service.Wait(b.value().id);
  EXPECT_EQ(ra.state, QueryState::kDone);
  EXPECT_EQ(rb.state, QueryState::kDone);

  auto drain_last = [](SnapshotSubscription* sub) {
    std::shared_ptr<const FrontierSnapshot> last;
    while (auto event = sub->Poll()) last = event->snapshot;
    return last;
  };
  auto last_a = drain_last(a.value().subscription.get());
  auto last_b = drain_last(b.value().subscription.get());
  ASSERT_NE(last_a, nullptr);
  ASSERT_NE(last_b, nullptr);
  // Both streams end on the shared run's final frontier.
  EXPECT_EQ(FrontierSignature(last_a->plans), FrontierSignature(last_b->plans));
  EXPECT_EQ(FrontierSignature(last_a->plans),
            FrontierSignature(ra.frontier.plans));
}

}  // namespace
}  // namespace moqo
