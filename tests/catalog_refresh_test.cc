// Catalog-refresh stress: RefreshCatalog() hammered against concurrent
// Submit/Cancel/Wait on a sharded service (a TSan target in CI). The
// invariant under every interleaving: a query that completes in state
// kDone carries the version of ONE catalog generation and its frontier
// is bit-identical to a cold single-threaded run on that generation's
// snapshot — never a mix of statistics from two generations, never a
// cache or fragment hit across a refresh.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "query/tpch_queries.h"
#include "service/optimizer_service.h"
#include "test_helpers.h"

namespace moqo {
namespace {

using Signature = std::vector<std::vector<double>>;

// Cold single-threaded reference on a pinned snapshot: the frontier a
// run tagged with that snapshot's version must reproduce exactly.
Signature ReferenceSignature(const Query& query,
                             const std::shared_ptr<const CatalogSnapshot>&
                                 snapshot,
                             const ServiceOptions& service_opts,
                             const IamaOptions& iama, int iterations) {
  const PlanFactory factory(query, snapshot, service_opts.schema,
                            service_opts.cost_params,
                            service_opts.operator_options);
  IamaSession session(factory, iama);
  FrontierSnapshot snap;
  for (int i = 0; i < iterations; ++i) {
    snap = session.Step();
    session.ApplyAction(UserAction::Continue());
  }
  return FrontierSignature(snap.plans);
}

TEST(CatalogRefreshStressTest, RefreshRacesSubmitCancelWait) {
  Catalog catalog = MakeTpchCatalog();
  std::vector<Query> queries;
  for (const Query& q : TpchQueryBlocks(catalog)) {
    if (q.NumTables() <= 3) queries.push_back(q);
  }
  ASSERT_GE(queries.size(), 2u);
  if (queries.size() > 3) queries.resize(3);

  ServiceOptions service_opts;
  service_opts.num_threads = 2;
  service_opts.num_shards = 2;
  service_opts.frontier_cache_capacity = 8;
  service_opts.fragment_cache_bytes = 4 << 20;
  service_opts.operator_options = TinyOperatorOptions(/*sampling=*/true);
  OptimizerService service(catalog, service_opts);

  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule(3, 1.02, 0.3);

  // Every catalog generation's snapshot, recorded by the (single)
  // mutator BEFORE the corresponding RefreshCatalog — so by the time
  // any result is tagged with a version, its snapshot is readable.
  std::mutex snaps_mu;
  std::map<uint64_t, std::shared_ptr<const CatalogSnapshot>> snaps;
  {
    std::lock_guard<std::mutex> lock(snaps_mu);
    auto initial = catalog.Snapshot();
    snaps[initial->version()] = std::move(initial);
  }
  // Reference signatures are deduplicated per (query, version): the
  // stress loop then only pays one cold run per generation and query.
  std::mutex refs_mu;
  std::map<std::pair<size_t, uint64_t>, Signature> references;

  const double base_orders = catalog.Get(TpchTable::kOrders).cardinality;
  std::atomic<bool> refresher_done{false};
  std::thread refresher([&] {
    const int kRefreshes = 12;
    for (int i = 0; i < kRefreshes; ++i) {
      // Bounded, cycling drift: generations differ, costs stay sane.
      const double factor = 1.5 + 0.5 * (i % 4);
      ASSERT_TRUE(
          catalog.UpdateStats(TpchTable::kOrders, base_orders * factor)
              .ok());
      auto snap = catalog.Snapshot();
      {
        std::lock_guard<std::mutex> lock(snaps_mu);
        snaps[snap->version()] = std::move(snap);
      }
      service.RefreshCatalog();
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    refresher_done.store(true);
  });

  const int kClients = 4;
  const int kPerClient = 24;
  std::atomic<uint64_t> verified{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const size_t qi =
            static_cast<size_t>(c + i) % queries.size();
        StatusOr<QueryId> id = service.Submit(queries[qi], submit);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        if (i % 5 == 4) service.Cancel(id.value());
        const QueryResult r = service.Wait(id.value());
        if (r.state != QueryState::kDone) continue;  // Cancelled mid-run.
        std::shared_ptr<const CatalogSnapshot> snapshot;
        {
          std::lock_guard<std::mutex> lock(snaps_mu);
          auto it = snaps.find(r.catalog_version);
          ASSERT_NE(it, snaps.end())
              << "result tagged with unknown catalog version "
              << r.catalog_version;
          snapshot = it->second;
        }
        const std::pair<size_t, uint64_t> ref_key(qi, r.catalog_version);
        Signature reference;
        {
          std::lock_guard<std::mutex> lock(refs_mu);
          auto it = references.find(ref_key);
          if (it == references.end()) {
            it = references
                     .emplace(ref_key,
                              ReferenceSignature(queries[qi], snapshot,
                                                 service_opts, submit.iama,
                                                 r.iterations))
                     .first;
          }
          reference = it->second;
        }
        ASSERT_EQ(FrontierSignature(r.frontier.plans), reference)
            << queries[qi].name << " @ catalog version "
            << r.catalog_version;
        ++verified;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  refresher.join();
  EXPECT_TRUE(refresher_done.load());
  // Most submissions complete (only every fifth is cancel-raced), so
  // the bit-identity check above ran against many interleavings.
  EXPECT_GE(verified.load(),
            static_cast<uint64_t>(kClients * kPerClient / 2));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.completed + stats.cancelled + stats.expired,
            stats.submitted);
  EXPECT_GE(stats.catalog_refreshes, 1u);
}

// Refresh also races service *destruction*: tearing the service down
// while a refresher and submitters are mid-flight must neither hang nor
// leak unfinished waiters.
TEST(CatalogRefreshStressTest, RefreshRacesDestruction) {
  Catalog catalog = MakeTpchCatalog();
  std::vector<Query> queries = TpchQueryBlocks(catalog);
  queries.resize(2);
  ServiceOptions service_opts;
  service_opts.num_threads = 2;
  service_opts.num_shards = 2;
  service_opts.operator_options = TinyOperatorOptions(/*sampling=*/true);
  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule(3, 1.02, 0.3);
  submit.max_iterations = 1000000;  // Runs outlive the service on purpose.

  std::atomic<bool> stop{false};
  std::thread mutator;
  {
    OptimizerService service(catalog, service_opts);
    for (const Query& q : queries) {
      ASSERT_TRUE(service.Submit(q, submit).ok());
    }
    mutator = std::thread([&] {
      int i = 0;
      while (!stop.load()) {
        ASSERT_TRUE(catalog
                        .UpdateStats(TpchTable::kOrders,
                                     1.5e6 + 1000.0 * (++i % 7))
                        .ok());
        service.RefreshCatalog();
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true);
    mutator.join();
    // Service destroyed here with runs still queued/stepping.
  }
}

}  // namespace
}  // namespace moqo
