// Distributed enumeration tier tests: the coordinator/worker exchange
// must produce frontiers bit-identical to a plain local session for
// every worker count — including after a worker dies mid-level (the
// deterministic crash hook for the in-process transport, real SIGKILL
// for the forked one), after a run is abandoned and the tier reassigned,
// and when routed end to end through OptimizerService across scheduler
// shard counts. The new fragment_codec record types (frontier delta,
// partition assignment) must round-trip bit-exactly and reject hostile
// bytes with a Status, never a crash. The in-process transport keeps
// every test here TSan-clean; fork+SIGKILL legs are compiled out under
// ThreadSanitizer.
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "core/iama.h"
#include "core/incremental_optimizer.h"
#include "dist/backend.h"
#include "dist/protocol.h"
#include "query/generator.h"
#include "service/fragment_codec.h"
#include "service/optimizer_service.h"
#include "test_helpers.h"
#include "util/rng.h"

#if defined(__SANITIZE_THREAD__)
#define MOQO_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MOQO_TSAN 1
#endif
#endif

namespace moqo {
namespace {

// A world both sides of the tier share: the coordinator's factory and
// every worker's replica are built from the same catalog snapshot and
// the same (result-affecting) schema/cost/operator configuration.
struct DistWorld {
  RandomWorld world;
  std::shared_ptr<const CatalogSnapshot> snapshot;
  std::unique_ptr<PlanFactory> factory;
};

DistWorld MakeDistWorld(uint64_t seed, int num_tables) {
  DistWorld d;
  d.world = MakeRandomWorld(seed, num_tables, /*sampling=*/false);
  d.snapshot = d.world.catalog->Snapshot();
  d.factory = std::make_unique<PlanFactory>(
      d.world.query, d.snapshot, MetricSchema::Standard3(), CostModelParams{},
      TinyOperatorOptions(/*sampling=*/false));
  return d;
}

dist::BackendOptions InProcessBackend(const DistWorld& d, uint32_t workers) {
  dist::BackendOptions options;
  options.num_workers = workers;
  options.forked = false;
  options.worker.catalog = d.snapshot;
  options.worker.schema = MetricSchema::Standard3();
  options.worker.operator_options = TinyOperatorOptions(/*sampling=*/false);
  return options;
}

IamaOptions TestIama() {
  IamaOptions iama;
  iama.schedule = ResolutionSchedule(5, 1.02, 0.3);
  return iama;
}

// Steps a session through `steps` Continue() turns, returning the final
// snapshot. Asserts the exchange (if any) never aborted.
FrontierSnapshot DriveSession(IamaSession* session, uint32_t steps) {
  FrontierSnapshot snap;
  for (uint32_t i = 0; i < steps; ++i) {
    snap = session->Step();
    EXPECT_FALSE(session->optimizer().exchange_aborted());
    session->ApplyAction(UserAction::Continue());
  }
  return snap;
}

// The repo-wide correctness bar, applied per connected table subset:
// identical result frontiers (costs, order tags, insertion resolutions)
// and identical work counters.
void ExpectIdenticalToLocal(const PlanFactory& factory,
                            const IamaSession& local,
                            const IamaSession& distributed,
                            const std::string& context) {
  const IncrementalOptimizer& ref = local.optimizer();
  const IncrementalOptimizer& dist = distributed.optimizer();
  const CostVector& bounds = local.bounds();
  const int resolution = local.resolution();
  ASSERT_EQ(resolution, distributed.resolution()) << context;
  const int n = factory.NumTables();
  for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
    const TableSet q(mask);
    if (!factory.graph().IsConnected(q)) continue;
    ASSERT_EQ(FrontierSignature(ref.ResultPlansFor(q, bounds, resolution)),
              FrontierSignature(dist.ResultPlansFor(q, bounds, resolution)))
        << context << " mask=" << mask;
  }
  const Counters& a = ref.counters();
  const Counters& b = dist.counters();
  EXPECT_EQ(a.plans_generated, b.plans_generated) << context;
  EXPECT_EQ(a.pairs_generated, b.pairs_generated) << context;
  EXPECT_EQ(a.pairs_rejected_stale, b.pairs_rejected_stale) << context;
  EXPECT_EQ(a.result_insertions, b.result_insertions) << context;
}

TEST(DistProtocolTest, EveryCellHasExactlyOneOwner) {
  for (uint32_t workers : {1u, 2u, 3u, 4u, 7u}) {
    for (uint32_t mask = 1; mask < (1u << 10); ++mask) {
      int owners = 0;
      for (uint32_t w = 0; w < workers; ++w) {
        if (dist::OwnsCell(TableSet(mask), w, workers)) ++owners;
      }
      ASSERT_EQ(owners, 1) << "mask=" << mask << " workers=" << workers;
    }
  }
}

TEST(DistCodecTest, FrontierDeltaRoundTripsBitExactly) {
  FrontierDeltaRecord record;
  record.invocation = 7;
  record.resolution = 3;
  record.level = 4;
  CellDelta delta;
  delta.cell = TableSet(0b1011);
  delta.fresh_pairs = {{1, 2}, {0x7fffffff, 3}};
  CellJoin join;
  join.left = 12;
  join.right = 9;
  join.op.is_scan = false;
  join.op.alg = 2;
  join.op.workers = 2;
  join.op.sampling_permille = 125;
  join.op_cost.cost = CostVector{1e300, 0.1, 3.0000000000000004};
  join.op_cost.output_rows = 1234.5678901234;
  join.op_cost.order = 5;
  delta.joins = {join};
  delta.stale_pairs = 42;

  const std::string bytes = EncodeFrontierDelta(record, delta);
  FrontierDeltaRecord out_record;
  CellDelta out;
  ASSERT_TRUE(DecodeFrontierDelta(bytes, &out_record, &out).ok());
  EXPECT_EQ(out_record.invocation, record.invocation);
  EXPECT_EQ(out_record.resolution, record.resolution);
  EXPECT_EQ(out_record.level, record.level);
  EXPECT_EQ(out.cell.mask(), delta.cell.mask());
  EXPECT_EQ(out.fresh_pairs, delta.fresh_pairs);
  EXPECT_EQ(out.stale_pairs, delta.stale_pairs);
  ASSERT_EQ(out.joins.size(), 1u);
  EXPECT_EQ(out.joins[0].left, join.left);
  EXPECT_EQ(out.joins[0].right, join.right);
  EXPECT_EQ(out.joins[0].op.alg, join.op.alg);
  EXPECT_EQ(out.joins[0].op.sampling_permille, join.op.sampling_permille);
  // Doubles must survive bit-exactly — the whole tier rests on it.
  EXPECT_EQ(out.joins[0].op_cost.cost[0], join.op_cost.cost[0]);
  EXPECT_EQ(out.joins[0].op_cost.cost[2], join.op_cost.cost[2]);
  EXPECT_EQ(out.joins[0].op_cost.output_rows, join.op_cost.output_rows);
  EXPECT_EQ(out.joins[0].op_cost.order, join.op_cost.order);
}

TEST(DistCodecTest, PartitionAssignmentRoundTripsBitExactly) {
  PartitionAssignment in;
  in.worker_index = 2;
  in.num_workers = 4;
  in.catalog_version = 9001;
  in.query.name = "q7";
  in.query.tables = {{0, 0.25, "a"}, {3, 1.0, ""}, {5, 0.125, "c"}};
  in.query.joins = {{0, 1, 0.01}, {1, 2, 0.30000000000000004}};
  in.schedule = ResolutionSchedule(7, 1.03, 0.25, ResolutionSchedule::Kind::kGeometric);
  in.initial_bounds = CostVector{12.5, 1e-300, 7.0};
  in.cell_gamma = 2.5;
  in.prune_against_all_resolutions = true;
  in.park_next_level_only = false;
  in.sorted_pruning = true;
  in.steps = 11;

  PartitionAssignment out;
  ASSERT_TRUE(DecodePartitionAssignment(EncodePartitionAssignment(in), &out).ok());
  EXPECT_EQ(out.worker_index, in.worker_index);
  EXPECT_EQ(out.num_workers, in.num_workers);
  EXPECT_EQ(out.catalog_version, in.catalog_version);
  EXPECT_EQ(out.query.name, in.query.name);
  ASSERT_EQ(out.query.tables.size(), in.query.tables.size());
  for (size_t i = 0; i < in.query.tables.size(); ++i) {
    EXPECT_EQ(out.query.tables[i].table, in.query.tables[i].table);
    EXPECT_EQ(out.query.tables[i].predicate_selectivity,
              in.query.tables[i].predicate_selectivity);
    EXPECT_EQ(out.query.tables[i].alias, in.query.tables[i].alias);
  }
  ASSERT_EQ(out.query.joins.size(), in.query.joins.size());
  EXPECT_EQ(out.query.joins[1].selectivity, in.query.joins[1].selectivity);
  EXPECT_EQ(out.schedule.NumLevels(), in.schedule.NumLevels());
  EXPECT_EQ(out.schedule.alpha_target(), in.schedule.alpha_target());
  EXPECT_EQ(out.schedule.alpha_step(), in.schedule.alpha_step());
  EXPECT_EQ(out.schedule.kind(), in.schedule.kind());
  ASSERT_TRUE(out.initial_bounds.has_value());
  EXPECT_EQ((*out.initial_bounds)[1], (*in.initial_bounds)[1]);
  EXPECT_EQ(out.cell_gamma, in.cell_gamma);
  EXPECT_EQ(out.prune_against_all_resolutions, in.prune_against_all_resolutions);
  EXPECT_EQ(out.park_next_level_only, in.park_next_level_only);
  EXPECT_EQ(out.sorted_pruning, in.sorted_pruning);
  EXPECT_EQ(out.steps, in.steps);
}

// Hostile bytes: every truncation and every single-byte corruption of a
// valid encoding must come back as a Status — the worker decodes these
// straight off a socket, so a crash here is a remote crash.
TEST(DistCodecTest, HostileBytesNeverCrashTheDecoders) {
  FrontierDeltaRecord record;
  record.invocation = 3;
  record.level = 2;
  CellDelta delta;
  delta.cell = TableSet(0b011);
  delta.fresh_pairs = {{4, 5}};
  CellJoin join;
  join.op_cost.cost = CostVector{1.0, 2.0, 3.0};
  delta.joins = {join};
  const std::string delta_bytes = EncodeFrontierDelta(record, delta);

  PartitionAssignment assignment;
  assignment.query.tables = {{0, 1.0, ""}, {1, 1.0, ""}};
  assignment.query.joins = {{0, 1, 0.5}};
  assignment.initial_bounds = CostVector{1.0, 2.0, 3.0};
  const std::string assign_bytes = EncodePartitionAssignment(assignment);

  for (const std::string& valid : {delta_bytes, assign_bytes}) {
    for (size_t len = 0; len < valid.size(); ++len) {
      const std::string truncated = valid.substr(0, len);
      FrontierDeltaRecord r;
      CellDelta d;
      (void)DecodeFrontierDelta(truncated, &r, &d);
      PartitionAssignment a;
      (void)DecodePartitionAssignment(truncated, &a);
    }
    for (size_t i = 0; i < valid.size(); ++i) {
      for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
        std::string corrupt = valid;
        corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
        FrontierDeltaRecord r;
        CellDelta d;
        (void)DecodeFrontierDelta(corrupt, &r, &d);
        PartitionAssignment a;
        (void)DecodePartitionAssignment(corrupt, &a);
      }
    }
  }
}

class DistEquivalence : public ::testing::TestWithParam<uint32_t> {};

// The tentpole bar: a session whose phase 2 runs across the worker tier
// finishes with every connected subset's frontier — and all work
// counters — bit-identical to a plain local session.
TEST_P(DistEquivalence, DistributedRunMatchesLocalBitIdentically) {
  const uint32_t workers = GetParam();
  const DistWorld d = MakeDistWorld(/*seed=*/41, /*num_tables=*/7);
  dist::DistributedBackend backend(InProcessBackend(d, workers));
  const IamaOptions iama = TestIama();
  const uint32_t steps = static_cast<uint32_t>(iama.schedule.NumLevels());

  auto run = backend.TryBeginRun(d.world.query, d.snapshot->version(), iama,
                                 steps);
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->live_workers(), workers);

  IamaOptions dist_iama = iama;
  dist_iama.optimizer.phase2_exchange = run->exchange();
  IamaSession distributed(*d.factory, dist_iama);
  IamaSession local(*d.factory, iama);

  const FrontierSnapshot dist_snap = DriveSession(&distributed, steps);
  const FrontierSnapshot local_snap = DriveSession(&local, steps);
  run.reset();  // Release the tier.

  EXPECT_EQ(FrontierSignature(dist_snap.plans),
            FrontierSignature(local_snap.plans));
  EXPECT_EQ(dist_snap.alpha, local_snap.alpha);
  ExpectIdenticalToLocal(*d.factory, local, distributed,
                         "workers=" + std::to_string(workers));
  EXPECT_EQ(backend.runs_started(), 1u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DistEquivalence,
                         ::testing::Values(1u, 2u, 4u));

// Worker death mid-level: the crash hook shuts one worker's socket down
// after its Nth delta frame — exactly what SIGKILL looks like from the
// coordinator. The run must complete with bit-identical results (the
// dead worker's unsent cells are recomputed by every surviving replica)
// and the tier must report the casualty.
TEST(DistFailureTest, WorkerCrashMidLevelKeepsResultsBitIdentical) {
  const DistWorld d = MakeDistWorld(/*seed=*/42, /*num_tables=*/7);
  dist::BackendOptions options = InProcessBackend(d, /*workers=*/2);
  options.crash_worker = 1;
  options.worker.crash_after_deltas = 3;
  dist::DistributedBackend backend(options);
  const IamaOptions iama = TestIama();
  const uint32_t steps = static_cast<uint32_t>(iama.schedule.NumLevels());

  auto run = backend.TryBeginRun(d.world.query, d.snapshot->version(), iama,
                                 steps);
  ASSERT_NE(run, nullptr);

  IamaOptions dist_iama = iama;
  dist_iama.optimizer.phase2_exchange = run->exchange();
  IamaSession distributed(*d.factory, dist_iama);
  IamaSession local(*d.factory, iama);

  const FrontierSnapshot dist_snap = DriveSession(&distributed, steps);
  const FrontierSnapshot local_snap = DriveSession(&local, steps);
  EXPECT_EQ(run->live_workers(), 1u);  // The drill fired.
  run.reset();

  EXPECT_EQ(FrontierSignature(dist_snap.plans),
            FrontierSignature(local_snap.plans));
  ExpectIdenticalToLocal(*d.factory, local, distributed, "crash drill");
}

// Abandoning a leased run (no steps taken) must leave the tier usable:
// the workers' straggler frames from the abandoned sequence are drained
// by the next assignment, which then runs to a bit-identical finish.
TEST(DistFailureTest, AbandonedRunLeavesTierReassignable) {
  const DistWorld d = MakeDistWorld(/*seed=*/43, /*num_tables=*/6);
  dist::DistributedBackend backend(InProcessBackend(d, /*workers=*/2));
  const IamaOptions iama = TestIama();
  const uint32_t steps = static_cast<uint32_t>(iama.schedule.NumLevels());

  auto abandoned = backend.TryBeginRun(d.world.query, d.snapshot->version(),
                                       iama, steps);
  ASSERT_NE(abandoned, nullptr);
  // While leased, the tier is busy: a second run cannot start.
  EXPECT_EQ(backend.TryBeginRun(d.world.query, d.snapshot->version(), iama,
                                steps),
            nullptr);
  abandoned.reset();  // Never stepped: workers abort at their first barrier.

  auto run = backend.TryBeginRun(d.world.query, d.snapshot->version(), iama,
                                 steps);
  ASSERT_NE(run, nullptr);
  IamaOptions dist_iama = iama;
  dist_iama.optimizer.phase2_exchange = run->exchange();
  IamaSession distributed(*d.factory, dist_iama);
  IamaSession local(*d.factory, iama);
  const FrontierSnapshot dist_snap = DriveSession(&distributed, steps);
  const FrontierSnapshot local_snap = DriveSession(&local, steps);
  run.reset();
  EXPECT_EQ(FrontierSignature(dist_snap.plans),
            FrontierSignature(local_snap.plans));
  ExpectIdenticalToLocal(*d.factory, local, distributed, "reassigned");
}

// A worker that rejects the assignment (catalog version skew) fails the
// whole lease — all-or-nothing — and the caller falls back to local.
TEST(DistFailureTest, CatalogVersionSkewRejectsTheLease) {
  const DistWorld d = MakeDistWorld(/*seed=*/44, /*num_tables=*/5);
  dist::DistributedBackend backend(InProcessBackend(d, /*workers=*/2));
  const IamaOptions iama = TestIama();
  EXPECT_EQ(backend.TryBeginRun(d.world.query, d.snapshot->version() + 1,
                                iama, /*steps=*/5),
            nullptr);
  EXPECT_GE(backend.runs_rejected(), 1u);
  // The tier is not poisoned: a well-versioned run still leases.
  auto run = backend.TryBeginRun(d.world.query, d.snapshot->version(), iama,
                                 /*steps=*/5);
  ASSERT_NE(run, nullptr);
}

// End-to-end routing: an OptimizerService with a distributed backend
// must return frontiers bit-identical to a plain local service for the
// same workload, for every worker count x shard count. Concurrent
// submissions also exercise the lease-busy local fallback.
void ExpectServiceMatchesLocal(uint32_t workers, int shards) {
  Catalog catalog = MakeTpchCatalog();
  std::vector<Query> queries;
  Rng rng(7);
  for (int i = 0; i < 4; ++i) {
    GeneratorOptions gen;
    gen.num_tables = 5 + (i % 2);
    gen.topology = i % 2 == 0 ? Topology::kChain : Topology::kRandomTree;
    Query q = RandomQuery(rng, gen, &catalog);
    q.name = "dist" + std::to_string(i);
    queries.push_back(std::move(q));
  }

  ServiceOptions service_opts;
  service_opts.num_threads = 2;
  service_opts.num_shards = shards;
  service_opts.operator_options = TinyOperatorOptions(/*sampling=*/false);
  service_opts.frontier_cache_capacity = 0;  // Force every run to optimize.
  service_opts.coalesce_in_flight = false;

  dist::BackendOptions backend_opts;
  backend_opts.num_workers = workers;
  backend_opts.forked = false;
  backend_opts.worker.catalog = catalog.Snapshot();
  backend_opts.worker.schema = service_opts.schema;
  backend_opts.worker.cost_params = service_opts.cost_params;
  backend_opts.worker.operator_options = service_opts.operator_options;
  dist::DistributedBackend backend(backend_opts);

  ServiceOptions dist_opts = service_opts;
  dist_opts.distributed_backend = &backend;
  dist_opts.distributed_min_tables = 3;

  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule(4, 1.02, 0.3);

  OptimizerService dist_service(catalog, dist_opts);
  OptimizerService local_service(catalog, service_opts);
  std::vector<QueryId> dist_ids, local_ids;
  for (const Query& q : queries) {
    dist_ids.push_back(dist_service.Submit(q, submit).value());
    local_ids.push_back(local_service.Submit(q, submit).value());
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult dist_result = dist_service.Wait(dist_ids[i]);
    const QueryResult local_result = local_service.Wait(local_ids[i]);
    ASSERT_EQ(dist_result.state, QueryState::kDone) << queries[i].name;
    ASSERT_EQ(local_result.state, QueryState::kDone) << queries[i].name;
    ASSERT_EQ(FrontierSignature(dist_result.frontier.plans),
              FrontierSignature(local_result.frontier.plans))
        << queries[i].name << " workers=" << workers << " shards=" << shards;
    EXPECT_EQ(dist_result.frontier.alpha, local_result.frontier.alpha);
    EXPECT_EQ(dist_result.frontier.resolution, local_result.frontier.resolution);
  }
  // At least one run actually took the distributed path (5-6 table
  // queries clear the min-tables gate whenever the lease is free).
  EXPECT_GE(backend.runs_started(), 1u);
}

class DistService
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>> {};

TEST_P(DistService, RoutedServiceMatchesLocalService) {
  const auto [workers, shards] = GetParam();
  ExpectServiceMatchesLocal(workers, shards);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersByShards, DistService,
    ::testing::Combine(::testing::Values(1u, 2u, 4u), ::testing::Values(1, 2)));

#if !defined(MOQO_TSAN)
// Forked transport: the production shape. One real child process per
// worker; results must match the local session exactly as with threads.
TEST(DistForkedTest, ForkedWorkersMatchLocalBitIdentically) {
  const DistWorld d = MakeDistWorld(/*seed=*/45, /*num_tables=*/6);
  dist::BackendOptions options = InProcessBackend(d, /*workers=*/2);
  options.forked = true;
  dist::DistributedBackend backend(options);
  ASSERT_EQ(backend.worker_pids().size(), 2u);
  const IamaOptions iama = TestIama();
  const uint32_t steps = static_cast<uint32_t>(iama.schedule.NumLevels());

  auto run = backend.TryBeginRun(d.world.query, d.snapshot->version(), iama,
                                 steps);
  ASSERT_NE(run, nullptr);
  IamaOptions dist_iama = iama;
  dist_iama.optimizer.phase2_exchange = run->exchange();
  IamaSession distributed(*d.factory, dist_iama);
  IamaSession local(*d.factory, iama);
  const FrontierSnapshot dist_snap = DriveSession(&distributed, steps);
  const FrontierSnapshot local_snap = DriveSession(&local, steps);
  run.reset();
  EXPECT_EQ(FrontierSignature(dist_snap.plans),
            FrontierSignature(local_snap.plans));
  ExpectIdenticalToLocal(*d.factory, local, distributed, "forked");
}

// Real SIGKILL, delivered from a side thread while the run is in
// flight. Whenever the kill lands — before, during, or between levels —
// the surviving replicas recompute the dead worker's cells and the
// result stays bit-identical. (Timing-dependent path, deterministic
// outcome: that is the whole design.)
TEST(DistForkedTest, SigkillMidRunKeepsResultsBitIdentical) {
  const DistWorld d = MakeDistWorld(/*seed=*/46, /*num_tables=*/7);
  dist::BackendOptions options = InProcessBackend(d, /*workers=*/2);
  options.forked = true;
  dist::DistributedBackend backend(options);
  ASSERT_EQ(backend.worker_pids().size(), 2u);
  const IamaOptions iama = TestIama();
  const uint32_t steps = static_cast<uint32_t>(iama.schedule.NumLevels());

  auto run = backend.TryBeginRun(d.world.query, d.snapshot->version(), iama,
                                 steps);
  ASSERT_NE(run, nullptr);
  IamaOptions dist_iama = iama;
  dist_iama.optimizer.phase2_exchange = run->exchange();
  IamaSession distributed(*d.factory, dist_iama);
  IamaSession local(*d.factory, iama);

  std::thread killer([&backend] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ::kill(backend.worker_pids()[1], SIGKILL);
  });
  const FrontierSnapshot dist_snap = DriveSession(&distributed, steps);
  killer.join();
  const FrontierSnapshot local_snap = DriveSession(&local, steps);
  run.reset();
  EXPECT_EQ(FrontierSignature(dist_snap.plans),
            FrontierSignature(local_snap.plans));
  ExpectIdenticalToLocal(*d.factory, local, distributed, "sigkill");
}
#endif  // !MOQO_TSAN

}  // namespace
}  // namespace moqo
